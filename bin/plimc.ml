(* plimc — endurance-aware PLiM compiler driver.

   Compile a named benchmark or a [.mig] file to PLiM assembly under any of
   the paper's configurations, inspect write-traffic statistics, execute
   programs on the behavioural crossbar, and export graphs. *)

module Mig = Plim_mig.Mig
module Mig_io = Plim_mig.Mig_io
module Suite = Plim_benchgen.Suite
module Recipe = Plim_rewrite.Recipe
module Pipeline = Plim_core.Pipeline
module Verify = Plim_core.Verify
module Program = Plim_isa.Program
module Asm = Plim_isa.Asm
module Stats = Plim_stats.Stats
module Lifetime = Plim_stats.Lifetime
module Controller = Plim_machine.Plim_controller
module Campaign = Plim_machine.Campaign
module Fault_model = Plim_fault.Fault_model
module Analyze = Plim_analyze
module Metrics = Plim_obs.Metrics
module Trace = Plim_obs.Trace
module Profile = Plim_obs.Profile
module Report = Plim_telemetry.Report
module Wear = Plim_telemetry.Wear
module Geometry = Plim_geometry

open Cmdliner

(* ---------------------------------------------------------------- *)
(* Observability: --trace/--metrics/--profile are shared by the
   compiling subcommands; the [profile] subcommand prints phase totals. *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Stream structured trace events (allocator cell lifecycle, RM3 \
                 writes, rewrite passes) as JSON lines to $(docv).")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print a snapshot of all metrics counters to stderr when the \
                 command finishes.")

let profile_flag_arg =
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~docv:"FILE"
           ~doc:"Record profiling spans and write them as Chrome trace_event \
                 JSON to $(docv) (open in chrome://tracing or ui.perfetto.dev).")

let write_chrome_trace path =
  let oc = open_out path in
  output_string oc (Profile.to_chrome_json ());
  close_out oc;
  Printf.eprintf "wrote Chrome trace to %s (open in chrome://tracing)\n%!" path

let print_metrics () =
  Format.eprintf "metrics snapshot:@.%a" Metrics.pp_snapshot (Metrics.snapshot ())

(* Run [f] under the requested observability setup; emit the artefacts even
   when [f] exits nonzero paths via exceptions. *)
let with_obs ~trace ~metrics ~profile f =
  if Option.is_some profile then Profile.enable ();
  let finish () =
    Option.iter write_chrome_trace profile;
    if metrics then print_metrics ()
  in
  Fun.protect ~finally:finish (fun () ->
      match trace with
      | Some path -> Trace.with_jsonl path f
      | None -> f ())

(* ---------------------------------------------------------------- *)

let load_mig source =
  if Sys.file_exists source then
    if Filename.check_suffix source ".blif" then Plim_mig.Blif.read_file source
    else Mig_io.read_file source
  else
    match Suite.find source with
    | spec -> Suite.build_cached spec
    | exception Not_found ->
      Printf.eprintf
        "plimc: %S is neither a file nor a known benchmark (try 'plimc list')\n" source;
      exit 1

let preset_of_string = function
  | "naive" -> Ok Pipeline.naive
  | "dac16" -> Ok Pipeline.dac16
  | "min-write" -> Ok Pipeline.min_write
  | "endurance-rewrite" -> Ok Pipeline.endurance_rewrite
  | "endurance-full" -> Ok Pipeline.endurance_full
  | s -> Error (`Msg (Printf.sprintf "unknown configuration %S" s))

let preset_conv =
  Arg.conv
    ( (fun s -> preset_of_string s),
      fun ppf c -> Format.pp_print_string ppf (Pipeline.config_name c) )

let config_arg =
  let doc =
    "Compiler configuration: naive, dac16, min-write, endurance-rewrite or \
     endurance-full."
  in
  Arg.(value & opt preset_conv Pipeline.endurance_full & info [ "c"; "config" ] ~doc)

let cap_arg =
  let doc = "Maximum write count strategy: cap per-device writes at $(docv) (>= 3)." in
  Arg.(value & opt (some int) None & info [ "cap" ] ~docv:"N" ~doc)

let geometry_conv =
  Arg.conv
    ( (fun s ->
        match Geometry.of_string s with
        | Ok g -> Ok g
        | Error msg -> Error (`Msg msg)),
      fun ppf g -> Format.pp_print_string ppf (Geometry.to_string g) )

let geometry_arg =
  Arg.(value & opt (some geometry_conv) None
       & info [ "geometry" ] ~docv:"ROWSxCOLS"
           ~doc:"Crossbar geometry: place cells row-major on a bounded \
                 $(docv) grid and schedule independent same-row RM3 \
                 instructions into parallel groups.  Reports latency in \
                 groups alongside the flat cycle count; fails if the \
                 program's footprint exceeds the grid area.")

(* Group-latency report of a compiled program under [--geometry]; exits 1
   when the program does not fit the grid.  Shared by compile/stats. *)
let geometry_report ~source g p =
  match Geometry.schedule g p with
  | Error msg ->
    Printf.eprintf "plimc: %s: %s\n" source msg;
    exit 1
  | Ok sched ->
    (match Geometry.validate p sched with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "plimc: %s: internal geometry invariant violated: %s\n"
        source msg;
      exit 1);
    sched

let rewriting_arg =
  let cenum =
    Arg.enum
      [ ("none", Recipe.No_rewriting); ("dac16", Recipe.Algorithm1);
        ("endurance", Recipe.Algorithm2) ]
  in
  Arg.(value & opt (some cenum) None
       & info [ "rewriting" ] ~docv:"R"
           ~doc:"Override the MIG rewriting recipe: none, dac16 or endurance.")

let selection_arg =
  let cenum =
    Arg.enum
      [ ("in-order", Plim_core.Select.In_order);
        ("release-first", Plim_core.Select.Release_first);
        ("level-first", Plim_core.Select.Level_first) ]
  in
  Arg.(value & opt (some cenum) None
       & info [ "selection" ] ~docv:"S"
           ~doc:"Override node selection: in-order, release-first or level-first.")

let allocation_arg =
  let cenum =
    Arg.enum
      [ ("lifo", Plim_core.Alloc.Lifo); ("fifo", Plim_core.Alloc.Fifo);
        ("min-write", Plim_core.Alloc.Min_write) ]
  in
  Arg.(value & opt (some cenum) None
       & info [ "allocation" ] ~docv:"A"
           ~doc:"Override device allocation: lifo, fifo or min-write.")

let override config rewriting selection allocation =
  let config =
    match rewriting with Some r -> { config with Pipeline.rewriting = r } | None -> config
  in
  let config =
    match selection with Some s -> { config with Pipeline.selection = s } | None -> config
  in
  match allocation with
  | Some a -> { config with Pipeline.allocation = a }
  | None -> config

let effort_arg =
  let doc = "MIG rewriting cycles (the paper uses 5)." in
  Arg.(value & opt int 5 & info [ "effort" ] ~doc)

let source_arg =
  let doc = "Benchmark name (see $(b,plimc list)) or a .mig file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE" ~doc)

(* ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "%-12s %-15s %6s %6s\n" "name" "family" "PI" "PO";
    List.iter
      (fun spec ->
        Printf.printf "%-12s %-15s %6d %6d\n" spec.Suite.name
          (match spec.Suite.family with
          | Suite.Arithmetic -> "arithmetic"
          | Suite.Random_control -> "random-control")
          spec.Suite.pi spec.Suite.po)
      Suite.all;
    Printf.printf "\nsmall test instances: %s\n"
      (String.concat ", " (List.map (fun s -> s.Suite.name) Suite.small_suite))
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite.") Term.(const run $ const ())

let compile_run source config cap effort rewriting selection allocation geometry
    output dot verify trace metrics profile =
  with_obs ~trace ~metrics ~profile @@ fun () ->
  let config = override config rewriting selection allocation in
  let config = { config with Pipeline.effort } in
  let config = match cap with Some w -> Pipeline.with_cap w config | None -> config in
  let g = load_mig source in
  let result = Pipeline.compile config g in
  let p = result.Pipeline.program in
  Printf.eprintf "%s: %s: %d instructions, %d devices, %s\n%!" source
    (Pipeline.config_name config) (Program.length p) (Program.num_cells p)
    (Format.asprintf "%a" Stats.pp_summary result.Pipeline.write_summary);
  (match geometry with
  | None -> ()
  | Some grid ->
    let sched = geometry_report ~source grid p in
    Printf.eprintf
      "%s: geometry %s: %d groups (vs %d instructions), %d cross-row, widest \
       group %d\n%!"
      source (Geometry.to_string grid) (Geometry.num_groups sched)
      (Program.length p) sched.Geometry.s_cross_row
      (Geometry.max_group_size sched));
  (match dot with
  | Some path ->
    let oc = open_out path in
    output_string oc (Mig_io.to_dot result.Pipeline.rewritten);
    close_out oc;
    Printf.eprintf "wrote rewritten MIG to %s\n%!" path
  | None -> ());
  (if verify then
     match Verify.check_random ~trials:8 g p with
     | Ok () -> Printf.eprintf "verification: ok (8 random vectors)\n%!"
     | Error e ->
       Printf.eprintf "verification FAILED: %s\n%!" e;
       exit 1);
  (* geometry cross-check: the grouped execution must agree with the flat
     backend on every output (the byte-identity contract) *)
  (if verify then
     match geometry with
     | None -> ()
     | Some grid ->
       let inputs =
         Array.to_list (Array.map (fun (n, _) -> (n, false)) p.Program.pi_cells)
       in
       let flat, _, _ = Controller.run p ~inputs in
       (match Controller.run_grouped ~geometry:grid p ~inputs with
       | Ok (grouped, _, _) when grouped = flat ->
         Printf.eprintf "geometry cross-check: ok (grouped = flat)\n%!"
       | Ok _ ->
         Printf.eprintf "geometry cross-check FAILED: outputs differ\n%!";
         exit 1
       | Error e ->
         Printf.eprintf "geometry cross-check FAILED: %s\n%!" e;
         exit 1));
  match output with
  | Some path ->
    Asm.write_file path p;
    Printf.eprintf "wrote PLiM assembly to %s\n%!" path
  | None -> print_string (Asm.to_string p)

let compile_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write assembly to $(docv).")
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE" ~doc:"Export the rewritten MIG as Graphviz.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ] ~doc:"Execute on the crossbar machine and compare with the MIG.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a benchmark, .mig or .blif file to PLiM assembly.")
    Term.(
      const compile_run $ source_arg $ config_arg $ cap_arg $ effort_arg $ rewriting_arg
      $ selection_arg $ allocation_arg $ geometry_arg $ output $ dot $ verify
      $ trace_arg $ metrics_arg $ profile_flag_arg)

let stats_run source config cap effort rewriting selection allocation geometry
    endurance trace metrics profile =
  with_obs ~trace ~metrics ~profile @@ fun () ->
  let config = override config rewriting selection allocation in
  let config = { config with Pipeline.effort } in
  let config = match cap with Some w -> Pipeline.with_cap w config | None -> config in
  let g = load_mig source in
  let result = Pipeline.compile config g in
  let p = result.Pipeline.program in
  let s = result.Pipeline.write_summary in
  Printf.printf "configuration : %s\n" (Pipeline.config_name config);
  Printf.printf "MIG           : %d nodes (rewritten %d), depth %d\n" (Mig.size g)
    (Mig.size result.Pipeline.rewritten)
    (Mig.depth result.Pipeline.rewritten);
  Printf.printf "#I            : %d RM3 instructions\n" (Program.length p);
  Printf.printf "#R            : %d RRAM devices\n" (Program.num_cells p);
  (match geometry with
  | None -> ()
  | Some grid ->
    let sched = geometry_report ~source grid p in
    Printf.printf
      "geometry      : %s grid (area %d), %d groups, %d cross-row, widest group \
       %d\n"
      (Geometry.to_string grid) (Geometry.area grid) (Geometry.num_groups sched)
      sched.Geometry.s_cross_row
      (Geometry.max_group_size sched));
  Printf.printf
    "writes        : min %d / max %d / mean %.2f / stdev %.2f / p50 %d / p90 %d / \
     p99 %d\n"
    s.Stats.min s.Stats.max s.Stats.mean s.Stats.stdev s.Stats.p50 s.Stats.p90
    s.Stats.p99;
  let writes = Program.static_write_counts p in
  Printf.printf "histogram     :";
  List.iter
    (fun (b, c) -> Printf.printf " [%d-%d):%d" b (b + 10) c)
    (Stats.histogram ~bucket:10 writes);
  print_newline ();
  let lt = Lifetime.estimate ~endurance writes in
  Printf.printf "lifetime      : %s (endurance %.1e writes/cell)\n"
    (Format.asprintf "%a" Lifetime.pp lt)
    endurance;
  Printf.printf "footprint     : %s\n"
    (Format.asprintf "%a" Plim_isa.Encoding.pp_footprint (Plim_isa.Encoding.footprint p));
  let st = (Analyze.analyze ?max_writes:config.Pipeline.max_write p).Analyze.storage in
  Printf.printf "storage       : total %d slot-instructions / max span %d / mean %.2f\n"
    st.Analyze.total_span st.Analyze.max_span st.Analyze.mean_span;
  (* energy of one execution with all-zero inputs *)
  let inputs = Array.to_list (Array.map (fun (n, _) -> (n, false)) p.Program.pi_cells) in
  let _, xbar, run_stats = Controller.run p ~inputs in
  Printf.printf "energy        : %s\n"
    (Format.asprintf "%a" Plim_machine.Energy.pp_report
       (Plim_machine.Energy.of_run xbar run_stats))

let stats_cmd =
  let endurance =
    Arg.(value & opt float 1e10
         & info [ "endurance" ] ~docv:"E" ~doc:"Per-cell write endurance budget.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Compile and report write-traffic statistics and lifetime.")
    Term.(
      const stats_run $ source_arg $ config_arg $ cap_arg $ effort_arg $ rewriting_arg
      $ selection_arg $ allocation_arg $ geometry_arg $ endurance $ trace_arg
      $ metrics_arg $ profile_flag_arg)

let exec_run path inputs =
  let p = Asm.read_file path in
  let n = Array.length p.Program.pi_cells in
  if String.length inputs <> n then begin
    Printf.eprintf "plimc run: program has %d inputs, got %d bits\n" n
      (String.length inputs);
    exit 1
  end;
  let bindings =
    Array.to_list
      (Array.mapi (fun i (name, _) -> (name, inputs.[i] = '1')) p.Program.pi_cells)
  in
  let outputs, xbar, stats = Controller.run p ~inputs:bindings in
  List.iter (fun (name, v) -> Printf.printf "%s = %d\n" name (if v then 1 else 0)) outputs;
  Printf.printf "(%d instructions, %d cycles, max device writes %d)\n"
    stats.Controller.instructions stats.Controller.cycles
    (Array.fold_left max 0 (Plim_rram.Crossbar.write_counts xbar))

let run_cmd =
  let path =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"PROGRAM" ~doc:"PLiM assembly file.")
  in
  let inputs =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"BITS" ~doc:"Input bits in PI declaration order, e.g. 1011.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a PLiM assembly file on the crossbar machine.")
    Term.(const exec_run $ path $ inputs)

let export_run source output =
  let g = load_mig source in
  let serialise path =
    if Filename.check_suffix path ".blif" then Plim_mig.Blif.to_string g
    else Mig_io.to_string g
  in
  match output with
  | Some path ->
    let oc = open_out path in
    output_string oc (serialise path);
    close_out oc;
    Printf.eprintf "wrote %s\n%!" path
  | None -> print_string (Mig_io.to_string g)

let export_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write to $(docv) instead of stdout (.blif selects BLIF).")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a benchmark as a .mig or .blif file.")
    Term.(const export_run $ source_arg $ output)

let profile_run source config cap effort rewriting selection allocation exec output
    metrics =
  let config = override config rewriting selection allocation in
  let config = { config with Pipeline.effort } in
  let config = match cap with Some w -> Pipeline.with_cap w config | None -> config in
  Profile.enable ();
  let g = load_mig source in
  let result = Pipeline.compile config g in
  let p = result.Pipeline.program in
  (if exec then
     let inputs = Array.to_list (Array.map (fun (n, _) -> (n, false)) p.Program.pi_cells) in
     ignore (Controller.run p ~inputs));
  Printf.printf "%s: %s: %d instructions, %d devices\n" source
    (Pipeline.config_name config) (Program.length p) (Program.num_cells p);
  Printf.printf "\nphase totals (wall clock):\n";
  Format.printf "%a" Profile.pp_totals (Profile.totals ());
  Option.iter write_chrome_trace output;
  if metrics then print_metrics ()

let profile_cmd =
  let exec =
    Arg.(value & flag
         & info [ "exec" ]
             ~doc:"Also execute the compiled program once (all-false inputs) so \
                   machine and crossbar phases appear in the profile.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the spans as Chrome trace_event JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile a benchmark with profiling spans enabled and print per-phase \
          wall-clock totals (rewriting passes, node selection, translation, \
          machine execution).")
    Term.(
      const profile_run $ source_arg $ config_arg $ cap_arg $ effort_arg $ rewriting_arg
      $ selection_arg $ allocation_arg $ exec $ output $ metrics_arg)

(* ---------------------------------------------------------------- *)
(* faults: compile a benchmark, wrap the crossbar in the fault layer and
   run a graceful-degradation campaign. *)

let fault_spec_conv =
  Arg.conv
    ( (fun s ->
        match Fault_model.parse s with Ok spec -> Ok spec | Error e -> Error (`Msg e)),
      Fault_model.pp )

let faults_run source config cap effort rewriting selection allocation inject spares
    verify_writes seed executions endurance avoid heatmap wear_json trace metrics
    profile =
  with_obs ~trace ~metrics ~profile @@ fun () ->
  let config = override config rewriting selection allocation in
  let config = { config with Pipeline.effort } in
  let config = match cap with Some w -> Pipeline.with_cap w config | None -> config in
  let inject =
    match seed with Some s -> { inject with Fault_model.seed = s } | None -> inject
  in
  let g = load_mig source in
  let is_faulty =
    if avoid then Some (fun i -> Fault_model.cell_fault inject i <> None) else None
  in
  let result = Pipeline.compile ?is_faulty config g in
  let p = result.Pipeline.program in
  Printf.printf "program       : %s: %s, %d instructions, %d devices\n" source
    (Pipeline.config_name config) (Program.length p) (Program.num_cells p);
  Printf.printf "fault model   : %s\n" (Fault_model.to_string inject);
  Printf.printf "repair        : %d spare lines, write-verify %s%s\n" spares
    (if verify_writes then "on" else "off")
    (if avoid then ", fault-aware allocation" else "");
  let d =
    Campaign.run_degraded
      ?seed
      ~max_executions:executions
      ?endurance
      ~spares
      ~verify:verify_writes
      ~fault_spec:inject
      ~oracle:(Mig.eval g)
      p
  in
  Printf.printf "executions    : %d completed (%d correct, %d incorrect)\n" d.Campaign.executions
    d.Campaign.correct d.Campaign.incorrect;
  Printf.printf "faults        : %d injected, %d worn out during campaign\n" d.Campaign.injected
    d.Campaign.worn_out;
  Printf.printf "repairs       : %d detections, %d remaps, %d spares left\n"
    d.Campaign.detections d.Campaign.remaps d.Campaign.spares_remaining;
  Printf.printf "verify cost   : %d read-backs, %d retries, %d transient write failures\n"
    d.Campaign.verify_reads d.Campaign.retries d.Campaign.transient_failures;
  Printf.printf "write traffic : %d physical writes (including repair traffic)\n"
    d.Campaign.degraded_write_total;
  Printf.printf "capacity      : %.4f surviving fraction\n" d.Campaign.final_capacity;
  (match d.Campaign.ended with
  | Campaign.Max_executions -> Printf.printf "ended         : execution budget reached\n"
  | Campaign.Spares_exhausted l ->
    Printf.printf "ended         : spare pool exhausted repairing logical line %d\n" l);
  if d.Campaign.curve <> [] then begin
    Printf.printf "degradation   : (execution, capacity, spares left)\n";
    List.iter
      (fun pt ->
        Printf.printf "                %6d  %.4f  %d\n" pt.Campaign.at_execution
          pt.Campaign.capacity pt.Campaign.spares_left)
      d.Campaign.curve
  end;
  if heatmap then begin
    Printf.printf "wear skew     : trajectory (decimated; counted physical writes)\n";
    Format.printf "%a" Campaign.pp_trajectory d.Campaign.trajectory;
    Format.print_flush ();
    Printf.printf "wear heatmap  : %d physical cells incl. %d spares\n"
      (Array.length d.Campaign.final_wear)
      spares;
    print_string (Wear.heatmap d.Campaign.final_wear)
  end;
  (match wear_json with
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"schema\":\"plim-wear/v1\",\"source\":%s,\"config\":%s,\"executions\":%d,\
       \"trajectory\":%s,\"heatmap\":%s}\n"
      (Plim_util.Jsonx.quote source)
      (Plim_util.Jsonx.quote (Pipeline.config_name config))
      d.Campaign.executions
      (Campaign.trajectory_json d.Campaign.trajectory)
      (Wear.heatmap_json ~label:source d.Campaign.final_wear);
    close_out oc;
    Printf.eprintf "wrote wear trajectory + heatmap to %s\n%!" path
  | None -> ());
  if d.Campaign.incorrect > 0 then exit 1

let faults_cmd =
  let inject =
    Arg.(value & opt fault_spec_conv Fault_model.none
         & info [ "inject" ] ~docv:"SPEC"
             ~doc:"Fault injection spec, e.g. \
                   $(b,sa0:0.01,sa1:0.005,transient:1e-4,growth:1e-6,seed:42). Keys: \
                   sa0/sa1 (per-cell stuck-at rates), transient (write failure \
                   probability), growth (transient increase per prior write), seed. \
                   $(b,none) disables injection.")
  in
  let spares =
    Arg.(value & opt int 0
         & info [ "spares" ] ~docv:"N" ~doc:"Spare physical lines for remapping.")
  in
  let verify_writes =
    Arg.(value & flag
         & info [ "verify-writes" ]
             ~doc:"Read back every destructive write; on mismatch retry, then remap \
                   to a spare line. Without this flag faults go undetected.")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~docv:"S"
             ~doc:"Campaign seed (input vectors) and fault-map seed override.")
  in
  let executions =
    Arg.(value & opt int 100
         & info [ "executions" ] ~docv:"N" ~doc:"Execution budget for the campaign.")
  in
  let endurance =
    Arg.(value & opt (some int) None
         & info [ "endurance" ] ~docv:"E"
             ~doc:"Optional per-cell endurance; worn-out cells become stuck-at faults.")
  in
  let avoid =
    Arg.(value & flag
         & info [ "avoid-faulty" ]
             ~doc:"Fault-aware allocation: compile around the known fault map so the \
                   program never touches an injected-faulty device.")
  in
  let heatmap =
    Arg.(value & flag
         & info [ "heatmap" ]
             ~doc:"Print the wear-skew time series (stdev, Gini, max/mean) sampled \
                   over the campaign and an ASCII per-cell wear heatmap at the end.")
  in
  let wear_json =
    Arg.(value & opt (some string) None
         & info [ "wear-json" ] ~docv:"FILE"
             ~doc:"Write the wear trajectory and final heatmap as a plim-wear/v1 \
                   JSON document to $(docv).")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Compile a benchmark and run a graceful-degradation campaign behind the \
          fault-injection layer: stuck-at and transient faults, write-verify \
          detection and spare-line remapping.")
    Term.(
      const faults_run $ source_arg $ config_arg $ cap_arg $ effort_arg $ rewriting_arg
      $ selection_arg $ allocation_arg $ inject $ spares $ verify_writes $ seed
      $ executions $ endurance $ avoid $ heatmap $ wear_json $ trace_arg $ metrics_arg
      $ profile_flag_arg)

(* ---------------------------------------------------------------- *)
(* fuzz: differential conformance fuzzing with a persisted corpus. *)

let print_counterexample (cex : Plim_check.Fuzz.counterexample) =
  Printf.printf "\ncounterexample (case %d, case-seed %d, %d shrink steps):\n"
    cex.Plim_check.Fuzz.run_index cex.Plim_check.Fuzz.case_seed
    cex.Plim_check.Fuzz.shrink_steps;
  print_string (Plim_check.Gen.print cex.Plim_check.Fuzz.desc);
  List.iter
    (fun f -> Printf.printf "  %s\n" (Plim_check.Check.failure_to_string f))
    cex.Plim_check.Fuzz.failures;
  (match cex.Plim_check.Fuzz.path with
  | Some path ->
    Printf.printf "  saved to %s (replayed by dune runtest; rerun with 'plimc fuzz \
                   --replay %s')\n"
      path path
  | None -> ());
  Printf.printf "  regenerate with 'plimc fuzz --case-seed %d'\n"
    cex.Plim_check.Fuzz.case_seed

let fuzz_run runs seed max_inputs max_nodes corpus no_save no_shrink case_seed replay
    jobs trace metrics profile =
  with_obs ~trace ~metrics ~profile @@ fun () ->
  match replay with
  | Some path ->
    let g = Plim_check.Corpus.load_file path in
    (match Plim_check.Check.run g with
    | [] -> Printf.printf "%s: conformance ok\n" path
    | failures ->
      Printf.printf "%s: %d failures\n" path (List.length failures);
      List.iter
        (fun f -> Printf.printf "  %s\n" (Plim_check.Check.failure_to_string f))
        failures;
      exit 1)
  | None ->
    let options =
      { Plim_check.Fuzz.runs;
        seed;
        max_inputs;
        max_nodes;
        max_outputs = 4;
        corpus_dir = (if no_save then None else Some corpus);
        shrink = not no_shrink }
    in
    let case_seeds = Option.map (fun s -> [ s ]) case_seed in
    let on_case i =
      if i > 0 && i mod 50 = 0 then Printf.eprintf "fuzz: %d/%d cases\n%!" i runs
    in
    (* case seeds are fixed up front and shrinking runs sequentially in
       submission order, so the report is the same at any -j *)
    let report =
      Plim_par.with_pool ~jobs (fun pool ->
          let pool = if Plim_par.jobs pool > 1 then Some pool else None in
          Plim_check.Fuzz.run ?pool ?case_seeds ~on_case options)
    in
    let n = List.length report.Plim_check.Fuzz.counterexamples in
    Printf.printf "fuzz: %d cases (seed %d, <=%d inputs, <=%d nodes): %d counterexample%s\n"
      report.Plim_check.Fuzz.cases seed max_inputs max_nodes n
      (if n = 1 then "" else "s");
    List.iter print_counterexample report.Plim_check.Fuzz.counterexamples;
    if n > 0 then exit 1

let fuzz_cmd =
  let runs =
    Arg.(value & opt int 200
         & info [ "runs" ] ~docv:"N" ~doc:"Number of random MIGs to check.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S"
             ~doc:"Campaign master seed; the case sequence is a pure function of it.")
  in
  let max_inputs =
    Arg.(value & opt int 6
         & info [ "max-inputs" ] ~docv:"N"
             ~doc:"Upper bound on primary inputs per generated MIG (<= 8 keeps the \
                   functional check exhaustive).")
  in
  let max_nodes =
    Arg.(value & opt int 32
         & info [ "max-nodes" ] ~docv:"N"
             ~doc:"Upper bound on majority nodes per generated MIG.")
  in
  let corpus =
    Arg.(value & opt string "test/corpus"
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Directory where shrunk counterexamples are persisted.")
  in
  let no_save =
    Arg.(value & flag
         & info [ "no-save" ] ~doc:"Do not persist counterexamples to the corpus.")
  in
  let no_shrink =
    Arg.(value & flag
         & info [ "no-shrink" ] ~doc:"Report raw counterexamples without shrinking.")
  in
  let case_seed =
    Arg.(value & opt (some int) None
         & info [ "case-seed" ] ~docv:"S"
             ~doc:"Check the single case this derived seed generates (printed with \
                   every counterexample), instead of a full campaign.")
  in
  let replay =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Run the conformance suite on one corpus entry (.mig file) and exit.")
  in
  let jobs =
    Arg.(value & opt int (Plim_par.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Check cases on $(docv) domains.  The report — including the \
                   first counterexample and every shrunk witness — is byte-identical \
                   at every $(docv); $(docv)=1 never spawns a domain.  Defaults to \
                   the recommended domain count.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential conformance fuzzing: generate random MIGs, compile each under \
          the full configuration matrix (rewriting x write strategies x selection x \
          cap x fault-aware allocation), check every program against MIG evaluation \
          (exhaustive + symbolic), cross-validate write counts and the node-selection \
          heap against a naive reference, shrink failures to minimal witnesses and \
          persist them in the regression corpus.")
    Term.(
      const fuzz_run $ runs $ seed $ max_inputs $ max_nodes $ corpus $ no_save
      $ no_shrink $ case_seed $ replay $ jobs $ trace_arg $ metrics_arg
      $ profile_flag_arg)

(* ---------------------------------------------------------------- *)
(* lint: static dataflow analysis — def-use chains, liveness, endurance
   hygiene — of compiled benchmarks or on-disk .plim assembly. *)

let lint_run sources config cap effort rewriting selection allocation geometry
    max_writes json jobs trace metrics profile =
  with_obs ~trace ~metrics ~profile @@ fun () ->
  if sources = [] then begin
    Printf.eprintf "plimc lint: no sources given\n";
    exit 2
  end;
  let config = override config rewriting selection allocation in
  let config = { config with Pipeline.effort } in
  let config = match cap with Some w -> Pipeline.with_cap w config | None -> config in
  let analyze_source source =
    (* .plim assembly is linted as-is; anything else goes through the
       compiler under the requested configuration first *)
    if Sys.file_exists source && Filename.check_suffix source ".plim" then
      let p = Asm.read_file source in
      (source, p, Analyze.analyze ?max_writes p)
    else begin
      let g = load_mig source in
      let result = Pipeline.compile config g in
      let p = result.Pipeline.program in
      let cap = match max_writes with Some w -> Some w | None -> config.Pipeline.max_write in
      (Printf.sprintf "%s[%s]" source (Pipeline.config_name config),
       p, Analyze.analyze ?max_writes:cap p)
    end
  in
  let results =
    Plim_par.with_pool ~jobs (fun pool -> Plim_par.map pool ~f:analyze_source sources)
  in
  let error_total = ref 0 in
  if json then begin
    print_string "[";
    List.iteri
      (fun i (source, p, a) ->
        if i > 0 then print_string ",";
        print_string (Analyze.to_json ~source p a))
      results;
    print_endline "]"
  end
  else
    List.iter
      (fun (source, p, a) ->
        let errors = List.length (Analyze.errors a) in
        let count sev =
          List.length
            (List.filter (fun d -> d.Analyze.severity = sev) a.Analyze.diagnostics)
        in
        Printf.printf
          "%s: %d instructions, %d devices: %d error(s), %d warning(s), %d info\n"
          source (Program.length p) (Program.num_cells p) errors (count Analyze.Warning)
          (count Analyze.Info);
        List.iter
          (fun d -> Printf.printf "  %s\n" (Analyze.diagnostic_to_string d))
          a.Analyze.diagnostics;
        let st = a.Analyze.storage in
        Printf.printf "  storage: total %d slot-instructions, max span %d, mean %.2f\n"
          st.Analyze.total_span st.Analyze.max_span st.Analyze.mean_span)
      results;
  List.iter
    (fun (_, _, a) -> error_total := !error_total + List.length (Analyze.errors a))
    results;
  (* --geometry: every program must fit the grid and its row-parallel
     schedule must satisfy the full invariant set (coverage, hazard
     order, single-row groups, groups <= instructions) *)
  (match geometry with
  | None -> ()
  | Some grid ->
    List.iter
      (fun (source, p, _) ->
        match Geometry.schedule grid p with
        | Error msg ->
          Printf.eprintf "%s: geometry: %s\n" source msg;
          incr error_total
        | Ok sched -> (
          match Geometry.validate p sched with
          | Ok () -> (
            (* second opinion: the certify race detector re-derives the
               hazard edges from the def-use chains *)
            match Plim_certify.Race.check_schedule p sched with
            | Ok () ->
              if not json then
                Printf.printf
                  "%s: geometry %s: %d groups, %d cross-row: ok (race-free)\n"
                  source (Geometry.to_string grid) (Geometry.num_groups sched)
                  sched.Geometry.s_cross_row
            | Error msg ->
              Printf.eprintf "%s: geometry race: %s\n" source msg;
              incr error_total)
          | Error msg ->
            Printf.eprintf "%s: geometry invariant: %s\n" source msg;
            incr error_total))
      results);
  if !error_total > 0 then exit 1

let lint_cmd =
  let sources =
    Arg.(value & pos_all string []
         & info [] ~docv:"SOURCE"
             ~doc:"Benchmark names, .mig/.blif files (compiled first) or .plim \
                   assembly files (linted as-is).")
  in
  let max_writes =
    Arg.(value & opt (some int) None
         & info [ "max-writes" ] ~docv:"W"
             ~doc:"Check the static per-cell write bound against cap $(docv) \
                   (defaults to $(b,--cap) when compiling).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one plim-lint/v1 JSON object per source (as a JSON array) \
                   instead of text.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Analyze sources on $(docv) domains; output order is \
                   submission order at every $(docv).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static dataflow analysis of RM3 programs: per-cell def-use chains and \
          liveness intervals, use-before-def / dead-write / RRAM-leak / \
          PO-clobber / endurance-cap diagnostics, and the storage-duration \
          report (the quantity Algorithm 3 minimizes).  Exits 1 if any source \
          has errors."
       ~man:
         [ `S Manpage.s_exit_status;
           `P "0 on success; 1 if any source produced error diagnostics; 2 on \
               usage errors." ])
    Term.(
      const lint_run $ sources $ config_arg $ cap_arg $ effort_arg $ rewriting_arg
      $ selection_arg $ allocation_arg $ geometry_arg $ max_writes $ json $ jobs
      $ trace_arg $ metrics_arg $ profile_flag_arg)

let report_run current against threshold min_abs json verbose =
  match
    Report.compare_files ~threshold_pct:threshold ~min_abs ~baseline:against
      ~current ()
  with
  | Error e ->
    Printf.eprintf "plimc report: %s\n" e;
    exit 2
  | Ok c ->
    if json then print_string (Report.to_json c)
    else print_string (Report.render ~verbose c);
    if Report.has_regressions c then exit 1

let report_cmd =
  let current =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"CURRENT"
             ~doc:"The plim-bench/v1 or /v2 results file under test (e.g. \
                   bench/results/latest.json).")
  in
  let against =
    Arg.(required & opt (some file) None
         & info [ "against" ] ~docv:"BASELINE"
             ~doc:"Baseline results file to diff $(i,CURRENT) against.")
  in
  let threshold =
    Arg.(value & opt float 2.0
         & info [ "threshold" ] ~docv:"PCT"
             ~doc:"Relative growth (percent) a metric must exceed to count as a \
                   regression.")
  in
  let min_abs =
    Arg.(value & opt float 1e-9
         & info [ "min-abs" ] ~docv:"X"
             ~doc:"Absolute growth floor below which a delta never gates; \
                   identical runs always report zero regressions.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the plim-report/v1 JSON document instead of text.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose" ] ~doc:"List every improvement, not just the top 10.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Diff two bench result files metric-by-metric and gate on regressions: \
          per-benchmark/per-config deltas for instruction count, RRAM cells, \
          write totals and tails (max/stdev/p50/p90/p99), wear-skew (Gini, \
          max/mean) and storage durations.  All tracked metrics are costs, so a \
          regression is growth beyond both $(b,--threshold) and $(b,--min-abs); \
          wall-clock phases are reported but never gate."
       ~man:
         [ `S Manpage.s_exit_status;
           `P "0 when no metric regressed; 1 on regression; 2 on usage or parse \
               errors." ])
    Term.(const report_run $ current $ against $ threshold $ min_abs $ json $ verbose)

(* ---------------------------------------------------------------- *)
(* serve: the long-lived compile-and-execute service core replaying a
   seeded request mix against a fleet of persistent crossbar shards. *)

let serve_run sources requests seed shards spare_shards cell_spares lines batch
    zipf hot hot_pool compile_ratio config cap effort rewriting selection
    allocation geometry inject endurance no_verify no_check retire jobs wear_json
    json trace metrics profile =
  with_obs ~trace ~metrics ~profile @@ fun () ->
  let config = override config rewriting selection allocation in
  let config = { config with Pipeline.effort } in
  let config = match cap with Some w -> Pipeline.with_cap w config | None -> config in
  let specs =
    match sources with
    | [] -> Suite.small_suite
    | names ->
      List.map
        (fun name ->
          match Suite.find name with
          | spec -> spec
          | exception Not_found ->
            Printf.eprintf
              "plimc serve: %S is not a known benchmark (try 'plimc list')\n" name;
            exit 1)
        names
  in
  let mix =
    Plim_serve.Workload.mix_of_suite ~zipf ~hot_fraction:hot ~hot_pool
      ~compile_ratio specs
  in
  let stream = Plim_serve.Workload.generate ~seed ~requests mix in
  let scfg =
    { Plim_serve.Server.pipeline = config;
      shards;
      spare_shards;
      lines;
      cell_spares;
      verify = not no_verify;
      fault_spec = inject;
      endurance;
      check = not no_check;
      seed;
      geometry }
  in
  let server = Plim_serve.Server.create scfg in
  let t0 = Unix.gettimeofday () in
  let serve pool reqs = ignore (Plim_serve.Server.run ?pool ~batch server reqs) in
  Plim_par.with_pool ~jobs (fun pool ->
      let pool = if Plim_par.jobs pool > 1 then Some pool else None in
      match retire with
      | [] -> serve pool stream
      | ids ->
        (* forced-retirement drill: serve half the stream, retire the
           given shards, let the survivors absorb the rest *)
        let n = List.length stream in
        let first = List.filteri (fun i _ -> i < n / 2) stream in
        let second = List.filteri (fun i _ -> i >= n / 2) stream in
        serve pool first;
        List.iter
          (fun id ->
            if not (Plim_serve.Server.force_retire server id) then
              Printf.eprintf "plimc serve: cannot retire shard %d (unknown, \
                              spare or already retired)\n%!" id)
          ids;
        serve pool second);
  let wall = Unix.gettimeofday () -. t0 in
  let s = Plim_serve.Server.summary server in
  (match wear_json with
  | Some path ->
    let oc = open_out path in
    output_string oc (Plim_serve.Server.fleet_heatmap_json server);
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "wrote fleet wear heatmaps to %s\n%!" path
  | None -> ());
  if json then
    print_endline (Plim_serve.Server.row_json server ~label:"serve" ~wall_s:wall)
  else begin
    let lat = Plim_serve.Server.latency server in
    let skew = Plim_serve.Server.fleet_skew server in
    Printf.printf "mix           : %d programs, zipf %.2f, hot %.2f (pool %d), \
                   compile ratio %.2f\n"
      (List.length specs) zipf hot hot_pool compile_ratio;
    Printf.printf "requests      : %d served in %.3fs (%.0f req/s)\n" s.Plim_serve.Server.requests
      wall
      (if wall > 0.0 then float_of_int s.Plim_serve.Server.requests /. wall else 0.0);
    Printf.printf "compile cache : %d hits, %d misses, %d compiles\n"
      s.Plim_serve.Server.cache_hits s.Plim_serve.Server.cache_misses
      s.Plim_serve.Server.compiles;
    Printf.printf "executions    : %d completed, %d re-runs, %d rejected, %d incorrect\n"
      s.Plim_serve.Server.executes s.Plim_serve.Server.re_runs
      s.Plim_serve.Server.rejected s.Plim_serve.Server.incorrect;
    Printf.printf "latency       : p50 %d / p90 %d / p99 %d cycles (total %d)\n"
      (Plim_telemetry.Histogram.p50 lat)
      (Plim_telemetry.Histogram.p90 lat)
      (Plim_telemetry.Histogram.p99 lat)
      s.Plim_serve.Server.total_cycles;
    (match geometry with
    | None -> ()
    | Some grid ->
      let gl = Plim_serve.Server.group_latency server in
      Printf.printf
        "geometry      : %s grid, groups p50 %d / p90 %d / p99 %d (total %d)\n"
        (Geometry.to_string grid)
        (Plim_telemetry.Histogram.p50 gl)
        (Plim_telemetry.Histogram.p90 gl)
        (Plim_telemetry.Histogram.p99 gl)
        s.Plim_serve.Server.total_groups);
    Printf.printf "fleet         : %d retired, %d spares activated, wear gini %.4f, \
                   max/mean %.2f\n"
      s.Plim_serve.Server.retired_shards s.Plim_serve.Server.spare_activations
      skew.Wear.gini skew.Wear.max_mean;
    List.iter
      (fun (id, status, writes) ->
        Printf.printf "  shard %d     : %-7s %d writes\n" id
          (Plim_serve.Shard.status_name status)
          writes)
      (Plim_serve.Server.shard_statuses server)
  end;
  if s.Plim_serve.Server.incorrect > 0 then exit 1

let serve_cmd =
  let sources =
    Arg.(value & pos_all string []
         & info [] ~docv:"BENCH"
             ~doc:"Benchmarks forming the program mix, most popular first \
                   (default: the small suite).")
  in
  let requests =
    Arg.(value & opt int 200
         & info [ "requests" ] ~docv:"N" ~doc:"Sampled requests after warm-up.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S"
             ~doc:"Request-mix seed; the request stream is a pure function of it.")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"N" ~doc:"Initially active crossbar shards.")
  in
  let spare_shards =
    Arg.(value & opt int 1
         & info [ "spare-shards" ] ~docv:"N"
             ~doc:"Spare shards activated when an active shard is retired.")
  in
  let cell_spares =
    Arg.(value & opt int 8
         & info [ "cell-spares" ] ~docv:"N"
             ~doc:"Spare lines per shard (within-shard write-verify repair).")
  in
  let lines =
    Arg.(value & opt int 0
         & info [ "lines" ] ~docv:"N"
             ~doc:"Logical lines per shard; 0 sizes to the largest compiled \
                   program at first use.")
  in
  let batch =
    Arg.(value & opt int 32
         & info [ "batch" ] ~docv:"N"
             ~doc:"Scheduler batch size (affects scheduling granularity only, \
                   never results).")
  in
  let zipf =
    Arg.(value & opt float 1.0
         & info [ "zipf" ] ~docv:"S"
             ~doc:"Zipf exponent of program popularity (0 = uniform).")
  in
  let hot =
    Arg.(value & opt float 0.8
         & info [ "hot" ] ~docv:"P"
             ~doc:"Probability an execution reuses a hot input vector.")
  in
  let hot_pool =
    Arg.(value & opt int 4
         & info [ "hot-pool" ] ~docv:"N"
             ~doc:"Recurring input vectors per program.")
  in
  let compile_ratio =
    Arg.(value & opt float 0.05
         & info [ "compile-ratio" ] ~docv:"P"
             ~doc:"Probability a sampled request is a (redundant) compile.")
  in
  let inject =
    Arg.(value & opt fault_spec_conv Fault_model.none
         & info [ "inject" ] ~docv:"SPEC"
             ~doc:"Fault injection spec (see $(b,plimc faults)); each shard \
                   derives its own fault seed from it.")
  in
  let endurance =
    Arg.(value & opt (some int) None
         & info [ "endurance" ] ~docv:"E"
             ~doc:"Per-cell write budget; worn-out cells become stuck-at faults.")
  in
  let no_verify =
    Arg.(value & flag
         & info [ "no-verify" ]
             ~doc:"Disable write-verify (faults then go undetected).")
  in
  let no_check =
    Arg.(value & flag
         & info [ "no-check" ]
             ~doc:"Skip the fault-free reference run that validates outputs.")
  in
  let retire =
    Arg.(value & opt_all int []
         & info [ "force-retire" ] ~docv:"ID"
             ~doc:"Administratively retire shard $(docv) halfway through the \
                   stream (repeatable) — the spare-activation drill.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Serve on $(docv) domains.  Responses, counters and fleet \
                   wear are byte-identical at every $(docv).")
  in
  let wear_json =
    Arg.(value & opt (some string) None
         & info [ "wear-json" ] ~docv:"FILE"
             ~doc:"Write per-shard wear heatmaps as a plim-serve-fleet/v1 JSON \
                   document to $(docv).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the plim-serve/v1 result row instead of text.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the compile-and-execute service core: replay a seeded request mix \
          (Zipfian program popularity, hot/cold input skew) against a fleet of \
          persistent crossbar shards with a digest-keyed compile cache, \
          least-worn placement, write-verify repair and online shard \
          retirement."
       ~man:
         [ `S Manpage.s_exit_status;
           `P "0 on success; 1 if any execution produced incorrect outputs; 2 \
               on usage errors." ])
    Term.(
      const serve_run $ sources $ requests $ seed $ shards $ spare_shards
      $ cell_spares $ lines $ batch $ zipf $ hot $ hot_pool $ compile_ratio
      $ config_arg $ cap_arg $ effort_arg $ rewriting_arg $ selection_arg
      $ allocation_arg $ geometry_arg $ inject $ endurance $ no_verify $ no_check
      $ retire $ jobs $ wear_json $ json $ trace_arg $ metrics_arg
      $ profile_flag_arg)

let horizon_run sources strategies rates endurance epoch_requests sample_every
    max_epochs capacity_floor psi rekey_period model_spares epoch_seconds
    project shards spare_shards cell_spares lines seed zipf hot hot_pool
    compile_ratio jobs json trace metrics profile =
  with_obs ~trace ~metrics ~profile @@ fun () ->
  let module H = Plim_serve.Horizon in
  let specs =
    match sources with
    | [] -> Suite.small_suite
    | names ->
      List.map
        (fun name ->
          match Suite.find name with
          | spec -> spec
          | exception Not_found ->
            Printf.eprintf
              "plimc horizon: %S is not a known benchmark (try 'plimc list')\n"
              name;
            exit 1)
        names
  in
  let mix =
    Plim_serve.Workload.mix_of_suite ~zipf ~hot_fraction:hot ~hot_pool
      ~compile_ratio specs
  in
  let strategies =
    match strategies with [] -> H.all_strategies | ss -> ss
  in
  let rates = match rates with [] -> [ 0.0 ] | rs -> rs in
  let base = H.default_config in
  let server =
    { base.H.server with
      Plim_serve.Server.shards;
      spare_shards;
      cell_spares;
      lines;
      seed }
  in
  let cfg =
    { base with
      H.server;
      mix;
      endurance;
      epoch_requests;
      sample_every;
      max_epochs;
      capacity_floor;
      psi;
      wolfram_period = rekey_period;
      model_spares;
      epoch_seconds;
      project_endurance = project }
  in
  let cells =
    Plim_par.with_pool ~jobs (fun pool ->
        let pool = if Plim_par.jobs pool > 1 then Some pool else None in
        H.grid ?pool cfg ~strategies ~fault_rates:rates)
  in
  if json then
    List.iter (fun (_, _, r) -> print_endline (H.row_json r)) cells
  else begin
    Printf.printf
      "horizon: endurance %.3g writes/cell, epochs of %d requests, sampled \
       every %g, projecting to %.0e\n"
      endurance epoch_requests sample_every project;
    Printf.printf "%-18s %6s %10s %10s %11s %11s %9s %5s\n" "strategy" "rate"
      "ttff" "half-life" "proj-ttff" "proj-half" "capacity" "dead";
    let fmt_opt = function Some e -> Printf.sprintf "%.5g" e | None -> "-" in
    let proj r = function
      | Some e ->
        Printf.sprintf "%.3gy" (H.years_of r e *. r.H.r_project_factor)
      | None -> "-"
    in
    List.iter
      (fun (_, rate, r) ->
        Printf.printf "%-18s %6g %10s %10s %11s %11s %9.2f %5d\n"
          (H.strategy_name r.H.r_strategy)
          rate (fmt_opt r.H.r_ttff) (fmt_opt r.H.r_half_life)
          (proj r r.H.r_ttff) (proj r r.H.r_half_life) r.H.r_final_capacity
          r.H.r_dead_shards)
      cells
  end

let horizon_cmd =
  let sources =
    Arg.(value & pos_all string []
         & info [] ~docv:"BENCH"
             ~doc:"Benchmarks forming the program mix, most popular first \
                   (default: the small suite).")
  in
  let strategy_conv =
    Arg.conv
      ( (fun s ->
          match Plim_serve.Horizon.strategy_of_string s with
          | Ok st -> Ok st
          | Error e -> Error (`Msg e)),
        fun ppf st ->
          Format.pp_print_string ppf (Plim_serve.Horizon.strategy_name st) )
  in
  let strategies =
    Arg.(value & opt_all strategy_conv []
         & info [ "strategy" ] ~docv:"S"
             ~doc:"Endurance strategy: $(b,none), $(b,start_gap), \
                   $(b,wolfram_remap) or $(b,start_gap+wolfram) (repeatable; \
                   default: all four).")
  in
  let rates =
    Arg.(value & opt_all float []
         & info [ "rate" ] ~docv:"R"
             ~doc:"Permanent-fault rate of the wear model (repeatable; \
                   default: 0).")
  in
  let endurance =
    Arg.(value & opt float 2e5
         & info [ "endurance" ] ~docv:"E"
             ~doc:"Per-cell write budget of the campaign.")
  in
  let epoch_requests =
    Arg.(value & opt int 80
         & info [ "epoch-requests" ] ~docv:"N"
             ~doc:"Requests per epoch of simulated traffic.")
  in
  let sample_every =
    Arg.(value & opt float 2500.0
         & info [ "sample-every" ] ~docv:"N"
             ~doc:"Epochs between really-executed sampled epochs.")
  in
  let max_epochs =
    Arg.(value & opt float 40_000.0
         & info [ "max-epochs" ] ~docv:"N" ~doc:"Hard epoch horizon.")
  in
  let capacity_floor =
    Arg.(value & opt float 0.35
         & info [ "capacity-floor" ] ~docv:"F"
             ~doc:"Stop when the alive-shard fraction drops below $(docv).")
  in
  let psi =
    Arg.(value & opt int 100
         & info [ "psi" ] ~docv:"N" ~doc:"Start-Gap rotation period.")
  in
  let rekey_period =
    Arg.(value & opt int 50_000
         & info [ "rekey-period" ] ~docv:"N"
             ~doc:"Writes between WoLFRaM re-keys.")
  in
  let model_spares =
    Arg.(value & opt int 8
         & info [ "model-spares" ] ~docv:"N"
             ~doc:"Spare lines per shard in the wear model.")
  in
  let epoch_seconds =
    Arg.(value & opt float 60.0
         & info [ "epoch-seconds" ] ~docv:"S"
             ~doc:"Wall-clock seconds one epoch represents.")
  in
  let project =
    Arg.(value & opt float 1e10
         & info [ "project" ] ~docv:"E"
             ~doc:"Real device endurance the projected-years columns rescale \
                   to.")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"N" ~doc:"Initially active crossbar shards.")
  in
  let spare_shards =
    Arg.(value & opt int 1
         & info [ "spare-shards" ] ~docv:"N"
             ~doc:"Spare shards activated when an active shard dies.")
  in
  let cell_spares =
    Arg.(value & opt int 8
         & info [ "cell-spares" ] ~docv:"N"
             ~doc:"Spare lines per live server shard (sets the measured cell \
                   range).")
  in
  let lines =
    Arg.(value & opt int 0
         & info [ "lines" ] ~docv:"N"
             ~doc:"Logical lines per shard; 0 sizes to the largest compiled \
                   program at first use.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S"
             ~doc:"Campaign seed; every number in the output is a pure \
                   function of it.")
  in
  let zipf =
    Arg.(value & opt float 1.0
         & info [ "zipf" ] ~docv:"S"
             ~doc:"Zipf exponent of program popularity (0 = uniform).")
  in
  let hot =
    Arg.(value & opt float 0.8
         & info [ "hot" ] ~docv:"P"
             ~doc:"Probability an execution reuses a hot input vector.")
  in
  let hot_pool =
    Arg.(value & opt int 4
         & info [ "hot-pool" ] ~docv:"N"
             ~doc:"Recurring input vectors per program.")
  in
  let compile_ratio =
    Arg.(value & opt float 0.05
         & info [ "compile-ratio" ] ~docv:"P"
             ~doc:"Probability a sampled request is a (redundant) compile.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Run grid cells on $(docv) domains; results are \
                   byte-identical at every $(docv).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one plim-horizon/v1 row per grid cell instead of text.")
  in
  Cmd.v
    (Cmd.info "horizon"
       ~doc:
         "Accelerated-time device-lifetime campaigns: stream epochs of a \
          seeded request mix through the serve fleet, fast-forward wear \
          between sampled epochs via per-shard write-rate extrapolation, and \
          report time-to-first-device-death and capacity half-life per \
          endurance strategy (none, Start-Gap, WoLFRaM remap, or both \
          composed) across a fault-rate grid."
       ~man:
         [ `S Manpage.s_exit_status;
           `P "0 on success; 2 on usage errors." ])
    Term.(
      const horizon_run $ sources $ strategies $ rates $ endurance
      $ epoch_requests $ sample_every $ max_epochs $ capacity_floor $ psi
      $ rekey_period $ model_spares $ epoch_seconds $ project $ shards
      $ spare_shards $ cell_spares $ lines $ seed $ zipf $ hot $ hot_pool
      $ compile_ratio $ jobs $ json $ trace_arg $ metrics_arg
      $ profile_flag_arg)

let certify_run sources strategies rates endurance epoch_requests psi
    rekey_period model_spares shards spare_shards cell_spares lines zipf
    compile_ratio fault_seed json check_file =
  let module H = Plim_serve.Horizon in
  let module C = Plim_certify in
  let module Json = Plim_telemetry.Json in
  let specs =
    match sources with
    | [] -> Suite.small_suite
    | names ->
      List.map
        (fun name ->
          match Suite.find name with
          | spec -> spec
          | exception Not_found ->
            Printf.eprintf
              "plimc certify: %S is not a known benchmark (try 'plimc list')\n"
              name;
            exit 1)
        names
  in
  let mix = Plim_serve.Workload.mix_of_suite ~zipf ~compile_ratio specs in
  let strategies =
    match strategies with [] -> H.all_strategies | ss -> ss
  in
  let rates = match rates with [] -> [ 0.0 ] | rs -> rs in
  let base = H.default_config in
  let server =
    { base.H.server with
      Plim_serve.Server.shards;
      spare_shards;
      cell_spares;
      lines }
  in
  let cfg =
    { base with
      H.server;
      mix;
      endurance;
      epoch_requests;
      psi;
      wolfram_period = rekey_period;
      model_spares }
  in
  let cells = C.grid ~fault_seed cfg ~strategies ~fault_rates:rates in
  (match check_file with
  | None ->
    if json then
      List.iter (fun (_, _, c) -> print_endline (C.row_json c)) cells
    else begin
      Printf.printf
        "certify: endurance %.3g writes/cell, epochs of %d requests, \
         compile-ratio %g\n"
        endurance epoch_requests compile_ratio;
      Printf.printf "%-18s %6s %8s %9s %21s %21s %9s\n" "strategy" "rate"
        "writes" "rate-ub" "ttff [lo,hi]" "half-life [lo,hi]" "capacity0";
      List.iter
        (fun (_, rate, c) ->
          Printf.printf "%-18s %6g %8g %9.4g [%9.5g,%9.5g] [%9.5g,%9.5g] %9.2f\n"
            (H.strategy_name c.C.c_strategy)
            rate c.C.c_writes.C.upper c.C.c_rate_cell_upper
            c.C.c_ttff.C.lower c.C.c_ttff.C.upper c.C.c_half_life.C.lower
            c.C.c_half_life.C.upper c.C.c_capacity0)
        cells
    end
  | Some file ->
    (* accept both shapes a horizon run produces: a plim-bench results
       object (or bare array) and `plimc horizon --json` row-per-line *)
    let rows =
      match Json.parse_file file with
      | Ok (Json.Obj _ as j) ->
        (match Option.bind (Json.member "horizon" j) Json.to_list with
        | Some rows -> rows
        | None ->
          Printf.eprintf "plimc certify: %s has no \"horizon\" rows\n" file;
          exit 1)
      | Ok (Json.Arr rows) -> rows
      | Ok row -> [ row ]
      | Error _ ->
        let ic = open_in file in
        let rows = ref [] in
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" then
               match Json.parse line with
               | Ok row -> rows := row :: !rows
               | Error e ->
                 close_in ic;
                 Printf.eprintf "plimc certify: %s: %s\n" file e;
                 exit 1
           done
         with End_of_file -> close_in ic);
        List.rev !rows
    in
    if rows = [] then begin
      Printf.eprintf "plimc certify: %s contains no rows to check\n" file;
      exit 1
    end;
    let failures = ref 0 in
    List.iter
      (fun row ->
        match C.check_row_json cells row with
        | Ok lbl -> Printf.printf "ok   %s: inside the static bracket\n" lbl
        | Error e ->
          incr failures;
          Printf.printf "FAIL %s\n" e)
      rows;
    if !failures > 0 then begin
      Printf.eprintf "%d row(s) escape their certificates\n" !failures;
      exit 1
    end)

let certify_cmd =
  let sources =
    Arg.(value & pos_all string []
         & info [] ~docv:"BENCH"
             ~doc:"Benchmarks forming the program mix, most popular first \
                   (default: the small suite).")
  in
  let strategy_conv =
    Arg.conv
      ( (fun s ->
          match Plim_serve.Horizon.strategy_of_string s with
          | Ok st -> Ok st
          | Error e -> Error (`Msg e)),
        fun ppf st ->
          Format.pp_print_string ppf (Plim_serve.Horizon.strategy_name st) )
  in
  let strategies =
    Arg.(value & opt_all strategy_conv []
         & info [ "strategy" ] ~docv:"S"
             ~doc:"Endurance strategy: $(b,none), $(b,start_gap), \
                   $(b,wolfram_remap) or $(b,start_gap+wolfram) (repeatable; \
                   default: all four).")
  in
  let rates =
    Arg.(value & opt_all float []
         & info [ "rate" ] ~docv:"R"
             ~doc:"Permanent-fault rate of the wear model (repeatable; \
                   default: 0).")
  in
  let endurance =
    Arg.(value & opt float 2e5
         & info [ "endurance" ] ~docv:"E"
             ~doc:"Per-cell write budget being certified.")
  in
  let epoch_requests =
    Arg.(value & opt int 80
         & info [ "epoch-requests" ] ~docv:"N"
             ~doc:"Requests per epoch of simulated traffic.")
  in
  let psi =
    Arg.(value & opt int 100
         & info [ "psi" ] ~docv:"N" ~doc:"Start-Gap rotation period.")
  in
  let rekey_period =
    Arg.(value & opt int 50_000
         & info [ "rekey-period" ] ~docv:"N"
             ~doc:"Writes between WoLFRaM re-keys.")
  in
  let model_spares =
    Arg.(value & opt int 8
         & info [ "model-spares" ] ~docv:"N"
             ~doc:"Spare lines per shard in the wear model.")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"N" ~doc:"Initially active crossbar shards.")
  in
  let spare_shards =
    Arg.(value & opt int 1
         & info [ "spare-shards" ] ~docv:"N"
             ~doc:"Spare shards activated when an active shard dies.")
  in
  let cell_spares =
    Arg.(value & opt int 8
         & info [ "cell-spares" ] ~docv:"N"
             ~doc:"Spare lines per live server shard (sets the measured cell \
                   range).")
  in
  let lines =
    Arg.(value & opt int 0
         & info [ "lines" ] ~docv:"N"
             ~doc:"Logical lines per shard; 0 sizes to the largest compiled \
                   program, exactly like the simulator.")
  in
  let zipf =
    Arg.(value & opt float 1.0
         & info [ "zipf" ] ~docv:"S"
             ~doc:"Zipf exponent of program popularity (0 = uniform).")
  in
  let compile_ratio =
    Arg.(value & opt float 0.05
         & info [ "compile-ratio" ] ~docv:"P"
             ~doc:"Probability a sampled request is a (redundant) compile. \
                   Any positive value makes zero-wear epochs possible, so \
                   upper lifetime bounds become unbounded (-1).")
  in
  let fault_seed =
    Arg.(value & opt int 0xFA17
         & info [ "fault-seed" ] ~docv:"S"
             ~doc:"Root seed of the fault-spec derivation; must match the \
                   horizon campaign being checked (default matches \
                   $(b,plimc horizon)).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one plim-cert/v1 row per grid cell instead of text.")
  in
  let check_file =
    Arg.(value & opt (some file) None
         & info [ "check" ] ~docv:"FILE"
             ~doc:"Check every plim-horizon/v1 row in $(docv) (a plim-bench \
                   results file or $(b,plimc horizon --json) output) against \
                   its static bracket; exit 1 if any row escapes.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Static endurance certification: derive sound lower/upper bounds on \
          time-to-first-failure and capacity half-life for every (strategy, \
          fault-rate) grid cell from the compiled instruction streams and \
          the workload spec alone — no simulation — and optionally gate \
          simulated plim-horizon/v1 rows against their brackets."
       ~man:
         [ `S Manpage.s_exit_status;
           `P "0 on success; 1 when $(b,--check) finds a row outside its \
               bracket (or an unknown benchmark); 2 on usage errors." ])
    Term.(
      const certify_run $ sources $ strategies $ rates $ endurance
      $ epoch_requests $ psi $ rekey_period $ model_spares $ shards
      $ spare_shards $ cell_spares $ lines $ zipf $ compile_ratio $ fault_seed
      $ json $ check_file)

let selftest_run () =
  let failures = ref 0 in
  List.iter
    (fun spec ->
      let g = spec.Suite.build () in
      List.iter
        (fun config ->
          let r = Pipeline.compile config g in
          match Verify.check_random ~trials:4 ~seed:0xD0C g r.Pipeline.program with
          | Ok () -> Printf.printf "ok   %-12s %s\n%!" spec.Suite.name (Pipeline.config_name config)
          | Error e ->
            incr failures;
            Printf.printf "FAIL %-12s %s: %s\n%!" spec.Suite.name
              (Pipeline.config_name config) e)
        [ Pipeline.naive; Pipeline.endurance_full;
          Pipeline.with_cap 10 Pipeline.endurance_full ])
    Suite.small_suite;
  if !failures > 0 then begin
    Printf.eprintf "%d failures\n" !failures;
    exit 1
  end;
  print_endline "all self-tests passed"

let selftest_cmd =
  Cmd.v
    (Cmd.info "selftest"
       ~doc:
         "Compile the small benchmark suite under several configurations and verify \
          each program on the crossbar machine.")
    Term.(const selftest_run $ const ())

let main =
  Cmd.group
    (Cmd.info "plimc" ~version:"1.0.0"
       ~doc:"Endurance-aware compiler for the PLiM logic-in-memory computer")
    [ list_cmd; compile_cmd; stats_cmd; run_cmd; export_cmd; faults_cmd; fuzz_cmd;
      lint_cmd; report_cmd; profile_cmd; serve_cmd; horizon_cmd; certify_cmd;
      selftest_cmd ]

(* Usage problems — unknown subcommands, bad flags, unparsable option
   values — exit 2 uniformly across every subcommand (cmdliner's default
   would be 124); internal exceptions keep cmdliner's 125. *)
let () =
  match Cmd.eval_value main with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 125
