(* bench/compare.exe — the perf-regression gate over plim-bench result
   files.

     dune exec bench/compare.exe -- BASELINE.json CURRENT.json \
       [--threshold PCT] [--min-abs X] [--json FILE] [--verbose]

   Exit status: 0 when no tracked metric regressed, 1 on regression, 2
   on usage or parse errors.  Two identical files always exit 0 — the
   CI perf-gate invariant.  Accepts plim-bench/v1 and /v2 in either
   position; only metrics present in both files are compared. *)

module Report = Plim_telemetry.Report

let usage () =
  prerr_endline
    "usage: compare.exe BASELINE.json CURRENT.json [--threshold PCT]\n\
    \                   [--min-abs X] [--json FILE] [--verbose]\n\
     --threshold PCT  relative growth a metric must exceed to gate (default 2.0)\n\
     --min-abs X      absolute growth floor (default 1e-9; identical values\n\
    \                 never gate)\n\
     --json FILE      additionally write the plim-report/v1 document to FILE\n\
     --verbose        list every improvement, not just the top 10";
  exit 2

let () =
  let threshold = ref 2.0 in
  let min_abs = ref 1e-9 in
  let json_out = ref None in
  let verbose = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0.0 ->
        threshold := t;
        parse rest
      | _ -> usage ())
    | "--min-abs" :: v :: rest -> (
      match float_of_string_opt v with
      | Some m when m >= 0.0 ->
        min_abs := m;
        parse rest
      | _ -> usage ())
    | "--json" :: path :: rest ->
      json_out := Some path;
      parse rest
    | "--verbose" :: rest ->
      verbose := true;
      parse rest
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest ->
      files := a :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline; current ] -> (
    match
      Report.compare_files ~threshold_pct:!threshold ~min_abs:!min_abs ~baseline
        ~current ()
    with
    | Error e ->
      Printf.eprintf "compare: %s\n" e;
      exit 2
    | Ok c ->
      print_string (Report.render ~verbose:!verbose c);
      (match !json_out with
      | Some path ->
        let oc = open_out path in
        output_string oc (Report.to_json c);
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "wrote %s\n%!" path
      | None -> ());
      exit (if Report.has_regressions c then 1 else 0))
  | _ -> usage ()
