(* Reproduction harness: regenerates every table of the paper's evaluation
   (Section IV) plus ablations and Bechamel micro-benchmarks.

     dune exec bench/main.exe                 -- tables I, II, III + summary
     dune exec bench/main.exe -- table1       -- write traffic (Table I)
     dune exec bench/main.exe -- table2       -- #I / #R      (Table II)
     dune exec bench/main.exe -- table3       -- write caps   (Table III)
     dune exec bench/main.exe -- summary      -- paper-vs-measured averages
     dune exec bench/main.exe -- ablations    -- design-choice ablations
     dune exec bench/main.exe -- verify       -- machine-vs-MIG verification
     dune exec bench/main.exe -- faulttol     -- fault-injection degradation sweep
     dune exec bench/main.exe -- perf         -- Bechamel micro-benchmarks
     dune exec bench/main.exe -- all          -- everything *)

module Mig = Plim_mig.Mig
module Suite = Plim_benchgen.Suite
module Recipe = Plim_rewrite.Recipe
module Pipeline = Plim_core.Pipeline
module Verify = Plim_core.Verify
module Program = Plim_isa.Program
module Stats = Plim_stats.Stats
module Lifetime = Plim_stats.Lifetime
module Alloc = Plim_core.Alloc
module Select = Plim_core.Select
module Obs = Plim_obs.Obs
module Profile = Plim_obs.Profile
module Fault_model = Plim_fault.Fault_model
module Campaign = Plim_machine.Campaign
module Par = Plim_par
module Wear = Plim_telemetry.Wear
module Hgram = Plim_telemetry.Histogram
module Geometry = Plim_geometry

let caps = [ 10; 20; 50; 100 ]

(* ------------------------------------------------------------------ *)
(* Execution knobs shared by every subcommand: the domain pool behind
   [-j N], the table suite, and the determinism switches.  Tables and
   latest.json are byte-identical at every -j level; --deterministic
   additionally zeroes the two wall-clock fields of latest.json
   (generated_at, phase totals) so whole files diff clean. *)

let pool : Par.t option ref = ref None

let pmap f xs = match !pool with Some p -> Par.map p ~f xs | None -> List.map f xs

let pool_jobs () = match !pool with Some p -> Par.jobs p | None -> 1

let deterministic = ref false

let results_path = ref "bench/results/latest.json"

let suite = ref Suite.all

(* ------------------------------------------------------------------ *)
(* Experiment cache: per benchmark, rewrite twice and compile once per
   configuration; every table reads from here.  Parallel campaigns compute
   off-cache ([compute_benchmark]) and fill the cache at the merge, so the
   table only sees results in suite order and the Hashtbl is only touched
   from the submitting domain. *)

type bench_results = {
  spec : Suite.spec;
  naive : Pipeline.result;
  dac16 : Pipeline.result;
  min_write : Pipeline.result;
  endurance_rewrite : Pipeline.result;
  endurance_full : Pipeline.result;
  capped : (int * Pipeline.result) list;
}

let cache : (string, bench_results) Hashtbl.t = Hashtbl.create 32

let compute_benchmark spec =
  let g = Suite.build_cached spec in
  let g1 = Recipe.run Recipe.Algorithm1 ~effort:5 g in
  let g2 = Recipe.run Recipe.Algorithm2 ~effort:5 g in
  let base recipe_graph config = Pipeline.compile_rewritten config recipe_graph in
  { spec;
    naive = base g Pipeline.naive;
    dac16 = base g1 Pipeline.dac16;
    min_write = base g1 Pipeline.min_write;
    endurance_rewrite = base g2 Pipeline.endurance_rewrite;
    endurance_full = base g2 Pipeline.endurance_full;
    capped =
      (* nested per-cap sweep: the helping join makes this safe on the
         same pool that runs the per-benchmark fan-out *)
      pmap
        (fun cap -> (cap, base g2 (Pipeline.with_cap cap Pipeline.endurance_full)))
        caps }

let run_benchmark spec =
  match Hashtbl.find_opt cache spec.Suite.name with
  | Some r -> r
  | None ->
    let r = compute_benchmark spec in
    Hashtbl.replace cache spec.Suite.name r;
    r

let all_results () =
  let t0 = Unix.gettimeofday () in
  let results =
    pmap
      (fun spec ->
        Printf.eprintf "[bench] %s...\n%!" spec.Suite.name;
        Obs.span ("bench." ^ spec.Suite.name) (fun () -> compute_benchmark spec))
      !suite
  in
  List.iter (fun r -> Hashtbl.replace cache r.spec.Suite.name r) results;
  Printf.eprintf "[bench] table campaign wall-clock: %.2f s (-j %d, %d benchmarks)\n%!"
    (Unix.gettimeofday () -. t0)
    (pool_jobs ()) (List.length results);
  results

let impr baseline v = Stats.improvement_pct ~baseline v

(* 0.0 on [], never 0/0 = nan: an empty benchmark selection must not leak
   NaN into the AVG rows or latest.json *)
let avg = Stats.mean_list

(* ------------------------------------------------------------------ *)
(* Table I: write-traffic statistics of the endurance techniques. *)

let summary (r : Pipeline.result) = r.Pipeline.write_summary

let table1 results =
  Printf.printf
    "\nTABLE I — write traffic (min/max and STDEV of per-device write counts)\n";
  Printf.printf "%-10s %-9s| %-27s| %-27s| %-27s| %-27s| %-27s\n" "benchmark" "PI/PO"
    "naive" "PLiM compiler [21]" "min-write strategy" "+endurance rewriting"
    "+endurance compilation";
  let acc = Array.make 5 [] in
  List.iter
    (fun r ->
      let cols =
        [ summary r.naive; summary r.dac16; summary r.min_write;
          summary r.endurance_rewrite; summary r.endurance_full ]
      in
      let base = (List.nth cols 0).Stats.stdev in
      Printf.printf "%-10s %4d/%-4d" r.spec.Suite.name r.spec.Suite.pi r.spec.Suite.po;
      List.iteri
        (fun i s ->
          let im = impr base s.Stats.stdev in
          acc.(i) <- (s, im) :: acc.(i);
          if i = 0 then
            Printf.printf "| %4d/%-5d %7.2f      -  " s.Stats.min s.Stats.max s.Stats.stdev
          else
            Printf.printf "| %4d/%-5d %7.2f %5.1f%%  " s.Stats.min s.Stats.max s.Stats.stdev
              im)
        cols;
      print_newline ())
    results;
  Printf.printf "%-10s %9s" "AVG" "";
  Array.iteri
    (fun i col ->
      let stdev = avg (List.map (fun (s, _) -> s.Stats.stdev) col) in
      let im = avg (List.map snd col) in
      if i = 0 then Printf.printf "| %10s %7.2f      -  " "" stdev
      else Printf.printf "| %10s %7.2f %5.1f%%  " "" stdev im)
    acc;
  print_newline ();
  Printf.printf
    "(paper AVG STDEV: 48.49 | 29.33 / 31.0%% | 22.48 / 57.1%% | 15.07 / 64.4%% | 13.27 / 72.2%%)\n"

(* ------------------------------------------------------------------ *)
(* Table II: instruction and device counts. *)

let table2 results =
  Printf.printf "\nTABLE II — instructions (#I) and RRAM devices (#R)\n";
  Printf.printf "%-10s %9s  %18s  %20s  %24s\n" "benchmark" "PI/PO" "naive"
    "endurance rewriting" "endurance rewr.+comp.";
  Printf.printf "%-10s %9s  %9s %8s  %11s %8s  %15s %8s\n" "" "" "#I" "#R" "#I" "#R" "#I"
    "#R";
  let sums = Array.make 6 0 in
  List.iter
    (fun r ->
      let i0 = Program.length r.naive.Pipeline.program
      and r0 = Program.num_cells r.naive.Pipeline.program
      and i1 = Program.length r.endurance_rewrite.Pipeline.program
      and r1 = Program.num_cells r.endurance_rewrite.Pipeline.program
      and i2 = Program.length r.endurance_full.Pipeline.program
      and r2 = Program.num_cells r.endurance_full.Pipeline.program in
      List.iteri (fun k v -> sums.(k) <- sums.(k) + v) [ i0; r0; i1; r1; i2; r2 ];
      Printf.printf "%-10s %4d/%-4d  %9d %8d  %11d %8d  %15d %8d\n" r.spec.Suite.name
        r.spec.Suite.pi r.spec.Suite.po i0 r0 i1 r1 i2 r2)
    results;
  (* max 1: an empty selection prints a zero AVG row instead of NaN *)
  let n = float_of_int (max 1 (List.length results)) in
  Printf.printf "%-10s %9s  %9.1f %8.1f  %11.1f %8.1f  %15.1f %8.1f\n" "AVG" ""
    (float_of_int sums.(0) /. n)
    (float_of_int sums.(1) /. n)
    (float_of_int sums.(2) /. n)
    (float_of_int sums.(3) /. n)
    (float_of_int sums.(4) /. n)
    (float_of_int sums.(5) /. n);
  Printf.printf
    "(paper AVG: #I 33814.2 / 21373.0 / 21479.4 ; #R 1264.4 / 957.6 / 1034.5)\n"

(* ------------------------------------------------------------------ *)
(* Table III: the maximum write count strategy, caps 10/20/50/100. *)

let table3 results =
  Printf.printf
    "\nTABLE III — full endurance management under write caps (dash: unchanged)\n";
  Printf.printf "%-10s %9s" "benchmark" "PI/PO";
  List.iter (fun cap -> Printf.printf " | cap%-3d %8s %6s %7s" cap "#I" "#R" "STDEV") caps;
  print_newline ();
  let sums = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Printf.printf "%-10s %4d/%-4d" r.spec.Suite.name r.spec.Suite.pi r.spec.Suite.po;
      let prev = ref None in
      List.iter
        (fun (cap, res) ->
          let p = res.Pipeline.program in
          let stats = (Program.length p, Program.num_cells p, (summary res).Stats.stdev) in
          let ci, cr, cs =
            Hashtbl.find_opt sums cap |> Option.value ~default:(0, 0, 0.0)
          in
          let i, rr, s = stats in
          Hashtbl.replace sums cap (ci + i, cr + rr, cs +. s);
          let unchanged = match !prev with Some x -> x = stats | None -> false in
          prev := Some stats;
          if unchanged then Printf.printf " |     %9s %6s %7s" "-" "-" "-"
          else Printf.printf " |     %9d %6d %7.2f" i rr s)
        r.capped;
      print_newline ())
    results;
  let n = float_of_int (max 1 (List.length results)) in
  Printf.printf "%-10s %9s" "AVG" "";
  List.iter
    (fun cap ->
      let i, r, s = Hashtbl.find_opt sums cap |> Option.value ~default:(0, 0, 0.0) in
      Printf.printf " |     %9.1f %6.1f %7.2f" (float_of_int i /. n) (float_of_int r /. n)
        (s /. n))
    caps;
  print_newline ();
  Printf.printf
    "(paper AVG: cap10 22285.5/2559.3/1.55  cap20 21661.9/1568.1/2.66  cap50 21507.6/1173.8/4.27  cap100 21488.5/1091.5/6.47)\n"

(* ------------------------------------------------------------------ *)
(* Summary: the headline claims of the abstract. *)

let summary_table results =
  Printf.printf "\nSUMMARY — headline claims (paper vs this reproduction)\n";
  let capped_of r cap = List.assoc cap r.capped in
  let stdev_impr_cap100 =
    avg
      (List.map
         (fun r ->
           impr (summary r.naive).Stats.stdev (summary (capped_of r 100)).Stats.stdev)
         results)
  in
  let i_impr_cap100 =
    avg
      (List.map
         (fun r ->
           impr
             (float_of_int (Program.length r.naive.Pipeline.program))
             (float_of_int (Program.length (capped_of r 100).Pipeline.program)))
         results)
  in
  let r_impr_cap100 =
    avg
      (List.map
         (fun r ->
           impr
             (float_of_int (Program.num_cells r.naive.Pipeline.program))
             (float_of_int (Program.num_cells (capped_of r 100).Pipeline.program)))
         results)
  in
  let stdev_impr_cap10 =
    avg
      (List.map
         (fun r ->
           impr (summary r.naive).Stats.stdev (summary (capped_of r 10)).Stats.stdev)
         results)
  in
  let full_impr =
    avg
      (List.map
         (fun r ->
           impr (summary r.naive).Stats.stdev (summary r.endurance_full).Stats.stdev)
         results)
  in
  Printf.printf "  %-58s %9s %9s\n" "claim" "paper" "measured";
  Printf.printf "  %-58s %8.2f%% %8.2f%%\n"
    "STDEV reduction, full endurance mgmt + cap 100 (abstract)" 86.65 stdev_impr_cap100;
  Printf.printf "  %-58s %8.2f%% %8.2f%%\n" "instruction reduction at cap 100 (abstract)"
    36.45 i_impr_cap100;
  Printf.printf "  %-58s %8.2f%% %8.2f%%\n" "RRAM device reduction at cap 100 (abstract)"
    13.67 r_impr_cap100;
  Printf.printf "  %-58s %8.2f%% %8.2f%%\n" "STDEV reduction at cap 10 (Section IV)" 96.8
    stdev_impr_cap10;
  Printf.printf "  %-58s %8.2f%% %8.2f%%\n"
    "STDEV reduction, uncapped (Table I last column)" 72.17 full_impr;
  let lifetime_gain =
    avg
      (List.map
         (fun r ->
           let life res =
             (Lifetime.estimate ~endurance:1e10
                (Program.static_write_counts res.Pipeline.program))
               .Lifetime.executions_to_first_failure
           in
           life (capped_of r 100) /. life r.naive)
         results)
  in
  Printf.printf
    "  derived: executions-to-first-failure gain at cap 100 (1e10 endurance): %.1fx average\n"
    lifetime_gain

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 4). *)

let ablation_subset = [ "sin"; "cavlc"; "i2c"; "router"; "adder" ]

let ablations () =
  let specs = List.map Suite.find ablation_subset in
  Printf.printf "\nABLATION A — allocation policy (Algorithm 2 + level-first fixed)\n";
  Printf.printf "%-10s %12s %12s %12s\n" "benchmark" "lifo" "fifo" "min-write";
  List.iter
    (fun spec ->
      let g = Recipe.run Recipe.Algorithm2 ~effort:5 (Suite.build_cached spec) in
      let sd alloc =
        (Pipeline.compile_rewritten
           { Pipeline.endurance_full with Pipeline.allocation = alloc }
           g)
          .Pipeline.write_summary.Stats.stdev
      in
      Printf.printf "%-10s %12.2f %12.2f %12.2f\n" spec.Suite.name (sd Alloc.Lifo)
        (sd Alloc.Fifo) (sd Alloc.Min_write))
    specs;
  Printf.printf "\nABLATION B — node selection (Algorithm 2 + min-write fixed)\n";
  Printf.printf "%-10s %12s %14s %12s\n" "benchmark" "in-order" "release-first"
    "level-first";
  List.iter
    (fun spec ->
      let g = Recipe.run Recipe.Algorithm2 ~effort:5 (Suite.build_cached spec) in
      let sd sel =
        (Pipeline.compile_rewritten
           { Pipeline.endurance_full with Pipeline.selection = sel }
           g)
          .Pipeline.write_summary.Stats.stdev
      in
      Printf.printf "%-10s %12.2f %14.2f %12.2f\n" spec.Suite.name (sd Select.In_order)
        (sd Select.Release_first) (sd Select.Level_first))
    specs;
  Printf.printf "\nABLATION C — destination tie-break by write count (beyond the paper)\n";
  Printf.printf "%-10s %12s %16s\n" "benchmark" "paper" "dest-min-write";
  List.iter
    (fun spec ->
      let g = Recipe.run Recipe.Algorithm2 ~effort:5 (Suite.build_cached spec) in
      let sd dmw =
        (Pipeline.compile_rewritten
           { Pipeline.endurance_full with Pipeline.dest_min_write = dmw }
           g)
          .Pipeline.write_summary.Stats.stdev
      in
      Printf.printf "%-10s %12.2f %16.2f\n" spec.Suite.name (sd false) (sd true))
    specs;
  Printf.printf "\nABLATION D — rewriting effort sweep (Algorithm 2, benchmark: sin)\n";
  Printf.printf "%-8s %10s %10s %10s\n" "effort" "MIG size" "#I" "STDEV";
  let g = Suite.build_cached (Suite.find "sin") in
  List.iter
    (fun effort ->
      let g' = Recipe.run Recipe.Algorithm2 ~effort g in
      let r = Pipeline.compile_rewritten Pipeline.endurance_full g' in
      Printf.printf "%-8d %10d %10d %10.2f\n" effort (Mig.size g')
        (Program.length r.Pipeline.program)
        r.Pipeline.write_summary.Stats.stdev)
    [ 0; 1; 2; 3; 5 ];
  Printf.printf "\nABLATION E — psi.C in the rewriting loop (Algorithm 1 vs Algorithm 2)\n";
  Printf.printf "%-10s %18s %18s\n" "benchmark" "alg1 #I/stdev" "alg2 #I/stdev";
  List.iter
    (fun spec ->
      let r = run_benchmark spec in
      Printf.printf "%-10s %11d/%6.2f %11d/%6.2f\n" spec.Suite.name
        (Program.length r.min_write.Pipeline.program)
        (summary r.min_write).Stats.stdev
        (Program.length r.endurance_rewrite.Pipeline.program)
        (summary r.endurance_rewrite).Stats.stdev)
    specs

(* ------------------------------------------------------------------ *)
(* Section II quantified: IMPLY-based logic-in-memory vs RM3.  The paper
   motivates RM3 by the write concentration of IMP's work devices. *)

let section2 () =
  Printf.printf
    "\nSECTION II — IMPLY-based synthesis vs RM3 (write concentration argument)\n";
  Printf.printf "%-12s | %28s | %28s | %28s\n" "benchmark" "IMP (lifo reuse)"
    "IMP + min-write" "RM3 compiler + min-write";
  Printf.printf "%-12s | %8s %6s %5s %7s | %28s | %8s %6s %5s %7s\n" "" "#I" "#R" "max"
    "stdev" "max / stdev" "#I" "#R" "max" "stdev";
  List.iter
    (fun name ->
      let spec = Suite.find name in
      let g = spec.Suite.build () in
      let imp = Plim_imp.Imp.compile g in
      let imp_min = Plim_imp.Imp.compile ~strategy:Alloc.Min_write g in
      let rm3 = Pipeline.compile Pipeline.min_write g in
      let si = Stats.summarize (Plim_imp.Imp.static_write_counts imp) in
      let sm = Stats.summarize (Plim_imp.Imp.static_write_counts imp_min) in
      let sr = rm3.Pipeline.write_summary in
      Printf.printf "%-12s | %8d %6d %5d %7.2f | %16d / %9.2f | %8d %6d %5d %7.2f\n" name
        (Plim_imp.Imp.length imp)
        (Plim_imp.Imp.num_cells imp)
        si.Stats.max si.Stats.stdev sm.Stats.max sm.Stats.stdev
        (Program.length rm3.Pipeline.program)
        (Program.num_cells rm3.Pipeline.program)
        sr.Stats.max sr.Stats.stdev)
    [ "adder8"; "multiplier8"; "div8"; "voter15"; "dec4"; "rc_small" ];
  Printf.printf
    "RM3 shares writes over three operands; IMP rewrites only its work devices\n\
     (Section II: 'higher write traffic in the memory cell storing the output').\n"

(* ------------------------------------------------------------------ *)
(* Architectural wear levelling (Start-Gap, ref [8]) vs compiler-level
   endurance management. *)

let wearlevel () =
  Printf.printf
    "\nWEAR LEVELLING — Start-Gap rotation [8] vs endurance-aware compilation\n";
  Printf.printf "(per-physical-cell stats after 100 executions; psi = 100)\n";
  Printf.printf "%-12s %26s %26s %26s\n" "benchmark" "naive" "naive + start-gap"
    "endurance-full + cap 10";
  List.iter
    (fun name ->
      let spec = Suite.find name in
      let g = spec.Suite.build () in
      let executions = 100 in
      let stats_of counts = Stats.summarize counts in
      let scale counts = Array.map (fun w -> w * executions) counts in
      let naive = Pipeline.compile Pipeline.naive g in
      let balanced = Pipeline.compile (Pipeline.with_cap 10 Pipeline.endurance_full) g in
      let naive_counts = Program.static_write_counts naive.Pipeline.program in
      let rotated =
        Plim_rram.Start_gap.replay ~psi:100 ~executions naive_counts
      in
      let s0 = stats_of (scale naive_counts) in
      let s1 = stats_of rotated in
      let s2 =
        stats_of (scale (Program.static_write_counts balanced.Pipeline.program))
      in
      let pr s = Printf.sprintf "max %6d stdev %8.1f" s.Stats.max s.Stats.stdev in
      Printf.printf "%-12s %26s %26s %26s\n" name (pr s0) (pr s1) (pr s2))
    [ "adder8"; "multiplier8"; "sqrt8"; "rc_small" ];
  Printf.printf
    "Start-Gap levels wear across executions at ~1%% write overhead but cannot\n\
     fix intra-program imbalance faster than its rotation period; the compiler\n\
     bounds every device within a single execution.  The two compose.\n"

(* ------------------------------------------------------------------ *)
(* Write-distribution histogram: the visual intuition behind Table I. *)

let histogram () =
  Printf.printf "\nHISTOGRAM — per-device write distribution (benchmark: sin)\n";
  let spec = Suite.find "sin" in
  let g = Suite.build_cached spec in
  let show config =
    let r = Pipeline.compile config g in
    let writes = Program.static_write_counts r.Pipeline.program in
    let s = r.Pipeline.write_summary in
    Printf.printf "\n%s  (devices %d, stdev %.2f)\n" (Pipeline.config_name config)
      (Array.length writes) s.Stats.stdev;
    let buckets = Stats.histogram ~bucket:25 writes in
    let peak = List.fold_left (fun acc (_, c) -> max acc c) 1 buckets in
    List.iter
      (fun (lo, count) ->
        let bar = max 1 (count * 50 / peak) in
        Printf.printf "  %5d-%-5d %6d %s\n" lo (lo + 24) count (String.make bar '#'))
      buckets
  in
  show Pipeline.naive;
  show Pipeline.endurance_full;
  show (Pipeline.with_cap 20 Pipeline.endurance_full)

(* ------------------------------------------------------------------ *)
(* Dynamic wear-out campaigns: empirical executions-to-first-failure on
   an endurance-limited crossbar, vs the static prediction. *)

let lifetime_bench () =
  Printf.printf
    "\nLIFETIME — simulated executions to first device failure (endurance 10000)\n";
  Printf.printf "%-12s %-24s %10s %10s %12s %10s\n" "benchmark" "configuration" "measured"
    "predicted" "+start-gap" "energy/run";
  let endurance = 10_000 in
  List.iter
    (fun name ->
      let spec = Suite.find name in
      let g = spec.Suite.build () in
      List.iter
        (fun config ->
          let r = Pipeline.compile config g in
          let p = r.Pipeline.program in
          let max_writes = Array.fold_left max 1 (Program.static_write_counts p) in
          let predicted = endurance / max_writes in
          let measured =
            (Plim_machine.Campaign.run_until_failure ~endurance ~max_executions:100_000 p)
              .Plim_machine.Campaign.executions_completed
          in
          let rotated =
            (Plim_machine.Campaign.run_with_start_gap ~psi:100 ~endurance
               ~max_executions:100_000 p)
              .Plim_machine.Campaign.executions_completed
          in
          let inputs =
            Array.to_list (Array.map (fun (n, _) -> (n, false)) p.Program.pi_cells)
          in
          let _, xbar, run_stats = Plim_machine.Plim_controller.run p ~inputs in
          let energy = Plim_machine.Energy.of_run xbar run_stats in
          Printf.printf "%-12s %-24s %10d %10d %12d %8.1f pJ\n%!" name
            (Pipeline.config_name config) measured predicted rotated
            energy.Plim_machine.Energy.total_pj)
        [ Pipeline.naive; Pipeline.endurance_full;
          Pipeline.with_cap 10 Pipeline.endurance_full ])
    [ "adder8"; "multiplier8"; "rc_small" ];
  Printf.printf
    "Static prediction = endurance / max static writes; the campaign executes the\n\
     program on a failing crossbar and matches it exactly.  Start-Gap rotation\n\
     layered on top composes with compilation, with the largest relative gain on\n\
     the unbalanced naive programs.\n"

(* ------------------------------------------------------------------ *)
(* Fault tolerance: graceful degradation under stuck-at injection and
   wear-out, behind write-verify + spare-line remapping (Plim_fault).
   JSON rows accumulate here and land in bench/results/latest.json. *)

let faulttol_rows : string list ref = ref []

let faulttol () =
  let rates = [ 0.0; 0.005; 0.01; 0.02; 0.05 ] in
  let budgets = [ 0; 8; 64 ] in
  let execs = 40 in
  Printf.printf
    "\nFAULT TOLERANCE — graceful degradation under stuck-at injection\n";
  Printf.printf
    "(write-verify campaigns, %d executions each; inj = faults injected across the\n\
    \ physical array incl. spares; capacity = surviving fraction; ok = executions\n\
    \ whose outputs matched the MIG oracle / executions completed)\n"
    execs;
  Printf.printf "%-10s %6s" "benchmark" "rate";
  List.iter
    (fun sp -> Printf.printf " | %-21s" (Printf.sprintf "spares=%d inj/cap/ok" sp))
    budgets;
  print_newline ();
  let mono_violations = ref 0 in
  List.iter
    (fun name ->
      let spec = Suite.find name in
      let g = Suite.build_cached spec in
      let r = Pipeline.compile Pipeline.endurance_full g in
      let p = r.Pipeline.program in
      (match Verify.check_random ~trials:4 ~seed:0xFA g p with
      | Ok () -> ()
      | Error e ->
        Printf.printf "  %s: fault-free verification FAILED: %s\n" name e);
      (* every (rate, spares) campaign is independent; the sweep fans out
         on the pool and returns cells in grid order, so printing, the
         monotonicity self-check and the JSON rows below are identical at
         every -j level *)
      let cells =
        Campaign.sweep_degraded ?pool:!pool ~seed:0xBE57 ~max_executions:execs
          ~verify:true ~oracle:(Mig.eval g)
          ~fault_spec_of:(fun rate ->
            Fault_model.make ~sa0:(rate *. 2.0 /. 3.0) ~sa1:(rate /. 3.0)
              ~seed:0xFA017 ())
          ~rates ~spare_budgets:budgets p
      in
      let cell = Array.of_list cells in
      let nb = List.length budgets in
      let prev_cap = Hashtbl.create 4 in
      List.iteri
        (fun ri rate ->
          Printf.printf "%-10s %6.3f" name rate;
          List.iteri
            (fun si spares ->
              let d = cell.((ri * nb) + si).Campaign.outcome in
              (* coupled-threshold sampling: for a fixed physical array size,
                 a higher rate injects a superset of the faults, so capacity
                 must be non-increasing down each column *)
              (match Hashtbl.find_opt prev_cap spares with
              | Some c when d.Campaign.final_capacity > c +. 1e-9 ->
                incr mono_violations
              | _ -> ());
              Hashtbl.replace prev_cap spares d.Campaign.final_capacity;
              Printf.printf " | %4d %6.4f %3d/%-3d" d.Campaign.injected
                d.Campaign.final_capacity d.Campaign.correct d.Campaign.executions;
              faulttol_rows :=
                Printf.sprintf
                  "{\"benchmark\":%s,\"rate\":%g,\"spares\":%d,\"injected\":%d,\
                   \"detections\":%d,\"remaps\":%d,\"verify_reads\":%d,\"retries\":%d,\
                   \"executions\":%d,\"correct\":%d,\"incorrect\":%d,\"capacity\":%.6g,\
                   \"spares_remaining\":%d,\"survived\":%b}"
                  (Plim_util.Jsonx.quote name)
                  rate spares d.Campaign.injected d.Campaign.detections
                  d.Campaign.remaps d.Campaign.verify_reads d.Campaign.retries
                  d.Campaign.executions d.Campaign.correct d.Campaign.incorrect
                  d.Campaign.final_capacity d.Campaign.spares_remaining
                  (d.Campaign.ended = Campaign.Max_executions)
                :: !faulttol_rows)
            budgets;
          print_newline ())
        rates)
    [ "adder8"; "dec4"; "rc_small" ];
  if !mono_violations = 0 then
    Printf.printf
      "monotonicity: ok — higher fault rate never increased surviving capacity\n"
  else Printf.printf "monotonicity: %d VIOLATIONS\n" !mono_violations;
  Printf.printf
    "\nWEAR + REPAIR — endurance 400 writes/cell, transient 1e-3 (adder8)\n";
  Printf.printf
    "(run_until_failure crashes at the first worn cell; the degraded campaign\n\
    \ detects the stuck cell by read-back and remaps it to a spare line)\n";
  let spec = Suite.find "adder8" in
  let g = Suite.build_cached spec in
  let p = (Pipeline.compile Pipeline.endurance_full g).Pipeline.program in
  let endurance = 400 in
  let crash =
    (Campaign.run_until_failure ~endurance ~max_executions:100_000 p)
      .Campaign.executions_completed
  in
  Printf.printf "%-8s %12s %10s %8s %8s %10s\n" "spares" "executions" "vs-crash"
    "remaps" "retries" "capacity";
  Printf.printf "%-8s %12d %10s %8s %8s %10s   (run_until_failure)\n" "-" crash "1.0x"
    "-" "-" "-";
  (* each spare budget is an independent campaign: fan out, print in order *)
  let outcomes =
    pmap
      (fun spares ->
        let fault_spec = Fault_model.make ~transient:1e-3 ~seed:0x77EA () in
        ( spares,
          Campaign.run_degraded ~seed:0xBE57 ~max_executions:100_000 ~endurance
            ~spares ~verify:true ~fault_spec ~oracle:(Mig.eval g) p ))
      [ 0; 4; 16; 64 ]
  in
  List.iter
    (fun (spares, d) ->
      Printf.printf "%-8d %12d %9.1fx %8d %8d %10.4f\n" spares d.Campaign.executions
        (float_of_int d.Campaign.executions /. float_of_int (max 1 crash))
        d.Campaign.remaps d.Campaign.retries d.Campaign.final_capacity;
      faulttol_rows :=
        Printf.sprintf
          "{\"benchmark\":\"adder8\",\"endurance\":%d,\"spares\":%d,\"injected\":%d,\
           \"worn_out\":%d,\"detections\":%d,\"remaps\":%d,\"verify_reads\":%d,\
           \"retries\":%d,\"transient_failures\":%d,\"executions\":%d,\"correct\":%d,\
           \"incorrect\":%d,\"capacity\":%.6g,\"spares_remaining\":%d,\"survived\":%b}"
          endurance spares d.Campaign.injected d.Campaign.worn_out
          d.Campaign.detections d.Campaign.remaps d.Campaign.verify_reads
          d.Campaign.retries d.Campaign.transient_failures d.Campaign.executions
          d.Campaign.correct d.Campaign.incorrect d.Campaign.final_capacity
          d.Campaign.spares_remaining
          (d.Campaign.ended = Campaign.Max_executions)
        :: !faulttol_rows)
    outcomes

(* ------------------------------------------------------------------ *)
(* Wear trajectory: a degradation campaign sampled over time — the skew
   time series (stdev/gini/max-mean of the per-cell wear distribution)
   plus a final per-cell heatmap.  Campaign.run_degraded never touches
   the pool and its sampler is a pure function of the execution
   sequence, so this section is byte-identical at every -j level; it is
   part of the bench-j1 == bench-j4 diff gate. *)

let wear_rows : string list ref = ref []

let wear () =
  Printf.printf
    "\nWEAR TRAJECTORY — skew time series of a degradation campaign\n";
  let endurance = 2_000 and execs = 400 and spares = 16 in
  Printf.printf
    "(adder8, endurance-full; endurance %d writes/cell, %d spares, transient 1e-3,\n\
    \ %d executions; write-verify detects worn cells and remaps to spares)\n"
    endurance spares execs;
  let spec = Suite.find "adder8" in
  let g = Suite.build_cached spec in
  let p = (Pipeline.compile Pipeline.endurance_full g).Pipeline.program in
  let d =
    Campaign.run_degraded ~seed:0xBE57 ~max_executions:execs ~sample_every:20
      ~endurance ~spares ~verify:true
      ~fault_spec:(Fault_model.make ~transient:1e-3 ~seed:0x77EA ())
      ~oracle:(Mig.eval g) p
  in
  Format.printf "%a" Campaign.pp_trajectory d.Campaign.trajectory;
  Printf.printf
    "\nfinal wear heatmap (%d physical cells incl. %d spares; '@' = most worn):\n"
    (Array.length d.Campaign.final_wear)
    spares;
  print_string (Wear.heatmap d.Campaign.final_wear);
  Printf.printf
    "executions %d, %d worn out, %d remaps, capacity %.4f\n" d.Campaign.executions
    d.Campaign.worn_out d.Campaign.remaps d.Campaign.final_capacity;
  wear_rows :=
    [ Printf.sprintf
        "{\"benchmark\":\"adder8\",\"config\":\"endurance-full\",\"endurance\":%d,\
         \"spares\":%d,\"executions\":%d,\"worn_out\":%d,\"remaps\":%d,\
         \"capacity\":%.6g,\"trajectory\":%s,\"heatmap\":%s}"
        endurance spares d.Campaign.executions d.Campaign.worn_out d.Campaign.remaps
        d.Campaign.final_capacity
        (Campaign.trajectory_json d.Campaign.trajectory)
        (Wear.heatmap_json ~label:"adder8/endurance-full" d.Campaign.final_wear) ]

(* ------------------------------------------------------------------ *)
(* Serve: throughput/latency of the compile-and-execute service core
   (Plim_serve) replaying seeded request mixes against a fleet of
   persistent crossbar shards.  Latencies are simulated memory-access
   cycles (static cycles + verify overhead), so every printed number and
   JSON field except wall_s/requests_per_sec is a pure function of the
   mix seed — part of the bench-j1 == bench-j4 diff gate; wall fields
   are zeroed under --deterministic like the phase totals. *)

let serve_rows : string list ref = ref []

let serve () =
  Printf.printf
    "\nSERVE — compile-and-execute service over a persistent shard fleet\n";
  let mix =
    Plim_serve.Workload.mix_of_suite ~zipf:1.1 ~hot_fraction:0.8 ~hot_pool:4
      ~compile_ratio:0.05 Suite.small_suite
  in
  Printf.printf
    "(small-suite mix: zipf 1.1 popularity, 80%% hot inputs over 4 vectors per\n\
    \ program, 5%% redundant compiles; write-verify on, outputs checked against\n\
    \ a fault-free reference; latencies in simulated memory-access cycles)\n";
  let scenarios =
    [ (* steady state: mild transient faults, nobody retires *)
      ( "steady", 240, 0x5E12,
        { Plim_serve.Server.default_config with
          Plim_serve.Server.fault_spec =
            Fault_model.make ~transient:1e-4 ~seed:0x5EED1 ();
          seed = 0x5E12 },
        [] );
      (* retirement drill: endurance wear plus two forced retirements
         halfway through — the spare shard must absorb the traffic with
         zero incorrect executions *)
      ( "retire", 240, 0x5E34,
        { Plim_serve.Server.default_config with
          Plim_serve.Server.shards = 3;
          spare_shards = 2;
          cell_spares = 16;
          endurance = Some 4_000;
          fault_spec = Fault_model.make ~transient:1e-4 ~seed:0x5EED2 ();
          seed = 0x5E34 },
        [ 0; 1 ] ) ]
  in
  Printf.printf "%-8s %8s %6s %6s %6s %5s %5s %7s %7s %8s %7s\n" "scenario"
    "requests" "hits" "miss" "execs" "rerun" "bad" "lat-p50" "lat-p99" "retired"
    "gini";
  List.iter
    (fun (label, requests, seed, cfg, retire_ids) ->
      let stream = Plim_serve.Workload.generate ~seed ~requests mix in
      let server = Plim_serve.Server.create cfg in
      let t0 = Unix.gettimeofday () in
      (match retire_ids with
      | [] -> ignore (Plim_serve.Server.run ?pool:!pool server stream)
      | ids ->
        let n = List.length stream in
        let first = List.filteri (fun i _ -> i < n / 2) stream in
        let second = List.filteri (fun i _ -> i >= n / 2) stream in
        ignore (Plim_serve.Server.run ?pool:!pool server first);
        List.iter (fun id -> ignore (Plim_serve.Server.force_retire server id)) ids;
        ignore (Plim_serve.Server.run ?pool:!pool server second));
      let wall = if !deterministic then 0.0 else Unix.gettimeofday () -. t0 in
      let s = Plim_serve.Server.summary server in
      let lat = Plim_serve.Server.latency server in
      let skew = Plim_serve.Server.fleet_skew server in
      Printf.printf "%-8s %8d %6d %6d %6d %5d %5d %7d %7d %8d %7.4f\n" label
        s.Plim_serve.Server.requests s.Plim_serve.Server.cache_hits
        s.Plim_serve.Server.cache_misses s.Plim_serve.Server.executes
        s.Plim_serve.Server.re_runs s.Plim_serve.Server.incorrect
        (Hgram.p50 lat) (Hgram.p99 lat) s.Plim_serve.Server.retired_shards
        skew.Wear.gini;
      List.iter
        (fun (id, status, writes) ->
          Printf.printf "  shard %d: %-7s %7d writes\n" id
            (Plim_serve.Shard.status_name status)
            writes)
        (Plim_serve.Server.shard_statuses server);
      serve_rows :=
        Plim_serve.Server.row_json server ~label ~wall_s:wall :: !serve_rows)
    scenarios;
  Printf.printf
    "(the retire drill's spare shards go active and absorb the second half of\n\
    \ the stream; correctness is preserved by write-verify + re-execution)\n"

(* ------------------------------------------------------------------ *)
(* Horizon: accelerated-time device-lifetime campaigns over the serve
   fleet.  Sampled epochs of real traffic set per-cell write rates;
   between samples wear fast-forwards in closed form, so each grid cell
   simulates the whole life of the fleet (until the capacity floor) in
   milliseconds.  Every number is a pure function of the seeds -- the
   rows are part of the -j1 == -j4 byte-identity gate. *)

let horizon_rows : string list ref = ref []
let cert_rows : string list ref = ref []

let horizon () =
  let module H = Plim_serve.Horizon in
  Printf.printf
    "\nHORIZON — years of traffic to first device death, per endurance strategy\n";
  let base = H.default_config in
  Printf.printf
    "(endurance %.3g writes/cell; epochs of %d requests, sampled every %g;\n\
    \ lifetimes also projected to %.0e-write devices — the paper's Table III\n\
    \ restated as time-to-first-failure / capacity half-life per strategy)\n"
    base.H.endurance base.H.epoch_requests base.H.sample_every
    base.H.project_endurance;
  let rates = [ 0.0; 0.005; 0.02 ] in
  let cells = H.grid ?pool:!pool base ~strategies:H.all_strategies ~fault_rates:rates in
  Printf.printf "%-18s %6s %9s %10s %11s %9s %5s %6s\n" "strategy" "rate"
    "ttff" "half-life" "proj-ttff" "capacity" "dead" "gini";
  let fmt_opt = function Some e -> Printf.sprintf "%.4g" e | None -> "-" in
  List.iter
    (fun (_, rate, r) ->
      let proj =
        match r.H.r_ttff with
        | Some e -> Printf.sprintf "%.3gy" (H.years_of r e *. r.H.r_project_factor)
        | None -> "-"
      in
      Printf.printf "%-18s %6g %9s %10s %11s %9.2f %5d %6.4f\n"
        (H.strategy_name r.H.r_strategy)
        rate (fmt_opt r.H.r_ttff) (fmt_opt r.H.r_half_life) proj
        r.H.r_final_capacity r.H.r_dead_shards r.H.r_skew.Wear.gini)
    cells;
  (* self-check: the combined strategy must strictly outlive the unmanaged
     baseline at every fault rate, on both lifetime metrics *)
  let find st rate =
    List.find (fun (s, r, _) -> s = st && r = rate) cells |> fun (_, _, r) -> r
  in
  let opt_inf = function Some e -> e | None -> infinity in
  let violations =
    List.concat_map
      (fun rate ->
        let none = find H.No_leveling rate in
        let both = find H.Start_gap_wolfram rate in
        let check name a b =
          if opt_inf b > opt_inf a then []
          else
            [ Printf.sprintf "%s at rate %g: start_gap+wolfram %g <= none %g"
                name rate (opt_inf b) (opt_inf a) ]
        in
        check "ttff" none.H.r_ttff both.H.r_ttff
        @ check "half-life" none.H.r_half_life both.H.r_half_life)
      rates
  in
  (match violations with
  | [] ->
    Printf.printf
      "(ok: start_gap+wolfram strictly outlives none at every fault rate)\n"
  | vs -> List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) vs);
  (* static certification gate: every simulated grid cell must fall
     inside the bracket Plim_certify derives without simulating.  The
     default mix (compile_ratio > 0) only has finite lower bounds, so a
     second exec-only grid pins the upper ends too; its rows ride along
     in the results under a "/exec" label suffix. *)
  let module C = Plim_certify in
  let cert_fail = ref 0 in
  let gate cells certs =
    List.iter
      (fun (_, _, r) ->
        match C.find certs (H.label r) with
        | None ->
          incr cert_fail;
          Printf.printf "CERT FAIL %s: no matching certificate\n" (H.label r)
        | Some c -> (
          match C.check_result c r with
          | Ok () -> ()
          | Error e ->
            incr cert_fail;
            Printf.printf "CERT FAIL %s: %s\n" (H.label r) e))
      cells
  in
  let certs = C.grid base ~strategies:H.all_strategies ~fault_rates:rates in
  gate cells certs;
  let xbase =
    { base with
      H.mix =
        { base.H.mix with Plim_serve.Workload.compile_ratio = 0.0 } }
  in
  let xcells =
    H.grid ?pool:!pool xbase ~strategies:H.all_strategies ~fault_rates:rates
  in
  let xcerts = C.grid xbase ~strategies:H.all_strategies ~fault_rates:rates in
  gate xcells xcerts;
  if !cert_fail > 0 then begin
    Printf.eprintf "[bench] %d simulated cell(s) escape their static certificates\n"
      !cert_fail;
    exit 1
  end;
  Printf.printf
    "(ok: all %d simulated cells inside their static wear-bound certificates)\n"
    (List.length cells + List.length xcells);
  cert_rows :=
    List.map (fun (_, _, c) -> C.row_json c) certs
    @ List.map
        (fun (_, _, c) -> C.row_json ~label:(C.label c ^ "/exec") c)
        xcerts;
  horizon_rows :=
    List.map (fun (_, _, r) -> H.row_json r) cells
    @ List.map
        (fun (_, _, r) -> H.row_json ~label:(H.label r ^ "/exec") r)
        xcells

(* ------------------------------------------------------------------ *)
(* Geometry: the area/latency trade-off curve of the crossbar-geometry
   backend.  Each suite benchmark is compiled once (endurance-full) and
   its instruction stream scheduled on grids of widening column count;
   latency is the number of row-parallel instruction groups, area the
   rows*cols device bound.  Every number is a pure function of the
   program and grid, so the rows are part of the -j1 == -j4
   byte-identity gate. *)

let geometry_rows : string list ref = ref []

let geometry_cols = [ 1; 4; 16; 64 ]

let geometry () =
  Printf.printf
    "\nGEOMETRY — area/latency trade-off of row-parallel scheduling\n";
  Printf.printf
    "(endurance-full programs placed row-major on ROWSxCOLS grids; each cycle\n\
    \ fires every ready instruction whose cells share one row, so group count\n\
    \ falls as columns widen while area tracks the grid bound; cols=1 is the\n\
    \ serial flat-controller baseline)\n";
  Printf.printf "%-12s %5s %10s %6s %7s %7s %10s %9s %8s\n" "benchmark" "cols"
    "grid" "area" "instrs" "groups" "cross-row" "max-group" "speedup";
  List.iter
    (fun spec ->
      let g = Suite.build_cached spec in
      let p = (Pipeline.compile Pipeline.endurance_full g).Pipeline.program in
      let n_instr = Program.length p in
      let n_cells = Program.num_cells p in
      List.iter
        (fun cols ->
          let grid = Geometry.grid_for ~cols ~num_cells:n_cells in
          let gname = Geometry.to_string grid in
          let sched =
            match Geometry.schedule grid p with
            | Ok s -> s
            | Error e ->
              Printf.eprintf "geometry: %s @%s: %s\n" spec.Suite.name gname e;
              exit 1
          in
          (match Geometry.validate p sched with
          | Ok () -> ()
          | Error e ->
            Printf.eprintf "geometry: %s @%s: invalid schedule: %s\n"
              spec.Suite.name gname e;
            exit 1);
          let groups = Geometry.num_groups sched in
          (* self-checks: row parallelism can only shorten the schedule,
             and a single-column grid must degenerate to the serial
             instruction stream *)
          if groups > n_instr then begin
            Printf.eprintf "geometry: %s @%s: %d groups > %d instructions\n"
              spec.Suite.name gname groups n_instr;
            exit 1
          end;
          if cols = 1 && groups <> n_instr then begin
            Printf.eprintf
              "geometry: %s @1 column: %d groups for %d instructions\n"
              spec.Suite.name groups n_instr;
            exit 1
          end;
          Printf.printf "%-12s %5d %10s %6d %7d %7d %10d %9d %7.2fx\n"
            spec.Suite.name cols gname (Geometry.area grid) n_instr groups
            sched.Geometry.s_cross_row
            (Geometry.max_group_size sched)
            (float_of_int n_instr /. float_of_int (max 1 groups));
          geometry_rows :=
            Printf.sprintf
              "{\"benchmark\":%s,\"config\":\"endurance-full\",\"grid\":%s,\
               \"rows\":%d,\"cols\":%d,\"area\":%d,\"instructions\":%d,\
               \"groups\":%d,\"cross_row\":%d,\"max_group\":%d}"
              (Plim_util.Jsonx.quote spec.Suite.name)
              (Plim_util.Jsonx.quote gname) grid.Geometry.rows grid.Geometry.cols
              (Geometry.area grid) n_instr groups sched.Geometry.s_cross_row
              (Geometry.max_group_size sched)
            :: !geometry_rows)
        geometry_cols)
    !suite;
  Printf.printf
    "(groups <= instructions on every grid; cols=1 reproduces the serial\n\
    \ instruction count exactly)\n"

(* ------------------------------------------------------------------ *)
(* Machine-level verification of the compiled artefacts. *)

let verify () =
  Printf.printf
    "\nVERIFICATION — compiled programs vs MIG semantics on the crossbar machine\n";
  List.iter
    (fun spec ->
      let g = spec.Suite.build () in
      List.iter
        (fun config ->
          let r = Pipeline.compile config g in
          let status =
            match Verify.check_random ~trials:8 ~seed:0xBEEF g r.Pipeline.program with
            | Ok () -> "ok"
            | Error e -> "FAIL: " ^ e
          in
          Printf.printf "  %-12s %-24s %s\n%!" spec.Suite.name
            (Pipeline.config_name config) status)
        [ Pipeline.naive; Pipeline.dac16; Pipeline.min_write;
          Pipeline.endurance_rewrite; Pipeline.endurance_full;
          Pipeline.with_cap 10 Pipeline.endurance_full ])
    Suite.small_suite;
  let spec = Suite.find "sin" in
  let r = run_benchmark spec in
  (match
     Verify.check_random ~trials:2 ~seed:1 (Suite.build_cached spec)
       r.endurance_full.Pipeline.program
   with
  | Ok () -> Printf.printf "  %-12s %-24s ok\n" "sin" "endurance-full"
  | Error e -> Printf.printf "  %-12s %-24s FAIL: %s\n" "sin" "endurance-full" e);
  (* complete formal proof of the paper-sized adder via symbolic (BDD)
     execution: all 2^256 input vectors at once *)
  let adder = Suite.find "adder" in
  let ra = run_benchmark adder in
  let order = Plim_logic.Bdd.interleave 2 128 in
  (match
     Verify.check_symbolic ~order (Suite.build_cached adder)
       ra.endurance_full.Pipeline.program
   with
  | Ok () ->
    Printf.printf "  %-12s %-24s ok (symbolic proof, 256 inputs)\n" "adder"
      "endurance-full"
  | Error e -> Printf.printf "  %-12s %-24s FAIL: %s\n" "adder" "endurance-full" e)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the compiler stages. *)

let perf () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\nPERF — Bechamel micro-benchmarks\n%!";
  let adder32 = Plim_benchgen.Arith.adder ~width:32 in
  let sin_aig = Suite.build_cached (Suite.find "sin") in
  let sin_rewritten = Recipe.run Recipe.Algorithm2 ~effort:1 sin_aig in
  let compiled = Pipeline.compile_rewritten Pipeline.endurance_full sin_rewritten in
  let inputs =
    Array.to_list
      (Array.map (fun (n, _) -> (n, true)) compiled.Pipeline.program.Program.pi_cells)
  in
  let tests =
    [ Test.make ~name:"mig-build adder32"
        (Staged.stage (fun () -> ignore (Plim_benchgen.Arith.adder ~width:32)));
      Test.make ~name:"aig-expand adder32"
        (Staged.stage (fun () -> ignore (Plim_benchgen.Frontend.expand adder32)));
      Test.make ~name:"rewrite-pass distributivity (sin)"
        (Staged.stage (fun () ->
             ignore (Recipe.run_pass sin_aig [ Plim_rewrite.Axioms.distributivity_rl ])));
      Test.make ~name:"compile endurance-full (sin)"
        (Staged.stage (fun () ->
             ignore (Pipeline.compile_rewritten Pipeline.endurance_full sin_rewritten)));
      Test.make ~name:"compile naive (sin)"
        (Staged.stage (fun () ->
             ignore (Pipeline.compile_rewritten Pipeline.naive sin_rewritten)));
      Test.make ~name:"machine-run compiled sin"
        (Staged.stage (fun () ->
             ignore (Plim_machine.Plim_controller.run compiled.Pipeline.program ~inputs)))
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock m in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | Some _ | None -> nan
          in
          Printf.printf "  %-36s %12.3f ms/run  (%d samples)\n%!" (Test.Elt.name elt)
            (ns /. 1e6) m.Benchmark.stats.Benchmark.samples)
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* CSV export of the three tables for external plotting. *)

let export_csv results dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let module Csv = Plim_stats.Csv in
  let f = Printf.sprintf "%g" in
  let stat_fields s =
    [ string_of_int s.Stats.min; string_of_int s.Stats.max; f s.Stats.stdev ]
  in
  Csv.write_file
    (Filename.concat dir "table1.csv")
    ~header:
      [ "benchmark"; "pi"; "po"; "config"; "min"; "max"; "stdev"; "impr_pct" ]
    (List.concat_map
       (fun r ->
         let base = (summary r.naive).Stats.stdev in
         List.map
           (fun (config, res) ->
             let s = summary res in
             [ r.spec.Suite.name; string_of_int r.spec.Suite.pi;
               string_of_int r.spec.Suite.po; config ]
             @ stat_fields s
             @ [ f (impr base s.Stats.stdev) ])
           [ ("naive", r.naive); ("dac16", r.dac16); ("min-write", r.min_write);
             ("endurance-rewrite", r.endurance_rewrite);
             ("endurance-full", r.endurance_full) ])
       results);
  Csv.write_file
    (Filename.concat dir "table2.csv")
    ~header:[ "benchmark"; "config"; "instructions"; "devices" ]
    (List.concat_map
       (fun r ->
         List.map
           (fun (config, res) ->
             [ r.spec.Suite.name; config;
               string_of_int (Program.length res.Pipeline.program);
               string_of_int (Program.num_cells res.Pipeline.program) ])
           [ ("naive", r.naive); ("endurance-rewrite", r.endurance_rewrite);
             ("endurance-full", r.endurance_full) ])
       results);
  Csv.write_file
    (Filename.concat dir "table3.csv")
    ~header:[ "benchmark"; "cap"; "instructions"; "devices"; "stdev" ]
    (List.concat_map
       (fun r ->
         List.map
           (fun (cap, res) ->
             [ r.spec.Suite.name; string_of_int cap;
               string_of_int (Program.length res.Pipeline.program);
               string_of_int (Program.num_cells res.Pipeline.program);
               f (summary res).Stats.stdev ])
           r.capped)
       results);
  Printf.eprintf "[bench] wrote %s/table{1,2,3}.csv\n%!" dir

(* ------------------------------------------------------------------ *)
(* Machine-readable results: bench/results/latest.json carries the same
   numbers as Tables I-III plus phase wall-clock totals, so the perf
   trajectory can be tracked across commits (schema in EXPERIMENTS.md). *)

let bprintf = Printf.bprintf

let buf_result b ?cap ~config (res : Pipeline.result) =
  let s = summary res in
  let p = res.Pipeline.program in
  (* static dataflow columns: pure functions of the program, so they are
     deterministic and safe under the -j1 == -jN byte-identity rules *)
  let a = Plim_analyze.analyze ?max_writes:cap p in
  let dead_writes =
    List.length
      (List.filter
         (fun d -> d.Plim_analyze.kind = Plim_analyze.Dead_write)
         a.Plim_analyze.diagnostics)
  in
  let counts = Program.static_write_counts p in
  bprintf b "{\"config\":%s" (Plim_util.Jsonx.quote config);
  (match cap with Some c -> bprintf b ",\"cap\":%d" c | None -> ());
  bprintf b
    ",\"instructions\":%d,\"rram_cells\":%d,\"writes\":{\"min\":%d,\"max\":%d,\"total\":%d,\"mean\":%.6g,\"stdev\":%.6g,\"p50\":%d,\"p90\":%d,\"p99\":%d}"
    (Program.length p) (Program.num_cells p) s.Stats.min s.Stats.max s.Stats.total
    s.Stats.mean s.Stats.stdev s.Stats.p50 s.Stats.p90 s.Stats.p99;
  (* v2 columns: wear-skew balance metrics and the full log-bucketed
     write-count distribution, all pure functions of the program *)
  bprintf b ",\"skew\":{\"gini\":%.6g,\"max_mean\":%.6g},\"histogram\":%s"
    (Stats.gini counts)
    (Stats.max_mean_ratio s)
    (Hgram.to_json (Hgram.of_array counts));
  bprintf b
    ",\"storage\":{\"total_span\":%d,\"max_span\":%d,\"mean_span\":%.6g},\"dead_writes\":%d}"
    a.Plim_analyze.storage.Plim_analyze.total_span
    a.Plim_analyze.storage.Plim_analyze.max_span
    a.Plim_analyze.storage.Plim_analyze.mean_span dead_writes

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_results_json results path =
  ensure_dir (Filename.dirname path);
  let b = Buffer.create 65536 in
  (* --deterministic zeroes the two wall-clock fields so -j1/-jN runs
     produce byte-identical files *)
  bprintf b "{\"schema\":\"plim-bench/v2\",\"generated_at\":%.0f,\"benchmarks\":[\n"
    (if !deterministic then 0.0 else Unix.time ());
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      bprintf b "{\"name\":%s,\"pi\":%d,\"po\":%d,\"configs\":["
        (Plim_util.Jsonx.quote r.spec.Suite.name)
        r.spec.Suite.pi r.spec.Suite.po;
      List.iteri
        (fun j (config, res) ->
          if j > 0 then Buffer.add_char b ',';
          buf_result b ~config res)
        [ ("naive", r.naive); ("dac16", r.dac16); ("min-write", r.min_write);
          ("endurance-rewrite", r.endurance_rewrite);
          ("endurance-full", r.endurance_full) ];
      List.iter
        (fun (cap, res) ->
          Buffer.add_char b ',';
          buf_result b ~cap ~config:(Printf.sprintf "endurance-full+cap%d" cap) res)
        r.capped;
      Buffer.add_string b "]}")
    results;
  Buffer.add_string b "\n],\"phases\":[";
  List.iteri
    (fun i (name, (calls, total)) ->
      if i > 0 then Buffer.add_char b ',';
      bprintf b "\n{\"name\":%s,\"calls\":%d,\"total_s\":%.6f}"
        (Plim_util.Jsonx.quote name)
        calls
        (if !deterministic then 0.0 else total))
    (Profile.totals ());
  Buffer.add_string b "\n],\"faulttol\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      Buffer.add_string b row)
    (List.rev !faulttol_rows);
  Buffer.add_string b "\n],\"wear\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      Buffer.add_string b row)
    !wear_rows;
  Buffer.add_string b "\n],\"serve\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      Buffer.add_string b row)
    (List.rev !serve_rows);
  Buffer.add_string b "\n],\"horizon\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      Buffer.add_string b row)
    !horizon_rows;
  Buffer.add_string b "\n],\"cert\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      Buffer.add_string b row)
    !cert_rows;
  Buffer.add_string b "\n],\"geometry\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      Buffer.add_string b row)
    (List.rev !geometry_rows);
  Buffer.add_string b "\n]}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.eprintf "[bench] wrote %s\n%!" path

let usage () =
  prerr_endline
    "usage: main.exe [PHASE...] [-j N] [--suite small|all] [--deterministic]\n\
    \                [--results PATH]\n\
     phases: table1 table2 table3 summary csv ablations section2 wearlevel\n\
    \        lifetime histogram verify faulttol wear serve horizon geometry\n\
    \        perf all\n\
    \        (horizon also certifies every cell against its static\n\
    \        plim-cert/v1 wear bracket and fails on any escape)\n\
     -j N            run fan-out phases on N domains (default: domain count);\n\
    \                -j 1 is byte-identical to the sequential program\n\
     --suite small   restrict tables to the small benchmark suite\n\
     --deterministic zero wall-clock fields in the results JSON\n\
     --results PATH  write the results JSON to PATH (default\n\
    \                bench/results/latest.json)";
  exit 2

let () =
  Profile.enable ();
  let jobs = ref (Par.default_jobs ()) in
  let args = ref [] in
  let rec parse = function
    | [] -> ()
    | "--" :: rest -> parse rest
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
        jobs := j;
        parse rest
      | _ -> usage ())
    | "--suite" :: "small" :: rest ->
      suite := Suite.small_suite;
      parse rest
    | "--suite" :: "all" :: rest ->
      suite := Suite.all;
      parse rest
    | "--deterministic" :: rest ->
      deterministic := true;
      parse rest
    | "--results" :: path :: rest ->
      results_path := path;
      parse rest
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest ->
      args := a :: !args;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let args = List.rev !args in
  (* always through the pool, even at -j 1 (which spawns no domain and
     runs the pure sequential path): the "par.map" profile entry must
     appear at every jobs level or latest.json would differ by -j *)
  pool := Some (Par.create ~jobs:!jobs ());
  let default = args = [] in
  let want x = default || List.mem x args || List.mem "all" args in
  let need_tables =
    default
    || List.exists
         (fun a -> List.mem a [ "table1"; "table2"; "table3"; "summary"; "csv"; "all" ])
         args
  in
  let results = if need_tables then all_results () else [] in
  let want_faulttol = List.mem "faulttol" args || List.mem "all" args in
  if want_faulttol then faulttol ();
  let want_wear = List.mem "wear" args || List.mem "all" args in
  if want_wear then wear ();
  let want_serve = List.mem "serve" args || List.mem "all" args in
  if want_serve then serve ();
  let want_horizon = List.mem "horizon" args || List.mem "all" args in
  if want_horizon then horizon ();
  let want_geometry = List.mem "geometry" args || List.mem "all" args in
  if want_geometry then geometry ();
  if results <> [] || want_faulttol || want_wear || want_serve || want_horizon
     || want_geometry
  then write_results_json results !results_path;
  if List.mem "csv" args || List.mem "all" args then export_csv results "bench_csv";
  if want "table1" then table1 results;
  if want "table2" then table2 results;
  if want "table3" then table3 results;
  if want "summary" then summary_table results;
  if List.mem "ablations" args || List.mem "all" args then ablations ();
  if List.mem "section2" args || List.mem "all" args then section2 ();
  if List.mem "wearlevel" args || List.mem "all" args then wearlevel ();
  if List.mem "lifetime" args || List.mem "all" args then lifetime_bench ();
  if List.mem "histogram" args || List.mem "all" args then histogram ();
  if List.mem "verify" args || List.mem "all" args then verify ();
  if List.mem "perf" args || List.mem "all" args then perf ();
  match !pool with Some p -> Par.shutdown p | None -> ()
