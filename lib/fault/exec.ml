module Program = Plim_isa.Program
module I = Plim_isa.Instruction
module Metrics = Plim_obs.Metrics

type stats = {
  verify_reads : int;
  detections : int;
  remaps : int;
  retries : int;
}

let zero_stats = { verify_reads = 0; detections = 0; remaps = 0; retries = 0 }

let add_stats a b =
  { verify_reads = a.verify_reads + b.verify_reads;
    detections = a.detections + b.detections;
    remaps = a.remaps + b.remaps;
    retries = a.retries + b.retries }

type outcome = Completed of (string * bool) list | Out_of_spares of int

exception Pool_dry of int

let m_verify_reads = Metrics.counter "fault.verify_reads"
let m_detections = Metrics.counter "fault.detections"

let run ?(verify = false) ?(max_retries = 2) ?(reset = true) fx rm (p : Program.t)
    ~inputs =
  if Remap.lines rm < p.Program.num_cells then
    invalid_arg "Exec.run: remap table smaller than the program's cell count";
  if Remap.num_physical rm > Faulty.size fx then
    invalid_arg "Exec.run: crossbar smaller than the remap table's physical space";
  let verify_reads = ref 0
  and detections = ref 0
  and remaps = ref 0
  and retries = ref 0 in
  (* Write-verify loop shared by loads, input deposits and RM3 results:
     [put pa] performs the raw operation on physical line [pa]; [rewrite]
     re-deposits the intended value on retries and spares. *)
  let verified l ~intended ~put ~rewrite =
    put (Remap.physical rm l);
    if verify then begin
      let rec check tries =
        incr verify_reads;
        Metrics.incr m_verify_reads;
        let pa = Remap.physical rm l in
        if Faulty.read fx pa <> intended then
          if tries < max_retries then begin
            incr retries;
            rewrite pa;
            check (tries + 1)
          end
          else begin
            incr detections;
            Metrics.incr m_detections;
            match Remap.retire rm l with
            | None -> raise (Pool_dry l)
            | Some spare ->
              incr remaps;
              rewrite spare;
              check 0
          end
      in
      check 0
    end
  in
  let verified_load l v =
    verified l ~intended:v ~put:(fun pa -> Faulty.load fx pa v)
      ~rewrite:(fun pa -> Faulty.load fx pa v)
  in
  (* Input-binding validation mirrors Plim_controller.run and happens before
     any array operation, so a bad binding never consumes spares. *)
  let bound = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      if Hashtbl.mem bound name then
        invalid_arg (Printf.sprintf "Exec.run: duplicate input %S" name);
      Hashtbl.add bound name v)
    inputs;
  let pi_values =
    Array.map
      (fun (name, cell) ->
        match Hashtbl.find_opt bound name with
        | Some v ->
          Hashtbl.remove bound name;
          (cell, v)
        | None -> invalid_arg (Printf.sprintf "Exec.run: missing input %S" name))
      p.Program.pi_cells
  in
  if Hashtbl.length bound > 0 then invalid_arg "Exec.run: unknown extra inputs";
  let outcome =
    try
      (* power-on reset / scrub: compiled programs assume all-HRS state *)
      if reset then
        for l = 0 to p.Program.num_cells - 1 do
          verified_load l false
        done;
      Array.iter (fun (cell, v) -> verified_load cell v) pi_values;
      (* instruction stream *)
      let read_operand = function
        | I.Const v -> v
        | I.Cell c -> Faulty.read fx (Remap.physical rm c)
      in
      Array.iter
        (fun (instr : I.t) ->
          let a = read_operand instr.I.a in
          let b = read_operand instr.I.b in
          let l = instr.I.z in
          if verify then begin
            let z = Faulty.read fx (Remap.physical rm l) in
            let intended = I.semantics ~a ~b ~z in
            verified l ~intended
              ~put:(fun pa -> Faulty.rm3 fx ~p:a ~q:b pa)
              ~rewrite:(fun pa -> Faulty.write fx pa intended)
          end
          else Faulty.rm3 fx ~p:a ~q:b (Remap.physical rm l))
        p.Program.instrs;
      Completed
        (Array.to_list
           (Array.map
              (fun (name, cell) -> (name, Faulty.read fx (Remap.physical rm cell)))
              p.Program.po_cells))
    with Pool_dry l -> Out_of_spares l
  in
  ( outcome,
    { verify_reads = !verify_reads;
      detections = !detections;
      remaps = !remaps;
      retries = !retries } )
