module Metrics = Plim_obs.Metrics
module Trace = Plim_obs.Trace

type t = {
  map : int array;              (* logical -> physical *)
  total : int;                  (* lines + spares *)
  mutable next_spare : int;
  mutable remaps : int;
  mutable retired : int list;
}

let m_remaps = Metrics.counter "fault.remaps"

let create ?(spares = 0) ~lines () =
  if lines < 0 then invalid_arg "Remap.create: negative lines";
  if spares < 0 then invalid_arg "Remap.create: negative spares";
  { map = Array.init lines (fun i -> i);
    total = lines + spares;
    next_spare = lines;
    remaps = 0;
    retired = [] }

let lines t = Array.length t.map

let num_physical t = t.total

let physical t l =
  if l < 0 || l >= Array.length t.map then
    invalid_arg (Printf.sprintf "Remap.physical: address %d out of range" l);
  t.map.(l)

let spares_total t = t.total - Array.length t.map

let spares_left t = t.total - t.next_spare

let remaps t = t.remaps

let retire t l =
  let old = physical t l in
  if t.next_spare >= t.total then None
  else begin
    let fresh = t.next_spare in
    t.next_spare <- t.next_spare + 1;
    t.map.(l) <- fresh;
    t.remaps <- t.remaps + 1;
    t.retired <- old :: t.retired;
    Metrics.incr m_remaps;
    if Trace.enabled () then
      Trace.emit "fault.remap"
        ~args:[ ("logical", Int l); ("retired", Int old); ("spare", Int fresh) ];
    Some fresh
  end

let retired_cells t = t.retired
