(** Fault models for resistive crossbar cells.

    Real RRAM arrays do not die wholesale: individual cells get stuck in
    one resistance state (manufacturing defects or wear-out) or
    occasionally fail to switch during a write pulse (transient set/reset
    failure, increasingly likely as the cell wears).  This module
    describes {e which} faults exist; {!Faulty} applies them to a
    crossbar.

    Three fault classes are modelled:

    - {b stuck-at-HRS} (SA0): the cell always reads 0, writes do not take;
    - {b stuck-at-LRS} (SA1): the cell always reads 1;
    - {b transient write failure}: a write pulse leaves the old state with
      probability [transient + transient_growth * writes_so_far] — the
      wear-dependent switching-failure curve of endurance-limited
      memories.

    Permanent faults are sampled with {e coupled thresholds}: each cell
    draws one seed-derived uniform [u] and is faulty iff
    [u < sa0 + sa1].  Scaling the rates up therefore only {e adds} faults
    — fault sets are monotone in the injected rate, which makes
    degradation sweeps well-ordered by construction (a higher rate can
    never yield a healthier array). *)

type kind = Stuck_at_0 | Stuck_at_1

type spec = {
  sa0 : float;              (** per-cell probability of stuck-at-HRS *)
  sa1 : float;              (** per-cell probability of stuck-at-LRS *)
  transient : float;        (** base per-write switching-failure probability *)
  transient_growth : float; (** added failure probability per prior write *)
  seed : int;               (** stream seed for both sampling processes *)
}

val none : spec
(** No faults at all; wrapping a crossbar with [none] is behaviourally
    identical to the bare crossbar. *)

val is_none : spec -> bool

val scale : float -> spec -> spec
(** Multiply the permanent rates ([sa0], [sa1]) by a factor; transient
    parameters and seed are kept.  Clamps to 1. *)

val make :
  ?sa0:float -> ?sa1:float -> ?transient:float -> ?transient_growth:float ->
  ?seed:int -> unit -> spec
(** All fields default to their [none] values (seed 0x5EED).
    @raise Invalid_argument on negative rates or [sa0 + sa1 > 1]. *)

val parse : string -> (spec, string) result
(** Parse a CLI spec such as ["sa0:0.01,sa1:0.005,transient:1e-4,growth:1e-6,seed:42"].
    Keys: [sa0], [sa1], [transient] (or [t]), [growth], [seed]; all
    optional, comma-separated, in any order. *)

val to_string : spec -> string
(** Inverse of {!parse} (modulo float formatting). *)

val pp : Format.formatter -> spec -> unit

val cell_fault : spec -> int -> kind option
(** The permanent fault (if any) of cell [i] under this spec — a pure
    function of [(seed, i)], usable as an oracle by a fault-aware
    allocator before any array exists. *)

val sample_permanent : spec -> cells:int -> (int * kind) list
(** All permanently faulty cells in [0, cells), ascending. *)

val transient_probability : spec -> writes:int -> float
(** Switching-failure probability of the next write to a cell that has
    already sustained [writes] writes; clamped to [0, 1]. *)
