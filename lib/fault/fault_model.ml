module Splitmix = Plim_util.Splitmix

type kind = Stuck_at_0 | Stuck_at_1

type spec = {
  sa0 : float;
  sa1 : float;
  transient : float;
  transient_growth : float;
  seed : int;
}

let none = { sa0 = 0.0; sa1 = 0.0; transient = 0.0; transient_growth = 0.0; seed = 0x5EED }

let is_none s =
  s.sa0 = 0.0 && s.sa1 = 0.0 && s.transient = 0.0 && s.transient_growth = 0.0

let validate s =
  let rate name v =
    if v < 0.0 || v > 1.0 || Float.is_nan v then
      invalid_arg (Printf.sprintf "Fault_model: %s must be in [0, 1]" name)
  in
  rate "sa0" s.sa0;
  rate "sa1" s.sa1;
  rate "transient" s.transient;
  if s.transient_growth < 0.0 || Float.is_nan s.transient_growth then
    invalid_arg "Fault_model: growth must be non-negative";
  if s.sa0 +. s.sa1 > 1.0 then invalid_arg "Fault_model: sa0 + sa1 must be <= 1";
  s

let make ?(sa0 = 0.0) ?(sa1 = 0.0) ?(transient = 0.0) ?(transient_growth = 0.0)
    ?(seed = none.seed) () =
  validate { sa0; sa1; transient; transient_growth; seed }

let scale factor s =
  let clamp v = Float.min 1.0 (Float.max 0.0 v) in
  validate { s with sa0 = clamp (s.sa0 *. factor); sa1 = clamp (s.sa1 *. factor) }

let to_string s =
  let parts = ref [] in
  let add k v = if v <> 0.0 then parts := Printf.sprintf "%s:%g" k v :: !parts in
  add "growth" s.transient_growth;
  add "transient" s.transient;
  add "sa1" s.sa1;
  add "sa0" s.sa0;
  let parts = if !parts = [] then [ "none" ] else !parts in
  String.concat "," (parts @ [ Printf.sprintf "seed:%d" s.seed ])

let pp ppf s = Format.pp_print_string ppf (to_string s)

let parse str =
  let parse_field spec field =
    match String.index_opt field ':' with
    | _ when String.trim field = "none" -> Ok spec
    | None -> Error (Printf.sprintf "fault spec: %S is not of the form key:value" field)
    | Some i ->
      let key = String.trim (String.sub field 0 i) in
      let v = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
      let float () =
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "fault spec: bad number %S for %s" v key)
      in
      (match key with
      | "sa0" -> Result.map (fun f -> { spec with sa0 = f }) (float ())
      | "sa1" -> Result.map (fun f -> { spec with sa1 = f }) (float ())
      | "transient" | "t" -> Result.map (fun f -> { spec with transient = f }) (float ())
      | "growth" -> Result.map (fun f -> { spec with transient_growth = f }) (float ())
      | "seed" ->
        (match int_of_string_opt v with
        | Some n -> Ok { spec with seed = n }
        | None -> Error (Printf.sprintf "fault spec: bad seed %S" v))
      | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key))
  in
  let fields = String.split_on_char ',' str |> List.filter (fun f -> String.trim f <> "") in
  let rec go spec = function
    | [] -> (try Ok (validate spec) with Invalid_argument m -> Error m)
    | f :: rest -> (match parse_field spec f with Ok s -> go s rest | Error _ as e -> e)
  in
  go none fields

(* One independent uniform stream per cell, derived from the spec seed by a
   golden-ratio mix so that neighbouring cells are uncorrelated. *)
let cell_rng s i = Splitmix.create (s.seed lxor ((i + 1) * 0x9E3779B97F4A7C1))

let cell_fault s i =
  let p = s.sa0 +. s.sa1 in
  if p <= 0.0 then None
  else begin
    let rng = cell_rng s i in
    let u = Splitmix.float rng in
    if u >= p then None
    else begin
      (* coupled thresholds: [u] decides faultiness, a second draw the kind,
         so scaling the rates preserves every existing fault *)
      let v = Splitmix.float rng in
      Some (if v *. p < s.sa0 then Stuck_at_0 else Stuck_at_1)
    end
  end

let sample_permanent s ~cells =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1) (match cell_fault s i with Some k -> (i, k) :: acc | None -> acc)
  in
  go (cells - 1) []

let transient_probability s ~writes =
  let p = s.transient +. (s.transient_growth *. float_of_int writes) in
  Float.min 1.0 (Float.max 0.0 p)
