(** Fault-tolerant execution of compiled PLiM programs.

    Runs a {!Plim_isa.Program} on a {!Faulty} crossbar through a {!Remap}
    table, optionally with a {b write-verify} policy: after every
    destructive operation (initialisation load or RM3) the destination is
    read back and compared against the intended value.  A mismatch is
    retried up to [max_retries] times in place (recovering transient
    switching failures by rewriting the intended value); a persistent
    mismatch is a detected permanent fault — the line is retired through
    the remapper and the value replayed on the spare (re-verified, since
    spares can be faulty too).

    With [reset] (default), every logical line is first cleared to HRS —
    the power-on state compiled programs assume — which doubles as a
    scrub pass: under write-verify it flushes out stuck-at-LRS cells
    before they can corrupt a result.

    With [verify] off and a fault-free wrapper the execution is
    bit-identical to {!Plim_machine.Plim_controller.run}: same outputs,
    same per-cell write counts. *)

module Program = Plim_isa.Program

type stats = {
  verify_reads : int;      (** read-backs performed by the policy *)
  detections : int;        (** permanent faults detected (retire decisions) *)
  remaps : int;            (** successful remaps (= detections unless the pool ran dry) *)
  retries : int;           (** in-place rewrite attempts *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

type outcome =
  | Completed of (string * bool) list
      (** primary outputs, in [po_cells] declaration order *)
  | Out_of_spares of int
      (** a permanent fault on this logical cell was detected but the
          spare pool is exhausted; the execution was abandoned *)

val run :
  ?verify:bool ->
  ?max_retries:int ->
  ?reset:bool ->
  Faulty.t ->
  Remap.t ->
  Program.t ->
  inputs:(string * bool) list ->
  outcome * stats
(** [run fx rm p ~inputs] executes [p]; [Remap.lines rm] must cover at
    least [Program.num_cells p] logical lines (a larger table is a
    persistent shard serving programs of varying footprint — only the
    program's own lines are scrubbed and addressed) and
    [Remap.num_physical rm] must not exceed the crossbar size.  [verify]
    defaults to [false], [max_retries] to [2], [reset] to [true].  The
    returned stats cover the run up to and including an [Out_of_spares]
    abandonment.

    @raise Invalid_argument on a geometry or input-binding mismatch. *)
