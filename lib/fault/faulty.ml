module Crossbar = Plim_rram.Crossbar
module Splitmix = Plim_util.Splitmix
module Metrics = Plim_obs.Metrics
module Trace = Plim_obs.Trace

(* stuck byte encoding: 0 healthy, 1 stuck at 0, 2 stuck at 1 *)
type t = {
  base : Crossbar.t;
  stuck : Bytes.t;
  spec : Fault_model.spec;
  rng : Splitmix.t;               (* transient draws only *)
  injected : int;
  mutable num_stuck : int;
  mutable absorbed : int;
  mutable transients : int;
}

let m_injected = Metrics.counter "fault.injected"
let m_worn_stuck = Metrics.counter "fault.worn_stuck"
let m_absorbed = Metrics.counter "fault.absorbed_writes"
let m_transient = Metrics.counter "fault.transient_failures"

let create ?(spec = Fault_model.none) ?(faults = []) base =
  let n = Crossbar.size base in
  let stuck = Bytes.make n '\000' in
  let mark (i, kind) =
    if i < 0 || i >= n then
      invalid_arg (Printf.sprintf "Faulty.create: fault index %d out of range" i);
    Bytes.set stuck i
      (match kind with Fault_model.Stuck_at_0 -> '\001' | Fault_model.Stuck_at_1 -> '\002')
  in
  List.iter mark faults;
  List.iter mark (Fault_model.sample_permanent spec ~cells:n);
  let injected = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr injected) stuck;
  Metrics.incr ~by:!injected m_injected;
  { base;
    stuck;
    spec;
    rng = Splitmix.create (spec.Fault_model.seed lxor 0x7F4A7C15);
    injected = !injected;
    num_stuck = !injected;
    absorbed = 0;
    transients = 0 }

let base t = t.base

let size t = Crossbar.size t.base

let stuck_at t i =
  match Bytes.get t.stuck i with
  | '\000' -> None
  | '\001' -> Some false
  | _ -> Some true

let read t i =
  match stuck_at t i with
  | Some v ->
    ignore (Crossbar.read t.base i);  (* the sense amp still fires *)
    v
  | None -> Crossbar.read t.base i

let peek t i =
  match stuck_at t i with Some v -> v | None -> Crossbar.peek t.base i

let mark_worn t i =
  if Bytes.get t.stuck i = '\000' then begin
    Bytes.set t.stuck i (if Crossbar.peek t.base i then '\002' else '\001');
    t.num_stuck <- t.num_stuck + 1;
    Metrics.incr m_worn_stuck;
    if Trace.enabled () then
      Trace.emit "fault.worn_stuck"
        ~args:[ ("cell", Int i); ("value", Bool (Crossbar.peek t.base i)) ]
  end

let absorb t i =
  t.absorbed <- t.absorbed + 1;
  Metrics.incr m_absorbed;
  if Trace.enabled () then Trace.emit "fault.absorbed_write" ~args:[ ("cell", Int i) ]

(* Whether the next write pulse on a cell with [writes] prior writes fails.
   Draws from the rng only when the probability is non-zero, so a fault-free
   wrapper consumes no randomness and stays bit-identical to the bare
   crossbar. *)
let transient_fires t ~writes =
  let p = Fault_model.transient_probability t.spec ~writes in
  p > 0.0 && Splitmix.float t.rng < p

let note_transient t i =
  t.transients <- t.transients + 1;
  Metrics.incr m_transient;
  if Trace.enabled () then Trace.emit "fault.transient" ~args:[ ("cell", Int i) ]

let write t i b =
  match stuck_at t i with
  | Some _ -> absorb t i
  | None ->
    let writes = Crossbar.writes t.base i in
    if transient_fires t ~writes then begin
      let prev = Crossbar.peek t.base i in
      if prev <> b then note_transient t i;
      (* the pulse wears the cell but the state does not switch *)
      Crossbar.write t.base i prev
    end
    else Crossbar.write t.base i b;
    if Crossbar.failed t.base i then mark_worn t i

let rm3 t ~p ~q i =
  match stuck_at t i with
  | Some _ -> absorb t i
  | None ->
    let writes = Crossbar.writes t.base i in
    if transient_fires t ~writes then begin
      let prev = Crossbar.peek t.base i in
      let intended = Plim_isa.Instruction.semantics ~a:p ~b:q ~z:prev in
      if prev <> intended then note_transient t i;
      Crossbar.write t.base i prev
    end
    else Crossbar.rm3 t.base ~p ~q i;
    if Crossbar.failed t.base i then mark_worn t i

let load t i b =
  match stuck_at t i with
  | Some _ -> absorb t i
  | None ->
    (match Crossbar.load t.base i b with
    | () -> ()
    | exception Crossbar.Cell_failed _ ->
      (* the wrapped crossbar was already worn before wrapping *)
      mark_worn t i;
      absorb t i)

let set_observer t obs = Crossbar.set_observer t.base obs

let wear_counts t = Crossbar.write_counts t.base

let num_faulty t = t.num_stuck

let injected t = t.injected

let worn_out t = t.num_stuck - t.injected

let absorbed_writes t = t.absorbed

let transient_failures t = t.transients

let capacity t =
  let n = size t in
  if n = 0 then 1.0 else float_of_int (n - t.num_stuck) /. float_of_int n

let faulty_cells t =
  let acc = ref [] in
  for i = size t - 1 downto 0 do
    match stuck_at t i with Some v -> acc := (i, v) :: !acc | None -> ()
  done;
  !acc
