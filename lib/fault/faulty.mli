(** A fault-injecting wrapper around {!Plim_rram.Crossbar}.

    Intercepts [read]/[write]/[rm3]/[load] and applies a
    {!Fault_model.spec}:

    - {b stuck cells} (injected SA0/SA1, or worn-out cells whose
      endurance budget ran out) read their stuck value; writes to them
      are silently absorbed — exactly what the array's peripheral
      circuitry observes, and why write-verify is needed to detect them;
    - {b transient failures} let the write pulse through (the cell still
      wears) but leave the old state, with a probability growing in the
      cell's write count;
    - {b endurance exhaustion} of the underlying crossbar is converted
      from a {!Plim_rram.Crossbar.Cell_failed} crash into a stuck-at
      fault at the cell's last value, so campaigns degrade instead of
      dying.

    With {!Fault_model.none} and no explicit faults the wrapper forwards
    every operation verbatim: behaviour, write counts and resulting state
    are identical to the bare crossbar. *)

type t

val create :
  ?spec:Fault_model.spec ->
  ?faults:(int * Fault_model.kind) list ->
  Plim_rram.Crossbar.t ->
  t
(** [create ?spec ?faults xbar] wraps [xbar].  Permanent faults are the
    union of the explicit [faults] list and the cells sampled from [spec]
    over the crossbar's size; [spec] also supplies the transient
    parameters.
    @raise Invalid_argument if a fault index is out of range. *)

val base : t -> Plim_rram.Crossbar.t
(** The wrapped crossbar (wear statistics live there). *)

val size : t -> int

val read : t -> int -> bool
(** Stuck-aware read: a stuck cell returns its stuck value. *)

val peek : t -> int -> bool
(** Stuck-aware state inspection without metrics (cf.
    {!Plim_rram.Crossbar.peek}). *)

val write : t -> int -> bool -> unit
(** Never raises: writes to stuck cells are absorbed, endurance
    exhaustion converts the cell into a stuck-at fault. *)

val rm3 : t -> p:bool -> q:bool -> int -> unit

val load : t -> int -> bool -> unit

val set_observer : t -> (cell:int -> writes:int -> unit) option -> unit
(** Install a wear observer on the wrapped crossbar (see
    {!Plim_rram.Crossbar.set_observer}).  Fires on counted physical
    writes only — absorbed writes to stuck cells never wear the device
    and never reach the observer. *)

val wear_counts : t -> int array
(** Per-cell cumulative write counts of the wrapped crossbar (a copy) —
    the raw material for wear heatmaps and skew metrics. *)

val stuck_at : t -> int -> bool option
(** Ground truth (test/reporting oracle — a real controller only learns
    this through write-verify): [Some v] if the cell is permanently stuck
    at [v]. *)

val num_faulty : t -> int
(** Currently stuck cells: injected plus worn-out. *)

val injected : t -> int
(** Permanently faulty cells present at creation. *)

val worn_out : t -> int
(** Cells that became stuck through endurance exhaustion after creation. *)

val absorbed_writes : t -> int
(** Writes and RM3s silently swallowed by stuck cells. *)

val transient_failures : t -> int
(** Write pulses that failed to switch the state (cell wear was still
    charged). *)

val capacity : t -> float
(** Surviving capacity: fraction of cells not permanently stuck,
    in [0, 1]. *)

val faulty_cells : t -> (int * bool) list
(** All stuck cells with their stuck value, ascending. *)
