(** WoLFRaM-style spare-line remapping: a programmable logical→physical
    address map with a pool of spare lines.

    [lines] logical addresses are backed by [lines + spares] physical
    lines, initially the identity.  When write-verify (or any other
    detector) finds a faulty physical line, {!retire} reprograms the
    decoder entry of its logical address to the next spare — the faulty
    line is never addressed again and computation continues on the spare.
    When the pool runs dry the array has gracefully degraded to its
    capacity limit and {!retire} reports it.

    The map composes with {!Plim_rram.Start_gap}: rotation permutes
    logical addresses {e before} this table, remapping patches individual
    physical lines {e after} it. *)

type t

val create : ?spares:int -> lines:int -> unit -> t
(** [create ~lines ()] with a pool of [spares] (default 0) spare lines.
    @raise Invalid_argument on negative [lines] or [spares]. *)

val lines : t -> int

val num_physical : t -> int
(** [lines + spares]. *)

val physical : t -> int -> int
(** Current physical line of a logical address. *)

val spares_total : t -> int

val spares_left : t -> int

val remaps : t -> int
(** Number of retirements performed. *)

val retire : t -> int -> int option
(** [retire t l] retires the physical line currently backing logical
    address [l] and remaps [l] to a fresh spare.  [Some p] is the new
    physical line; [None] means the spare pool is exhausted (the map is
    unchanged). *)

val retired_cells : t -> int list
(** Physical lines retired so far, most recent first. *)
