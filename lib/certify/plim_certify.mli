(** Static endurance certification: abstract interpretation of the whole
    serve system.

    {!Plim_serve.Horizon} {e measures} device lifetime by simulating
    sampled traffic; this module {e derives} sound lower/upper bounds on
    the same quantities — time to first wear-out death and capacity
    half-life — from the instruction streams and the workload spec alone,
    without running a single request.  The simulator is then gated
    against its own certificates: every [plim-horizon/v1] row must fall
    inside the static bracket of its grid cell, which turns the closed
    forms of the wear-leveling literature (WoLFRaM, arXiv 2010.02825;
    endurance-limited capacity, arXiv 2109.09932) into a CI invariant
    instead of a claim.

    {2 The abstraction}

    Everything deterministic in the horizon model is replayed exactly;
    only the per-epoch Zipfian request sampling is abstracted into an
    interval:

    - {e per-program write vectors} come from
      {!Plim_analyze.write_counts} of each mix program compiled under the
      server pipeline — provably equal to what any execution performs;
    - {e fleet writes per epoch} are bracketed by
      [[requests * min len, requests * max len]] over the programs that
      fit a shard.  The lower end collapses to 0 when [compile_ratio > 0]
      (an epoch can sample only compiles, which wear nothing) — upper
      lifetime bounds are then unbounded, honestly;
    - {e placement} is abstracted away on the pessimistic side: the
      least-worn invariant lets a whole epoch concentrate on one shard,
      so the per-cell rate upper bound assumes it does;
    - {e leveling} applies each strategy's stationary transform
      ({!Plim_stats.Lifetime.leveled_rate} with the Start-Gap [1/psi]
      and WoLFRaM [lines/period] overheads composed), exactly as the
      simulator does;
    - the {e power-on fault population} and spare-pool scrub are pure
      functions of the per-shard derived seeds and are replayed
      verbatim, giving the exact starting capacity and the minimum
      number of wear deaths that can kill each shard.

    Bounds use [infinity] for "unbounded"; the JSON encodes it as [-1]
    (the same no-nulls convention as the horizon sentinel).

    {2 Race detector}

    {!Race} is an independent happens-before checker for {e arbitrary}
    row-parallel instruction groupings: hazard edges (RAW, WAW, WAR) are
    derived from the {!Plim_analyze} def-use chains — a different code
    path from the flat-stream scan inside {!Plim_geometry.validate} — so
    the two rejecting exactly the same adversarial schedules is a real
    cross-check, run by the {!Plim_check} conformance matrix and
    [plimc lint --geometry]. *)

module Horizon = Plim_serve.Horizon

(** {1 Group-schedule race detection} *)

module Race : sig
  type hazard = Raw | Waw | War

  val hazard_name : hazard -> string
  (** ["RAW"], ["WAW"], ["WAR"]. *)

  type edge = {
    e_before : int;  (** instruction index that must execute first *)
    e_after : int;   (** instruction index that must execute later *)
    e_cell : int;    (** the cell carrying the dependency *)
    e_hazard : hazard;
  }

  val edges : Plim_isa.Program.t -> edge list
  (** Every happens-before edge of the program, derived from the
      def-use chains: RAW (def to each of its uses), WAW (consecutive
      defs of one cell) and WAR (each use to the next def).  The
      external PI load (def index [-1]) generates no edges, and an
      instruction that reads its own destination is not an edge to
      itself.  [set_const] destinations deliberately carry no RAW edge
      from the previous value — this model is strictly weaker than
      {!Plim_geometry}'s (which treats the destination as always read),
      which is why scheduler output always passes the detector. *)

  val check_groups :
    Plim_isa.Program.t -> int array array -> (unit, string) result
  (** [check_groups p groups] verifies an {e arbitrary} grouping claim:
      every instruction index appears exactly once across the groups
      (empty groups are permitted), and every hazard edge lands in
      strictly increasing groups — two hazard-ordered instructions in
      the same group are a race.  Programs with use-before-def errors
      are rejected up front (their read order is not representable in
      the def-use IR).  Row confinement and area are deliberately not
      checked here; this is the pure happens-before half of
      {!Plim_geometry.validate}. *)

  val check_schedule :
    Plim_isa.Program.t -> Plim_geometry.schedule -> (unit, string) result
  (** {!check_groups} on the schedule's groups. *)
end

(** {1 Wear-bound certificates} *)

type bound = {
  lower : float;  (** sound lower bound, possibly [infinity] ("never") *)
  upper : float;  (** sound upper bound, [infinity] when unbounded *)
}

type program_profile = {
  p_label : string;
  p_instructions : int;  (** fault-free shard wear of one execution *)
  p_cells : int;
  p_wmax : int;          (** largest per-cell static write count *)
  p_mass : float;        (** Zipfian popularity mass of this program *)
  p_fits : bool;         (** whether the program fits a shard's lines *)
}

type t = {
  c_strategy : Horizon.strategy;
  c_fault_rate : float;
  c_endurance : float;
  c_epoch_requests : int;
  c_compile_ratio : float;
  c_zipf : float;
  c_shards : int;          (** initially active server shards *)
  c_spare_shards : int;
  c_lines : int;           (** logical lines per server shard *)
  c_meas : int;            (** measured cells: lines + cell spares *)
  c_cells : int;           (** model logical lines (meas, +1 under Start-Gap) *)
  c_physical : int;        (** model physical lines: cells + model spares *)
  c_alive0 : int;          (** shards alive after the power-on scrub *)
  c_capacity0 : float;     (** alive0 / total shards *)
  c_overhead : float;      (** composed leveling overhead of the strategy *)
  c_writes : bound;        (** fleet writes per epoch *)
  c_rate_cell_upper : float;  (** per-cell writes/epoch upper bound *)
  c_ttff : bound;          (** epochs to the first wear-out death *)
  c_half_life : bound;     (** epochs to half design capacity *)
  c_deaths_to_half : int;  (** shard deaths separating alive0 from half *)
  c_line_deaths_lower : int;  (** minimum line deaths causing those *)
  c_expected_ttff : float;
      (** Zipf-weighted balanced-placement point estimate; reported for
          context, never part of the sound bracket and never gated *)
  c_programs : program_profile list;
}

val certify : ?fault_seed:int -> Horizon.config -> t
(** The certificate of one grid cell, from the config alone.  The
    [strategy] and [fault_spec] of the config are read exactly like
    {!Horizon.run} reads them; [fault_seed] is unused here (the config
    carries the spec) and exists for symmetry with {!grid}.
    @raise Invalid_argument on an empty mix or a non-positive
    endurance/epoch_requests, mirroring [Horizon.run]. *)

val grid :
  ?fault_seed:int ->
  Horizon.config ->
  strategies:Horizon.strategy list ->
  fault_rates:float list ->
  (Horizon.strategy * float * t) list
(** Certificates for the same strategy × fault-rate grid
    {!Horizon.grid} simulates, with identical fault-spec derivation
    ({!Horizon.spec_of_rate}), so cell labels match row labels. *)

val label : t -> string
(** ["<strategy>/r<rate>"] — identical to {!Horizon.label} of the
    simulated cell. *)

val row_json : ?label:string -> t -> string
(** One [plim-cert/v1] row.  Unbounded bound endpoints are encoded as
    [-1] (the schema carries no nulls or infinities); everything else is
    finite.  [label] overrides the default {!label} (variant grids of
    one cell need distinct row labels). *)

val check_result : t -> Horizon.result -> (unit, string) result
(** Does the simulated cell fall inside the static bracket?  Checks the
    strategy/endurance/fault-rate identity first, then both lifetimes:
    a recorded lifetime must lie in [[lower, upper]]; an unrecorded one
    ([None]) is only consistent if the campaign stopped before the
    static upper bound.  Comparisons carry a relative slack of 1e-6 to
    absorb the simulator's event epsilon. *)

val find : (Horizon.strategy * float * t) list -> string -> t option
(** Look up a certificate by row label: exact match, or a label of the
    form ["<cell label>/<suffix>"] (suffixed variant rows check against
    their base cell). *)

val check_row_json :
  (Horizon.strategy * float * t) list ->
  Plim_telemetry.Json.t ->
  (string, string) result
(** Check one parsed [plim-horizon/v1] row against the matching
    certificate of the grid: [Ok label] when the row is inside its
    bracket, [Error] when it escapes, has no matching certificate, or
    was produced at a different endurance.  [-1] lifetimes are treated
    as "did not happen" exactly like {!Horizon.row_json} emits them. *)
