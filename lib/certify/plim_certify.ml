(* Static endurance certifier: see the .mli for the abstraction and the
   soundness arguments each bound leans on.  Everything here must stay a
   pure function of the config — certificates ride the -j1 == -jN
   byte-identity gate next to the simulator rows they bracket. *)

module Program = Plim_isa.Program
module Pipeline = Plim_core.Pipeline
module Fault_model = Plim_fault.Fault_model
module Remap = Plim_fault.Remap
module Lifetime = Plim_stats.Lifetime
module Wolfram = Plim_rram.Wolfram
module Splitmix = Plim_util.Splitmix
module Workload = Plim_serve.Workload
module Server = Plim_serve.Server
module Horizon = Plim_serve.Horizon
module Json = Plim_telemetry.Json

(* --- race detection ----------------------------------------------------- *)

module Race = struct
  type hazard = Raw | Waw | War

  let hazard_name = function Raw -> "RAW" | Waw -> "WAW" | War -> "WAR"

  type edge = {
    e_before : int;
    e_after : int;
    e_cell : int;
    e_hazard : hazard;
  }

  (* Happens-before edges from the def-use chains.  [Plim_analyze] keeps
     defs in chronological order, so grouping them per cell preserves the
     chain order; a def with [def_at = -1] is the external PI load and
     orders nothing (it happens before instruction 0 by construction). *)
  let edges_of_analysis (a : Plim_analyze.analysis) =
    let n = Array.length a.Plim_analyze.write_counts in
    let by_cell = Array.make n [] in
    List.iter
      (fun (d : Plim_analyze.def) ->
        by_cell.(d.Plim_analyze.cell) <- d :: by_cell.(d.Plim_analyze.cell))
      a.Plim_analyze.defs;
    let edges = ref [] in
    let add e = edges := e :: !edges in
    Array.iteri
      (fun cell chain_rev ->
        let chain = List.rev chain_rev in
        let rec walk = function
          | [] -> ()
          | (d : Plim_analyze.def) :: rest ->
            if d.Plim_analyze.def_at >= 0 then
              List.iter
                (fun u ->
                  if u <> d.Plim_analyze.def_at then
                    add
                      { e_before = d.Plim_analyze.def_at; e_after = u;
                        e_cell = cell; e_hazard = Raw })
                d.Plim_analyze.uses;
            (match rest with
            | (next : Plim_analyze.def) :: _ ->
              if d.Plim_analyze.def_at >= 0 then
                add
                  { e_before = d.Plim_analyze.def_at;
                    e_after = next.Plim_analyze.def_at; e_cell = cell;
                    e_hazard = Waw };
              List.iter
                (fun u ->
                  (* a use by the overwriting instruction itself is the
                     read-modify-write of RM3, not an ordering edge *)
                  if u <> next.Plim_analyze.def_at then
                    add
                      { e_before = u; e_after = next.Plim_analyze.def_at;
                        e_cell = cell; e_hazard = War })
                d.Plim_analyze.uses
            | [] -> ());
            walk rest
        in
        walk chain)
      by_cell;
    List.rev !edges

  let edges p = edges_of_analysis (Plim_analyze.analyze p)

  let check_groups p groups =
    let a = Plim_analyze.analyze p in
    let ubd =
      List.exists
        (fun (d : Plim_analyze.diagnostic) ->
          d.Plim_analyze.kind = Plim_analyze.Use_before_def)
        (Plim_analyze.errors a)
    in
    if ubd then
      Error "program has use-before-def reads; its ordering is not certifiable"
    else begin
      let n = Program.length p in
      let group_of = Array.make n (-1) in
      let bad = ref None in
      Array.iteri
        (fun gi members ->
          Array.iter
            (fun i ->
              if !bad = None then
                if i < 0 || i >= n then
                  bad := Some (Printf.sprintf "instruction index %d out of range" i)
                else if group_of.(i) >= 0 then
                  bad := Some (Printf.sprintf "instruction %d scheduled twice" i)
                else group_of.(i) <- gi)
            members)
        groups;
      (match !bad with
      | Some _ -> ()
      | None ->
        Array.iteri
          (fun i gi ->
            if !bad = None && gi < 0 then
              bad := Some (Printf.sprintf "instruction %d never scheduled" i))
          group_of);
      match !bad with
      | Some msg -> Error ("coverage: " ^ msg)
      | None ->
        let race = ref None in
        List.iter
          (fun e ->
            if !race = None && group_of.(e.e_before) >= group_of.(e.e_after)
            then race := Some e)
          (edges_of_analysis a);
        (match !race with
        | None -> Ok ()
        | Some e ->
          Error
            (Printf.sprintf
               "race: %s hazard on cell %d — instruction %d (group %d) must \
                precede instruction %d (group %d)"
               (hazard_name e.e_hazard) e.e_cell e.e_before
               group_of.(e.e_before) e.e_after group_of.(e.e_after)))
    end

  let check_schedule p (s : Plim_geometry.schedule) =
    check_groups p s.Plim_geometry.s_groups
end

(* --- wear-bound certificates -------------------------------------------- *)

type bound = { lower : float; upper : float }

type program_profile = {
  p_label : string;
  p_instructions : int;
  p_cells : int;
  p_wmax : int;
  p_mass : float;
  p_fits : bool;
}

type t = {
  c_strategy : Horizon.strategy;
  c_fault_rate : float;
  c_endurance : float;
  c_epoch_requests : int;
  c_compile_ratio : float;
  c_zipf : float;
  c_shards : int;
  c_spare_shards : int;
  c_lines : int;
  c_meas : int;
  c_cells : int;
  c_physical : int;
  c_alive0 : int;
  c_capacity0 : float;
  c_overhead : float;
  c_writes : bound;
  c_rate_cell_upper : float;
  c_ttff : bound;
  c_half_life : bound;
  c_deaths_to_half : int;
  c_line_deaths_lower : int;
  c_expected_ttff : float;
  c_programs : program_profile list;
}

let uses_start_gap = function
  | Horizon.Start_gap | Horizon.Start_gap_wolfram -> true
  | Horizon.No_leveling | Horizon.Wolfram_remap -> false

let uses_wolfram = function
  | Horizon.Wolfram_remap | Horizon.Start_gap_wolfram -> true
  | Horizon.No_leveling | Horizon.Start_gap -> false

(* Exact replay of one model shard's power-on scrub (Horizon.init_model):
   sample the permanent-fault population under the derived per-shard seed,
   remap every logical line off dead physicals.  Returns whether the shard
   survives and the minimum number of wear-out line deaths that can drain
   its remaining spare pool — Remap hands out spares in ascending physical
   order, so the consumed set is exact, not an estimate. *)
type shard0 = {
  s0_alive : bool;
  s0_min_wear_deaths : int;  (* to kill the shard, given wear retirement *)
}

let replay_shard ~spec ~model_spares ~cells id =
  let rm = Remap.create ~spares:model_spares ~lines:cells () in
  let np = Remap.num_physical rm in
  let dead = Array.make np false in
  let spec =
    { spec with Fault_model.seed = Splitmix.derive spec.Fault_model.seed id }
  in
  List.iter
    (fun (p, _kind) -> dead.(p) <- true)
    (Fault_model.sample_permanent spec ~cells:np);
  let alive = ref true in
  for l = 0 to cells - 1 do
    let continue = ref true in
    while !continue && !alive && dead.(Remap.physical rm l) do
      match Remap.retire rm l with
      | Some _ -> ()
      | None ->
        alive := false;
        continue := false
    done
  done;
  let spares_left = Remap.spares_left rm in
  (* unconsumed spares occupy the top [spares_left] physical addresses *)
  let dead_spares = ref 0 in
  for p = np - spares_left to np - 1 do
    if dead.(p) then incr dead_spares
  done;
  (* each completed wear death consumes exactly one healthy spare (its
     retire chain may also burn dead spares); the death that finds the
     pool dry kills the shard *)
  { s0_alive = !alive;
    s0_min_wear_deaths = max 1 (spares_left - !dead_spares + 1) }

let profile_mix pipeline ~lines (mix : Workload.mix) =
  let n = List.length mix.Workload.programs in
  let mass = Workload.zipf_mass mix.Workload.zipf n in
  List.mapi
    (fun i (wp : Workload.program) ->
      let result = Pipeline.compile pipeline wp.Workload.graph in
      let p = result.Pipeline.program in
      let wc = Plim_analyze.write_counts p in
      let cells = Program.num_cells p in
      { p_label = wp.Workload.label;
        p_instructions = Program.length p;
        p_cells = cells;
        p_wmax = Array.fold_left max 0 wc;
        p_mass = mass.(i);
        p_fits = cells <= lines })
    mix.Workload.programs

let certify ?fault_seed:_ (cfg : Horizon.config) =
  if cfg.Horizon.endurance <= 0.0 then
    invalid_arg "Plim_certify.certify: endurance must be positive";
  if cfg.Horizon.epoch_requests <= 0 then
    invalid_arg "Plim_certify.certify: epoch_requests must be positive";
  if cfg.Horizon.mix.Workload.programs = [] then
    invalid_arg "Plim_certify.certify: empty mix";
  let server = cfg.Horizon.server in
  let strategy = cfg.Horizon.strategy in
  let endurance = cfg.Horizon.endurance in
  let requests = float_of_int cfg.Horizon.epoch_requests in
  (* shard sizing, replayed from Server.materialize_fleet/Shard.create:
     logical lines auto-size to the largest compiled program, measured
     cells include the within-shard spare region *)
  let probe = profile_mix server.Server.pipeline ~lines:max_int cfg.Horizon.mix in
  let lines =
    if server.Server.lines > 0 then server.Server.lines
    else List.fold_left (fun acc p -> max acc p.p_cells) 1 probe
  in
  let programs = List.map (fun p -> { p with p_fits = p.p_cells <= lines }) probe in
  let meas = lines + server.Server.cell_spares in
  let cells = meas + if uses_start_gap strategy then 1 else 0 in
  let physical = cells + cfg.Horizon.model_spares in
  let total_shards = server.Server.shards + server.Server.spare_shards in
  let shard0s =
    List.init total_shards
      (replay_shard ~spec:cfg.Horizon.fault_spec
         ~model_spares:cfg.Horizon.model_spares ~cells)
  in
  let alive0 = List.length (List.filter (fun s -> s.s0_alive) shard0s) in
  let capacity0 = float_of_int alive0 /. float_of_int total_shards in
  (* fleet writes per epoch: executes wear exactly their static footprint
     (compiles wear nothing), at most [requests] of them per epoch *)
  let fitting = List.filter (fun p -> p.p_fits) programs in
  let len_max = List.fold_left (fun acc p -> max acc p.p_instructions) 0 fitting in
  let len_min =
    match fitting with
    | [] -> 0
    | _ -> List.fold_left (fun acc p -> min acc p.p_instructions) max_int fitting
  in
  let all_fit = List.for_all (fun p -> p.p_fits) programs in
  let writes_upper = requests *. float_of_int len_max in
  let writes_lower =
    (* 0 whenever some sampled epoch can legally wear nothing: redundant
       compiles, or a program whose executes the shards reject *)
    if cfg.Horizon.mix.Workload.compile_ratio > 0.0 || not all_fit then 0.0
    else requests *. float_of_int len_min
  in
  (* leveling transform of the strategy, composed exactly like
     Horizon.set_rates *)
  let sg = if uses_start_gap strategy then 1.0 /. float_of_int cfg.Horizon.psi else 0.0 in
  let wf =
    if uses_wolfram strategy then
      Wolfram.migration_overhead ~period:cfg.Horizon.wolfram_period ~lines:meas
    else 0.0
  in
  let overhead = ((1.0 +. sg) *. (1.0 +. wf)) -. 1.0 in
  (* per-cell rate upper bound: unmanaged wear concentrates an epoch's
     executes on one shard's hottest cell; leveled wear is uniform over
     the model lines with the overhead factored in *)
  let wmax = List.fold_left (fun acc p -> max acc p.p_wmax) 0 fitting in
  let rate_cell_upper =
    match strategy with
    | Horizon.No_leveling -> requests *. float_of_int wmax
    | _ -> Lifetime.leveled_rate ~overhead ~cells ~total:writes_upper ()
  in
  let ttff_lower =
    if rate_cell_upper <= 0.0 then infinity else endurance /. rate_cell_upper
  in
  (* pigeonhole upper: alive shards hold [alive0 * cells] mapped lines,
     each absorbing < endurance before the first death, while fleet wear
     accrues at >= writes_lower * (1 + overhead) per epoch *)
  let wear_rate_lower = writes_lower *. (1.0 +. overhead) in
  let ttff_upper =
    if wear_rate_lower <= 0.0 || alive0 = 0 then infinity
    else
      float_of_int alive0 *. float_of_int cells *. endurance /. wear_rate_lower
  in
  (* capacity half-life: shard deaths needed to reach <= 1/2, and the
     minimum line deaths that can cause them.  Under classic Start-Gap a
     single wear death kills the whole shard (no wear-time retirement);
     every other strategy must drain the shard's healthy spares first. *)
  let deaths_to_half = alive0 - (total_shards / 2) in
  let wear_deaths_to_kill s0 =
    if strategy = Horizon.Start_gap then 1 else s0.s0_min_wear_deaths
  in
  let line_deaths_lower =
    if deaths_to_half <= 0 then 0
    else
      let costs =
        List.filter (fun s -> s.s0_alive) shard0s
        |> List.map wear_deaths_to_kill
        |> List.sort compare
      in
      List.filteri (fun i _ -> i < deaths_to_half) costs
      |> List.fold_left ( + ) 0
  in
  let wear_rate_upper = writes_upper *. (1.0 +. overhead) in
  let half_life_lower =
    if capacity0 <= 0.5 then 0.0
    else if wear_rate_upper <= 0.0 then infinity
    else
      Float.max ttff_lower
        (float_of_int line_deaths_lower *. endurance /. wear_rate_upper)
  in
  let half_life_upper =
    if capacity0 <= 0.5 then 0.0
    else if wear_rate_lower <= 0.0 then infinity
    else
      float_of_int total_shards *. float_of_int physical *. endurance
      /. wear_rate_lower
  in
  (* informational point estimate: expected fleet writes under the Zipf
     mass, balanced over the surviving shards — never gated *)
  let exec_share = 1.0 -. cfg.Horizon.mix.Workload.compile_ratio in
  let expected_ttff =
    if alive0 = 0 then infinity
    else begin
      let k0 = float_of_int alive0 in
      let exp_rate =
        match strategy with
        | Horizon.No_leveling ->
          let weighted =
            List.fold_left
              (fun acc p ->
                if p.p_fits then acc +. (p.p_mass *. float_of_int p.p_wmax)
                else acc)
              0.0 programs
          in
          requests *. exec_share *. weighted /. k0
        | _ ->
          let total =
            List.fold_left
              (fun acc p ->
                if p.p_fits then
                  acc +. (p.p_mass *. float_of_int p.p_instructions)
                else acc)
              0.0 programs
          in
          Lifetime.leveled_rate ~overhead ~cells
            ~total:(requests *. exec_share *. total /. k0)
            ()
      in
      if exp_rate <= 0.0 then infinity else endurance /. exp_rate
    end
  in
  { c_strategy = strategy;
    c_fault_rate =
      cfg.Horizon.fault_spec.Fault_model.sa0
      +. cfg.Horizon.fault_spec.Fault_model.sa1;
    c_endurance = endurance;
    c_epoch_requests = cfg.Horizon.epoch_requests;
    c_compile_ratio = cfg.Horizon.mix.Workload.compile_ratio;
    c_zipf = cfg.Horizon.mix.Workload.zipf;
    c_shards = server.Server.shards;
    c_spare_shards = server.Server.spare_shards;
    c_lines = lines;
    c_meas = meas;
    c_cells = cells;
    c_physical = physical;
    c_alive0 = alive0;
    c_capacity0 = capacity0;
    c_overhead = overhead;
    c_writes = { lower = writes_lower; upper = writes_upper };
    c_rate_cell_upper = rate_cell_upper;
    c_ttff = { lower = ttff_lower; upper = ttff_upper };
    c_half_life = { lower = half_life_lower; upper = half_life_upper };
    c_deaths_to_half = max 0 deaths_to_half;
    c_line_deaths_lower = line_deaths_lower;
    c_expected_ttff = expected_ttff;
    c_programs = programs }

let grid ?fault_seed cfg ~strategies ~fault_rates =
  List.concat_map
    (fun strategy ->
      List.map
        (fun rate ->
          let c =
            { cfg with
              Horizon.strategy;
              fault_spec = Horizon.spec_of_rate ?seed:fault_seed rate }
          in
          (strategy, rate, certify c))
        fault_rates)
    strategies

(* --- reporting ---------------------------------------------------------- *)

let label c =
  Printf.sprintf "%s/r%g" (Horizon.strategy_name c.c_strategy) c.c_fault_rate

(* the schema carries no nulls or infinities: -1 encodes "unbounded" *)
let num_or_sentinel v = if Float.is_finite v then v else -1.0

let row_json ?label:lbl c =
  let lbl = match lbl with Some l -> l | None -> label c in
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "{\"schema\":\"plim-cert/v1\",\"label\":%s,\"strategy\":%s,\
     \"fault_rate\":%.6g,\"endurance\":%.6g,\"epoch_requests\":%d,\
     \"compile_ratio\":%.6g,\"zipf\":%.6g,\"shards\":%d,\"spare_shards\":%d,\
     \"lines\":%d,\"meas\":%d,\"cells\":%d,\"physical\":%d,\"alive0\":%d,\
     \"capacity0\":%.6g,\"overhead\":%.6g,\"writes_lower\":%.6g,\
     \"writes_upper\":%.6g,\"rate_cell_upper\":%.6g,\"ttff_lower\":%.6g,\
     \"ttff_upper\":%.6g,\"half_life_lower\":%.6g,\"half_life_upper\":%.6g,\
     \"deaths_to_half\":%d,\"line_deaths_lower\":%d,\"expected_ttff\":%.6g,\
     \"programs\":["
    (Plim_util.Jsonx.quote lbl)
    (Plim_util.Jsonx.quote (Horizon.strategy_name c.c_strategy))
    c.c_fault_rate c.c_endurance c.c_epoch_requests c.c_compile_ratio c.c_zipf
    c.c_shards c.c_spare_shards c.c_lines c.c_meas c.c_cells c.c_physical
    c.c_alive0 c.c_capacity0 c.c_overhead c.c_writes.lower c.c_writes.upper
    c.c_rate_cell_upper
    (num_or_sentinel c.c_ttff.lower)
    (num_or_sentinel c.c_ttff.upper)
    (num_or_sentinel c.c_half_life.lower)
    (num_or_sentinel c.c_half_life.upper)
    c.c_deaths_to_half c.c_line_deaths_lower
    (num_or_sentinel c.c_expected_ttff);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"label\":%s,\"instructions\":%d,\"cells\":%d,\"wmax\":%d,\
         \"mass\":%.6g,\"fits\":%b}"
        (Plim_util.Jsonx.quote p.p_label)
        p.p_instructions p.p_cells p.p_wmax p.p_mass p.p_fits)
    c.c_programs;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- the bracket checker ------------------------------------------------ *)

(* relative slack absorbing the simulator's death-event epsilon
   (1e-9 * endurance in wear units) and float accumulation *)
let slack v = 1e-6 *. Float.max (Float.abs v) 1.0

let check_bound ~what ~stopped_at bound = function
  | Some t ->
    if t +. slack t < bound.lower then
      Error
        (Printf.sprintf "%s %.6g below static lower bound %.6g" what t
           bound.lower)
    else if t -. slack t > bound.upper then
      Error
        (Printf.sprintf "%s %.6g above static upper bound %.6g" what t
           bound.upper)
    else Ok ()
  | None ->
    (* never happened: only consistent if the campaign stopped before the
       static upper bound forced the event *)
    if stopped_at -. slack stopped_at > bound.upper then
      Error
        (Printf.sprintf
           "%s never happened in %.6g epochs but the static upper bound is %.6g"
           what stopped_at bound.upper)
    else Ok ()

let check_result c (r : Horizon.result) =
  let ( let* ) = Result.bind in
  let* () =
    if c.c_strategy <> r.Horizon.r_strategy then
      Error
        (Printf.sprintf "strategy mismatch: certificate %s, result %s"
           (Horizon.strategy_name c.c_strategy)
           (Horizon.strategy_name r.Horizon.r_strategy))
    else Ok ()
  in
  let* () =
    if Float.abs (c.c_endurance -. r.Horizon.r_endurance) > slack c.c_endurance
    then
      Error
        (Printf.sprintf "endurance mismatch: certificate %.6g, result %.6g"
           c.c_endurance r.Horizon.r_endurance)
    else Ok ()
  in
  let* () =
    if Float.abs (c.c_fault_rate -. r.Horizon.r_fault_rate) > 1e-9 then
      Error
        (Printf.sprintf "fault-rate mismatch: certificate %.6g, result %.6g"
           c.c_fault_rate r.Horizon.r_fault_rate)
    else Ok ()
  in
  let stopped_at = r.Horizon.r_epochs in
  let* () = check_bound ~what:"ttff" ~stopped_at c.c_ttff r.Horizon.r_ttff in
  check_bound ~what:"half-life" ~stopped_at c.c_half_life r.Horizon.r_half_life

let find cells lbl =
  let matches c =
    let cl = label c in
    String.equal cl lbl
    || String.length lbl > String.length cl
       && String.sub lbl 0 (String.length cl + 1) = cl ^ "/"
  in
  List.find_map (fun (_, _, c) -> if matches c then Some c else None) cells

let check_row_json cells row =
  let ( let* ) = Result.bind in
  let str k = Option.bind (Json.member k row) Json.to_string in
  let num k = Option.bind (Json.member k row) Json.to_float in
  let* () =
    match str "schema" with
    | Some "plim-horizon/v1" -> Ok ()
    | Some s -> Error (Printf.sprintf "row schema %S is not plim-horizon/v1" s)
    | None -> Error "row has no schema field"
  in
  let* lbl =
    match str "label" with Some l -> Ok l | None -> Error "row has no label"
  in
  let* c =
    match find cells lbl with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "%s: no certificate for this cell" lbl)
  in
  let* epochs =
    match num "epochs" with
    | Some e -> Ok e
    | None -> Error (lbl ^ ": row has no epochs field")
  in
  let* () =
    match num "endurance" with
    | Some e when Float.abs (e -. c.c_endurance) <= slack c.c_endurance -> Ok ()
    | Some e ->
      Error
        (Printf.sprintf "%s: row endurance %.6g, certificate %.6g" lbl e
           c.c_endurance)
    | None -> Error (lbl ^ ": row has no endurance field")
  in
  (* -1 is the horizon sentinel for "did not happen before the stop" *)
  let lifetime k =
    match num k with
    | Some v when v >= 0.0 -> Ok (Some v)
    | Some _ -> Ok None
    | None -> Error (Printf.sprintf "%s: row has no %s field" lbl k)
  in
  let* ttff = lifetime "ttff_epochs" in
  let* half_life = lifetime "half_life_epochs" in
  let* () =
    Result.map_error (fun e -> lbl ^ ": " ^ e)
      (check_bound ~what:"ttff" ~stopped_at:epochs c.c_ttff ttff)
  in
  let* () =
    Result.map_error (fun e -> lbl ^ ": " ^ e)
      (check_bound ~what:"half-life" ~stopped_at:epochs c.c_half_life half_life)
  in
  Ok lbl
