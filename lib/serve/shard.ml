module Crossbar = Plim_rram.Crossbar
module Fault_model = Plim_fault.Fault_model
module Faulty = Plim_fault.Faulty
module Remap = Plim_fault.Remap
module Exec = Plim_fault.Exec
module Program = Plim_isa.Program

type status = Spare | Active | Retired

type t = {
  id : int;
  lines : int;
  geometry : Plim_geometry.grid option;
  faulty : Faulty.t;
  remap : Remap.t;
  mutable status : status;
  mutable executions : int;
  mutable stats : Exec.stats;
}

let create ?endurance ?geometry ?(spec = Fault_model.none) ?(status = Active) ~id
    ~lines ~spares () =
  if lines <= 0 then invalid_arg "Shard.create: need at least one line";
  if spares < 0 then invalid_arg "Shard.create: negative spare count";
  (match geometry with
  | Some g when not (Plim_geometry.fits g ~num_cells:lines) ->
    invalid_arg
      (Printf.sprintf "Shard.create: %d lines exceed grid %s (area %d)" lines
         (Plim_geometry.to_string g) (Plim_geometry.area g))
  | _ -> ());
  let xbar = Crossbar.create ?endurance (lines + spares) in
  let faulty = Faulty.create ~spec xbar in
  let remap = Remap.create ~spares ~lines () in
  { id; lines; geometry; faulty; remap; status; executions = 0;
    stats = Exec.zero_stats }

let id t = t.id
let lines t = t.lines
let geometry t = t.geometry
let status t = t.status
let set_status t s = t.status <- s

let status_name = function
  | Spare -> "spare"
  | Active -> "active"
  | Retired -> "retired"

let execute ~verify t p ~inputs =
  if Program.num_cells p > t.lines then
    invalid_arg
      (Printf.sprintf "Shard.execute: program needs %d cells, shard %d has %d"
         (Program.num_cells p) t.id t.lines);
  let outcome, stats = Exec.run ~verify t.faulty t.remap p ~inputs in
  t.executions <- t.executions + 1;
  t.stats <- Exec.add_stats t.stats stats;
  (outcome, stats)

let executions t = t.executions
let stats t = t.stats
let wear_counts t = Faulty.wear_counts t.faulty
let total_writes t = Array.fold_left ( + ) 0 (wear_counts t)
let spares_left t = Remap.spares_left t.remap
let stuck_cells t = Faulty.num_faulty t.faulty
