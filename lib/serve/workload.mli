(** Seeded request mixes for the compile-and-execute service.

    A {!mix} describes a population of client programs and how requests
    over them are distributed: program popularity is Zipfian (a few hot
    programs dominate, a long tail trickles), and each program's input
    vectors are split into a small {e hot pool} of recurring vectors and
    a stream of cold one-off vectors.  Both skews are the levers the
    serve experiments turn: popularity skew concentrates compile-cache
    hits, input skew concentrates wear on the cells a hot vector
    touches.

    Generation is a pure function of [(mix, seed, requests)] — the same
    arguments always produce the same request list, which is what the
    [-j 1] vs [-j N] byte-identity checks replay. *)

module Mig = Plim_mig.Mig

type request =
  | Compile of { label : string; graph : Mig.t }
      (** compile [graph] (and cache it under its digest) *)
  | Execute of { digest : string; inputs : (string * bool) list }
      (** run the cached program of [digest] on [inputs] *)

type program = {
  label : string;
  graph : Mig.t;
  digest : string;  (** {!Cache.digest_of} of [graph] *)
}

type mix = {
  programs : program list;   (** popularity-ranked: head is hottest *)
  zipf : float;              (** Zipf exponent [s]; 0 = uniform *)
  hot_fraction : float;      (** probability an Execute draws a hot vector *)
  hot_pool : int;            (** recurring input vectors per program *)
  compile_ratio : float;     (** probability of a redundant Compile request *)
}

val mix_of_suite :
  ?zipf:float ->
  ?hot_fraction:float ->
  ?hot_pool:int ->
  ?compile_ratio:float ->
  Plim_benchgen.Suite.spec list ->
  mix
(** Build a mix over benchmark suite entries in list order (first =
    most popular).  Defaults: [zipf = 1.0], [hot_fraction = 0.8],
    [hot_pool = 4], [compile_ratio = 0.05]. *)

val zipf_mass : float -> int -> float array
(** [zipf_mass s n] is the normalised Zipfian probability mass over
    ranks [1..n]: element [i] is [1/(i+1)^s] divided by the total.
    Exposed for the chi-square sanity tests.
    @raise Invalid_argument when [n <= 0]. *)

val generate : seed:int -> requests:int -> mix -> request list
(** [generate ~seed ~requests mix] is the deterministic request
    sequence: one warm-up [Compile] per program (in popularity order)
    followed by [requests] sampled requests.  A sampled request picks a
    program Zipfian-by-rank, then is a redundant [Compile] with
    probability [compile_ratio], else an [Execute] whose inputs come
    from the program's hot pool with probability [hot_fraction] and are
    drawn fresh otherwise.  Hot-pool vectors are derived from [seed]
    alone, so the same hot vector recurs across the run. *)
