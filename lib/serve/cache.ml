module Mig = Plim_mig.Mig
module Mig_io = Plim_mig.Mig_io
module Pipeline = Plim_core.Pipeline
module Metrics = Plim_obs.Metrics

type entry = { label : string; source : Mig.t; result : Pipeline.result }

type t = {
  table : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let m_hits = Metrics.counter "serve.cache_hits"
let m_misses = Metrics.counter "serve.cache_misses"

let digest_of graph = Plim_util.Fnv.digest_string (Mig_io.to_string graph)

let create () = { table = Hashtbl.create 64; hits = 0; misses = 0 }

let find t digest = Hashtbl.find_opt t.table digest

let hit t digest =
  match Hashtbl.find_opt t.table digest with
  | Some _ as e ->
    t.hits <- t.hits + 1;
    Metrics.incr m_hits;
    e
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr m_misses;
    None

let record_hit t =
  t.hits <- t.hits + 1;
  Metrics.incr m_hits

let record_miss t =
  t.misses <- t.misses + 1;
  Metrics.incr m_misses

let add t ~digest entry =
  if not (Hashtbl.mem t.table digest) then Hashtbl.replace t.table digest entry

let hits t = t.hits
let misses t = t.misses
let size t = Hashtbl.length t.table

let entries t =
  Hashtbl.fold (fun d e acc -> (d, e) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
