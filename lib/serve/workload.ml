module Mig = Plim_mig.Mig
module Splitmix = Plim_util.Splitmix

type request =
  | Compile of { label : string; graph : Mig.t }
  | Execute of { digest : string; inputs : (string * bool) list }

type program = { label : string; graph : Mig.t; digest : string }

type mix = {
  programs : program list;
  zipf : float;
  hot_fraction : float;
  hot_pool : int;
  compile_ratio : float;
}

let mix_of_suite ?(zipf = 1.0) ?(hot_fraction = 0.8) ?(hot_pool = 4)
    ?(compile_ratio = 0.05) specs =
  if specs = [] then invalid_arg "Workload.mix_of_suite: empty suite";
  let programs =
    List.map
      (fun (spec : Plim_benchgen.Suite.spec) ->
        let graph = Plim_benchgen.Suite.build_cached spec in
        { label = spec.Plim_benchgen.Suite.name; graph;
          digest = Cache.digest_of graph })
      specs
  in
  { programs; zipf; hot_fraction; hot_pool; compile_ratio }

let zipf_mass s n =
  if n <= 0 then invalid_arg "Workload.zipf_mass: need a positive rank count";
  let mass = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 mass in
  Array.map (fun m -> m /. total) mass

(* Inverse-CDF sampling over the (small) rank population: a uniform draw
   walks the cumulative mass.  O(n) per draw is fine — mixes have tens of
   programs, not millions. *)
let sample_rank rng cumulative =
  let u = Splitmix.float rng in
  let n = Array.length cumulative in
  let rec find i = if i >= n - 1 || u < cumulative.(i) then i else find (i + 1) in
  find 0

let input_vector rng graph =
  let names = Mig.input_names graph in
  Array.to_list (Array.map (fun name -> (name, Splitmix.bool rng)) names)

let generate ~seed ~requests mix =
  if requests < 0 then invalid_arg "Workload.generate: negative request count";
  if mix.programs = [] then invalid_arg "Workload.generate: empty program mix";
  if mix.hot_pool < 0 then invalid_arg "Workload.generate: negative hot pool";
  let programs = Array.of_list mix.programs in
  let n = Array.length programs in
  let mass = zipf_mass mix.zipf n in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i m ->
      acc := !acc +. m;
      cumulative.(i) <- !acc)
    mass;
  (* Hot pools depend only on (seed, program rank, slot) — not on the
     request stream — so the same recurring vectors appear whatever the
     request count. *)
  let hot_vectors =
    Array.mapi
      (fun rank p ->
        Array.init mix.hot_pool (fun slot ->
          let vseed = Splitmix.derive (Splitmix.derive seed (1 + rank)) slot in
          input_vector (Splitmix.create vseed) p.graph))
      programs
  in
  let rng = Splitmix.create (Splitmix.derive seed 0) in
  let warmup =
    List.map (fun p -> Compile { label = p.label; graph = p.graph }) mix.programs
  in
  let sampled =
    List.init requests (fun _ ->
      let rank = sample_rank rng cumulative in
      let p = programs.(rank) in
      if Splitmix.float rng < mix.compile_ratio then
        Compile { label = p.label; graph = p.graph }
      else
        let inputs =
          if mix.hot_pool > 0 && Splitmix.float rng < mix.hot_fraction then
            hot_vectors.(rank).(Splitmix.int rng mix.hot_pool)
          else input_vector rng p.graph
        in
        Execute { digest = p.digest; inputs })
  in
  warmup @ sampled
