module Splitmix = Plim_util.Splitmix
module Fault_model = Plim_fault.Fault_model
module Remap = Plim_fault.Remap
module Lifetime = Plim_stats.Lifetime
module Wear = Plim_telemetry.Wear
module Wolfram = Plim_rram.Wolfram

type strategy = No_leveling | Start_gap | Wolfram_remap | Start_gap_wolfram

let all_strategies = [ No_leveling; Start_gap; Wolfram_remap; Start_gap_wolfram ]

let strategy_name = function
  | No_leveling -> "none"
  | Start_gap -> "start_gap"
  | Wolfram_remap -> "wolfram_remap"
  | Start_gap_wolfram -> "start_gap+wolfram"

let strategy_of_string = function
  | "none" -> Ok No_leveling
  | "start_gap" -> Ok Start_gap
  | "wolfram_remap" | "wolfram" -> Ok Wolfram_remap
  | "start_gap+wolfram" | "both" -> Ok Start_gap_wolfram
  | s ->
    Error
      (Printf.sprintf
         "unknown endurance strategy %S (expected none|start_gap|wolfram_remap|start_gap+wolfram)"
         s)

let uses_start_gap = function
  | Start_gap | Start_gap_wolfram -> true
  | No_leveling | Wolfram_remap -> false

type config = {
  server : Server.config;
  mix : Workload.mix;
  strategy : strategy;
  fault_spec : Fault_model.spec;
  endurance : float;
  epoch_requests : int;
  sample_every : float;
  max_epochs : float;
  capacity_floor : float;
  psi : int;
  wolfram_period : int;
  model_spares : int;
  epoch_seconds : float;
  project_endurance : float;
}

let default_mix () =
  Workload.mix_of_suite
    (List.filteri (fun i _ -> i < 5) Plim_benchgen.Suite.small_suite)

let default_config =
  { server =
      { Server.default_config with
        Server.endurance = None;
        verify = false;
        check = false;
        fault_spec = Fault_model.none };
    mix = default_mix ();
    strategy = No_leveling;
    fault_spec = Fault_model.none;
    endurance = 2e5;
    epoch_requests = 80;
    sample_every = 2500.0;
    max_epochs = 40_000.0;
    capacity_floor = 0.35;
    psi = 100;
    wolfram_period = 50_000;
    model_spares = 8;
    epoch_seconds = 60.0;
    project_endurance = 1e10 }

type stop_reason = Capacity_floor | Fleet_dead | Max_epochs

let stop_reason_name = function
  | Capacity_floor -> "capacity_floor"
  | Fleet_dead -> "fleet_dead"
  | Max_epochs -> "max_epochs"

type sample = { hz_epoch : float; hz_capacity : float; hz_skew : Wear.skew }

type shard_report = {
  sh_id : int;
  sh_cells : int;
  sh_first_death : float option;
  sh_dead_epoch : float option;
  sh_retired_cells : int;
}

type result = {
  r_strategy : strategy;
  r_fault_rate : float;
  r_endurance : float;
  r_epochs : float;
  r_stop : stop_reason;
  r_ttff : float option;           (* first cell wear-out, in epochs *)
  r_half_life : float option;      (* capacity <= 1/2 design capacity *)
  r_final_capacity : float;
  r_dead_shards : int;
  r_alive_shards : int;
  r_sampled_epochs : int;
  r_total_writes : float;
  r_skew : Wear.skew;
  r_shards : shard_report list;
  r_trajectory : sample list;
  r_epoch_seconds : float;
  r_project_factor : float;        (* project_endurance / endurance *)
}

(* One modelled shard: a wear ledger over [Remap.num_physical] physical
   lines, fed by rates derived from measured server traffic.  The spare
   pool and the permanent-fault population live here — the live server
   fleet runs fault-free and is only used to measure per-cell write
   rates, so the fault axis perturbs exactly one thing (spare budget
   consumption) and lifetime stays monotone in the injected rate. *)
type shard_model = {
  sm_id : int;
  sm_meas : int;                   (* measured cells on the server shard *)
  sm_cells : int;                  (* logical lines of the model *)
  sm_rm : Remap.t;
  sm_wear : float array;           (* per physical line *)
  sm_rate : float array;           (* writes per epoch, per physical line *)
  sm_lrate : float array;          (* writes per epoch, per logical line *)
  sm_inverse : int array;          (* physical -> logical, -1 = unmapped *)
  sm_dead : bool array;            (* worn out or permanently faulty *)
  sm_wear_retire : bool;
  (* Whether wear-time line retirement is possible.  Classic Start-Gap
     rotates over a contiguous physical range — the gap copy would march
     straight into a retired line — so without a programmable remap layer
     underneath, the first wear-out death takes the whole shard.  Factory
     (power-on) defects are still patched for every strategy. *)
  mutable sm_alive : bool;
  mutable sm_first_death : float option;
  mutable sm_dead_epoch : float option;
}

let refresh_prate sm =
  Array.fill sm.sm_rate 0 (Array.length sm.sm_rate) 0.0;
  if sm.sm_alive then
    for l = 0 to sm.sm_cells - 1 do
      let p = Remap.physical sm.sm_rm l in
      sm.sm_rate.(p) <- sm.sm_rate.(p) +. sm.sm_lrate.(l)
    done

(* Remap logical line [l] away from dead physical lines until it lands on
   a healthy spare; kills the shard when the pool runs dry. *)
let scrub_line sm ~epoch l =
  let continue = ref true in
  while !continue && sm.sm_alive && sm.sm_dead.(Remap.physical sm.sm_rm l) do
    let old = Remap.physical sm.sm_rm l in
    match Remap.retire sm.sm_rm l with
    | Some fresh ->
      sm.sm_inverse.(old) <- -1;
      sm.sm_inverse.(fresh) <- l
    | None ->
      sm.sm_alive <- false;
      sm.sm_dead_epoch <- Some epoch;
      continue := false
  done

let init_model cfg ~id ~meas =
  let cells = meas + if uses_start_gap cfg.strategy then 1 else 0 in
  let rm = Remap.create ~spares:cfg.model_spares ~lines:cells () in
  let np = Remap.num_physical rm in
  let sm =
    { sm_id = id;
      sm_meas = meas;
      sm_cells = cells;
      sm_rm = rm;
      sm_wear = Array.make np 0.0;
      sm_rate = Array.make np 0.0;
      sm_lrate = Array.make cells 0.0;
      sm_inverse = Array.init np (fun p -> if p < cells then p else -1);
      sm_dead = Array.make np false;
      sm_wear_retire = cfg.strategy <> Start_gap;
      sm_alive = true;
      sm_first_death = None;
      sm_dead_epoch = None }
  in
  (* power-on scrub: the permanent-fault population of this shard, seeded
     exactly like the server fleet derives per-shard fault streams *)
  let spec =
    { cfg.fault_spec with
      Fault_model.seed = Splitmix.derive cfg.fault_spec.Fault_model.seed id }
  in
  List.iter
    (fun (p, _kind) -> sm.sm_dead.(p) <- true)
    (Fault_model.sample_permanent spec ~cells:np);
  for l = 0 to cells - 1 do
    scrub_line sm ~epoch:0.0 l
  done;
  sm

let set_rates cfg sm (delta : int array) =
  if sm.sm_alive then begin
    let total = Array.fold_left (fun acc d -> acc +. float_of_int d) 0.0 delta in
    (match cfg.strategy with
    | No_leveling ->
      for l = 0 to sm.sm_cells - 1 do
        sm.sm_lrate.(l) <-
          (if l < Array.length delta then float_of_int delta.(l) else 0.0)
      done
    | _ ->
      let sg = if uses_start_gap cfg.strategy then 1.0 /. float_of_int cfg.psi else 0.0 in
      let wf =
        match cfg.strategy with
        | Wolfram_remap | Start_gap_wolfram ->
          Wolfram.migration_overhead ~period:cfg.wolfram_period ~lines:sm.sm_meas
        | _ -> 0.0
      in
      let overhead = ((1.0 +. sg) *. (1.0 +. wf)) -. 1.0 in
      let uniform = Lifetime.leveled_rate ~overhead ~cells:sm.sm_cells ~total () in
      Array.fill sm.sm_lrate 0 sm.sm_cells uniform);
    refresh_prate sm
  end

let fleet_wear_snapshot models =
  let cells = ref [] in
  (* reverse shard order so the final list is ascending by (shard, line) *)
  List.iter
    (fun sm ->
      if sm.sm_alive then
        for p = Array.length sm.sm_wear - 1 downto 0 do
          if sm.sm_inverse.(p) >= 0 then
            cells := int_of_float (Float.round sm.sm_wear.(p)) :: !cells
        done)
    (List.rev models);
  match !cells with [] -> [| 0 |] | l -> Array.of_list l

let capacity_of models total =
  let alive = List.length (List.filter (fun sm -> sm.sm_alive) models) in
  float_of_int alive /. float_of_int total

let validate cfg =
  if cfg.endurance <= 0.0 then invalid_arg "Horizon.run: endurance must be positive";
  if cfg.epoch_requests <= 0 then invalid_arg "Horizon.run: epoch_requests must be positive";
  if cfg.sample_every <= 0.0 then invalid_arg "Horizon.run: sample_every must be positive";
  if cfg.max_epochs <= 0.0 then invalid_arg "Horizon.run: max_epochs must be positive";
  if cfg.capacity_floor < 0.0 || cfg.capacity_floor > 1.0 then
    invalid_arg "Horizon.run: capacity_floor must be in [0,1]";
  if cfg.psi <= 0 then invalid_arg "Horizon.run: psi must be positive";
  if cfg.wolfram_period <= 0 then invalid_arg "Horizon.run: wolfram_period must be positive";
  if cfg.model_spares < 0 then invalid_arg "Horizon.run: model_spares must be non-negative";
  if cfg.project_endurance <= 0.0 then
    invalid_arg "Horizon.run: project_endurance must be positive"

let run ?pool cfg =
  validate cfg;
  let server_cfg =
    { cfg.server with Server.fault_spec = Fault_model.none; endurance = None }
  in
  let server = Server.create server_cfg in
  let sample_seed = Splitmix.derive server_cfg.Server.seed 0x4A11 in
  let sampled = ref 0 in
  let run_epoch () =
    let seed = Splitmix.derive sample_seed !sampled in
    incr sampled;
    let before = Server.shard_wear server in
    let reqs = Workload.generate ~seed ~requests:cfg.epoch_requests cfg.mix in
    ignore (Server.run ?pool server reqs);
    let after = Server.shard_wear server in
    List.map
      (fun (id, _status, w) ->
        (match List.assoc_opt id (List.map (fun (i, _, a) -> (i, a)) before) with
        | Some w0 -> Array.mapi (fun i c -> c - w0.(i)) w
        | None -> w)
        |> fun delta -> (id, delta))
      after
  in
  (* epoch 0: materialise the fleet, measure the first rates *)
  let deltas0 = run_epoch () in
  let models =
    List.map (fun (id, delta) -> init_model cfg ~id ~meas:(Array.length delta)) deltas0
  in
  let total_shards = List.length models in
  if total_shards = 0 then invalid_arg "Horizon.run: empty fleet";
  let apply_deltas deltas =
    List.iter
      (fun sm ->
        match List.assoc_opt sm.sm_id deltas with
        | Some delta -> set_rates cfg sm delta
        | None -> ())
      models
  in
  (* power-on scrub may already have killed shards: sync the server fleet *)
  List.iter
    (fun sm -> if not sm.sm_alive then ignore (Server.force_retire server sm.sm_id))
    models;
  apply_deltas deltas0;
  let trajectory = ref [] in
  let record epoch =
    let skew = Wear.skew_of (fleet_wear_snapshot models) in
    trajectory :=
      { hz_epoch = epoch; hz_capacity = capacity_of models total_shards; hz_skew = skew }
      :: !trajectory
  in
  record 0.0;
  let ttff = ref None in
  let total_writes = ref 0.0 in
  let now = ref 0.0 in
  let last_sample = ref 0.0 in
  let stop = ref None in
  let events = ref 0 in
  let eps = 1e-9 *. cfg.endurance in
  let resample () =
    let deltas = run_epoch () in
    apply_deltas deltas;
    last_sample := !now
  in
  (* Kill every cell at or past the endurance threshold, remap its logical
     line to a spare, and propagate shard death into the live fleet so the
     next sampled epoch reroutes traffic.  Returns whether fleet capacity
     changed. *)
  let process_deaths () =
    let fleet_changed = ref false in
    List.iter
      (fun sm ->
        if sm.sm_alive then begin
          let shard_changed = ref false in
          Array.iteri
            (fun p w ->
              if
                sm.sm_alive && (not sm.sm_dead.(p))
                && sm.sm_inverse.(p) >= 0
                && w +. eps >= cfg.endurance
              then begin
                if !ttff = None then ttff := Some !now;
                if sm.sm_first_death = None then sm.sm_first_death <- Some !now;
                sm.sm_dead.(p) <- true;
                sm.sm_wear.(p) <- 0.0;
                let l = sm.sm_inverse.(p) in
                sm.sm_inverse.(p) <- -1;
                if sm.sm_wear_retire then scrub_line sm ~epoch:!now l
                else begin
                  sm.sm_alive <- false;
                  sm.sm_dead_epoch <- Some !now
                end;
                shard_changed := true
              end)
            sm.sm_wear;
          if !shard_changed then begin
            refresh_prate sm;
            if not sm.sm_alive then begin
              ignore (Server.force_retire server sm.sm_id);
              fleet_changed := true
            end
          end
        end)
      models;
    !fleet_changed
  in
  while !stop = None do
    incr events;
    let capacity = capacity_of models total_shards in
    if capacity < cfg.capacity_floor then
      stop := Some (if capacity = 0.0 then Fleet_dead else Capacity_floor)
    else if !now >= cfg.max_epochs || !events > 1_000_000 then stop := Some Max_epochs
    else begin
      let next_sample = !last_sample +. cfg.sample_every in
      let e_death =
        List.fold_left
          (fun acc sm ->
            if sm.sm_alive then
              min acc
                (Lifetime.epochs_to_threshold ~threshold:cfg.endurance
                   ~wear:sm.sm_wear ~rate:sm.sm_rate)
            else acc)
          infinity models
      in
      let death_at = !now +. e_death in
      let target = min (min next_sample cfg.max_epochs) death_at in
      let dt = target -. !now in
      List.iter
        (fun sm ->
          if sm.sm_alive then begin
            total_writes :=
              !total_writes +. (dt *. Array.fold_left ( +. ) 0.0 sm.sm_rate);
            Lifetime.fast_forward_into ~epochs:dt ~wear:sm.sm_wear ~rate:sm.sm_rate
          end)
        models;
      now := target;
      if target = death_at && e_death < infinity then begin
        let fleet_changed = process_deaths () in
        if fleet_changed then begin
          record !now;
          if capacity_of models total_shards >= cfg.capacity_floor then resample ()
        end
      end
      else if target = next_sample && target < cfg.max_epochs then begin
        resample ();
        record !now
      end
      (* target = max_epochs: the loop head stops on the next iteration *)
    end
  done;
  let stop = match !stop with Some s -> s | None -> Max_epochs in
  record !now;
  let trajectory = List.rev !trajectory in
  let capacity_curve = List.map (fun s -> (s.hz_epoch, s.hz_capacity)) trajectory in
  let final_capacity = capacity_of models total_shards in
  let dead = List.length (List.filter (fun sm -> not sm.sm_alive) models) in
  { r_strategy = cfg.strategy;
    r_fault_rate = cfg.fault_spec.Fault_model.sa0 +. cfg.fault_spec.Fault_model.sa1;
    r_endurance = cfg.endurance;
    r_epochs = !now;
    r_stop = stop;
    r_ttff = !ttff;
    r_half_life = Lifetime.half_life ~initial:1.0 capacity_curve;
    r_final_capacity = final_capacity;
    r_dead_shards = dead;
    r_alive_shards = total_shards - dead;
    r_sampled_epochs = !sampled;
    r_total_writes = !total_writes;
    r_skew = Wear.skew_of (fleet_wear_snapshot models);
    r_shards =
      List.map
        (fun sm ->
          { sh_id = sm.sm_id;
            sh_cells = sm.sm_cells;
            sh_first_death = sm.sm_first_death;
            sh_dead_epoch = sm.sm_dead_epoch;
            sh_retired_cells = Remap.remaps sm.sm_rm })
        models;
    r_trajectory = trajectory;
    r_epoch_seconds = cfg.epoch_seconds;
    r_project_factor = cfg.project_endurance /. cfg.endurance }

(* --- grid -------------------------------------------------------------- *)

let spec_of_rate ?(seed = 0xFA17) rate =
  if rate <= 0.0 then Fault_model.none
  else Fault_model.make ~sa0:(rate *. 2.0 /. 3.0) ~sa1:(rate /. 3.0) ~seed ()

let grid ?pool ?fault_seed cfg ~strategies ~fault_rates =
  let cells =
    List.concat_map
      (fun strategy -> List.map (fun rate -> (strategy, rate)) fault_rates)
      strategies
  in
  let one (strategy, rate) =
    let c =
      { cfg with strategy; fault_spec = spec_of_rate ?seed:fault_seed rate }
    in
    (strategy, rate, run ?pool c)
  in
  match pool with
  | Some p -> Plim_par.map p ~f:one cells
  | None -> List.map one cells

(* --- reporting --------------------------------------------------------- *)

let seconds_per_year = 31_557_600.0

let years_of r epochs = epochs *. r.r_epoch_seconds /. seconds_per_year

let label r = Printf.sprintf "%s/r%g" (strategy_name r.r_strategy) r.r_fault_rate

(* [-1] encodes "did not happen before the campaign stopped" — the schema
   has no nulls so the rows stay greppable and diffable.  Non-finite
   values fold into the same sentinel: Lifetime.epochs_to_threshold is
   contracted to return bare [infinity] for "never", and "never" and
   "not yet" mean the same thing to a row reader. *)
let sentinel_epochs = function
  | Some e when Float.is_finite e -> e
  | Some _ | None -> -1.0

let opt_epochs = sentinel_epochs

let decimate ~keep xs =
  let n = List.length xs in
  if n <= keep then xs
  else
    let arr = Array.of_list xs in
    List.init keep (fun i ->
        if i = keep - 1 then arr.(n - 1) else arr.(i * (n - 1) / (keep - 1)))

let row_json ?label:lbl r =
  let lbl = match lbl with Some l -> l | None -> label r in
  let b = Buffer.create 1024 in
  let opt_years e = sentinel_epochs (Option.map (years_of r) e) in
  let proj e =
    sentinel_epochs (Option.map (fun e -> years_of r e *. r.r_project_factor) e)
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"plim-horizon/v1\",\"label\":%s,\"strategy\":%s,\
        \"fault_rate\":%.6g,\"endurance\":%.6g,\"epochs\":%.6g,\"stop\":%s,\
        \"ttff_epochs\":%.6g,\"ttff_years\":%.6g,\"half_life_epochs\":%.6g,\
        \"half_life_years\":%.6g,\"proj_ttff_years\":%.6g,\
        \"proj_half_life_years\":%.6g,\"final_capacity\":%.6g,\
        \"capacity_loss\":%.6g,\"dead_shards\":%d,\"alive_shards\":%d,\
        \"sampled_epochs\":%d,\"total_writes\":%.6g,\"skew\":%s,\
        \"trajectory\":["
       (Plim_util.Jsonx.quote lbl)
       (Plim_util.Jsonx.quote (strategy_name r.r_strategy))
       r.r_fault_rate r.r_endurance r.r_epochs
       (Plim_util.Jsonx.quote (stop_reason_name r.r_stop))
       (opt_epochs r.r_ttff) (opt_years r.r_ttff)
       (opt_epochs r.r_half_life) (opt_years r.r_half_life)
       (proj r.r_ttff) (proj r.r_half_life)
       r.r_final_capacity
       (1.0 -. r.r_final_capacity)
       r.r_dead_shards r.r_alive_shards r.r_sampled_epochs r.r_total_writes
       (Wear.skew_json r.r_skew));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"epoch\":%.6g,\"capacity\":%.6g,\"gini\":%.6g,\"max_mean\":%.6g}"
           s.hz_epoch s.hz_capacity s.hz_skew.Wear.gini s.hz_skew.Wear.max_mean))
    (decimate ~keep:48 r.r_trajectory);
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_result ppf r =
  let f = function Some e -> Printf.sprintf "%.4g" e | None -> "-" in
  Format.fprintf ppf
    "%-17s r=%-6g ttff=%-8s half-life=%-8s epochs=%-8g capacity=%.2f dead=%d"
    (strategy_name r.r_strategy)
    r.r_fault_rate (f r.r_ttff) (f r.r_half_life) r.r_epochs r.r_final_capacity
    r.r_dead_shards
