(** The long-lived compile-and-execute service core.

    A {!t} owns a compile cache ({!Cache}) and a fleet of persistent
    crossbar shards ({!Shard}) and serves {!Workload.request} streams
    against them.  Requests are processed in fixed-size batches through
    a deterministic five-phase schedule:

    + {b classify} — consult the cache for every request in batch
      order; distinct missing digests become compile jobs;
    + {b compile} — missing programs compile in parallel on the
      {!Plim_par} pool and merge into the cache in submission order;
    + {b place} — sequentially route each execution to the least-worn
      eligible [Active] shard (wear read through
      {!Plim_telemetry.Wear.skew_of} at batch start plus the static
      write footprint of work already placed this batch; ties break to
      the lowest shard id);
    + {b execute} — one parallel task per shard runs its queue in
      batch order, so every shard is touched by exactly one domain;
    + {b merge} — sequentially, in shard-id order: a shard whose
      spare-line pool ran dry is retired, a spare shard is activated,
      and the abandoned execution re-runs there.

    Phases 1, 3 and 5 are sequential and phases 2 and 4 partition
    their mutable state per task, so the response stream, every counter
    and all fleet wear state are byte-identical at any [-j] — the
    property the serve determinism checks replay.

    Compiles made visible by a batch serve all executions of the same
    batch regardless of their relative order within it. *)

module Program = Plim_isa.Program
module Pipeline = Plim_core.Pipeline
module Fault_model = Plim_fault.Fault_model
module Exec = Plim_fault.Exec
module Wear = Plim_telemetry.Wear
module Histogram = Plim_telemetry.Histogram

type config = {
  pipeline : Pipeline.config;
  shards : int;              (** initially [Active] shards *)
  spare_shards : int;        (** initially [Spare] shards *)
  lines : int;               (** logical lines per shard; 0 = size to the
                                 largest cached program at first use *)
  cell_spares : int;         (** spare lines per shard (within-shard repair) *)
  verify : bool;             (** write-verify every destructive operation *)
  fault_spec : Fault_model.spec;  (** per-shard seeds are derived from
                                      [fault_spec.seed] and the shard id *)
  endurance : int option;    (** per-cell write budget of shard crossbars *)
  check : bool;              (** compare outputs against a fault-free
                                 reference run; mismatches count as
                                 [incorrect] *)
  seed : int;
  geometry : Plim_geometry.grid option;
      (** physical [rows x cols] bound of every shard crossbar.  When
          set, shards refuse to materialise with more lines than the
          grid area, and each accepted execution additionally reports
          its latency in row-parallel instruction groups
          ({!Plim_machine.Plim_controller.static_groups}) *)
}

val default_config : config
(** [endurance_full] pipeline, 4 shards + 1 spare, auto lines, 8 cell
    spares, verify and check on, no injected faults, seed 1. *)

type response =
  | Compiled of { digest : string; cached : bool }
  | Executed of {
      digest : string;
      shard : int;           (** shard that produced the accepted outputs *)
      outputs : (string * bool) list;
      correct : bool option; (** [None] when [check] is off *)
      cycles : int;          (** simulated service cost: static cycles +
                                 verify reads + retries, summed over
                                 re-runs *)
    }
  | Rejected of { digest : string; reason : string }

type summary = {
  requests : int;
  compiles : int;            (** compile requests served *)
  executes : int;            (** execute requests accepted *)
  cache_hits : int;
  cache_misses : int;
  rejected : int;
  incorrect : int;           (** executions whose outputs differed from the
                                 fault-free reference *)
  re_runs : int;             (** executions replayed on another shard *)
  retired_shards : int;
  spare_activations : int;
  total_cycles : int;
  total_groups : int;        (** row-parallel groups over every accepted
                                 execution; 0 without a [geometry] *)
  exec_stats : Exec.stats;   (** fleet-wide write-verify totals *)
}

type t

val create : config -> t
val config : t -> config

val run : ?pool:Plim_par.t -> ?batch:int -> t -> Workload.request list ->
  response list
(** Serve the requests (batch size defaults to 32 and never affects
    results' values, only scheduling granularity); responses are in
    request order.  Without [pool] every phase runs sequentially —
    identical output, no parallelism. *)

val summary : t -> summary

val latency : t -> Histogram.t
(** Per-request simulated-cycle latency distribution (copy), cumulative
    over every {!run} on this server. *)

val group_latency : t -> Histogram.t
(** Per-execution latency in row-parallel instruction groups (copy);
    empty unless the config has a [geometry]. *)

val fleet_skew : t -> Wear.skew
(** Wear skew {e across} shards: one total-write sample per non-spare
    shard.  [gini] is the per-shard wear-skew metric the bench emits. *)

val shard_statuses : t -> (int * Shard.status * int) list
(** [(id, status, total_writes)] per shard, ascending id; empty before
    the fleet materialises. *)

val shard_wear : t -> (int * Shard.status * int array) list
(** [(id, status, per-cell write counts)] per shard, ascending id; empty
    before the fleet materialises.  The arrays are copies — diffing two
    snapshots around a batch yields the per-cell write {e rate} that
    {!Horizon} extrapolates between sampled epochs. *)

val force_retire : t -> int -> bool
(** Administratively retire a shard (the forced-retirement scenario).
    [false] if the fleet is not materialised yet, the id is unknown, or
    the shard is already retired. *)

val fleet_heatmap_json : t -> string
(** JSON document [{schema: "plim-serve-fleet/v1", shards: [...]}] with
    one {!Plim_telemetry.Wear.heatmap_json} entry per shard — the CI
    wear-heatmap artifact. *)

val row_json : t -> label:string -> wall_s:float -> string
(** One [plim-serve/v1] result row: the summary counters, latency
    p50/p99, fleet skew and throughput ([wall_s = 0] reports
    [requests_per_sec] as 0 — the deterministic mode). *)
