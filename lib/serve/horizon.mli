(** Device-lifetime horizon campaigns: years of traffic in seconds.

    The serve fleet simulates individual requests; RRAM endurance questions
    live at 1e10 writes per cell — ~10 orders of magnitude of traffic no
    per-write simulation can cover.  A horizon campaign closes the gap with
    accelerated time: every [sample_every] epochs one {e sampled epoch} of
    real {!Workload} traffic runs through the {!Server} fleet and the
    per-shard, per-cell write deltas become {e rates}; between samples wear
    advances in closed form ({!Plim_stats.Lifetime.fast_forward}) and the
    driver jumps straight to the next event — the earliest predicted cell
    death, the next sample boundary, or the epoch horizon — so runtime
    scales with {e events}, not with endurance.

    The endurance strategy is a first-class axis.  Per strategy the
    stationary per-cell rate distribution is:

    - [none] — the measured per-cell deltas verbatim (exact: linear
      extrapolation of an unmanaged array is lossless while placement is
      stable);
    - [start_gap] — uniform over [n+1] lines with [1/psi] gap-copy
      overhead ({!Plim_rram.Start_gap});
    - [wolfram_remap] — uniform over [n] lines with [n/period] re-key
      migration overhead ({!Plim_rram.Wolfram});
    - [start_gap+wolfram] — uniform over [n+1] with both overheads
      compounded, the WoLFRaM result (arXiv 2010.02825) of programmable
      remapping {e under} rotation.

    Uniformity is the stationary distribution of each levelling layer; its
    mixing time (at most [n * psi] writes) is negligible against device
    lifetime, which is what makes the closed form sound.

    Faults: the model layer owns the permanent-fault population and a
    per-shard {!Plim_fault.Remap} spare pool; worn-out or faulty lines
    retire onto spares and a shard dies when the pool runs dry (the live
    server shard is {!Server.force_retire}d so the next sampled epoch
    reroutes its traffic).  The live fleet itself runs fault-free — the
    fault-rate axis therefore only consumes spare budget, which keeps
    time-to-first-failure and capacity half-life monotone in the rate.

    One asymmetry in the matrix is deliberate: under [start_gap] {e alone}
    a wear-out death takes the whole shard, because the rotation marches
    over a contiguous physical range and would copy straight into a
    retired line — classic Start-Gap composes with factory defect maps
    (power-on scrub still patches those) but not with wear-time spare
    retirement.  The programmable remap of [wolfram_remap] and
    [start_gap+wolfram] is exactly what restores graceful degradation, so
    the combined strategy matches Start-Gap's time-to-first-failure while
    keeping WoLFRaM's capacity half-life. *)

type strategy = No_leveling | Start_gap | Wolfram_remap | Start_gap_wolfram

val all_strategies : strategy list
(** In canonical grid order: none, start_gap, wolfram_remap,
    start_gap+wolfram. *)

val strategy_name : strategy -> string

val strategy_of_string : string -> (strategy, string) result

type config = {
  server : Server.config;
      (** fleet shape; [fault_spec] and [endurance] in here are overridden
          (the live fleet runs fault-free and never retires on its own —
          the horizon model owns both). *)
  mix : Workload.mix;
  strategy : strategy;
  fault_spec : Plim_fault.Fault_model.spec;
      (** permanent faults of the {e model} layer, seeded per shard. *)
  endurance : float;       (** per-cell write budget of the campaign *)
  epoch_requests : int;    (** requests per epoch of simulated traffic *)
  sample_every : float;    (** epochs between sampled (really-executed) epochs *)
  max_epochs : float;      (** hard horizon *)
  capacity_floor : float;  (** stop when alive-shard fraction drops below *)
  psi : int;               (** Start-Gap rotation period *)
  wolfram_period : int;    (** writes between WoLFRaM re-keys *)
  model_spares : int;      (** spare lines per shard in the wear model *)
  epoch_seconds : float;   (** wall-clock seconds one epoch represents *)
  project_endurance : float;
      (** real device endurance (default 1e10) the [proj_*_years] row
          fields linearly rescale to. *)
}

val default_config : config

type stop_reason = Capacity_floor | Fleet_dead | Max_epochs

val stop_reason_name : stop_reason -> string

type sample = { hz_epoch : float; hz_capacity : float; hz_skew : Plim_telemetry.Wear.skew }

type shard_report = {
  sh_id : int;
  sh_cells : int;
  sh_first_death : float option;
  sh_dead_epoch : float option;
  sh_retired_cells : int;
}

type result = {
  r_strategy : strategy;
  r_fault_rate : float;
  r_endurance : float;
  r_epochs : float;            (** epochs simulated before stopping *)
  r_stop : stop_reason;
  r_ttff : float option;       (** epoch of the first cell wear-out death *)
  r_half_life : float option;
      (** first epoch the fleet is at half its design capacity *)
  r_final_capacity : float;
  r_dead_shards : int;
  r_alive_shards : int;
  r_sampled_epochs : int;      (** really-executed epochs *)
  r_total_writes : float;      (** modelled writes across the fleet *)
  r_skew : Plim_telemetry.Wear.skew;
  r_shards : shard_report list;
  r_trajectory : sample list;
  r_epoch_seconds : float;
  r_project_factor : float;
}

val run : ?pool:Plim_par.t -> config -> result
(** One campaign.  Deterministic: a pure function of the config — the
    pool parallelises sampled-epoch batches without affecting any
    value. *)

val grid :
  ?pool:Plim_par.t ->
  ?fault_seed:int ->
  config ->
  strategies:strategy list ->
  fault_rates:float list ->
  (strategy * float * result) list
(** The strategy × fault-rate grid, strategies outer, in submission order
    (byte-identical at any [-j] width).  Each rate becomes a coupled-
    threshold {!Plim_fault.Fault_model} spec (2/3 SA0, 1/3 SA1), so fault
    sets are supersets along the rate axis. *)

val spec_of_rate : ?seed:int -> float -> Plim_fault.Fault_model.spec

val years_of : result -> float -> float
(** Convert epochs to simulated years at the result's [epoch_seconds]. *)

val label : result -> string
(** ["<strategy>/r<rate>"], the default row label. *)

val sentinel_epochs : float option -> float
(** The [plim-horizon/v1] encoding of an optional lifetime: the value
    when present and finite, [-1.0] for [None] {e and} for non-finite
    values ({!Plim_stats.Lifetime.epochs_to_threshold} returns bare
    [infinity] for "never reached", which a no-nulls/no-infinities JSON
    schema folds into the same "did not happen" sentinel). *)

val row_json : ?label:string -> result -> string
(** One [plim-horizon/v1] row.  Optional lifetimes that never happened
    before the stop are encoded as [-1] (the schema carries no nulls);
    the trajectory is decimated to at most 48 points. *)

val pp_result : Format.formatter -> result -> unit
