(** One persistent crossbar shard of the serve fleet.

    A shard is a {!Plim_fault.Faulty} crossbar plus a
    {!Plim_fault.Remap} spare-line table that both live for the whole
    service lifetime: wear, stuck cells and retired lines accumulate
    across every execution routed here.  Shards start [Active] or
    [Spare]; when a shard's spare-line pool runs dry mid-execution the
    fleet retires it and re-runs the request on an activated spare
    shard ({!Server}). *)

module Program = Plim_isa.Program
module Exec = Plim_fault.Exec

type status = Spare | Active | Retired

type t

val create :
  ?endurance:int ->
  ?geometry:Plim_geometry.grid ->
  ?spec:Plim_fault.Fault_model.spec ->
  ?status:status ->
  id:int ->
  lines:int ->
  spares:int ->
  unit ->
  t
(** [create ~id ~lines ~spares ()] is a fresh shard of [lines] logical
    lines backed by [lines + spares] physical cells.  The fault spec's
    seed should already be per-shard derived (the fleet uses
    [Splitmix.derive seed id]); [status] defaults to [Active].
    [geometry] declares the crossbar's physical [rows x cols] bound —
    the fleet reports request latency in row-parallel groups when set.
    @raise Invalid_argument on non-positive [lines], negative [spares],
    or a geometry whose area is below [lines]. *)

val id : t -> int
val lines : t -> int

val geometry : t -> Plim_geometry.grid option
(** The declared crossbar geometry, if any. *)

val status : t -> status
val set_status : t -> status -> unit
val status_name : status -> string

val execute :
  verify:bool -> t -> Program.t -> inputs:(string * bool) list ->
  Exec.outcome * Exec.stats
(** One write-verified execution on the shard's persistent crossbar;
    bumps the shard's execution counter and accumulates the stats.
    @raise Invalid_argument when the program needs more than [lines]
    cells. *)

val executions : t -> int
val stats : t -> Exec.stats

val wear_counts : t -> int array
(** Per-physical-cell cumulative write counts (copy), spares included. *)

val total_writes : t -> int

val spares_left : t -> int
(** Spare {e lines} still available to {!Plim_fault.Remap.retire}. *)

val stuck_cells : t -> int
(** Currently stuck physical cells (injected + worn out). *)
