module Mig = Plim_mig.Mig
module Program = Plim_isa.Program
module Pipeline = Plim_core.Pipeline
module Fault_model = Plim_fault.Fault_model
module Exec = Plim_fault.Exec
module Controller = Plim_machine.Plim_controller
module Wear = Plim_telemetry.Wear
module Histogram = Plim_telemetry.Histogram
module Splitmix = Plim_util.Splitmix
module Metrics = Plim_obs.Metrics

type config = {
  pipeline : Pipeline.config;
  shards : int;
  spare_shards : int;
  lines : int;
  cell_spares : int;
  verify : bool;
  fault_spec : Fault_model.spec;
  endurance : int option;
  check : bool;
  seed : int;
  geometry : Plim_geometry.grid option;
}

let default_config =
  { pipeline = Pipeline.endurance_full;
    shards = 4;
    spare_shards = 1;
    lines = 0;
    cell_spares = 8;
    verify = true;
    fault_spec = Fault_model.none;
    endurance = None;
    check = true;
    seed = 1;
    geometry = None }

type response =
  | Compiled of { digest : string; cached : bool }
  | Executed of {
      digest : string;
      shard : int;
      outputs : (string * bool) list;
      correct : bool option;
      cycles : int;
    }
  | Rejected of { digest : string; reason : string }

type summary = {
  requests : int;
  compiles : int;
  executes : int;
  cache_hits : int;
  cache_misses : int;
  rejected : int;
  incorrect : int;
  re_runs : int;
  retired_shards : int;
  spare_activations : int;
  total_cycles : int;
  total_groups : int;
  exec_stats : Exec.stats;
}

type t = {
  cfg : config;
  cache : Cache.t;
  mutable fleet : Shard.t array;  (* [||] until the first execution batch *)
  latency : Histogram.t;
  group_latency : Histogram.t;
  (* digest -> row-parallel group count of the cached program; the
     schedule is a pure function of (program, grid), so one computation
     serves every execution of the digest *)
  groups_memo : (string, int) Hashtbl.t;
  mutable requests : int;
  mutable compiles : int;
  mutable executes : int;
  mutable rejected : int;
  mutable incorrect : int;
  mutable re_runs : int;
  mutable retired_shards : int;
  mutable spare_activations : int;
  mutable total_cycles : int;
  mutable total_groups : int;
}

let m_requests = Metrics.counter "serve.requests"
let m_rejected = Metrics.counter "serve.rejected"
let m_incorrect = Metrics.counter "serve.incorrect"
let m_retired = Metrics.counter "serve.retired_shards"
let m_reruns = Metrics.counter "serve.reruns"
let g_fleet_writes = Metrics.gauge "serve.fleet_writes"

let create cfg =
  if cfg.shards < 1 then invalid_arg "Server.create: need at least one shard";
  if cfg.spare_shards < 0 then
    invalid_arg "Server.create: negative spare shard count";
  if cfg.lines < 0 then invalid_arg "Server.create: negative line count";
  if cfg.cell_spares < 0 then
    invalid_arg "Server.create: negative cell spare count";
  { cfg;
    cache = Cache.create ();
    fleet = [||];
    latency = Histogram.create ();
    group_latency = Histogram.create ();
    groups_memo = Hashtbl.create 16;
    requests = 0;
    compiles = 0;
    executes = 0;
    rejected = 0;
    incorrect = 0;
    re_runs = 0;
    retired_shards = 0;
    spare_activations = 0;
    total_cycles = 0;
    total_groups = 0 }

let config t = t.cfg

(* Static write footprint of one execution — the placement cost model:
   one RMW write per instruction.  Scrub and PI deposits are load
   pulses, which the wear counters exclude, and verify traffic is
   fault-dependent; both are excluded so that on a fault-free shard the
   footprint equals the wear delta exactly and placement is independent
   of where the batch boundaries fall. *)
let footprint (p : Program.t) = Program.length p

let fleet_total_writes t =
  Array.fold_left (fun acc s -> acc + Shard.total_writes s) 0 t.fleet

(* Retire a shard and keep the active population stable by waking the
   lowest-id spare, if one remains. *)
let retire_shard t shard =
  if Shard.status shard = Shard.Active then begin
    Shard.set_status shard Shard.Retired;
    t.retired_shards <- t.retired_shards + 1;
    Metrics.incr m_retired;
    let spare =
      Array.to_seq t.fleet
      |> Seq.filter (fun s -> Shard.status s = Shard.Spare)
      |> Seq.uncons
    in
    match spare with
    | Some (s, _) ->
      Shard.set_status s Shard.Active;
      t.spare_activations <- t.spare_activations + 1
    | None -> ()
  end

let force_retire t id =
  if id < 0 || id >= Array.length t.fleet then false
  else
    let s = t.fleet.(id) in
    if Shard.status s <> Shard.Active then false
    else begin
      retire_shard t s;
      true
    end

let materialize_fleet t =
  if Array.length t.fleet = 0 then begin
    let lines =
      if t.cfg.lines > 0 then t.cfg.lines
      else
        List.fold_left
          (fun acc (_, (e : Cache.entry)) ->
            max acc (Program.num_cells e.Cache.result.Pipeline.program))
          1 (Cache.entries t.cache)
    in
    t.fleet <-
      Array.init (t.cfg.shards + t.cfg.spare_shards) (fun id ->
        let spec =
          { t.cfg.fault_spec with
            Fault_model.seed = Splitmix.derive t.cfg.fault_spec.Fault_model.seed id }
        in
        let status = if id < t.cfg.shards then Shard.Active else Shard.Spare in
        Shard.create ?endurance:t.cfg.endurance ?geometry:t.cfg.geometry ~spec
          ~status ~id ~lines ~spares:t.cfg.cell_spares ())
  end

type exec_job = {
  index : int;                  (* position within the batch *)
  digest : string;
  entry : Cache.entry;
  inputs : (string * bool) list;
}

(* Reference outputs on an ideal (fault-free, unlimited) machine — the
   correctness oracle for [check].  Pure: allocates its own crossbar. *)
let reference_outputs entry inputs =
  let outputs, _, _ =
    Controller.run entry.Cache.result.Pipeline.program ~inputs
  in
  outputs

let observe_latency t cycles =
  Histogram.observe t.latency cycles;
  t.total_cycles <- t.total_cycles + cycles

(* Row-parallel group count of the digest's program under the configured
   geometry; memoized per digest (the schedule is static).  A cached
   program always fits: execute requests are bounded by the shard line
   count, which {!Shard.create} bounds by the grid area. *)
let groups_of t digest (p : Program.t) =
  match t.cfg.geometry with
  | None -> None
  | Some g -> (
    match Hashtbl.find_opt t.groups_memo digest with
    | Some n -> Some n
    | None -> (
      match Controller.static_groups ~geometry:g p with
      | Ok n ->
        Hashtbl.add t.groups_memo digest n;
        Some n
      | Error msg -> invalid_arg ("Server: " ^ msg)))

let observe_groups t digest p =
  match groups_of t digest p with
  | None -> ()
  | Some n ->
    Histogram.observe t.group_latency n;
    t.total_groups <- t.total_groups + n

let run ?pool ?(batch = 32) t requests =
  if batch <= 0 then invalid_arg "Server.run: batch size must be positive";
  let pmap ~f xs =
    match pool with Some p -> Plim_par.map p ~f xs | None -> List.map f xs
  in
  let writes_before = if Array.length t.fleet = 0 then 0 else fleet_total_writes t in
  let rec batches acc = function
    | [] -> List.rev acc
    | xs ->
      let rec take n ys zs =
        match (n, zs) with
        | 0, _ | _, [] -> (List.rev ys, zs)
        | n, z :: zs -> take (n - 1) (z :: ys) zs
      in
      let b, rest = take batch [] xs in
      batches (b :: acc) rest
  in
  let serve_batch reqs =
    let reqs = Array.of_list reqs in
    let n = Array.length reqs in
    t.requests <- t.requests + n;
    Metrics.incr ~by:n m_requests;
    let responses = Array.make n None in
    (* Phase 1: classify. Compile hits answer immediately; distinct
       missing digests become compile jobs; executions wait for phase 2
       so batch-compiled programs are visible to them. *)
    let miss_order = ref [] and miss_seen = Hashtbl.create 8 in
    let pending_compiles = ref [] and pending_execs = ref [] in
    Array.iteri
      (fun i req ->
        match req with
        | Workload.Compile { label; graph } ->
          t.compiles <- t.compiles + 1;
          let digest = Cache.digest_of graph in
          (match Cache.find t.cache digest with
          | Some _ ->
            Cache.record_hit t.cache;
            observe_latency t 1;
            responses.(i) <- Some (Compiled { digest; cached = true })
          | None when Hashtbl.mem miss_seen digest ->
            (* same digest already compiling earlier in this batch: the
               in-flight compile serves this request too, so the counters
               and responses are independent of the batch size *)
            Cache.record_hit t.cache;
            observe_latency t 1;
            responses.(i) <- Some (Compiled { digest; cached = true })
          | None ->
            Cache.record_miss t.cache;
            Hashtbl.add miss_seen digest ();
            miss_order := (digest, label, graph) :: !miss_order;
            pending_compiles := (i, digest, graph) :: !pending_compiles)
        | Workload.Execute { digest; inputs } ->
          pending_execs := (i, digest, inputs) :: !pending_execs)
      reqs;
    (* Phase 2: compile the distinct misses in parallel; merge into the
       cache in submission order (first writer wins, so the merge order
       is fixed by the request stream, not by completion order). *)
    let misses = List.rev !miss_order in
    let compiled =
      pmap misses ~f:(fun (digest, label, graph) ->
        let result = Pipeline.compile t.cfg.pipeline graph in
        (digest, { Cache.label; source = graph; result }))
    in
    List.iter (fun (digest, entry) -> Cache.add t.cache ~digest entry) compiled;
    List.iter
      (fun (i, digest, graph) ->
        observe_latency t (Mig.size graph);
        responses.(i) <- Some (Compiled { digest; cached = false }))
      (List.rev !pending_compiles);
    (* Phase 2b: resolve executions against the updated cache. *)
    let jobs =
      List.rev !pending_execs
      |> List.filter_map (fun (i, digest, inputs) ->
           match Cache.hit t.cache digest with
           | Some entry -> Some { index = i; digest; entry; inputs }
           | None ->
             t.rejected <- t.rejected + 1;
             Metrics.incr m_rejected;
             responses.(i) <-
               Some (Rejected { digest; reason = "unknown program digest" });
             None)
    in
    if jobs <> [] then materialize_fleet t;
    let shard_lines =
      if Array.length t.fleet = 0 then 0 else Shard.lines t.fleet.(0)
    in
    let jobs =
      List.filter
        (fun j ->
          let cells = Program.num_cells j.entry.Cache.result.Pipeline.program in
          if cells > shard_lines then begin
            t.rejected <- t.rejected + 1;
            Metrics.incr m_rejected;
            responses.(j.index) <-
              Some
                (Rejected
                   { digest = j.digest;
                     reason =
                       Printf.sprintf
                         "program needs %d lines, shards have %d" cells
                         shard_lines });
            false
          end
          else true)
        jobs
    in
    (* Phase 3: sequential placement onto the least-worn eligible active
       shard.  Wear is read once at batch start (through Wear.skew_of)
       and advanced by the static footprint of work placed so far, so the
       placement depends only on pre-batch fleet state and batch order. *)
    let fleet_n = Array.length t.fleet in
    let wear0 =
      Array.map (fun s -> (Wear.skew_of (Shard.wear_counts s)).Wear.total) t.fleet
    in
    let extra = Array.make fleet_n 0 in
    let queues = Array.make fleet_n [] in
    List.iter
      (fun j ->
        let best = ref (-1) in
        Array.iter
          (fun s ->
            if Shard.status s = Shard.Active then
              let i = Shard.id s in
              if
                !best < 0
                || wear0.(i) + extra.(i) < wear0.(!best) + extra.(!best)
              then best := i)
          t.fleet;
        if !best < 0 then begin
          t.rejected <- t.rejected + 1;
          Metrics.incr m_rejected;
          responses.(j.index) <-
            Some (Rejected { digest = j.digest; reason = "no active shards" })
        end
        else begin
          extra.(!best) <-
            extra.(!best) + footprint j.entry.Cache.result.Pipeline.program;
          queues.(!best) <- j :: queues.(!best)
        end)
      jobs;
    (* Phase 4: one parallel task per shard with work; each task owns its
       shard's mutable state exclusively and runs its queue in batch
       order.  The fault-free reference run is pure, so it rides along. *)
    let loaded =
      Array.to_list t.fleet
      |> List.filter (fun s -> queues.(Shard.id s) <> [])
    in
    let shard_results =
      pmap loaded ~f:(fun s ->
        List.rev queues.(Shard.id s)
        |> List.map (fun j ->
             let p = j.entry.Cache.result.Pipeline.program in
             let outcome, stats = Shard.execute ~verify:t.cfg.verify s p
                 ~inputs:j.inputs
             in
             let ideal =
               if t.cfg.check then Some (reference_outputs j.entry j.inputs)
               else None
             in
             (j, Shard.id s, outcome, stats, ideal)))
    in
    (* Phase 5: sequential merge in shard-id order (phase 4 preserves the
       submission order of [loaded], which is ascending id).  A dry spare
       pool retires the shard and replays the abandoned execution on the
       least-worn surviving active shard. *)
    let finalize j shard_id outputs ideal cycles =
      let correct =
        match ideal with
        | None -> None
        | Some ref_outputs ->
          let ok = outputs = ref_outputs in
          if not ok then begin
            t.incorrect <- t.incorrect + 1;
            Metrics.incr m_incorrect
          end;
          Some ok
      in
      t.executes <- t.executes + 1;
      observe_latency t cycles;
      observe_groups t j.digest j.entry.Cache.result.Pipeline.program;
      responses.(j.index) <-
        Some (Executed { digest = j.digest; shard = shard_id; outputs; correct;
                         cycles })
    in
    List.iter
      (fun results ->
        List.iter
          (fun (j, shard_id, outcome, stats, ideal) ->
            let p = j.entry.Cache.result.Pipeline.program in
            let cycles =
              Controller.static_cycles p + stats.Exec.verify_reads
              + stats.Exec.retries
            in
            match outcome with
            | Exec.Completed outputs -> finalize j shard_id outputs ideal cycles
            | Exec.Out_of_spares _ ->
              retire_shard t t.fleet.(shard_id);
              (* replay, chasing surviving shards until one completes *)
              let rec replay cycles =
                let best = ref (-1) and best_w = ref max_int in
                Array.iter
                  (fun s ->
                    if Shard.status s = Shard.Active then begin
                      let w = Shard.total_writes s in
                      if w < !best_w then begin
                        best := Shard.id s;
                        best_w := w
                      end
                    end)
                  t.fleet;
                if !best < 0 then begin
                  t.rejected <- t.rejected + 1;
                  Metrics.incr m_rejected;
                  responses.(j.index) <-
                    Some
                      (Rejected
                         { digest = j.digest; reason = "fleet out of shards" })
                end
                else begin
                  t.re_runs <- t.re_runs + 1;
                  Metrics.incr m_reruns;
                  let s = t.fleet.(!best) in
                  let outcome, stats =
                    Shard.execute ~verify:t.cfg.verify s p ~inputs:j.inputs
                  in
                  let cycles =
                    cycles + Controller.static_cycles p
                    + stats.Exec.verify_reads + stats.Exec.retries
                  in
                  match outcome with
                  | Exec.Completed outputs ->
                    finalize j !best outputs ideal cycles
                  | Exec.Out_of_spares _ ->
                    retire_shard t s;
                    replay cycles
                end
              in
              replay cycles)
          results)
      shard_results;
    Array.to_list responses
    |> List.map (function
         | Some r -> r
         | None -> Rejected { digest = "-"; reason = "internal: unanswered" })
  in
  let out = List.concat_map serve_batch (batches [] requests) in
  Metrics.add_gauge g_fleet_writes
    (float_of_int (fleet_total_writes t - writes_before));
  out

let summary t =
  { requests = t.requests;
    compiles = t.compiles;
    executes = t.executes;
    cache_hits = Cache.hits t.cache;
    cache_misses = Cache.misses t.cache;
    rejected = t.rejected;
    incorrect = t.incorrect;
    re_runs = t.re_runs;
    retired_shards = t.retired_shards;
    spare_activations = t.spare_activations;
    total_cycles = t.total_cycles;
    total_groups = t.total_groups;
    exec_stats =
      Array.fold_left
        (fun acc s -> Exec.add_stats acc (Shard.stats s))
        Exec.zero_stats t.fleet }

let latency t = Histogram.copy t.latency

let group_latency t = Histogram.copy t.group_latency

let fleet_skew t =
  Array.to_list t.fleet
  |> List.filter (fun s -> Shard.status s <> Shard.Spare)
  |> List.map Shard.total_writes
  |> Array.of_list
  |> Wear.skew_of

let shard_statuses t =
  Array.to_list t.fleet
  |> List.map (fun s -> (Shard.id s, Shard.status s, Shard.total_writes s))

let shard_wear t =
  Array.to_list t.fleet
  |> List.map (fun s -> (Shard.id s, Shard.status s, Shard.wear_counts s))

let fleet_heatmap_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema\":\"plim-serve-fleet/v1\",\"shards\":[";
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Wear.heatmap_json
           ~label:
             (Printf.sprintf "shard%d:%s" (Shard.id s)
                (Shard.status_name (Shard.status s)))
           (Shard.wear_counts s)))
    t.fleet;
  Buffer.add_string b "]}";
  Buffer.contents b

let row_json t ~label ~wall_s =
  let s = summary t in
  let lat = t.latency in
  let skew = fleet_skew t in
  let active, retired, spare =
    Array.fold_left
      (fun (a, r, sp) sh ->
        match Shard.status sh with
        | Shard.Active -> (a + 1, r, sp)
        | Shard.Retired -> (a, r + 1, sp)
        | Shard.Spare -> (a, r, sp + 1))
      (0, 0, 0) t.fleet
  in
  let rps = if wall_s > 0.0 then float_of_int s.requests /. wall_s else 0.0 in
  let geometry_fields =
    match t.cfg.geometry with
    | None -> "\"geometry\":null"
    | Some g ->
      let gl = t.group_latency in
      Printf.sprintf
        "\"geometry\":%s,\"groups\":{\"p50\":%d,\"p90\":%d,\"p99\":%d,\
         \"max\":%d,\"total\":%d}"
        (Plim_util.Jsonx.quote (Plim_geometry.to_string g))
        (Histogram.p50 gl) (Histogram.p90 gl) (Histogram.p99 gl)
        (Histogram.max_value gl) s.total_groups
  in
  Printf.sprintf
    "{\"schema\":\"plim-serve/v1\",\"label\":%s,\"requests\":%d,\"compiles\":%d,\
     \"executes\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"rejected\":%d,\
     \"incorrect\":%d,\"re_runs\":%d,\"retired_shards\":%d,\
     \"spare_activations\":%d,\"total_cycles\":%d,\
     \"latency\":{\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d},%s,\
     \"verify\":{\"reads\":%d,\"detections\":%d,\"remaps\":%d,\"retries\":%d},\
     \"fleet\":{\"active\":%d,\"retired\":%d,\"spare\":%d,\"gini\":%.6g,\
     \"max_mean\":%.6g,\"stdev\":%.6g,\"total_writes\":%d},\
     \"wall_s\":%.6g,\"requests_per_sec\":%.6g}"
    (Plim_util.Jsonx.quote label)
    s.requests s.compiles s.executes s.cache_hits s.cache_misses
    s.rejected s.incorrect s.re_runs s.retired_shards s.spare_activations
    s.total_cycles (Histogram.p50 lat) (Histogram.p90 lat) (Histogram.p99 lat)
    (Histogram.max_value lat) geometry_fields s.exec_stats.Exec.verify_reads
    s.exec_stats.Exec.detections s.exec_stats.Exec.remaps
    s.exec_stats.Exec.retries active retired spare skew.Wear.gini
    skew.Wear.max_mean skew.Wear.stdev skew.Wear.total wall_s rps
