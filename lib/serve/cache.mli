(** Compile cache keyed by MIG digest.

    The service compiles each distinct MIG once: requests carry (or
    imply) the FNV-1a digest of the graph's canonical [.mig] text —
    the same digest {!Plim_check.Corpus} names its regression files
    with — and repeated digests are served from the cache.  Hit/miss
    counters make cache effectiveness observable per run. *)

module Mig = Plim_mig.Mig
module Pipeline = Plim_core.Pipeline

type entry = {
  label : string;            (** client-supplied program name *)
  source : Mig.t;
  result : Pipeline.result;  (** compiled program + write summary *)
}

type t

val digest_of : Mig.t -> string
(** FNV-1a 64-bit digest (hex) of the canonical [.mig] serialisation —
    what "the same MIG" means to the cache ({!Plim_util.Fnv}). *)

val create : unit -> t

val find : t -> string -> entry option
(** Silent lookup: no counter movement.  The scheduler uses it to
    classify a batch before compiling. *)

val hit : t -> string -> entry option
(** Counted lookup: bumps the hit counter on [Some], the miss counter
    on [None]. *)

val record_hit : t -> unit
val record_miss : t -> unit
(** Manual counter movement, for lookups the scheduler resolves itself.
    A compile request whose digest is already being compiled earlier in
    the same batch is served by that in-flight compile: it counts as a
    hit even though {!find} still returns [None], keeping the counters
    independent of the batch size. *)

val add : t -> digest:string -> entry -> unit
(** Insert (first writer wins: re-adding an existing digest is a no-op,
    so merge order cannot change an entry). *)

val hits : t -> int
val misses : t -> int
val size : t -> int

val entries : t -> (string * entry) list
(** All entries sorted by digest — a deterministic iteration order for
    fleet sizing and reporting. *)
