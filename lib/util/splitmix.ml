type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 from Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators", OOPSLA'14. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection sampling over the top 62 bits (the conversion to OCaml's
     63-bit int stays non-negative).  A plain [x mod bound] overweights the
     residues below [2^62 mod bound]; draws at or above the largest multiple
     of [bound] are redrawn instead, so every residue is equally likely.
     Accepted draws produce the same value the pre-rejection implementation
     did, which keeps every seed-pinned stream (corpus entries, benchmark
     seeds) byte-stable: only the astronomically rare rejected draw
     (probability < bound / 2^62) advances the state one extra step. *)
  let tail = ((max_int mod bound) + 1) mod bound (* = 2^62 mod bound *) in
  let threshold = max_int - tail in
  let rec draw () =
    let x = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
    if x <= threshold then x mod bound else draw ()
  in
  draw ()

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let bits t ~width = Array.init width (fun _ -> bool t)

(* Derive the seed of an independent child stream: one splitmix64 step over
   the root seed offset by the (index+1)-th multiple of the golden-gamma
   increment.  Sibling indices land on well-separated states, so per-task
   streams never share a prefix with each other or with the root stream;
   the result depends only on (root, index), never on draw order. *)
let derive root i =
  if i < 0 then invalid_arg "Splitmix.derive: index must be non-negative";
  let t =
    { state =
        Int64.add (Int64.of_int root)
          (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L) }
  in
  Int64.to_int (Int64.shift_right_logical (next64 t) 2)
