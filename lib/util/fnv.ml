(* FNV-1a 64-bit: offset basis 0xcbf29ce484222325, prime 0x100000001b3. *)

let digest_int64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let digest_string s = Printf.sprintf "%016Lx" (digest_int64 s)
