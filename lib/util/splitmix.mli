(** Deterministic splitmix64 pseudo-random number generator.

    All randomness in the project (random control benchmarks, verification
    vectors, property-test corpora) flows through this generator so that
    every experiment is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive.
    Uniformity is exact (rejection sampling, no modulo bias); a rejected
    draw advances the state one extra step, with probability below
    [bound / 2^62] per call. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bits : t -> width:int -> bool array
(** [bits t ~width] is a uniform bit vector, LSB first. *)

val derive : int -> int -> int
(** [derive root i] is the seed of the [i]-th child stream of [root]: a
    pure function of [(root, i)] with well-separated internal states, so
    parallel tasks seeded per-index draw independently of scheduling,
    completion order and each other.  [i] must be non-negative. *)
