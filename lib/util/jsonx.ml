(* The one JSON string escaper of the repo.  Every hand-rolled JSON
   emitter (trace sinks, lint reports, bench rows, serve/horizon rows,
   wear heatmaps) must quote interpolated strings through here: a
   benchmark or strategy label containing '"' or '\' otherwise corrupts
   the emitted document and breaks every downstream reader, including
   the bench/compare.exe regression gate.

   Bytes >= 0x20 other than '"' and '\' pass through verbatim: labels
   are treated as UTF-8 and JSON does not require escaping non-ASCII.
   Control characters use the short escapes where JSON has them and
   \u00XX otherwise, which is exactly the input language of
   Plim_telemetry.Json — escape/parse round-trips every byte string. *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  escape_into b s;
  Buffer.contents b

let quote s =
  let b = Buffer.create (String.length s + 10) in
  Buffer.add_char b '"';
  escape_into b s;
  Buffer.add_char b '"';
  Buffer.contents b
