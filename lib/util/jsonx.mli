(** JSON string escaping shared by every hand-rolled JSON emitter.

    The repo writes its machine-readable artefacts (bench rows, trace
    events, lint reports, wear heatmaps, serve/horizon rows) with
    [Printf] rather than a JSON library; any string interpolated into
    those documents must be escaped through this module or a label
    containing ['"'] or ['\\'] corrupts the output.

    The escape language matches what {!Plim_telemetry.Json} accepts:
    short escapes for ["\"\\\n\t\r\b\012"], [\u00XX] for the remaining
    control bytes, everything else verbatim (UTF-8 passes through).
    [parse (quote s) = Str s] for every byte string [s]. *)

val escape_into : Buffer.t -> string -> unit
(** Append the escaped form of the string — without quotes — to the
    buffer. *)

val escape : string -> string
(** The escaped form, without surrounding quotes. *)

val quote : string -> string
(** The escaped form wrapped in double quotes: a complete JSON string
    literal. *)
