(** FNV-1a 64-bit content digests.

    One shared implementation of the digest that keys content-addressed
    storage across the repo: the fuzzer's counterexample corpus
    ({!Plim_check.Corpus}) names files by it and the serve layer's
    compile cache ({!Plim_serve.Cache}) keys compiled programs by it, so
    both necessarily agree on what "the same MIG" means.

    FNV-1a is not cryptographic; it is a fast, stable, dependency-free
    64-bit hash with good dispersion over short ASCII texts — exactly
    the MIG serialisations it is fed. *)

val digest_int64 : string -> int64
(** Raw FNV-1a 64-bit hash of the byte string. *)

val digest_string : string -> string
(** The hash as 16 lowercase hex characters — the canonical textual
    digest used in corpus file names and cache keys. *)
