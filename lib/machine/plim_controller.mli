(** The PLiM controller: a wrapper FSM around the RRAM array that fetches
    RM3 instructions and executes them using the array's read/write
    peripheral circuitry (DATE'16; paper Section III-A2).

    When the control signal is off the array behaves as a plain RAM; when
    on, the controller steps a program counter through the instruction
    stream, reads operands A and B (from constants or cells), and performs
    the RM3 during the write cycle of the destination cell.

    The model charges one cycle per operand read from memory and one cycle
    for the destination read-modify-write, matching the
    fetch/decode/execute description of the original PLiM paper. *)

module Crossbar = Plim_rram.Crossbar
module Program = Plim_isa.Program

type run_stats = {
  instructions : int;   (** instructions executed *)
  cycles : int;         (** memory-access cycles consumed *)
}

type trace_entry = {
  pc : int;
  instr : Plim_isa.Instruction.t;
  a_value : bool;
  b_value : bool;
  z_before : bool;
  z_after : bool;
}

val static_cycles : Program.t -> int
(** The memory-access cycles {!run} charges for one execution — one per
    [Cell] operand read plus one per destination read-modify-write — as a
    pure function of the instruction stream.  This is the deterministic
    service-cost model behind the serve layer's latency histograms:
    [static_cycles p] equals the [cycles] field {!run} reports. *)

val run :
  ?endurance:int ->
  ?on_step:(trace_entry -> unit) ->
  Program.t ->
  inputs:(string * bool) list ->
  (string * bool) list * Crossbar.t * run_stats
(** [run p ~inputs] allocates a crossbar of [Program.num_cells p] cells,
    loads the primary inputs (uncounted initialisation writes), turns the
    controller on, executes the whole instruction stream and reads back
    the outputs.

    @raise Invalid_argument if [inputs] does not bind exactly the
    program's primary inputs.
    @raise Crossbar.Cell_failed if a cell hard-fails mid-run (only with
    [endurance]). *)

type grouped_stats = {
  g_instructions : int;  (** instructions executed *)
  g_groups : int;        (** latency in row-parallel groups *)
  g_cycles : int;        (** flat memory-access cycles, for comparison:
                             equals {!static_cycles} *)
  g_cross_row : int;     (** instructions whose cells span rows (forced
                             singleton groups) *)
  g_max_group : int;     (** widest group fired *)
}

val static_groups :
  geometry:Plim_geometry.grid -> Program.t -> (int, string) result
(** Latency of one execution under the geometry backend, in row-parallel
    instruction groups — a pure function of the program and grid.
    Always [<= Program.length p]; equal to it when [cols = 1].  [Error]
    if the program does not fit the grid ({!Plim_geometry.schedule}). *)

val run_grouped :
  ?endurance:int ->
  geometry:Plim_geometry.grid ->
  Program.t ->
  inputs:(string * bool) list ->
  ((string * bool) list * Crossbar.t * grouped_stats, string) result
(** Execute the program through its row-parallel schedule
    ({!Plim_geometry.schedule}): each group reads all member operands
    before any member's RM3 fires, modelling simultaneous write drivers
    in one crossbar row.  Group members are mutually hazard-free by
    construction, so outputs (and per-cell wear) are identical to
    {!run}; only the latency metric changes.  [Error] if the program
    does not fit the grid.

    @raise Invalid_argument if [inputs] does not bind exactly the
    program's primary inputs. *)

val run_vector :
  ?endurance:int -> Program.t -> bool array -> bool array
(** Positional convenience wrapper: inputs/outputs in [pi_cells]/[po_cells]
    declaration order. *)

val run_self_hosted :
  ?endurance:int ->
  Program.t ->
  inputs:(string * bool) list ->
  (string * bool) list * Crossbar.t * run_stats
(** Faithful to the PLiM architecture: "the controller reads the
    instructions from the memory array".  The crossbar is sized to hold
    both the working devices and the binary-encoded program
    ({!Plim_isa.Encoding}); instructions are deposited as provisioning
    loads, and each fetch reads its bit cells through the array's read
    peripheral (counted in [cycles]).  Results are identical to {!run};
    only the cycle count grows by the fetch traffic. *)
