(** Empirical endurance campaigns: execute a compiled program repeatedly
    on an endurance-limited crossbar until the first device wears out.

    This closes the loop on the paper's motivation — the static
    {!Plim_stats.Lifetime} estimate (endurance / max writes per
    execution) is validated against an actual simulated wear-out, and
    architectural wear levelling (Start-Gap) can be layered between
    executions for comparison. *)

module Program = Plim_isa.Program

type wear_sample = {
  at_execution : int;             (** executions completed at the sample *)
  at_write : int;                 (** physical writes observed at the sample *)
  skew : Plim_telemetry.Wear.skew;(** wear-distribution snapshot *)
}
(** One point of a wear-trajectory curve.  Samples are taken at fixed
    execution boundaries through a decimating {!Plim_telemetry.Series},
    so arbitrarily long campaigns yield bounded curves whose contents
    are a pure function of the execution sequence — byte-identical
    between [-j 1] and [-j N] runs. *)

val sample_json : wear_sample -> string
(** One JSON object [{at_execution, at_write, skew}]. *)

val trajectory_json : wear_sample list -> string
(** JSON array of {!sample_json} objects — the time-series column of
    bench results and fault reports. *)

val pp_trajectory : Format.formatter -> wear_sample list -> unit
(** Human-readable skew time series, one sample per line. *)

type outcome = {
  executions_completed : int;
  failed : bool;              (** false if [max_executions] was reached *)
  write_total : int;          (** physical writes performed overall *)
  trajectory : wear_sample list;
      (** chronological wear-skew curve; first point at execution 0,
          last point at campaign end *)
  group_latency : int option;
      (** latency of one execution in row-parallel instruction groups
          under the campaign's crossbar geometry
          ({!Plim_controller.static_groups}); [None] without a
          [?geometry] argument *)
}

val run_until_failure :
  ?seed:int ->
  ?max_executions:int ->
  ?sample_every:int ->
  ?geometry:Plim_geometry.grid ->
  endurance:int ->
  Program.t ->
  outcome
(** Repeated executions with fresh random inputs per run on one shared
    crossbar whose cells hard-fail after [endurance] writes.  Stops at the
    first failure or after [max_executions] (default 100_000).
    [sample_every] sets the wear-sampling period in executions (default
    [max_executions / 64], at least 1).
    @raise Invalid_argument when [sample_every < 1]. *)

val run_with_start_gap :
  ?seed:int ->
  ?max_executions:int ->
  ?sample_every:int ->
  ?psi:int ->
  endurance:int ->
  Program.t ->
  outcome
(** Same campaign with a Start-Gap remapping layer rotating the
    program's device addresses between executions: logical cell [l] of
    execution [k] lands on a rotating physical line, so hot logical cells
    spread across the array over time. *)

val run_with_wolfram :
  ?seed:int ->
  ?max_executions:int ->
  ?sample_every:int ->
  ?period:int ->
  ?wolfram_seed:int ->
  endurance:int ->
  Program.t ->
  outcome
(** Same campaign behind a {!Plim_rram.Wolfram} programmable remap: a
    seeded permutation maps logical to physical addresses and is re-keyed
    every [period] writes; each re-key's migration copies are charged to
    the crossbar as real writes. *)

val run_with_start_gap_wolfram :
  ?seed:int ->
  ?max_executions:int ->
  ?sample_every:int ->
  ?psi:int ->
  ?period:int ->
  ?wolfram_seed:int ->
  endurance:int ->
  Program.t ->
  outcome
(** The composed WoLFRaM-under-Start-Gap stack over [n + 1] physical
    lines: logical → Wolfram permutation → Start-Gap rotation → physical.
    Gap copies and re-key migrations both land on the crossbar through
    the current composed map, so the wear ledger stays exact. *)

(** {1 Graceful degradation}

    Where {!run_until_failure} measures "time to first crash", the
    degraded campaign runs the program behind the {!Plim_fault} layer:
    injected stuck-at faults and endurance wear-out become detectable
    stuck cells, write-verify spots them, and spare-line remapping keeps
    the program running.  The result is a capacity/correctness
    degradation profile instead of a single failure point. *)

type degradation_point = {
  at_execution : int;    (** executions completed when the point was taken *)
  capacity : float;      (** surviving-capacity fraction, in [0, 1] *)
  spares_left : int;
}

type ended =
  | Spares_exhausted of int  (** logical cell whose repair found no spare *)
  | Max_executions

type degradation = {
  executions : int;          (** executions fully completed *)
  correct : int;             (** executions whose outputs matched the oracle *)
  incorrect : int;
  injected : int;            (** permanent faults present at start *)
  worn_out : int;            (** cells that wore out during the campaign *)
  detections : int;          (** permanent-fault detections by write-verify *)
  remaps : int;              (** successful spare-line remaps *)
  verify_reads : int;        (** read-backs performed (the verify overhead) *)
  retries : int;             (** in-place rewrite attempts *)
  transient_failures : int;  (** write pulses that failed to switch *)
  final_capacity : float;
  spares_remaining : int;
  curve : degradation_point list;  (** chronological capacity curve *)
  degraded_write_total : int;      (** physical writes, including repair traffic *)
  ended : ended;
  trajectory : wear_sample list;   (** chronological wear-skew samples;
                                       counted physical writes only, so
                                       absorbed writes to stuck cells do
                                       not inflate the curve *)
  final_wear : int array;          (** per-physical-cell write counts at
                                       campaign end — the heatmap grid *)
}

val run_degraded :
  ?seed:int ->
  ?max_executions:int ->
  ?sample_every:int ->
  ?endurance:int ->
  ?spares:int ->
  ?verify:bool ->
  ?fault_spec:Plim_fault.Fault_model.spec ->
  ?oracle:(bool array -> bool array) ->
  Program.t ->
  degradation
(** [run_degraded p] executes [p] repeatedly with fresh random inputs on
    one shared crossbar of [num_cells + spares] physical lines wrapped in
    the fault layer.  [max_executions] defaults to 100, [spares] to 0,
    [verify] to on, [fault_spec] to {!Plim_fault.Fault_model.none}; with
    [endurance] cells additionally wear out and hard-fail as stuck-at
    faults.  [oracle] maps an input vector (PI declaration order) to the
    expected outputs (PO order) — typically [Plim_mig.Mig.eval mig] — and
    feeds the [correct]/[incorrect] tally; without it both stay 0. *)

type sweep_cell = {
  rate : float;
  spares : int;
  outcome : degradation;
}

val sweep_degraded :
  ?pool:Plim_par.t ->
  ?seed:int ->
  ?max_executions:int ->
  ?endurance:int ->
  ?verify:bool ->
  ?oracle:(bool array -> bool array) ->
  fault_spec_of:(float -> Plim_fault.Fault_model.spec) ->
  rates:float list ->
  spare_budgets:int list ->
  Program.t ->
  sweep_cell list
(** One {!run_degraded} campaign per (rate, spares) grid cell, every cell
    on its own crossbar and fault layer.  [fault_spec_of rate] builds the
    injection spec of a row.  Cells are returned in grid order — [rates]
    outer, [spare_budgets] inner — regardless of [pool] width, so sweep
    reports are byte-identical at every [-j] level.  Without [pool] the
    grid runs sequentially. *)
