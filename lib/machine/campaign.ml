module Program = Plim_isa.Program
module I = Plim_isa.Instruction
module Crossbar = Plim_rram.Crossbar
module Start_gap = Plim_rram.Start_gap
module Wolfram = Plim_rram.Wolfram
module Splitmix = Plim_util.Splitmix
module Obs = Plim_obs.Obs
module Metrics = Plim_obs.Metrics
module Fault_model = Plim_fault.Fault_model
module Faulty = Plim_fault.Faulty
module Remap = Plim_fault.Remap
module Exec = Plim_fault.Exec
module Wear = Plim_telemetry.Wear
module Series = Plim_telemetry.Series

let m_campaigns = Metrics.counter "campaign.runs"
let m_executions = Metrics.counter "campaign.executions"

type wear_sample = {
  at_execution : int;
  at_write : int;
  skew : Wear.skew;
}

type outcome = {
  executions_completed : int;
  failed : bool;
  write_total : int;
  trajectory : wear_sample list;
  group_latency : int option;
}

(* Latency of one execution in row-parallel groups under the requested
   crossbar geometry; None without one.  A grid too small for the
   program is a configuration error, not a measurement. *)
let group_latency_of geometry p =
  match geometry with
  | None -> None
  | Some g -> (
    match Plim_geometry.schedule g p with
    | Ok sched -> Some (Plim_geometry.num_groups sched)
    | Error msg -> invalid_arg ("Campaign: " ^ msg))

(* Wear-trajectory sampling shared by the campaign flavours: a crossbar
   observer supplies the physical-write clock, and skew snapshots taken
   at fixed execution boundaries flow through a decimating series so the
   curve stays bounded on arbitrarily long campaigns.  Everything here is
   a pure function of the (deterministic) execution sequence — no clock,
   no extra randomness — so trajectories are [-j N]-stable. *)

let default_sample_every max_executions = max 1 (max_executions / 64)

type sampler = {
  sm_every : int;
  sm_writes : int ref;             (* physical-write clock *)
  sm_series : wear_sample Series.t;
  sm_counts : unit -> int array;
}

let make_sampler ~sample_every ~max_executions ~counts =
  let sm_every =
    match sample_every with
    | Some k ->
      if k < 1 then invalid_arg "Campaign: sample_every must be >= 1";
      k
    | None -> default_sample_every max_executions
  in
  { sm_every;
    sm_writes = ref 0;
    sm_series = Series.create ~policy:Series.Decimate ~capacity:128 ();
    sm_counts = counts }

let sampler_observer sm = Some (fun ~cell:_ ~writes:_ -> incr sm.sm_writes)

let take_sample sm at_execution =
  Series.offer sm.sm_series
    { at_execution; at_write = !(sm.sm_writes); skew = Wear.skew_of (sm.sm_counts ()) }

let sample_boundary sm completed =
  if completed mod sm.sm_every = 0 then take_sample sm completed

(* The retained curve plus a guaranteed final point (decimation may have
   dropped the last boundary sample). *)
let finish_trajectory sm completed =
  let final =
    { at_execution = completed;
      at_write = !(sm.sm_writes);
      skew = Wear.skew_of (sm.sm_counts ()) }
  in
  let pts = Series.to_list sm.sm_series in
  match Series.last sm.sm_series with
  | Some s when s.at_execution = completed -> pts
  | _ -> pts @ [ final ]

let sample_json s =
  Printf.sprintf "{\"at_execution\":%d,\"at_write\":%d,\"skew\":%s}" s.at_execution
    s.at_write (Wear.skew_json s.skew)

let trajectory_json samples = "[" ^ String.concat "," (List.map sample_json samples) ^ "]"

let pp_trajectory ppf samples =
  Format.fprintf ppf "  %10s %10s  %s@." "execution" "writes" "wear skew";
  List.iter
    (fun s ->
      Format.fprintf ppf "  %10d %10d  %a@." s.at_execution s.at_write Wear.pp_skew
        s.skew)
    samples

(* One execution with a logical->physical mapping sampled per access and a
   per-logical-write notification.  Output values are not collected: the
   campaign measures wear.  Raises [Crossbar.Cell_failed] when a device
   dies. *)
let execute_mapped (p : Program.t) xbar rng ~map ~on_write =
  Array.iter
    (fun (_, cell) -> Crossbar.load xbar (map cell) (Splitmix.bool rng))
    p.Program.pi_cells;
  Array.iter
    (fun (instr : I.t) ->
      let operand = function
        | I.Const v -> v
        | I.Cell c -> Crossbar.read xbar (map c)
      in
      let a = operand instr.I.a in
      let b = operand instr.I.b in
      Crossbar.rm3 xbar ~p:a ~q:b (map instr.I.z);
      on_write instr.I.z)
    p.Program.instrs

let total_writes xbar = Array.fold_left ( + ) 0 (Crossbar.write_counts xbar)

let campaign ?(seed = 0xCAFE) ?(max_executions = 100_000) ?sample_every ?geometry
    ~physical_cells ~map ~on_write ~endurance p =
  Obs.span "campaign" @@ fun () ->
  Metrics.incr m_campaigns;
  let group_latency = group_latency_of geometry p in
  let xbar = Crossbar.create ~endurance physical_cells in
  let sm =
    make_sampler ~sample_every ~max_executions ~counts:(fun () ->
        Crossbar.write_counts xbar)
  in
  Crossbar.set_observer xbar (sampler_observer sm);
  take_sample sm 0;
  let rng = Splitmix.create seed in
  let finish completed failed =
    Crossbar.set_observer xbar None;
    { executions_completed = completed;
      failed;
      write_total = total_writes xbar;
      trajectory = finish_trajectory sm completed;
      group_latency }
  in
  let rec go completed =
    if completed >= max_executions then finish completed false
    else
      match execute_mapped p xbar rng ~map:(map xbar) ~on_write:(on_write xbar) with
      | () ->
        Metrics.incr m_executions;
        let completed = completed + 1 in
        if completed < max_executions then sample_boundary sm completed;
        go completed
      | exception Crossbar.Cell_failed _ -> finish completed true
  in
  go 0

let run_until_failure ?seed ?max_executions ?sample_every ?geometry ~endurance p =
  campaign ?seed ?max_executions ?sample_every ?geometry
    ~physical_cells:p.Program.num_cells
    ~map:(fun _ cell -> cell)
    ~on_write:(fun _ _ -> ())
    ~endurance p

(* ------------------------------------------------------------------ *)
(* Graceful degradation: instead of dying at the first worn-out cell, the
   campaign runs behind the fault layer — write-verify detects stuck
   cells, the remapper retires them onto spares, and the run reports a
   capacity curve plus result correctness until the spare pool is dry. *)

type degradation_point = {
  at_execution : int;
  capacity : float;
  spares_left : int;
}

type ended = Spares_exhausted of int | Max_executions

type degradation = {
  executions : int;
  correct : int;
  incorrect : int;
  injected : int;
  worn_out : int;
  detections : int;
  remaps : int;
  verify_reads : int;
  retries : int;
  transient_failures : int;
  final_capacity : float;
  spares_remaining : int;
  curve : degradation_point list;   (** chronological; one point per capacity change *)
  degraded_write_total : int;
  ended : ended;
  trajectory : wear_sample list;    (** chronological wear-skew samples *)
  final_wear : int array;           (** per-cell write counts at campaign end *)
}

let m_degraded = Metrics.counter "campaign.degraded_runs"

let run_degraded ?(seed = 0xCAFE) ?(max_executions = 100) ?sample_every ?endurance
    ?(spares = 0) ?(verify = true) ?(fault_spec = Fault_model.none) ?oracle
    (p : Program.t) =
  Obs.span "campaign.degraded" @@ fun () ->
  Metrics.incr m_degraded;
  let lines = p.Program.num_cells in
  let xbar = Crossbar.create ?endurance (lines + spares) in
  let fx = Faulty.create ~spec:fault_spec xbar in
  let sm =
    make_sampler ~sample_every ~max_executions ~counts:(fun () -> Faulty.wear_counts fx)
  in
  Faulty.set_observer fx (sampler_observer sm);
  take_sample sm 0;
  let rm = Remap.create ~spares ~lines () in
  let rng = Splitmix.create seed in
  let width = Array.length p.Program.pi_cells in
  let correct = ref 0
  and incorrect = ref 0
  and stats = ref Exec.zero_stats
  and curve = ref []
  and last_capacity = ref (Faulty.capacity fx) in
  let point at_execution =
    curve :=
      { at_execution; capacity = Faulty.capacity fx; spares_left = Remap.spares_left rm }
      :: !curve
  in
  point 0;
  let check vector outputs =
    match oracle with
    | None -> ()
    | Some f ->
      let expected = f vector in
      let actual = Array.of_list (List.map snd outputs) in
      if expected = actual then incr correct else incr incorrect
  in
  let rec go completed =
    if completed >= max_executions then (completed, Max_executions)
    else begin
      let vector = Splitmix.bits rng ~width in
      let inputs =
        Array.to_list
          (Array.mapi (fun i (name, _) -> (name, vector.(i))) p.Program.pi_cells)
      in
      let outcome, s = Exec.run ~verify fx rm p ~inputs in
      stats := Exec.add_stats !stats s;
      match outcome with
      | Exec.Completed outputs ->
        Metrics.incr m_executions;
        check vector outputs;
        if Faulty.capacity fx <> !last_capacity then begin
          last_capacity := Faulty.capacity fx;
          point (completed + 1)
        end;
        if completed + 1 < max_executions then sample_boundary sm (completed + 1);
        go (completed + 1)
      | Exec.Out_of_spares l ->
        last_capacity := Faulty.capacity fx;
        point (completed + 1);
        (completed, Spares_exhausted l)
    end
  in
  let executions, ended = go 0 in
  Faulty.set_observer fx None;
  { executions;
    correct = !correct;
    incorrect = !incorrect;
    injected = Faulty.injected fx;
    worn_out = Faulty.worn_out fx;
    detections = (!stats).Exec.detections;
    remaps = (!stats).Exec.remaps;
    verify_reads = (!stats).Exec.verify_reads;
    retries = (!stats).Exec.retries;
    transient_failures = Faulty.transient_failures fx;
    final_capacity = Faulty.capacity fx;
    spares_remaining = Remap.spares_left rm;
    curve = List.rev !curve;
    degraded_write_total = total_writes xbar;
    ended;
    trajectory = finish_trajectory sm executions;
    final_wear = Faulty.wear_counts fx }

(* ------------------------------------------------------------------ *)
(* Degradation sweep over a rate x spares grid: each cell is an
   independent [run_degraded] campaign (own crossbar, fault layer and rng),
   so the grid is embarrassingly parallel.  Results come back in grid
   order — rates outer, spare budgets inner — at any pool width, which is
   what lets the bench faulttol table and its JSON rows stay byte-identical
   between -j 1 and -j N. *)

type sweep_cell = {
  rate : float;
  spares : int;
  outcome : degradation;
}

let sweep_degraded ?pool ?seed ?max_executions ?endurance ?(verify = true) ?oracle
    ~fault_spec_of ~rates ~spare_budgets p =
  Obs.span "campaign.sweep" @@ fun () ->
  let grid =
    List.concat_map (fun rate -> List.map (fun spares -> (rate, spares)) spare_budgets)
      rates
  in
  let eval (rate, spares) =
    let outcome =
      run_degraded ?seed ?max_executions ?endurance ~spares ~verify
        ~fault_spec:(fault_spec_of rate) ?oracle p
    in
    { rate; spares; outcome }
  in
  match pool with
  | Some p' -> Plim_par.map p' ~f:eval grid
  | None -> List.map eval grid

let run_with_start_gap ?seed ?max_executions ?sample_every ?psi ~endurance p =
  let n = p.Program.num_cells in
  let sg = Start_gap.create ?psi n in
  (* a gap move copies a line: one physical write, wear-accurate *)
  let map xbar cell =
    ignore xbar;
    Start_gap.physical sg cell
  in
  let on_write xbar cell =
    let before = Start_gap.total_moves sg in
    let gap_target = Start_gap.gap_line sg in
    Start_gap.write sg cell;
    (* a move with the gap at 0 is a wrap (start advance), not a copy *)
    if Start_gap.total_moves sg > before && gap_target > 0 then
      Crossbar.write xbar gap_target false
  in
  campaign ?seed ?max_executions ?sample_every ~physical_cells:(n + 1) ~map ~on_write
    ~endurance p

let run_with_wolfram ?seed ?max_executions ?sample_every ?period ?(wolfram_seed = 0x901F)
    ~endurance p =
  let n = p.Program.num_cells in
  let wf = Wolfram.create ?period ~seed:wolfram_seed n in
  let map xbar cell =
    ignore xbar;
    Wolfram.physical wf cell
  in
  (* a re-key copies every moved line to its new home: real writes *)
  let on_write xbar cell =
    Wolfram.write ~on_migrate:(fun dst -> Crossbar.write xbar dst false) wf cell
  in
  campaign ?seed ?max_executions ?sample_every ~physical_cells:n ~map ~on_write
    ~endurance p

let run_with_start_gap_wolfram ?seed ?max_executions ?sample_every ?psi ?period
    ?(wolfram_seed = 0x901F) ~endurance p =
  let n = p.Program.num_cells in
  let wf = Wolfram.create ?period ~seed:wolfram_seed n in
  let sg = Start_gap.create ?psi n in
  (* WoLFRaM permutes logical addresses, Start-Gap rotates the result:
     logical -> Wolfram -> Start-Gap -> physical (n + 1 lines) *)
  let map xbar cell =
    ignore xbar;
    Start_gap.physical sg (Wolfram.physical wf cell)
  in
  let on_write xbar cell =
    let before = Start_gap.total_moves sg in
    let gap_target = Start_gap.gap_line sg in
    Start_gap.write sg (Wolfram.physical wf cell);
    if Start_gap.total_moves sg > before && gap_target > 0 then
      Crossbar.write xbar gap_target false;
    Wolfram.write
      ~on_migrate:(fun dst -> Crossbar.write xbar (Start_gap.physical sg dst) false)
      wf cell
  in
  campaign ?seed ?max_executions ?sample_every ~physical_cells:(n + 1) ~map ~on_write
    ~endurance p
