module Program = Plim_isa.Program
module I = Plim_isa.Instruction
module Crossbar = Plim_rram.Crossbar
module Start_gap = Plim_rram.Start_gap
module Splitmix = Plim_util.Splitmix
module Obs = Plim_obs.Obs
module Metrics = Plim_obs.Metrics

let m_campaigns = Metrics.counter "campaign.runs"
let m_executions = Metrics.counter "campaign.executions"

type outcome = {
  executions_completed : int;
  failed : bool;
  write_total : int;
}

(* One execution with a logical->physical mapping sampled per access and a
   per-logical-write notification.  Output values are not collected: the
   campaign measures wear.  Raises [Failure] when a device dies. *)
let execute_mapped (p : Program.t) xbar rng ~map ~on_write =
  Array.iter
    (fun (_, cell) -> Crossbar.load xbar (map cell) (Splitmix.bool rng))
    p.Program.pi_cells;
  Array.iter
    (fun (instr : I.t) ->
      let operand = function
        | I.Const v -> v
        | I.Cell c -> Crossbar.read xbar (map c)
      in
      let a = operand instr.I.a in
      let b = operand instr.I.b in
      Crossbar.rm3 xbar ~p:a ~q:b (map instr.I.z);
      on_write instr.I.z)
    p.Program.instrs

let total_writes xbar = Array.fold_left ( + ) 0 (Crossbar.write_counts xbar)

let campaign ?(seed = 0xCAFE) ?(max_executions = 100_000) ~physical_cells ~map ~on_write
    ~endurance p =
  Obs.span "campaign" @@ fun () ->
  Metrics.incr m_campaigns;
  let xbar = Crossbar.create ~endurance physical_cells in
  let rng = Splitmix.create seed in
  let rec go completed =
    if completed >= max_executions then
      { executions_completed = completed; failed = false; write_total = total_writes xbar }
    else
      match execute_mapped p xbar rng ~map:(map xbar) ~on_write:(on_write xbar) with
      | () ->
        Metrics.incr m_executions;
        go (completed + 1)
      | exception Failure _ ->
        { executions_completed = completed;
          failed = true;
          write_total = total_writes xbar }
  in
  go 0

let run_until_failure ?seed ?max_executions ~endurance p =
  campaign ?seed ?max_executions ~physical_cells:p.Program.num_cells
    ~map:(fun _ cell -> cell)
    ~on_write:(fun _ _ -> ())
    ~endurance p

let run_with_start_gap ?seed ?max_executions ?psi ~endurance p =
  let n = p.Program.num_cells in
  let sg = Start_gap.create ?psi n in
  (* a gap move copies a line: one physical write, wear-accurate *)
  let map xbar cell =
    ignore xbar;
    Start_gap.physical sg cell
  in
  let on_write xbar cell =
    let before = Start_gap.total_moves sg in
    let gap_target = Start_gap.gap_line sg in
    Start_gap.write sg cell;
    (* a move with the gap at 0 is a wrap (start advance), not a copy *)
    if Start_gap.total_moves sg > before && gap_target > 0 then
      Crossbar.write xbar gap_target false
  in
  campaign ?seed ?max_executions ~physical_cells:(n + 1) ~map ~on_write ~endurance p
