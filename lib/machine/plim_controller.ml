module Crossbar = Plim_rram.Crossbar
module Program = Plim_isa.Program
module Instruction = Plim_isa.Instruction
module Obs = Plim_obs.Obs
module Metrics = Plim_obs.Metrics

let m_runs = Metrics.counter "machine.runs"
let m_instructions = Metrics.counter "machine.instructions"

type run_stats = {
  instructions : int;
  cycles : int;
}

type trace_entry = {
  pc : int;
  instr : Instruction.t;
  a_value : bool;
  b_value : bool;
  z_before : bool;
  z_after : bool;
}

let static_cycles (p : Program.t) =
  Array.fold_left
    (fun acc (instr : Instruction.t) ->
      let operand = function Instruction.Const _ -> 0 | Instruction.Cell _ -> 1 in
      acc + 1 + operand instr.Instruction.a + operand instr.Instruction.b)
    0 p.Program.instrs

let run ?endurance ?on_step (p : Program.t) ~inputs =
  Obs.span "machine.run" @@ fun () ->
  Metrics.incr m_runs;
  Metrics.incr ~by:(Array.length p.Program.instrs) m_instructions;
  let xbar = Crossbar.create ?endurance p.Program.num_cells in
  (* load primary inputs *)
  let bound = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      if Hashtbl.mem bound name then
        invalid_arg (Printf.sprintf "Plim_controller.run: duplicate input %S" name);
      Hashtbl.add bound name v)
    inputs;
  Array.iter
    (fun (name, cell) ->
      match Hashtbl.find_opt bound name with
      | Some v ->
        Crossbar.load xbar cell v;
        Hashtbl.remove bound name
      | None -> invalid_arg (Printf.sprintf "Plim_controller.run: missing input %S" name))
    p.Program.pi_cells;
  if Hashtbl.length bound > 0 then
    invalid_arg "Plim_controller.run: unknown extra inputs";
  (* controller on: execute the stream *)
  let cycles = ref 0 in
  let read_operand = function
    | Instruction.Const v -> v
    | Instruction.Cell i ->
      incr cycles;
      Crossbar.read xbar i
  in
  Array.iteri
    (fun pc (instr : Instruction.t) ->
      let a = read_operand instr.Instruction.a in
      let b = read_operand instr.Instruction.b in
      let z = instr.Instruction.z in
      let z_before = Crossbar.read xbar z in
      Crossbar.rm3 xbar ~p:a ~q:b z;
      incr cycles;
      match on_step with
      | None -> ()
      | Some f ->
        f { pc; instr; a_value = a; b_value = b; z_before; z_after = Crossbar.read xbar z })
    p.Program.instrs;
  let outputs =
    Array.to_list
      (Array.map (fun (name, cell) -> (name, Crossbar.read xbar cell)) p.Program.po_cells)
  in
  (outputs, xbar, { instructions = Array.length p.Program.instrs; cycles = !cycles })

(* ------------------------------------------------------------------ *)
(* Geometry backend: execute a row-parallel schedule (Plim_geometry)
   group by group.  Within a group every member's operands and
   destination state are read BEFORE any member's write lands — the
   semantics of simultaneously firing several write drivers in one row.
   Group members are mutually hazard-free by construction, so the
   outputs are identical to [run]; only the latency accounting changes:
   one group costs one array step regardless of its width. *)

type grouped_stats = {
  g_instructions : int;
  g_groups : int;        (* latency in row-parallel groups *)
  g_cycles : int;        (* flat cycle count, for comparison *)
  g_cross_row : int;     (* forced-singleton cross-row instructions *)
  g_max_group : int;
}

let static_groups ~geometry (p : Program.t) =
  Result.map Plim_geometry.num_groups (Plim_geometry.schedule geometry p)

let run_grouped ?endurance ~geometry (p : Program.t) ~inputs =
  Obs.span "machine.run_grouped" @@ fun () ->
  match Plim_geometry.schedule geometry p with
  | Error msg -> Error msg
  | Ok sched ->
    Metrics.incr m_runs;
    Metrics.incr ~by:(Array.length p.Program.instrs) m_instructions;
    let xbar = Crossbar.create ?endurance p.Program.num_cells in
    let bound = Hashtbl.create 16 in
    List.iter
      (fun (name, v) ->
        if Hashtbl.mem bound name then
          invalid_arg
            (Printf.sprintf "Plim_controller.run_grouped: duplicate input %S" name);
        Hashtbl.add bound name v)
      inputs;
    Array.iter
      (fun (name, cell) ->
        match Hashtbl.find_opt bound name with
        | Some v ->
          Crossbar.load xbar cell v;
          Hashtbl.remove bound name
        | None ->
          invalid_arg
            (Printf.sprintf "Plim_controller.run_grouped: missing input %S" name))
      p.Program.pi_cells;
    if Hashtbl.length bound > 0 then
      invalid_arg "Plim_controller.run_grouped: unknown extra inputs";
    let cycles = ref 0 in
    let read_operand = function
      | Instruction.Const v -> v
      | Instruction.Cell i ->
        incr cycles;
        Crossbar.read xbar i
    in
    Array.iter
      (fun group ->
        (* read phase: capture every member's operand and destination
           state before any write of the group lands *)
        let writes =
          Array.map
            (fun i ->
              let instr = p.Program.instrs.(i) in
              let a = read_operand instr.Instruction.a in
              let b = read_operand instr.Instruction.b in
              incr cycles;
              (instr.Instruction.z, a, b))
            group
        in
        (* write phase: fire the group's RM3s *)
        Array.iter (fun (z, a, b) -> Crossbar.rm3 xbar ~p:a ~q:b z) writes)
      sched.Plim_geometry.s_groups;
    let outputs =
      Array.to_list
        (Array.map
           (fun (name, cell) -> (name, Crossbar.read xbar cell))
           p.Program.po_cells)
    in
    Ok
      ( outputs,
        xbar,
        { g_instructions = Array.length p.Program.instrs;
          g_groups = Plim_geometry.num_groups sched;
          g_cycles = !cycles;
          g_cross_row = sched.Plim_geometry.s_cross_row;
          g_max_group = Plim_geometry.max_group_size sched } )

let run_self_hosted ?endurance (p : Program.t) ~inputs =
  Obs.span "machine.run_self_hosted" @@ fun () ->
  Metrics.incr m_runs;
  Metrics.incr ~by:(Array.length p.Program.instrs) m_instructions;
  let module Encoding = Plim_isa.Encoding in
  let data_cells = p.Program.num_cells in
  let footprint = Encoding.footprint p in
  let per_instr = Encoding.instruction_bits ~num_cells:data_cells in
  let xbar = Crossbar.create ?endurance footprint.Encoding.total_cells in
  (* provision the program into the high region of the array *)
  let program_bits = Encoding.encode_program p in
  Array.iteri (fun i bit -> Crossbar.load xbar (data_cells + i) bit) program_bits;
  (* load primary inputs; validation mirrors [run]: duplicates, missing and
     unknown extras are all rejected *)
  let bound = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      if Hashtbl.mem bound name then
        invalid_arg
          (Printf.sprintf "Plim_controller.run_self_hosted: duplicate input %S" name);
      Hashtbl.add bound name v)
    inputs;
  Array.iter
    (fun (name, cell) ->
      match Hashtbl.find_opt bound name with
      | Some v ->
        Crossbar.load xbar cell v;
        Hashtbl.remove bound name
      | None ->
        invalid_arg
          (Printf.sprintf "Plim_controller.run_self_hosted: missing input %S" name))
    p.Program.pi_cells;
  if Hashtbl.length bound > 0 then
    invalid_arg "Plim_controller.run_self_hosted: unknown extra inputs";
  let cycles = ref 0 in
  let num_instrs = Array.length p.Program.instrs in
  for pc = 0 to num_instrs - 1 do
    (* fetch: read the instruction's bit cells *)
    let base = data_cells + (pc * per_instr) in
    let bits = Array.init per_instr (fun k -> Crossbar.read xbar (base + k)) in
    cycles := !cycles + per_instr;
    let instr = Encoding.decode ~num_cells:data_cells bits in
    let read_operand = function
      | Instruction.Const v -> v
      | Instruction.Cell i ->
        incr cycles;
        Crossbar.read xbar i
    in
    let a = read_operand instr.Instruction.a in
    let b = read_operand instr.Instruction.b in
    Crossbar.rm3 xbar ~p:a ~q:b instr.Instruction.z;
    incr cycles
  done;
  let outputs =
    Array.to_list
      (Array.map (fun (name, cell) -> (name, Crossbar.read xbar cell)) p.Program.po_cells)
  in
  (outputs, xbar, { instructions = num_instrs; cycles = !cycles })

let run_vector ?endurance (p : Program.t) values =
  if Array.length values <> Array.length p.Program.pi_cells then
    invalid_arg "Plim_controller.run_vector: input arity mismatch";
  let inputs =
    Array.to_list (Array.mapi (fun i (name, _) -> (name, values.(i))) p.Program.pi_cells)
  in
  let outputs, _, _ = run ?endurance p ~inputs in
  Array.of_list (List.map snd outputs)
