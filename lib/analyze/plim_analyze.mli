(** Static dataflow analysis and lint checks over compiled RM3 programs.

    Where {!Plim_core.Verify} executes a program and {!Plim_check} fuzzes
    the whole compiler, this module reasons about the instruction stream
    without running it: it builds per-cell def-use chains and liveness
    intervals (first def of a value to its last use) and derives

    - per-cell {e static write bounds} — provably equal to what any
      execution performs, cross-validated three ways in
      {!Plim_core.Verify.check_random} against
      {!Plim_isa.Program.static_write_counts} and the crossbar-observed
      counts;
    - a catalogue of {e diagnostics} over allocation hygiene and output
      integrity (below);
    - the {e storage-duration} report: how long each device stays blocked
      holding a live value — the quantity the paper's Algorithm 3 (node
      selection by smallest fanout level) minimizes, here measurable per
      program instead of inferred from the schedule.

    {2 Read/write model}

    [RM3 a, b, z] writes [z] and reads every [Cell] operand; it also reads
    the old value of [z] — [z <- <a, !b, z>] — {e except} when both
    operands are constants with [a <> b]: [RM3 1,0,z] and [RM3 0,1,z] are
    the constant loads ({!Plim_isa.Instruction.set_const}), independent of
    the previous state.  ([RM3 0,0,z] and [RM3 1,1,z] are the identity and
    do read [z].)  Primary inputs are defined by the external load before
    instruction 0; primary outputs are live until after the last
    instruction.

    {2 Diagnostic catalogue}

    - {b use-before-def} (error): an instruction reads a cell that is
      neither a PI nor written earlier.  The machine would read the HRS
      reset value 0, so the semantics are defined — but no correct
      compilation ever does this.  Also raised for a PO cell that no
      instruction or PI load ever defines.
    - {b dead write} (error): a destination value is overwritten or the
      program ends before anything reads it (and it is not a live-out PO
      value) — pure wasted endurance.
    - {b PO clobber} (error): an output cell is written {e after} the def
      holding its final computed value, i.e. the overwritten def was never
      read; the clobbering instruction is the one reported.
    - {b RRAM leak} (error without a cap, info with one): a cell went
      dead, yet an instruction more than [leak_grace] slots later
      first-defines a brand-new cell.  The uncapped allocator only opens
      fresh devices when the free pool is empty, so this proves the
      allocator held a dead device past its last use.  The grace window
      (default 8) covers one RM3 instruction group: the translator
      requests a group's temporaries after a child's last read but
      releases children only at group end, so a fresh open within one
      group of a death is normal scheduling.  Under the maximum write
      count strategy retired devices legitimately stay unused, hence the
      downgrade to info.
    - {b cap exceeded} (error, only with [max_writes]): a cell takes more
      static writes than the Table III cap [W]; the first offending
      instruction is reported.
    - {b unused cell} (info): a cell inside [num_cells] that is never a
      PI and never written — address-space gaps, e.g. devices skipped by
      fault-aware allocation. *)

module Program = Plim_isa.Program

type severity = Error | Warning | Info

type kind =
  | Use_before_def
  | Dead_write
  | Po_clobber
  | Rram_leak
  | Cap_exceeded
  | Unused_cell

type diagnostic = {
  severity : severity;
  kind : kind;
  instr : int option;  (** instruction index; [None] for program-level findings *)
  cell : int;
  message : string;
}

(** One value held by a cell: defined at [def_at], read at [uses]. *)
type def = {
  cell : int;
  def_at : int;      (** instruction index; [-1] for the external PI load *)
  uses : int list;   (** ascending instruction indices reading this value *)
  live_out : bool;   (** the def a PO cell carries past the last instruction *)
}

type storage = {
  total_span : int;      (** sum of liveness spans, in instruction slots *)
  max_span : int;
  mean_span : float;     (** average span per def; 0.0 when there are no defs *)
  per_cell_span : int array;  (** blocked duration per cell, length [num_cells] *)
}

type analysis = {
  diagnostics : diagnostic list;  (** sorted by instruction index *)
  defs : def list;                (** every def in def order (PI loads first) *)
  storage : storage;
  write_counts : int array;       (** per-cell static bound, from the IR *)
}

val analyze : ?leak_grace:int -> ?max_writes:int -> Program.t -> analysis
(** Build the def-use IR and run every checker.  [max_writes] enables the
    cap checker and marks the leak checker cap-aware; [leak_grace]
    (default 8) is the leak checker's scheduling slack (see above). *)

val reads_dest : Plim_isa.Instruction.t -> bool
(** Whether the instruction reads the old value of its destination — true
    except for the two [set_const] encodings (see the read/write model). *)

val write_counts : Program.t -> int array
(** Per-cell write bounds derived from the def-use chains alone.  Always
    equals {!Plim_isa.Program.static_write_counts}; computed through an
    independent path so the equality is a real cross-check. *)

val errors : analysis -> diagnostic list
(** The diagnostics with [severity = Error]. *)

val severity_name : severity -> string  (** ["error"], ["warning"], ["info"] *)

val kind_name : kind -> string
(** Kebab-case catalogue name, e.g. ["use-before-def"], ["dead-write"]. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** [<instr>: <severity>: <kind>: cell %<cell>: <message>]. *)

val diagnostic_to_string : diagnostic -> string

val to_json : ?source:string -> Program.t -> analysis -> string
(** One self-contained JSON object (schema [plim-lint/v1]): program shape,
    the full diagnostic list, storage-duration report and the write-bound
    summary.  Stable field order; documented in EXPERIMENTS.md. *)
