module Program = Plim_isa.Program
module I = Plim_isa.Instruction
module Obs = Plim_obs.Obs
module Metrics = Plim_obs.Metrics

type severity = Error | Warning | Info

type kind =
  | Use_before_def
  | Dead_write
  | Po_clobber
  | Rram_leak
  | Cap_exceeded
  | Unused_cell

type diagnostic = {
  severity : severity;
  kind : kind;
  instr : int option;
  cell : int;
  message : string;
}

type def = {
  cell : int;
  def_at : int;
  uses : int list;
  live_out : bool;
}

type storage = {
  total_span : int;
  max_span : int;
  mean_span : float;
  per_cell_span : int array;
}

type analysis = {
  diagnostics : diagnostic list;
  defs : def list;
  storage : storage;
  write_counts : int array;
}

let m_programs = Metrics.counter "analyze.programs"
let m_diagnostics = Metrics.counter "analyze.diagnostics"
let m_errors = Metrics.counter "analyze.errors"

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let kind_name = function
  | Use_before_def -> "use-before-def"
  | Dead_write -> "dead-write"
  | Po_clobber -> "po-clobber"
  | Rram_leak -> "rram-leak"
  | Cap_exceeded -> "cap-exceeded"
  | Unused_cell -> "unused-cell"

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s: %s: %s: cell %%%d: %s"
    (match d.instr with Some i -> string_of_int i | None -> "-")
    (severity_name d.severity) (kind_name d.kind) d.cell d.message

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d

(* [RM3 a, b, z] computes [z <- <a, !b, z>]; the old value of [z] is read
   unless both operands are constants with [a <> b] (the two set_const
   encodings, whose majority is decided by the operands alone). *)
let reads_dest (instr : I.t) =
  match (instr.I.a, instr.I.b) with
  | I.Const a, I.Const b -> a = b
  | (I.Cell _ | I.Const _), (I.Cell _ | I.Const _) -> true

(* --- def-use IR -------------------------------------------------------- *)

(* One value held by a cell, mutable while chains are under construction.
   [s_uses] is kept newest-first.  A synthetic site is installed after a
   use-before-def report so later reads of the same cell chain quietly
   instead of cascading. *)
type site = {
  s_cell : int;
  s_def_at : int;
  mutable s_uses : int list;
  mutable s_live_out : bool;
  s_synthetic : bool;
}

let build (p : Program.t) =
  let n = p.Program.num_cells in
  let is_pi = Array.make n false in
  Array.iter (fun (_, c) -> is_pi.(c) <- true) p.Program.pi_cells;
  let last : site option array = Array.make n None in
  let sites = ref [] in
  let push s =
    sites := s :: !sites;
    s
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* PI loads happen before instruction 0, in declaration order: with two
     PIs bound to one cell (the compiler reuses the device of an unused
     input) the later load is the one that sticks. *)
  Array.iter
    (fun (_, c) ->
      last.(c) <-
        Some (push { s_cell = c; s_def_at = -1; s_uses = []; s_live_out = false;
                     s_synthetic = false }))
    p.Program.pi_cells;
  let reported = Array.make n false in
  Array.iteri
    (fun i (instr : I.t) ->
      let use c =
        match last.(c) with
        | Some s -> (
          match s.s_uses with
          | u :: _ when u = i -> () (* one use per instruction per value *)
          | _ -> s.s_uses <- i :: s.s_uses)
        | None ->
          if not reported.(c) then begin
            reported.(c) <- true;
            add
              { severity = Error; kind = Use_before_def; instr = Some i; cell = c;
                message =
                  Printf.sprintf
                    "cell %%%d is read but never written before (and is not a \
                     primary input)"
                    c }
          end;
          last.(c) <-
            Some (push { s_cell = c; s_def_at = -1; s_uses = [ i ];
                         s_live_out = false; s_synthetic = true })
      in
      (match instr.I.a with I.Cell c -> use c | I.Const _ -> ());
      (match instr.I.b with I.Cell c -> use c | I.Const _ -> ());
      if reads_dest instr then use instr.I.z;
      last.(instr.I.z) <-
        Some (push { s_cell = instr.I.z; s_def_at = i; s_uses = [];
                     s_live_out = false; s_synthetic = false }))
    p.Program.instrs;
  Array.iter
    (fun (name, c) ->
      match last.(c) with
      | Some s -> s.s_live_out <- true
      | None ->
        add
          { severity = Error; kind = Use_before_def; instr = None; cell = c;
            message =
              Printf.sprintf "output %S reads cell %%%d which nothing ever writes"
                name c })
    p.Program.po_cells;
  (List.rev !sites, !diags, is_pi)

let write_counts (p : Program.t) =
  let sites, _, _ = build p in
  let counts = Array.make p.Program.num_cells 0 in
  List.iter (fun s -> if s.s_def_at >= 0 then counts.(s.s_cell) <- counts.(s.s_cell) + 1) sites;
  counts

(* --- checkers ---------------------------------------------------------- *)

(* Within one node's instruction group the translator requests temporaries
   after a child's last read but releases children only at group end, so a
   fresh open up to one group (<= 7 instructions) past a death is normal
   scheduling, not a held device. *)
let default_leak_grace = 8

let analyze ?(leak_grace = default_leak_grace) ?max_writes (p : Program.t) =
  Obs.span "analyze.program" @@ fun () ->
  Metrics.incr m_programs;
  let sites, diags0, is_pi = build p in
  let n = p.Program.num_cells in
  let len = Program.length p in
  let diags = ref diags0 in
  let add d = diags := d :: !diags in
  let is_po = Array.make n false in
  Array.iter (fun (_, c) -> is_po.(c) <- true) p.Program.po_cells;
  (* chronological per-cell def chains *)
  let by_cell : site list array = Array.make n [] in
  List.iter (fun s -> by_cell.(s.s_cell) <- s :: by_cell.(s.s_cell)) sites;
  let chains = Array.map List.rev by_cell in
  (* dead writes and PO clobbers: an unread, overwritten (or trailing,
     non-live-out) value; on an output cell the overwriting instruction is
     the clobber *)
  Array.iteri
    (fun c chain ->
      let rec scan = function
        | [] -> ()
        | s :: rest ->
          if s.s_def_at >= 0 && s.s_uses = [] && not s.s_live_out then begin
            add
              { severity = Error; kind = Dead_write; instr = Some s.s_def_at;
                cell = c;
                message =
                  Printf.sprintf
                    "value written to cell %%%d is never read — wasted endurance"
                    c };
            if is_po.(c) then
              match rest with
              | next :: _ when next.s_def_at >= 0 ->
                add
                  { severity = Error; kind = Po_clobber; instr = Some next.s_def_at;
                    cell = c;
                    message =
                      Printf.sprintf
                        "output cell %%%d is overwritten after its final value \
                         (written at %d, never read)"
                        c s.s_def_at }
              | _ -> ()
          end;
          scan rest
      in
      scan chain)
    chains;
  (* RRAM leaks: the uncapped allocator opens a fresh device only when the
     free pool is empty, so a first-def of a brand-new cell after another
     cell went dead proves the dead device was held past its last use.
     Under a write cap, retired devices legitimately stay unused. *)
  let fresh_defs =
    (* (first-def index, cell) of every non-PI cell, ascending by index *)
    let acc = ref [] in
    Array.iteri
      (fun c chain ->
        if not is_pi.(c) then
          match List.find_opt (fun s -> s.s_def_at >= 0) chain with
          | Some s -> acc := (s.s_def_at, c) :: !acc
          | None -> ())
      chains;
    List.sort compare !acc
  in
  let leak_severity = match max_writes with Some _ -> Info | None -> Error in
  Array.iteri
    (fun c chain ->
      match List.rev chain with
      | [] -> ()
      | final :: _ ->
        if not final.s_live_out then begin
          let death =
            match final.s_uses with u :: _ -> u | [] -> final.s_def_at
          in
          match
            List.find_opt (fun (t, c') -> t > death + leak_grace && c' <> c) fresh_defs
          with
          | None -> ()
          | Some (t, c') ->
            add
              { severity = leak_severity; kind = Rram_leak; instr = Some t; cell = c;
                message =
                  Printf.sprintf
                    "cell %%%d is dead after instruction %d but fresh device %%%d \
                     is opened at %d%s"
                    c death c' t
                    (match max_writes with
                    | Some w ->
                      Printf.sprintf " (may be retirement under cap %d)" w
                    | None -> " — the allocator held it past its last use") }
        end)
    chains;
  (* cap: the maximum write count strategy, Table III's W knob *)
  (match max_writes with
  | None -> ()
  | Some w ->
    Array.iteri
      (fun c chain ->
        let writes = List.filter (fun s -> s.s_def_at >= 0) chain in
        if List.length writes > w then
          let offender = List.nth writes w in
          add
            { severity = Error; kind = Cap_exceeded; instr = Some offender.s_def_at;
              cell = c;
              message =
                Printf.sprintf
                  "cell %%%d takes %d static writes, exceeding the cap of %d at \
                   this instruction"
                  c (List.length writes) w })
      chains);
  (* unused cells: address-space gaps (e.g. fault-aware allocation) *)
  Array.iteri
    (fun c chain ->
      if chain = [] && not is_pi.(c) then
        add
          { severity = Info; kind = Unused_cell; instr = None; cell = c;
            message =
              Printf.sprintf "cell %%%d is inside num_cells but never loaded or \
                              written" c })
    chains;
  (* storage-duration report: how long each device is blocked holding a
     live value — the quantity Algorithm 3's node selection minimizes *)
  let per_cell_span = Array.make n 0 in
  let total = ref 0 and max_span = ref 0 and defs_counted = ref 0 in
  List.iter
    (fun s ->
      if not s.s_synthetic then begin
        incr defs_counted;
        let start = if s.s_def_at < 0 then 0 else s.s_def_at in
        let stop =
          if s.s_live_out then len
          else match s.s_uses with u :: _ -> u | [] -> start
        in
        let span = stop - start in
        per_cell_span.(s.s_cell) <- per_cell_span.(s.s_cell) + span;
        total := !total + span;
        if span > !max_span then max_span := span
      end)
    sites;
  let storage =
    { total_span = !total;
      max_span = !max_span;
      mean_span =
        (if !defs_counted = 0 then 0.0
         else float_of_int !total /. float_of_int !defs_counted);
      per_cell_span }
  in
  let counts = Array.make n 0 in
  List.iter (fun s -> if s.s_def_at >= 0 then counts.(s.s_cell) <- counts.(s.s_cell) + 1) sites;
  let order d =
    (* program-level findings last; stable kind order inside one instruction *)
    ( (match d.instr with Some i -> i | None -> max_int),
      d.cell,
      (match d.kind with
      | Use_before_def -> 0
      | Dead_write -> 1
      | Po_clobber -> 2
      | Rram_leak -> 3
      | Cap_exceeded -> 4
      | Unused_cell -> 5) )
  in
  let diagnostics =
    List.stable_sort (fun a b -> compare (order a) (order b)) (List.rev !diags)
  in
  Metrics.incr ~by:(List.length diagnostics) m_diagnostics;
  Metrics.incr
    ~by:(List.length (List.filter (fun d -> d.severity = Error) diagnostics))
    m_errors;
  let defs =
    List.filter_map
      (fun s ->
        if s.s_synthetic then None
        else
          Some
            { cell = s.s_cell; def_at = s.s_def_at; uses = List.rev s.s_uses;
              live_out = s.s_live_out })
      sites
  in
  { diagnostics; defs; storage; write_counts = counts }

let errors a = List.filter (fun d -> d.severity = Error) a.diagnostics

(* --- JSON -------------------------------------------------------------- *)

let json_escape = Plim_util.Jsonx.escape

let to_json ?(source = "") (p : Program.t) a =
  let b = Buffer.create 4096 in
  let count sev = List.length (List.filter (fun d -> d.severity = sev) a.diagnostics) in
  Printf.bprintf b
    "{\"schema\":\"plim-lint/v1\",\"source\":\"%s\",\"instructions\":%d,\"cells\":%d,\
     \"pis\":%d,\"pos\":%d,\"errors\":%d,\"warnings\":%d,\"infos\":%d,\
     \"diagnostics\":["
    (json_escape source) (Program.length p) (Program.num_cells p)
    (Array.length p.Program.pi_cells)
    (Array.length p.Program.po_cells)
    (count Error) (count Warning) (count Info);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"severity\":\"%s\",\"kind\":\"%s\",\"instr\":%s,\"cell\":%d,\
         \"message\":\"%s\"}"
        (severity_name d.severity) (kind_name d.kind)
        (match d.instr with Some i -> string_of_int i | None -> "null")
        d.cell (json_escape d.message))
    a.diagnostics;
  let writes_total = Array.fold_left ( + ) 0 a.write_counts in
  let writes_max = Array.fold_left max 0 a.write_counts in
  Printf.bprintf b
    "],\"storage\":{\"total_span\":%d,\"max_span\":%d,\"mean_span\":%.6g},\
     \"writes\":{\"max\":%d,\"total\":%d}}"
    a.storage.total_span a.storage.max_span a.storage.mean_span writes_max
    writes_total;
  Buffer.contents b
