module Mig = Plim_mig.Mig
module Pipeline = Plim_core.Pipeline
module Select = Plim_core.Select
module Alloc = Plim_core.Alloc
module Verify = Plim_core.Verify
module Program = Plim_isa.Program
module I = Plim_isa.Instruction
module Fault_model = Plim_fault.Fault_model
module Metrics = Plim_obs.Metrics
module Controller = Plim_machine.Plim_controller
module Geometry = Plim_geometry

type failure = {
  config : string;
  invariant : string;
  message : string;
}

let m_checks = Metrics.counter "check.configs"
let m_failures = Metrics.counter "check.failures"

let pp_failure ppf f =
  Format.fprintf ppf "[%s] %s: %s" f.config f.invariant f.message

let failure_to_string f = Format.asprintf "%a" pp_failure f

let fail config invariant fmt =
  Printf.ksprintf (fun message -> { config; invariant; message }) fmt

let default_matrix =
  [ Pipeline.naive;
    Pipeline.dac16;
    Pipeline.min_write;
    Pipeline.endurance_rewrite;
    Pipeline.endurance_full;
    Pipeline.with_cap 3 Pipeline.endurance_full;
    Pipeline.with_cap 5 Pipeline.endurance_rewrite;
    Pipeline.with_cap 10 Pipeline.naive;
    { Pipeline.endurance_full with Pipeline.allocation = Alloc.Fifo };
    { Pipeline.endurance_full with Pipeline.dest_min_write = true } ]

let default_fault_spec = Fault_model.make ~sa0:0.04 ~sa1:0.04 ~seed:0xFA11 ()

(* --- per-configuration invariants ------------------------------------- *)

let exhaustive_limit = 8

let functional_check name g program acc =
  let r =
    if Mig.num_inputs g <= exhaustive_limit then Verify.check_exhaustive g program
    else Verify.check_random ~trials:64 ~seed:0xC0FFEE g program
  in
  match r with
  | Ok () -> acc
  | Error e -> fail name "functional" "%s" e :: acc

let symbolic_check name g program acc =
  if Mig.num_inputs g > 14 then acc
  else
    match Verify.check_symbolic g program with
    | Ok () -> acc
    | Error e -> fail name "symbolic" "%s" e :: acc

let write_count_check name g program acc =
  (* check_random cross-validates static vs crossbar-observed counts *)
  match Verify.check_random ~trials:4 ~seed:0x5EED g program with
  | Ok () -> acc
  | Error e -> fail name "write-counts" "%s" e :: acc

let cap_check name (config : Pipeline.config) program acc =
  match config.Pipeline.max_write with
  | None -> acc
  | Some cap ->
    let counts = Program.static_write_counts program in
    let worst = ref (-1) in
    Array.iteri (fun i w -> if w > cap && !worst < 0 then worst := i) counts;
    if !worst < 0 then acc
    else
      fail name "write-cap" "cell %d takes %d writes, cap is %d" !worst
        counts.(!worst) cap
      :: acc

let lint_check name (config : Pipeline.config) program acc =
  (* Compiler output must be lint-clean: a dead write or RRAM leak in a
     compiled program is an allocator/translator bug, and use-before-def or
     a PO clobber is a miscompilation. *)
  let analysis =
    Plim_analyze.analyze ?max_writes:config.Pipeline.max_write program
  in
  match Plim_analyze.errors analysis with
  | [] -> acc
  | errs ->
    let shown = List.filteri (fun i _ -> i < 3) errs in
    fail name "lint" "%d lint error(s): %s" (List.length errs)
      (String.concat "; " (List.map Plim_analyze.diagnostic_to_string shown))
    :: acc

let rewrite_function_check name g (result : Pipeline.result) acc =
  if Mig.num_inputs g > exhaustive_limit then acc
  else begin
    let expected = Mig.output_tables g in
    let got = Mig.output_tables result.Pipeline.rewritten in
    if Array.length expected <> Array.length got then
      fail name "rewrite-function" "rewriting changed output arity: %d -> %d"
        (Array.length expected) (Array.length got)
      :: acc
    else begin
      let bad = ref None in
      Array.iteri
        (fun i t ->
          if !bad = None && not (Plim_logic.Truth_table.equal t got.(i)) then
            bad := Some i)
        expected;
      match !bad with
      | None -> acc
      | Some i ->
        let oname, _ = (Mig.outputs g).(i) in
        fail name "rewrite-function" "rewriting changed the function of output %S"
          oname
        :: acc
    end
  end

let fault_avoidance_check name spec program acc =
  let faulty i = Fault_model.cell_fault spec i <> None in
  let bad = ref [] in
  let touch what i = if faulty i then bad := Printf.sprintf "%s cell %d" what i :: !bad in
  Array.iter
    (fun (instr : I.t) ->
      touch "destination" instr.I.z;
      (match instr.I.a with I.Cell i -> touch "operand" i | I.Const _ -> ());
      match instr.I.b with I.Cell i -> touch "operand" i | I.Const _ -> ())
    program.Program.instrs;
  Array.iter (fun (_, c) -> touch "PI" c) program.Program.pi_cells;
  Array.iter (fun (_, c) -> touch "PO" c) program.Program.po_cells;
  match List.sort_uniq compare !bad with
  | [] -> acc
  | bads ->
    fail name "fault-avoidance" "program touches faulty devices: %s"
      (String.concat ", " bads)
    :: acc

let output_map_check name g program acc =
  let expected = Array.map fst (Mig.outputs g) in
  let got = Array.map fst program.Program.po_cells in
  if expected = got then acc
  else
    fail name "output-map" "PO names differ: mig [%s], program [%s]"
      (String.concat ";" (Array.to_list expected))
      (String.concat ";" (Array.to_list got))
    :: acc

let geometry_grids program =
  (* One serial grid (cols = 1, must degenerate to one group per
     instruction), one narrow grid and one near-square grid: enough to
     exercise forced-singleton cross-row scheduling and wide rows. *)
  let n = Program.num_cells program in
  let rec square c = if c * c >= n then c else square (c + 1) in
  List.sort_uniq compare [ 1; 4; square 1 ]
  |> List.map (fun cols -> Geometry.grid_for ~cols ~num_cells:n)

let geometry_check name program acc =
  (* The geometry backend is a second compilation target for the same
     instruction stream: its row-parallel schedule must be a valid
     hazard-respecting permutation cover, never slower than serial, and
     functionally indistinguishable from the flat controller. *)
  let n_instr = Program.length program in
  let check_grid acc grid =
    let gname = Geometry.to_string grid in
    match Geometry.schedule grid program with
    | Error e -> fail name "geometry" "[%s] schedule: %s" gname e :: acc
    | Ok sched ->
      let acc =
        match Geometry.validate program sched with
        | Ok () -> acc
        | Error e ->
          fail name "geometry" "[%s] invalid schedule: %s" gname e :: acc
      in
      (* independent happens-before cross-check: the certify race
         detector derives hazard edges from the def-use chains, a
         different code path from validate's flat-stream scan — the
         scheduler must satisfy both *)
      let acc =
        match Plim_certify.Race.check_schedule program sched with
        | Ok () -> acc
        | Error e ->
          fail name "geometry" "[%s] race detector rejects scheduler output: %s"
            gname e
          :: acc
      in
      let groups = Geometry.num_groups sched in
      let acc =
        if groups > n_instr then
          fail name "geometry" "[%s] %d groups exceed %d instructions" gname
            groups n_instr
          :: acc
        else acc
      in
      let acc =
        if grid.Geometry.cols = 1 && groups <> n_instr then
          fail name "geometry"
            "[%s] single-column grid must run serially: %d groups for %d \
             instructions"
            gname groups n_instr
          :: acc
        else acc
      in
      let rng = Plim_util.Splitmix.create 0x9E0 in
      let pis = program.Program.pi_cells in
      let rec trials k acc =
        if k = 0 then acc
        else
          let inputs =
            Array.to_list
              (Array.map (fun (nm, _) -> (nm, Plim_util.Splitmix.bool rng)) pis)
          in
          let flat, _, fstats = Controller.run program ~inputs in
          match Controller.run_grouped ~geometry:grid program ~inputs with
          | Error e ->
            fail name "geometry" "[%s] run_grouped: %s" gname e :: acc
          | Ok (grouped, _, gstats) ->
            let acc =
              if flat <> grouped then
                fail name "geometry"
                  "[%s] grouped execution diverges from the flat controller"
                  gname
                :: acc
              else acc
            in
            let acc =
              if gstats.Controller.g_cycles <> fstats.Controller.cycles then
                fail name "geometry"
                  "[%s] cycle accounting diverges: grouped %d, flat %d" gname
                  gstats.Controller.g_cycles fstats.Controller.cycles
                :: acc
              else acc
            in
            trials (k - 1) acc
      in
      trials 4 acc
  in
  List.fold_left check_grid acc (geometry_grids program)

let check_config ?fault_spec config g =
  Metrics.incr m_checks;
  let name =
    Pipeline.config_name config ^ match fault_spec with Some _ -> "+fault-aware" | None -> ""
  in
  let is_faulty =
    Option.map (fun spec i -> Fault_model.cell_fault spec i <> None) fault_spec
  in
  match Pipeline.compile ?is_faulty config g with
  | exception e -> [ fail name "compile" "exception: %s" (Printexc.to_string e) ]
  | result ->
    let program = result.Pipeline.program in
    let acc = [] in
    let acc = functional_check name g program acc in
    let acc = symbolic_check name g program acc in
    let acc = write_count_check name g program acc in
    let acc = cap_check name config program acc in
    let acc = lint_check name config program acc in
    let acc = rewrite_function_check name g result acc in
    let acc = output_map_check name g program acc in
    let acc = geometry_check name program acc in
    let acc =
      match fault_spec with
      | Some spec -> fault_avoidance_check name spec program acc
      | None -> acc
    in
    List.rev acc

(* --- differential node selection --------------------------------------- *)

(* Both drivers emulate the translator's bookkeeping identically (pending
   decrements per consumed child, on_pending_one notification), so any
   divergence is a Select/Lazy_heap bug, not a modelling artefact. *)

let heap_order policy g =
  let n = Mig.num_nodes g in
  let fanout = Mig.fanout_counts g in
  let out_refs = Mig.output_refs g in
  let pending = Array.init n (fun i -> fanout.(i) + out_refs.(i)) in
  let sel = Select.create ~policy g ~pending in
  let order = ref [] in
  let rec loop () =
    match Select.pop sel with
    | None -> ()
    | Some id ->
      order := id :: !order;
      (match Mig.kind g id with
      | Mig.Maj (a, b, c) ->
        List.iter
          (fun s ->
            let m = Mig.node_of s in
            if m <> 0 then begin
              pending.(m) <- pending.(m) - 1;
              if pending.(m) = 1 then Select.child_pending_dropped_to_one sel m
            end)
          [ a; b; c ]
      | Mig.Const | Mig.Input _ -> ());
      Select.computed sel id;
      loop ()
  in
  loop ();
  List.rev !order

let reference_order policy g =
  let n = Mig.num_nodes g in
  let levels = Mig.levels g in
  let out_refs = Mig.output_refs g in
  let fanout = Mig.fanout_counts g in
  let fanouts = Mig.fanouts g in
  let pending = Array.init n (fun i -> fanout.(i) + out_refs.(i)) in
  let fanout_level = Array.make n 0 in
  for id = 0 to n - 1 do
    let from_parents =
      Array.fold_left (fun acc p -> min acc levels.(p)) max_int fanouts.(id)
    in
    let from_outputs = if out_refs.(id) > 0 then levels.(id) + 1 else max_int in
    let fl = min from_parents from_outputs in
    fanout_level.(id) <- (if fl = max_int then levels.(id) + 1 else fl)
  done;
  let computed = Array.make n false in
  let candidate = Array.make n false in
  let children id =
    match Mig.kind g id with Mig.Maj (a, b, c) -> [ a; b; c ] | _ -> []
  in
  let releasing id =
    List.fold_left
      (fun acc s ->
        let m = Mig.node_of s in
        if m <> 0 && pending.(m) = 1 then acc + 1 else acc)
      0 (children id)
  in
  let key id =
    match policy with
    | Select.In_order -> (id, 0, 0)
    | Select.Release_first -> (-releasing id, fanout_level.(id), id)
    | Select.Level_first -> (fanout_level.(id), -releasing id, id)
  in
  let children_left = Array.make n 0 in
  Mig.iter_reachable_maj g (fun id ->
      let left =
        List.fold_left
          (fun acc s ->
            match Mig.kind g (Mig.node_of s) with
            | Mig.Maj _ -> acc + 1
            | Mig.Const | Mig.Input _ -> acc)
          0 (children id)
      in
      children_left.(id) <- left;
      if left = 0 then candidate.(id) <- true);
  let order = ref [] in
  let rec loop () =
    let best = ref None in
    for id = 0 to n - 1 do
      if candidate.(id) then
        let k = key id in
        match !best with
        | Some (bk, _) when compare bk k <= 0 -> ()
        | _ -> best := Some (k, id)
    done;
    match !best with
    | None -> ()
    | Some (_, id) ->
      candidate.(id) <- false;
      computed.(id) <- true;
      order := id :: !order;
      List.iter
        (fun s ->
          let m = Mig.node_of s in
          if m <> 0 then pending.(m) <- pending.(m) - 1)
        (children id);
      Array.iter
        (fun parent ->
          if not computed.(parent) then begin
            children_left.(parent) <- children_left.(parent) - 1;
            if children_left.(parent) = 0 then candidate.(parent) <- true
          end)
        fanouts.(id);
      loop ()
  in
  loop ();
  List.rev !order

let pp_order order =
  String.concat "," (List.map string_of_int order)

let first_divergence xs ys =
  let rec go i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | x :: xs', y :: ys' -> if x = y then go (i + 1) xs' ys' else Some i
    | _, [] | [], _ -> Some i
  in
  go 0 xs ys

let selection_failures g =
  List.filter_map
    (fun policy ->
      let name = "selection:" ^ Select.policy_name policy in
      let real = heap_order policy g in
      let want = reference_order policy g in
      if List.length real <> Mig.size g then
        Some
          (fail name "selection-differential"
             "heap selector scheduled %d of %d reachable majority nodes"
             (List.length real) (Mig.size g))
      else
        match first_divergence real want with
        | None -> None
        | Some i ->
          Some
            (fail name "selection-differential"
               "orders diverge at pop %d: heap [%s], reference [%s]" i
               (pp_order real) (pp_order want)))
    [ Select.In_order; Select.Release_first; Select.Level_first ]

(* --- entry point -------------------------------------------------------- *)

let run ?(matrix = default_matrix) ?(fault_specs = [ default_fault_spec ]) g =
  let per_config = List.concat_map (fun config -> check_config config g) matrix in
  let fault =
    List.concat_map
      (fun spec ->
        List.concat_map
          (fun config -> check_config ~fault_spec:spec config g)
          [ Pipeline.naive; Pipeline.endurance_full ])
      fault_specs
  in
  let failures = per_config @ fault @ selection_failures g in
  Metrics.incr ~by:(List.length failures) m_failures;
  failures
