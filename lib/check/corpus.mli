(** Persisted counterexample corpus.

    Every MIG the fuzzer shrinks to a minimal failing witness is written
    to a corpus directory as a [.mig] file (the {!Plim_mig.Mig_io} text
    format, whose parser skips [#] comment lines carrying provenance
    metadata).  [test/corpus/] is committed and replayed by
    [test_regression.ml] on every [dune runtest], so each bug found by
    fuzzing becomes a permanent tier-1 regression test.

    Files are named [cex-<digest>.mig] from a content digest, which makes
    saves idempotent: rediscovering a known counterexample never creates a
    duplicate entry. *)

module Mig = Plim_mig.Mig

val digest : Mig.t -> string
(** Hex FNV-1a digest ({!Plim_util.Fnv}) of the graph's canonical text
    form — the same digest that keys the serve layer's compile cache. *)

val save : dir:string -> ?meta:string list -> Mig.t -> string
(** Write the graph (creating [dir] if needed) with one [# line] per
    [meta] entry; returns the file path.  Idempotent per digest. *)

val load_file : string -> Mig.t

val entries : string -> (string * Mig.t) list
(** All [.mig] entries of a corpus directory, sorted by file name; the
    empty list when the directory does not exist. *)
