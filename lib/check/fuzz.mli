(** Differential fuzzing driver.

    Draws random MIG descriptions from a master seed, runs the full
    {!Check} conformance suite on each, greedily shrinks any failure to a
    structurally minimal description, and persists the shrunk witness in
    the counterexample {!Corpus}.  Fully deterministic: the case sequence
    is a pure function of [seed], and each case records its own
    [case_seed] so a single counterexample can be regenerated without
    replaying the whole campaign. *)

module Mig = Plim_mig.Mig

type options = {
  runs : int;
  seed : int;
  max_inputs : int;
  max_nodes : int;
  max_outputs : int;
  corpus_dir : string option;  (** [None] disables persistence *)
  shrink : bool;
}

val default_options : options
(** 200 runs, seed 42, ≤ 6 inputs, ≤ 32 nodes, ≤ 4 outputs, corpus at
    [test/corpus], shrinking on. *)

type counterexample = {
  run_index : int;
  case_seed : int;       (** regenerate with [plimc fuzz --case-seed] *)
  desc : Gen.desc;       (** the shrunk minimal witness *)
  failures : Check.failure list;  (** failures of the shrunk witness *)
  shrink_steps : int;
  path : string option;  (** corpus file, when persistence is on *)
}

type report = {
  cases : int;
  counterexamples : counterexample list;
}

val case_seed_of : seed:int -> int -> int
(** [case_seed_of ~seed i] is the derived seed of campaign case [i]. *)

val desc_of_case_seed : options -> int -> Gen.desc
(** The description a given case seed generates under these options. *)

val shrink_to_minimal :
  fails:(Gen.desc -> bool) -> Gen.desc -> Gen.desc * int
(** Greedy structural shrinking: repeatedly adopt the first shrink
    candidate that still fails, until none does (or a step cap is hit).
    Returns the minimal description and the number of steps taken. *)

val run :
  ?pool:Plim_par.t ->
  ?check:(Mig.t -> Check.failure list) ->
  ?case_seeds:int list ->
  ?on_case:(int -> unit) ->
  options ->
  report
(** Run the campaign.  [check] defaults to {!Check.run} with the default
    matrix (overridable for harness self-tests); [case_seeds] replaces
    the seed-derived case sequence for targeted replay; [on_case] is a
    progress callback invoked before each case (concurrently when a pool
    is given).

    With [pool], generation and checking fan out across the pool's
    domains; shrinking and corpus persistence then run sequentially over
    the failing cases in submission order.  Because each case's seed is
    fixed up front, the report — including the first counterexample and
    every shrunk witness — is byte-identical at any pool width to the
    sequential run. *)
