(** Seeded random MIG descriptions with structural shrinking.

    The fuzzer does not generate {!Plim_mig.Mig.t} values directly: hash
    consing and the Ω.M axiom make built graphs awkward to mutate.  It
    generates a plain {e description} — a sized DAG of majority nodes over
    explicit indices — and lowers it with {!to_mig}.  Descriptions shrink
    structurally (drop nodes, reroute edges to children, clear complement
    flags, drop outputs and unused inputs), so every counterexample found
    by fuzzing reduces to a minimal witness.

    Because {!eval} gives the description its own independent semantics,
    [Mig.eval (to_mig d) = eval d] is itself a differential test of the
    MIG construction axioms. *)

module Mig = Plim_mig.Mig
module Splitmix = Plim_util.Splitmix

type ref_ = {
  idx : int;   (** 0 = constant false; [1..inputs] = PI; above = majority node *)
  neg : bool;  (** complemented edge *)
}

type node = { a : ref_; b : ref_; c : ref_ }

type desc = {
  inputs : int;        (** number of primary inputs, at least 1 *)
  nodes : node array;  (** node [k]'s children satisfy [idx <= inputs + k] *)
  outs : ref_ array;   (** at least one output *)
}

val well_formed : desc -> bool
(** All index invariants above hold. *)

val to_mig : desc -> Mig.t
(** Lower to a hash-consed MIG (inputs [x0..], outputs [y0..]).  Ω.M may
    merge or simplify nodes; the function computed is unchanged. *)

val eval : desc -> bool array -> bool array
(** Direct evaluation of the description, independent of [Mig]. *)

val size : desc -> int
(** [Array.length nodes]. *)

val generate :
  ?max_inputs:int ->
  ?max_nodes:int ->
  ?max_outputs:int ->
  Splitmix.t ->
  desc
(** Draw a random well-formed description: sized DAG with a per-description
    complemented-edge density, locality-biased children (deep structure),
    occasional constant children, multi-output.  Defaults: 6/32/4. *)

val shrink : desc -> (desc -> unit) -> unit
(** Yield structurally smaller well-formed candidates, largest cuts first
    (drop half the nodes, drop one node rerouting its uses to a child,
    drop outputs, reroute children to the constant, clear complement
    flags, drop the highest unused input).  Every candidate strictly
    decreases a well-founded measure, so greedy shrinking terminates.
    Compatible with [QCheck.Shrink.t]. *)

val print : desc -> string
(** Human-readable form: a summary line plus the {!Plim_mig.Mig_io} text
    of the lowered graph (directly replayable with [plimc fuzz --replay]). *)

val arbitrary :
  ?max_inputs:int -> ?max_nodes:int -> ?max_outputs:int -> unit ->
  desc QCheck.arbitrary
(** QCheck arbitrary combining {!generate}, {!shrink} and {!print} — the
    property-test entry point used across [test/]. *)
