(** Differential conformance checking of the whole compiler stack.

    One MIG is compiled under a matrix of configurations (rewrite recipe
    on/off × write-count strategies × selection policies × write cap ×
    fault-aware allocation against a seeded fault map) and every program
    is checked against direct MIG evaluation, plus cross-cutting
    invariants:

    - {b functional}: exhaustive machine execution for ≤ 8 inputs
      ({!Plim_core.Verify.check_exhaustive}), sampled otherwise;
    - {b symbolic}: complete BDD equivalence
      ({!Plim_core.Verify.check_symbolic});
    - {b write-counts}: statically derived per-cell write counts equal the
      counts observed by the crossbar;
    - {b write-cap}: under the maximum write count strategy no device
      exceeds the cap (so a retired device is never written again);
    - {b lint}: the static dataflow analyzer ({!Plim_analyze}) reports no
      errors — use-before-def, dead writes, PO clobbers or (uncapped) RRAM
      leaks in compiler output are compiler bugs, shrunk and persisted
      like any other counterexample;
    - {b rewrite-function}: the rewritten MIG computes the same truth
      tables as the source;
    - {b fault-avoidance}: with fault-aware allocation the program never
      reads or writes a device the fault map marks bad;
    - {b geometry}: on a serial, a narrow and a near-square crossbar grid
      the row-parallel schedule ({!Plim_geometry}) validates, never takes
      more groups than instructions, degenerates to one group per
      instruction when [cols = 1], and grouped execution
      ({!Plim_machine.Plim_controller.run_grouped}) produces outputs and
      cycle counts identical to the flat controller on random vectors;
    - {b selection-differential}: the incremental lazy-heap node selector
      ({!Plim_core.Select}) pops exactly the sequence an independent
      naive reference selector (linear argmin over live candidate keys)
      produces, for every policy — the CONTRA-style cross-check that
      catches heuristic-order bugs no functional test can see. *)

module Mig = Plim_mig.Mig
module Pipeline = Plim_core.Pipeline
module Select = Plim_core.Select
module Fault_model = Plim_fault.Fault_model

type failure = {
  config : string;     (** configuration name, or ["selection:<policy>"] *)
  invariant : string;  (** which invariant broke (names above) *)
  message : string;
}

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

val default_matrix : Pipeline.config list
(** Curated configurations covering every dimension: the five paper
    presets, capped variants, FIFO allocation and the destination
    min-write ablation. *)

val default_fault_spec : Fault_model.spec
(** Seeded stuck-at map (≈8% faulty cells) for the fault-aware column. *)

val check_config :
  ?fault_spec:Fault_model.spec -> Pipeline.config -> Mig.t -> failure list
(** Compile under one configuration (fault-aware when [fault_spec] is
    given) and run every per-program invariant. *)

val reference_order : Select.policy -> Mig.t -> int list
(** Naive re-implementation of the selection semantics: recompute every
    candidate key on every pop and take the argmin.  The oracle of the
    selection-differential check. *)

val selection_failures : Mig.t -> failure list

val run :
  ?matrix:Pipeline.config list ->
  ?fault_specs:Fault_model.spec list ->
  Mig.t ->
  failure list
(** The full conformance suite: every matrix configuration, the
    fault-aware variants, and the selection differential.  An empty list
    means the MIG compiles correctly everywhere. *)
