module Mig = Plim_mig.Mig
module Mig_io = Plim_mig.Mig_io

(* one repo-wide digest implementation: corpus file names and the serve
   compile cache must agree on what "the same MIG" means *)
let digest_string = Plim_util.Fnv.digest_string

let digest mig = digest_string (Mig_io.to_string mig)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

let save ~dir ?(meta = []) mig =
  mkdir_p dir;
  let body = Mig_io.to_string mig in
  let path = Filename.concat dir (Printf.sprintf "cex-%s.mig" (digest_string body)) in
  if not (Sys.file_exists path) then begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc "# plim-corpus v1\n";
        List.iter
          (fun line ->
            (* keep metadata one-line so the parser's comment filter holds *)
            let line = String.map (fun c -> if c = '\n' then ' ' else c) line in
            output_string oc ("# " ^ line ^ "\n"))
          meta;
        output_string oc body)
  end;
  path

let load_file path = Mig_io.read_file path

let entries dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    let files = Array.to_list files in
    List.filter (fun f -> Filename.check_suffix f ".mig") files
    |> List.sort compare
    |> List.map (fun f -> (f, load_file (Filename.concat dir f)))
