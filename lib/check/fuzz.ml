module Mig = Plim_mig.Mig
module Splitmix = Plim_util.Splitmix
module Obs = Plim_obs.Obs
module Metrics = Plim_obs.Metrics

type options = {
  runs : int;
  seed : int;
  max_inputs : int;
  max_nodes : int;
  max_outputs : int;
  corpus_dir : string option;
  shrink : bool;
}

let default_options =
  { runs = 200;
    seed = 42;
    max_inputs = 6;
    max_nodes = 32;
    max_outputs = 4;
    corpus_dir = Some "test/corpus";
    shrink = true }

type counterexample = {
  run_index : int;
  case_seed : int;
  desc : Gen.desc;
  failures : Check.failure list;
  shrink_steps : int;
  path : string option;
}

type report = {
  cases : int;
  counterexamples : counterexample list;
}

let m_cases = Metrics.counter "fuzz.cases"
let m_counterexamples = Metrics.counter "fuzz.counterexamples"
let m_shrink_steps = Metrics.counter "fuzz.shrink_steps"

let case_seed_of ~seed i =
  (* one splitmix stream per campaign; case i takes the i-th draw *)
  let rng = Splitmix.create seed in
  let s = ref 0 in
  for _ = 0 to i do
    s := Int64.to_int (Int64.shift_right_logical (Splitmix.next64 rng) 2)
  done;
  !s

let generate options case_seed =
  Gen.generate ~max_inputs:options.max_inputs ~max_nodes:options.max_nodes
    ~max_outputs:options.max_outputs (Splitmix.create case_seed)

let desc_of_case_seed options case_seed = generate options case_seed

let max_shrink_steps = 4096

let shrink_to_minimal ~fails d =
  let steps = ref 0 in
  let exception Found of Gen.desc in
  let rec improve d =
    match
      Gen.shrink d (fun cand ->
          if Gen.well_formed cand && fails cand then raise (Found cand))
    with
    | () -> (d, !steps)
    | exception Found cand ->
      incr steps;
      if !steps >= max_shrink_steps then (cand, !steps) else improve cand
  in
  improve d

(* The campaign splits into two phases so [-j N] output is byte-identical
   to [-j 1]:

   1. generate + check every case, on the pool when one is given.  Each
      case's seed was already fixed up front (a pure function of the
      campaign seed and the case index), so parallel execution changes
      neither which cases run nor their verdicts — only wall-clock.
   2. shrink and persist the failing cases *sequentially in submission
      order*.  Shrinking is deterministic per case, so the first
      counterexample (and every later one) is the same at any [-j]. *)
let run ?pool ?(check = fun mig -> Check.run mig) ?case_seeds ?(on_case = fun _ -> ())
    options =
  let seeds =
    match case_seeds with
    | Some seeds -> seeds
    | None ->
      (* explicit loop: the draw order must be the case order *)
      let rng = Splitmix.create options.seed in
      let acc = ref [] in
      for _ = 1 to options.runs do
        acc := Int64.to_int (Int64.shift_right_logical (Splitmix.next64 rng) 2) :: !acc
      done;
      List.rev !acc
  in
  let eval i case_seed =
    on_case i;
    Obs.span "fuzz.case" @@ fun () ->
    Metrics.incr m_cases;
    let d = generate options case_seed in
    match check (Gen.to_mig d) with [] -> None | _ :: _ -> Some d
  in
  let raw =
    match pool with
    | Some p -> Plim_par.mapi p ~f:eval seeds
    | None -> List.mapi eval seeds
  in
  let counterexamples = ref [] in
  List.iteri
    (fun i (case_seed, found) ->
      match found with
      | None -> ()
      | Some d ->
        Metrics.incr m_counterexamples;
        let fails d = check (Gen.to_mig d) <> [] in
        let minimal, shrink_steps =
          if options.shrink then shrink_to_minimal ~fails d else (d, 0)
        in
        Metrics.incr ~by:shrink_steps m_shrink_steps;
        let mig = Gen.to_mig minimal in
        let failures = check mig in
        let path =
          Option.map
            (fun dir ->
              Corpus.save ~dir
                ~meta:
                  ([ Printf.sprintf "found-by: fuzz seed %d, case %d (case-seed %d)"
                       options.seed i case_seed;
                     Printf.sprintf "shrink-steps: %d" shrink_steps ]
                  @ List.map
                      (fun f -> "failure: " ^ Check.failure_to_string f)
                      failures)
                mig)
            options.corpus_dir
        in
        counterexamples :=
          { run_index = i; case_seed; desc = minimal; failures; shrink_steps; path }
          :: !counterexamples)
    (List.combine seeds raw);
  { cases = List.length seeds; counterexamples = List.rev !counterexamples }
