module Mig = Plim_mig.Mig
module Mig_io = Plim_mig.Mig_io
module Splitmix = Plim_util.Splitmix

type ref_ = { idx : int; neg : bool }

type node = { a : ref_; b : ref_; c : ref_ }

type desc = {
  inputs : int;
  nodes : node array;
  outs : ref_ array;
}

let size d = Array.length d.nodes

let well_formed d =
  d.inputs >= 1
  && Array.length d.outs >= 1
  && (let ok = ref true in
      let check_ref limit r = if r.idx < 0 || r.idx > limit then ok := false in
      Array.iteri
        (fun k n ->
          let limit = d.inputs + k in
          check_ref limit n.a;
          check_ref limit n.b;
          check_ref limit n.c)
        d.nodes;
      Array.iter (check_ref (d.inputs + Array.length d.nodes)) d.outs;
      !ok)

let to_mig d =
  let g = Mig.create () in
  let signals = Array.make (1 + d.inputs + Array.length d.nodes) Mig.false_ in
  for i = 1 to d.inputs do
    signals.(i) <- Mig.add_input g (Printf.sprintf "x%d" (i - 1))
  done;
  let resolve r =
    let s = signals.(r.idx) in
    if r.neg then Mig.not_ s else s
  in
  Array.iteri
    (fun k n ->
      signals.(1 + d.inputs + k) <- Mig.maj g (resolve n.a) (resolve n.b) (resolve n.c))
    d.nodes;
  Array.iteri (fun i r -> Mig.add_output g (Printf.sprintf "y%d" i) (resolve r)) d.outs;
  g

let eval d v =
  if Array.length v <> d.inputs then invalid_arg "Gen.eval: input arity mismatch";
  let vals = Array.make (1 + d.inputs + Array.length d.nodes) false in
  for i = 1 to d.inputs do
    vals.(i) <- v.(i - 1)
  done;
  let rv r = vals.(r.idx) <> r.neg in
  Array.iteri
    (fun k n ->
      let a = rv n.a and b = rv n.b and c = rv n.c in
      vals.(1 + d.inputs + k) <- (a && b) || (a && c) || (b && c))
    d.nodes;
  Array.map rv d.outs

(* --- generation ------------------------------------------------------- *)

let generate ?(max_inputs = 6) ?(max_nodes = 32) ?(max_outputs = 4) rng =
  let inputs = 1 + Splitmix.int rng max_inputs in
  let num_nodes = Splitmix.int rng (max_nodes + 1) in
  (* per-description complement density: some graphs nearly polarity-free,
     some saturated — both regimes stress the translator differently *)
  let density = 0.75 *. Splitmix.float rng in
  let const_prob = 0.06 in
  let pick_ref limit =
    let idx =
      if Splitmix.float rng < const_prob then 0
      else if limit > 8 && Splitmix.bool rng then
        (* locality bias: half the edges reach into the recent window,
           producing deep, reconvergent structure *)
        limit - Splitmix.int rng 8
      else 1 + Splitmix.int rng limit
    in
    { idx; neg = Splitmix.float rng < density }
  in
  let nodes =
    Array.init num_nodes (fun k ->
        let limit = inputs + k in
        { a = pick_ref limit; b = pick_ref limit; c = pick_ref limit })
  in
  let num_outs = 1 + Splitmix.int rng max_outputs in
  let outs = Array.init num_outs (fun _ -> pick_ref (inputs + num_nodes)) in
  { inputs; nodes; outs }

(* --- shrinking -------------------------------------------------------- *)

(* remove node [k], rerouting every later reference to the chosen child *)
let remove_node_via d k via =
  let nk = d.nodes.(k) in
  let target = match via with `A -> nk.a | `B -> nk.b | `C -> nk.c in
  let self = 1 + d.inputs + k in
  let subst r =
    if r.idx = self then { idx = target.idx; neg = r.neg <> target.neg }
    else if r.idx > self then { r with idx = r.idx - 1 }
    else r
  in
  { d with
    nodes =
      Array.init
        (Array.length d.nodes - 1)
        (fun j ->
          let n = d.nodes.(if j < k then j else j + 1) in
          { a = subst n.a; b = subst n.b; c = subst n.c });
    outs = Array.map subst d.outs }

let remove_node d k = remove_node_via d k `A

let drop_suffix d keep =
  let r = ref d in
  while Array.length !r.nodes > keep do
    r := remove_node !r (Array.length !r.nodes - 1)
  done;
  !r

let remove_out d i =
  { d with
    outs = Array.init (Array.length d.outs - 1) (fun j -> d.outs.(if j < i then j else j + 1)) }

let drop_unused_top_input d =
  (* only the highest input can be dropped without renumbering lower PIs *)
  let top = d.inputs in
  let used = ref false in
  let look r = if r.idx = top then used := true in
  Array.iter (fun n -> look n.a; look n.b; look n.c) d.nodes;
  Array.iter look d.outs;
  if !used || d.inputs <= 1 then None
  else begin
    let shift r = if r.idx > top then { r with idx = r.idx - 1 } else r in
    Some
      { inputs = d.inputs - 1;
        nodes = Array.map (fun n -> { a = shift n.a; b = shift n.b; c = shift n.c }) d.nodes;
        outs = Array.map shift d.outs }
  end

let shrink d yield =
  let n = Array.length d.nodes in
  (* big cuts first: halve the node count *)
  if n > 1 then yield (drop_suffix d (n / 2));
  (* single-node removals, late nodes first (they carry the least fanout);
     rerouting through each child in turn escapes Ω.M-collapse minima *)
  for k = n - 1 downto 0 do
    yield (remove_node_via d k `A)
  done;
  for k = n - 1 downto 0 do
    yield (remove_node_via d k `B);
    yield (remove_node_via d k `C)
  done;
  (* hoist references past a node to that node's children (keeps the node
     but shortens paths; strictly decreases the total index sum) *)
  let hoist r yield_ref =
    if r.idx > d.inputs then begin
      let j = r.idx - d.inputs - 1 in
      let nj = d.nodes.(j) in
      List.iter
        (fun (child : ref_) -> yield_ref { idx = child.idx; neg = r.neg <> child.neg })
        [ nj.a; nj.b; nj.c ]
    end
  in
  Array.iteri
    (fun i r ->
      hoist r (fun r' ->
          yield { d with outs = (let c = Array.copy d.outs in c.(i) <- r'; c) }))
    d.outs;
  Array.iteri
    (fun k node ->
      hoist node.a (fun r' ->
          yield { d with nodes = (let c = Array.copy d.nodes in c.(k) <- { node with a = r' }; c) });
      hoist node.b (fun r' ->
          yield { d with nodes = (let c = Array.copy d.nodes in c.(k) <- { node with b = r' }; c) });
      hoist node.c (fun r' ->
          yield { d with nodes = (let c = Array.copy d.nodes in c.(k) <- { node with c = r' }; c) }))
    d.nodes;
  (* fewer outputs *)
  if Array.length d.outs > 1 then begin
    yield { d with outs = [| d.outs.(0) |] };
    for i = Array.length d.outs - 1 downto 1 do
      yield (remove_out d i)
    done
  end;
  (* reroute node children to the constant *)
  Array.iteri
    (fun k node ->
      let zero = { idx = 0; neg = false } in
      if node.a.idx > 0 then yield { d with nodes = (let c = Array.copy d.nodes in c.(k) <- { node with a = zero }; c) };
      if node.b.idx > 0 then yield { d with nodes = (let c = Array.copy d.nodes in c.(k) <- { node with b = zero }; c) };
      if node.c.idx > 0 then yield { d with nodes = (let c = Array.copy d.nodes in c.(k) <- { node with c = zero }; c) })
    d.nodes;
  (* clear complement flags one at a time *)
  Array.iteri
    (fun k node ->
      let pos r = { r with neg = false } in
      if node.a.neg then yield { d with nodes = (let c = Array.copy d.nodes in c.(k) <- { node with a = pos node.a }; c) };
      if node.b.neg then yield { d with nodes = (let c = Array.copy d.nodes in c.(k) <- { node with b = pos node.b }; c) };
      if node.c.neg then yield { d with nodes = (let c = Array.copy d.nodes in c.(k) <- { node with c = pos node.c }; c) })
    d.nodes;
  Array.iteri
    (fun i r ->
      if r.neg then yield { d with outs = (let c = Array.copy d.outs in c.(i) <- { r with neg = false }; c) })
    d.outs;
  (* drop the highest input when dead *)
  match drop_unused_top_input d with Some d' -> yield d' | None -> ()

let print d =
  Printf.sprintf "desc: %d inputs, %d nodes, %d outputs\n%s" d.inputs
    (Array.length d.nodes) (Array.length d.outs)
    (Mig_io.to_string (to_mig d))

let gen_qcheck ~max_inputs ~max_nodes ~max_outputs st =
  (* fold QCheck's random state into a splitmix seed so the description
     generator itself stays a pure function of one integer *)
  let seed = Random.State.bits st lxor (Random.State.bits st lsl 30) in
  generate ~max_inputs ~max_nodes ~max_outputs (Splitmix.create seed)

let arbitrary ?(max_inputs = 6) ?(max_nodes = 32) ?(max_outputs = 4) () =
  QCheck.make ~print ~shrink (gen_qcheck ~max_inputs ~max_nodes ~max_outputs)
