module Mig = Plim_mig.Mig
module Mig_gen = Plim_mig.Mig_gen

type family = Arithmetic | Random_control

type spec = {
  name : string;
  family : family;
  pi : int;
  po : int;
  build : unit -> Mig.t;
}

(* Seeds are fixed so every run of the experiments sees the same circuit. *)
let random_control ~seed ~pi ~po ~nodes () =
  Mig_gen.random ~profile:Mig_gen.control_profile ~seed ~num_inputs:pi
    ~num_nodes:nodes ~num_outputs:po ()

(* Benchmarks reach the compiler in AND-inverter structural form, as the
   EPFL suite does (AIGER distribution); MIG rewriting then restructures
   them.  See Frontend. *)
let arithmetic name pi po build =
  { name; family = Arithmetic; pi; po; build = (fun () -> Frontend.expand (build ())) }

let control name pi po ~seed ~nodes =
  { name;
    family = Random_control;
    pi;
    po;
    build = (fun () -> Frontend.expand (random_control ~seed ~pi ~po ~nodes ())) }

let all =
  [ arithmetic "adder" 256 129 (fun () -> Arith.adder ~width:128);
    arithmetic "bar" 135 128 (fun () -> Arith.bar ~width:128);
    arithmetic "div" 128 128 (fun () -> Arith.div ~width:64);
    arithmetic "log2" 32 32 (fun () -> Arith.log2 ());
    arithmetic "max" 512 130 (fun () -> Arith.max ~width:128 ~operands:4);
    arithmetic "multiplier" 128 128 (fun () -> Arith.multiplier ~width:64);
    arithmetic "sin" 24 25 (fun () -> Arith.sin ());
    arithmetic "sqrt" 128 64 (fun () -> Arith.sqrt ~width:64);
    arithmetic "square" 64 128 (fun () -> Arith.square ~width:64);
    control "cavlc" 10 11 ~seed:0xCA51C ~nodes:180;
    control "ctrl" 7 26 ~seed:0xC321 ~nodes:48;
    arithmetic "dec" 8 256 (fun () -> Arith.dec ~bits:8);
    control "i2c" 147 142 ~seed:0x12C ~nodes:310;
    control "int2float" 11 7 ~seed:0x12F ~nodes:60;
    control "mem_ctrl" 1204 1231 ~seed:0x3EC731 ~nodes:10000;
    arithmetic "priority" 128 8 (fun () -> Arith.priority ~width:128);
    control "router" 60 30 ~seed:0x4073 ~nodes:48;
    arithmetic "voter" 1001 1 (fun () -> Arith.voter ~inputs:1001) ]

let names = List.map (fun s -> s.name) all

let cache : (string, Mig.t) Hashtbl.t = Hashtbl.create 32
let cache_lock = Mutex.create ()

(* Domain-safe memoization: lookups and inserts are locked, the build runs
   outside the lock so concurrent misses on *different* specs proceed in
   parallel.  Two domains missing the *same* spec both build it — builds are
   deterministic, so the last insert wins with an identical graph. *)
let build_cached spec =
  Mutex.lock cache_lock;
  let hit = Hashtbl.find_opt cache spec.name in
  Mutex.unlock cache_lock;
  match hit with
  | Some g -> g
  | None ->
    let g = spec.build () in
    Mutex.lock cache_lock;
    (match Hashtbl.find_opt cache spec.name with
    | Some g' ->
      Mutex.unlock cache_lock;
      g'
    | None ->
      Hashtbl.replace cache spec.name g;
      Mutex.unlock cache_lock;
      g)

let small_suite =
  [ arithmetic "adder8" 16 9 (fun () -> Arith.adder ~width:8);
    arithmetic "bar8" 11 8 (fun () -> Arith.bar ~width:8);
    arithmetic "div8" 16 16 (fun () -> Arith.div ~width:8);
    arithmetic "max8" 32 10 (fun () -> Arith.max ~width:8 ~operands:4);
    arithmetic "multiplier8" 16 16 (fun () -> Arith.multiplier ~width:8);
    arithmetic "sqrt8" 16 8 (fun () -> Arith.sqrt ~width:8);
    arithmetic "square8" 8 16 (fun () -> Arith.square ~width:8);
    arithmetic "dec4" 4 16 (fun () -> Arith.dec ~bits:4);
    arithmetic "priority16" 16 5 (fun () -> Arith.priority ~width:16);
    arithmetic "voter15" 15 1 (fun () -> Arith.voter ~inputs:15);
    control "rc_small" 10 8 ~seed:0x51A11 ~nodes:220 ]

let find name = List.find (fun s -> String.equal s.name name) (all @ small_suite)
