(** Crossbar geometry: a bounded [rows x cols] grid, a row-major cell
    placement, and a row-parallel instruction schedule.

    The flat pipeline treats the RRAM array as an unbounded vector of
    cells and executes one RM3 per step.  Real crossbars are bounded 2-D
    arrays whose peripheral drivers can fire several independent RM3s in
    the {e same row} simultaneously (one write driver per column).  This
    module adds that model as a post-pass over a compiled program — the
    instruction stream itself is untouched, so functional behaviour is
    byte-identical to the flat backend by construction:

    - {e placement}: cell [i] lives at row [i / cols], column [i mod cols];
      a program fits iff [num_cells <= rows * cols];
    - {e scheduling}: instructions are partitioned, in dependency order,
      into {e groups}.  A group is a set of mutually independent
      instructions whose touched cells (both [Cell] operands and the
      destination) all lie in one row; an instruction whose cells span
      rows can never share a group and executes alone.  Latency in
      groups is the geometry backend's cost metric, reported alongside
      the flat cycle count.

    Invariants (checked by {!validate}, relied on by the conformance
    matrix): every instruction is scheduled exactly once; group order
    respects every read-after-write, write-after-write and
    write-after-read hazard of the flat stream; multi-member groups are
    confined to a single row; [num_groups <= Program.length]; and with
    [cols = 1] the schedule degenerates to one group per instruction. *)

type grid = private { rows : int; cols : int }

val make : rows:int -> cols:int -> (grid, string) result
(** [Error] unless both dimensions are at least 1. *)

val make_exn : rows:int -> cols:int -> grid
(** @raise Invalid_argument unless both dimensions are at least 1. *)

val of_string : string -> (grid, string) result
(** Parses ["ROWSxCOLS"], e.g. ["8x64"] — the [--geometry] flag format. *)

val to_string : grid -> string
(** ["ROWSxCOLS"]; inverse of {!of_string}. *)

val pp : Format.formatter -> grid -> unit

val area : grid -> int
(** [rows * cols]: the device budget of the grid. *)

val grid_for : cols:int -> num_cells:int -> grid
(** The tightest grid of the given width: [cols] columns and
    [ceil (num_cells / cols)] rows (at least one row).
    @raise Invalid_argument if [cols < 1] or [num_cells < 0]. *)

val fits : grid -> num_cells:int -> bool
(** Whether a program footprint respects the area bound. *)

val row_of : grid -> int -> int
(** Row of a cell under row-major placement: [cell / cols]. *)

val col_of : grid -> int -> int
(** Column of a cell under row-major placement: [cell mod cols]. *)

type schedule = private {
  s_grid : grid;
  s_groups : int array array;
      (** each group: ascending instruction indices into the program *)
  s_cross_row : int;
      (** instructions whose own cells span more than one row — forced
          singleton groups *)
}

val schedule : grid -> Plim_isa.Program.t -> (schedule, string) result
(** Greedy row-parallel list scheduling over the program's dependency
    DAG.  Deterministic: ready instructions are considered in ascending
    index order, so the same program and grid always produce the same
    schedule.  [Error] if the program's [num_cells] exceeds the grid
    area. *)

val of_groups : grid -> Plim_isa.Program.t -> int array array -> schedule
(** Wrap an {e arbitrary} grouping claim as a schedule, {b without any
    checking} — the groups are copied verbatim and [s_cross_row] is
    recomputed from the program.  This is the adversarial constructor:
    schedule fuzzers build hazard-violating mutants with it and assert
    {!validate} (and the independent race detector in [Plim_certify])
    reject them.  Never feed an unvalidated [of_groups] schedule to
    grouped execution. *)

val num_groups : schedule -> int
(** The latency of the schedule, in instruction groups. *)

val max_group_size : schedule -> int
(** Widest group (1 for an empty program's degenerate schedule). *)

val validate : Plim_isa.Program.t -> schedule -> (unit, string) result
(** Re-checks every invariant of the module header against the program:
    permutation coverage, hazard ordering, single-row grouping, area.
    Used by [plimc lint --geometry] and the conformance matrix; [Error]
    carries the first violated invariant. *)
