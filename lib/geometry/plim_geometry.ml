(* Crossbar geometry: bounded rows x cols grid, row-major placement and
   row-parallel instruction grouping.  See the .mli for the model and
   its invariants.

   The scheduler is a plain list scheduler over the hazard DAG of the
   flat instruction stream.  Correctness leans on one structural fact:
   every hazard (RAW, WAW, WAR) between two instructions becomes an
   edge, so any two instructions that are simultaneously ready are
   hazard-free and may execute in the same group in either order.
   Grouping therefore only ever reorders independent instructions and
   the functional results stay byte-identical to the flat backend. *)

module Program = Plim_isa.Program
module Instruction = Plim_isa.Instruction

type grid = { rows : int; cols : int }

let make ~rows ~cols =
  if rows < 1 || cols < 1 then
    Error (Printf.sprintf "geometry: bad grid %dx%d (both sides must be >= 1)" rows cols)
  else Ok { rows; cols }

let make_exn ~rows ~cols =
  match make ~rows ~cols with Ok g -> g | Error msg -> invalid_arg msg

let of_string s =
  match String.index_opt s 'x' with
  | None -> Error (Printf.sprintf "geometry: %S is not of the form ROWSxCOLS" s)
  | Some i -> (
    let rows = String.sub s 0 i in
    let cols = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt rows, int_of_string_opt cols) with
    | Some r, Some c -> make ~rows:r ~cols:c
    | _ -> Error (Printf.sprintf "geometry: %S is not of the form ROWSxCOLS" s))

let to_string g = Printf.sprintf "%dx%d" g.rows g.cols

let pp ppf g = Format.pp_print_string ppf (to_string g)

let area g = g.rows * g.cols

let grid_for ~cols ~num_cells =
  if cols < 1 then invalid_arg "Plim_geometry.grid_for: cols must be >= 1";
  if num_cells < 0 then invalid_arg "Plim_geometry.grid_for: negative num_cells";
  { rows = max 1 ((num_cells + cols - 1) / cols); cols }

let fits g ~num_cells = num_cells <= area g

let row_of g cell = cell / g.cols

let col_of g cell = cell mod g.cols

type schedule = {
  s_grid : grid;
  s_groups : int array array;
  s_cross_row : int;
}

(* Cells an instruction touches: Cell operands plus the destination
   (which RM3 both reads and writes). *)
let touched (i : Instruction.t) =
  let ops =
    List.filter_map
      (function Instruction.Const _ -> None | Instruction.Cell c -> Some c)
      [ i.Instruction.a; i.Instruction.b ]
  in
  i.Instruction.z :: ops

let reads = touched (* z is read-modify-write, so reads = touched *)

let write (i : Instruction.t) = i.Instruction.z

(* Does every touched cell of instruction [i] lie in row [r]? *)
let in_row g r i = List.for_all (fun c -> row_of g c = r) (touched i)

(* The single row of an instruction, or None if its cells span rows. *)
let home_row g i =
  match touched i with
  | [] -> assert false (* z is always present *)
  | c :: _ -> if in_row g (row_of g c) i then Some (row_of g c) else None

let schedule g (p : Program.t) =
  if not (fits g ~num_cells:(Program.num_cells p)) then
    Error
      (Printf.sprintf "geometry: program needs %d cells but grid %s has area %d"
         (Program.num_cells p) (to_string g) (area g))
  else begin
    let n = Array.length p.Program.instrs in
    let instr i = p.Program.instrs.(i) in
    (* hazard DAG: succs adjacency (possibly with duplicate edges; indeg
       counts every edge, and every edge is decremented exactly once) *)
    let succs = Array.make n [] in
    let indeg = Array.make n 0 in
    let add_edge u v =
      if u <> v then begin
        succs.(u) <- v :: succs.(u);
        indeg.(v) <- indeg.(v) + 1
      end
    in
    let last_write = Array.make (Program.num_cells p) (-1) in
    let readers_since = Array.make (Program.num_cells p) [] in
    for i = 0 to n - 1 do
      List.iter
        (fun c ->
          if last_write.(c) >= 0 then add_edge last_write.(c) i;
          readers_since.(c) <- i :: readers_since.(c))
        (reads (instr i));
      let z = write (instr i) in
      List.iter (fun r -> add_edge r i) readers_since.(z);
      last_write.(z) <- i;
      readers_since.(z) <- []
    done;
    (* list scheduling; [ready] kept sorted ascending for determinism *)
    let rec insert x = function
      | [] -> [ x ]
      | y :: tl when y < x -> y :: insert x tl
      | l -> x :: l
    in
    let ready = ref [] in
    for i = n - 1 downto 0 do
      if indeg.(i) = 0 then ready := i :: !ready
    done;
    let groups = ref [] in
    let cross_row = ref 0 in
    let scheduled = ref 0 in
    while !ready <> [] do
      let first = List.hd !ready in
      let group, rest =
        match home_row g (instr first) with
        | None ->
          incr cross_row;
          ([ first ], List.tl !ready)
        | Some r -> List.partition (fun i -> in_row g r (instr i)) !ready
      in
      ready := rest;
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              indeg.(v) <- indeg.(v) - 1;
              if indeg.(v) = 0 then ready := insert v !ready)
            succs.(u))
        group;
      groups := Array.of_list group :: !groups;
      scheduled := !scheduled + List.length group
    done;
    (* all hazard edges point forward in the flat stream, so the DAG is
       acyclic and list scheduling always drains it *)
    assert (!scheduled = n);
    Ok { s_grid = g; s_groups = Array.of_list (List.rev !groups); s_cross_row = !cross_row }
  end

let of_groups g (p : Program.t) groups =
  let n = Array.length p.Program.instrs in
  let cross_row = ref 0 in
  Array.iter
    (Array.iter (fun i ->
         if i >= 0 && i < n && home_row g p.Program.instrs.(i) = None then
           incr cross_row))
    groups;
  { s_grid = g;
    s_groups = Array.map Array.copy groups;
    s_cross_row = !cross_row }

let num_groups s = Array.length s.s_groups

let max_group_size s =
  Array.fold_left (fun acc g -> max acc (Array.length g)) 1 s.s_groups

let validate (p : Program.t) s =
  let ( let* ) = Result.bind in
  let g = s.s_grid in
  let n = Array.length p.Program.instrs in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* () =
    if fits g ~num_cells:(Program.num_cells p) then Ok ()
    else
      fail "area: %d cells exceed grid %s (area %d)" (Program.num_cells p)
        (to_string g) (area g)
  in
  (* permutation: every instruction index scheduled exactly once *)
  let group_of = Array.make n (-1) in
  let* () =
    try
      Array.iteri
        (fun gi members ->
          if Array.length members = 0 then failwith "empty group";
          Array.iter
            (fun i ->
              if i < 0 || i >= n then failwith (Printf.sprintf "index %d out of range" i);
              if group_of.(i) >= 0 then
                failwith (Printf.sprintf "instruction %d scheduled twice" i);
              group_of.(i) <- gi)
            members)
        s.s_groups;
      Array.iteri
        (fun i gi ->
          if gi < 0 then failwith (Printf.sprintf "instruction %d never scheduled" i))
        group_of;
      Ok ()
    with Failure m -> fail "coverage: %s" m
  in
  (* groups of two or more must be confined to one row *)
  let* () =
    let bad = ref None in
    Array.iteri
      (fun gi members ->
        if Array.length members > 1 && !bad = None then
          match home_row g p.Program.instrs.(members.(0)) with
          | None -> bad := Some gi
          | Some r ->
            if
              not
                (Array.for_all (fun i -> in_row g r p.Program.instrs.(i)) members)
            then bad := Some gi)
      s.s_groups;
    match !bad with
    | Some gi -> fail "row: group %d mixes rows (or contains a cross-row op)" gi
    | None -> Ok ()
  in
  (* hazard order: scanning the flat stream, every RAW/WAW/WAR pair must
     land in strictly increasing groups *)
  let* () =
    let last_write_group = Array.make (Program.num_cells p) (-1) in
    let max_reader_group = Array.make (Program.num_cells p) (-1) in
    let bad = ref None in
    for i = 0 to n - 1 do
      if !bad = None then begin
        let gi = group_of.(i) in
        let ins = p.Program.instrs.(i) in
        List.iter
          (fun c -> if gi <= last_write_group.(c) then bad := Some (i, c, "RAW"))
          (reads ins);
        let z = write ins in
        if gi <= max_reader_group.(z) then bad := Some (i, z, "WAR");
        List.iter
          (fun c -> max_reader_group.(c) <- max max_reader_group.(c) gi)
          (reads ins);
        last_write_group.(z) <- gi;
        max_reader_group.(z) <- gi
      end
    done;
    match !bad with
    | Some (i, c, kind) ->
      fail "hazard: instruction %d violates %s ordering on cell %d" i kind c
    | None -> Ok ()
  in
  let* () =
    if num_groups s <= n || n = 0 then Ok ()
    else fail "latency: %d groups exceed %d instructions" (num_groups s) n
  in
  Ok ()
