module Vec = Plim_util.Vec
module Metrics = Plim_obs.Metrics
module Trace = Plim_obs.Trace

type strategy = Lifo | Fifo | Min_write

let m_requests = Metrics.counter "alloc.requests"
let m_pool_hits = Metrics.counter "alloc.pool_hits"
let m_fresh = Metrics.counter "alloc.fresh_cells"
let m_released = Metrics.counter "alloc.released"
let m_retired = Metrics.counter "alloc.retired_cells"
let m_writes = Metrics.counter "alloc.writes"

(* Binary min-heap over (writes, cell).  Keys are stable while a cell is
   pooled: pooled devices are dead and receive no writes. *)
module Heap = struct
  type t = {
    mutable data : (int * int) array;
    mutable len : int;
  }

  let create () = { data = Array.make 64 (0, -1); len = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if h.data.(i) < h.data.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.len && h.data.(l) < h.data.(!smallest) then smallest := l;
    if r < h.len && h.data.(r) < h.data.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h entry =
    if h.len = Array.length h.data then begin
      let data = Array.make (2 * h.len) (0, -1) in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end;
    h.data.(h.len) <- entry;
    h.len <- h.len + 1;
    sift_up h (h.len - 1)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      if h.len > 0 then sift_down h 0;
      Some top
    end

  let length h = h.len
end

let m_faulty_skipped = Metrics.counter "alloc.faulty_skipped"

type t = {
  strategy : strategy;
  max_write : int option;
  is_faulty : int -> bool;
  mutable faulty_skipped : int;
  writes : int Vec.t;   (* per ever-allocated device *)
  stack : int Vec.t;    (* Lifo/Fifo pool *)
  mutable fifo_head : int;
  heap : Heap.t;        (* Min_write pool *)
}

let create ?max_write ?(is_faulty = fun _ -> false) ~strategy () =
  (match max_write with
  | Some w when w < 3 -> invalid_arg "Alloc.create: max_write must be >= 3"
  | Some _ | None -> ());
  { strategy;
    max_write;
    is_faulty;
    faulty_skipped = 0;
    writes = Vec.create ~dummy:0 ();
    stack = Vec.create ~dummy:(-1) ();
    fifo_head = 0;
    heap = Heap.create () }

let writes_of t cell = Vec.get t.writes cell

let total_allocated t = Vec.length t.writes

let write_counts t = Vec.to_array t.writes

let can_write t cell =
  match t.max_write with
  | None -> true
  | Some w -> writes_of t cell + 1 <= w

(* Devices re-entering the pool must accommodate a constant load plus an
   RM3 (two writes); anything more worn is retired. *)
let poolable t cell =
  match t.max_write with
  | None -> true
  | Some w -> writes_of t cell + 2 <= w

let note_write t cell =
  (match t.max_write with
  | Some w when writes_of t cell + 1 > w ->
    invalid_arg (Printf.sprintf "Alloc.note_write: cell %d exceeds cap %d" cell w)
  | Some _ | None -> ());
  let writes = writes_of t cell + 1 in
  Vec.set t.writes cell writes;
  Metrics.incr m_writes;
  if Trace.enabled () then
    Trace.emit "alloc.write" ~args:[ ("cell", Int cell); ("writes", Int writes) ]

(* Fault-aware mode: physical cells the fault map marks bad are claimed
   (they occupy address space — the paper's #R counts them) but never
   handed out, never pooled and never written. *)
let rec fresh t =
  ignore (Vec.push t.writes 0);
  let cell = Vec.length t.writes - 1 in
  if t.is_faulty cell then begin
    t.faulty_skipped <- t.faulty_skipped + 1;
    Metrics.incr m_faulty_skipped;
    if Trace.enabled () then Trace.emit "alloc.skip_faulty" ~args:[ ("cell", Int cell) ];
    fresh t
  end
  else begin
    Metrics.incr m_fresh;
    if Trace.enabled () then Trace.emit "alloc.fresh" ~args:[ ("cell", Int cell) ];
    cell
  end

let release t cell =
  if cell < 0 || cell >= total_allocated t then
    invalid_arg "Alloc.release: unknown device";
  if t.is_faulty cell then invalid_arg "Alloc.release: faulty device";
  if poolable t cell then begin
    Metrics.incr m_released;
    if Trace.enabled () then
      Trace.emit "alloc.release"
        ~args:[ ("cell", Int cell); ("writes", Int (writes_of t cell)) ];
    match t.strategy with
    | Lifo | Fifo -> ignore (Vec.push t.stack cell)
    | Min_write -> Heap.push t.heap (writes_of t cell, cell)
  end
  else begin
    Metrics.incr m_retired;
    if Trace.enabled () then
      Trace.emit "alloc.retire"
        ~args:[ ("cell", Int cell); ("writes", Int (writes_of t cell)) ]
  end

let fits t needed cell =
  match t.max_write with
  | None -> true
  | Some w -> writes_of t cell + needed <= w

let request_cell ~needed t =
  match t.strategy with
  | Lifo ->
    (* pop until a device fits; re-push the skipped ones preserving order *)
    let rec hunt stash =
      match Vec.pop t.stack with
      | None ->
        List.iter (fun c -> ignore (Vec.push t.stack c)) stash;
        fresh t
      | Some cell ->
        if fits t needed cell then begin
          List.iter (fun c -> ignore (Vec.push t.stack c)) stash;
          cell
        end
        else hunt (cell :: stash)
    in
    hunt []
  | Fifo ->
    let rec hunt stash =
      if t.fifo_head < Vec.length t.stack then begin
        let cell = Vec.get t.stack t.fifo_head in
        t.fifo_head <- t.fifo_head + 1;
        if fits t needed cell then begin
          (* skipped devices rejoin at the back of the queue *)
          List.iter (fun c -> ignore (Vec.push t.stack c)) (List.rev stash);
          Some cell
        end
        else hunt (cell :: stash)
      end
      else begin
        List.iter (fun c -> ignore (Vec.push t.stack c)) (List.rev stash);
        None
      end
    in
    let result = hunt [] in
    (* periodically compact the consumed prefix *)
    if t.fifo_head > 1024 && t.fifo_head * 2 > Vec.length t.stack then begin
      let remaining =
        Array.sub (Vec.to_array t.stack) t.fifo_head
          (Vec.length t.stack - t.fifo_head)
      in
      Vec.clear t.stack;
      Array.iter (fun c -> ignore (Vec.push t.stack c)) remaining;
      t.fifo_head <- 0
    end;
    (match result with Some cell -> cell | None -> fresh t)
  | Min_write ->
    (* the least-written device is the most capable: if it does not fit,
       no pooled device does *)
    (match Heap.pop t.heap with
    | Some (_, cell) when fits t needed cell -> cell
    | Some entry ->
      Heap.push t.heap entry;
      fresh t
    | None -> fresh t)

let request ?(needed = 2) t =
  Metrics.incr m_requests;
  let allocated_before = total_allocated t in
  let cell = request_cell ~needed t in
  let from_pool = total_allocated t = allocated_before in
  if from_pool then Metrics.incr m_pool_hits;
  if Trace.enabled () then
    Trace.emit "alloc.request"
      ~args:[ ("cell", Int cell); ("from_pool", Bool from_pool) ];
  cell

let free_count t =
  match t.strategy with
  | Lifo -> Vec.length t.stack
  | Fifo -> Vec.length t.stack - t.fifo_head
  | Min_write -> Heap.length t.heap

let faulty_skipped t = t.faulty_skipped
