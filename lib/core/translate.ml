module Mig = Plim_mig.Mig
module Vec = Plim_util.Vec
module I = Plim_isa.Instruction
module Metrics = Plim_obs.Metrics
module Trace = Plim_obs.Trace

let m_instrs = Metrics.counter "translate.instrs"
let m_in_place = Metrics.counter "translate.in_place_rm3"
let m_complements = Metrics.counter "translate.complements"
let m_copies = Metrics.counter "translate.copies"

type ctx = {
  g : Mig.t;
  alloc : Alloc.t;
  cell_of : int array;
  pending : int array;
  pi_cell : int array;   (* PI index -> load cell, stable for the PI map *)
  instrs : I.t Vec.t;
  dest_min_write : bool;
  mutable on_pending_one : int -> unit;
}

let make_ctx ?(dest_min_write = false) g alloc =
  let n = Mig.num_nodes g in
  let fanout = Mig.fanout_counts g in
  let out_refs = Mig.output_refs g in
  let pending = Array.init n (fun i -> fanout.(i) + out_refs.(i)) in
  { g;
    alloc;
    cell_of = Array.make n (-1);
    pending;
    pi_cell = Array.make (Mig.num_inputs g) (-1);
    instrs = Vec.create ~dummy:(I.set_const false 0) ();
    dest_min_write;
    on_pending_one = (fun _ -> ()) }

let emit ctx instr =
  ignore (Vec.push ctx.instrs instr);
  Metrics.incr m_instrs;
  Alloc.note_write ctx.alloc instr.I.z

let place_inputs ctx =
  for pi = 0 to Mig.num_inputs ctx.g - 1 do
    let id = Mig.node_of (Mig.input_signal ctx.g pi) in
    let cell = Alloc.request ctx.alloc in
    ctx.cell_of.(id) <- cell;
    ctx.pi_cell.(pi) <- cell;
    (* an unused input still occupies a device at load time, but it can be
       reclaimed immediately for computation *)
    if ctx.pending.(id) = 0 then Alloc.release ctx.alloc cell
  done

(* --- helpers producing operand values ------------------------------- *)

(* constant signals carry their value in the polarity bit *)
let const_value s =
  assert (Mig.is_const s);
  Mig.is_complemented s

let cell_of_child ctx s =
  let c = ctx.cell_of.(Mig.node_of s) in
  assert (c >= 0);
  c

(* cell freshly loaded with !v where the child's device holds v:
   set tmp := 1; RM3(0, v, tmp) -> <0, !v, 1> = !v *)
let materialize_complement ?(needed = 2) ctx s =
  Metrics.incr m_complements;
  let src = cell_of_child ctx s in
  let tmp = Alloc.request ~needed ctx.alloc in
  emit ctx (I.set_const true tmp);
  emit ctx (I.rm3 ~a:(I.Const false) ~b:(I.Cell src) ~z:tmp);
  tmp

(* cell freshly loaded with v: set tmp := 0; RM3(v, 0, tmp) -> <v,1,0> = v.
   Always used as the destination of the consuming RM3, hence 3 writes. *)
let materialize_copy ctx s =
  Metrics.incr m_copies;
  let src = cell_of_child ctx s in
  let tmp = Alloc.request ~needed:3 ctx.alloc in
  emit ctx (I.set_const false tmp);
  emit ctx (I.rm3 ~a:(I.Cell src) ~b:(I.Const false) ~z:tmp);
  tmp

(* --- role costs ------------------------------------------------------ *)

let in_place_ok ctx s =
  (not (Mig.is_const s))
  && (not (Mig.is_complemented s))
  && ctx.pending.(Mig.node_of s) = 1
  && Alloc.can_write ctx.alloc (cell_of_child ctx s)

(* extra instructions needed to use child [s] in each RM3 role *)
let cost_p s = if Mig.is_const s then 0 else if Mig.is_complemented s then 2 else 0
let cost_q s = if Mig.is_const s then 0 else if Mig.is_complemented s then 0 else 2

let cost_z ctx s =
  if Mig.is_const s then 1
  else if Mig.is_complemented s then 2
  else if in_place_ok ctx s then 0
  else 2

let permutations = [ (0, 1, 2); (0, 2, 1); (1, 0, 2); (1, 2, 0); (2, 0, 1); (2, 1, 0) ]

let compute_node ctx id =
  match Mig.kind ctx.g id with
  | Mig.Const | Mig.Input _ ->
    invalid_arg "Translate.compute_node: not a majority node"
  | Mig.Maj (a, b, c) ->
    let children = [| a; b; c |] in
    let cost (p, q, z) =
      cost_p children.(p) + cost_q children.(q) + cost_z ctx children.(z)
    in
    (* pick the cheapest role assignment; optional ablation tie-break:
       among in-place destinations prefer the least-written device *)
    let better (cost_x, perm_x) (cost_y, perm_y) =
      if cost_x <> cost_y then cost_x < cost_y
      else if not ctx.dest_min_write then false (* keep first *)
      else begin
        let z_writes (_, _, z) =
          let s = children.(z) in
          if in_place_ok ctx s then Alloc.writes_of ctx.alloc (cell_of_child ctx s)
          else max_int
        in
        z_writes perm_x < z_writes perm_y
      end
    in
    let best =
      List.fold_left
        (fun acc perm ->
          let entry = (cost perm, perm) in
          match acc with
          | None -> Some entry
          | Some current -> if better entry current then Some entry else Some current)
        None permutations
    in
    let _, (pi_, qi_, zi_) =
      match best with Some e -> e | None -> assert false
    in
    let sp = children.(pi_) and sq = children.(qi_) and sz = children.(zi_) in
    let temps = ref [] in
    (* destination first (never clobbers a child device) *)
    let consumed_in_place = ref false in
    let zcell =
      if Mig.is_const sz then begin
        let cell = Alloc.request ctx.alloc in
        emit ctx (I.set_const (const_value sz) cell);
        cell
      end
      else if Mig.is_complemented sz then materialize_complement ~needed:3 ctx sz
      else if in_place_ok ctx sz then begin
        consumed_in_place := true;
        Metrics.incr m_in_place;
        cell_of_child ctx sz
      end
      else materialize_copy ctx sz
    in
    let p_operand =
      if Mig.is_const sp then I.Const (const_value sp)
      else if Mig.is_complemented sp then begin
        let tmp = materialize_complement ctx sp in
        temps := tmp :: !temps;
        I.Cell tmp
      end
      else I.Cell (cell_of_child ctx sp)
    in
    let q_operand =
      if Mig.is_const sq then I.Const (not (const_value sq))
      else if Mig.is_complemented sq then I.Cell (cell_of_child ctx sq)
      else begin
        let tmp = materialize_complement ctx sq in
        temps := tmp :: !temps;
        I.Cell tmp
      end
    in
    emit ctx (I.rm3 ~a:p_operand ~b:q_operand ~z:zcell);
    if Trace.enabled () then
      Trace.emit "translate.rm3"
        ~args:
          [ ("node", Int id); ("z", Int zcell);
            ("in_place", Bool !consumed_in_place) ];
    ctx.cell_of.(id) <- zcell;
    (* temporaries are dead once the instruction has executed *)
    List.iter (fun tmp -> Alloc.release ctx.alloc tmp) !temps;
    (* child bookkeeping: decrement uses, free dead devices *)
    let finish_child s =
      let n = Mig.node_of s in
      if n <> 0 then begin
        ctx.pending.(n) <- ctx.pending.(n) - 1;
        if ctx.pending.(n) = 0 then begin
          if !consumed_in_place && n = Mig.node_of sz then
            (* device now holds this node's value *)
            ctx.cell_of.(n) <- -1
          else begin
            Alloc.release ctx.alloc ctx.cell_of.(n);
            ctx.cell_of.(n) <- -1
          end
        end
        else if ctx.pending.(n) = 1 then ctx.on_pending_one n
      end
    in
    finish_child a;
    finish_child b;
    finish_child c

let materialize_outputs ctx =
  let outs = Mig.outputs ctx.g in
  (* A node referenced uncomplemented keeps its device: that cell IS the
     output.  A node referenced only through complements is dead once its
     last complement is materialized — release its device so the remaining
     outputs' temporaries reuse it instead of opening fresh cells. *)
  let direct = Hashtbl.create 16 in
  Array.iter
    (fun (_, s) ->
      let n = Mig.node_of s in
      if n <> 0 && not (Mig.is_complemented s) then Hashtbl.replace direct n ())
    outs;
  let complement_cache = Hashtbl.create 16 in
  Array.map
    (fun (name, s) ->
      let n = Mig.node_of s in
      if n = 0 then begin
        let cell = Alloc.request ctx.alloc in
        emit ctx (I.set_const (const_value s) cell);
        (name, cell)
      end
      else begin
        let c = ctx.cell_of.(n) in
        assert (c >= 0);
        let finish () =
          ctx.pending.(n) <- ctx.pending.(n) - 1;
          if ctx.pending.(n) = 0 && not (Hashtbl.mem direct n) then begin
            Alloc.release ctx.alloc c;
            ctx.cell_of.(n) <- -1
          end
        in
        if not (Mig.is_complemented s) then begin
          finish ();
          (name, c)
        end
        else
          match Hashtbl.find_opt complement_cache n with
          | Some cell ->
            finish ();
            (name, cell)
          | None ->
            let cell = materialize_complement ctx (Mig.signal n false) in
            Hashtbl.replace complement_cache n cell;
            finish ();
            (name, cell)
      end)
    outs
