module Mig = Plim_mig.Mig
module Recipe = Plim_rewrite.Recipe
module Program = Plim_isa.Program
module Stats = Plim_stats.Stats
module Vec = Plim_util.Vec
module Obs = Plim_obs.Obs

type config = {
  rewriting : Recipe.recipe;
  effort : int;
  selection : Select.policy;
  allocation : Alloc.strategy;
  max_write : int option;
  dest_min_write : bool;
}

let naive =
  { rewriting = Recipe.No_rewriting;
    effort = 0;
    selection = Select.In_order;
    allocation = Alloc.Lifo;
    max_write = None;
    dest_min_write = false }

let dac16 =
  { naive with rewriting = Recipe.Algorithm1; effort = 5; selection = Select.Release_first }

let min_write = { dac16 with allocation = Alloc.Min_write }

let endurance_rewrite = { min_write with rewriting = Recipe.Algorithm2 }

let endurance_full = { endurance_rewrite with selection = Select.Level_first }

let with_cap w config = { config with max_write = Some w }

let config_name config =
  let uncapped = { config with max_write = None } in
  let base =
    if uncapped = naive then "naive"
    else if uncapped = dac16 then "dac16"
    else if uncapped = min_write then "min-write"
    else if uncapped = endurance_rewrite then "endurance-rewrite"
    else if uncapped = endurance_full then "endurance-full"
    else
      Printf.sprintf "%s/%s/%s"
        (Recipe.recipe_name config.rewriting)
        (Select.policy_name config.selection)
        (match config.allocation with
        | Alloc.Lifo -> "lifo"
        | Alloc.Fifo -> "fifo"
        | Alloc.Min_write -> "min-write")
  in
  match config.max_write with
  | None -> base
  | Some w -> Printf.sprintf "%s+cap%d" base w

let pp_config ppf config = Format.pp_print_string ppf (config_name config)

type result = {
  program : Program.t;
  rewritten : Mig.t;
  write_summary : Stats.summary;
  config : config;
}

let compile_rewritten ?is_faulty config g =
  Obs.span "pipeline.compile_rewritten" @@ fun () ->
  let alloc =
    Alloc.create ?max_write:config.max_write ?is_faulty ~strategy:config.allocation ()
  in
  let ctx = Translate.make_ctx ~dest_min_write:config.dest_min_write g alloc in
  Obs.span "pipeline.place_inputs" (fun () -> Translate.place_inputs ctx);
  let sel =
    Obs.span "pipeline.select_setup" (fun () ->
        Select.create ~policy:config.selection g ~pending:ctx.pending)
  in
  ctx.Translate.on_pending_one <- Select.child_pending_dropped_to_one sel;
  Obs.span "pipeline.translate" (fun () ->
      let rec loop () =
        match Select.pop sel with
        | None -> ()
        | Some id ->
          Translate.compute_node ctx id;
          Select.computed sel id;
          loop ()
      in
      loop ());
  let po_cells =
    Obs.span "pipeline.outputs" (fun () -> Translate.materialize_outputs ctx)
  in
  let pi_cells =
    Array.init (Mig.num_inputs g) (fun pi ->
        (Mig.input_name g pi, ctx.Translate.pi_cell.(pi)))
  in
  let program =
    Program.make
      ~instrs:(Vec.to_array ctx.Translate.instrs)
      ~num_cells:(Alloc.total_allocated alloc)
      ~pi_cells ~po_cells
  in
  (* a MIG with no inputs and no outputs allocates nothing: the summary of
     an empty write-count array is the all-zero summary *)
  { program;
    rewritten = g;
    write_summary = Stats.summarize (Alloc.write_counts alloc);
    config }

let compile ?is_faulty config mig =
  Obs.span "pipeline.compile" @@ fun () ->
  let g =
    Obs.span "pipeline.rewrite" (fun () ->
        Recipe.run config.rewriting ~effort:config.effort mig)
  in
  compile_rewritten ?is_faulty config g
