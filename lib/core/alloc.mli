(** RRAM device allocator used during PLiM compilation.

    Owns the pool of freed devices, the per-device (static) write counters
    and the two direct endurance-management techniques of the paper:

    - {b minimum write count strategy}: [request] returns the free device
      with the smallest write count ([Min_write]);
    - {b maximum write count strategy}: with [max_write = Some w], devices
      whose count reached the cap are retired from the pool and are
      refused as in-place RM3 destinations, forcing the compiler to spend
      extra instructions and devices instead of wearing cells past [w].

    [Lifo] reuse is the naive baseline (most recently freed device first —
    maximally unbalanced); [Fifo] rotates the pool and is kept as an
    ablation point between the two. *)

type strategy = Lifo | Fifo | Min_write

type t

val create : ?max_write:int -> ?is_faulty:(int -> bool) -> strategy:strategy -> unit -> t
(** [is_faulty] puts the allocator in fault-aware mode: physical device
    indices it marks bad (e.g. a {!Plim_fault.Fault_model.cell_fault}
    oracle from a known fault map) are skipped — they still occupy
    address space and count toward {!total_allocated}, but are never
    handed out, so the compiled program never touches them.
    @raise Invalid_argument if [max_write < 3] (at least a constant load
    plus an RM3 must fit in any fresh device for compilation to make
    progress). *)

val request : ?needed:int -> t -> int
(** [request ?needed t] is a device guaranteed to accept at least [needed]
    (default 2) further writes under the cap: the best free device per the
    strategy, or a fresh one.  The device leaves the pool.  A destination
    that is first initialised, then RM3-copied into, and finally rewritten
    by the consuming instruction needs 3. *)

val release : t -> int -> unit
(** Returns a dead device to the pool (or retires it if it cannot take two
    more writes under the cap).  Its write count is retained. *)

val can_write : t -> int -> bool
(** Whether one more write on the device is allowed under the cap. *)

val note_write : t -> int -> unit
(** Record one write (call per emitted instruction on its destination). *)

val writes_of : t -> int -> int

val total_allocated : t -> int
(** The paper's #R: number of devices ever allocated. *)

val write_counts : t -> int array
(** Snapshot, length [total_allocated]. *)

val free_count : t -> int

val faulty_skipped : t -> int
(** Devices skipped by the fault-aware mode (0 without [is_faulty]). *)
