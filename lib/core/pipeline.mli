(** End-to-end PLiM compilation: MIG rewriting, scheduling, translation,
    allocation, and write-traffic reporting.

    The presets correspond to the paper's experimental columns:

    - {!naive}: node translation only (no rewriting, original node order,
      LIFO device reuse) — the baseline of every "impr." column;
    - {!dac16}: the PLiM compiler of DAC'16 [21] (Algorithm 1 rewriting +
      release-first node selection);
    - {!min_write}: [dac16] plus the minimum write count strategy;
    - {!endurance_rewrite}: [min_write] with the endurance-aware rewriting
      (Algorithm 2) instead of Algorithm 1;
    - {!endurance_full}: [endurance_rewrite] plus the endurance-aware node
      selection (Algorithm 3) — the paper's full proposal;
    - [with_cap w]: add the maximum write count strategy (Table III). *)

module Mig = Plim_mig.Mig
module Recipe = Plim_rewrite.Recipe
module Program = Plim_isa.Program
module Stats = Plim_stats.Stats

type config = {
  rewriting : Recipe.recipe;
  effort : int;                  (** rewriting cycles; the paper uses 5 *)
  selection : Select.policy;
  allocation : Alloc.strategy;
  max_write : int option;        (** the maximum write count strategy *)
  dest_min_write : bool;         (** ablation-only destination tie-break *)
}

val naive : config
val dac16 : config
val min_write : config
val endurance_rewrite : config
val endurance_full : config
val with_cap : int -> config -> config
val config_name : config -> string
val pp_config : Format.formatter -> config -> unit

type result = {
  program : Program.t;
  rewritten : Mig.t;            (** the MIG actually compiled *)
  write_summary : Stats.summary;
  config : config;
}

val compile : ?is_faulty:(int -> bool) -> config -> Mig.t -> result
(** [is_faulty] enables the fault-aware allocation mode
    ({!Alloc.create}): the compiled program avoids the marked physical
    devices entirely, trading #R for fault immunity without runtime
    remapping. *)

val compile_rewritten : ?is_faulty:(int -> bool) -> config -> Mig.t -> result
(** Like {!compile} but assumes the argument has already been rewritten
    (skips the rewriting phase) — used to share rewriting work across the
    many configurations of one benchmark. *)
