module Mig = Plim_mig.Mig
module Program = Plim_isa.Program
module Controller = Plim_machine.Plim_controller
module Crossbar = Plim_rram.Crossbar
module Splitmix = Plim_util.Splitmix

let run_and_compare mig (program : Program.t) vector =
  let expected = Mig.eval mig vector in
  let inputs =
    Array.to_list
      (Array.mapi (fun i (name, _) -> (name, vector.(i))) program.Program.pi_cells)
  in
  let outputs, xbar, _ = Controller.run program ~inputs in
  let actual = Array.of_list (List.map snd outputs) in
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "output arity mismatch: mig %d vs program %d"
         (Array.length expected) (Array.length actual))
  else begin
    let mismatch = ref None in
    Array.iteri
      (fun i e ->
        if !mismatch = None && e <> actual.(i) then mismatch := Some i)
      expected;
    match !mismatch with
    | Some i ->
      let name, _ = program.Program.po_cells.(i) in
      Error
        (Printf.sprintf "output %S differs: expected %b, machine computed %b" name
           expected.(i) actual.(i))
    | None -> Ok xbar
  end

let check_vector mig program vector =
  match run_and_compare mig program vector with
  | Ok _ -> Ok ()
  | Error e -> Error e

(* Three-way agreement: the trivial per-instruction count, the bound the
   dataflow analyzer derives from its def-use chains, and what the crossbar
   actually counted.  Each pair failing points at a different layer (ISA
   accounting, analyzer IR, machine). *)
let check_write_counts (program : Program.t) (xbar : Crossbar.t) =
  let static = Program.static_write_counts program in
  let analyzed = Plim_analyze.write_counts program in
  let dynamic = Crossbar.write_counts xbar in
  if
    Array.length static <> Array.length dynamic
    || Array.length static <> Array.length analyzed
  then Error "write-count arrays differ in length"
  else begin
    let bad = ref None in
    Array.iteri
      (fun i s ->
        if !bad = None && (s <> dynamic.(i) || s <> analyzed.(i)) then bad := Some i)
      static;
    match !bad with
    | Some i ->
      Error
        (Printf.sprintf "cell %d: static writes %d, analyzer bound %d, dynamic writes %d"
           i static.(i) analyzed.(i) dynamic.(i))
    | None -> Ok ()
  end

let vector_to_string vector =
  String.init (Array.length vector) (fun i -> if vector.(i) then '1' else '0')

(* Determinism contract: the vector stream is a pure function of [seed]
   (one splitmix64 stream, no global [Random] state anywhere below this
   point), and every failure message embeds the seed and the failing
   vector — same seed, byte-identical message. *)
let check_random ?(trials = 32) ?(seed = 0x5eed) mig program =
  let rng = Splitmix.create seed in
  let n = Mig.num_inputs mig in
  let rec go t =
    if t >= trials then Ok ()
    else begin
      let vector = Splitmix.bits rng ~width:n in
      let witness e =
        Printf.sprintf "seed 0x%X trial %d vector %s: %s" seed t
          (vector_to_string vector) e
      in
      match run_and_compare mig program vector with
      | Error e -> Error (witness e)
      | Ok xbar ->
        (match check_write_counts program xbar with
        | Error e -> Error (witness e)
        | Ok () -> go (t + 1))
    end
  in
  go 0

let check_symbolic ?order mig (program : Program.t) =
  let module Bdd = Plim_logic.Bdd in
  let module Mig_bdd = Plim_mig.Mig_bdd in
  let module I = Plim_isa.Instruction in
  let man, expected = Mig_bdd.output_bdds ?order mig in
  (* symbolic machine state: one BDD per cell, initially 0 (HRS) *)
  let cells = Array.make program.Program.num_cells (Bdd.false_ man) in
  Array.iteri
    (fun pi (_, cell) -> cells.(cell) <- Bdd.var man pi)
    program.Program.pi_cells;
  let operand = function
    | I.Const false -> Bdd.false_ man
    | I.Const true -> Bdd.true_ man
    | I.Cell i -> cells.(i)
  in
  Array.iter
    (fun (instr : I.t) ->
      let a = operand instr.I.a in
      let b = operand instr.I.b in
      let z = instr.I.z in
      cells.(z) <- Bdd.maj man a (Bdd.not_ man b) cells.(z))
    program.Program.instrs;
  let mismatch = ref None in
  Array.iteri
    (fun i (name, cell) ->
      if !mismatch = None && not (Bdd.equal cells.(cell) expected.(i)) then
        mismatch := Some name)
    program.Program.po_cells;
  match !mismatch with
  | Some name -> Error (Printf.sprintf "output %S differs symbolically" name)
  | None -> Ok ()

let check_exhaustive mig program =
  let n = Mig.num_inputs mig in
  if n > 20 then invalid_arg "Verify.check_exhaustive: too many inputs";
  let rec go m =
    if m >= 1 lsl n then Ok ()
    else begin
      let vector = Array.init n (fun i -> (m lsr i) land 1 = 1) in
      match run_and_compare mig program vector with
      | Error e -> Error (Printf.sprintf "minterm %d: %s" m e)
      | Ok _ -> go (m + 1)
    end
  in
  go 0
