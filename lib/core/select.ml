module Mig = Plim_mig.Mig
module Lazy_heap = Plim_util.Lazy_heap
module Metrics = Plim_obs.Metrics

type policy = In_order | Release_first | Level_first

let m_pops = Metrics.counter "select.pops"
let m_candidates = Metrics.counter "select.candidates"
let m_requeued = Metrics.counter "select.requeued"

let policy_name = function
  | In_order -> "in-order"
  | Release_first -> "release-first"
  | Level_first -> "level-first"

type t = {
  policy : policy;
  g : Mig.t;
  pending : int array;
  fanout_level : int array;
  children_left : int array;   (* uncomputed non-trivial children *)
  computed_mark : bool array;
  is_candidate : bool array;
  fanout_lists : int array array;
  heap : Lazy_heap.t;
}

(* Number of children whose device is freed (or consumed in place) when
   [id] is computed. *)
let releasing t id =
  match Mig.kind t.g id with
  | Mig.Maj (a, b, c) ->
    let count s =
      let n = Mig.node_of s in
      if n <> 0 && t.pending.(n) = 1 then 1 else 0
    in
    count a + count b + count c
  | Mig.Const | Mig.Input _ -> 0

let key t id =
  match t.policy with
  | In_order -> (id, 0, 0)
  | Release_first -> (- releasing t id, t.fanout_level.(id), id)
  | Level_first -> (t.fanout_level.(id), - releasing t id, id)

let add_candidate t id =
  t.is_candidate.(id) <- true;
  Metrics.incr m_candidates;
  Lazy_heap.insert t.heap (key t id) id

let create ~policy g ~pending =
  let n = Mig.num_nodes g in
  let levels = Mig.levels g in
  let out_refs = Mig.output_refs g in
  let fanout_lists = Mig.fanouts g in
  let fanout_level = Array.make n 0 in
  for id = 0 to n - 1 do
    (* level of the nearest consumer: the earliest moment the value can be
       used (and its device possibly recycled).  A primary output consumes
       the value as soon as it is produced (level + 1). *)
    let from_parents =
      Array.fold_left (fun acc p -> min acc levels.(p)) max_int fanout_lists.(id)
    in
    let from_outputs = if out_refs.(id) > 0 then levels.(id) + 1 else max_int in
    let fl = min from_parents from_outputs in
    fanout_level.(id) <- (if fl = max_int then levels.(id) + 1 else fl)
  done;
  let computed_mark = Array.make n false in
  let children_left = Array.make n 0 in
  let t =
    { policy;
      g;
      pending;
      fanout_level;
      children_left;
      computed_mark;
      is_candidate = Array.make n false;
      fanout_lists;
      heap = Lazy_heap.create ~capacity:n }
  in
  (* constants and inputs are available from the start *)
  Mig.iter_reachable_maj g (fun id ->
      match Mig.kind g id with
      | Mig.Maj (a, b, c) ->
        let needs s =
          match Mig.kind g (Mig.node_of s) with
          | Mig.Maj _ -> not t.computed_mark.(Mig.node_of s)
          | Mig.Const | Mig.Input _ -> false
        in
        let left =
          (if needs a then 1 else 0) + (if needs b then 1 else 0)
          + (if needs c then 1 else 0)
        in
        children_left.(id) <- left;
        if left = 0 then add_candidate t id
      | Mig.Const | Mig.Input _ -> ());
  t

let pop t =
  match Lazy_heap.pop_min t.heap with
  | None -> None
  | Some (_, id) ->
    t.is_candidate.(id) <- false;
    Metrics.incr m_pops;
    Some id

let computed t id =
  t.computed_mark.(id) <- true;
  Array.iter
    (fun parent ->
      if not t.computed_mark.(parent) then begin
        t.children_left.(parent) <- t.children_left.(parent) - 1;
        if t.children_left.(parent) = 0 then add_candidate t parent
      end)
    t.fanout_lists.(id)

let child_pending_dropped_to_one t id =
  (* the single remaining consumer gains a releasing device *)
  Array.iter
    (fun parent ->
      if (not t.computed_mark.(parent)) && t.is_candidate.(parent) then begin
        Metrics.incr m_requeued;
        Lazy_heap.insert t.heap (key t parent) parent
      end)
    t.fanout_lists.(id)
