(** Functional verification of compiled programs.

    Every compilation result can be executed on the crossbar machine and
    compared against direct evaluation of the source MIG — catching bugs
    in rewriting, scheduling and translation alike.  The checks also
    cross-validate the statically-derived write counts against the counts
    observed by the crossbar model. *)

module Mig = Plim_mig.Mig
module Program = Plim_isa.Program

val check_vector :
  Mig.t -> Program.t -> bool array -> (unit, string) result
(** Compare machine execution against MIG evaluation for one input
    assignment (positionally, PI declaration order). *)

val check_random :
  ?trials:int -> ?seed:int -> Mig.t -> Program.t -> (unit, string) result
(** [check_random mig program] runs [trials] (default 32) random vectors.
    Also verifies three-way per-cell write-count agreement on every trial:
    {!Plim_isa.Program.static_write_counts}, the bound
    {!Plim_analyze.write_counts} derives from its def-use chains, and the
    counts observed by the crossbar.

    Fully deterministic in [seed] (default [0x5eed]): the vector stream is
    one splitmix64 stream and no global [Random] state is consulted, so
    the same seed yields a byte-identical result — failure messages embed
    the seed and the failing input vector as a replayable witness. *)

val check_exhaustive : Mig.t -> Program.t -> (unit, string) result
(** All [2^n] vectors; intended for MIGs with at most ~12 inputs. *)

val check_symbolic :
  ?order:int array -> Mig.t -> Program.t -> (unit, string) result
(** Formal verification by symbolic execution: every memory cell holds a
    BDD over the primary inputs, each RM3 instruction updates its
    destination symbolically, and the final output cells are compared
    against the MIG's output BDDs.  Complete (no sampling); feasible
    whenever the circuit has a good variable [order] — e.g. bit-interleaved
    operands for adders and comparators ({!Plim_logic.Bdd.interleave}). *)
