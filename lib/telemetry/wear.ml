(* Crossbar wear snapshots: skew metrics and heatmap renderings of a
   per-cell write-count grid.  Everything here is a pure function of the
   counts array, so snapshots taken inside parallel campaigns stay
   deterministic. *)

module Stats = Plim_stats.Stats

type skew = {
  cells : int;
  total : int;
  max_writes : int;
  mean : float;
  stdev : float;       (* the paper's write-stdev, as a tracked metric *)
  gini : float;
  max_mean : float;    (* lifetime tail: max wear over mean wear *)
  p99 : int;
}

let skew_of counts =
  let s = Stats.summarize counts in
  { cells = s.Stats.count;
    total = s.Stats.total;
    max_writes = s.Stats.max;
    mean = s.Stats.mean;
    stdev = s.Stats.stdev;
    gini = Stats.gini counts;
    max_mean = Stats.max_mean_ratio s;
    p99 = s.Stats.p99 }

let pp_skew ppf s =
  Format.fprintf ppf
    "cells=%d total=%d max=%d mean=%.2f stdev=%.2f p99=%d gini=%.4f max/mean=%.2f"
    s.cells s.total s.max_writes s.mean s.stdev s.p99 s.gini s.max_mean

let skew_json s =
  Printf.sprintf
    "{\"cells\":%d,\"total\":%d,\"max\":%d,\"mean\":%.6g,\"stdev\":%.6g,\"p99\":%d,\"gini\":%.6g,\"max_mean\":%.6g}"
    s.cells s.total s.max_writes s.mean s.stdev s.p99 s.gini s.max_mean

(* ten intensity levels: blank = untouched, '@' = the most-worn cell *)
let shades = " .:-=+*#%@"

let shade_of ~max_writes c =
  if c <= 0 then shades.[0]
  else if max_writes <= 0 then shades.[0]
  else shades.[1 + (c * (String.length shades - 2) / max_writes)]

let default_width n =
  let rec isqrt i = if i * i >= n then i else isqrt (i + 1) in
  if n <= 0 then 1 else min 64 (max 1 (isqrt 1))

let heatmap ?width counts =
  let n = Array.length counts in
  let width =
    match width with
    | Some w when w >= 1 -> w
    | Some _ -> invalid_arg "Wear.heatmap: width must be >= 1"
    | None -> default_width n
  in
  let s = skew_of counts in
  let b = Buffer.create (n + (n / width * 8) + 128) in
  let rows = (n + width - 1) / width in
  for r = 0 to rows - 1 do
    Buffer.add_string b (Printf.sprintf "  %4d |" (r * width));
    for c = r * width to min ((r + 1) * width) n - 1 do
      Buffer.add_char b (shade_of ~max_writes:s.max_writes counts.(c))
    done;
    Buffer.add_string b "|\n"
  done;
  Buffer.add_string b
    (Printf.sprintf "  scale: '%c'=0 .. '%c'=max=%d  (%s)\n" shades.[0]
       shades.[String.length shades - 1]
       s.max_writes
       (Format.asprintf "%a" pp_skew s));
  Buffer.contents b

let heatmap_json ?width ~label counts =
  let n = Array.length counts in
  let width =
    match width with
    | Some w when w >= 1 -> w
    | Some _ -> invalid_arg "Wear.heatmap_json: width must be >= 1"
    | None -> default_width n
  in
  let b = Buffer.create (n * 4 + 128) in
  Printf.bprintf b "{\"label\":%s,\"width\":%d,\"skew\":%s,\"counts\":["
    (Plim_util.Jsonx.quote label)
    width
    (skew_json (skew_of counts));
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int c))
    counts;
  Buffer.add_string b "]}";
  Buffer.contents b
