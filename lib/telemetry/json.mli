(** Minimal JSON reader for plim-bench result files.

    Dependency-free recursive-descent parser into a plain value tree.
    Objects preserve key order; all numbers become floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
val parse_exn : string -> t
(** @raise Parse_error with an offset-bearing message on malformed input. *)

val parse_file : string -> (t, string) result
(** Reads and parses a whole file; IO errors become [Error]. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val to_float : t -> float option
val to_string : t -> string option
val to_list : t -> t list option
