(** Crossbar wear snapshots: skew metrics and heatmaps over a per-cell
    write-count grid.

    The paper's whole argument is about the *distribution* of writes
    across devices, not their total; these are the quantities that make
    the distribution observable over time: the write standard deviation
    (Tables I/III) lifted to a tracked time series, the Gini
    coefficient of the wear distribution, and the max-to-mean wear
    ratio (the lifetime tail).  All pure functions of the counts
    array — safe inside deterministic [-j N] campaigns. *)

type skew = {
  cells : int;
  total : int;
  max_writes : int;
  mean : float;
  stdev : float;     (** the paper's per-device write STDEV *)
  gini : float;      (** 0 = perfectly levelled, -> 1 = concentrated *)
  max_mean : float;  (** max wear / mean wear; 1.0 = perfectly levelled *)
  p99 : int;         (** tail write count *)
}

val skew_of : int array -> skew

val heatmap : ?width:int -> int array -> string
(** ASCII heatmap: one shade character per cell ([' '] untouched through
    ['@'] = most worn), [width] cells per row (default: the smallest
    square that fits, capped at 64), each row prefixed with its first
    cell index, followed by a scale/skew legend line.
    @raise Invalid_argument when [width < 1]. *)

val heatmap_json : ?width:int -> label:string -> int array -> string
(** JSON object [{label, width, skew, counts}] of the same snapshot. *)

val skew_json : skew -> string

val pp_skew : Format.formatter -> skew -> unit
