(* Trajectory engine: diff two plim-bench result files (v1 or v2) and
   decide whether the newer one is a perf/endurance regression.

   Every tracked metric is a cost — instructions, devices, write
   maximum/stdev/tail, storage spans, wear skew — so "worse" always
   means "larger".  A metric regresses when it grows beyond BOTH the
   relative threshold and the absolute epsilon, which keeps identical
   runs at exactly zero regressions (the CI perf-gate invariant) while
   tolerating genuine noise when a human lowers the threshold to 0.

   Wall-clock phases deliberately do not gate: they vary run to run and
   between machines.  They are reported separately as context. *)

type delta = {
  benchmark : string;
  config : string;
  metric : string;
  baseline : float;
  current : float;
  change_pct : float;   (* (current - baseline) / baseline * 100; nan when
                           from_zero — growth from 0 has no percentage *)
  from_zero : bool;     (* baseline = 0 and current > 0 *)
  regression : bool;
}

type comparison = {
  baseline_path : string;
  current_path : string;
  baseline_schema : string;
  current_schema : string;
  threshold_pct : float;
  min_abs : float;
  deltas : delta list;            (* every compared metric, file order *)
  regressions : delta list;       (* worst (by change_pct) first *)
  improvements : delta list;      (* metrics that shrank beyond threshold *)
  baseline_only : string list;    (* benchmark/config keys that vanished *)
  current_only : string list;     (* keys with no baseline to compare *)
  new_metrics : string list;      (* metrics only the current file has *)
}

(* ------------------------------------------------------------------ *)
(* Row extraction: one row per benchmark x config, metrics flattened to
   (name, value) pairs.  v1 files simply lack the quantile and skew
   fields; only metrics present in BOTH files are compared, which is
   the whole v1 -> v2 migration story. *)

let num path j = Option.bind (Json.member path j) Json.to_float

let sub_num obj field j =
  Option.bind (Json.member obj j) (fun o -> num field o)

let metrics_of_config c =
  let take name v acc = match v with Some f -> (name, f) :: acc | None -> acc in
  []
  |> take "instructions" (num "instructions" c)
  |> take "rram_cells" (num "rram_cells" c)
  |> take "writes.total" (sub_num "writes" "total" c)
  |> take "writes.max" (sub_num "writes" "max" c)
  |> take "writes.stdev" (sub_num "writes" "stdev" c)
  |> take "writes.p50" (sub_num "writes" "p50" c)
  |> take "writes.p90" (sub_num "writes" "p90" c)
  |> take "writes.p99" (sub_num "writes" "p99" c)
  |> take "skew.gini" (sub_num "skew" "gini" c)
  |> take "skew.max_mean" (sub_num "skew" "max_mean" c)
  |> take "storage.total_span" (sub_num "storage" "total_span" c)
  |> take "storage.max_span" (sub_num "storage" "max_span" c)
  |> take "dead_writes" (num "dead_writes" c)
  |> List.rev

type row = {
  r_benchmark : string;
  r_config : string;
  r_metrics : (string * float) list;
}

let schema_of j =
  match Option.bind (Json.member "schema" j) Json.to_string with
  | Some s -> s
  | None -> "unknown"

(* plim-serve/v1 rows: the service experiments' cost metrics.  Wall-clock
   throughput (wall_s, requests_per_sec) deliberately stays out — like
   the phase totals, it varies run to run and never gates. *)
let serve_metrics_of row =
  let take name v acc = match v with Some f -> (name, f) :: acc | None -> acc in
  []
  |> take "latency.p50" (sub_num "latency" "p50" row)
  |> take "latency.p99" (sub_num "latency" "p99" row)
  |> take "total_cycles" (num "total_cycles" row)
  |> take "groups.p50" (sub_num "groups" "p50" row)
  |> take "groups.p99" (sub_num "groups" "p99" row)
  |> take "groups.total" (sub_num "groups" "total" row)
  |> take "fleet.gini" (sub_num "fleet" "gini" row)
  |> take "fleet.max_mean" (sub_num "fleet" "max_mean" row)
  |> take "cache_misses" (num "cache_misses" row)
  |> take "incorrect" (num "incorrect" row)
  |> take "rejected" (num "rejected" row)
  |> List.rev

let serve_rows_of j =
  match Option.bind (Json.member "serve" j) Json.to_list with
  | None -> []
  | Some rows ->
    List.map
      (fun row ->
        let label =
          Option.value ~default:"?"
            (Option.bind (Json.member "label" row) Json.to_string)
        in
        { r_benchmark = "serve:" ^ label; r_config = "serve";
          r_metrics = serve_metrics_of row })
      rows

(* plim-horizon/v1 rows: only cost-like metrics fold into the gate
   (larger = worse).  Lifetimes (ttff, half-life) are better-larger and
   would read as regressions when they improve, so they stay out of the
   comparison and live in the row for humans and dashboards. *)
let horizon_metrics_of row =
  let take name v acc = match v with Some f -> (name, f) :: acc | None -> acc in
  []
  |> take "capacity_loss" (num "capacity_loss" row)
  |> take "dead_shards" (num "dead_shards" row)
  |> take "skew.gini" (sub_num "skew" "gini" row)
  |> take "skew.max_mean" (sub_num "skew" "max_mean" row)
  |> take "sampled_epochs" (num "sampled_epochs" row)
  |> List.rev

let horizon_rows_of j =
  match Option.bind (Json.member "horizon" j) Json.to_list with
  | None -> []
  | Some rows ->
    List.map
      (fun row ->
        let label =
          Option.value ~default:"?"
            (Option.bind (Json.member "label" row) Json.to_string)
        in
        { r_benchmark = "horizon:" ^ label; r_config = "horizon";
          r_metrics = horizon_metrics_of row })
      rows

(* plim-bench/v2 "geometry" rows: the crossbar-geometry backend's
   area/latency trade-off curve.  Group count and cross-row singletons
   are cost metrics (smaller = better) and gate like instruction counts;
   area is fixed by the grid choice, so it only gates against a baseline
   run at the same grid (the key embeds the grid label). *)
let geometry_metrics_of row =
  let take name v acc = match v with Some f -> (name, f) :: acc | None -> acc in
  []
  |> take "groups" (num "groups" row)
  |> take "cross_row" (num "cross_row" row)
  |> take "max_group" (num "max_group" row)
  |> take "instructions" (num "instructions" row)
  |> List.rev

let geometry_rows_of j =
  match Option.bind (Json.member "geometry" j) Json.to_list with
  | None -> []
  | Some rows ->
    List.map
      (fun row ->
        let str k =
          Option.value ~default:"?" (Option.bind (Json.member k row) Json.to_string)
        in
        { r_benchmark = "geometry:" ^ str "benchmark" ^ "@" ^ str "grid";
          r_config = str "config";
          r_metrics = geometry_metrics_of row })
      rows

(* plim-cert/v1 rows: static wear-bound certificates as cert:<label>
   pseudo-benchmarks.  Only cost-like quantities gate (a larger write
   ceiling, per-cell rate bound or leveling overhead is a worse static
   guarantee); the lifetime brackets are better-larger and [-1]-when-
   unbounded, so they stay out of the regression comparison. *)
let cert_metrics_of row =
  let take name v acc = match v with Some f -> (name, f) :: acc | None -> acc in
  []
  |> take "writes_upper" (num "writes_upper" row)
  |> take "rate_cell_upper" (num "rate_cell_upper" row)
  |> take "overhead" (num "overhead" row)
  |> List.rev

let cert_rows_of j =
  match Option.bind (Json.member "cert" j) Json.to_list with
  | None -> []
  | Some rows ->
    List.map
      (fun row ->
        let label =
          Option.value ~default:"?"
            (Option.bind (Json.member "label" row) Json.to_string)
        in
        { r_benchmark = "cert:" ^ label; r_config = "cert";
          r_metrics = cert_metrics_of row })
      rows

let rows_of j =
  match Option.bind (Json.member "benchmarks" j) Json.to_list with
  | None -> Error "no \"benchmarks\" array (not a plim-bench file?)"
  | Some benchmarks ->
    let rows =
      List.concat_map
        (fun b ->
          let name =
            Option.value ~default:"?"
              (Option.bind (Json.member "name" b) Json.to_string)
          in
          let configs =
            Option.value ~default:[]
              (Option.bind (Json.member "configs" b) Json.to_list)
          in
          List.map
            (fun c ->
              let config =
                Option.value ~default:"?"
                  (Option.bind (Json.member "config" c) Json.to_string)
              in
              { r_benchmark = name; r_config = config;
                r_metrics = metrics_of_config c })
            configs)
        benchmarks
    in
    Ok (rows @ serve_rows_of j @ horizon_rows_of j @ cert_rows_of j
        @ geometry_rows_of j)

let key r = r.r_benchmark ^ "/" ^ r.r_config

let shrank d ~threshold_pct ~min_abs =
  d.baseline -. d.current > min_abs
  && d.current < d.baseline *. (1.0 -. (threshold_pct /. 100.0))

let rec keep n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: keep (n - 1) tl

(* ------------------------------------------------------------------ *)

let compare_json ?(threshold_pct = 2.0) ?(min_abs = 1e-9) ~baseline_path ~current_path
    baseline current =
  let ( let* ) = Result.bind in
  let* base_rows = rows_of baseline in
  let* cur_rows = rows_of current in
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace cur_tbl (key r) r) cur_rows;
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace base_tbl (key r) r) base_rows;
  let deltas =
    List.concat_map
      (fun br ->
        match Hashtbl.find_opt cur_tbl (key br) with
        | None -> []
        | Some cr ->
          List.filter_map
            (fun (metric, bv) ->
              match List.assoc_opt metric cr.r_metrics with
              | None -> None
              | Some cv ->
                (* A 0 -> x growth has no meaningful percentage: pinning it
                   to a sentinel (the old code used 100.0) made 0 -> 1e-6
                   outrank a genuine 80% regression in the report.  Mark it
                   [from_zero] and rank those deltas separately instead. *)
                let from_zero = bv = 0.0 && cv <> 0.0 in
                let change_pct =
                  if from_zero then Float.nan
                  else if bv = 0.0 then 0.0
                  else (cv -. bv) /. bv *. 100.0
                in
                let grew = cv -. bv > min_abs in
                let regression =
                  grew
                  && (if bv = 0.0 then true
                      else cv > bv *. (1.0 +. (threshold_pct /. 100.0)))
                in
                Some
                  { benchmark = br.r_benchmark;
                    config = br.r_config;
                    metric;
                    baseline = bv;
                    current = cv;
                    change_pct;
                    from_zero;
                    regression })
            br.r_metrics)
      base_rows
  in
  let regressions =
    (* Finite-percentage regressions rank first, worst growth on top;
       from-zero deltas follow as their own block, ordered by absolute
       growth.  They still gate — they just no longer masquerade as a
       "100%" regression above real percentage blow-ups. *)
    List.filter (fun d -> d.regression) deltas
    |> List.sort (fun a b ->
           match (a.from_zero, b.from_zero) with
           | false, false -> compare b.change_pct a.change_pct
           | true, true -> compare b.current a.current
           | false, true -> -1
           | true, false -> 1)
  in
  let improvements =
    List.filter (fun d -> shrank d ~threshold_pct ~min_abs) deltas
    |> List.sort (fun a b -> compare a.change_pct b.change_pct)
  in
  let baseline_only =
    List.filter_map
      (fun r -> if Hashtbl.mem cur_tbl (key r) then None else Some (key r))
      base_rows
  in
  let current_only =
    List.filter_map
      (fun r -> if Hashtbl.mem base_tbl (key r) then None else Some (key r))
      cur_rows
  in
  (* metrics the current file has but the baseline lacks, within matched
     rows: these cannot be compared yet, but silently dropping them would
     make a schema extension look like full coverage — report them as new
     so the next baseline refresh picks them up *)
  let new_metrics =
    List.concat_map
      (fun br ->
        match Hashtbl.find_opt cur_tbl (key br) with
        | None -> []
        | Some cr ->
          List.filter_map
            (fun (metric, _) ->
              if List.mem_assoc metric br.r_metrics then None
              else Some (key br ^ "/" ^ metric))
            cr.r_metrics)
      base_rows
  in
  Ok
    { baseline_path;
      current_path;
      baseline_schema = schema_of baseline;
      current_schema = schema_of current;
      threshold_pct;
      min_abs;
      deltas;
      regressions;
      improvements;
      baseline_only;
      current_only;
      new_metrics }

let compare_files ?threshold_pct ?min_abs ~baseline ~current () =
  let ( let* ) = Result.bind in
  let* bj = Json.parse_file baseline in
  let* cj = Json.parse_file current in
  compare_json ?threshold_pct ?min_abs ~baseline_path:baseline ~current_path:current bj
    cj

let has_regressions c = c.regressions <> []

(* ------------------------------------------------------------------ *)

let render ?(verbose = false) c =
  let b = Buffer.create 1024 in
  Printf.bprintf b "perf report: %s (%s) vs %s (%s)\n" c.current_path c.current_schema
    c.baseline_path c.baseline_schema;
  Printf.bprintf b "  %d metrics compared, threshold +%.2f%%\n" (List.length c.deltas)
    c.threshold_pct;
  let row d =
    Printf.bprintf b "  %-12s %-24s %-18s %12.6g -> %-12.6g %8s\n" d.benchmark
      d.config d.metric d.baseline d.current
      (if d.from_zero then "(from 0)" else Printf.sprintf "%+7.2f%%" d.change_pct)
  in
  if c.regressions <> [] then begin
    Printf.bprintf b "REGRESSIONS (%d):\n" (List.length c.regressions);
    List.iter row c.regressions
  end;
  if c.improvements <> [] then begin
    Printf.bprintf b "improvements (%d):\n" (List.length c.improvements);
    List.iter row (if verbose then c.improvements else keep 10 c.improvements);
    if (not verbose) && List.length c.improvements > 10 then
      Printf.bprintf b "  ... %d more (use --verbose)\n"
        (List.length c.improvements - 10)
  end;
  List.iter (Printf.bprintf b "  gone from current: %s\n") c.baseline_only;
  List.iter (Printf.bprintf b "  new in current: %s\n") c.current_only;
  List.iter (Printf.bprintf b "  new metric (no baseline yet): %s\n") c.new_metrics;
  Printf.bprintf b "%d regressions, %d improvements\n" (List.length c.regressions)
    (List.length c.improvements);
  Buffer.contents b

let to_json c =
  let quote = Plim_util.Jsonx.quote in
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "{\"schema\":\"plim-report/v1\",\"baseline\":%s,\"current\":%s,\"threshold_pct\":%g,\"compared\":%d,\"regressions\":["
    (quote c.baseline_path) (quote c.current_path) c.threshold_pct
    (List.length c.deltas);
  let row i d =
    if i > 0 then Buffer.add_char b ',';
    Printf.bprintf b
      "{\"benchmark\":%s,\"config\":%s,\"metric\":%s,\"baseline\":%.6g,\"current\":%.6g,\"change_pct\":%s,\"from_zero\":%b}"
      (quote d.benchmark) (quote d.config) (quote d.metric) d.baseline d.current
      (if d.from_zero then "null" else Printf.sprintf "%.6g" d.change_pct)
      d.from_zero
  in
  List.iteri row c.regressions;
  Buffer.add_string b "],\"improvements\":[";
  List.iteri row c.improvements;
  let string_array ks =
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (quote k))
      ks
  in
  Buffer.add_string b "],\"baseline_only\":[";
  string_array c.baseline_only;
  Buffer.add_string b "],\"current_only\":[";
  string_array c.current_only;
  Buffer.add_string b "],\"new_metrics\":[";
  string_array c.new_metrics;
  Buffer.add_string b "]}";
  Buffer.contents b
