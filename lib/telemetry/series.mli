(** Bounded time-series storage for campaign telemetry.

    A fixed-capacity sample store with two retention policies:

    - {!Ring}: keep the most recent [capacity] samples (rolling window);
    - {!Decimate}: keep a bounded sketch of the {e whole} sequence —
      when full, drop every second retained sample and double the
      keep-stride.  The first sample is always retained and the store
      ends up holding every [stride]-th offered sample, so arbitrarily
      long accelerated-time campaigns produce trajectory curves of
      bounded size.

    Contents are a pure function of the offered sequence (no clock, no
    randomness): series recorded inside [-j N] campaigns are identical
    to their [-j 1] runs. *)

type policy = Ring | Decimate

type 'a t

val create : ?policy:policy -> capacity:int -> unit -> 'a t
(** [policy] defaults to [Ring].
    @raise Invalid_argument when [capacity < 2]. *)

val offer : 'a t -> 'a -> unit
(** Submit the next sample; the policy decides whether it is retained. *)

val length : 'a t -> int
(** Retained samples, [<= capacity]. *)

val capacity : 'a t -> int
val policy : 'a t -> policy

val stride : 'a t -> int
(** [Decimate]: the current keep-one-in-[stride] rate (a power of two).
    Always 1 for [Ring]. *)

val offered : 'a t -> int
(** Total samples ever offered. *)

val to_list : 'a t -> 'a list
(** Retained samples, oldest first. *)

val last : 'a t -> 'a option
(** Most recently retained sample. *)

val clear : 'a t -> unit
