(** Trajectory engine: diff two plim-bench result files and gate on
    regressions.

    Accepts both [plim-bench/v1] and [plim-bench/v2] files; only the
    metrics present in {e both} files are compared (v1 lacks the
    quantile and skew columns), so a v2 run can be gated against a v1
    baseline during migration.

    Every compared metric is a cost (instructions, devices, write
    max/stdev/tail, storage spans, wear skew): a metric {e regresses}
    when the current value exceeds the baseline by more than both the
    relative [threshold_pct] and the absolute [min_abs], so two
    identical files always report exactly zero regressions.  Wall-clock
    [phases] never gate.

    [plim-serve/v1] rows (the ["serve"] array) are folded into the same
    comparison as pseudo-benchmarks keyed ["serve:<label>"], tracking
    latency quantiles, total cycles, group-latency quantiles (when the
    fleet declares a crossbar geometry), fleet wear skew, cache misses
    and failure counts; their wall-clock throughput fields are excluded
    like the phases.

    [plim-bench/v2] ["geometry"] rows — the crossbar-geometry backend's
    area/latency trade-off curve — fold in as pseudo-benchmarks keyed
    ["geometry:<benchmark>@<grid>"], gating on group count, cross-row
    singletons, widest group and instruction count. *)

type delta = {
  benchmark : string;
  config : string;
  metric : string;
  baseline : float;
  current : float;
  change_pct : float;   (** [(current - baseline) / baseline * 100];
                            [nan] when [from_zero] — growth from a zero
                            baseline has no meaningful percentage *)
  from_zero : bool;     (** [baseline = 0] and [current > 0]: gates like
                            any growth, but is ranked separately (by
                            absolute growth, after every finite-percentage
                            regression) instead of being pinned to a
                            percentage sentinel *)
  regression : bool;
}

type comparison = {
  baseline_path : string;
  current_path : string;
  baseline_schema : string;
  current_schema : string;
  threshold_pct : float;
  min_abs : float;
  deltas : delta list;          (** every compared metric, file order *)
  regressions : delta list;     (** finite-percentage regressions first
                                    (worst growth on top), then the
                                    [from_zero] block ranked by absolute
                                    growth *)
  improvements : delta list;    (** shrank beyond threshold, best first *)
  baseline_only : string list;  (** benchmark/config keys that vanished *)
  current_only : string list;   (** keys with no baseline counterpart *)
  new_metrics : string list;    (** ["key/metric"] entries present only in
                                    the current file within matched rows —
                                    reported as new (never gated, never
                                    silently dropped) until a baseline
                                    refresh covers them *)
}

val compare_files :
  ?threshold_pct:float ->
  ?min_abs:float ->
  baseline:string ->
  current:string ->
  unit ->
  (comparison, string) result
(** Parse and compare two result files.  [threshold_pct] defaults to
    2.0 (a metric must grow by more than 2% to gate), [min_abs] to 1e-9
    (identical floats never gate).  [Error] carries a parse/IO/schema
    message. *)

val compare_json :
  ?threshold_pct:float ->
  ?min_abs:float ->
  baseline_path:string ->
  current_path:string ->
  Json.t ->
  Json.t ->
  (comparison, string) result
(** Same on already-parsed documents (the paths only label the report). *)

val has_regressions : comparison -> bool

val render : ?verbose:bool -> comparison -> string
(** Human-readable report; ends with a ["N regressions, M improvements"]
    line (the CI grep target).  [verbose] lists every improvement
    instead of the top 10. *)

val to_json : comparison -> string
(** [plim-report/v1] JSON document of the comparison. *)
