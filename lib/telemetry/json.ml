(* Minimal JSON reader for the trajectory engine: just enough to load
   plim-bench result files without adding a dependency the container
   does not bake in.  Objects keep their key order; numbers are floats
   (every numeric field in plim-bench fits a double exactly or is
   already a float). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal w v =
    String.iter expect w;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> advance (); Buffer.add_char b '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char b '/'; go ()
        | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
        | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
        | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
        | Some 'u' ->
          advance ();
          let code = ref 0 in
          for _ = 1 to 4 do
            (match peek () with
            | Some ('0' .. '9' as c) -> code := (!code * 16) + (Char.code c - 48)
            | Some ('a' .. 'f' as c) -> code := (!code * 16) + (Char.code c - 87)
            | Some ('A' .. 'F' as c) -> code := (!code * 16) + (Char.code c - 55)
            | _ -> fail "bad \\u escape");
            advance ()
          done;
          (* UTF-8 encode the BMP code point; plim-bench files are ASCII,
             this is completeness only *)
          let c = !code in
          if c < 0x80 then Buffer.add_char b (Char.chr c)
          else if c < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (c lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (c lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
          end;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let d0 = !pos in
      let rec go () =
        match peek () with Some '0' .. '9' -> advance (); go () | _ -> ()
      in
      go ();
      if !pos = d0 then fail "expected digits"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  (* The reader recurses once per nesting level, so an adversarial (or
     merely corrupted) input of a few hundred kilobytes of '[' would
     blow the OCaml stack with a Stack_overflow the caller cannot
     distinguish from a bug.  Bound the depth explicitly and fail with
     a regular Parse_error instead; no plim-bench artefact nests more
     than a dozen levels deep. *)
  let max_depth = 256 in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    let v =
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = string_lit () in
            skip_ws ();
            expect ':';
            let v = value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((key, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> Num (number ())
      | _ -> fail "unexpected token"
    in
    skip_ws ();
    v
  in
  let v = value 0 in
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with v -> Ok v | exception Parse_error msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | s -> (
    match parse s with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_string = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | Arr l -> Some l
  | _ -> None
