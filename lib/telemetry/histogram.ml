(* Log-bucketed histogram over non-negative integers, HDR-style: exact
   buckets below [sub_count], then [sub_count] linear sub-buckets per
   power of two, bounding the relative quantization error by
   1/sub_count.  The bucket layout is a pure function of the value, so
   merging is element-wise integer addition — exactly associative and
   commutative, which is what lets per-task histograms built on a
   Plim_par pool fold to the same result at every -j level. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32: <= 3.2% relative quantization error *)

type t = {
  mutable counts : int array; (* bucket index -> observation count *)
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;        (* max_int when empty *)
  mutable max_v : int;        (* -1 when empty *)
}

let create () =
  { counts = Array.make sub_count 0; count = 0; sum = 0; min_v = max_int; max_v = -1 }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- -1

let rec log2 v = if v < 2 then 0 else 1 + log2 (v lsr 1)

let bucket_of_value v =
  if v < sub_count then v
  else
    let k = log2 v in
    ((k - sub_bits + 1) * sub_count) + ((v lsr (k - sub_bits)) - sub_count)

let bucket_bounds b =
  if b < sub_count then (b, b)
  else begin
    let k = (b / sub_count) + sub_bits - 1 in
    let sub = b mod sub_count in
    let low = (sub_count + sub) lsl (k - sub_bits) in
    (low, low + (1 lsl (k - sub_bits)) - 1)
  end

let value_bounds v =
  if v < 0 then invalid_arg "Histogram.value_bounds: negative value";
  bucket_bounds (bucket_of_value v)

let ensure t b =
  let n = Array.length t.counts in
  if b >= n then begin
    let n' = ref (max sub_count n) in
    while b >= !n' do
      n' := !n' * 2
    done;
    let counts = Array.make !n' 0 in
    Array.blit t.counts 0 counts 0 n;
    t.counts <- counts
  end

let observe ?(n = 1) t v =
  if v < 0 then invalid_arg "Histogram.observe: negative value";
  if n < 0 then invalid_arg "Histogram.observe: negative weight";
  if n > 0 then begin
    let b = bucket_of_value v in
    ensure t b;
    t.counts.(b) <- t.counts.(b) + n;
    t.count <- t.count + n;
    t.sum <- t.sum + (v * n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let of_array xs =
  let t = create () in
  Array.iter (fun v -> observe t v) xs;
  t

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let copy t =
  { counts = Array.copy t.counts;
    count = t.count;
    sum = t.sum;
    min_v = t.min_v;
    max_v = t.max_v }

let merge a b =
  let n = max (Array.length a.counts) (Array.length b.counts) in
  let counts = Array.make n 0 in
  Array.iteri (fun i c -> counts.(i) <- c) a.counts;
  Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) b.counts;
  { counts;
    count = a.count + b.count;
    sum = a.sum + b.sum;
    min_v = min a.min_v b.min_v;
    max_v = max a.max_v b.max_v }

let buckets t =
  let acc = ref [] in
  for b = Array.length t.counts - 1 downto 0 do
    if t.counts.(b) > 0 then begin
      let low, high = bucket_bounds b in
      acc := (low, high, t.counts.(b)) :: !acc
    end
  done;
  !acc

let equal a b =
  a.count = b.count && a.sum = b.sum
  && min_value a = min_value b
  && max_value a = max_value b
  && buckets a = buckets b

(* Nearest-rank quantile over the bucketed distribution: the reported
   value is the upper bound of the bucket holding the rank, clamped to
   the recorded min/max — so for any sample the exact nearest-rank
   quantile [q_exact] satisfies [q_exact <= quantile t q <= high] where
   [high] is the upper bound of the bucket containing [q_exact]. *)
let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of [0,1]";
  if t.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    let n = Array.length t.counts in
    let rec go b cum =
      if b >= n then max_value t
      else begin
        let cum = cum + t.counts.(b) in
        if cum >= rank then
          let _, high = bucket_bounds b in
          max (min high t.max_v) t.min_v
        else go (b + 1) cum
      end
    in
    go 0 0
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

let to_json t =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%.6g,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"buckets\":["
    t.count t.sum (min_value t) (max_value t) (mean t) (p50 t) (p90 t) (p99 t);
  List.iteri
    (fun i (low, high, c) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "[%d,%d,%d]" low high c)
    (buckets t);
  Buffer.add_string b "]}";
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf "count=%d sum=%d min=%d p50=%d p90=%d p99=%d max=%d" t.count t.sum
    (min_value t) (p50 t) (p90 t) (p99 t) (max_value t)
