(** Log-bucketed mergeable histograms over non-negative integers
    (HDR-histogram style).

    Values below 32 get exact buckets; above that, each power of two is
    split into 32 linear sub-buckets, so quantile estimates carry at most
    ~3.2% relative quantization error while the whole structure stays a
    flat int array.  Merging is element-wise addition — associative and
    commutative — so histograms built concurrently on a {!Plim_par} pool
    fold to the same result in any grouping, which keeps telemetry
    byte-identical between [-j 1] and [-j N].

    Used for per-cell write-count distributions and per-phase latency
    distributions (in microseconds). *)

type t

val create : unit -> t
(** An empty histogram. *)

val observe : ?n:int -> t -> int -> unit
(** [observe ?n t v] records [n] (default 1) observations of value [v].
    @raise Invalid_argument if [v] or [n] is negative. *)

val of_array : int array -> t
(** Histogram of every element (e.g. a crossbar's write counts). *)

val clear : t -> unit
(** Drop all observations; the bucket storage is retained. *)

val copy : t -> t

val merge : t -> t -> t
(** Pure combination of two histograms; inputs are unchanged.
    [merge] is associative and commutative up to {!equal}. *)

val equal : t -> t -> bool
(** Same observation counts in every bucket and same count/sum/min/max. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** Smallest recorded value, exact; 0 when empty. *)

val max_value : t -> int
(** Largest recorded value, exact; 0 when empty. *)

val mean : t -> float

val quantile : t -> float -> int
(** [quantile t q] with [q] in [0,1]: nearest-rank quantile over the
    bucketed distribution.  The result [est] brackets the exact
    nearest-rank quantile [x] of the recorded samples:
    [x <= est <= high] where [(_, high) = value_bounds x].
    [quantile t 1.0 = max_value t] and [quantile t 0.0 >= min_value t].
    0 when empty.
    @raise Invalid_argument if [q] is outside [0,1]. *)

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int

val value_bounds : int -> int * int
(** [(low, high)] range of the bucket a value falls in — the guaranteed
    quantization bracket.  [high - low < max 1 (low / 32)]. *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(low, high, count)], ascending. *)

val to_json : t -> string
(** One JSON object: count/sum/min/max/mean, p50/p90/p99 and the
    non-empty buckets as [[low, high, count]] triples. *)

val pp : Format.formatter -> t -> unit
