(* Bounded time-series store for campaign telemetry.

   Two retention policies over one fixed capacity:
   - [Ring]: classic ring buffer, keeps the most recent [capacity]
     samples (rolling window — live dashboards, tails);
   - [Decimate]: keeps a bounded sketch of the WHOLE run: every sample
     is offered, the store keeps every [stride]-th one, and when full it
     compacts by dropping every second kept sample and doubling the
     stride.  The first sample is always retained, so an
     accelerated-time campaign of any length yields a trajectory curve
     with bounded memory and deterministic contents (a pure function of
     the offered sequence — no clocks, no randomness). *)

type policy = Ring | Decimate

type 'a t = {
  policy : policy;
  capacity : int;
  mutable buf : 'a option array;
  mutable len : int;
  mutable start : int;    (* Ring: index of the oldest element *)
  mutable stride : int;   (* Decimate: keep one sample in [stride] *)
  mutable offered : int;  (* total samples ever offered *)
}

let create ?(policy = Ring) ~capacity () =
  if capacity < 2 then invalid_arg "Series.create: capacity must be >= 2";
  { policy;
    capacity;
    buf = Array.make capacity None;
    len = 0;
    start = 0;
    stride = 1;
    offered = 0 }

let length t = t.len
let capacity t = t.capacity
let stride t = t.stride
let offered t = t.offered
let policy t = t.policy

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.len <- 0;
  t.start <- 0;
  t.stride <- 1;
  t.offered <- 0

let push_ring t x =
  if t.len < t.capacity then begin
    t.buf.((t.start + t.len) mod t.capacity) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.start) <- Some x;
    t.start <- (t.start + 1) mod t.capacity
  end

(* keep samples 0, 2, 4, ... (oldest first), halving the population *)
let compact t =
  let kept = (t.len + 1) / 2 in
  for i = 0 to kept - 1 do
    t.buf.(i) <- t.buf.(2 * i)
  done;
  Array.fill t.buf kept (t.capacity - kept) None;
  t.len <- kept;
  t.stride <- t.stride * 2

let push_decimate t x =
  if t.offered mod t.stride = 0 then begin
    if t.len = t.capacity then compact t;
    (* after compaction the retained samples sit at stride [t.stride];
       only offers still on the new grid are kept from here on *)
    if t.offered mod t.stride = 0 then begin
      t.buf.(t.len) <- Some x;
      t.len <- t.len + 1
    end
  end

let offer t x =
  (match t.policy with Ring -> push_ring t x | Decimate -> push_decimate t x);
  t.offered <- t.offered + 1

let to_list t =
  List.init t.len (fun i ->
      match t.buf.((t.start + i) mod t.capacity) with
      | Some x -> x
      | None -> assert false)

let last t =
  if t.len = 0 then None
  else t.buf.((t.start + t.len - 1) mod t.capacity)
