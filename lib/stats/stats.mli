(** Descriptive statistics over per-cell write counts.

    The paper reports the minimum, maximum and (population) standard
    deviation of the number of writes performed on each RRAM device of a
    compiled PLiM program (Tables I and III), and relative improvements of
    the standard deviation against a naive baseline. *)

type summary = {
  count : int;          (** number of cells *)
  min : int;
  max : int;
  total : int;          (** sum of all write counts *)
  mean : float;
  stdev : float;        (** population standard deviation *)
  p50 : int;            (** median write count (nearest-rank) *)
  p90 : int;
  p99 : int;
      (** the wear tail that informs device lifetime.  Beware the
          nearest-rank rule on small samples: with fewer than 100 cells
          the 0.99 rank rounds up to the last element, so [p99 = max] —
          it is a tail {e witness}, not an interpolated estimate, and
          only a lifetime bound through [max]. *)
}

val summarize : int array -> summary
(** The empty array summarises to {!zero_summary}.  Quantiles are
    nearest-rank, consistent with {!quantile}: the q-quantile of [n]
    sorted samples is element [ceil (q * n) - 1] (clamped to
    [[0, n-1]]).  No interpolation ever happens, so every reported
    quantile is a value that actually occurs in the data; for
    [n < 1 / (1 - q)] (e.g. [n < 100] at q = 0.99) the rank clamps to
    the last element and the quantile silently equals the maximum. *)

val zero_summary : summary
(** All fields zero — the summary of no cells at all. *)

val mean : float array -> float

val mean_list : float list -> float
(** Average of a list; 0.0 on [[]] (never nan), so table averages over an
    empty benchmark selection stay finite. *)

val stdev : float array -> float
(** Population standard deviation; 0 for arrays of length <= 1. *)

val improvement_pct : baseline:float -> float -> float
(** [improvement_pct ~baseline v] is the paper's "impr." column:
    [(baseline - v) / baseline * 100].  Negative when [v] is worse.
    Returns 0 when [baseline] is 0. *)

val quantile : float -> int array -> int
(** [quantile q xs] with [q] in [0,1]; nearest-rank on a sorted copy —
    element [ceil (q * n) - 1], clamped.  [quantile 0.0] is the minimum,
    [quantile 1.0] the maximum, and any [q > (n-1)/n] returns the
    maximum (see the {!summary} [p99] caveat for small [n]).
    @raise Invalid_argument on an empty array or [q] outside [0,1]. *)

val histogram : bucket:int -> int array -> (int * int) list
(** [histogram ~bucket xs] buckets values into ranges of width [bucket] and
    returns [(bucket_start, count)] pairs for non-empty buckets, sorted. *)

val gini : int array -> float
(** Gini coefficient of the write distribution: 0 = perfectly balanced,
    -> 1 = concentrated on few cells.  A secondary balance metric used in
    the ablation benches. *)

val max_mean_ratio : summary -> float
(** Max-to-mean wear ratio of a summary: 1.0 when perfectly levelled.
    Returns 1.0 for all-zero distributions (nothing is concentrated). *)

val pp_summary : Format.formatter -> summary -> unit
