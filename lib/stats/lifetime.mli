(** Lifetime estimation for an RRAM array under repeated execution of one
    compiled PLiM program.

    RRAM endurance is 1e10..1e11 writes per cell (paper, Section I).  A
    program that writes cell [i] [w_i] times per execution can run at most
    [endurance / max_i w_i] times before the most-stressed cell wears out.
    Balancing writes raises that bound toward the ideal
    [endurance * count / total_writes]. *)

type t = {
  executions_to_first_failure : float;
      (** [endurance / max_writes]; infinite when no cell is ever written. *)
  ideal_executions : float;
      (** perfectly-balanced bound: [endurance * cells / total_writes]. *)
  balance_efficiency : float;
      (** ratio of the two above, in (0, 1]; 1 = perfectly level wear. *)
}

val estimate : endurance:float -> int array -> t
(** [estimate ~endurance writes] from per-cell write counts of one
    execution. *)

val pp : Format.formatter -> t -> unit

(** {1 Accelerated-time extrapolation}

    Pure float math behind {!Plim_serve.Horizon}: wear advances linearly
    at a per-cell rate (writes per epoch) between sampled epochs, so whole
    device lifetimes — years of traffic — collapse into a handful of
    closed-form jumps.  All functions are deterministic and allocation
    order independent, which keeps horizon campaigns byte-identical at any
    [-j] width. *)

val fast_forward : epochs:float -> wear:float array -> rate:float array -> float array
(** [fast_forward ~epochs ~wear ~rate] is the wear after [epochs] more
    epochs at constant per-cell rates: [wear.(i) +. epochs *. rate.(i)].
    Equals replaying the same per-epoch deltas [epochs] times (exactly,
    for integer-valued inputs within the float-exact range).
    @raise Invalid_argument on length mismatch or negative [epochs]. *)

val fast_forward_into : epochs:float -> wear:float array -> rate:float array -> unit
(** In-place variant of {!fast_forward}. *)

val epochs_to_threshold : threshold:float -> wear:float array -> rate:float array -> float
(** Smallest [e >= 0] such that some cell reaches the threshold:
    [wear.(i) +. e *. rate.(i) >= threshold].  [0] when a cell is
    already at or past the threshold.

    {b Contract:} the return value is a bare [infinity] — not a sentinel,
    not an option — whenever no cell can ever reach the threshold: every
    rate is [0.0] (an idle fleet between sampled epochs) or the arrays
    are empty.  Callers doing arithmetic can rely on IEEE semantics
    ([min x infinity = x], so an idle shard never wins the
    next-event race); callers {e serializing} must map non-finite values
    themselves — {!Plim_serve.Horizon.sentinel_epochs} is the canonical
    mapping to the [-1] JSON sentinel. *)

val leveled_rate : ?overhead:float -> cells:int -> total:float -> unit -> float
(** Stationary per-cell write rate of an ideal levelling layer spreading
    [total] writes per epoch uniformly over [cells] physical lines, plus a
    fractional bookkeeping [overhead] (default 0): Start-Gap pays
    [1/psi] gap copies per write, WoLFRaM re-keying pays
    [lines/period] migration copies per write
    ({!Plim_rram.Wolfram.migration_overhead}). *)

val half_life : initial:float -> (float * float) list -> float option
(** [half_life ~initial trajectory] is the first epoch in the ascending
    [(epoch, capacity)] step curve where capacity has dropped to half of
    [initial], or [None] if it never does. *)
