type t = {
  executions_to_first_failure : float;
  ideal_executions : float;
  balance_efficiency : float;
}

let estimate ~endurance writes =
  if endurance <= 0.0 then invalid_arg "Lifetime.estimate: endurance must be positive";
  let s = Stats.summarize writes in
  if s.Stats.max = 0 then
    { executions_to_first_failure = infinity;
      ideal_executions = infinity;
      balance_efficiency = 1.0 }
  else begin
    let first_failure = endurance /. float_of_int s.Stats.max in
    let ideal =
      endurance *. float_of_int s.Stats.count /. float_of_int s.Stats.total
    in
    { executions_to_first_failure = first_failure;
      ideal_executions = ideal;
      balance_efficiency = first_failure /. ideal }
  end

let pp ppf t =
  Format.fprintf ppf "first-failure=%.3e ideal=%.3e efficiency=%.3f"
    t.executions_to_first_failure t.ideal_executions t.balance_efficiency

(* --- accelerated-time extrapolation ------------------------------------ *)

let fast_forward ~epochs ~wear ~rate =
  if Array.length wear <> Array.length rate then
    invalid_arg "Lifetime.fast_forward: wear and rate lengths differ";
  if epochs < 0.0 then invalid_arg "Lifetime.fast_forward: negative epochs";
  Array.mapi (fun i w -> w +. epochs *. rate.(i)) wear

let fast_forward_into ~epochs ~wear ~rate =
  if Array.length wear <> Array.length rate then
    invalid_arg "Lifetime.fast_forward_into: wear and rate lengths differ";
  if epochs < 0.0 then invalid_arg "Lifetime.fast_forward_into: negative epochs";
  for i = 0 to Array.length wear - 1 do
    wear.(i) <- wear.(i) +. epochs *. rate.(i)
  done

let epochs_to_threshold ~threshold ~wear ~rate =
  if Array.length wear <> Array.length rate then
    invalid_arg "Lifetime.epochs_to_threshold: wear and rate lengths differ";
  let best = ref infinity in
  for i = 0 to Array.length wear - 1 do
    if wear.(i) >= threshold then best := 0.0
    else if rate.(i) > 0.0 then begin
      let e = (threshold -. wear.(i)) /. rate.(i) in
      if e < !best then best := e
    end
  done;
  !best

let leveled_rate ?(overhead = 0.0) ~cells ~total () =
  if cells <= 0 then invalid_arg "Lifetime.leveled_rate: cells must be positive";
  if overhead < 0.0 then invalid_arg "Lifetime.leveled_rate: negative overhead";
  total *. (1.0 +. overhead) /. float_of_int cells

let half_life ~initial trajectory =
  if initial <= 0.0 then invalid_arg "Lifetime.half_life: initial must be positive";
  let target = initial /. 2.0 in
  let rec go = function
    | [] -> None
    | (epoch, capacity) :: rest ->
      if capacity <= target then Some epoch else go rest
  in
  go trajectory
