type summary = {
  count : int;
  min : int;
  max : int;
  total : int;
  mean : float;
  stdev : float;
  p50 : int;
  p90 : int;
  p99 : int;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

(* Average of a float list; 0.0 on [] rather than 0/0 = nan, so summary
   rows over an empty benchmark selection stay finite. *)
let mean_list = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stdev xs =
  let n = Array.length xs in
  if n <= 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let zero_summary =
  { count = 0; min = 0; max = 0; total = 0; mean = 0.0; stdev = 0.0;
    p50 = 0; p90 = 0; p99 = 0 }

let summarize xs =
  let n = Array.length xs in
  if n = 0 then zero_summary
  else begin
    let mn = ref xs.(0) and mx = ref xs.(0) and total = ref 0 in
    Array.iter
      (fun x ->
        if x < !mn then mn := x;
        if x > !mx then mx := x;
        total := !total + x)
      xs;
    let floats = Array.map float_of_int xs in
    (* sort once for all three quantiles instead of three [quantile] calls *)
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let nearest_rank q =
      let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))
    in
    { count = n;
      min = !mn;
      max = !mx;
      total = !total;
      mean = mean floats;
      stdev = stdev floats;
      p50 = nearest_rank 0.50;
      p90 = nearest_rank 0.90;
      p99 = nearest_rank 0.99 }
  end

let improvement_pct ~baseline v =
  if baseline = 0.0 then 0.0 else (baseline -. v) /. baseline *. 100.0

let quantile q xs =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let histogram ~bucket xs =
  if bucket <= 0 then invalid_arg "Stats.histogram: bucket must be positive";
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      let b = (x / bucket) * bucket in
      Hashtbl.replace tbl b (1 + (try Hashtbl.find tbl b with Not_found -> 0)))
    xs;
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let gini xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.map float_of_int xs in
    Array.sort compare sorted;
    let total = Array.fold_left ( +. ) 0.0 sorted in
    if total = 0.0 then 0.0
    else begin
      let weighted = ref 0.0 in
      Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) sorted;
      let nf = float_of_int n in
      ((2.0 *. !weighted) /. (nf *. total)) -. ((nf +. 1.0) /. nf)
    end
  end

(* Max-to-mean wear ratio: 1.0 = perfectly levelled, grows as writes
   concentrate.  The lifetime tail WoLFRaM-style levelling targets. *)
let max_mean_ratio s =
  if s.mean = 0.0 then if s.max = 0 then 1.0 else float_of_int s.max
  else float_of_int s.max /. s.mean

let pp_summary ppf s =
  Format.fprintf ppf
    "cells=%d min=%d max=%d total=%d mean=%.2f stdev=%.2f p50=%d p90=%d p99=%d"
    s.count s.min s.max s.total s.mean s.stdev s.p50 s.p90 s.p99
