(** MIG rewriting recipes.

    [algorithm1] is the rewriting loop of the original PLiM compiler
    (Soeken et al., DAC'16 [21], reproduced as Algorithm 1 in the paper);
    [algorithm2] is the endurance-aware variant proposed by the paper
    (Algorithm 2): Ψ.C is dropped (it removes single complemented edges,
    which are *ideal* for RM3) and Ω.A is sandwiched between inverter-
    propagation passes to maximise the number of nodes with exactly one
    inverted child. *)

module Mig = Plim_mig.Mig

type pass = Axioms.rule list

val run_pass : ?name:string -> Mig.t -> pass -> Mig.t
(** One bottom-up rebuild applying the first matching rule per node
    (Ω.M always applies through the hash-consed constructor).  [name]
    labels the pass in emitted trace events (default ["pass"]). *)

type recipe = No_rewriting | Algorithm1 | Algorithm2

val pp_recipe : Format.formatter -> recipe -> unit
val recipe_name : recipe -> string

val run : recipe -> effort:int -> Mig.t -> Mig.t
(** [run recipe ~effort g] applies [effort] cycles of the recipe
    (the paper uses effort = 5) and returns a cleaned-up graph.
    [No_rewriting] returns a cleanup copy (the naive flow). *)

val algorithm1 : effort:int -> Mig.t -> Mig.t
val algorithm2 : effort:int -> Mig.t -> Mig.t
