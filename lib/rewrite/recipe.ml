module Mig = Plim_mig.Mig
module Obs = Plim_obs.Obs
module Metrics = Plim_obs.Metrics
module Trace = Plim_obs.Trace

type pass = Axioms.rule list

let m_passes = Metrics.counter "rewrite.passes"
let m_cycles = Metrics.counter "rewrite.cycles"

let run_pass_raw g rules =
  let fanout = Mig.fanout_counts g in
  let out_refs = Mig.output_refs g in
  let old_children = Array.make (Mig.num_nodes g) None in
  Mig.iter_reachable_maj g (fun id ->
      match Mig.kind g id with
      | Mig.Maj (a, b, c) -> old_children.(id) <- Some (a, b, c)
      | Mig.Const | Mig.Input _ -> ());
  let total_refs id = fanout.(id) + out_refs.(id) in
  Mig.map_rebuild g ~rule:(fun g' ~old_id a b c ->
      match old_children.(old_id) with
      | None -> Mig.maj g' a b c
      | Some (oa, ob, oc) ->
        let operand new_s old_s =
          { Axioms.s = new_s; old_fanout = total_refs (Mig.node_of old_s) }
        in
        Axioms.apply_first rules g' (operand a oa) (operand b ob) (operand c oc))

let run_pass ?(name = "pass") g rules =
  Obs.span "rewrite.pass" @@ fun () ->
  Metrics.incr m_passes;
  let size_before = Mig.size g in
  let g' = run_pass_raw g rules in
  if Trace.enabled () then
    Trace.emit "rewrite.pass"
      ~args:
        [ ("pass", String name); ("size_before", Int size_before);
          ("size_after", Int (Mig.size g')) ];
  g'

type recipe = No_rewriting | Algorithm1 | Algorithm2

let recipe_name = function
  | No_rewriting -> "none"
  | Algorithm1 -> "dac16"
  | Algorithm2 -> "endurance"

let pp_recipe ppf r = Format.pp_print_string ppf (recipe_name r)

(* Algorithm 1 (DAC'16 [21]):
   1: Ω.M; Ω.D(R->L)   2: Ω.A; Ψ.C   3: Ω.M; Ω.D(R->L)
   4: Ω.I(R->L)(1-3)   5: Ω.I(R->L) *)
let algorithm1_cycle g =
  let g = run_pass ~name:"D(R->L)" g [ Axioms.distributivity_rl ] in
  let g =
    run_pass ~name:"A;psi.C" g
      [ Axioms.associativity; Axioms.complementary_associativity ]
  in
  let g = run_pass ~name:"D(R->L)" g [ Axioms.distributivity_rl ] in
  let g = run_pass ~name:"I(R->L)" g [ Axioms.inverter_propagation ] in
  run_pass ~name:"I(R->L)" g [ Axioms.inverter_propagation ]

(* Algorithm 2 (this paper):
   1: Ω.M; Ω.D(R->L)   2: Ω.I(1-3)   3: Ω.I   4: Ω.A
   5: Ω.I(1-3)         6: Ω.I        7: Ω.M; Ω.D(R->L)   8: Ω.I *)
let algorithm2_cycle g =
  let g = run_pass ~name:"D(R->L)" g [ Axioms.distributivity_rl ] in
  let g = run_pass ~name:"I(R->L)" g [ Axioms.inverter_propagation ] in
  let g = run_pass ~name:"I(R->L)" g [ Axioms.inverter_propagation ] in
  let g = run_pass ~name:"A" g [ Axioms.associativity ] in
  let g = run_pass ~name:"I(R->L)" g [ Axioms.inverter_propagation ] in
  let g = run_pass ~name:"I(R->L)" g [ Axioms.inverter_propagation ] in
  let g = run_pass ~name:"D(R->L)" g [ Axioms.distributivity_rl ] in
  run_pass ~name:"I(R->L)" g [ Axioms.inverter_propagation ]

let cycles f ~effort g =
  let rec go n g =
    if n <= 0 then g
    else begin
      Metrics.incr m_cycles;
      go (n - 1) (f g)
    end
  in
  Mig.cleanup (go (max 0 effort) g)

let algorithm1 ~effort g = cycles algorithm1_cycle ~effort g
let algorithm2 ~effort g = cycles algorithm2_cycle ~effort g

let run recipe ~effort g =
  Obs.span "rewrite.recipe" @@ fun () ->
  match recipe with
  | No_rewriting -> Mig.cleanup g
  | Algorithm1 -> algorithm1 ~effort g
  | Algorithm2 -> algorithm2 ~effort g
