(** Structured trace events with pluggable sinks.

    Instrumented code emits named events with typed arguments; where they
    go is a process-global choice.  The default {!Null} sink makes
    emission free apart from one branch — hot call sites additionally
    guard argument construction behind {!enabled} so an uninstrumented
    run pays nothing measurable.

    Sinks:
    - {!Null}: drop everything (default);
    - [Memory q]: append to a queue, for tests and in-process analysis;
    - [Jsonl oc]: one JSON object per line on an output channel;
    - [Custom f]: arbitrary consumer. *)

type arg = Int of int | Float of float | Bool of bool | String of string

type event = {
  ts : float;                    (** {!Clock.now} at emission *)
  name : string;                 (** dotted event name, e.g. ["alloc.release"] *)
  args : (string * arg) list;
}

type sink =
  | Null
  | Memory of event Queue.t
  | Jsonl of out_channel
  | Custom of (event -> unit)

val set_sink : sink -> unit
val sink : unit -> sink

val enabled : unit -> bool
(** [false] iff the current sink is {!Null}.  Guard argument construction
    with this at hot call sites. *)

val emit : ?args:(string * arg) list -> string -> unit
(** Emit an event to the current sink (a no-op under {!Null}). *)

val event_to_json : event -> string
(** One-line JSON object: [{"ts":…,"name":"…",…args…}]. *)

val with_memory : (unit -> 'a) -> 'a * event list
(** Run with a fresh [Memory] sink installed; restores the previous sink
    (also on exception) and returns the captured events in order. *)

val with_jsonl : string -> (unit -> 'a) -> 'a
(** [with_jsonl path f] runs [f] with a [Jsonl] sink writing to [path];
    closes the file and restores the previous sink afterwards. *)
