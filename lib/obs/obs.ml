module Clock = Clock
module Metrics = Metrics
module Trace = Trace
module Profile = Profile

let span = Profile.span
