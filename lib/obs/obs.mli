(** Umbrella for the observability layer ([Plim_obs]).

    Three independent facilities share this library:

    - {!Metrics}: named monotonic counters and gauges, always on;
    - {!Trace}: structured events through a pluggable sink ({!Trace.Null}
      by default, free when off);
    - {!Profile}: nested timing spans, exportable as Chrome trace JSON.

    Instrumented libraries alias this module ([module Obs = Plim_obs.Obs])
    and write [Obs.span "phase" f], [Metrics.incr c], or
    [if Trace.enabled () then Trace.emit …]. *)

module Clock = Clock
module Metrics = Metrics
module Trace = Trace
module Profile = Profile

val span : string -> (unit -> 'a) -> 'a
(** Alias for {!Profile.span}. *)
