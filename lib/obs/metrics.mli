(** Process-global named metrics: monotonic counters and gauges.

    Counters are registered once (at module initialisation of the
    instrumented code) and incremented on hot paths — an increment is a
    single mutable-field bump, cheap enough to leave permanently enabled.
    [snapshot] renders the whole registry for reporting; [reset] zeroes
    every value while keeping the registrations, so tests and repeated
    CLI commands can measure deltas. *)

type counter
type gauge

val counter : string -> counter
(** [counter name] returns the counter registered under [name], creating
    it (at zero) on first use.  The same name always yields the same
    counter. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to the counter.  [by] must be non-negative. *)

val value : counter -> int

val gauge : string -> gauge
(** Get-or-create, like {!counter}. *)

val set_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

val get : string -> int
(** Current value of the counter registered under [name]; 0 if no such
    counter exists. *)

type value = Counter of int | Gauge of float

val snapshot : unit -> (string * value) list
(** Every registered metric, sorted by name. *)

val reset : unit -> unit
(** Zero all counters and gauges; registrations survive. *)

val pp_snapshot : Format.formatter -> (string * value) list -> unit
(** One [name value] line per metric. *)
