(** Process-global named metrics: monotonic counters, gauges and
    distribution histograms.

    Counters are registered once (at module initialisation of the
    instrumented code) and incremented on hot paths — an increment is a
    single mutable-field bump, cheap enough to leave permanently enabled.
    Histograms record full value distributions (per-cell write counts,
    per-phase latencies) with bounded memory; see
    {!Plim_telemetry.Histogram}.  [snapshot] renders the whole registry
    for reporting; [reset] zeroes every value while keeping the
    registrations, so tests and repeated CLI commands can measure
    deltas. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** [counter name] returns the counter registered under [name], creating
    it (at zero) on first use.  The same name always yields the same
    counter. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to the counter.  [by] must be non-negative. *)

val value : counter -> int

val gauge : string -> gauge
(** Get-or-create, like {!counter}. *)

val set_gauge : gauge -> float -> unit

val add_gauge : gauge -> float -> unit
(** Accumulate a (possibly negative) delta onto the gauge under the
    registry lock — for levels maintained incrementally across batches,
    like the serve fleet's cumulative physical-write gauge. *)

val gauge_value : gauge -> float

val get : string -> int
(** Current value of the counter registered under [name]; 0 if no such
    counter exists. *)

val histogram : string -> histogram
(** Get-or-create, like {!counter}. *)

val observe : histogram -> int -> unit
(** Record one non-negative value into the distribution.
    @raise Invalid_argument on negative values. *)

val observe_array : histogram -> int array -> unit
(** Record every element under a single registry lock acquisition —
    for bulk feeds like a whole crossbar wear grid. *)

val histogram_value : histogram -> Plim_telemetry.Histogram.t
(** Point-in-time copy of the underlying histogram, safe to read and
    merge without racing further observations. *)

type value =
  | Counter of int
  | Gauge of float
  | Hist of Plim_telemetry.Histogram.t

val snapshot : unit -> (string * value) list
(** Every registered metric, sorted by name.  Histograms are copied, so
    the snapshot is immune to later observations. *)

val reset : unit -> unit
(** Zero all counters, gauges and histograms; registrations survive. *)

val pp_snapshot : Format.formatter -> (string * value) list -> unit
(** One [name value] line per metric; histograms render as a
    [count/mean/quantile] summary line. *)

val to_json : unit -> string
(** The single JSON exposition path: one [plim-metrics/v1] document with
    every counter, gauge and histogram, sorted by name. *)
