type arg = Int of int | Float of float | Bool of bool | String of string

type event = {
  ts : float;
  name : string;
  args : (string * arg) list;
}

type sink =
  | Null
  | Memory of event Queue.t
  | Jsonl of out_channel
  | Custom of (event -> unit)

let current = ref Null

let set_sink s = current := s

let sink () = !current

let enabled () = match !current with Null -> false | _ -> true

let json_escape = Plim_util.Jsonx.escape_into

let add_json_float b f =
  (* JSON has no nan/inf; %.17g round-trips every other float *)
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
  else Buffer.add_string b "null"

let event_to_json e =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"ts\":";
  add_json_float b e.ts;
  Buffer.add_string b ",\"name\":\"";
  json_escape b e.name;
  Buffer.add_char b '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"";
      json_escape b k;
      Buffer.add_string b "\":";
      match v with
      | Int i -> Buffer.add_string b (string_of_int i)
      | Float f -> add_json_float b f
      | Bool v -> Buffer.add_string b (if v then "true" else "false")
      | String s ->
        Buffer.add_char b '"';
        json_escape b s;
        Buffer.add_char b '"')
    e.args;
  Buffer.add_char b '}';
  Buffer.contents b

(* Serializes sink writes: events may be emitted from pool domains
   (Plim_par tasks), and neither Queue.add nor channel output is
   domain-safe.  Null-sink emits stay lock-free. *)
let emit_lock = Mutex.create ()

let emit ?(args = []) name =
  match !current with
  | Null -> ()
  | s ->
    let e = { ts = Clock.now (); name; args } in
    Mutex.lock emit_lock;
    (match s with
    | Null -> ()
    | Memory q -> Queue.add e q
    | Jsonl oc ->
      output_string oc (event_to_json e);
      output_char oc '\n'
    | Custom f -> f e);
    Mutex.unlock emit_lock

let with_sink s f =
  let previous = !current in
  current := s;
  Fun.protect ~finally:(fun () -> current := previous) f

let with_memory f =
  let q = Queue.create () in
  let result = with_sink (Memory q) f in
  (result, List.of_seq (Queue.to_seq q))

let with_jsonl path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> with_sink (Jsonl oc) f)
