type span = {
  name : string;
  start : float;
  duration : float;
  depth : int;
}

let on = ref false
let recorded : span list ref = ref []  (* completion order, reversed *)
let current_depth = ref 0

let enable () = on := true
let disable () = on := false
let enabled () = !on

let span name f =
  if not !on then f ()
  else begin
    let start = Clock.now () in
    let depth = !current_depth in
    Stdlib.incr current_depth;
    let finish () =
      Stdlib.decr current_depth;
      recorded := { name; start; duration = Clock.now () -. start; depth } :: !recorded
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let spans () = List.rev !recorded

let reset () =
  recorded := [];
  current_depth := 0

let totals () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let count, total =
        Option.value (Hashtbl.find_opt tbl s.name) ~default:(0, 0.0)
      in
      Hashtbl.replace tbl s.name (count + 1, total +. s.duration))
    !recorded;
  Hashtbl.fold (fun name acc l -> (name, acc) :: l) tbl []
  |> List.sort (fun (_, (_, a)) (_, (_, b)) -> compare b a)

let to_chrome_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n{\"name\":\"";
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char b c)
        s.name;
      Buffer.add_string b
        (Printf.sprintf "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1}"
           (s.start *. 1e6) (s.duration *. 1e6)))
    (spans ());
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let pp_totals ppf entries =
  List.iter
    (fun (name, (count, total)) ->
      Format.fprintf ppf "%-32s %6d call%s %12.3f ms@." name count
        (if count = 1 then " " else "s")
        (total *. 1e3))
    entries
