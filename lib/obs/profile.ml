type span = {
  name : string;
  start : float;
  duration : float;
  depth : int;
}

let on = ref false

(* Spans may finish on any pool domain (Plim_par tasks), so the record list
   is guarded by a mutex and the nesting depth is tracked per domain: a
   worker executing a stolen task starts its own depth-0 stack instead of
   extending the submitter's. *)
let lock = Mutex.create ()
let recorded : span list ref = ref []  (* completion order, reversed *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let enable () = on := true
let disable () = on := false
let enabled () = !on

let span name f =
  if not !on then f ()
  else begin
    let start = Clock.now () in
    let current_depth = Domain.DLS.get depth_key in
    let depth = !current_depth in
    Stdlib.incr current_depth;
    let finish () =
      Stdlib.decr current_depth;
      let s = { name; start; duration = Clock.now () -. start; depth } in
      Mutex.lock lock;
      recorded := s :: !recorded;
      Mutex.unlock lock;
      (* Feed the per-phase latency distribution (microseconds).  These
         are wall-clock values: they belong in metrics expositions and
         never in deterministic bench output. *)
      Metrics.observe
        (Metrics.histogram ("profile." ^ name))
        (max 0 (int_of_float (s.duration *. 1e6)))
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let spans () =
  Mutex.lock lock;
  let l = !recorded in
  Mutex.unlock lock;
  List.rev l

let reset () =
  Mutex.lock lock;
  recorded := [];
  Mutex.unlock lock;
  Domain.DLS.get depth_key := 0

(* Sorted by name, not by accumulated time: wall-clock totals differ from
   run to run (and between -j levels), so a duration sort would make every
   report and the phases section of bench/results/latest.json
   order-nondeterministic.  Names make the dump byte-stable. *)
let totals () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let count, total =
        Option.value (Hashtbl.find_opt tbl s.name) ~default:(0, 0.0)
      in
      Hashtbl.replace tbl s.name (count + 1, total +. s.duration))
    (spans ());
  Hashtbl.fold (fun name acc l -> (name, acc) :: l) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_chrome_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n{\"name\":\"";
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char b c)
        s.name;
      Buffer.add_string b
        (Printf.sprintf "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1}"
           (s.start *. 1e6) (s.duration *. 1e6)))
    (spans ());
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let pp_totals ppf entries =
  List.iter
    (fun (name, (count, total)) ->
      Format.fprintf ppf "%-32s %6d call%s %12.3f ms@." name count
        (if count = 1 then " " else "s")
        (total *. 1e3))
    entries
