(** Profiling spans around compiler and machine phases.

    Disabled by default: {!span} then reduces to calling its argument.
    When enabled, each completed span records its name, start time,
    duration, and nesting depth; the collection exports as Chrome
    [trace_event] JSON (open in [chrome://tracing] or [ui.perfetto.dev])
    or aggregates into a per-phase table. *)

type span = {
  name : string;
  start : float;     (** {!Clock.now} at entry *)
  duration : float;  (** seconds *)
  depth : int;       (** 0 = toplevel; children have depth parent+1 *)
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a span when profiling is enabled.
    The span is recorded (and the nesting depth restored) even when [f]
    raises. *)

val spans : unit -> span list
(** Completed spans in completion order (inner spans precede the spans
    enclosing them). *)

val reset : unit -> unit
(** Drop recorded spans; does not change enablement. *)

val totals : unit -> (string * (int * float)) list
(** Per-name [(count, total seconds)], sorted by name so reports are
    byte-deterministic (durations vary run to run; names do not).
    Nested occurrences of a name each count. *)

val to_chrome_json : unit -> string
(** The recorded spans as a Chrome [trace_event] document: complete
    ("ph":"X") events with microsecond timestamps, single process and
    thread. *)

val pp_totals : Format.formatter -> (string * (int * float)) list -> unit
