let default () = Unix.gettimeofday ()

let current = ref default

let now () = !current ()

let set f = current := f

let reset () = current := default
