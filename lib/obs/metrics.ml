type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable level : float }

(* The registry is append-mostly and consulted only at registration and
   snapshot time; hot paths hold the [counter] record directly. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace counters name c;
    c

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c.count <- c.count + by

let value c = c.count

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; level = 0.0 } in
    Hashtbl.replace gauges name g;
    g

let set_gauge g v = g.level <- v

let gauge_value g = g.level

let get name = match Hashtbl.find_opt counters name with Some c -> c.count | None -> 0

type value = Counter of int | Gauge of float

let snapshot () =
  let entries =
    Hashtbl.fold (fun name c acc -> (name, Counter c.count) :: acc) counters []
  in
  let entries =
    Hashtbl.fold (fun name g acc -> (name, Gauge g.level) :: acc) gauges entries
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter (fun _ g -> g.level <- 0.0) gauges

let pp_snapshot ppf entries =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Format.fprintf ppf "%-28s %d@." name c
      | Gauge g -> Format.fprintf ppf "%-28s %g@." name g)
    entries
