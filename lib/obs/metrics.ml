module Hgram = Plim_telemetry.Histogram

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; mutable level : float }
type histogram = { h_name : string; hist : Hgram.t }

(* The registry is append-mostly and consulted only at registration and
   snapshot time; hot paths hold the [counter] record directly.  Counter
   bumps are atomic so tasks running on pool domains (Plim_par) can share
   a counter: the final total is the sum of all increments regardless of
   interleaving, which keeps metric snapshots deterministic under -j N.
   The registry itself and gauge levels are guarded by [lock]. *)
let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = Atomic.make 0 } in
    Hashtbl.replace counters name c;
    c

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  ignore (Atomic.fetch_and_add c.count by)

let value c = Atomic.get c.count

let gauge name =
  with_lock @@ fun () ->
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; level = 0.0 } in
    Hashtbl.replace gauges name g;
    g

let set_gauge g v = with_lock @@ fun () -> g.level <- v

let add_gauge g d = with_lock @@ fun () -> g.level <- g.level +. d

let gauge_value g = with_lock @@ fun () -> g.level

let get name =
  with_lock @@ fun () ->
  match Hashtbl.find_opt counters name with Some c -> Atomic.get c.count | None -> 0

(* Histogram observations take the registry lock: unlike counter bumps
   they touch several fields of a shared structure, and their hot paths
   (phase latencies, snapshot-time wear grids) fire orders of magnitude
   less often than counters. *)
let histogram name =
  with_lock @@ fun () ->
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h = { h_name = name; hist = Hgram.create () } in
    Hashtbl.replace histograms name h;
    h

let observe h v = with_lock @@ fun () -> Hgram.observe h.hist v

let observe_array h xs =
  with_lock @@ fun () -> Array.iter (fun v -> Hgram.observe h.hist v) xs

let histogram_value h = with_lock @@ fun () -> Hgram.copy h.hist

type value = Counter of int | Gauge of float | Hist of Hgram.t

let snapshot () =
  with_lock @@ fun () ->
  let entries =
    Hashtbl.fold (fun name c acc -> (name, Counter (Atomic.get c.count)) :: acc)
      counters []
  in
  let entries =
    Hashtbl.fold (fun name g acc -> (name, Gauge g.level) :: acc) gauges entries
  in
  let entries =
    Hashtbl.fold (fun name h acc -> (name, Hist (Hgram.copy h.hist)) :: acc)
      histograms entries
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let reset () =
  with_lock @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.count 0) counters;
  Hashtbl.iter (fun _ g -> g.level <- 0.0) gauges;
  Hashtbl.iter (fun _ h -> Hgram.clear h.hist) histograms

let pp_snapshot ppf entries =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Format.fprintf ppf "%-28s %d@." name c
      | Gauge g -> Format.fprintf ppf "%-28s %g@." name g
      | Hist h -> Format.fprintf ppf "%-28s %a@." name Hgram.pp h)
    entries

(* The single JSON exposition path: counters, gauges and histograms in
   one sorted document. *)
let to_json () =
  let entries = snapshot () in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema\":\"plim-metrics/v1\",\"metrics\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      let key = Plim_util.Jsonx.quote name in
      match v with
      | Counter c -> Printf.bprintf b "%s:%d" key c
      | Gauge g -> Printf.bprintf b "%s:%.6g" key g
      | Hist h -> Printf.bprintf b "%s:%s" key (Hgram.to_json h))
    entries;
  Buffer.add_string b "}}";
  Buffer.contents b
