(** Wall-clock source shared by tracing and profiling.

    The default reads [Unix.gettimeofday]; tests install a deterministic
    clock with {!set} so span durations and event timestamps are stable. *)

val now : unit -> float
(** Current time in seconds (fractional). *)

val set : (unit -> float) -> unit
(** Replace the clock, e.g. with a fake monotonic counter in tests. *)

val reset : unit -> unit
(** Restore the [Unix.gettimeofday] clock. *)
