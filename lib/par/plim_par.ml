(* Deterministic multicore execution: a fixed-size OCaml 5 domain pool with
   a map/map_reduce API whose results are merged in *submission order*
   regardless of completion order.

   Determinism contract:
   - [map] returns exactly [List.map f xs] whenever every [f x] is a pure
     function of [x]: results land in a per-call array slot indexed by
     submission position, so scheduling never reorders them.
   - With [jobs = 1] no domain is ever spawned and [map] *is*
     [List.map f xs] — byte-identical to the sequential program, including
     side-effect order.  This is the baseline the [-j N] identity checks
     compare against.
   - Per-task random streams come from [map_seeded]: task [i] receives
     [Splitmix.derive seed i], a pure function of the root seed and the
     submission index, never of the executing domain or completion order.
   - An exception inside a task is captured; after the whole batch joins,
     the exception of the *lowest* failing index is re-raised, so the
     observed failure is the one sequential execution would have hit first.

   Scheduling: [jobs - 1] worker domains drain a shared FIFO; the submitter
   of a batch participates too ("helping join"), executing queued tasks
   while its own batch is unfinished.  A nested [map] issued from inside a
   task therefore cannot deadlock: the blocked parent drains the queue its
   children sit in.  Tasks executed by a worker domain rather than their
   submitter are counted as stolen. *)

module Splitmix = Plim_util.Splitmix
module Obs = Plim_obs.Obs
module Metrics = Plim_obs.Metrics

let m_queued = Metrics.counter "par.tasks_queued"
let m_stolen = Metrics.counter "par.tasks_stolen"
let m_inline = Metrics.counter "par.tasks_inline"
let g_running = Metrics.gauge "par.tasks_running"
let g_jobs = Metrics.gauge "par.pool_jobs"

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable running : int;  (* tasks currently executing, all domains *)
  mutable live : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.jobs

let note_start t =
  t.running <- t.running + 1;
  Metrics.set_gauge g_running (float_of_int t.running)

let note_stop t =
  t.running <- t.running - 1;
  Metrics.set_gauge g_running (float_of_int t.running)

(* Worker domains block on [work_available] until a task is queued or the
   pool shuts down; the queue drains even mid-shutdown so no batch is ever
   abandoned with [pending > 0]. *)
let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec take () =
      match Queue.take_opt t.queue with
      | Some task ->
        note_start t;
        Mutex.unlock t.mutex;
        Some task
      | None ->
        if not t.live then begin
          Mutex.unlock t.mutex;
          None
        end
        else begin
          Condition.wait t.work_available t.mutex;
          take ()
        end
    in
    match take () with
    | Some task ->
      Metrics.incr m_stolen;
      task ();
      Mutex.lock t.mutex;
      note_stop t;
      Mutex.unlock t.mutex;
      loop ()
    | None -> ()
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Plim_par.create: jobs must be >= 1";
  Metrics.set_gauge g_jobs (float_of_int jobs);
  let t =
    { jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      running = 0;
      live = true;
      domains = [] }
  in
  (* the submitting domain participates in every join, so jobs = N needs
     only N - 1 dedicated workers *)
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let was_live = t.live in
  t.live <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if was_live then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type batch = { mutable pending : int; finished : Condition.t }

let check_live t =
  Mutex.lock t.mutex;
  let live = t.live in
  Mutex.unlock t.mutex;
  if not live then invalid_arg "Plim_par.map: pool is shut down"

let mapi t ~f xs =
  check_live t;
  Obs.span "par.map" @@ fun () ->
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | xs when t.jobs <= 1 -> List.mapi f xs
  | xs ->
    let n = List.length xs in
    let results = Array.make n None in
    let exns = Array.make n None in
    let batch = { pending = n; finished = Condition.create () } in
    Mutex.lock t.mutex;
    if not t.live then begin
      Mutex.unlock t.mutex;
      invalid_arg "Plim_par.map: pool is shut down"
    end;
    List.iteri
      (fun i x ->
        Queue.add
          (fun () ->
            (match f i x with
            | v -> results.(i) <- Some v
            | exception e -> exns.(i) <- Some e);
            Mutex.lock t.mutex;
            batch.pending <- batch.pending - 1;
            if batch.pending = 0 then Condition.broadcast batch.finished;
            Mutex.unlock t.mutex)
          t.queue)
      xs;
    Metrics.incr ~by:n m_queued;
    Condition.broadcast t.work_available;
    (* helping join: run queued tasks (of any batch) until ours completes;
       wait only while the queue is empty and our tasks run elsewhere *)
    let rec help () =
      if batch.pending > 0 then
        match Queue.take_opt t.queue with
        | Some task ->
          note_start t;
          Mutex.unlock t.mutex;
          Metrics.incr m_inline;
          task ();
          Mutex.lock t.mutex;
          note_stop t;
          help ()
        | None ->
          Condition.wait batch.finished t.mutex;
          help ()
    in
    help ();
    Mutex.unlock t.mutex;
    (* re-raise the lowest-index failure: the one sequential order hits *)
    Array.iteri (fun _ e -> match e with Some e -> raise e | None -> ()) exns;
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> assert false (* pending = 0 and no exn implies a result *))
         results)

let map t ~f xs = mapi t ~f:(fun _ x -> f x) xs

(* Task [i] draws from an isolated stream seeded by [Splitmix.derive seed i]:
   a pure function of the root seed and the submission index, so outputs are
   identical at every [-j] level and across nesting. *)
let map_seeded t ~seed ~f xs =
  mapi t ~f:(fun i x -> f ~seed:(Splitmix.derive seed i) x) xs

(* Fold over results in submission order — associativity of [combine] is
   not required for determinism. *)
let map_reduce t ~f ~init ~combine xs =
  List.fold_left combine init (map t ~f xs)
