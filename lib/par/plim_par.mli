(** Deterministic multicore execution on a fixed-size OCaml 5 domain pool.

    The pool trades only wall-clock for parallelism, never output:
    {!map} merges results in submission order regardless of completion
    order, per-task random streams are derived from the root seed and the
    submission index ({!map_seeded}), and a pool of [jobs = 1] never
    spawns a domain — it *is* the sequential program, byte for byte.
    That identity is what the repo's [-j 1] vs [-j N] determinism checks
    pin down.

    Scheduling is a shared FIFO drained by [jobs - 1] worker domains plus
    the submitter itself ("helping join"): while a batch is unfinished its
    submitter executes queued tasks, so a nested {!map} issued from inside
    a task cannot deadlock.

    Observability: the pool maintains the [par.tasks_queued],
    [par.tasks_stolen] (run by a worker domain) and [par.tasks_inline]
    (run by their submitter) counters, the [par.tasks_running] and
    [par.pool_jobs] gauges, and records a [par.map] profiling span per
    {!map} call at every [jobs] level. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (none when
    [jobs = 1]).  [jobs] defaults to {!default_jobs}; it must be >= 1. *)

val jobs : t -> int

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map t ~f xs] computes [List.map f xs] with the elements evaluated on
    the pool.  If any task raised, the exception of the lowest failing
    index is re-raised after all tasks finished — the same failure a
    sequential run would surface first.  Tasks must not assume they run
    on any particular domain; shared state they touch must be
    domain-safe. *)

val mapi : t -> f:(int -> 'a -> 'b) -> 'a list -> 'b list

val map_seeded : t -> seed:int -> f:(seed:int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} but task [i] receives [Splitmix.derive seed i] — an
    isolated per-task stream seed that depends only on the root seed and
    the submission index, never on scheduling. *)

val map_reduce :
  t -> f:('a -> 'b) -> init:'acc -> combine:('acc -> 'b -> 'acc) -> 'a list -> 'acc
(** [map_reduce t ~f ~init ~combine xs] folds [combine] over the mapped
    results in submission order; [combine] need not be associative or
    commutative for the result to be deterministic. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  Outstanding queued tasks are
    drained first; calling {!map} afterwards raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool, shutting it down on exit
    (also on exceptions). *)
