type t = {
  n : int;
  seed : int;
  period : int;
  mutable rekeys : int;
  mutable since : int;
  mutable map : int array;       (* logical -> physical, a permutation of [0, n) *)
  counts : int array;            (* per physical line, incl. migration copies *)
  mutable migrations : int;
}

(* Seeded Fisher–Yates permutation of [0, n).  [Splitmix.int] is
   rejection-sampled, so the permutation is uniform and bias-free for any
   (seed, generation) pair. *)
let permutation ~seed ~generation n =
  let rng = Plim_util.Splitmix.create (Plim_util.Splitmix.derive seed generation) in
  let p = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Plim_util.Splitmix.int rng (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p

let create ?(period = 50_000) ~seed n =
  if n <= 0 then invalid_arg "Wolfram.create: need at least one line";
  if period <= 0 then invalid_arg "Wolfram.create: period must be positive";
  { n; seed; period; rekeys = 0; since = 0;
    map = permutation ~seed ~generation:0 n;
    counts = Array.make n 0; migrations = 0 }

let num_lines t = t.n

let physical t la =
  if la < 0 || la >= t.n then invalid_arg "Wolfram.physical: address out of range";
  t.map.(la)

let rekey ?on_migrate t =
  t.rekeys <- t.rekeys + 1;
  let next = permutation ~seed:t.seed ~generation:t.rekeys t.n in
  for la = 0 to t.n - 1 do
    if next.(la) <> t.map.(la) then begin
      (* the line's data is copied to its new physical home: one write *)
      t.counts.(next.(la)) <- t.counts.(next.(la)) + 1;
      t.migrations <- t.migrations + 1;
      match on_migrate with Some f -> f next.(la) | None -> ()
    end
  done;
  t.map <- next

let write ?on_migrate t la =
  let pa = physical t la in
  t.counts.(pa) <- t.counts.(pa) + 1;
  t.since <- t.since + 1;
  if t.since >= t.period then begin
    t.since <- 0;
    rekey ?on_migrate t
  end

let rekeys t = t.rekeys

let migration_writes t = t.migrations

let physical_write_counts t = Array.copy t.counts

let migration_overhead ~period ~lines =
  if period <= 0 then invalid_arg "Wolfram.migration_overhead: period must be positive";
  float_of_int lines /. float_of_int period

let replay ?period ~seed ~executions per_exec_writes =
  let n = Array.length per_exec_writes in
  let t = create ?period ~seed n in
  let remaining = Array.make n 0 in
  for _ = 1 to executions do
    Array.blit per_exec_writes 0 remaining 0 n;
    let live = ref true in
    while !live do
      live := false;
      for la = 0 to n - 1 do
        if remaining.(la) > 0 then begin
          remaining.(la) <- remaining.(la) - 1;
          write t la;
          live := true
        end
      done
    done
  done;
  physical_write_counts t
