module Metrics = Plim_obs.Metrics
module Trace = Plim_obs.Trace

type t = {
  state : Bytes.t;                 (* 1 = LRS/logic 1 *)
  writes : int array;
  transitions : int array;
  failed : Bytes.t;
  endurance : int option;
  mutable observer : (cell:int -> writes:int -> unit) option;
}

exception Cell_failed of int

let m_writes = Metrics.counter "crossbar.writes"
let m_reads = Metrics.counter "crossbar.reads"
let m_loads = Metrics.counter "crossbar.loads"
let m_failures = Metrics.counter "crossbar.cell_failures"

let create ?endurance n =
  if n < 0 then invalid_arg "Crossbar.create: negative size";
  { state = Bytes.make n '\000';
    writes = Array.make n 0;
    transitions = Array.make n 0;
    failed = Bytes.make n '\000';
    endurance;
    observer = None }

let set_observer t obs = t.observer <- obs

let size t = Array.length t.writes

let check t i =
  if i < 0 || i >= size t then
    invalid_arg (Printf.sprintf "Crossbar: cell %d out of range (size %d)" i (size t))

let get t i = Bytes.get t.state i <> '\000'

let read t i =
  check t i;
  Metrics.incr m_reads;
  get t i

let failed t i =
  check t i;
  Bytes.get t.failed i <> '\000'

let set_state t i b = Bytes.set t.state i (if b then '\001' else '\000')

let peek t i =
  check t i;
  get t i

let apply_write t i b =
  check t i;
  if Bytes.get t.failed i <> '\000' then raise (Cell_failed i);
  t.writes.(i) <- t.writes.(i) + 1;
  Metrics.incr m_writes;
  (match t.observer with
   | Some f -> f ~cell:i ~writes:t.writes.(i)
   | None -> ());
  if get t i <> b then t.transitions.(i) <- t.transitions.(i) + 1;
  set_state t i b;
  if Trace.enabled () then
    Trace.emit "crossbar.write"
      ~args:[ ("cell", Int i); ("value", Bool b); ("writes", Int t.writes.(i)) ];
  match t.endurance with
  | Some budget when t.writes.(i) >= budget ->
    Bytes.set t.failed i '\001';
    Metrics.incr m_failures;
    if Trace.enabled () then
      Trace.emit "crossbar.fail" ~args:[ ("cell", Int i); ("writes", Int t.writes.(i)) ]
  | Some _ | None -> ()

let write t i b = apply_write t i b

let rm3 t ~p ~q i =
  check t i;
  let z = get t i in
  let nq = not q in
  let result = (p && nq) || (p && z) || (nq && z) in
  apply_write t i result

let load t i b =
  check t i;
  if Bytes.get t.failed i <> '\000' then raise (Cell_failed i);
  Metrics.incr m_loads;
  set_state t i b

let writes t i =
  check t i;
  t.writes.(i)

let write_counts t = Array.copy t.writes

let transitions t i =
  check t i;
  t.transitions.(i)

let transition_counts t = Array.copy t.transitions

let num_failed t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.failed;
  !n

let reset_counters t =
  Array.fill t.writes 0 (size t) 0;
  Array.fill t.transitions 0 (size t) 0
