(** Behavioural model of an RRAM crossbar of bipolar resistive switches
    (BRS), the memory substrate of the PLiM computer (Gaillardon et al.,
    DATE'16).

    Each cell stores one bit as its resistance state (LRS = logic 1,
    HRS = logic 0).  The model tracks per-cell write counts — the metric
    the paper's endurance-management techniques balance — and an optional
    endurance budget after which a cell hard-fails (stuck at its last
    value).

    Two write-counting conventions are exposed:
    - [writes]: every write *operation* applied to the cell (the paper's
      metric: each executed RM3 instruction writes its destination once);
    - [transitions]: writes that actually toggled the resistance state,
      for device-physics-oriented ablations. *)

type t

exception Cell_failed of int
(** Raised (with the cell index) by {!write}, {!rm3} and {!load} when the
    addressed cell has exhausted its endurance budget and hard-failed.
    Campaigns and the {!Plim_fault} layer catch it precisely instead of a
    bare [Failure]. *)

val create : ?endurance:int -> int -> t
(** [create ?endurance n] is an array of [n] fresh cells in HRS (0). *)

val size : t -> int

val read : t -> int -> bool

val peek : t -> int -> bool
(** Current state without counting a read in the metrics — an
    observability back door for write-verify read-backs and fault
    wrappers, not a modelled array operation. *)

val write : t -> int -> bool -> unit
(** Plain memory write (controller off).  Counts one write.
    @raise Cell_failed if the cell has hard-failed. *)

val rm3 : t -> p:bool -> q:bool -> int -> unit
(** The intrinsic resistive-majority operation executed during a write
    cycle: [Z <- <P, !Q, Z>] where [Z] is the addressed cell's current
    state.  Counts one write on the cell. *)

val load : t -> int -> bool -> unit
(** Initialisation write used to deposit primary inputs before the
    computation starts; does not count toward write statistics (the paper
    measures computation writes only).
    @raise Cell_failed if the cell has hard-failed. *)

val set_observer : t -> (cell:int -> writes:int -> unit) option -> unit
(** Install (or clear, with [None]) the wear observer: a hook invoked
    synchronously on every {e counted} write — after the cell's write
    counter is bumped, before the endurance check — with the cell index
    and its new cumulative write count.  One observer per crossbar;
    telemetry samplers use it to snapshot wear without polling
    {!write_counts} on hot paths.  [load] (uncounted) never fires it. *)

val writes : t -> int -> int
val write_counts : t -> int array
val transitions : t -> int -> int
val transition_counts : t -> int array
val failed : t -> int -> bool
val num_failed : t -> int
val reset_counters : t -> unit
