(** WoLFRaM-style programmable address remapping (arXiv 2010.02825).

    A seeded pseudo-random permutation maps each logical line to a
    physical line.  Every [period] logical writes the permutation is
    {e re-keyed}: a fresh seed-derived permutation is drawn and every line
    whose physical home changed is copied there (one migration write per
    moved line).  Over many generations each physical line spends equal
    time backing hot and cold logical addresses, so wear spreads uniformly
    even for pathologically skewed write streams — the property Start-Gap
    alone cannot provide when a single line is written in a tight loop.

    The layer composes with the rest of the address stack:
    {!Start_gap} rotation applies {e after} this permutation
    (logical → Wolfram → Start-Gap → {!Plim_fault.Remap} spare
    patching), and every layer stays a bijection onto its own range.

    Migration cost: a re-key moves at most [n] lines every [period]
    writes, an amortised overhead of [n / period] extra writes per logical
    write ({!migration_overhead}). *)

type t

val create : ?period:int -> seed:int -> int -> t
(** [create ~seed n] maps [n] logical lines onto [n] physical lines,
    re-keying every [period] (default 50_000) logical writes.  The initial
    map is already a seeded permutation, not the identity.
    @raise Invalid_argument if [n <= 0] or [period <= 0]. *)

val num_lines : t -> int

val physical : t -> int -> int
(** Current physical line of a logical address; a bijection on [0, n).
    @raise Invalid_argument out of range. *)

val write : ?on_migrate:(int -> unit) -> t -> int -> unit
(** Record one logical write; counts the write against the current
    physical line and re-keys when the period elapses.  [on_migrate] is
    called with each physical line that receives a migration copy during
    a re-key triggered by this write, letting a wear substrate (e.g. a
    {!Crossbar}) charge the copies. *)

val rekeys : t -> int
(** Re-key generations performed so far. *)

val migration_writes : t -> int
(** Total migration copies charged across all re-keys. *)

val physical_write_counts : t -> int array
(** Per-physical-line write counts, including migration copies. *)

val migration_overhead : period:int -> lines:int -> float
(** Amortised extra writes per logical write, [lines /. period] — the
    closed-form stationary overhead used by {!Plim_serve.Horizon}. *)

val replay : ?period:int -> seed:int -> executions:int -> int array -> int array
(** [replay ~seed ~executions per_exec_writes] replays [executions] runs
    of a program that writes logical line [i] [per_exec_writes.(i)] times
    (round-robin interleaved) through a fresh map and returns the physical
    write counts — the empirical counterpart of the closed-form uniform
    rate. *)
