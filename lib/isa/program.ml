type t = {
  instrs : Instruction.t array;
  num_cells : int;
  pi_cells : (string * int) array;
  po_cells : (string * int) array;
}

let validate t =
  let check_cell what i =
    if i < 0 || i >= t.num_cells then
      invalid_arg
        (Printf.sprintf "Program.make: %s cell %d out of range (num_cells %d)" what i
           t.num_cells)
  in
  Array.iter
    (fun (instr : Instruction.t) ->
      (match instr.Instruction.a with
      | Instruction.Cell i -> check_cell "operand" i
      | Instruction.Const _ -> ());
      (match instr.Instruction.b with
      | Instruction.Cell i -> check_cell "operand" i
      | Instruction.Const _ -> ());
      check_cell "destination" instr.Instruction.z)
    t.instrs;
  Array.iter (fun (_, i) -> check_cell "input" i) t.pi_cells;
  Array.iter (fun (_, i) -> check_cell "output" i) t.po_cells;
  (* Names must be unique per direction: a duplicate would make the
     input-vector and output maps ambiguous.  Cells may be shared — two
     inputs when the compiler reuses the device of an input nothing reads,
     two outputs when they reference the same MIG node. *)
  let check_names what names =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun (name, _) ->
        if Hashtbl.mem tbl name then
          invalid_arg (Printf.sprintf "Program.make: duplicate %s name %S" what name);
        Hashtbl.add tbl name ())
      names
  in
  check_names "input" t.pi_cells;
  check_names "output" t.po_cells

let make ~instrs ~num_cells ~pi_cells ~po_cells =
  let t = { instrs; num_cells; pi_cells; po_cells } in
  validate t;
  t

let length t = Array.length t.instrs

let num_cells t = t.num_cells

let static_write_counts t =
  let counts = Array.make t.num_cells 0 in
  Array.iter
    (fun (instr : Instruction.t) ->
      counts.(instr.Instruction.z) <- counts.(instr.Instruction.z) + 1)
    t.instrs;
  counts

let iter f t = Array.iter f t.instrs
