(** A compiled PLiM program: the instruction stream plus the memory map
    binding primary inputs and outputs to cells.

    [num_cells] is the paper's #R metric (number of RRAM devices used);
    [length] is #I (number of RM3 instructions). *)

type t = {
  instrs : Instruction.t array;
  num_cells : int;
  pi_cells : (string * int) array;  (** input name -> cell holding it *)
  po_cells : (string * int) array;  (** output name -> cell holding it (true phase) *)
}

val make :
  instrs:Instruction.t array ->
  num_cells:int ->
  pi_cells:(string * int) array ->
  po_cells:(string * int) array ->
  t
(** Validates that every referenced cell is within [0, num_cells) and that
    input names and output names are each duplicate-free.  Cells may be
    shared between inputs (the compiler reuses the device of an unused
    input) and between outputs (two outputs referencing one MIG node).
    @raise Invalid_argument otherwise. *)

val length : t -> int
(** #I: number of RM3 instructions. *)

val num_cells : t -> int
(** #R: number of RRAM devices. *)

val static_write_counts : t -> int array
(** Per-cell write counts of one execution, derived statically: each
    instruction writes its destination exactly once.  This is the array the
    paper's min/max/STDEV columns summarise. *)

val iter : (Instruction.t -> unit) -> t -> unit
