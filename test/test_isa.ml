module I = Plim_isa.Instruction
module Program = Plim_isa.Program
module Asm = Plim_isa.Asm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- instruction -------------------------------------------------------- *)

let test_semantics_table () =
  (* Z <- <A, !B, Z> *)
  let cases =
    [ (false, false, false, false);
      (true, false, false, true);    (* <1,1,0> = 1 *)
      (false, true, false, false);
      (false, false, true, true);    (* <0,1,1> = 1 *)
      (true, true, false, false);    (* <1,0,0> = 0 *)
      (true, false, true, true);
      (false, true, true, false);    (* <0,0,1> = 0 *)
      (true, true, true, true) ]
  in
  List.iter
    (fun (a, b, z, want) ->
      check_bool (Printf.sprintf "a=%b b=%b z=%b" a b z) want (I.semantics ~a ~b ~z))
    cases

let test_set_const () =
  List.iter
    (fun z0 ->
      check_bool "set 1 from any state" true
        (let i = I.set_const true 0 in
         match (i.I.a, i.I.b) with
         | I.Const a, I.Const b -> I.semantics ~a ~b ~z:z0 = true
         | _ -> false);
      check_bool "set 0 from any state" true
        (let i = I.set_const false 0 in
         match (i.I.a, i.I.b) with
         | I.Const a, I.Const b -> I.semantics ~a ~b ~z:z0 = false
         | _ -> false))
    [ false; true ]

let test_validation () =
  Alcotest.check_raises "negative dest" (Invalid_argument "Instruction.rm3: negative destination")
    (fun () -> ignore (I.rm3 ~a:(I.Const true) ~b:(I.Const false) ~z:(-1)));
  Alcotest.check_raises "negative operand"
    (Invalid_argument "Instruction.rm3: negative operand cell") (fun () ->
      ignore (I.rm3 ~a:(I.Cell (-2)) ~b:(I.Const false) ~z:0))

let test_printing () =
  Alcotest.(check string) "pp" "RM3 %3, 1, %7"
    (I.to_string (I.rm3 ~a:(I.Cell 3) ~b:(I.Const true) ~z:7))

(* --- program ------------------------------------------------------------- *)

let sample_program () =
  Program.make
    ~instrs:
      [| I.set_const true 2;
         I.rm3 ~a:(I.Cell 0) ~b:(I.Cell 1) ~z:2;
         I.rm3 ~a:(I.Const false) ~b:(I.Cell 2) ~z:3 |]
    ~num_cells:4
    ~pi_cells:[| ("a", 0); ("b", 1) |]
    ~po_cells:[| ("y", 3) |]

let test_program_stats () =
  let p = sample_program () in
  check_int "#I" 3 (Program.length p);
  check_int "#R" 4 (Program.num_cells p);
  Alcotest.(check (array int)) "static writes" [| 0; 0; 2; 1 |] (Program.static_write_counts p)

let test_program_validation () =
  Alcotest.check_raises "dest out of range"
    (Invalid_argument "Program.make: destination cell 9 out of range (num_cells 2)")
    (fun () ->
      ignore
        (Program.make
           ~instrs:[| I.set_const true 9 |]
           ~num_cells:2 ~pi_cells:[||] ~po_cells:[||]));
  Alcotest.check_raises "input out of range"
    (Invalid_argument "Program.make: input cell 5 out of range (num_cells 2)") (fun () ->
      ignore (Program.make ~instrs:[||] ~num_cells:2 ~pi_cells:[| ("a", 5) |] ~po_cells:[||]))

let test_program_validation_edges () =
  (* an empty instruction stream is a valid (degenerate) program *)
  let p =
    Program.make ~instrs:[||] ~num_cells:1 ~pi_cells:[| ("a", 0) |]
      ~po_cells:[| ("y", 0) |]
  in
  check_int "empty #I" 0 (Program.length p);
  Alcotest.check_raises "output out of range"
    (Invalid_argument "Program.make: output cell 4 out of range (num_cells 2)")
    (fun () ->
      ignore
        (Program.make ~instrs:[||] ~num_cells:2 ~pi_cells:[||] ~po_cells:[| ("y", 4) |]));
  Alcotest.check_raises "duplicate output name"
    (Invalid_argument "Program.make: duplicate output name \"y\"") (fun () ->
      ignore
        (Program.make ~instrs:[||] ~num_cells:2 ~pi_cells:[||]
           ~po_cells:[| ("y", 0); ("y", 1) |]));
  Alcotest.check_raises "duplicate input name"
    (Invalid_argument "Program.make: duplicate input name \"a\"") (fun () ->
      ignore
        (Program.make ~instrs:[||] ~num_cells:2 ~pi_cells:[| ("a", 0); ("a", 1) |]
           ~po_cells:[||]));
  (* shared cells are legal compiler output: an unused input's device is
     reused by the next input, and two outputs may reference one node *)
  let q =
    Program.make ~instrs:[||] ~num_cells:1 ~pi_cells:[| ("a", 0); ("b", 0) |]
      ~po_cells:[| ("y", 0); ("z", 0) |]
  in
  check_int "shared cells accepted" 1 (Program.num_cells q)

(* --- assembly ------------------------------------------------------------- *)

let program_equal (p : Program.t) (q : Program.t) =
  p.Program.instrs = q.Program.instrs
  && p.Program.num_cells = q.Program.num_cells
  && p.Program.pi_cells = q.Program.pi_cells
  && p.Program.po_cells = q.Program.po_cells

let test_asm_roundtrip () =
  let p = sample_program () in
  check_bool "roundtrip" true (program_equal p (Asm.of_string (Asm.to_string p)))

let test_asm_parsing () =
  let text = "; comment line\n.cells 3\n.in a %0\n.out y %2\nRM3 %0, 1, %2 ; trailing\n\n" in
  let p = Asm.of_string text in
  check_int "#I" 1 (Program.length p);
  check_int "cells" 3 (Program.num_cells p);
  Alcotest.(check (array (pair string int))) "pi" [| ("a", 0) |] p.Program.pi_cells

let test_asm_errors () =
  Alcotest.check_raises "missing cells" (Failure "Asm.of_string: missing .cells directive")
    (fun () -> ignore (Asm.of_string "RM3 0, 1, %0"));
  Alcotest.check_raises "bad operand" (Failure "Asm.of_string: line 2: bad operand \"x\"")
    (fun () -> ignore (Asm.of_string ".cells 1\nRM3 x, 1, %0"));
  Alcotest.check_raises "const dest" (Failure "Asm.of_string: line 2: expected a cell reference")
    (fun () -> ignore (Asm.of_string ".cells 1\nRM3 0, 1, 1"))

let asm_roundtrip_random =
  QCheck.Test.make ~count:100 ~name:"assembly roundtrip on random programs"
    QCheck.(list (triple (int_range 0 9) (int_range 0 9) (int_range 0 9)))
    (fun triples ->
      let operand i = if i = 0 then I.Const false else if i = 1 then I.Const true else I.Cell i in
      let instrs =
        List.map (fun (a, b, z) -> I.rm3 ~a:(operand a) ~b:(operand b) ~z) triples
        |> Array.of_list
      in
      let p =
        Program.make ~instrs ~num_cells:10 ~pi_cells:[| ("in0", 0) |]
          ~po_cells:[| ("out0", 9) |]
      in
      program_equal p (Asm.of_string (Asm.to_string p)))

(* parse (print p) = p over real compiler output, not just synthetic
   streams: compiled programs exercise shared PI cells, complement
   temporaries and multi-output maps *)
let compiled_asm_roundtrip =
  QCheck.Test.make ~count:40 ~name:"assembly roundtrip on compiled programs"
    (Plim_check.Gen.arbitrary ~max_inputs:5 ~max_nodes:16 ())
    (fun desc ->
      let module Pipeline = Plim_core.Pipeline in
      let g = Plim_check.Gen.to_mig desc in
      let config = { Pipeline.endurance_full with Pipeline.effort = 1 } in
      let p = (Pipeline.compile config g).Pipeline.program in
      program_equal p (Asm.of_string (Asm.to_string p)))

(* --- binary encoding -------------------------------------------------------- *)

module Encoding = Plim_isa.Encoding

let test_encoding_widths () =
  check_int "1 cell" 1 (Encoding.address_bits ~num_cells:1);
  check_int "2 cells" 1 (Encoding.address_bits ~num_cells:2);
  check_int "3 cells" 2 (Encoding.address_bits ~num_cells:3);
  check_int "256 cells" 8 (Encoding.address_bits ~num_cells:256);
  check_int "257 cells" 9 (Encoding.address_bits ~num_cells:257);
  (* instruction = 2 tagged operands + destination address *)
  check_int "instruction bits" ((2 * 9) + 8) (Encoding.instruction_bits ~num_cells:256)

let encode_roundtrip =
  QCheck.Test.make ~count:300 ~name:"instruction encode/decode roundtrip"
    QCheck.(triple (int_range 0 11) (int_range 0 11) (int_range 0 9))
    (fun (a, b, z) ->
      let operand i =
        if i = 10 then I.Const false else if i = 11 then I.Const true else I.Cell i
      in
      let instr = I.rm3 ~a:(operand a) ~b:(operand b) ~z in
      let bits = Encoding.encode ~num_cells:10 instr in
      I.equal instr (Encoding.decode ~num_cells:10 bits))

let test_encoding_validation () =
  check_bool "oob cell rejected" true
    (try ignore (Encoding.encode ~num_cells:4 (I.set_const true 5)); false
     with Invalid_argument _ -> true);
  check_bool "wrong length rejected" true
    (try ignore (Encoding.decode ~num_cells:4 [| true |]); false
     with Invalid_argument _ -> true)

let test_footprint () =
  let p = sample_program () in
  let f = Encoding.footprint p in
  check_int "data" 4 f.Encoding.data_cells;
  (* 4 cells -> 2 address bits, operand 3 bits, instruction 8 bits, 3 instrs *)
  check_int "instruction cells" 24 f.Encoding.instruction_cells;
  check_int "total" 28 f.Encoding.total_cells;
  check_int "program bits" 24 (Array.length (Encoding.encode_program p))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "isa"
    [ ( "instruction",
        [ Alcotest.test_case "semantics" `Quick test_semantics_table;
          Alcotest.test_case "set_const" `Quick test_set_const;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "printing" `Quick test_printing ] );
      ( "program",
        [ Alcotest.test_case "stats" `Quick test_program_stats;
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "validation edges" `Quick test_program_validation_edges ] );
      ( "assembly",
        [ Alcotest.test_case "roundtrip" `Quick test_asm_roundtrip;
          Alcotest.test_case "parsing" `Quick test_asm_parsing;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          qc asm_roundtrip_random;
          qc compiled_asm_roundtrip ] );
      ( "encoding",
        [ Alcotest.test_case "address widths" `Quick test_encoding_widths;
          Alcotest.test_case "validation" `Quick test_encoding_validation;
          Alcotest.test_case "footprint" `Quick test_footprint;
          qc encode_roundtrip ] ) ]
