(* Shared fixtures for the test suite.

   Everything here is deterministic: fixed seeds, fixed suite prefixes,
   fixed configs.  Modules not listed in the [names] field of test/dune
   are linked into every test executable, so these fixtures are available
   as [Helpers.*] without any stanza changes. *)

module I = Plim_isa.Instruction
module Program = Plim_isa.Program
module Pipeline = Plim_core.Pipeline
module Controller = Plim_machine.Plim_controller
module Workload = Plim_serve.Workload
module Server = Plim_serve.Server
module Suite = Plim_benchgen.Suite

(* substring check for JSON-shape assertions *)
let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- tiny hand-written programs ---------------------------------------- *)

(* NOT gate: z := 1; RM3(0, a, z) -> <0, !a, 1> = !a *)
let not_program () =
  Program.make
    ~instrs:[| I.set_const true 1; I.rm3 ~a:(I.Const false) ~b:(I.Cell 0) ~z:1 |]
    ~num_cells:2 ~pi_cells:[| ("a", 0) |] ~po_cells:[| ("y", 1) |]

(* COPY: z := 0; RM3(a, 0, z) -> <a, 1, 0> = a *)
let copy_program () =
  Program.make
    ~instrs:[| I.set_const false 1; I.rm3 ~a:(I.Cell 0) ~b:(I.Const false) ~z:1 |]
    ~num_cells:2 ~pi_cells:[| ("a", 0) |] ~po_cells:[| ("y", 1) |]

(* MAJ3 in place: cells a b z; RM3 needs !b available, so feed b
   complemented via a NOT into a temp first: full majority test *)
let maj_program () =
  Program.make
    ~instrs:
      [| I.set_const true 3;
         I.rm3 ~a:(I.Const false) ~b:(I.Cell 1) ~z:3; (* t := !b *)
         I.rm3 ~a:(I.Cell 0) ~b:(I.Cell 3) ~z:2 (* z <- <a, b, z> *) |]
    ~num_cells:4
    ~pi_cells:[| ("a", 0); ("b", 1); ("c", 2) |]
    ~po_cells:[| ("y", 2) |]

(* --- compiled 4-bit adder with a reference run -------------------------- *)

(* (program, inputs, reference outputs): one endurance_full compile shared
   by every test that needs a realistic program with a known-good answer *)
let adder4 =
  lazy
    (let g = Plim_benchgen.Arith.adder ~width:4 in
     let p = (Pipeline.compile Pipeline.endurance_full g).Pipeline.program in
     let inputs =
       Array.to_list (Array.mapi (fun i (n, _) -> (n, i mod 3 <> 1)) p.Program.pi_cells)
     in
     let reference, _, _ = Controller.run p ~inputs in
     (p, inputs, reference))

let adder4_program () =
  let p, _, _ = Lazy.force adder4 in
  p

(* --- serve-layer fixtures ----------------------------------------------- *)

(* a small, fast program mix: the first four small-suite circuits *)
let specs4 = List.filteri (fun i _ -> i < 4) Suite.small_suite
let mix4 = Workload.mix_of_suite specs4

(* a small fleet with one spare, faults off, check on *)
let quiet_config =
  { Server.default_config with Server.shards = 3; spare_shards = 1; seed = 5 }

(* serve a stream on a fresh server, optionally on a [jobs]-wide pool *)
let run_server ?jobs cfg stream =
  let server = Server.create cfg in
  let responses =
    match jobs with
    | None -> Server.run server stream
    | Some jobs ->
      Plim_par.with_pool ~jobs (fun pool -> Server.run ~pool server stream)
  in
  (server, responses)
