(* The crossbar-geometry backend: grid arithmetic, the row-parallel
   scheduler's invariants, and functional byte-identity between grouped
   execution and the flat controller. *)

module G = Plim_geometry
module I = Plim_isa.Instruction
module Program = Plim_isa.Program
module Pipeline = Plim_core.Pipeline
module Controller = Plim_machine.Plim_controller
module Campaign = Plim_machine.Campaign
module Suite = Plim_benchgen.Suite
module Splitmix = Plim_util.Splitmix

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected Error: %s" e

(* --- grid arithmetic ---------------------------------------------------- *)

let test_make () =
  let g = G.make_exn ~rows:3 ~cols:4 in
  Alcotest.(check int) "rows" 3 g.G.rows;
  Alcotest.(check int) "cols" 4 g.G.cols;
  Alcotest.(check int) "area" 12 (G.area g);
  Alcotest.(check bool) "make rejects zero rows" true
    (Result.is_error (G.make ~rows:0 ~cols:4));
  Alcotest.(check bool) "make rejects negative cols" true
    (Result.is_error (G.make ~rows:4 ~cols:(-1)));
  Alcotest.check_raises "make_exn raises"
    (Invalid_argument "geometry: bad grid 0x4 (both sides must be >= 1)")
    (fun () -> ignore (G.make_exn ~rows:0 ~cols:4))

let test_of_string () =
  let roundtrip s =
    Alcotest.(check string) s s (G.to_string (ok_exn (G.of_string s)))
  in
  roundtrip "8x64";
  roundtrip "1x1";
  roundtrip "128x2";
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (Result.is_error (G.of_string s)))
    [ ""; "8"; "x"; "8x"; "x8"; "8x0"; "0x8"; "-1x4"; "8x64x2"; "8 x 64"; "ax b" ]

let test_placement () =
  let g = G.make_exn ~rows:3 ~cols:4 in
  Alcotest.(check int) "row of 0" 0 (G.row_of g 0);
  Alcotest.(check int) "row of 5" 1 (G.row_of g 5);
  Alcotest.(check int) "col of 5" 1 (G.col_of g 5);
  Alcotest.(check int) "row of 11" 2 (G.row_of g 11);
  Alcotest.(check bool) "12 cells fit 3x4" true (G.fits g ~num_cells:12);
  Alcotest.(check bool) "13 cells do not fit" false (G.fits g ~num_cells:13)

let test_grid_for () =
  let g = G.grid_for ~cols:4 ~num_cells:10 in
  Alcotest.(check string) "ceil(10/4)=3 rows" "3x4" (G.to_string g);
  Alcotest.(check string) "exact fit" "2x4"
    (G.to_string (G.grid_for ~cols:4 ~num_cells:8));
  Alcotest.(check string) "empty program still gets one row" "1x4"
    (G.to_string (G.grid_for ~cols:4 ~num_cells:0))

(* --- scheduling --------------------------------------------------------- *)

(* two independent NOT gates: cells 0,1 inputs; 2,3 outputs *)
let two_nots () =
  Program.make
    ~instrs:
      [| I.set_const true 2;
         I.set_const true 3;
         I.rm3 ~a:(I.Const false) ~b:(I.Cell 0) ~z:2;
         I.rm3 ~a:(I.Const false) ~b:(I.Cell 1) ~z:3 |]
    ~num_cells:4
    ~pi_cells:[| ("a", 0); ("b", 1) |]
    ~po_cells:[| ("x", 2); ("y", 3) |]

let test_schedule_rejects_overflow () =
  let p = two_nots () in
  let g = G.make_exn ~rows:1 ~cols:3 in
  match G.schedule g p with
  | Ok _ -> Alcotest.fail "4-cell program scheduled on a 3-cell grid"
  | Error e ->
    Alcotest.(check bool) "error mentions the bound" true
      (Helpers.contains ~needle:"4" e)

let test_parallel_row () =
  (* on one wide row, the two independent NOTs (and their two priming
     writes) pair up: 2 groups instead of 4 *)
  let p = two_nots () in
  let s = ok_exn (G.schedule (G.make_exn ~rows:1 ~cols:4) p) in
  ok_exn (G.validate p s);
  Alcotest.(check int) "two groups" 2 (G.num_groups s);
  Alcotest.(check int) "width two" 2 (G.max_group_size s);
  Alcotest.(check int) "no cross-row singletons" 0 s.G.s_cross_row

let test_serial_column () =
  (* cols = 1: every row holds one cell, so every RM3 touching two cells
     is cross-row and the schedule degenerates to the instruction stream *)
  let p = two_nots () in
  let s = ok_exn (G.schedule (G.make_exn ~rows:4 ~cols:1) p) in
  ok_exn (G.validate p s);
  Alcotest.(check int) "one group per instruction" (Program.length p)
    (G.num_groups s);
  Alcotest.(check int) "all singletons" 1 (G.max_group_size s)

let test_hazard_serializes () =
  (* z depends on both priming writes through cell 2: RAW forces the
     chain to serialize even though everything is in one row *)
  let p =
    Program.make
      ~instrs:
        [| I.set_const true 1;
           I.rm3 ~a:(I.Const false) ~b:(I.Cell 0) ~z:1;
           I.rm3 ~a:(I.Cell 1) ~b:(I.Const false) ~z:2 |]
      ~num_cells:3
      ~pi_cells:[| ("a", 0) |]
      ~po_cells:[| ("y", 2) |]
  in
  let s = ok_exn (G.schedule (G.make_exn ~rows:1 ~cols:3) p) in
  ok_exn (G.validate p s);
  Alcotest.(check int) "fully serial" 3 (G.num_groups s)

let suite_programs =
  lazy
    (List.filteri (fun i _ -> i < 6) Suite.small_suite
    |> List.map (fun spec ->
           let g = Suite.build_cached spec in
           ( spec.Suite.name,
             (Pipeline.compile Pipeline.endurance_full g).Pipeline.program )))

let grids_for p =
  let n = Program.num_cells p in
  List.map (fun cols -> G.grid_for ~cols ~num_cells:n) [ 1; 3; 8; 32 ]

let test_suite_invariants () =
  List.iter
    (fun (name, p) ->
      let n_instr = Program.length p in
      List.iter
        (fun grid ->
          let ctx = Printf.sprintf "%s@%s" name (G.to_string grid) in
          let s = ok_exn (G.schedule grid p) in
          (match G.validate p s with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: validate: %s" ctx e);
          if G.num_groups s > n_instr then
            Alcotest.failf "%s: %d groups > %d instructions" ctx
              (G.num_groups s) n_instr;
          if grid.G.cols = 1 && G.num_groups s <> n_instr then
            Alcotest.failf "%s: serial grid gave %d groups for %d instrs" ctx
              (G.num_groups s) n_instr)
        (grids_for p))
    (Lazy.force suite_programs)

let test_schedule_deterministic () =
  let name, p = List.hd (Lazy.force suite_programs) in
  ignore name;
  let grid = G.grid_for ~cols:8 ~num_cells:(Program.num_cells p) in
  let s1 = ok_exn (G.schedule grid p) and s2 = ok_exn (G.schedule grid p) in
  Alcotest.(check bool) "same groups" true (s1.G.s_groups = s2.G.s_groups)

(* --- grouped execution vs the flat controller --------------------------- *)

let random_inputs rng p =
  Array.to_list
    (Array.map (fun (n, _) -> (n, Splitmix.bool rng)) p.Program.pi_cells)

let test_run_grouped_identity () =
  let rng = Splitmix.create 0xC0DE in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun grid ->
          for _ = 1 to 3 do
            let inputs = random_inputs rng p in
            let flat, _, fstats = Controller.run p ~inputs in
            let grouped, _, gstats =
              ok_exn (Controller.run_grouped ~geometry:grid p ~inputs)
            in
            let ctx = Printf.sprintf "%s@%s" name (G.to_string grid) in
            Alcotest.(check (list (pair string bool)))
              (ctx ^ " outputs") flat grouped;
            Alcotest.(check int)
              (ctx ^ " cycles")
              fstats.Controller.cycles gstats.Controller.g_cycles;
            Alcotest.(check int)
              (ctx ^ " instructions")
              fstats.Controller.instructions gstats.Controller.g_instructions
          done)
        (grids_for p))
    (Lazy.force suite_programs)

let test_run_grouped_wear_identity () =
  (* grouping must not change which cells get written how often *)
  let _, p = List.hd (Lazy.force suite_programs) in
  let inputs =
    Array.to_list (Array.map (fun (n, _) -> (n, true)) p.Program.pi_cells)
  in
  let _, xb_flat, _ = Controller.run p ~inputs in
  let grid = G.grid_for ~cols:8 ~num_cells:(Program.num_cells p) in
  let _, xb_grp, _ = ok_exn (Controller.run_grouped ~geometry:grid p ~inputs) in
  Alcotest.(check bool) "per-cell write counts equal" true
    (Plim_rram.Crossbar.write_counts xb_flat
    = Plim_rram.Crossbar.write_counts xb_grp)

let test_static_groups () =
  let _, p = List.hd (Lazy.force suite_programs) in
  let grid = G.grid_for ~cols:8 ~num_cells:(Program.num_cells p) in
  let n = ok_exn (Controller.static_groups ~geometry:grid p) in
  let s = ok_exn (G.schedule grid p) in
  Alcotest.(check int) "static_groups = schedule groups" (G.num_groups s) n

let test_campaign_group_latency () =
  let _, p = List.hd (Lazy.force suite_programs) in
  let grid = G.grid_for ~cols:8 ~num_cells:(Program.num_cells p) in
  let o =
    Campaign.run_until_failure ~geometry:grid ~endurance:100 ~max_executions:3 p
  in
  (match o.Campaign.group_latency with
  | None -> Alcotest.fail "campaign dropped the geometry latency"
  | Some gl ->
    let s = ok_exn (G.schedule grid p) in
    Alcotest.(check int) "group latency" (G.num_groups s) gl);
  let o' = Campaign.run_until_failure ~endurance:100 ~max_executions:3 p in
  Alcotest.(check bool) "no geometry, no latency" true
    (o'.Campaign.group_latency = None)

let test_campaign_rejects_overflow () =
  let _, p = List.hd (Lazy.force suite_programs) in
  let tiny = G.make_exn ~rows:1 ~cols:2 in
  Alcotest.(check bool) "non-fitting grid is a config error" true
    (try
       ignore
         (Campaign.run_until_failure ~geometry:tiny ~endurance:100
            ~max_executions:1 p);
       false
     with Invalid_argument _ -> true)

(* --- property tests ----------------------------------------------------- *)

(* random straight-line programs over a small cell pool: every operand
   combination, including aliasing (a = z, b = z) and repeated writes *)
let program_gen =
  QCheck.Gen.(
    let operand =
      oneof [ map (fun b -> I.Const b) bool; map (fun c -> I.Cell c) (int_bound 7) ]
    in
    let instr =
      map3 (fun a b z -> I.rm3 ~a ~b ~z) operand operand (int_bound 7)
    in
    map
      (fun instrs ->
        Program.make
          ~instrs:(Array.of_list instrs)
          ~num_cells:8
          ~pi_cells:[| ("a", 0); ("b", 1) |]
          ~po_cells:[| ("x", 6); ("y", 7) |])
      (list_size (int_range 1 24) instr))

let program_arb = QCheck.make ~print:Plim_isa.Asm.to_string program_gen

let prop_schedule_valid =
  QCheck.Test.make ~count:300 ~name:"random programs schedule validly on random grids"
    QCheck.(pair program_arb (int_range 1 10))
    (fun (p, cols) ->
      let grid = G.grid_for ~cols ~num_cells:(Program.num_cells p) in
      let s =
        match G.schedule grid p with
        | Ok s -> s
        | Error e -> QCheck.Test.fail_reportf "schedule: %s" e
      in
      (match G.validate p s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "validate: %s" e);
      G.num_groups s <= Program.length p
      && (grid.G.cols > 1 || G.num_groups s = Program.length p))

let prop_grouped_matches_flat =
  QCheck.Test.make ~count:300
    ~name:"grouped execution = flat execution on random programs"
    QCheck.(triple program_arb (int_range 1 10) (pair bool bool))
    (fun (p, cols, (va, vb)) ->
      let grid = G.grid_for ~cols ~num_cells:(Program.num_cells p) in
      let inputs = [ ("a", va); ("b", vb) ] in
      let flat, _, fstats = Controller.run p ~inputs in
      match Controller.run_grouped ~geometry:grid p ~inputs with
      | Error e -> QCheck.Test.fail_reportf "run_grouped: %s" e
      | Ok (grouped, _, gstats) ->
        flat = grouped && fstats.Controller.cycles = gstats.Controller.g_cycles)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "geometry"
    [ ( "grid",
        [ Alcotest.test_case "make / area" `Quick test_make;
          Alcotest.test_case "of_string / to_string" `Quick test_of_string;
          Alcotest.test_case "row-major placement" `Quick test_placement;
          Alcotest.test_case "grid_for" `Quick test_grid_for ] );
      ( "schedule",
        [ Alcotest.test_case "area overflow rejected" `Quick
            test_schedule_rejects_overflow;
          Alcotest.test_case "independent ops share a row group" `Quick
            test_parallel_row;
          Alcotest.test_case "cols=1 degenerates to serial" `Quick
            test_serial_column;
          Alcotest.test_case "hazards serialize" `Quick test_hazard_serializes;
          Alcotest.test_case "suite invariants across grids" `Quick
            test_suite_invariants;
          Alcotest.test_case "deterministic" `Quick test_schedule_deterministic ]
      );
      ( "execution",
        [ Alcotest.test_case "grouped run = flat run (suite)" `Quick
            test_run_grouped_identity;
          Alcotest.test_case "grouped wear = flat wear" `Quick
            test_run_grouped_wear_identity;
          Alcotest.test_case "static_groups" `Quick test_static_groups;
          Alcotest.test_case "campaign group latency" `Quick
            test_campaign_group_latency;
          Alcotest.test_case "campaign rejects non-fitting grid" `Quick
            test_campaign_rejects_overflow ] );
      ( "properties",
        [ qc prop_schedule_valid; qc prop_grouped_matches_flat ] ) ]
