module Vec = Plim_util.Vec
module Splitmix = Plim_util.Splitmix
module Lazy_heap = Plim_util.Lazy_heap
module Stats = Plim_stats.Stats
module Lifetime = Plim_stats.Lifetime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Vec ------------------------------------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    check_int "push returns index" i (Vec.push v (i * 2))
  done;
  check_int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check_int "get" (i * 2) (Vec.get v i)
  done

let test_vec_set () =
  let v = Vec.of_array ~dummy:0 [| 1; 2; 3 |] in
  Vec.set v 1 42;
  Alcotest.(check (list int)) "set" [ 1; 42; 3 ] (Vec.to_list v)

let test_vec_pop () =
  let v = Vec.of_array ~dummy:0 [| 1; 2 |] in
  Alcotest.(check (option int)) "pop" (Some 2) (Vec.pop v);
  Alcotest.(check (option int)) "pop" (Some 1) (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_vec_bounds () =
  let v = Vec.of_array ~dummy:0 [| 1 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 1 out of bounds (length 1)")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "neg" (Invalid_argument "Vec: index -1 out of bounds (length 1)")
    (fun () -> ignore (Vec.get v (-1)))

let test_vec_clear_iter () =
  let v = Vec.of_array ~dummy:0 [| 5; 6; 7 |] in
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (2, 7); (1, 6); (0, 5) ] !acc;
  check_int "fold" 18 (Vec.fold_left ( + ) 0 v);
  check_bool "exists" true (Vec.exists (( = ) 6) v);
  check_bool "exists not" false (Vec.exists (( = ) 9) v);
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v)

let vec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"vec of_array/to_array roundtrip"
    QCheck.(array small_int)
    (fun a -> Vec.to_array (Vec.of_array ~dummy:0 a) = a)

(* --- Splitmix -------------------------------------------------------- *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 99 and b = Splitmix.create 99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next64 a) (Splitmix.next64 b)
  done

let test_splitmix_copy () =
  let a = Splitmix.create 7 in
  ignore (Splitmix.next64 a);
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copy continues stream" (Splitmix.next64 a) (Splitmix.next64 b)

let splitmix_int_bounds =
  QCheck.Test.make ~count:500 ~name:"splitmix int in bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Splitmix.create seed in
      let x = Splitmix.int rng bound in
      x >= 0 && x < bound)

let test_splitmix_float_range () =
  let rng = Splitmix.create 3 in
  for _ = 1 to 1000 do
    let f = Splitmix.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

(* --- Fnv ------------------------------------------------------------- *)

let test_fnv_known_vectors () =
  (* reference FNV-1a 64-bit digests; changing these silently would
     orphan every corpus file and serve cache key *)
  Alcotest.(check string) "empty" "cbf29ce484222325" (Plim_util.Fnv.digest_string "");
  Alcotest.(check string) "a" "af63dc4c8601ec8c" (Plim_util.Fnv.digest_string "a");
  Alcotest.(check string) "foobar" "85944171f73967e8"
    (Plim_util.Fnv.digest_string "foobar")

let test_fnv_distinct () =
  let seen = Hashtbl.create 256 in
  for i = 0 to 999 do
    let d = Plim_util.Fnv.digest_string (string_of_int i) in
    check_int "hex width" 16 (String.length d);
    if Hashtbl.mem seen d then Alcotest.failf "collision at %d (%s)" i d;
    Hashtbl.add seen d ()
  done

let test_fnv_int64_consistent () =
  Alcotest.(check string) "hex of int64" "85944171f73967e8"
    (Printf.sprintf "%016Lx" (Plim_util.Fnv.digest_int64 "foobar"))

let test_splitmix_bits () =
  let rng = Splitmix.create 4 in
  check_int "bits width" 17 (Array.length (Splitmix.bits rng ~width:17))

let test_splitmix_int_uniform () =
  (* rejection sampling kills the modulo bias: over a bound that does not
     divide 2^62, every residue class must land within a few percent of
     the expected count.  10 buckets x 20k draws: expect 2000 per bucket,
     binomial sigma ~ 42, so +-10% (+-200, ~4.7 sigma) is a smoke bound
     that a modulo-biased generator over a skewed bound would still pass —
     the real bias guard is the chi-square below over a pathological
     bound. *)
  let rng = Splitmix.create 0x5EED in
  let buckets = 10 and draws = 20_000 in
  let counts = Array.make buckets 0 in
  for _ = 1 to draws do
    let x = Splitmix.int rng buckets in
    counts.(x) <- counts.(x) + 1
  done;
  let expect = draws / buckets in
  Array.iteri
    (fun i c ->
      if abs (c - expect) > expect / 10 then
        Alcotest.failf "bucket %d: %d draws, expected %d +- 10%%" i c expect)
    counts;
  (* chi-square over bound 3 * 2^60: with plain [next mod bound] the three
     residues would split ~50/25/25 (chi2 ~ draws/2); uniform draws keep
     chi2 near 2.  Anything under 20 is a pass with huge margin. *)
  let bound = 3 * (1 lsl 60) in
  let third = Array.make 3 0 in
  let draws3 = 3_000 in
  for _ = 1 to draws3 do
    let x = Splitmix.int rng bound in
    let k = if x < bound / 3 then 0 else if x < 2 * (bound / 3) then 1 else 2 in
    third.(k) <- third.(k) + 1
  done;
  let e = float_of_int draws3 /. 3.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. e in
        acc +. ((d *. d) /. e))
      0.0 third
  in
  if chi2 > 20.0 then Alcotest.failf "chi-square %f over bound 3*2^60" chi2

let test_splitmix_derive () =
  (* pure in (root, index): same pair, same seed *)
  check_int "reproducible" (Splitmix.derive 42 3) (Splitmix.derive 42 3);
  (* distinct indices and roots give distinct streams *)
  let seen = Hashtbl.create 64 in
  for root = 0 to 7 do
    for i = 0 to 7 do
      let s = Splitmix.derive root i in
      if Hashtbl.mem seen s then
        Alcotest.failf "derive collision at root=%d i=%d" root i;
      Hashtbl.replace seen s ()
    done
  done;
  (* the derived seed is not the root's own stream shifted: task streams
     must not overlap the parent generator *)
  let parent = Splitmix.create 42 in
  let first = Splitmix.int parent max_int in
  check_bool "derived differs from parent draw" true (Splitmix.derive 42 0 <> first)

(* --- Lazy_heap ------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Lazy_heap.create ~capacity:10 in
  Lazy_heap.insert h (3, 0, 0) 1;
  Lazy_heap.insert h (1, 0, 0) 2;
  Lazy_heap.insert h (2, 0, 0) 3;
  Alcotest.(check (option (pair (triple int int int) int)))
    "min" (Some ((1, 0, 0), 2)) (Lazy_heap.pop_min h);
  Alcotest.(check (option (pair (triple int int int) int)))
    "next" (Some ((2, 0, 0), 3)) (Lazy_heap.pop_min h);
  Alcotest.(check (option (pair (triple int int int) int)))
    "last" (Some ((3, 0, 0), 1)) (Lazy_heap.pop_min h);
  check_bool "empty" true (Lazy_heap.is_empty h)

let test_heap_rekey () =
  let h = Lazy_heap.create ~capacity:10 in
  Lazy_heap.insert h (5, 0, 0) 1;
  Lazy_heap.insert h (4, 0, 0) 2;
  (* element 1 improves past element 2 *)
  Lazy_heap.insert h (1, 0, 0) 1;
  Alcotest.(check (option (pair (triple int int int) int)))
    "rekeyed element wins" (Some ((1, 0, 0), 1)) (Lazy_heap.pop_min h);
  check_int "one live left" 1 (Lazy_heap.live_count h)

let test_heap_remove () =
  let h = Lazy_heap.create ~capacity:10 in
  Lazy_heap.insert h (1, 0, 0) 1;
  Lazy_heap.insert h (2, 0, 0) 2;
  Lazy_heap.remove h 1;
  Alcotest.(check (option (pair (triple int int int) int)))
    "removed skipped" (Some ((2, 0, 0), 2)) (Lazy_heap.pop_min h);
  Alcotest.(check (option (pair (triple int int int) int))) "drained" None (Lazy_heap.pop_min h)

let heap_vs_sort =
  QCheck.Test.make ~count:200 ~name:"lazy heap drains in sorted key order"
    QCheck.(list (pair (int_range 0 50) (int_range 0 30)))
    (fun entries ->
      let h = Lazy_heap.create ~capacity:32 in
      (* later inserts for the same element override earlier ones *)
      let final = Hashtbl.create 16 in
      List.iter
        (fun (key, elt) ->
          Lazy_heap.insert h (key, 0, elt) elt;
          Hashtbl.replace final elt key)
        entries;
      let expected =
        Hashtbl.fold (fun elt key acc -> (key, elt) :: acc) final []
        |> List.sort compare
      in
      let rec drain acc =
        match Lazy_heap.pop_min h with
        | None -> List.rev acc
        | Some ((k, _, _), elt) -> drain ((k, elt) :: acc)
      in
      drain [] = expected)

(* --- Stats ----------------------------------------------------------- *)

let test_stats_summary () =
  let s = Stats.summarize [| 2; 4; 4; 4; 5; 5; 7; 9 |] in
  check_int "min" 2 s.Stats.min;
  check_int "max" 9 s.Stats.max;
  check_int "total" 40 s.Stats.total;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "stdev" 2.0 s.Stats.stdev;
  (* nearest-rank quantiles agree with Stats.quantile on the same data *)
  check_int "p50" 4 s.Stats.p50;
  check_int "p90" 9 s.Stats.p90;
  check_int "p99" 9 s.Stats.p99;
  check_int "p50 = quantile 0.5"
    (Stats.quantile 0.5 [| 2; 4; 4; 4; 5; 5; 7; 9 |])
    s.Stats.p50;
  Alcotest.(check (float 1e-9)) "max/mean ratio" 1.8 (Stats.max_mean_ratio s)

let test_stats_singleton () =
  let s = Stats.summarize [| 7 |] in
  Alcotest.(check (float 1e-9)) "stdev of singleton" 0.0 s.Stats.stdev;
  check_int "singleton p50" 7 s.Stats.p50;
  check_int "singleton p99" 7 s.Stats.p99;
  Alcotest.(check (float 1e-9)) "singleton max/mean" 1.0 (Stats.max_mean_ratio s);
  Alcotest.(check (float 1e-9)) "all-zero max/mean" 1.0
    (Stats.max_mean_ratio (Stats.summarize [| 0; 0; 0 |]));
  let z = Stats.summarize [||] in
  Alcotest.(check bool) "empty is zero summary" true (z = Stats.zero_summary);
  check_int "empty count" 0 z.Stats.count;
  check_int "empty total" 0 z.Stats.total

let test_stats_mean_list () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean_list [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 7.5 (Stats.mean_list [ 7.5 ]);
  (* regression: the bench AVG rows fed 0/0 = nan into the tables when a
     suite selection was empty *)
  let e = Stats.mean_list [] in
  check_bool "empty is finite" true (Float.is_finite e);
  Alcotest.(check (float 1e-9)) "empty is 0" 0.0 e

let test_stats_improvement () =
  Alcotest.(check (float 1e-9)) "50%" 50.0 (Stats.improvement_pct ~baseline:10.0 5.0);
  Alcotest.(check (float 1e-9)) "-100%" (-100.0) (Stats.improvement_pct ~baseline:5.0 10.0);
  Alcotest.(check (float 1e-9)) "zero baseline" 0.0 (Stats.improvement_pct ~baseline:0.0 3.0)

let test_stats_quantile () =
  let xs = [| 9; 1; 8; 2; 7; 3; 6; 4; 5 |] in
  check_int "median" 5 (Stats.quantile 0.5 xs);
  check_int "min" 1 (Stats.quantile 0.0 xs);
  check_int "max" 9 (Stats.quantile 1.0 xs)

(* the nearest-rank rule documented in stats.mli: the q-quantile of n
   samples is element ceil(q * n) - 1 of the sorted data, so p99 on
   fewer than 100 samples is exactly the maximum — a tail witness, not
   an interpolated estimate *)
let test_stats_small_n_quantiles () =
  let xs = Array.init 10 (fun i -> (i + 1) * 10) in
  (* 10 samples: ceil(0.99 * 10) - 1 = 9, the last element *)
  check_int "p99 of 10 samples is the max" 100 (Stats.quantile 0.99 xs);
  check_int "summary agrees" 100 (Stats.summarize xs).Stats.p99;
  check_int "p90 of 10 samples" 90 (Stats.quantile 0.9 xs);
  (* any q beyond (n-1)/n collapses to the max *)
  check_int "q just past the last rank" 100 (Stats.quantile 0.91 xs);
  (* at n = 100 the p99 rank finally separates from the max *)
  let big = Array.init 100 (fun i -> i + 1) in
  check_int "p99 of 100 samples" 99 (Stats.quantile 0.99 big);
  check_int "max of 100 samples" 100 (Stats.quantile 1.0 big);
  check_int "p99 of 99 samples still the max" 99
    (Stats.quantile 0.99 (Array.init 99 (fun i -> i + 1)))

let test_stats_histogram () =
  let h = Stats.histogram ~bucket:10 [| 1; 5; 11; 12; 25 |] in
  Alcotest.(check (list (pair int int))) "buckets" [ (0, 2); (10, 2); (20, 1) ] h

let test_stats_gini () =
  Alcotest.(check (float 1e-9)) "uniform gini" 0.0 (Stats.gini [| 5; 5; 5; 5 |]);
  check_bool "concentrated gini high" true (Stats.gini [| 0; 0; 0; 100 |] > 0.7)

let stdev_nonneg =
  QCheck.Test.make ~count:300 ~name:"stdev is non-negative and shift-invariant"
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 1000))
    (fun xs ->
      let a = Array.of_list xs in
      let s = (Stats.summarize a).Stats.stdev in
      let shifted = Array.map (( + ) 17) a in
      let s' = (Stats.summarize shifted).Stats.stdev in
      s >= 0.0 && abs_float (s -. s') < 1e-6)

(* --- Lifetime --------------------------------------------------------- *)

let test_lifetime () =
  let t = Lifetime.estimate ~endurance:1e10 [| 10; 10; 10; 10 |] in
  Alcotest.(check (float 1.0)) "first failure" 1e9 t.Lifetime.executions_to_first_failure;
  Alcotest.(check (float 1e-9)) "balanced" 1.0 t.Lifetime.balance_efficiency;
  let t = Lifetime.estimate ~endurance:1e10 [| 0; 0; 0; 40 |] in
  Alcotest.(check (float 1e-6)) "skewed efficiency" 0.25 t.Lifetime.balance_efficiency;
  let t = Lifetime.estimate ~endurance:1e10 [| 0; 0 |] in
  check_bool "no writes = infinite" true (t.Lifetime.executions_to_first_failure = infinity)

(* --- Jsonx ------------------------------------------------------------- *)

let test_jsonx_escape () =
  let module J = Plim_util.Jsonx in
  Alcotest.(check string) "plain passthrough" "abc" (J.escape "abc");
  Alcotest.(check string) "quote" {|a\"b|} (J.escape "a\"b");
  Alcotest.(check string) "backslash" {|a\\b|} (J.escape "a\\b");
  Alcotest.(check string) "short escapes" {|\n\t\r\b\f|} (J.escape "\n\t\r\b\012");
  Alcotest.(check string) "other control bytes get \\u00XX" {|\u0000\u0001\u001f|}
    (J.escape "\000\001\031");
  (* 0x7f and non-ASCII bytes are not control characters: UTF-8 payloads
     pass through untouched *)
  Alcotest.(check string) "utf-8 passthrough" "caf\xc3\xa9 \x7f"
    (J.escape "caf\xc3\xa9 \x7f");
  Alcotest.(check string) "quote wraps" {|"a\"b"|} (J.quote "a\"b");
  let b = Buffer.create 8 in
  J.escape_into b "x\n";
  J.escape_into b "\"y";
  Alcotest.(check string) "escape_into appends" {|x\n\"y|} (Buffer.contents b)

(* --- Csv --------------------------------------------------------------- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Plim_stats.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Plim_stats.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Plim_stats.Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Plim_stats.Csv.escape "a\nb")

let test_csv_table () =
  Alcotest.(check string) "table" "x,y\n1,\"a,b\"\n"
    (Plim_stats.Csv.table ~header:[ "x"; "y" ] [ [ "1"; "a,b" ] ])

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [ ( "vec",
        [ Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "set" `Quick test_vec_set;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "clear/iter/fold/exists" `Quick test_vec_clear_iter;
          qc vec_roundtrip ] );
      ( "fnv",
        [ Alcotest.test_case "known vectors" `Quick test_fnv_known_vectors;
          Alcotest.test_case "distinct digests" `Quick test_fnv_distinct;
          Alcotest.test_case "int64/string consistency" `Quick
            test_fnv_int64_consistent ] );
      ( "splitmix",
        [ Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "copy" `Quick test_splitmix_copy;
          Alcotest.test_case "float range" `Quick test_splitmix_float_range;
          Alcotest.test_case "bits" `Quick test_splitmix_bits;
          Alcotest.test_case "int uniformity" `Quick test_splitmix_int_uniform;
          Alcotest.test_case "derive" `Quick test_splitmix_derive;
          qc splitmix_int_bounds ] );
      ( "lazy-heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "rekey" `Quick test_heap_rekey;
          Alcotest.test_case "remove" `Quick test_heap_remove;
          qc heap_vs_sort ] );
      ( "stats",
        [ Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "singleton/empty" `Quick test_stats_singleton;
          Alcotest.test_case "mean_list" `Quick test_stats_mean_list;
          Alcotest.test_case "improvement" `Quick test_stats_improvement;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "small-n nearest-rank quantiles" `Quick
            test_stats_small_n_quantiles;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "gini" `Quick test_stats_gini;
          qc stdev_nonneg ] );
      ("lifetime", [ Alcotest.test_case "estimates" `Quick test_lifetime ]);
      ( "jsonx",
        [ Alcotest.test_case "escape vectors" `Quick test_jsonx_escape ] );
      ( "csv",
        [ Alcotest.test_case "escaping" `Quick test_csv_escape;
          Alcotest.test_case "table" `Quick test_csv_table ] ) ]
