(* Regression pins: the compiler is fully deterministic (fixed seeds,
   ordered data structures), so the reproduction numbers ARE the product.
   Any change to the rewriting rules, scheduling heuristics, translation
   cost model or allocator shows up here first — deliberately.

   Baselines generated from the current implementation; update them
   consciously when a heuristic change is intended. *)

module Suite = Plim_benchgen.Suite
module Pipeline = Plim_core.Pipeline
module Program = Plim_isa.Program
module Stats = Plim_stats.Stats

type config_tag = Naive | Endurance_full | Cap10

let config_of = function
  | Naive -> Pipeline.naive
  | Endurance_full -> Pipeline.endurance_full
  | Cap10 -> Pipeline.with_cap 10 Pipeline.endurance_full

let tag_name = function
  | Naive -> "naive"
  | Endurance_full -> "endurance-full"
  | Cap10 -> "cap10"

(* (benchmark, configuration, #I, #R, write stdev) *)
let baselines =
  [ ("adder8", Naive, 221, 19, 9.847311);
    ("adder8", Endurance_full, 131, 19, 1.860807);
    ("adder8", Cap10, 131, 19, 1.860807);
    ("bar8", Naive, 153, 13, 8.294149);
    ("bar8", Endurance_full, 89, 18, 1.899480);
    ("bar8", Cap10, 89, 18, 1.899480);
    ("div8", Naive, 2203, 37, 42.150050);
    ("div8", Endurance_full, 1202, 54, 11.047348);
    ("div8", Cap10, 1232, 133, 0.857473);
    ("max8", Naive, 404, 35, 11.362452);
    ("max8", Endurance_full, 207, 36, 6.079908);
    ("max8", Cap10, 211, 44, 2.633521);
    ("multiplier8", Naive, 1615, 34, 41.178414);
    ("multiplier8", Endurance_full, 946, 36, 14.446474);
    ("multiplier8", Cap10, 976, 104, 1.456469);
    ("sqrt8", Naive, 1359, 31, 28.971729);
    ("sqrt8", Endurance_full, 676, 42, 6.732330);
    ("sqrt8", Cap10, 693, 79, 1.566657);
    ("square8", Naive, 1582, 37, 30.060664);
    ("square8", Endurance_full, 881, 38, 7.587577);
    ("square8", Cap10, 900, 98, 1.986418);
    ("dec4", Naive, 44, 17, 1.087838);
    ("dec4", Endurance_full, 50, 17, 1.161672);
    ("dec4", Cap10, 50, 17, 1.161672);
    ("priority16", Naive, 204, 17, 9.399625);
    ("priority16", Endurance_full, 91, 19, 8.134261);
    ("priority16", Cap10, 100, 19, 4.528763);
    ("voter15", Naive, 371, 18, 9.135638);
    ("voter15", Endurance_full, 198, 20, 1.445683);
    ("voter15", Cap10, 207, 23, 1.668115);
    ("rc_small", Naive, 1317, 48, 18.481868);
    ("rc_small", Endurance_full, 799, 64, 3.423230);
    ("rc_small", Cap10, 827, 90, 1.555595) ]

let graphs = Hashtbl.create 16

let graph name =
  match Hashtbl.find_opt graphs name with
  | Some g -> g
  | None ->
    let g = (Suite.find name).Suite.build () in
    Hashtbl.replace graphs name g;
    g

let check (name, tag, instrs, cells, stdev) () =
  let r = Pipeline.compile (config_of tag) (graph name) in
  Alcotest.(check int) "instructions" instrs (Program.length r.Pipeline.program);
  Alcotest.(check int) "devices" cells (Program.num_cells r.Pipeline.program);
  Alcotest.(check (float 1e-4)) "write stdev" stdev
    r.Pipeline.write_summary.Stats.stdev

(* Counterexample corpus replay: every MIG the fuzzer ever shrank (plus
   the hand-minimized seeds) goes through the full conformance suite on
   every run — a bug found once by fuzzing can never come back. *)
let corpus_tests =
  List.map
    (fun (name, mig) ->
      Alcotest.test_case name `Quick (fun () ->
          match Plim_check.Check.run mig with
          | [] -> ()
          | failures ->
            Alcotest.failf "%d conformance failures:\n%s" (List.length failures)
              (String.concat "\n"
                 (List.map Plim_check.Check.failure_to_string failures))))
    (Plim_check.Corpus.entries "corpus")

let () =
  Alcotest.run "regression"
    [ ( "pins",
        List.map
          (fun ((name, tag, _, _, _) as row) ->
            Alcotest.test_case
              (Printf.sprintf "%s/%s" name (tag_name tag))
              `Quick (check row))
          baselines );
      ("corpus", corpus_tests) ]
