module I = Plim_isa.Instruction
module Program = Plim_isa.Program
module Controller = Plim_machine.Plim_controller
module Crossbar = Plim_rram.Crossbar

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* the NOT / COPY / MAJ3 micro-programs live in Helpers, shared with the
   fault and lifetime suites *)
let not_program = Helpers.not_program
let copy_program = Helpers.copy_program
let maj_program = Helpers.maj_program

let test_not () =
  List.iter
    (fun v ->
      let outputs, _, _ = Controller.run (not_program ()) ~inputs:[ ("a", v) ] in
      check_bool "not" (not v) (List.assoc "y" outputs))
    [ false; true ]

let test_copy () =
  List.iter
    (fun v ->
      let outputs, _, _ = Controller.run (copy_program ()) ~inputs:[ ("a", v) ] in
      check_bool "copy" v (List.assoc "y" outputs))
    [ false; true ]

let test_maj () =
  for m = 0 to 7 do
    let a = m land 1 = 1 and b = m land 2 = 2 and c = m land 4 = 4 in
    let outputs, _, _ =
      Controller.run (maj_program ()) ~inputs:[ ("a", a); ("b", b); ("c", c) ]
    in
    check_bool
      (Printf.sprintf "maj %b %b %b" a b c)
      ((a && b) || (a && c) || (b && c))
      (List.assoc "y" outputs)
  done

let test_stats () =
  let _, xbar, stats = Controller.run (maj_program ()) ~inputs:[ ("a", true); ("b", false); ("c", true) ] in
  check_int "instructions" 3 stats.Controller.instructions;
  (* cycles: set_const (1 write), not (1 read + 1 write), rm3 (2 reads + 1 write) *)
  check_int "cycles" 6 stats.Controller.cycles;
  check_int "temp writes" 2 (Crossbar.writes xbar 3);
  check_int "dest writes" 1 (Crossbar.writes xbar 2);
  check_int "pi cell writes uncounted" 0 (Crossbar.writes xbar 0)

(* static_cycles is the serve layer's latency model: it must equal the
   cycles the controller actually charges, for any program and any
   inputs (the cycle count is input-independent). *)
let test_static_cycles_matches_run () =
  let progs =
    [ ("not", not_program (), [ [ ("a", false) ]; [ ("a", true) ] ]);
      ("copy", copy_program (), [ [ ("a", false) ]; [ ("a", true) ] ]);
      ( "maj",
        maj_program (),
        [ [ ("a", false); ("b", true); ("c", true) ];
          [ ("a", true); ("b", true); ("c", false) ] ] )
    ]
  in
  List.iter
    (fun (name, p, input_sets) ->
      List.iter
        (fun inputs ->
          let _, _, stats = Controller.run p ~inputs in
          check_int
            (Printf.sprintf "%s: static_cycles = run cycles" name)
            (Controller.static_cycles p)
            stats.Controller.cycles)
        input_sets)
    progs

let test_trace () =
  let entries = ref [] in
  let _ =
    Controller.run (not_program ()) ~on_step:(fun e -> entries := e :: !entries)
      ~inputs:[ ("a", true) ]
  in
  let entries = List.rev !entries in
  check_int "two steps" 2 (List.length entries);
  (match entries with
  | [ first; second ] ->
    check_int "pc 0" 0 first.Controller.pc;
    check_bool "z after set" true first.Controller.z_after;
    check_bool "b read" true second.Controller.b_value;
    check_bool "final !a" false second.Controller.z_after
  | _ -> Alcotest.fail "expected 2 entries")

let test_input_binding_errors () =
  let p = not_program () in
  Alcotest.check_raises "missing"
    (Invalid_argument "Plim_controller.run: missing input \"a\"") (fun () ->
      ignore (Controller.run p ~inputs:[]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Plim_controller.run: duplicate input \"a\"") (fun () ->
      ignore (Controller.run p ~inputs:[ ("a", true); ("a", false) ]));
  Alcotest.check_raises "extra" (Invalid_argument "Plim_controller.run: unknown extra inputs")
    (fun () -> ignore (Controller.run p ~inputs:[ ("a", true); ("b", false) ]))

let test_run_vector () =
  let out = Controller.run_vector (not_program ()) [| true |] in
  Alcotest.(check (array bool)) "vector api" [| false |] out;
  Alcotest.check_raises "arity" (Invalid_argument "Plim_controller.run_vector: input arity mismatch")
    (fun () -> ignore (Controller.run_vector (not_program ()) [||]))

let test_endurance_mid_run () =
  (* a 2-write program against a 1-write budget must fail *)
  Alcotest.check_raises "wear-out" (Plim_rram.Crossbar.Cell_failed 1) (fun () ->
      ignore (Controller.run ~endurance:1 (not_program ()) ~inputs:[ ("a", true) ]))

(* --- self-hosted execution -------------------------------------------------- *)

let test_self_hosted_matches_direct () =
  let p = Helpers.adder4_program () in
  let rng = Plim_util.Splitmix.create 77 in
  for _ = 1 to 16 do
    let inputs =
      Array.to_list
        (Array.map
           (fun (n, _) -> (n, Plim_util.Splitmix.bool rng))
           p.Plim_isa.Program.pi_cells)
    in
    let direct, _, dstats = Controller.run p ~inputs in
    let hosted, xbar, hstats = Controller.run_self_hosted p ~inputs in
    Alcotest.(check (list (pair string bool))) "same outputs" direct hosted;
    check_int "same instruction count" dstats.Controller.instructions
      hstats.Controller.instructions;
    check_bool "fetch traffic adds cycles" true
      (hstats.Controller.cycles > dstats.Controller.cycles);
    (* instruction cells are never written during execution *)
    let writes = Crossbar.write_counts xbar in
    let data = p.Plim_isa.Program.num_cells in
    for i = data to Array.length writes - 1 do
      if writes.(i) <> 0 then Alcotest.failf "instruction cell %d written" i
    done
  done

let test_self_hosted_cycle_model () =
  let p = not_program () in
  let _, _, stats = Controller.run_self_hosted p ~inputs:[ ("a", true) ] in
  let per = Plim_isa.Encoding.instruction_bits ~num_cells:2 in
  (* 2 instructions: 2 fetches + 1 operand read (the IMP's cell) + 2 writes *)
  check_int "cycles" ((2 * per) + 1 + 2) stats.Controller.cycles

let test_self_hosted_input_binding_errors () =
  let p = not_program () in
  Alcotest.check_raises "missing"
    (Invalid_argument "Plim_controller.run_self_hosted: missing input \"a\"") (fun () ->
      ignore (Controller.run_self_hosted p ~inputs:[]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Plim_controller.run_self_hosted: duplicate input \"a\"") (fun () ->
      ignore (Controller.run_self_hosted p ~inputs:[ ("a", true); ("a", false) ]));
  Alcotest.check_raises "extra"
    (Invalid_argument "Plim_controller.run_self_hosted: unknown extra inputs") (fun () ->
      ignore (Controller.run_self_hosted p ~inputs:[ ("a", true); ("b", false) ]))

(* --- energy model --------------------------------------------------------- *)

module Energy = Plim_machine.Energy

let test_energy_accounting () =
  let _, xbar, stats =
    Controller.run (maj_program ()) ~inputs:[ ("a", true); ("b", false); ("c", true) ]
  in
  let r = Energy.of_run xbar stats in
  check_int "reads" (stats.Controller.cycles - stats.Controller.instructions) r.Energy.reads;
  check_int "writes" 3 r.Energy.writes;
  check_bool "transitions <= writes" true (r.Energy.transitions <= r.Energy.writes);
  let m = Energy.default_model in
  let expected =
    (float_of_int r.Energy.reads *. m.Energy.read_pj)
    +. (float_of_int r.Energy.transitions *. m.Energy.switch_write_pj)
    +. float_of_int (r.Energy.writes - r.Energy.transitions) *. m.Energy.hold_write_pj
  in
  Alcotest.(check (float 1e-9)) "total" expected r.Energy.total_pj;
  check_bool "per-instruction positive" true (r.Energy.per_instruction_pj > 0.0)

let test_energy_custom_model () =
  let _, xbar, stats = Controller.run (not_program ()) ~inputs:[ ("a", false) ] in
  let model = { Energy.read_pj = 0.0; switch_write_pj = 1.0; hold_write_pj = 1.0 } in
  let r = Energy.of_run ~model xbar stats in
  Alcotest.(check (float 1e-9)) "writes only" (float_of_int r.Energy.writes) r.Energy.total_pj

(* --- endurance campaigns --------------------------------------------------- *)

module Campaign = Plim_machine.Campaign

let campaign_program () =
  (* every execution writes cell 1 twice (NOT program) *)
  not_program ()

let test_campaign_until_failure () =
  let p = campaign_program () in
  let o = Campaign.run_until_failure ~endurance:20 p in
  check_bool "fails" true o.Campaign.failed;
  (* cell 1 takes 2 writes per run: the budget of 20 writes admits exactly
     10 complete executions; the 11th touches the failed cell *)
  check_int "executions before failure" 10 o.Campaign.executions_completed

let test_campaign_max_executions () =
  let p = campaign_program () in
  let o = Campaign.run_until_failure ~endurance:1000 ~max_executions:50 p in
  check_bool "survives" false o.Campaign.failed;
  check_int "all executions" 50 o.Campaign.executions_completed

let test_campaign_matches_static_estimate () =
  let p = Helpers.adder4_program () in
  let endurance = 500 in
  let o = Campaign.run_until_failure ~endurance p in
  let max_writes =
    Array.fold_left max 1 (Program.static_write_counts p)
  in
  let predicted = endurance / max_writes in
  check_bool
    (Printf.sprintf "measured %d ~ predicted %d" o.Campaign.executions_completed predicted)
    true
    (o.Campaign.failed && abs (o.Campaign.executions_completed - predicted) <= 1)

let test_campaign_start_gap_extends_lifetime () =
  let g = Plim_benchgen.Arith.multiplier ~width:4 in
  let p = (Plim_core.Pipeline.compile Plim_core.Pipeline.naive g).Plim_core.Pipeline.program in
  let endurance = 2000 in
  let plain = Campaign.run_until_failure ~endurance ~max_executions:5000 p in
  let rotated =
    Campaign.run_with_start_gap ~psi:50 ~endurance ~max_executions:5000 p
  in
  check_bool
    (Printf.sprintf "start-gap %d >= plain %d executions" rotated.Campaign.executions_completed
       plain.Campaign.executions_completed)
    true
    (rotated.Campaign.executions_completed >= plain.Campaign.executions_completed)

let () =
  Alcotest.run "machine"
    [ ( "controller",
        [ Alcotest.test_case "NOT program" `Quick test_not;
          Alcotest.test_case "COPY program" `Quick test_copy;
          Alcotest.test_case "MAJ program (exhaustive)" `Quick test_maj;
          Alcotest.test_case "run stats" `Quick test_stats;
          Alcotest.test_case "static cycle model matches run" `Quick
            test_static_cycles_matches_run;
          Alcotest.test_case "trace callback" `Quick test_trace;
          Alcotest.test_case "input binding errors" `Quick test_input_binding_errors;
          Alcotest.test_case "run_vector" `Quick test_run_vector;
          Alcotest.test_case "endurance mid-run" `Quick test_endurance_mid_run ] );
      ( "self-hosted",
        [ Alcotest.test_case "matches direct run" `Quick test_self_hosted_matches_direct;
          Alcotest.test_case "cycle model" `Quick test_self_hosted_cycle_model;
          Alcotest.test_case "input binding errors" `Quick
            test_self_hosted_input_binding_errors ] );
      ( "energy",
        [ Alcotest.test_case "accounting" `Quick test_energy_accounting;
          Alcotest.test_case "custom model" `Quick test_energy_custom_model ] );
      ( "campaign",
        [ Alcotest.test_case "until failure" `Quick test_campaign_until_failure;
          Alcotest.test_case "max executions" `Quick test_campaign_max_executions;
          Alcotest.test_case "matches static estimate" `Quick
            test_campaign_matches_static_estimate;
          Alcotest.test_case "start-gap extends lifetime" `Slow
            test_campaign_start_gap_extends_lifetime ] ) ]
