module Mig = Plim_mig.Mig
module Mig_gen = Plim_mig.Mig_gen
module Imp = Plim_imp.Imp
module Alloc = Plim_core.Alloc
module Stats = Plim_stats.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- IMPLY compiler -------------------------------------------------- *)

let test_imp_gates () =
  (* AND / OR / NOT / MAJ through the IMP flow, exhaustively *)
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  let b = Mig.add_input g "b" in
  let c = Mig.add_input g "c" in
  Mig.add_output g "and" (Mig.and_ g a b);
  Mig.add_output g "or" (Mig.or_ g a b);
  Mig.add_output g "not" (Mig.not_ a);
  Mig.add_output g "maj" (Mig.maj g a b c);
  let p = Imp.compile g in
  for m = 0 to 7 do
    let va = m land 1 = 1 and vb = m land 2 = 2 and vc = m land 4 = 4 in
    let outputs, _ = Imp.run p ~inputs:[ ("a", va); ("b", vb); ("c", vc) ] in
    check_bool "and" (va && vb) (List.assoc "and" outputs);
    check_bool "or" (va || vb) (List.assoc "or" outputs);
    check_bool "not" (not va) (List.assoc "not" outputs);
    check_bool "maj" ((va && vb) || (va && vc) || (vb && vc)) (List.assoc "maj" outputs)
  done

let test_imp_nand_cost () =
  (* the canonical NAND: two devices beyond the inputs, three steps
     (Section II: "implemented with two resistive switches and ... three
     computational steps") — our AND = NAND + phase bookkeeping, so a
     single AND output costs 3 instructions + 2 for the final inversion *)
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  let b = Mig.add_input g "b" in
  Mig.add_output g "nand" (Mig.not_ (Mig.and_ g a b));
  let p = Imp.compile g in
  check_int "three steps" 3 (Imp.length p);
  check_int "two inputs + one work device" 3 (Imp.num_cells p)

let test_imp_const_outputs () =
  let g = Mig.create () in
  let _ = Mig.add_input g "a" in
  Mig.add_output g "zero" Mig.false_;
  Mig.add_output g "one" Mig.true_;
  let p = Imp.compile g in
  let outputs, _ = Imp.run p ~inputs:[ ("a", true) ] in
  check_bool "const 0" false (List.assoc "zero" outputs);
  check_bool "const 1" true (List.assoc "one" outputs)

let imp_correct =
  QCheck.Test.make ~count:40 ~name:"IMP compilation is functionally correct"
    QCheck.small_int
    (fun seed ->
      let g = Mig_gen.random ~seed ~num_inputs:6 ~num_nodes:50 ~num_outputs:4 () in
      match Imp.check_random ~trials:6 ~seed g (Imp.compile g) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

let imp_min_write_correct =
  QCheck.Test.make ~count:25 ~name:"IMP + min-write allocation stays correct"
    QCheck.small_int
    (fun seed ->
      let g = Mig_gen.random ~seed ~num_inputs:5 ~num_nodes:40 ~num_outputs:3 () in
      match
        Imp.check_random ~trials:6 ~seed g (Imp.compile ~strategy:Alloc.Min_write g)
      with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

(* Section II's argument, quantitatively: on the same function, RM3
   compilation uses fewer instructions and balances writes better *)
let test_imp_vs_rm3 () =
  let g = Plim_benchgen.Arith.adder ~width:8 in
  let imp = Imp.compile g in
  let rm3 = (Plim_core.Pipeline.compile Plim_core.Pipeline.min_write g).Plim_core.Pipeline.program in
  let imp_stats = Stats.summarize (Imp.static_write_counts imp) in
  let rm3_stats = Stats.summarize (Plim_isa.Program.static_write_counts rm3) in
  check_bool "RM3 needs fewer instructions" true
    (Plim_isa.Program.length rm3 < Imp.length imp);
  check_bool "RM3 balances writes better" true
    (rm3_stats.Stats.stdev < imp_stats.Stats.stdev);
  check_bool "IMP concentrates on work devices" true
    (imp_stats.Stats.max > rm3_stats.Stats.max)

let test_imp_write_accounting () =
  let g = Plim_benchgen.Arith.adder ~width:4 in
  let p = Imp.compile g in
  let inputs =
    Array.to_list (Array.map (fun (n, _) -> (n, true)) p.Imp.pi_cells)
  in
  let _, xbar = Imp.run p ~inputs in
  Alcotest.(check (array int)) "dynamic = static" (Imp.static_write_counts p)
    (Plim_rram.Crossbar.write_counts xbar)

(* start-gap wear levelling tests live in test_rram.ml with the rest of
   the RRAM layer *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "imp"
    [ ( "imply-compiler",
        [ Alcotest.test_case "gates (exhaustive)" `Quick test_imp_gates;
          Alcotest.test_case "NAND cost model" `Quick test_imp_nand_cost;
          Alcotest.test_case "constant outputs" `Quick test_imp_const_outputs;
          Alcotest.test_case "IMP vs RM3 (Section II)" `Quick test_imp_vs_rm3;
          Alcotest.test_case "write accounting" `Quick test_imp_write_accounting;
          qc imp_correct;
          qc imp_min_write_correct ] ) ]
