module Workload = Plim_serve.Workload
module Cache = Plim_serve.Cache
module Shard = Plim_serve.Shard
module Server = Plim_serve.Server
module Suite = Plim_benchgen.Suite
module Fault_model = Plim_fault.Fault_model
module Hgram = Plim_telemetry.Histogram

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* shared fixtures: the 4-circuit mix, quiet fleet config and runner *)
let specs4 = Helpers.specs4
let mix4 = Helpers.mix4

(* --- workload generators --------------------------------------------- *)

let test_zipf_mass () =
  let m = Workload.zipf_mass 1.0 5 in
  let total = Array.fold_left ( +. ) 0.0 m in
  Alcotest.(check (float 1e-9)) "normalised" 1.0 total;
  for i = 1 to 4 do
    check_bool "monotone decreasing" true (m.(i) < m.(i - 1))
  done;
  let u = Workload.zipf_mass 0.0 4 in
  Array.iter (fun p -> Alcotest.(check (float 1e-9)) "uniform at s=0" 0.25 p) u;
  Alcotest.check_raises "empty population"
    (Invalid_argument "Workload.zipf_mass: need a positive rank count") (fun () ->
      ignore (Workload.zipf_mass 1.0 0))

(* chi-square of the sampled program popularity against the Zipf mass —
   the same style of guard as splitmix's uniformity test *)
let test_zipf_chi_square () =
  let mix = { mix4 with Workload.zipf = 1.0; compile_ratio = 0.0 } in
  let requests = 4_000 in
  let stream = Workload.generate ~seed:0xC41 ~requests mix in
  let by_digest = Hashtbl.create 8 in
  List.iteri
    (fun rank (p : Workload.program) -> Hashtbl.replace by_digest p.Workload.digest rank)
    mix.Workload.programs;
  let n = List.length mix.Workload.programs in
  let counts = Array.make n 0 in
  let sampled = ref 0 in
  List.iter
    (function
      | Workload.Execute { digest; _ } ->
        let rank = Hashtbl.find by_digest digest in
        counts.(rank) <- counts.(rank) + 1;
        incr sampled
      | Workload.Compile _ -> ())
    stream;
  check_int "all sampled requests are executes at ratio 0" requests !sampled;
  let mass = Workload.zipf_mass 1.0 n in
  let chi2 = ref 0.0 in
  Array.iteri
    (fun i c ->
      let e = mass.(i) *. float_of_int requests in
      let d = float_of_int c -. e in
      chi2 := !chi2 +. (d *. d /. e))
    counts;
  (* df = 3; crit(0.001) ~ 16.3 — 30 passes with huge margin while still
     catching a uniform sampler (chi2 ~ 390 for this mass at 4k draws) *)
  if !chi2 > 30.0 then Alcotest.failf "zipf chi-square %f" !chi2;
  check_bool "rank 0 strictly hottest" true
    (counts.(0) > counts.(1) && counts.(1) > counts.(n - 1))

let test_generate_deterministic () =
  let a = Workload.generate ~seed:7 ~requests:300 mix4 in
  let b = Workload.generate ~seed:7 ~requests:300 mix4 in
  check_bool "same seed, same stream" true (a = b);
  let c = Workload.generate ~seed:8 ~requests:300 mix4 in
  check_bool "different seed, different stream" true (a <> c);
  check_int "warm-up + sampled" (List.length mix4.Workload.programs + 300)
    (List.length a)

let test_generate_warmup_first () =
  let stream = Workload.generate ~seed:3 ~requests:50 mix4 in
  let programs = mix4.Workload.programs in
  List.iteri
    (fun i (p : Workload.program) ->
      match List.nth stream i with
      | Workload.Compile { label; _ } ->
        Alcotest.(check string) "warm-up order" p.Workload.label label
      | Workload.Execute _ -> Alcotest.fail "warm-up must precede sampling")
    programs;
  let digests = List.map (fun p -> p.Workload.digest) programs in
  List.iter
    (function
      | Workload.Execute { digest; _ } ->
        check_bool "execute digest known" true (List.mem digest digests)
      | Workload.Compile _ -> ())
    stream

let distinct_inputs_per_program stream =
  let tbl = Hashtbl.create 8 in
  List.iter
    (function
      | Workload.Execute { digest; inputs } ->
        let seen =
          match Hashtbl.find_opt tbl digest with Some s -> s | None -> []
        in
        if not (List.mem inputs seen) then Hashtbl.replace tbl digest (inputs :: seen)
      | Workload.Compile _ -> ())
    stream;
  Hashtbl.fold (fun _ seen acc -> max acc (List.length seen)) tbl 0

let test_hot_cold_skew () =
  let hot =
    Workload.generate ~seed:11 ~requests:400
      { mix4 with Workload.hot_fraction = 1.0; hot_pool = 2; compile_ratio = 0.0 }
  in
  check_bool "fully hot: at most pool-many distinct vectors" true
    (distinct_inputs_per_program hot <= 2);
  let cold =
    Workload.generate ~seed:11 ~requests:400
      { mix4 with Workload.hot_fraction = 0.0; compile_ratio = 0.0 }
  in
  check_bool "fully cold: far more distinct vectors" true
    (distinct_inputs_per_program cold > 10)

(* --- cache ----------------------------------------------------------- *)

let test_cache_digest_stability () =
  let g = Suite.build_cached (List.hd specs4) in
  Alcotest.(check string) "digest is pure" (Cache.digest_of g) (Cache.digest_of g);
  let g2 = Suite.build_cached (List.nth specs4 1) in
  check_bool "different graphs, different digests" true
    (Cache.digest_of g <> Cache.digest_of g2)

(* --- server ---------------------------------------------------------- *)

let quiet_config = Helpers.quiet_config
let run_server = Helpers.run_server

let test_server_end_to_end () =
  let stream = Workload.generate ~seed:5 ~requests:120 mix4 in
  let server, responses = run_server quiet_config stream in
  let s = Server.summary server in
  check_int "every request answered" (List.length stream) (List.length responses);
  check_int "requests counted" (List.length stream) s.Server.requests;
  check_int "no rejections" 0 s.Server.rejected;
  check_int "no incorrect outputs" 0 s.Server.incorrect;
  check_bool "cache hits on repeated digests" true (s.Server.cache_hits > 0);
  check_int "one miss per distinct program" (List.length specs4) s.Server.cache_misses;
  check_bool "executions happened" true (s.Server.executes > 0);
  List.iter
    (function
      | Server.Executed { correct; cycles; _ } ->
        Alcotest.(check (option bool)) "checked correct" (Some true) correct;
        check_bool "positive latency" true (cycles > 0)
      | Server.Compiled _ -> ()
      | Server.Rejected { reason; _ } -> Alcotest.failf "rejected: %s" reason)
    responses;
  check_bool "latency histogram populated" true
    (Hgram.count (Server.latency server) = s.Server.requests)

let test_server_warmup_then_hits () =
  (* replaying the same stream against a warm server compiles nothing new *)
  let stream = Workload.generate ~seed:9 ~requests:40 mix4 in
  let server, _ = run_server quiet_config stream in
  let s1 = Server.summary server in
  ignore (Server.run server stream);
  let s2 = Server.summary server in
  check_int "no new misses on replay" s1.Server.cache_misses s2.Server.cache_misses;
  check_bool "replay produced hits" true (s2.Server.cache_hits > s1.Server.cache_hits)

let test_server_unknown_digest_rejected () =
  let server = Server.create quiet_config in
  match Server.run server [ Workload.Execute { digest = "deadbeef"; inputs = [] } ] with
  | [ Server.Rejected { digest = "deadbeef"; _ } ] -> ()
  | _ -> Alcotest.fail "expected a rejection for an unknown digest"

let test_server_placement_balance () =
  let stream = Workload.generate ~seed:13 ~requests:150 mix4 in
  let server, _ = run_server quiet_config stream in
  List.iter
    (fun (id, status, writes) ->
      match status with
      | Shard.Active -> check_bool (Printf.sprintf "shard %d saw traffic" id) true (writes > 0)
      | Shard.Spare -> check_int (Printf.sprintf "spare %d untouched" id) 0 writes
      | Shard.Retired -> ())
    (Server.shard_statuses server);
  let skew = Server.fleet_skew server in
  check_bool "least-worn placement keeps fleet balanced" true
    (skew.Plim_telemetry.Wear.max_mean < 1.5)

let test_server_jobs_identical () =
  let stream = Workload.generate ~seed:21 ~requests:100 mix4 in
  let cfg =
    { quiet_config with
      Server.fault_spec = Fault_model.make ~transient:1e-4 ~seed:0xABC ();
      seed = 21 }
  in
  let s1, r1 = run_server cfg stream in
  let s3, r3 = run_server ~jobs:3 cfg stream in
  check_bool "responses identical at -j1 and -j3" true (r1 = r3);
  check_bool "summaries identical" true (Server.summary s1 = Server.summary s3);
  check_bool "fleet wear identical" true
    (Server.shard_statuses s1 = Server.shard_statuses s3);
  check_bool "latency identical" true
    (Hgram.equal (Server.latency s1) (Server.latency s3));
  Alcotest.(check string) "result rows identical"
    (Server.row_json s1 ~label:"t" ~wall_s:0.0)
    (Server.row_json s3 ~label:"t" ~wall_s:0.0)

let test_server_batch_size_invariant () =
  let stream = Workload.generate ~seed:33 ~requests:80 mix4 in
  let run batch =
    let server = Server.create quiet_config in
    let r = Server.run ~batch server stream in
    (r, Server.summary server, Server.shard_statuses server)
  in
  check_bool "batch granularity never changes results" true (run 7 = run 64)

let test_server_forced_retirement () =
  let stream = Workload.generate ~seed:17 ~requests:120 mix4 in
  let n = List.length stream in
  let first = List.filteri (fun i _ -> i < n / 2) stream in
  let second = List.filteri (fun i _ -> i >= n / 2) stream in
  let server = Server.create quiet_config in
  ignore (Server.run server first);
  check_bool "force_retire succeeds on an active shard" true
    (Server.force_retire server 0);
  check_bool "retiring twice fails" false (Server.force_retire server 0);
  ignore (Server.run server second);
  let s = Server.summary server in
  check_int "forced retirement recorded" 1 s.Server.retired_shards;
  check_int "spare woke up" 1 s.Server.spare_activations;
  check_int "still zero incorrect" 0 s.Server.incorrect;
  check_int "still zero rejected" 0 s.Server.rejected;
  let statuses = Server.shard_statuses server in
  (match List.assoc_opt 0 (List.map (fun (i, st, w) -> (i, (st, w))) statuses) with
  | Some (Shard.Retired, _) -> ()
  | _ -> Alcotest.fail "shard 0 should be retired");
  (* the activated spare (highest id) absorbed second-half traffic *)
  let spare_id = quiet_config.Server.shards + quiet_config.Server.spare_shards - 1 in
  match List.find_opt (fun (i, _, _) -> i = spare_id) statuses with
  | Some (_, Shard.Active, writes) ->
    check_bool "spare shard absorbed traffic" true (writes > 0)
  | _ -> Alcotest.fail "spare shard should be active"

let test_server_organic_retirement () =
  (* endurance so low the shards wear out mid-stream: write-verify turns
     worn cells into detections, the dry spare pool retires shards, and
     the service keeps answering (correctly or with an explicit
     rejection) without ever crashing *)
  let cfg =
    { Server.default_config with
      Server.shards = 2;
      spare_shards = 2;
      cell_spares = 2;
      endurance = Some 300;
      seed = 29 }
  in
  let stream = Workload.generate ~seed:29 ~requests:150 mix4 in
  let server, responses = run_server cfg stream in
  let s = Server.summary server in
  check_bool "wear-out retired at least one shard" true (s.Server.retired_shards > 0);
  check_bool "verify detected the worn cells" true
    (s.Server.exec_stats.Plim_fault.Exec.detections > 0);
  check_int "answered everything" (List.length stream) (List.length responses);
  check_int "incorrect outputs never escape" 0 s.Server.incorrect;
  (* determinism must survive the retirement cascade too *)
  let _, responses3 = run_server ~jobs:3 cfg stream in
  check_bool "cascade identical at -j3" true (responses = responses3)

let test_row_json_shape () =
  let stream = Workload.generate ~seed:5 ~requests:30 mix4 in
  let server, _ = run_server quiet_config stream in
  let row = Server.row_json server ~label:"unit" ~wall_s:0.0 in
  match Plim_telemetry.Json.parse row with
  | Error e -> Alcotest.failf "row_json does not parse: %s" e
  | Ok j ->
    let str k = Option.bind (Plim_telemetry.Json.member k j) Plim_telemetry.Json.to_string in
    let num k = Option.bind (Plim_telemetry.Json.member k j) Plim_telemetry.Json.to_float in
    Alcotest.(check (option string)) "schema" (Some "plim-serve/v1") (str "schema");
    Alcotest.(check (option string)) "label" (Some "unit") (str "label");
    check_bool "latency object present" true
      (Option.is_some (Plim_telemetry.Json.member "latency" j));
    check_bool "fleet object present" true
      (Option.is_some (Plim_telemetry.Json.member "fleet" j));
    Alcotest.(check (option (float 0.0))) "deterministic wall zeroed" (Some 0.0)
      (num "requests_per_sec")

let test_fleet_heatmap_json () =
  let stream = Workload.generate ~seed:5 ~requests:30 mix4 in
  let server, _ = run_server quiet_config stream in
  match Plim_telemetry.Json.parse (Server.fleet_heatmap_json server) with
  | Error e -> Alcotest.failf "heatmap json does not parse: %s" e
  | Ok j ->
    (match Option.bind (Plim_telemetry.Json.member "shards" j) Plim_telemetry.Json.to_list with
    | Some shards ->
      check_int "one heatmap per shard"
        (quiet_config.Server.shards + quiet_config.Server.spare_shards)
        (List.length shards)
    | None -> Alcotest.fail "no shards array")

let () =
  Alcotest.run "serve"
    [ ( "workload",
        [ Alcotest.test_case "zipf mass" `Quick test_zipf_mass;
          Alcotest.test_case "zipf chi-square" `Quick test_zipf_chi_square;
          Alcotest.test_case "seed determinism" `Quick test_generate_deterministic;
          Alcotest.test_case "warm-up compiles first" `Quick test_generate_warmup_first;
          Alcotest.test_case "hot/cold input skew" `Quick test_hot_cold_skew ] );
      ( "cache",
        [ Alcotest.test_case "digest stability" `Quick test_cache_digest_stability ] );
      ( "server",
        [ Alcotest.test_case "end to end" `Quick test_server_end_to_end;
          Alcotest.test_case "warm replay hits" `Quick test_server_warmup_then_hits;
          Alcotest.test_case "unknown digest" `Quick test_server_unknown_digest_rejected;
          Alcotest.test_case "placement balance" `Quick test_server_placement_balance;
          Alcotest.test_case "-j1 == -j3" `Quick test_server_jobs_identical;
          Alcotest.test_case "batch-size invariant" `Quick test_server_batch_size_invariant;
          Alcotest.test_case "forced retirement" `Quick test_server_forced_retirement;
          Alcotest.test_case "organic retirement" `Quick test_server_organic_retirement;
          Alcotest.test_case "row json" `Quick test_row_json_shape;
          Alcotest.test_case "fleet heatmaps" `Quick test_fleet_heatmap_json ] ) ]
