module A = Plim_analyze
module I = Plim_isa.Instruction
module Program = Plim_isa.Program
module Suite = Plim_benchgen.Suite
module Pipeline = Plim_core.Pipeline
module Gen = Plim_check.Gen
module Controller = Plim_machine.Plim_controller

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(num_cells = 4) ?(pi = [| ("a", 0) |]) ?(po = [| ("y", 1) |]) instrs =
  Program.make ~instrs:(Array.of_list instrs) ~num_cells ~pi_cells:pi ~po_cells:po

let sc v z = I.set_const v z

let rm3 a b z = I.rm3 ~a ~b ~z

let kinds_of a = List.map (fun d -> (d.A.kind, d.A.instr, d.A.cell)) a.A.diagnostics

(* --- def-use IR --------------------------------------------------------- *)

let test_defs () =
  (* i0: y := 1; i1: y := <a, !0, y> *)
  let p = mk ~num_cells:2 [ sc true 1; rm3 (I.Cell 0) (I.Const false) 1 ] in
  let a = A.analyze p in
  Alcotest.(check int) "clean" 0 (List.length a.A.diagnostics);
  match a.A.defs with
  | [ pi; d0; d1 ] ->
    check_int "PI cell" 0 pi.A.cell;
    check_int "PI def_at" (-1) pi.A.def_at;
    Alcotest.(check (list int)) "PI read by i1" [ 1 ] pi.A.uses;
    check_bool "PI not live-out" false pi.A.live_out;
    (* set_const does not read z, but the RM3 at i1 reads the old y *)
    Alcotest.(check (list int)) "init value read" [ 1 ] d0.A.uses;
    check_bool "overwritten def not live-out" false d0.A.live_out;
    check_bool "final PO def live-out" true d1.A.live_out;
    Alcotest.(check (list int)) "final def unread" [] d1.A.uses
  | defs -> Alcotest.failf "expected 3 defs, got %d" (List.length defs)

let test_set_const_does_not_read () =
  (* identity RM3 0,0,z DOES read z; the two set_const forms do not *)
  check_bool "set 1" false (A.reads_dest (sc true 0));
  check_bool "set 0" false (A.reads_dest (sc false 0));
  check_bool "identity 0,0" true (A.reads_dest (rm3 (I.Const false) (I.Const false) 0));
  check_bool "identity 1,1" true (A.reads_dest (rm3 (I.Const true) (I.Const true) 0));
  check_bool "cell operand" true (A.reads_dest (rm3 (I.Cell 1) (I.Const false) 0))

let test_storage () =
  let p = mk ~num_cells:2 [ sc true 1; rm3 (I.Cell 0) (I.Const false) 1 ] in
  let a = A.analyze p in
  (* PI %0 spans [0,1]; init y spans [0,1]; final y live-out spans [1,2] *)
  check_int "total" 3 a.A.storage.A.total_span;
  check_int "max" 1 a.A.storage.A.max_span;
  Alcotest.(check (float 1e-9)) "mean" 1.0 a.A.storage.A.mean_span;
  Alcotest.(check (array int)) "per-cell" [| 1; 2 |] a.A.storage.A.per_cell_span

(* --- diagnostics, each with its exact instruction index ----------------- *)

let test_use_before_def () =
  let p = mk ~num_cells:3 [ sc true 1; rm3 (I.Cell 2) (I.Const false) 1 ] in
  let a = A.analyze p in
  check_bool "is error" true (A.errors a <> []);
  match kinds_of a with
  | [ (A.Use_before_def, Some 1, 2) ] -> ()
  | _ -> Alcotest.failf "unexpected diagnostics: %s"
           (String.concat "; " (List.map A.diagnostic_to_string a.A.diagnostics))

let test_dead_write () =
  (* i1 writes %2 which nothing ever reads *)
  let p =
    mk ~num_cells:3 [ sc true 1; sc false 2; rm3 (I.Cell 0) (I.Const false) 1 ]
  in
  let a = A.analyze p in
  match kinds_of a with
  | [ (A.Dead_write, Some 1, 2) ] -> ()
  | _ -> Alcotest.failf "unexpected diagnostics: %s"
           (String.concat "; " (List.map A.diagnostic_to_string a.A.diagnostics))

let test_po_clobber () =
  (* i1 computes the output, i2 overwrites it without anything reading it *)
  let p = mk [ sc true 1; rm3 (I.Cell 0) (I.Const false) 1; sc false 1 ] in
  let a = A.analyze p in
  let kinds = kinds_of a in
  check_bool "dead write at 1" true (List.mem (A.Dead_write, Some 1, 1) kinds);
  check_bool "clobber reported at the clobbering instruction" true
    (List.mem (A.Po_clobber, Some 2, 1) kinds)

let leak_program () =
  (* %2 dies at i2; 8 instructions of busy work; fresh %3 opens at i11,
     beyond the one-group grace window *)
  mk ~num_cells:4
    ([ sc true 1; sc true 2; rm3 (I.Cell 2) (I.Const false) 1 ]
     @ List.init 8 (fun _ -> rm3 (I.Cell 0) (I.Const false) 1)
     @ [ sc true 3; rm3 (I.Cell 3) (I.Const false) 1 ])

let test_rram_leak () =
  let a = A.analyze (leak_program ()) in
  (match kinds_of a with
  | [ (A.Rram_leak, Some 11, 2) ] -> ()
  | _ -> Alcotest.failf "unexpected diagnostics: %s"
           (String.concat "; " (List.map A.diagnostic_to_string a.A.diagnostics)));
  check_bool "error when uncapped" true (A.errors a <> []);
  (* under a write cap, retirement makes the gap legitimate: info only *)
  let capped = A.analyze ~max_writes:12 (leak_program ()) in
  check_bool "no errors under cap" true (A.errors capped = []);
  check_bool "still surfaced as info" true
    (List.exists (fun d -> d.A.kind = A.Rram_leak && d.A.severity = A.Info)
       capped.A.diagnostics);
  (* fresh open within the grace window is normal group scheduling *)
  let tight =
    mk ~num_cells:4
      [ sc true 1; sc true 2; rm3 (I.Cell 2) (I.Const false) 1; sc true 3;
        rm3 (I.Cell 3) (I.Const false) 1 ]
  in
  check_int "no leak within grace" 0 (List.length (A.analyze tight).A.diagnostics)

let test_cap_exceeded () =
  let p = leak_program () in
  (* %1 is written at 0,2,3..10,12: the 6th write (cap 5) is instruction 6 *)
  let a = A.analyze ~max_writes:5 p in
  check_bool "cap error at instruction 6" true
    (List.exists
       (fun d -> d.A.kind = A.Cap_exceeded && d.A.instr = Some 6 && d.A.cell = 1)
       a.A.diagnostics);
  check_int "within cap 12" 0
    (List.length
       (List.filter (fun d -> d.A.kind = A.Cap_exceeded)
          (A.analyze ~max_writes:12 p).A.diagnostics))

let test_unused_cell () =
  let p = mk ~num_cells:3 [ sc true 1; rm3 (I.Cell 0) (I.Const false) 1 ] in
  let a = A.analyze p in
  match kinds_of a with
  | [ (A.Unused_cell, None, 2) ] ->
    check_bool "info, not error" true (A.errors a = [])
  | _ -> Alcotest.failf "unexpected diagnostics: %s"
           (String.concat "; " (List.map A.diagnostic_to_string a.A.diagnostics))

(* --- JSON ---------------------------------------------------------------- *)

let test_json () =
  let p =
    mk ~num_cells:3 [ sc true 1; sc false 2; rm3 (I.Cell 0) (I.Const false) 1 ]
  in
  let a = A.analyze p in
  let json = A.to_json ~source:"corrupted" p a in
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "schema" true (contains "\"schema\":\"plim-lint/v1\"");
  check_bool "source" true (contains "\"source\":\"corrupted\"");
  check_bool "error count" true (contains "\"errors\":1");
  check_bool "diagnostic with exact index" true
    (contains "\"kind\":\"dead-write\",\"instr\":1,\"cell\":2");
  check_bool "storage block" true (contains "\"storage\":{\"total_span\":")

(* --- compiler output is lint-clean -------------------------------------- *)

let lint_configs =
  [ Pipeline.naive; Pipeline.endurance_full; Pipeline.with_cap 10 Pipeline.endurance_full ]

let test_small_suite_clean () =
  List.iter
    (fun spec ->
      let g = spec.Suite.build () in
      List.iter
        (fun config ->
          let r = Pipeline.compile config g in
          let a =
            A.analyze ?max_writes:config.Pipeline.max_write r.Pipeline.program
          in
          match A.errors a with
          | [] -> ()
          | errs ->
            Alcotest.failf "%s/%s: %s" spec.Suite.name (Pipeline.config_name config)
              (String.concat "; " (List.map A.diagnostic_to_string errs)))
        lint_configs)
    Suite.small_suite

let random_programs_lint_clean =
  QCheck.Test.make ~count:40 ~name:"lint clean on random compiled MIGs"
    (Gen.arbitrary ~max_inputs:5 ~max_nodes:24 ())
    (fun desc ->
      let g = Gen.to_mig desc in
      List.for_all
        (fun config ->
          let r = Pipeline.compile config g in
          A.errors (A.analyze ?max_writes:config.Pipeline.max_write r.Pipeline.program)
          = [])
        lint_configs)

(* --- write bounds agree three ways --------------------------------------- *)

let test_write_counts_three_way () =
  List.iter
    (fun name ->
      let g = (Suite.find name).Suite.build () in
      let p = (Pipeline.compile Pipeline.endurance_full g).Pipeline.program in
      let static = Program.static_write_counts p in
      Alcotest.(check (array int))
        (name ^ ": analyzer = static") static (A.write_counts p);
      let inputs =
        Array.to_list (Array.map (fun (n, _) -> (n, false)) p.Program.pi_cells)
      in
      let _, xbar, _ = Controller.run p ~inputs in
      Alcotest.(check (array int))
        (name ^ ": analyzer = crossbar-observed") (Plim_rram.Crossbar.write_counts xbar)
        (A.write_counts p))
    [ "dec4"; "adder8"; "bar8" ]

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "analyze"
    [ ( "ir",
        [ Alcotest.test_case "def-use chains" `Quick test_defs;
          Alcotest.test_case "destination read model" `Quick test_set_const_does_not_read;
          Alcotest.test_case "storage durations" `Quick test_storage ] );
      ( "diagnostics",
        [ Alcotest.test_case "use-before-def" `Quick test_use_before_def;
          Alcotest.test_case "dead write" `Quick test_dead_write;
          Alcotest.test_case "po clobber" `Quick test_po_clobber;
          Alcotest.test_case "rram leak" `Quick test_rram_leak;
          Alcotest.test_case "cap exceeded" `Quick test_cap_exceeded;
          Alcotest.test_case "unused cell" `Quick test_unused_cell;
          Alcotest.test_case "json" `Quick test_json ] );
      ( "compiler",
        [ Alcotest.test_case "small suite lint-clean" `Quick test_small_suite_clean;
          Alcotest.test_case "write bounds three-way" `Quick test_write_counts_three_way;
          qc random_programs_lint_clean ] ) ]
