module Mig = Plim_mig.Mig
module Mig_gen = Plim_mig.Mig_gen
module Gen = Plim_check.Gen
module Alloc = Plim_core.Alloc
module Select = Plim_core.Select
module Pipeline = Plim_core.Pipeline
module Verify = Plim_core.Verify
module Program = Plim_isa.Program
module I = Plim_isa.Instruction
module Stats = Plim_stats.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- allocator ----------------------------------------------------------- *)

let test_alloc_lifo () =
  let t = Alloc.create ~strategy:Alloc.Lifo () in
  let a = Alloc.request t and b = Alloc.request t in
  check_int "fresh 0" 0 a;
  check_int "fresh 1" 1 b;
  Alloc.release t a;
  Alloc.release t b;
  check_int "most recently freed first" b (Alloc.request t);
  check_int "then the other" a (Alloc.request t);
  check_int "total" 2 (Alloc.total_allocated t)

let test_alloc_fifo () =
  let t = Alloc.create ~strategy:Alloc.Fifo () in
  let a = Alloc.request t and b = Alloc.request t in
  Alloc.release t a;
  Alloc.release t b;
  check_int "oldest freed first" a (Alloc.request t);
  check_int "then newer" b (Alloc.request t)

let test_alloc_min_write () =
  let t = Alloc.create ~strategy:Alloc.Min_write () in
  let a = Alloc.request t and b = Alloc.request t in
  Alloc.note_write t a;
  Alloc.note_write t a;
  Alloc.note_write t b;
  Alloc.release t a;
  Alloc.release t b;
  check_int "least-written first" b (Alloc.request t);
  check_int "then the worn one" a (Alloc.request t);
  check_int "free count" 0 (Alloc.free_count t)

let test_alloc_cap_retire () =
  let t = Alloc.create ~max_write:3 ~strategy:Alloc.Min_write () in
  let a = Alloc.request t in
  Alloc.note_write t a;
  Alloc.note_write t a;
  (* a has 2 writes; 2 + 2 > 3, so it is retired on release *)
  Alloc.release t a;
  check_int "retired, not pooled" 0 (Alloc.free_count t);
  let b = Alloc.request t in
  check_bool "fresh device instead" true (b <> a)

let test_alloc_can_write () =
  let t = Alloc.create ~max_write:3 ~strategy:Alloc.Lifo () in
  let a = Alloc.request t in
  check_bool "0 writes ok" true (Alloc.can_write t a);
  Alloc.note_write t a;
  Alloc.note_write t a;
  Alloc.note_write t a;
  check_bool "at cap" false (Alloc.can_write t a);
  Alcotest.check_raises "past cap" (Invalid_argument "Alloc.note_write: cell 0 exceeds cap 3")
    (fun () -> Alloc.note_write t a)

let test_alloc_needed () =
  let t = Alloc.create ~max_write:5 ~strategy:Alloc.Min_write () in
  let a = Alloc.request t in
  Alloc.note_write t a;
  Alloc.note_write t a;
  Alloc.note_write t a;
  (* a has 3 writes: poolable (3+2 <= 5) but cannot serve needed:3 *)
  Alloc.release t a;
  check_int "pooled" 1 (Alloc.free_count t);
  let b = Alloc.request ~needed:3 t in
  check_bool "fresh for needed=3" true (b <> a);
  check_int "a still pooled" 1 (Alloc.free_count t);
  check_int "a reused for needed=2" a (Alloc.request ~needed:2 t)

let test_alloc_cap_validation () =
  Alcotest.check_raises "cap too small" (Invalid_argument "Alloc.create: max_write must be >= 3")
    (fun () -> ignore (Alloc.create ~max_write:2 ~strategy:Alloc.Lifo ()))

let test_alloc_lifo_needed_preserves_order () =
  let t = Alloc.create ~max_write:8 ~strategy:Alloc.Lifo () in
  let cells = List.init 3 (fun _ -> Alloc.request t) in
  (* wear the last-released one so it cannot serve needed:3 *)
  (match cells with
  | [ _; _; c ] ->
    for _ = 1 to 6 do Alloc.note_write t c done
  | _ -> assert false);
  List.iter (Alloc.release t) cells;
  (* top of stack (cell 2, 6 writes) cannot take 3 writes; hunt skips it *)
  let got = Alloc.request ~needed:3 t in
  check_int "skips worn top" 1 got;
  (* worn cell is still first for a smaller request *)
  check_int "worn top restored" 2 (Alloc.request ~needed:2 t)

(* --- selection ------------------------------------------------------------ *)

(* structurally generated MIGs: a failing property shrinks to a minimal
   graph instead of an opaque integer seed *)
let desc_arb = Gen.arbitrary ~max_inputs:6 ~max_nodes:40 ~max_outputs:4 ()

(* topological validity: every policy computes children before parents *)
let pop_order_is_topological policy =
  QCheck.Test.make ~count:50
    ~name:(Printf.sprintf "%s pops children first" (Select.policy_name policy))
    desc_arb
    (fun d ->
      let g = Gen.to_mig d in
      let fanout = Mig.fanout_counts g in
      let out_refs = Mig.output_refs g in
      let pending = Array.init (Mig.num_nodes g) (fun i -> fanout.(i) + out_refs.(i)) in
      let sel = Select.create ~policy g ~pending in
      let seen = Array.make (Mig.num_nodes g) false in
      let ok = ref true in
      let total = ref 0 in
      let rec loop () =
        match Select.pop sel with
        | None -> ()
        | Some id ->
          incr total;
          (match Mig.kind g id with
          | Mig.Maj (a, b, c) ->
            List.iter
              (fun s ->
                let n = Mig.node_of s in
                match Mig.kind g n with
                | Mig.Maj _ -> if not seen.(n) then ok := false
                | Mig.Const | Mig.Input _ -> ())
              [ a; b; c ]
          | Mig.Const | Mig.Input _ -> ok := false);
          seen.(id) <- true;
          (* emulate the translator's pending updates *)
          (match Mig.kind g id with
          | Mig.Maj (a, b, c) ->
            List.iter
              (fun s ->
                let n = Mig.node_of s in
                if n <> 0 then begin
                  pending.(n) <- pending.(n) - 1;
                  if pending.(n) = 1 then Select.child_pending_dropped_to_one sel n
                end)
              [ a; b; c ]
          | Mig.Const | Mig.Input _ -> ());
          Select.computed sel id;
          loop ()
      in
      loop ();
      !ok && !total = Mig.size g)

let test_in_order_is_id_order () =
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  let b = Mig.add_input g "b" in
  let c = Mig.add_input g "c" in
  let n1 = Mig.maj g a b c in
  let n2 = Mig.maj g a (Mig.not_ b) c in
  let n3 = Mig.maj g n1 n2 a in
  Mig.add_output g "y" n3;
  let fanout = Mig.fanout_counts g in
  let out_refs = Mig.output_refs g in
  let pending = Array.init (Mig.num_nodes g) (fun i -> fanout.(i) + out_refs.(i)) in
  let sel = Select.create ~policy:Select.In_order g ~pending in
  let order = ref [] in
  let rec drain () =
    match Select.pop sel with
    | None -> ()
    | Some id ->
      order := id :: !order;
      Select.computed sel id;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending ids"
    [ Mig.node_of n1; Mig.node_of n2; Mig.node_of n3 ]
    (List.rev !order)

(* --- end-to-end compilation ------------------------------------------------ *)

let all_configs =
  [ Pipeline.naive;
    Pipeline.dac16;
    Pipeline.min_write;
    Pipeline.endurance_rewrite;
    Pipeline.endurance_full;
    Pipeline.with_cap 3 Pipeline.endurance_full;
    Pipeline.with_cap 5 Pipeline.endurance_full;
    Pipeline.with_cap 10 Pipeline.naive;
    { Pipeline.endurance_full with Pipeline.allocation = Alloc.Fifo };
    { Pipeline.endurance_full with Pipeline.dest_min_write = true } ]

let compile_correct config =
  QCheck.Test.make ~count:25
    ~name:(Printf.sprintf "compile[%s] is functionally correct" (Pipeline.config_name config))
    desc_arb
    (fun d ->
      let g = Gen.to_mig d in
      let r = Pipeline.compile config g in
      match Verify.check_random ~trials:6 ~seed:0xC0DE g r.Pipeline.program with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

let cap_respected =
  QCheck.Test.make ~count:30 ~name:"max-write cap bounds every device"
    (QCheck.pair desc_arb (QCheck.int_range 3 12))
    (fun (d, cap) ->
      let g = Gen.to_mig d in
      let r = Pipeline.compile (Pipeline.with_cap cap Pipeline.endurance_full) g in
      let writes = Program.static_write_counts r.Pipeline.program in
      Array.for_all (fun w -> w <= cap) writes)

let summary_matches_program =
  QCheck.Test.make ~count:30 ~name:"write summary equals program static counts"
    desc_arb
    (fun d ->
      let r = Pipeline.compile Pipeline.endurance_full (Gen.to_mig d) in
      let s = Stats.summarize (Program.static_write_counts r.Pipeline.program) in
      s = r.Pipeline.write_summary)

let test_exhaustive_small () =
  (* exhaustive functional verification on a small circuit, every preset *)
  let g = Plim_benchgen.Arith.adder ~width:3 in
  List.iter
    (fun config ->
      let r = Pipeline.compile config g in
      match Verify.check_exhaustive g r.Pipeline.program with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Pipeline.config_name config) e)
    all_configs

let test_verify_detects_corruption () =
  let g = Plim_benchgen.Arith.adder ~width:2 in
  let r = Pipeline.compile Pipeline.naive g in
  let p = r.Pipeline.program in
  (* flip the first instruction's destination semantics by replacing the
     whole instruction with a constant load *)
  let bad = Array.copy p.Program.instrs in
  bad.(Array.length bad - 1) <- I.set_const true p.Program.instrs.(Array.length bad - 1).I.z;
  let corrupted =
    Program.make ~instrs:bad ~num_cells:p.Program.num_cells ~pi_cells:p.Program.pi_cells
      ~po_cells:p.Program.po_cells
  in
  check_bool "corruption detected" true
    (match Verify.check_exhaustive g corrupted with Ok () -> false | Error _ -> true)

let test_check_random_deterministic () =
  (* the randomized verifier is a pure function of its seed: two runs on
     the same (broken) program must produce byte-identical witnesses *)
  let g = Plim_benchgen.Arith.adder ~width:3 in
  let p = (Pipeline.compile Pipeline.naive g).Pipeline.program in
  let bad = Array.copy p.Program.instrs in
  bad.(Array.length bad - 1) <- I.set_const true p.Program.instrs.(Array.length bad - 1).I.z;
  let corrupted =
    Program.make ~instrs:bad ~num_cells:p.Program.num_cells ~pi_cells:p.Program.pi_cells
      ~po_cells:p.Program.po_cells
  in
  let witness seed =
    match Verify.check_random ~trials:32 ~seed g corrupted with
    | Ok () -> Alcotest.failf "seed 0x%X failed to detect the corruption" seed
    | Error e -> e
  in
  Alcotest.(check string) "same seed, same witness" (witness 0xD5EED) (witness 0xD5EED);
  check_bool "witness names its seed" true
    (let e = witness 0xD5EED in
     (* substring search: the message embeds the seed for replay *)
     let needle = "seed 0xD5EED" in
     let ln = String.length needle and le = String.length e in
     let rec scan i = i + ln <= le && (String.sub e i ln = needle || scan (i + 1)) in
     scan 0)

let test_config_names () =
  Alcotest.(check string) "naive" "naive" (Pipeline.config_name Pipeline.naive);
  Alcotest.(check string) "endurance-full" "endurance-full"
    (Pipeline.config_name Pipeline.endurance_full);
  Alcotest.(check string) "capped" "endurance-full+cap10"
    (Pipeline.config_name (Pipeline.with_cap 10 Pipeline.endurance_full))

let test_pi_po_maps () =
  let g = Plim_benchgen.Arith.adder ~width:4 in
  let r = Pipeline.compile Pipeline.endurance_full g in
  let p = r.Pipeline.program in
  check_int "pi count" 8 (Array.length p.Program.pi_cells);
  check_int "po count" 5 (Array.length p.Program.po_cells);
  (* all PI cells distinct *)
  let cells = Array.map snd p.Program.pi_cells in
  let sorted = Array.copy cells in
  Array.sort compare sorted;
  let distinct = ref true in
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then distinct := false
  done;
  check_bool "pi cells distinct" true !distinct

(* --- symbolic (BDD) verification -------------------------------------------- *)

let symbolic_random =
  QCheck.Test.make ~count:15 ~name:"random MIGs verify symbolically, all cells"
    (Gen.arbitrary ~max_inputs:7 ~max_nodes:60 ())
    (fun d ->
      let g = Gen.to_mig d in
      List.iter
        (fun config ->
          let r = Pipeline.compile config g in
          match Verify.check_symbolic g r.Pipeline.program with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "%s: %s" (Pipeline.config_name config) e)
        [ Pipeline.naive; Pipeline.endurance_full ];
      true)

let test_symbolic_wide_adder () =
  (* 32-bit adder: 64 inputs — far beyond truth tables, linear as a BDD
     with interleaved operands.  Complete formal verification of the
     compiled program. *)
  let g = Plim_benchgen.Arith.adder ~width:32 in
  let order = Plim_logic.Bdd.interleave 2 32 in
  let r = Pipeline.compile (Pipeline.with_cap 10 Pipeline.endurance_full) g in
  match Verify.check_symbolic ~order g r.Pipeline.program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e

let test_symbolic_catches_corruption () =
  let g = Plim_benchgen.Arith.adder ~width:4 in
  let r = Pipeline.compile Pipeline.naive g in
  let p = r.Pipeline.program in
  let bad = Array.copy p.Program.instrs in
  let last = bad.(Array.length bad - 1) in
  bad.(Array.length bad - 1) <- I.set_const true last.I.z;
  let corrupted =
    Program.make ~instrs:bad ~num_cells:p.Program.num_cells ~pi_cells:p.Program.pi_cells
      ~po_cells:p.Program.po_cells
  in
  check_bool "detected" true
    (match Verify.check_symbolic g corrupted with Ok () -> false | Error _ -> true)

(* --- translation cost model (Section III / DAC'16) ------------------------- *)

(* compile a single majority node with the given child polarities and
   fanout structure and return the instruction count *)
let single_node_cost ~complemented_children ~shared_children =
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  let b = Mig.add_input g "b" in
  let c = Mig.add_input g "c" in
  let pol i s = if i < complemented_children then Mig.not_ s else s in
  let n = Mig.maj g (pol 0 a) (pol 1 b) (pol 2 c) in
  Mig.add_output g "y" n;
  if shared_children then begin
    (* give every child a second consumer so none is releasable *)
    let extra = Mig.maj g (Mig.not_ a) b (Mig.not_ c) in
    let extra2 = Mig.maj g a (Mig.not_ b) Mig.true_ in
    Mig.add_output g "z" extra;
    Mig.add_output g "w" extra2
  end;
  let r = Pipeline.compile Pipeline.naive g in
  (match Verify.check_exhaustive g r.Pipeline.program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cost-model circuit broken: %s" e);
  r

let count_node_instrs r = Program.length r.Pipeline.program

let test_ideal_node_one_instruction () =
  (* one complemented child, all children single-fanout: 1 instruction *)
  let r = single_node_cost ~complemented_children:1 ~shared_children:false in
  check_int "ideal node" 1 (count_node_instrs r)

let test_zero_complements_cost () =
  (* no complemented child: materialise one complement = +2 *)
  let r = single_node_cost ~complemented_children:0 ~shared_children:false in
  check_int "missing Q complement" 3 (count_node_instrs r)

let test_two_complements_cost () =
  (* two complemented children: one feeds Q, the other needs +2 *)
  let r = single_node_cost ~complemented_children:2 ~shared_children:false in
  check_int "extra complement" 3 (count_node_instrs r)

let test_no_releasable_destination_cost () =
  (* every child multi-fanout: the destination must be copied (+2);
     instruction count grows by exactly 2 over the shared baseline *)
  let shared = single_node_cost ~complemented_children:1 ~shared_children:true in
  let private_ = single_node_cost ~complemented_children:1 ~shared_children:false in
  let extra_nodes_cost =
    (* the two extra nodes of the shared variant, measured alone *)
    count_node_instrs shared - count_node_instrs private_
  in
  check_bool "copy penalty present" true (extra_nodes_cost >= 2)

let test_complemented_po_shared () =
  (* two complemented outputs of one node share a single complement cell *)
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  let b = Mig.add_input g "b" in
  let n = Mig.maj g a (Mig.not_ b) Mig.false_ in
  Mig.add_output g "y1" (Mig.not_ n);
  Mig.add_output g "y2" (Mig.not_ n);
  let r = Pipeline.compile Pipeline.naive g in
  let p = r.Pipeline.program in
  (* 1 instr for the node + 2 for one shared complement *)
  check_int "shared complement" 3 (Program.length p);
  let c1 = snd p.Program.po_cells.(0) and c2 = snd p.Program.po_cells.(1) in
  check_int "same cell" c1 c2;
  match Verify.check_exhaustive g p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e

let test_constant_output () =
  let g = Mig.create () in
  let _ = Mig.add_input g "a" in
  Mig.add_output g "t" Mig.true_;
  Mig.add_output g "f" Mig.false_;
  let r = Pipeline.compile Pipeline.naive g in
  check_int "one set_const each" 2 (Program.length r.Pipeline.program);
  match Verify.check_exhaustive g r.Pipeline.program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e

let test_passthrough_output () =
  (* PO = PI directly, plus a complemented PI *)
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  Mig.add_output g "same" a;
  Mig.add_output g "inv" (Mig.not_ a);
  let r = Pipeline.compile Pipeline.naive g in
  check_int "only the inverter costs" 2 (Program.length r.Pipeline.program);
  match Verify.check_exhaustive g r.Pipeline.program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e

(* lower bound: every reachable majority node needs at least one
   instruction *)
let instruction_lower_bound =
  QCheck.Test.make ~count:50 ~name:"#I >= reachable majority nodes"
    desc_arb
    (fun d ->
      let g = Gen.to_mig d in
      let r = Pipeline.compile Pipeline.naive g in
      Program.length r.Pipeline.program >= Mig.size g)

(* the minimum write strategy must never be worse than LIFO on average *)
let test_min_write_beats_lifo_on_average () =
  let total_lifo = ref 0.0 and total_min = ref 0.0 in
  for seed = 1 to 10 do
    let g = Mig_gen.random ~seed ~num_inputs:8 ~num_nodes:300 ~num_outputs:6 () in
    let sd config = (Pipeline.compile config g).Pipeline.write_summary.Stats.stdev in
    total_lifo := !total_lifo +. sd Pipeline.dac16;
    total_min := !total_min +. sd Pipeline.min_write
  done;
  check_bool
    (Printf.sprintf "min-write %.2f <= lifo %.2f" !total_min !total_lifo)
    true (!total_min <= !total_lifo)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core"
    [ ( "alloc",
        [ Alcotest.test_case "lifo" `Quick test_alloc_lifo;
          Alcotest.test_case "fifo" `Quick test_alloc_fifo;
          Alcotest.test_case "min-write" `Quick test_alloc_min_write;
          Alcotest.test_case "cap retire" `Quick test_alloc_cap_retire;
          Alcotest.test_case "can_write/note_write" `Quick test_alloc_can_write;
          Alcotest.test_case "needed param" `Quick test_alloc_needed;
          Alcotest.test_case "cap validation" `Quick test_alloc_cap_validation;
          Alcotest.test_case "lifo hunt preserves order" `Quick
            test_alloc_lifo_needed_preserves_order ] );
      ( "select",
        [ Alcotest.test_case "in-order is id order" `Quick test_in_order_is_id_order;
          qc (pop_order_is_topological Select.In_order);
          qc (pop_order_is_topological Select.Release_first);
          qc (pop_order_is_topological Select.Level_first) ] );
      ( "pipeline",
        List.map (fun c -> qc (compile_correct c)) all_configs
        @ [ qc cap_respected;
            qc summary_matches_program;
            qc instruction_lower_bound;
            Alcotest.test_case "exhaustive adder, all presets" `Quick test_exhaustive_small;
            Alcotest.test_case "verifier detects corruption" `Quick
              test_verify_detects_corruption;
            Alcotest.test_case "check_random is seed-deterministic" `Quick
              test_check_random_deterministic;
            Alcotest.test_case "config names" `Quick test_config_names;
            Alcotest.test_case "pi/po maps" `Quick test_pi_po_maps;
            Alcotest.test_case "min-write <= lifo (avg stdev)" `Slow
              test_min_write_beats_lifo_on_average ] );
      ( "symbolic",
        [ qc symbolic_random;
          Alcotest.test_case "32-bit adder, complete proof" `Quick test_symbolic_wide_adder;
          Alcotest.test_case "catches corruption" `Quick test_symbolic_catches_corruption ]
      );
      ( "cost-model",
        [ Alcotest.test_case "ideal node = 1 instruction" `Quick
            test_ideal_node_one_instruction;
          Alcotest.test_case "missing complement = +2" `Quick test_zero_complements_cost;
          Alcotest.test_case "second complement = +2" `Quick test_two_complements_cost;
          Alcotest.test_case "copy destination penalty" `Quick
            test_no_releasable_destination_cost;
          Alcotest.test_case "complemented POs share a cell" `Quick
            test_complemented_po_shared;
          Alcotest.test_case "constant outputs" `Quick test_constant_output;
          Alcotest.test_case "passthrough outputs" `Quick test_passthrough_output ] ) ]
