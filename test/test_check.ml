(* Tests of the Plim_check fuzzing/conformance subsystem itself: the
   generator and shrinker are load-bearing test infrastructure, so they
   get their own properties, and the harness is self-tested by handing it
   a deliberately broken checker. *)

module Gen = Plim_check.Gen
module Check = Plim_check.Check
module Corpus = Plim_check.Corpus
module Fuzz = Plim_check.Fuzz
module Mig = Plim_mig.Mig
module Mig_io = Plim_mig.Mig_io
module Splitmix = Plim_util.Splitmix
module Pipeline = Plim_core.Pipeline
module Verify = Plim_core.Verify
module Select = Plim_core.Select
module Program = Plim_isa.Program
module I = Plim_isa.Instruction

let qc = QCheck_alcotest.to_alcotest
let desc_arb = Gen.arbitrary ()

(* --- generator ---------------------------------------------------------- *)

let generated_well_formed =
  QCheck.Test.make ~count:200 ~name:"generated descriptions are well-formed"
    QCheck.small_int
    (fun seed -> Gen.well_formed (Gen.generate (Splitmix.create seed)))

(* the description has its own evaluator, so lowering through the
   hash-consing Ω.M constructors is differentially checked against it *)
let lowering_preserves_semantics =
  QCheck.Test.make ~count:150 ~name:"Mig.eval (to_mig d) = Gen.eval d" desc_arb
    (fun d ->
      let g = Gen.to_mig d in
      let rng = Splitmix.create 0xE7A1 in
      let ok = ref true in
      for _ = 1 to 16 do
        let v = Splitmix.bits rng ~width:d.Gen.inputs in
        if Gen.eval d v <> Mig.eval g v then ok := false
      done;
      !ok)

(* well-founded shrink measure; [idxsum] comes before [negs] because edge
   hoisting shortens reference paths but may flip a complement on *)
let measure d =
  let nonconst = ref 0 and negs = ref 0 and idxsum = ref 0 in
  let count (r : Gen.ref_) =
    if r.Gen.idx > 0 then incr nonconst;
    if r.Gen.neg then incr negs;
    idxsum := !idxsum + r.Gen.idx
  in
  Array.iter
    (fun (n : Gen.node) -> count n.Gen.a; count n.Gen.b; count n.Gen.c)
    d.Gen.nodes;
  Array.iter count d.Gen.outs;
  ( Array.length d.Gen.nodes,
    Array.length d.Gen.outs,
    d.Gen.inputs,
    !nonconst,
    !idxsum,
    !negs )

let shrink_candidates_valid =
  QCheck.Test.make ~count:100
    ~name:"shrink candidates are well-formed and strictly smaller" desc_arb
    (fun d ->
      let ok = ref true in
      Gen.shrink d (fun cand ->
          if not (Gen.well_formed cand) then ok := false;
          if compare (measure cand) (measure d) >= 0 then ok := false);
      !ok)

let shrink_roundtrip_semantics =
  (* shrinking must preserve lowerability: every candidate still builds *)
  QCheck.Test.make ~count:60 ~name:"shrink candidates still lower to MIGs" desc_arb
    (fun d ->
      let ok = ref true in
      Gen.shrink d (fun cand ->
          match Gen.to_mig cand with
          | (_ : Mig.t) -> ()
          | exception _ -> ok := false);
      !ok)

(* --- conformance -------------------------------------------------------- *)

let conformance_clean =
  QCheck.Test.make ~count:12 ~name:"Check.run finds nothing on the shipped compiler"
    (Gen.arbitrary ~max_nodes:20 ())
    (fun d ->
      match Check.run (Gen.to_mig d) with
      | [] -> true
      | fs ->
        QCheck.Test.fail_reportf "%s"
          (String.concat "\n" (List.map Check.failure_to_string fs)))

let selection_matches_reference =
  QCheck.Test.make ~count:80 ~name:"heap selection equals the naive reference oracle"
    desc_arb
    (fun d ->
      match Check.selection_failures (Gen.to_mig d) with
      | [] -> true
      | fs ->
        QCheck.Test.fail_reportf "%s"
          (String.concat "\n" (List.map Check.failure_to_string fs)))

let test_reference_order_topological () =
  let g = Gen.to_mig (Gen.generate (Splitmix.create 99)) in
  List.iter
    (fun policy ->
      let order = Check.reference_order policy g in
      Alcotest.(check int)
        (Select.policy_name policy ^ " schedules all nodes")
        (Mig.size g) (List.length order);
      let seen = Hashtbl.create 16 in
      List.iter
        (fun id ->
          (match Mig.kind g id with
          | Mig.Maj (a, b, c) ->
            List.iter
              (fun s ->
                let m = Mig.node_of s in
                match Mig.kind g m with
                | Mig.Maj _ ->
                  if not (Hashtbl.mem seen m) then
                    Alcotest.failf "%s: node %d popped before child %d"
                      (Select.policy_name policy) id m
                | _ -> ())
              [ a; b; c ]
          | _ -> Alcotest.failf "popped non-majority node %d" id);
          Hashtbl.replace seen id ())
        order)
    [ Select.In_order; Select.Release_first; Select.Level_first ]

(* --- corpus ------------------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "plim-corpus-test" in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () -> f dir)

let test_corpus_roundtrip () =
  with_temp_dir @@ fun dir ->
  let d = Gen.generate (Splitmix.create 7) in
  let g = Gen.to_mig d in
  let path = Corpus.save ~dir ~meta:[ "failure: synthetic"; "two\nlines" ] g in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  let g' = Corpus.load_file path in
  Alcotest.(check string) "roundtrip is textually exact" (Mig_io.to_string g)
    (Mig_io.to_string g');
  (* idempotent: saving the same graph again reuses the entry *)
  let path' = Corpus.save ~dir g in
  Alcotest.(check string) "same digest, same file" path path';
  Alcotest.(check int) "one entry" 1 (List.length (Corpus.entries dir))

let test_corpus_missing_dir () =
  Alcotest.(check int) "missing directory is empty" 0
    (List.length (Corpus.entries "/nonexistent/plim-corpus"))

(* --- fuzz harness self-test --------------------------------------------- *)

(* a checker that rejects any MIG containing a complemented edge: the
   shrinker must reduce arbitrary failing graphs to a minimal witness with
   a single node and exactly one complement *)
let reject_complements mig =
  if Mig.num_complemented_edges mig > 0 then
    [ { Check.config = "synthetic"; invariant = "no-complement"; message = "edge" } ]
  else []

let test_fuzz_shrinks_to_minimal () =
  with_temp_dir @@ fun dir ->
  let options =
    { Fuzz.default_options with Fuzz.runs = 40; seed = 3; corpus_dir = Some dir }
  in
  let report = Fuzz.run ~check:reject_complements options in
  Alcotest.(check bool) "found counterexamples" true
    (report.Fuzz.counterexamples <> []);
  List.iter
    (fun (cex : Fuzz.counterexample) ->
      let mig = Gen.to_mig cex.Fuzz.desc in
      Alcotest.(check bool)
        (Printf.sprintf "case %d shrunk to a near-minimal witness" cex.Fuzz.run_index)
        true
        (Mig.size mig <= 3 && Mig.num_complemented_edges mig <= 3);
      Alcotest.(check bool) "witness still fails" true
        (reject_complements mig <> []);
      match cex.Fuzz.path with
      | None -> Alcotest.fail "counterexample not persisted"
      | Some path ->
        Alcotest.(check bool) "corpus file exists" true (Sys.file_exists path))
    report.Fuzz.counterexamples;
  Alcotest.(check bool) "corpus populated" true (Corpus.entries dir <> [])

let test_fuzz_deterministic () =
  let options =
    { Fuzz.default_options with Fuzz.runs = 25; seed = 11; corpus_dir = None }
  in
  let r1 = Fuzz.run ~check:reject_complements options in
  let r2 = Fuzz.run ~check:reject_complements options in
  Alcotest.(check int) "same case count" r1.Fuzz.cases r2.Fuzz.cases;
  Alcotest.(check (list int)) "same counterexample cases"
    (List.map (fun c -> c.Fuzz.run_index) r1.Fuzz.counterexamples)
    (List.map (fun c -> c.Fuzz.run_index) r2.Fuzz.counterexamples);
  Alcotest.(check (list string)) "byte-identical shrunk witnesses"
    (List.map (fun c -> Gen.print c.Fuzz.desc) r1.Fuzz.counterexamples)
    (List.map (fun c -> Gen.print c.Fuzz.desc) r2.Fuzz.counterexamples)

let test_case_seed_replays_campaign_case () =
  let options = { Fuzz.default_options with Fuzz.runs = 5; corpus_dir = None } in
  (* case seeds printed in reports must regenerate the very same MIG *)
  for i = 0 to 4 do
    let cs = Fuzz.case_seed_of ~seed:options.Fuzz.seed i in
    let d = Fuzz.desc_of_case_seed options cs in
    let d' = Fuzz.desc_of_case_seed options cs in
    Alcotest.(check string)
      (Printf.sprintf "case %d regenerates" i)
      (Gen.print d) (Gen.print d')
  done

(* --- exhaustive vs symbolic agreement (satellite) ------------------------ *)

let corrupt_last (p : Program.t) =
  let bad = Array.copy p.Program.instrs in
  let last = Array.length bad - 1 in
  bad.(last) <- I.set_const true p.Program.instrs.(last).I.z;
  Program.make ~instrs:bad ~num_cells:p.Program.num_cells
    ~pi_cells:p.Program.pi_cells ~po_cells:p.Program.po_cells

let agree g p =
  let ex = match Verify.check_exhaustive g p with Ok () -> true | Error _ -> false in
  let sym = match Verify.check_symbolic g p with Ok () -> true | Error _ -> false in
  if ex <> sym then
    QCheck.Test.fail_reportf "verifiers disagree: exhaustive=%b symbolic=%b" ex sym;
  true

let exhaustive_symbolic_agree =
  (* on every <=8-input generated MIG the two complete verifiers must
     accept the compiled program AND reject a corrupted one identically *)
  QCheck.Test.make ~count:40 ~name:"check_exhaustive agrees with check_symbolic"
    (QCheck.pair (Gen.arbitrary ~max_inputs:8 ~max_nodes:24 ()) QCheck.bool)
    (fun (d, use_full) ->
      let g = Gen.to_mig d in
      let config = if use_full then Pipeline.endurance_full else Pipeline.naive in
      let p = (Pipeline.compile config g).Pipeline.program in
      ignore (agree g p : bool);
      if Program.length p > 0 then ignore (agree g (corrupt_last p) : bool);
      true)

let () =
  Alcotest.run "check"
    [ ( "gen",
        [ qc generated_well_formed;
          qc lowering_preserves_semantics;
          qc shrink_candidates_valid;
          qc shrink_roundtrip_semantics ] );
      ( "conformance",
        [ qc conformance_clean;
          qc selection_matches_reference;
          Alcotest.test_case "reference order is topological" `Quick
            test_reference_order_topological ] );
      ( "corpus",
        [ Alcotest.test_case "save/load roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "missing dir" `Quick test_corpus_missing_dir ] );
      ( "fuzz",
        [ Alcotest.test_case "shrinks synthetic bug to minimal" `Quick
            test_fuzz_shrinks_to_minimal;
          Alcotest.test_case "deterministic campaigns" `Quick test_fuzz_deterministic;
          Alcotest.test_case "case seeds replay" `Quick
            test_case_seed_replays_campaign_case ] );
      ("agreement", [ qc exhaustive_symbolic_agree ]) ]
