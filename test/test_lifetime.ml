(* Accelerated-time extrapolation and horizon-campaign tests.

   The closed-form layer (Lifetime.fast_forward and friends) is checked
   against brute-force replay; the Horizon driver is checked for its
   headline properties — half-life monotone non-increasing in the fault
   rate, the combined strategy strictly outliving the unmanaged one, and
   byte-identical rows at every -j width. *)

module Lifetime = Plim_stats.Lifetime
module Horizon = Plim_serve.Horizon
module Campaign = Plim_machine.Campaign
module Start_gap = Plim_rram.Start_gap
module Wolfram = Plim_rram.Wolfram

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qc = QCheck_alcotest.to_alcotest

(* --- extrapolation math ------------------------------------------------- *)

(* integer-valued wear/rate arrays: fast_forward over k epochs must equal
   k single-epoch steps exactly (all sums stay in the float-exact range) *)
let fast_forward_matches_replay =
  QCheck.Test.make ~count:200 ~name:"fast_forward = iterated single-epoch replay"
    QCheck.(pair (int_range 0 40) (list_of_size (QCheck.Gen.int_range 1 12)
                                     (pair (int_range 0 50) (int_range 0 50))))
    (fun (k, cells) ->
      let wear = Array.of_list (List.map (fun (w, _) -> float_of_int w) cells) in
      let rate = Array.of_list (List.map (fun (_, r) -> float_of_int r) cells) in
      let direct = Lifetime.fast_forward ~epochs:(float_of_int k) ~wear ~rate in
      let stepped = ref wear in
      for _ = 1 to k do
        stepped := Lifetime.fast_forward ~epochs:1.0 ~wear:!stepped ~rate
      done;
      direct = !stepped)

let epochs_to_threshold_is_first_crossing =
  QCheck.Test.make ~count:200 ~name:"epochs_to_threshold is the first crossing"
    QCheck.(pair (int_range 1 500) (list_of_size (QCheck.Gen.int_range 1 12)
                                      (pair (int_range 0 400) (int_range 0 9))))
    (fun (threshold_i, cells) ->
      let threshold = float_of_int threshold_i in
      let wear = Array.of_list (List.map (fun (w, _) -> float_of_int w) cells) in
      let rate = Array.of_list (List.map (fun (_, r) -> float_of_int r) cells) in
      let e = Lifetime.epochs_to_threshold ~threshold ~wear ~rate in
      let reference =
        Array.to_list (Array.mapi (fun i w ->
            if w >= threshold then 0.0
            else if rate.(i) > 0.0 then (threshold -. w) /. rate.(i)
            else infinity) wear)
        |> List.fold_left min infinity
      in
      if e <> reference then false
      else if e = infinity || e = 0.0 then true
      else begin
        (* at the crossing: no cell is past the threshold, some cell is on it *)
        let advanced = Lifetime.fast_forward ~epochs:e ~wear ~rate in
        Array.for_all (fun w -> w < threshold +. 1e-9) advanced
        && Array.exists (fun w -> w >= threshold -. 1e-9) advanced
      end)

let test_fast_forward_edges () =
  let wear = [| 1.0; 2.0 |] and rate = [| 3.0; 0.0 |] in
  Alcotest.(check (array (float 0.0))) "zero epochs is identity" wear
    (Lifetime.fast_forward ~epochs:0.0 ~wear ~rate);
  let w = Array.copy wear in
  Lifetime.fast_forward_into ~epochs:2.0 ~wear:w ~rate;
  Alcotest.(check (array (float 0.0))) "in-place agrees"
    (Lifetime.fast_forward ~epochs:2.0 ~wear ~rate) w;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Lifetime.fast_forward: wear and rate lengths differ")
    (fun () -> ignore (Lifetime.fast_forward ~epochs:1.0 ~wear ~rate:[| 1.0 |]));
  Alcotest.check_raises "negative epochs"
    (Invalid_argument "Lifetime.fast_forward: negative epochs")
    (fun () -> ignore (Lifetime.fast_forward ~epochs:(-1.0) ~wear ~rate))

let test_epochs_to_threshold_edges () =
  let t = Lifetime.epochs_to_threshold ~threshold:10.0 in
  check_bool "already over threshold" true
    (t ~wear:[| 11.0; 0.0 |] ~rate:[| 0.0; 1.0 |] = 0.0);
  (* the documented contract: a bare IEEE infinity — not nan, not a
     sentinel — whenever no cell can ever reach the threshold *)
  check_bool "no positive rate" true
    (t ~wear:[| 1.0; 2.0 |] ~rate:[| 0.0; 0.0 |] = infinity);
  check_bool "empty arrays" true (t ~wear:[||] ~rate:[||] = infinity);
  check_bool "infinity composes with min" true
    (Float.min (t ~wear:[||] ~rate:[||]) 7.0 = 7.0);
  Alcotest.(check (float 1e-12)) "simple crossing" 4.0
    (t ~wear:[| 2.0 |] ~rate:[| 2.0 |])

(* the -1 JSON sentinel is the serialization of that bare infinity (and
   of None): Horizon.sentinel_epochs is the one mapping every emitter
   uses *)
let test_sentinel_epochs () =
  Alcotest.(check (float 0.0)) "finite passes through" 42.5
    (Horizon.sentinel_epochs (Some 42.5));
  Alcotest.(check (float 0.0)) "zero passes through" 0.0
    (Horizon.sentinel_epochs (Some 0.0));
  Alcotest.(check (float 0.0)) "None is -1" (-1.0)
    (Horizon.sentinel_epochs None);
  Alcotest.(check (float 0.0)) "infinity is -1" (-1.0)
    (Horizon.sentinel_epochs (Some infinity));
  Alcotest.(check (float 0.0)) "neg_infinity is -1" (-1.0)
    (Horizon.sentinel_epochs (Some neg_infinity));
  Alcotest.(check (float 0.0)) "nan is -1" (-1.0)
    (Horizon.sentinel_epochs (Some Float.nan))

let test_leveled_rate () =
  Alcotest.(check (float 1e-12)) "uniform split" 25.0
    (Lifetime.leveled_rate ~cells:4 ~total:100.0 ());
  Alcotest.(check (float 1e-12)) "overhead scales" 27.5
    (Lifetime.leveled_rate ~overhead:0.1 ~cells:4 ~total:100.0 ());
  Alcotest.check_raises "zero cells refused"
    (Invalid_argument "Lifetime.leveled_rate: cells must be positive")
    (fun () -> ignore (Lifetime.leveled_rate ~cells:0 ~total:1.0 ()))

let test_half_life () =
  let traj = [ (0.0, 1.0); (10.0, 0.8); (20.0, 0.5); (30.0, 0.2) ] in
  check_bool "first crossing" true
    (Lifetime.half_life ~initial:1.0 traj = Some 20.0);
  check_bool "never crosses" true
    (Lifetime.half_life ~initial:1.0 [ (0.0, 1.0); (5.0, 0.6) ] = None);
  check_bool "empty trajectory" true (Lifetime.half_life ~initial:1.0 [] = None)

(* --- closed-form stationary rates vs actual replay ---------------------- *)

(* the horizon model treats a levelled layer as uniform-with-overhead; the
   replayed physical counts of the real layers must match that closed form
   on the mean and stay near-uniform on the max *)
let test_start_gap_matches_closed_form () =
  let per_exec = [| 5; 3; 0; 1; 0; 0; 2; 0 |] in
  let n = Array.length per_exec in
  let psi = 10 and executions = 2_000 in
  let counts = Start_gap.replay ~psi ~executions per_exec in
  check_int "n + 1 physical lines" (n + 1) (Array.length counts);
  let logical = float_of_int (executions * Array.fold_left ( + ) 0 per_exec) in
  let predicted =
    Lifetime.leveled_rate ~overhead:(1.0 /. float_of_int psi)
      ~cells:(n + 1) ~total:logical ()
  in
  let total = float_of_int (Array.fold_left ( + ) 0 counts) in
  let mean = total /. float_of_int (n + 1) in
  check_bool
    (Printf.sprintf "mean %.1f within 2%% of closed form %.1f" mean predicted)
    true
    (abs_float (mean -. predicted) /. predicted < 0.02);
  let mx = float_of_int (Array.fold_left max 0 counts) in
  check_bool
    (Printf.sprintf "near-uniform: max/mean %.3f" (mx /. mean))
    true (mx /. mean < 1.15)

let test_wolfram_matches_closed_form () =
  let per_exec = [| 50; 1; 1; 1 |] in
  let n = Array.length per_exec in
  let period = 200 and executions = 800 in
  let counts = Wolfram.replay ~period ~seed:7 ~executions per_exec in
  check_int "n physical lines" n (Array.length counts);
  let logical = float_of_int (executions * Array.fold_left ( + ) 0 per_exec) in
  let predicted =
    Lifetime.leveled_rate
      ~overhead:(Wolfram.migration_overhead ~period ~lines:n)
      ~cells:n ~total:logical ()
  in
  let total = float_of_int (Array.fold_left ( + ) 0 counts) in
  let mean = total /. float_of_int n in
  check_bool
    (Printf.sprintf "mean %.1f within 5%% of closed form %.1f" mean predicted)
    true
    (abs_float (mean -. predicted) /. predicted < 0.05);
  let mx = float_of_int (Array.fold_left max 0 counts) in
  check_bool
    (Printf.sprintf "re-keying levels the hot line: max/mean %.3f" (mx /. mean))
    true (mx /. mean < 1.5)

(* --- endurance campaigns through the new layers ------------------------- *)

let campaign_program =
  lazy
    (let g = Plim_benchgen.Arith.multiplier ~width:4 in
     (Plim_core.Pipeline.compile Plim_core.Pipeline.naive g).Plim_core.Pipeline.program)

let test_campaign_wolfram_extends_lifetime () =
  let p = Lazy.force campaign_program in
  let endurance = 2000 in
  let plain = Campaign.run_until_failure ~endurance ~max_executions:5000 p in
  let remapped =
    Campaign.run_with_wolfram ~period:500 ~endurance ~max_executions:5000 p
  in
  check_bool
    (Printf.sprintf "wolfram %d >= plain %d executions"
       remapped.Campaign.executions_completed plain.Campaign.executions_completed)
    true
    (remapped.Campaign.executions_completed >= plain.Campaign.executions_completed);
  (* migrations are charged as real writes *)
  check_bool "migration traffic counted" true
    (remapped.Campaign.write_total > plain.Campaign.write_total
     || not remapped.Campaign.failed)

let test_campaign_combined_extends_lifetime () =
  let p = Lazy.force campaign_program in
  let endurance = 2000 in
  let plain = Campaign.run_until_failure ~endurance ~max_executions:5000 p in
  let combined =
    Campaign.run_with_start_gap_wolfram ~psi:50 ~period:500 ~endurance
      ~max_executions:5000 p
  in
  check_bool
    (Printf.sprintf "start_gap+wolfram %d >= plain %d executions"
       combined.Campaign.executions_completed plain.Campaign.executions_completed)
    true
    (combined.Campaign.executions_completed >= plain.Campaign.executions_completed)

(* --- horizon campaigns -------------------------------------------------- *)

(* a small fast grid config: the default fleet and mix, shorter horizon *)
let hz_config = Horizon.default_config

let test_strategy_names_round_trip () =
  List.iter
    (fun s ->
      match Horizon.strategy_of_string (Horizon.strategy_name s) with
      | Ok s' -> check_bool (Horizon.strategy_name s) true (s = s')
      | Error e -> Alcotest.failf "round trip failed: %s" e)
    Horizon.all_strategies;
  check_bool "junk rejected" true
    (Result.is_error (Horizon.strategy_of_string "no-such-strategy"))

let opt_inf = function None -> infinity | Some e -> e

let test_half_life_monotone_in_fault_rate () =
  let rates = [ 0.0; 0.02; 0.05 ] in
  let cells =
    Horizon.grid hz_config ~strategies:[ Horizon.No_leveling ] ~fault_rates:rates
  in
  let half_lives =
    List.map (fun (_, _, r) -> opt_inf r.Horizon.r_half_life) cells
  in
  (match half_lives with
  | [ h0; _; _ ] -> check_bool "fault-free half-life exists" true (h0 < infinity)
  | _ -> Alcotest.fail "expected three grid cells");
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      check_bool
        (Printf.sprintf "half-life %.1f >= %.1f at the higher rate" a b)
        true (a >= b);
      monotone rest
    | _ -> ()
  in
  monotone half_lives

let test_combined_outlives_none () =
  let cells =
    Horizon.grid hz_config
      ~strategies:[ Horizon.No_leveling; Horizon.Start_gap_wolfram ]
      ~fault_rates:[ 0.0; 0.02 ]
  in
  let find s rate =
    let _, _, r =
      List.find (fun (s', rate', _) -> s' = s && rate' = rate) cells
    in
    r
  in
  List.iter
    (fun rate ->
      let base = find Horizon.No_leveling rate in
      let both = find Horizon.Start_gap_wolfram rate in
      check_bool
        (Printf.sprintf "ttff at rate %g: combined > none" rate)
        true
        (opt_inf both.Horizon.r_ttff > opt_inf base.Horizon.r_ttff
         || base.Horizon.r_ttff = None);
      check_bool
        (Printf.sprintf "half-life at rate %g: combined > none" rate)
        true
        (opt_inf both.Horizon.r_half_life > opt_inf base.Horizon.r_half_life
         || base.Horizon.r_half_life = None))
    [ 0.0; 0.02 ]

(* the pinned replay gate: the whole grid, rows rendered to JSON, must be
   byte-identical between a sequential run and a 4-domain pool *)
let test_grid_byte_identical_across_jobs () =
  let rates = [ 0.0; 0.01 ] in
  let render cells =
    List.map (fun (_, _, r) -> Horizon.row_json r) cells
  in
  let seq =
    render (Horizon.grid hz_config ~strategies:Horizon.all_strategies
              ~fault_rates:rates)
  in
  let par =
    Plim_par.with_pool ~jobs:4 (fun pool ->
        render (Horizon.grid ~pool hz_config ~strategies:Horizon.all_strategies
                  ~fault_rates:rates))
  in
  check_int "same row count" (List.length seq) (List.length par);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string) (Printf.sprintf "row %d identical" i) a b)
    (List.combine seq par)

let test_row_json_shape () =
  let cells =
    Horizon.grid hz_config ~strategies:[ Horizon.Start_gap ] ~fault_rates:[ 0.0 ]
  in
  match cells with
  | [ (_, _, r) ] ->
    let row = Horizon.row_json r in
    List.iter
      (fun needle ->
        check_bool needle true
          (Helpers.contains ~needle row))
      [ "\"schema\":\"plim-horizon/v1\""; "\"strategy\":\"start_gap\"";
        "\"ttff_epochs\""; "\"half_life_epochs\""; "\"proj_ttff_years\"";
        "\"trajectory\"" ]
  | _ -> Alcotest.fail "expected one grid cell"

let () =
  Alcotest.run "lifetime"
    [ ( "extrapolation",
        [ qc fast_forward_matches_replay;
          qc epochs_to_threshold_is_first_crossing;
          Alcotest.test_case "fast_forward edge cases" `Quick test_fast_forward_edges;
          Alcotest.test_case "epochs_to_threshold edge cases" `Quick
            test_epochs_to_threshold_edges;
          Alcotest.test_case "sentinel_epochs encoding" `Quick
            test_sentinel_epochs;
          Alcotest.test_case "leveled_rate" `Quick test_leveled_rate;
          Alcotest.test_case "half_life" `Quick test_half_life ] );
      ( "closed-form-vs-replay",
        [ Alcotest.test_case "start-gap replay matches closed form" `Quick
            test_start_gap_matches_closed_form;
          Alcotest.test_case "wolfram replay matches closed form" `Quick
            test_wolfram_matches_closed_form ] );
      ( "campaign",
        [ Alcotest.test_case "wolfram extends lifetime" `Slow
            test_campaign_wolfram_extends_lifetime;
          Alcotest.test_case "start_gap+wolfram extends lifetime" `Slow
            test_campaign_combined_extends_lifetime ] );
      ( "horizon",
        [ Alcotest.test_case "strategy names round-trip" `Quick
            test_strategy_names_round_trip;
          Alcotest.test_case "half-life monotone in fault rate" `Quick
            test_half_life_monotone_in_fault_rate;
          Alcotest.test_case "start_gap+wolfram outlives none" `Quick
            test_combined_outlives_none;
          Alcotest.test_case "grid byte-identical at -j1 and -j4" `Quick
            test_grid_byte_identical_across_jobs;
          Alcotest.test_case "row JSON shape" `Quick test_row_json_shape ] ) ]
