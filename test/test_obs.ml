(* Observability layer: metrics counters, trace sinks, profiling spans —
   and the invariant that none of it perturbs compilation. *)

module Obs = Plim_obs.Obs
module Clock = Plim_obs.Clock
module Metrics = Plim_obs.Metrics
module Trace = Plim_obs.Trace
module Profile = Plim_obs.Profile
module Pipeline = Plim_core.Pipeline
module Program = Plim_isa.Program
module Stats = Plim_stats.Stats
module Suite = Plim_benchgen.Suite
module Controller = Plim_machine.Plim_controller

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* --- a minimal JSON well-formedness checker --------------------------- *)

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal w =
    String.iter (fun c -> expect c) w
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let start = !pos in
      let rec go () =
        match peek () with Some '0' .. '9' -> advance (); go () | _ -> ()
      in
      go ();
      if !pos = start then fail "expected digits"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
      end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "unexpected token");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"

let check_valid_json what s =
  match parse_json s with
  | () -> ()
  | exception Bad_json msg ->
    Alcotest.failf "%s: invalid JSON (%s): %s" what msg
      (if String.length s > 200 then String.sub s 0 200 ^ "…" else s)

(* --- metrics ---------------------------------------------------------- *)

let test_metrics_basics () =
  let c = Metrics.counter "test.some_counter" in
  let before = Metrics.value c in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "incremented" (before + 5) (Metrics.value c);
  check_bool "same name, same counter" true
    (Metrics.value (Metrics.counter "test.some_counter") = Metrics.value c);
  check_int "get by name" (Metrics.value c) (Metrics.get "test.some_counter");
  check_int "unknown name is 0" 0 (Metrics.get "test.no_such_counter");
  let g = Metrics.gauge "test.some_gauge" in
  Metrics.set_gauge g 2.5;
  let snap = Metrics.snapshot () in
  check_bool "counter in snapshot" true
    (List.mem_assoc "test.some_counter" snap);
  check_bool "gauge in snapshot" true
    (match List.assoc_opt "test.some_gauge" snap with
    | Some (Metrics.Gauge v) -> v = 2.5
    | _ -> false);
  let names = List.map fst snap in
  check_bool "snapshot sorted" true (List.sort String.compare names = names);
  Metrics.reset ();
  check_int "reset zeroes" 0 (Metrics.get "test.some_counter")

(* --- counters across a small compile ---------------------------------- *)

let compile_adder8 () =
  let g = Suite.build_cached (Suite.find "adder8") in
  Pipeline.compile Pipeline.endurance_full g

let test_compile_counters () =
  Metrics.reset ();
  let r = compile_adder8 () in
  let p = r.Pipeline.program in
  let s = r.Pipeline.write_summary in
  check_int "alloc.writes = write_summary.total" s.Stats.total (Metrics.get "alloc.writes");
  check_int "alloc.fresh_cells = #R" (Program.num_cells p) (Metrics.get "alloc.fresh_cells");
  check_int "translate.instrs = #I" (Program.length p) (Metrics.get "translate.instrs");
  check_int "requests split into fresh + pool hits"
    (Metrics.get "alloc.requests")
    (Metrics.get "alloc.fresh_cells" + Metrics.get "alloc.pool_hits");
  check_bool "rewriting happened" true (Metrics.get "rewrite.passes" > 0);
  check_int "five effort cycles" 5 (Metrics.get "rewrite.cycles");
  check_bool "selection popped every node" true (Metrics.get "select.pops" > 0);
  (* executing the program performs exactly one crossbar write per
     instruction and one peripheral load per PI *)
  let before_writes = Metrics.get "crossbar.writes" in
  check_int "no crossbar writes during compilation" 0 before_writes;
  let inputs =
    Array.to_list (Array.map (fun (n, _) -> (n, false)) p.Program.pi_cells)
  in
  let _, _, _ = Controller.run p ~inputs in
  check_int "crossbar.writes after one run = write_summary.total" s.Stats.total
    (Metrics.get "crossbar.writes");
  check_int "crossbar.loads = #PI" (Array.length p.Program.pi_cells)
    (Metrics.get "crossbar.loads");
  check_int "machine.runs" 1 (Metrics.get "machine.runs")

let test_cap_retires_counted () =
  Metrics.reset ();
  let g = Suite.build_cached (Suite.find "adder8") in
  let _ = Pipeline.compile (Pipeline.with_cap 10 Pipeline.endurance_full) g in
  check_bool "capped compile retires devices" true
    (Metrics.get "alloc.retired_cells" > 0)

(* --- trace sinks ------------------------------------------------------- *)

let test_memory_sink_event_order () =
  let (r : Pipeline.result), events =
    Trace.with_memory (fun () -> compile_adder8 ())
  in
  check_bool "sink restored" false (Trace.enabled ());
  check_bool "captured events" true (List.length events > 0);
  let names = List.map (fun e -> e.Trace.name) events in
  List.iter
    (fun n ->
      check_bool (Printf.sprintf "known event name %s" n) true
        (List.mem n
           [ "rewrite.pass"; "alloc.fresh"; "alloc.request"; "alloc.release";
             "alloc.retire"; "alloc.write"; "translate.rm3" ]))
    names;
  let index_of name =
    let rec go i = function
      | [] -> -1
      | n :: _ when n = name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 names
  in
  (* rewriting precedes allocation, allocation precedes the first write *)
  check_bool "rewrite first" true (index_of "rewrite.pass" < index_of "alloc.fresh");
  check_bool "allocate before write" true (index_of "alloc.fresh" < index_of "alloc.write");
  check_bool "releases captured" true (index_of "alloc.release" >= 0);
  (* every alloc.write targets a previously allocated cell *)
  let allocated = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let cell () =
        match List.assoc_opt "cell" e.Trace.args with
        | Some (Trace.Int c) -> c
        | _ -> Alcotest.fail "event without cell arg"
      in
      match e.Trace.name with
      | "alloc.fresh" -> Hashtbl.replace allocated (cell ()) ()
      | "alloc.write" | "alloc.release" | "alloc.retire" ->
        check_bool "write/release after allocate" true (Hashtbl.mem allocated (cell ()))
      | _ -> ())
    events;
  (* static write events agree with the summary *)
  let writes =
    List.length (List.filter (fun e -> e.Trace.name = "alloc.write") events)
  in
  check_int "alloc.write events = total writes" r.Pipeline.write_summary.Stats.total
    writes

let test_null_sink_identical () =
  (* observability must be free: the Null-sink compile and a compile under
     an active Memory sink produce bit-identical artefacts *)
  Trace.set_sink Trace.Null;
  let r0 = compile_adder8 () in
  let r1, _ = Trace.with_memory (fun () -> compile_adder8 ()) in
  check_bool "programs identical" true (r0.Pipeline.program = r1.Pipeline.program);
  check_bool "summaries identical" true
    (r0.Pipeline.write_summary = r1.Pipeline.write_summary)

let test_jsonl_sink () =
  let path = Filename.temp_file "plim_obs" ".jsonl" in
  Trace.with_jsonl path (fun () ->
      Trace.emit "test.event"
        ~args:
          [ ("i", Trace.Int 42); ("f", Trace.Float 1.5); ("b", Trace.Bool true);
            ("s", Trace.String "with \"quotes\" and\nnewline") ];
      Trace.emit "test.bare");
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  check_int "two lines" 2 (List.length lines);
  List.iter (check_valid_json "jsonl line") lines;
  check_bool "named" true
    (String.length (List.hd lines) > 0
    && contains ~affix:"\"name\":\"test.event\"" (List.hd lines))

(* --- profiling spans --------------------------------------------------- *)

let test_span_nesting_and_chrome_json () =
  (* deterministic fake clock: each call advances 1ms *)
  let t = ref 0.0 in
  Clock.set (fun () ->
      t := !t +. 0.001;
      !t);
  Profile.reset ();
  Profile.enable ();
  let result =
    Obs.span "outer" (fun () ->
        ignore (Obs.span "inner1" (fun () -> 1));
        ignore (Obs.span "inner2" (fun () -> 2));
        "done")
  in
  Profile.disable ();
  Clock.reset ();
  Alcotest.(check string) "span is transparent" "done" result;
  let spans = Profile.spans () in
  check_int "three spans" 3 (List.length spans);
  let find name = List.find (fun s -> s.Profile.name = name) spans in
  let outer = find "outer" and i1 = find "inner1" and i2 = find "inner2" in
  check_int "outer depth" 0 outer.Profile.depth;
  check_int "inner depth" 1 i1.Profile.depth;
  let inside (s : Profile.span) =
    s.Profile.start >= outer.Profile.start
    && s.Profile.start +. s.Profile.duration
       <= outer.Profile.start +. outer.Profile.duration
  in
  check_bool "inner1 nested inside outer" true (inside i1);
  check_bool "inner2 nested inside outer" true (inside i2);
  check_bool "inner1 before inner2" true (i1.Profile.start < i2.Profile.start);
  let json = Profile.to_chrome_json () in
  check_valid_json "chrome trace" json;
  check_bool "has traceEvents" true
    (contains ~affix:"\"traceEvents\"" json);
  check_bool "complete events" true (contains ~affix:"\"ph\":\"X\"" json);
  check_bool "span name present" true
    (contains ~affix:"\"name\":\"inner1\"" json);
  Profile.reset ()

let test_span_disabled_is_transparent () =
  Profile.reset ();
  check_bool "disabled by default here" false (Profile.enabled ());
  check_int "result" 7 (Obs.span "nothing" (fun () -> 7));
  check_int "no span recorded" 0 (List.length (Profile.spans ()))

let test_span_records_on_exception () =
  Profile.reset ();
  Profile.enable ();
  (try Obs.span "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  ignore (Obs.span "after" (fun () -> ()));
  Profile.disable ();
  let spans = Profile.spans () in
  check_int "both spans recorded" 2 (List.length spans);
  check_int "depth restored after raise" 0
    (List.find (fun s -> s.Profile.name = "after") spans).Profile.depth;
  Profile.reset ()

let test_totals_sorted_by_name () =
  Profile.reset ();
  Profile.enable ();
  (* record in an order that differs from both alphabetic and by-time so a
     regression to either ordering fails: "zeta" is slowest, recorded
     first *)
  ignore (Obs.span "zeta" (fun () -> Unix.sleepf 0.002));
  ignore (Obs.span "alpha" (fun () -> ()));
  ignore (Obs.span "mid" (fun () -> ()));
  ignore (Obs.span "alpha" (fun () -> ()));
  Profile.disable ();
  let names = List.map fst (Profile.totals ()) in
  Alcotest.(check (list string))
    "totals sorted by name, duplicates merged" [ "alpha"; "mid"; "zeta" ] names;
  let calls, _ = List.assoc "alpha" (Profile.totals ()) in
  check_int "alpha merged calls" 2 calls;
  Profile.reset ()

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "compile counters" `Quick test_compile_counters;
          Alcotest.test_case "cap retires counted" `Quick test_cap_retires_counted ] );
      ( "trace",
        [ Alcotest.test_case "memory sink order" `Quick test_memory_sink_event_order;
          Alcotest.test_case "null sink identical" `Quick test_null_sink_identical;
          Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink ] );
      ( "profile",
        [ Alcotest.test_case "nesting + chrome json" `Quick
            test_span_nesting_and_chrome_json;
          Alcotest.test_case "disabled transparent" `Quick
            test_span_disabled_is_transparent;
          Alcotest.test_case "records on exception" `Quick
            test_span_records_on_exception;
          Alcotest.test_case "totals sorted by name" `Quick
            test_totals_sorted_by_name ] ) ]
