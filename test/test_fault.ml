module Crossbar = Plim_rram.Crossbar
module Fault_model = Plim_fault.Fault_model
module Faulty = Plim_fault.Faulty
module Remap = Plim_fault.Remap
module Exec = Plim_fault.Exec
module Pipeline = Plim_core.Pipeline
module Program = Plim_isa.Program
module Controller = Plim_machine.Plim_controller

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- fault model -------------------------------------------------------- *)

let kinds_to_bools = List.map (fun (i, k) -> (i, k = Fault_model.Stuck_at_1))

let test_model_reproducible () =
  let spec = Fault_model.make ~sa0:0.05 ~sa1:0.05 ~seed:42 () in
  let s1 = Fault_model.sample_permanent spec ~cells:500 in
  let s2 = Fault_model.sample_permanent spec ~cells:500 in
  check_bool "some faults at 10%" true (List.length s1 > 0);
  Alcotest.(check (list (pair int bool)))
    "same spec, same faults" (kinds_to_bools s1) (kinds_to_bools s2);
  List.iter
    (fun (i, k) -> check_bool "cell_fault agrees" true (Fault_model.cell_fault spec i = Some k))
    s1;
  let other = Fault_model.make ~sa0:0.05 ~sa1:0.05 ~seed:43 () in
  check_bool "different seed, different faults" true
    (kinds_to_bools s1 <> kinds_to_bools (Fault_model.sample_permanent other ~cells:500))

let test_model_monotone () =
  (* coupled thresholds: doubling the rates only adds faults *)
  let spec = Fault_model.make ~sa0:0.02 ~sa1:0.01 ~seed:7 () in
  let low = Fault_model.sample_permanent spec ~cells:1000 in
  let high = Fault_model.sample_permanent (Fault_model.scale 2.0 spec) ~cells:1000 in
  check_bool "low rate faults survive scaling" true
    (List.for_all (fun (i, _) -> List.mem_assoc i high) low);
  check_bool "scaling adds faults" true (List.length high > List.length low)

let test_model_parse () =
  (match Fault_model.parse "sa0:0.01,sa1:0.005,transient:1e-4,growth:1e-6,seed:42" with
  | Ok s ->
    check_bool "sa0" true (s.Fault_model.sa0 = 0.01);
    check_bool "sa1" true (s.Fault_model.sa1 = 0.005);
    check_bool "transient" true (s.Fault_model.transient = 1e-4);
    check_bool "growth" true (s.Fault_model.transient_growth = 1e-6);
    check_int "seed" 42 s.Fault_model.seed
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault_model.parse "none" with
  | Ok s -> check_bool "none parses" true (Fault_model.is_none s)
  | Error e -> Alcotest.failf "parse none failed: %s" e);
  check_bool "junk rejected" true (Result.is_error (Fault_model.parse "sa2:0.1"));
  check_bool "bad rate rejected" true (Result.is_error (Fault_model.parse "sa0:1.5"))

(* --- faulty wrapper ----------------------------------------------------- *)

let test_injection_reproducible () =
  let spec = Fault_model.make ~sa0:0.04 ~sa1:0.04 ~seed:11 () in
  let fx1 = Faulty.create ~spec (Crossbar.create 300) in
  let fx2 = Faulty.create ~spec (Crossbar.create 300) in
  check_bool "nonempty" true (Faulty.injected fx1 > 0);
  Alcotest.(check (list (pair int bool)))
    "same wrapper faults" (Faulty.faulty_cells fx1) (Faulty.faulty_cells fx2)

let test_verify_detects_stuck () =
  (* a stuck cell is caught by read-back on the first conflicting write *)
  let faults =
    [ (1, Fault_model.Stuck_at_0); (3, Fault_model.Stuck_at_1);
      (6, Fault_model.Stuck_at_0) ]
  in
  let fx = Faulty.create ~faults (Crossbar.create 8) in
  check_int "all injected" 3 (Faulty.injected fx);
  List.iter
    (fun (i, kind) ->
      let conflicting = kind = Fault_model.Stuck_at_0 in
      Faulty.write fx i conflicting;
      check_bool "read-back exposes the fault" true (Faulty.read fx i <> conflicting))
    faults;
  check_int "all writes absorbed" 3 (Faulty.absorbed_writes fx);
  (* healthy cells pass read-back *)
  Faulty.write fx 0 true;
  check_bool "healthy read-back" true (Faulty.read fx 0)

let test_wearout_becomes_stuck () =
  (* endurance exhaustion degrades into a stuck-at fault instead of a
     Cell_failed crash *)
  let fx = Faulty.create (Crossbar.create ~endurance:2 2) in
  Faulty.write fx 0 true;
  Faulty.write fx 0 false;
  check_int "worn out" 1 (Faulty.worn_out fx);
  check_bool "stuck at last value" true (Faulty.stuck_at fx 0 = Some false);
  Faulty.write fx 0 true;   (* absorbed, no exception *)
  check_bool "still stuck" false (Faulty.read fx 0);
  check_bool "capacity halved" true (Faulty.capacity fx = 0.5)

(* --- fault-tolerant execution ------------------------------------------- *)

let adder4 = Helpers.adder4

let run_with ~faults ~spares ?spec () =
  let p, inputs, _ = Lazy.force adder4 in
  let rm = Remap.create ~spares ~lines:(Program.num_cells p) () in
  let base = Crossbar.create (Remap.num_physical rm) in
  let fx = Faulty.create ?spec ~faults base in
  Exec.run ~verify:true fx rm p ~inputs

let test_remap_preserves_results () =
  (* k stuck-at-LRS faults on program cells: the power-on scrub detects
     every one; with k spares the run completes correctly, with k - 1 the
     pool runs dry *)
  let _, _, reference = Lazy.force adder4 in
  for k = 0 to 3 do
    let faults = List.init k (fun i -> (i, Fault_model.Stuck_at_1)) in
    (match run_with ~faults ~spares:k () with
    | Exec.Completed outputs, stats ->
      Alcotest.(check (list (pair string bool)))
        (Printf.sprintf "correct with %d faults, %d spares" k k)
        reference outputs;
      check_int "every fault detected" k stats.Exec.detections;
      check_int "every detection repaired" k stats.Exec.remaps
    | Exec.Out_of_spares _, _ -> Alcotest.failf "pool dry with %d spares for %d faults" k k);
    if k > 0 then
      match run_with ~faults ~spares:(k - 1) () with
      | Exec.Out_of_spares _, stats ->
        check_int "partial repairs before exhaustion" (k - 1) stats.Exec.remaps
      | Exec.Completed _, _ ->
        Alcotest.failf "completed with %d faults but %d spares" k (k - 1)
  done

let test_faulty_spare_is_reverified () =
  (* the first spare handed out is itself stuck: repair must cascade to
     the next spare *)
  let p, _, reference = Lazy.force adder4 in
  let lines = Program.num_cells p in
  let faults = [ (0, Fault_model.Stuck_at_1); (lines, Fault_model.Stuck_at_1) ] in
  match run_with ~faults ~spares:2 () with
  | Exec.Completed outputs, stats ->
    Alcotest.(check (list (pair string bool))) "correct through faulty spare"
      reference outputs;
    check_int "both stuck lines detected" 2 stats.Exec.detections
  | Exec.Out_of_spares _, _ -> Alcotest.fail "pool dry despite a healthy second spare"

let test_transient_recovered_by_retry () =
  let _, _, reference = Lazy.force adder4 in
  let spec = Fault_model.make ~transient:0.2 ~seed:99 () in
  match run_with ~faults:[] ~spares:32 ~spec () with
  | Exec.Completed outputs, stats ->
    Alcotest.(check (list (pair string bool))) "correct despite transients"
      reference outputs;
    check_bool "retries happened" true (stats.Exec.retries > 0)
  | Exec.Out_of_spares _, _ -> Alcotest.fail "transients exhausted 32 spares"

let test_zero_fault_bit_identical () =
  (* no faults, verify off: the wrapped execution is indistinguishable
     from the bare controller — same outputs, same per-cell write counts *)
  let p, inputs, reference = Lazy.force adder4 in
  let rm = Remap.create ~lines:(Program.num_cells p) () in
  let base = Crossbar.create (Program.num_cells p) in
  let fx = Faulty.create base in
  (match Exec.run fx rm p ~inputs with
  | Exec.Completed outputs, stats ->
    Alcotest.(check (list (pair string bool))) "same outputs" reference outputs;
    check_int "no verify reads" 0 stats.Exec.verify_reads;
    check_int "no retries" 0 stats.Exec.retries
  | Exec.Out_of_spares _, _ -> Alcotest.fail "no faults, no spares needed");
  let _, xbar, _ = Controller.run p ~inputs in
  Alcotest.(check (array int)) "same write counts" (Crossbar.write_counts xbar)
    (Crossbar.write_counts base)

let test_oversized_remap_table () =
  (* a persistent shard's remap table outlives any one program: a table
     with more lines than the program has cells must execute identically,
     and a smaller table must still be refused *)
  let p, inputs, reference = Lazy.force adder4 in
  let lines = Program.num_cells p in
  let rm = Remap.create ~spares:2 ~lines:(lines + 16) () in
  let base = Crossbar.create (Remap.num_physical rm) in
  let fx = Faulty.create ~faults:[ (0, Fault_model.Stuck_at_1) ] base in
  (match Exec.run ~verify:true fx rm p ~inputs with
  | Exec.Completed outputs, stats ->
    Alcotest.(check (list (pair string bool))) "correct on oversized table"
      reference outputs;
    check_int "fault on a program line still repaired" 1 stats.Exec.remaps
  | Exec.Out_of_spares _, _ -> Alcotest.fail "spares available but pool dry");
  (* only the program's own lines are scrubbed or written *)
  let counts = Faulty.wear_counts fx in
  for l = lines to lines + 15 do
    check_int (Printf.sprintf "line %d beyond the program untouched" l) 0
      counts.(Remap.physical rm l)
  done;
  let small = Remap.create ~lines:(lines - 1) () in
  Alcotest.check_raises "undersized table refused"
    (Invalid_argument "Exec.run: remap table smaller than the program's cell count")
    (fun () ->
      let base = Crossbar.create (Remap.num_physical small) in
      ignore (Exec.run (Faulty.create base) small p ~inputs))

let qc = QCheck_alcotest.to_alcotest

(* property: under any injected fault set that fits in the spare budget,
   a verified run either completes with the reference outputs or runs out
   of spares — it never completes with wrong outputs *)
let verified_never_wrong =
  QCheck.Test.make ~count:50 ~name:"write-verify never completes incorrectly"
    QCheck.(pair (int_range 0 6) small_int)
    (fun (num_faults, seed) ->
      let p, _, reference = Lazy.force adder4 in
      let spec =
        Fault_model.make ~sa0:0.0 ~sa1:0.0 ~transient:0.05 ~seed ()
      in
      let faults =
        List.init num_faults (fun i ->
            ( (i * 7 + seed) mod Program.num_cells p,
              if (i + seed) mod 2 = 0 then Fault_model.Stuck_at_0
              else Fault_model.Stuck_at_1 ))
        |> List.sort_uniq compare
      in
      match run_with ~faults ~spares:num_faults ~spec () with
      | Exec.Completed outputs, _ -> outputs = reference
      | Exec.Out_of_spares _, _ -> true)

let () =
  Alcotest.run "fault"
    [ ( "fault-model",
        [ Alcotest.test_case "seeded sampling is reproducible" `Quick
            test_model_reproducible;
          Alcotest.test_case "fault sets are monotone in the rate" `Quick
            test_model_monotone;
          Alcotest.test_case "CLI spec parsing" `Quick test_model_parse ] );
      ( "faulty-wrapper",
        [ Alcotest.test_case "injection is reproducible" `Quick
            test_injection_reproducible;
          Alcotest.test_case "read-back exposes stuck cells" `Quick
            test_verify_detects_stuck;
          Alcotest.test_case "wear-out degrades to stuck-at" `Quick
            test_wearout_becomes_stuck ] );
      ( "fault-tolerant-exec",
        [ Alcotest.test_case "remap preserves results until spares exhausted" `Quick
            test_remap_preserves_results;
          Alcotest.test_case "faulty spares are re-verified" `Quick
            test_faulty_spare_is_reverified;
          Alcotest.test_case "transients recovered by retry" `Quick
            test_transient_recovered_by_retry;
          Alcotest.test_case "zero-fault wrapper is bit-identical" `Quick
            test_zero_fault_bit_identical;
          Alcotest.test_case "oversized remap table" `Quick
            test_oversized_remap_table;
          qc verified_never_wrong ] ) ]
