(* End-to-end integration: generate -> (rewrite) -> compile -> execute on
   the crossbar machine -> compare against direct MIG evaluation, across
   the paper's configurations, on every circuit family of the suite. *)

module Mig = Plim_mig.Mig
module Suite = Plim_benchgen.Suite
module Recipe = Plim_rewrite.Recipe
module Pipeline = Plim_core.Pipeline
module Verify = Plim_core.Verify
module Program = Plim_isa.Program
module Stats = Plim_stats.Stats
module Lifetime = Plim_stats.Lifetime
module Controller = Plim_machine.Plim_controller
module Crossbar = Plim_rram.Crossbar

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let presets =
  [ Pipeline.naive;
    Pipeline.dac16;
    Pipeline.min_write;
    Pipeline.endurance_rewrite;
    Pipeline.endurance_full;
    Pipeline.with_cap 10 Pipeline.endurance_full ]

let test_small_suite_all_presets () =
  List.iter
    (fun spec ->
      let g = spec.Suite.build () in
      List.iter
        (fun config ->
          let r = Pipeline.compile config g in
          match Verify.check_random ~trials:4 ~seed:0xF00 g r.Pipeline.program with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s under %s: %s" spec.Suite.name (Pipeline.config_name config) e)
        presets)
    Suite.small_suite

let test_cap_bounds_writes_on_suite () =
  List.iter
    (fun spec ->
      let g = spec.Suite.build () in
      let r = Pipeline.compile (Pipeline.with_cap 10 Pipeline.endurance_full) g in
      let writes = Program.static_write_counts r.Pipeline.program in
      check_bool (spec.Suite.name ^ " cap respected") true
        (Array.for_all (fun w -> w <= 10) writes))
    Suite.small_suite

(* the headline claim, as a loose statistical property on small circuits:
   full endurance management beats the naive compiler on average *)
let test_stdev_improvement_direction () =
  let naive_total = ref 0.0 and full_total = ref 0.0 in
  List.iter
    (fun spec ->
      let g = spec.Suite.build () in
      let sd config = (Pipeline.compile config g).Pipeline.write_summary.Stats.stdev in
      naive_total := !naive_total +. sd Pipeline.naive;
      full_total := !full_total +. sd Pipeline.endurance_full)
    Suite.small_suite;
  check_bool
    (Printf.sprintf "endurance-full %.1f < naive %.1f" !full_total !naive_total)
    true
    (!full_total < !naive_total)

(* Table-III direction: a tighter write cap costs devices but buys balance *)
let test_cap_tradeoff_direction () =
  let spec = Suite.find "sin" in
  let g = Recipe.run Recipe.Algorithm2 ~effort:2 (Suite.build_cached spec) in
  let at cap =
    let r = Pipeline.compile_rewritten (Pipeline.with_cap cap Pipeline.endurance_full) g in
    (Program.num_cells r.Pipeline.program, r.Pipeline.write_summary.Stats.stdev,
     r.Pipeline.write_summary.Stats.max)
  in
  let r10, sd10, mx10 = at 10 in
  let r100, sd100, mx100 = at 100 in
  check_bool "tighter cap uses more devices" true (r10 >= r100);
  check_bool "tighter cap balances better" true (sd10 <= sd100);
  check_bool "max bounded at 10" true (mx10 <= 10);
  check_bool "max bounded at 100" true (mx100 <= 100)

(* executing the compiled program on an endurance-limited crossbar:
   the balanced program must survive more executions *)
let test_lifetime_on_machine () =
  let spec = Suite.find "rc_small" in
  let g = spec.Suite.build () in
  let lifetime config =
    let r = Pipeline.compile config g in
    let writes = Program.static_write_counts r.Pipeline.program in
    (Lifetime.estimate ~endurance:1e10 writes).Lifetime.executions_to_first_failure
  in
  let naive = lifetime Pipeline.naive in
  let capped = lifetime (Pipeline.with_cap 10 Pipeline.endurance_full) in
  check_bool
    (Printf.sprintf "capped lifetime %.2e >= naive %.2e" capped naive)
    true (capped >= naive)

(* dynamic execution on a real endurance budget: the naive program kills a
   cell while the balanced one finishes *)
let test_wearout_execution () =
  let spec = Suite.find "div8" in
  let g = spec.Suite.build () in
  let naive = (Pipeline.compile Pipeline.naive g).Pipeline.program in
  let budget =
    (* pick a budget between the balanced and naive max write counts *)
    let balanced =
      (Pipeline.compile (Pipeline.with_cap 10 Pipeline.endurance_full) g).Pipeline.program
    in
    let naive_max = Array.fold_left max 0 (Program.static_write_counts naive) in
    let bal_max = Array.fold_left max 0 (Program.static_write_counts balanced) in
    check_bool "naive concentrates more writes" true (naive_max > bal_max);
    (naive_max + bal_max) / 2
  in
  let inputs = Array.map (fun (name, _) -> (name, false)) naive.Program.pi_cells in
  check_bool "naive wears out mid-run" true
    (try
       ignore (Controller.run ~endurance:budget naive ~inputs:(Array.to_list inputs));
       false
     with Plim_rram.Crossbar.Cell_failed _ -> true)

(* cross-check machine cycle accounting on a compiled program *)
let test_cycle_accounting () =
  let g = Plim_benchgen.Arith.adder ~width:4 in
  let r = Pipeline.compile Pipeline.endurance_full g in
  let p = r.Pipeline.program in
  let inputs = Array.to_list (Array.map (fun (n, _) -> (n, true)) p.Program.pi_cells) in
  let _, xbar, stats = Controller.run p ~inputs in
  check_int "instructions executed" (Program.length p) stats.Controller.instructions;
  let reads =
    Array.fold_left
      (fun acc (i : Plim_isa.Instruction.t) ->
        let op = function Plim_isa.Instruction.Cell _ -> 1 | Plim_isa.Instruction.Const _ -> 0 in
        acc + op i.Plim_isa.Instruction.a + op i.Plim_isa.Instruction.b)
      0 p.Program.instrs
  in
  check_int "cycles = reads + writes" (reads + Program.length p) stats.Controller.cycles;
  (* dynamic counts equal the static profile *)
  Alcotest.(check (array int)) "dynamic = static" (Program.static_write_counts p)
    (Crossbar.write_counts xbar)

(* assembly round-trip of a fully compiled benchmark still verifies *)
let test_asm_roundtrip_executes () =
  let g = Plim_benchgen.Arith.multiplier ~width:4 in
  let r = Pipeline.compile Pipeline.min_write g in
  let p' = Plim_isa.Asm.of_string (Plim_isa.Asm.to_string r.Pipeline.program) in
  match Verify.check_random ~trials:8 g p' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "roundtripped program: %s" e

(* rewriting effort monotonicity: more effort never increases size *)
let test_effort_monotone () =
  let g = Plim_benchgen.Frontend.expand (Plim_benchgen.Arith.adder ~width:8) in
  let s1 = Mig.size (Recipe.run Recipe.Algorithm2 ~effort:1 g) in
  let s5 = Mig.size (Recipe.run Recipe.Algorithm2 ~effort:5 g) in
  check_bool "effort 5 <= effort 1 size" true (s5 <= s1)

let () =
  Alcotest.run "integration"
    [ ( "end-to-end",
        [ Alcotest.test_case "small suite x all presets" `Slow test_small_suite_all_presets;
          Alcotest.test_case "cap bounds writes" `Quick test_cap_bounds_writes_on_suite;
          Alcotest.test_case "stdev improvement direction" `Slow
            test_stdev_improvement_direction;
          Alcotest.test_case "cap trade-off direction" `Slow test_cap_tradeoff_direction;
          Alcotest.test_case "lifetime estimate" `Quick test_lifetime_on_machine;
          Alcotest.test_case "wear-out during execution" `Quick test_wearout_execution;
          Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
          Alcotest.test_case "assembly roundtrip executes" `Quick test_asm_roundtrip_executes;
          Alcotest.test_case "rewriting effort monotone" `Quick test_effort_monotone ] ) ]
