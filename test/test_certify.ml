(* Static endurance certification tests.

   Three layers: the race detector must accept every scheduler-produced
   grouping and reject every hazard-injected mutant (also rejected,
   independently, by Geometry.validate — two code paths, one verdict);
   the wear-bound certificates must bracket what the horizon simulator
   actually measures, on both a compile-heavy grid (one-sided brackets)
   and an exec-only grid (finite two-sided brackets); and the
   plim-cert/v1 rows must keep the -1-encodes-unbounded convention. *)

module C = Plim_certify
module Race = Plim_certify.Race
module H = Plim_serve.Horizon
module Workload = Plim_serve.Workload
module Geometry = Plim_geometry
module Program = Plim_isa.Program
module I = Plim_isa.Instruction
module Pipeline = Plim_core.Pipeline
module Suite = Plim_benchgen.Suite
module Json = Plim_telemetry.Json

let check_bool = Alcotest.(check bool)
let qc = QCheck_alcotest.to_alcotest

(* the first four small-suite circuits, compiled once *)
let programs =
  lazy
    (List.map
       (fun spec ->
         (Pipeline.compile Pipeline.endurance_full (spec.Suite.build ()))
           .Pipeline.program)
       Helpers.specs4)

let grids_for p =
  let n = Program.num_cells p in
  let rec square c = if c * c >= n then c else square (c + 1) in
  List.sort_uniq compare [ 1; 4; square 1 ]
  |> List.map (fun cols -> Geometry.grid_for ~cols ~num_cells:n)

(* --- race detector: acceptance ------------------------------------------ *)

let test_detector_accepts_scheduler () =
  List.iter
    (fun p ->
      List.iter
        (fun grid ->
          match Geometry.schedule grid p with
          | Error e -> Alcotest.failf "schedule: %s" e
          | Ok sched -> (
            match Race.check_schedule p sched with
            | Ok () -> ()
            | Error e ->
              Alcotest.failf "detector rejected scheduler output on %s: %s"
                (Geometry.to_string grid) e))
        (grids_for p))
    (Lazy.force programs)

(* COPY (Helpers.copy_program): 0 defines cell 1, 1 reads and redefines
   it — exactly one RAW and one WAW edge, no WAR (the overwriting use is
   the read-modify-write of instruction 1 itself) *)
let test_edges_of_copy () =
  let p = Helpers.copy_program () in
  let edges = Race.edges p in
  check_bool "two edges" true (List.length edges = 2);
  List.iter
    (fun e ->
      check_bool "0 before 1 on cell 1" true
        (e.Race.e_before = 0 && e.Race.e_after = 1 && e.Race.e_cell = 1))
    edges;
  let hazards = List.map (fun e -> Race.hazard_name e.Race.e_hazard) edges in
  check_bool "RAW present" true (List.mem "RAW" hazards);
  check_bool "WAW present" true (List.mem "WAW" hazards)

let test_check_groups_verdicts () =
  let p = Helpers.copy_program () in
  let ok groups = Race.check_groups p groups = Ok () in
  check_bool "serial singletons" true (ok [| [| 0 |]; [| 1 |] |]);
  check_bool "empty groups permitted" true (ok [| [| 0 |]; [||]; [| 1 |] |]);
  check_bool "merged group is a race" false (ok [| [| 0; 1 |] |]);
  check_bool "reversed order is a race" false (ok [| [| 1 |]; [| 0 |] |]);
  check_bool "duplicate index rejected" false (ok [| [| 0 |]; [| 0; 1 |] |]);
  check_bool "missing index rejected" false (ok [| [| 0 |] |]);
  check_bool "out-of-range index rejected" false
    (ok [| [| 0 |]; [| 1 |]; [| 5 |] |])

let test_use_before_def_not_certifiable () =
  (* reads cell 0, which is neither a PI nor ever written *)
  let p =
    Program.make
      ~instrs:[| I.rm3 ~a:(I.Cell 0) ~b:(I.Const false) ~z:1 |]
      ~num_cells:2 ~pi_cells:[||]
      ~po_cells:[| ("y", 1) |]
  in
  match Race.check_groups p [| [| 0 |] |] with
  | Ok () -> Alcotest.fail "use-before-def program accepted"
  | Error e -> check_bool "mentions certifiability" true
                 (Helpers.contains ~needle:"not certifiable" e)

(* --- race detector: adversarial mutants --------------------------------- *)

(* Perturb a valid schedule along one of its own hazard edges — swap the
   endpoints across their groups, or merge the two groups — and demand
   that BOTH independent checkers reject the mutant.  Geometry.validate
   scans the flat stream (z always read); the race detector walks the
   def-use chains; an edge violated in group order trips both. *)
let mutation_rejected =
  QCheck.Test.make ~count:120
    ~name:"hazard-injected mutants rejected by validate and race detector"
    QCheck.(triple (int_range 0 3) bool (int_range 0 10_000))
    (fun (pidx, merge, pick) ->
      let p = List.nth (Lazy.force programs) pidx in
      let grid = Geometry.grid_for ~cols:4 ~num_cells:(Program.num_cells p) in
      match Geometry.schedule grid p with
      | Error _ -> false (* suite programs always fit their own grid *)
      | Ok sched ->
        let groups = sched.Geometry.s_groups in
        let group_of = Array.make (Program.length p) (-1) in
        Array.iteri
          (fun gi g -> Array.iter (fun i -> group_of.(i) <- gi) g)
          groups;
        (match Race.edges p with
        | [] -> true (* nothing to violate *)
        | edges ->
          let e = List.nth edges (pick mod List.length edges) in
          let b = e.Race.e_before and a = e.Race.e_after in
          let gb = group_of.(b) and ga = group_of.(a) in
          if gb >= ga then false (* scheduler must order every edge *)
          else begin
            let mutant_groups =
              if merge then begin
                let merged = Array.append groups.(gb) groups.(ga) in
                Array.sort compare merged;
                Array.of_list
                  (List.filteri (fun i _ -> i <> ga) (Array.to_list groups)
                  |> List.mapi (fun i g -> if i = gb then merged else g))
              end
              else begin
                let gs = Array.map Array.copy groups in
                let pos g x =
                  let p = ref (-1) in
                  Array.iteri (fun i v -> if v = x then p := i) g;
                  !p
                in
                gs.(gb).(pos gs.(gb) b) <- a;
                gs.(ga).(pos gs.(ga) a) <- b;
                gs
              end
            in
            let mutant = Geometry.of_groups grid p mutant_groups in
            Result.is_error (Geometry.validate p mutant)
            && Result.is_error (Race.check_schedule p mutant)
          end))

(* --- wear-bound certificates -------------------------------------------- *)

let cert_config ~compile_ratio =
  let base = H.default_config in
  { base with
    H.mix = { Helpers.mix4 with Workload.compile_ratio };
    endurance = 5e4;
    sample_every = 500.0;
    max_epochs = 10_000.0 }

let rates = [ 0.0; 0.02 ]

let gate_grid cfg =
  let cells = H.grid cfg ~strategies:H.all_strategies ~fault_rates:rates in
  let certs = C.grid cfg ~strategies:H.all_strategies ~fault_rates:rates in
  List.iter
    (fun (_, _, r) ->
      match C.find certs (H.label r) with
      | None -> Alcotest.failf "%s: no certificate" (H.label r)
      | Some c -> (
        match C.check_result c r with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" (H.label r) e))
    cells;
  (cells, certs)

(* default mix: compile_ratio > 0, so zero-wear epochs are possible and
   the upper ends must be honestly unbounded *)
let test_bracket_compile_heavy () =
  let _, certs = gate_grid (cert_config ~compile_ratio:0.05) in
  List.iter
    (fun (_, _, c) ->
      check_bool "writes lower collapses to 0" true
        (c.C.c_writes.C.lower = 0.0);
      check_bool "ttff upper unbounded" true (c.C.c_ttff.C.upper = infinity);
      check_bool "ttff lower finite positive" true
        (Float.is_finite c.C.c_ttff.C.lower && c.C.c_ttff.C.lower > 0.0))
    certs

(* exec-only mix: every sampled epoch wears, so both ends are finite and
   the simulated lifetimes sit strictly inside a real bracket *)
let test_bracket_exec_only () =
  let cells, certs = gate_grid (cert_config ~compile_ratio:0.0) in
  List.iter
    (fun (_, _, c) ->
      check_bool "writes lower positive" true (c.C.c_writes.C.lower > 0.0);
      check_bool "ttff bracket finite" true
        (Float.is_finite c.C.c_ttff.C.lower
         && Float.is_finite c.C.c_ttff.C.upper);
      check_bool "bracket ordered" true
        (c.C.c_ttff.C.lower <= c.C.c_ttff.C.upper
         && c.C.c_half_life.C.lower <= c.C.c_half_life.C.upper))
    certs;
  (* the campaign must actually have observed the events the finite
     brackets promise *)
  List.iter
    (fun (_, _, r) ->
      check_bool (H.label r ^ ": ttff observed") true (r.H.r_ttff <> None))
    cells

let test_row_json_shape () =
  match
    C.grid (cert_config ~compile_ratio:0.05) ~strategies:[ H.Start_gap ]
      ~fault_rates:[ 0.0 ]
  with
  | [ (_, _, c) ] ->
    let row = C.row_json c in
    List.iter
      (fun needle -> check_bool needle true (Helpers.contains ~needle row))
      [ "\"schema\":\"plim-cert/v1\""; "\"strategy\":\"start_gap\"";
        "\"writes_lower\":0"; "\"ttff_upper\":-1"; "\"half_life_upper\":-1";
        "\"programs\":[" ];
    check_bool "label override" true
      (Helpers.contains ~needle:"\"label\":\"start_gap/r0/exec\""
         (C.row_json ~label:(C.label c ^ "/exec") c))
  | _ -> Alcotest.fail "expected one grid cell"

let test_check_row_json_round_trip () =
  let cfg = cert_config ~compile_ratio:0.0 in
  let certs = C.grid cfg ~strategies:[ H.No_leveling ] ~fault_rates:[ 0.0 ] in
  match H.grid cfg ~strategies:[ H.No_leveling ] ~fault_rates:[ 0.0 ] with
  | [ (_, _, r) ] -> (
    let row = Json.parse_exn (H.row_json r) in
    (match C.check_row_json certs row with
    | Ok lbl -> check_bool "label" true (lbl = H.label r)
    | Error e -> Alcotest.failf "row escaped: %s" e);
    (* suffixed variant rows resolve to their base certificate *)
    let suffixed =
      Json.parse_exn (H.row_json ~label:(H.label r ^ "/exec") r)
    in
    check_bool "prefix lookup" true
      (Result.is_ok (C.check_row_json certs suffixed));
    (* a campaign at another endurance must not silently pass *)
    let other =
      C.grid { cfg with H.endurance = 2e4 } ~strategies:[ H.No_leveling ]
        ~fault_rates:[ 0.0 ]
    in
    match C.check_row_json other row with
    | Ok _ -> Alcotest.fail "endurance mismatch accepted"
    | Error e ->
      check_bool "names the mismatch" true
        (Helpers.contains ~needle:"endurance" e))
  | _ -> Alcotest.fail "expected one grid cell"

let () =
  Alcotest.run "certify"
    [ ( "race-detector",
        [ Alcotest.test_case "accepts all scheduler output" `Quick
            test_detector_accepts_scheduler;
          Alcotest.test_case "edges of the COPY program" `Quick
            test_edges_of_copy;
          Alcotest.test_case "check_groups verdicts" `Quick
            test_check_groups_verdicts;
          Alcotest.test_case "use-before-def not certifiable" `Quick
            test_use_before_def_not_certifiable;
          qc mutation_rejected ] );
      ( "wear-bounds",
        [ Alcotest.test_case "simulator inside bracket (compile-heavy)" `Quick
            test_bracket_compile_heavy;
          Alcotest.test_case "simulator inside bracket (exec-only)" `Quick
            test_bracket_exec_only;
          Alcotest.test_case "plim-cert/v1 row shape" `Quick
            test_row_json_shape;
          Alcotest.test_case "check_row_json round trip" `Quick
            test_check_row_json_round_trip ] ) ]
