module Crossbar = Plim_rram.Crossbar
module Start_gap = Plim_rram.Start_gap
module Wolfram = Plim_rram.Wolfram
module Remap = Plim_fault.Remap
module Stats = Plim_stats.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_create_read () =
  let x = Crossbar.create 8 in
  check_int "size" 8 (Crossbar.size x);
  for i = 0 to 7 do
    check_bool "fresh HRS" false (Crossbar.read x i)
  done

let test_write_counts () =
  let x = Crossbar.create 4 in
  Crossbar.write x 0 true;
  Crossbar.write x 0 true;
  Crossbar.write x 0 false;
  check_int "three write ops" 3 (Crossbar.writes x 0);
  check_int "two actual transitions" 2 (Crossbar.transitions x 0);
  check_int "untouched" 0 (Crossbar.writes x 1);
  Alcotest.(check (array int)) "snapshot" [| 3; 0; 0; 0 |] (Crossbar.write_counts x)

(* exhaustive check of the intrinsic RM3 against the ISA semantics *)
let test_rm3_semantics () =
  for m = 0 to 7 do
    let p = m land 1 = 1 and q = m land 2 = 2 and z = m land 4 = 4 in
    let x = Crossbar.create 1 in
    Crossbar.load x 0 z;
    Crossbar.rm3 x ~p ~q 0;
    let expected = Plim_isa.Instruction.semantics ~a:p ~b:q ~z in
    check_bool (Printf.sprintf "rm3 p=%b q=%b z=%b" p q z) expected (Crossbar.read x 0)
  done

let test_load_uncounted () =
  let x = Crossbar.create 2 in
  Crossbar.load x 0 true;
  check_int "load does not count" 0 (Crossbar.writes x 0);
  check_bool "but changes state" true (Crossbar.read x 0)

let test_endurance_failure () =
  let x = Crossbar.create ~endurance:3 2 in
  Crossbar.write x 0 true;
  Crossbar.write x 0 false;
  check_bool "not yet failed" false (Crossbar.failed x 0);
  Crossbar.write x 0 true;
  check_bool "failed at budget" true (Crossbar.failed x 0);
  check_int "one failed cell" 1 (Crossbar.num_failed x);
  Alcotest.check_raises "write to failed cell" (Crossbar.Cell_failed 0) (fun () ->
      Crossbar.write x 0 true)

let test_reset_counters () =
  let x = Crossbar.create 2 in
  Crossbar.write x 1 true;
  Crossbar.reset_counters x;
  check_int "writes reset" 0 (Crossbar.writes x 1);
  check_bool "state kept" true (Crossbar.read x 1)

let test_bounds () =
  let x = Crossbar.create 2 in
  Alcotest.check_raises "oob" (Invalid_argument "Crossbar: cell 2 out of range (size 2)")
    (fun () -> ignore (Crossbar.read x 2))

(* property: a random op sequence keeps writes = loads-excluded op count *)
let write_accounting =
  QCheck.Test.make ~count:100 ~name:"write counter equals write-op count"
    QCheck.(list (pair (int_range 0 3) bool))
    (fun ops ->
      let x = Crossbar.create 4 in
      let expected = Array.make 4 0 in
      List.iter
        (fun (cell, v) ->
          if v then begin
            Crossbar.write x cell v;
            expected.(cell) <- expected.(cell) + 1
          end
          else Crossbar.load x cell v)
        ops;
      Crossbar.write_counts x = expected)

(* --- start-gap wear levelling ------------------------------------------ *)

let test_start_gap_mapping () =
  let t = Start_gap.create ~psi:10 4 in
  check_int "physical lines" 5 (Start_gap.num_physical t);
  (* initially the identity (gap at the end) *)
  for la = 0 to 3 do
    check_int "identity map" la (Start_gap.physical t la)
  done;
  (* the mapping is always a bijection *)
  for _ = 1 to 97 do
    Start_gap.write t 1
  done;
  let seen = Array.make 5 false in
  for la = 0 to 3 do
    let pa = Start_gap.physical t la in
    check_bool "in range" true (pa >= 0 && pa < 5);
    check_bool "no collision" false seen.(pa);
    seen.(pa) <- true
  done

let test_start_gap_moves () =
  let t = Start_gap.create ~psi:5 4 in
  for _ = 1 to 25 do
    Start_gap.write t 0
  done;
  check_int "one move per psi writes" 5 (Start_gap.total_moves t)

let test_start_gap_wraparound () =
  (* psi = 1: every write moves the gap; after n + 1 moves the gap has
     walked the whole array, wrapped back to the top, and advanced the
     start register — the address space is rotated by one line *)
  let t = Start_gap.create ~psi:1 4 in
  for _ = 1 to 4 do
    Start_gap.write t 0
  done;
  check_int "gap reached the bottom" 0 (Start_gap.gap_line t);
  Start_gap.write t 0;
  check_int "gap wrapped to the top" 4 (Start_gap.gap_line t);
  check_int "five moves" 5 (Start_gap.total_moves t);
  check_int "logical 0 rotated down" 1 (Start_gap.physical t 0);
  check_int "logical 3 wrapped around" 0 (Start_gap.physical t 3);
  let seen = Array.make 5 false in
  for la = 0 to 3 do
    let pa = Start_gap.physical t la in
    check_bool "still a bijection" false seen.(pa);
    seen.(pa) <- true
  done

let test_start_gap_rotation_levels_hot_line () =
  (* one scorching logical line; rotation spreads it over all physical
     lines given enough executions *)
  let per_exec = [| 100; 1; 1; 1 |] in
  let counts = Start_gap.replay ~psi:10 ~executions:50 per_exec in
  let s = Stats.summarize counts in
  let unlevelled = Stats.summarize (Array.map (( * ) 50) per_exec) in
  check_bool
    (Printf.sprintf "rotated stdev %.1f < static stdev %.1f" s.Stats.stdev
       unlevelled.Stats.stdev)
    true
    (s.Stats.stdev < unlevelled.Stats.stdev)

let test_start_gap_write_conservation () =
  let per_exec = [| 3; 0; 7; 2 |] in
  let executions = 9 in
  let counts = Start_gap.replay ~psi:4 ~executions per_exec in
  let logical_total = executions * Array.fold_left ( + ) 0 per_exec in
  let physical_total = Array.fold_left ( + ) 0 counts in
  (* extra writes are exactly the gap-copy moves *)
  check_bool "rotation overhead bounded by 1/psi + wraps" true
    (physical_total >= logical_total
    && physical_total <= logical_total + (logical_total / 4) + 1)

let test_start_gap_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Start_gap.create: need at least one line")
    (fun () -> ignore (Start_gap.create 0));
  Alcotest.check_raises "bad psi" (Invalid_argument "Start_gap.create: psi must be positive")
    (fun () -> ignore (Start_gap.create ~psi:0 4));
  let t = Start_gap.create 4 in
  Alcotest.check_raises "address range"
    (Invalid_argument "Start_gap.physical: address out of range") (fun () ->
      ignore (Start_gap.physical t 4))

(* property: whatever the write sequence, the logical->physical map stays a
   bijection onto the physical lines minus the gap *)
let start_gap_bijective =
  QCheck.Test.make ~count:200
    ~name:"start-gap map is a bijection under arbitrary writes"
    QCheck.(triple (int_range 1 9) (int_range 1 8) (list (int_range 0 10_000)))
    (fun (n, psi, writes) ->
      let t = Start_gap.create ~psi n in
      List.iter (fun w -> Start_gap.write t (w mod n)) writes;
      let seen = Array.make (Start_gap.num_physical t) false in
      let ok = ref true in
      for la = 0 to n - 1 do
        let pa = Start_gap.physical t la in
        if pa < 0 || pa > n || seen.(pa) then ok := false else seen.(pa) <- true
      done;
      (* the one physical line left unmapped is exactly the gap *)
      !ok && not seen.(Start_gap.gap_line t))

(* --- WoLFRaM programmable remapping ------------------------------------- *)

let test_wolfram_permutation () =
  let wf = Wolfram.create ~seed:3 8 in
  check_int "lines" 8 (Wolfram.num_lines wf);
  let seen = Array.make 8 false in
  for la = 0 to 7 do
    let pa = Wolfram.physical wf la in
    check_bool "in range" true (pa >= 0 && pa < 8);
    check_bool "no collision" false seen.(pa);
    seen.(pa) <- true
  done;
  let wf' = Wolfram.create ~seed:3 8 in
  for la = 0 to 7 do
    check_int "same seed, same map" (Wolfram.physical wf la) (Wolfram.physical wf' la)
  done;
  let other = Wolfram.create ~seed:4 8 in
  check_bool "different seed, different map" true
    (List.exists (fun la -> Wolfram.physical other la <> Wolfram.physical wf la)
       [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_wolfram_rekey_cadence () =
  let wf = Wolfram.create ~period:10 ~seed:5 4 in
  for _ = 1 to 9 do
    Wolfram.write wf 0
  done;
  check_int "no re-key before the period" 0 (Wolfram.rekeys wf);
  Wolfram.write wf 0;
  check_int "re-key at the period" 1 (Wolfram.rekeys wf);
  for _ = 1 to 20 do
    Wolfram.write wf 1
  done;
  check_int "one re-key per period" 3 (Wolfram.rekeys wf);
  check_bool "re-keys migrated lines" true (Wolfram.migration_writes wf > 0)

let test_wolfram_write_accounting () =
  let wf = Wolfram.create ~period:7 ~seed:9 5 in
  let migrations = ref 0 in
  for i = 1 to 40 do
    Wolfram.write ~on_migrate:(fun _ -> incr migrations) wf (i mod 5)
  done;
  check_int "callback sees every migration" (Wolfram.migration_writes wf) !migrations;
  let counts = Wolfram.physical_write_counts wf in
  check_int "counts = logical writes + migration copies"
    (40 + Wolfram.migration_writes wf)
    (Array.fold_left ( + ) 0 counts)

let test_wolfram_replay_levels_hot_line () =
  let per_exec = [| 100; 1; 1; 1 |] in
  let counts = Wolfram.replay ~period:50 ~seed:2 ~executions:50 per_exec in
  let s = Stats.summarize counts in
  let unlevelled = Stats.summarize (Array.map (( * ) 50) per_exec) in
  check_bool
    (Printf.sprintf "re-keyed stdev %.1f < static stdev %.1f" s.Stats.stdev
       unlevelled.Stats.stdev)
    true
    (s.Stats.stdev < unlevelled.Stats.stdev)

(* property: the composed logical -> Wolfram -> Start-Gap address map is
   injective into the physical range whatever the interleaving of writes
   (and therefore of gap moves and re-keys), for any seed; the one
   physical line left unmapped is exactly the gap *)
let wolfram_start_gap_bijective =
  QCheck.Test.make ~count:200
    ~name:"wolfram-under-start-gap map stays a bijection"
    QCheck.(quad (int_range 1 9) (int_range 1 8) small_int
              (list (int_range 0 10_000)))
    (fun (n, psi, seed, writes) ->
      let wf = Wolfram.create ~period:7 ~seed n in
      let sg = Start_gap.create ~psi n in
      List.iter
        (fun w ->
          let la = w mod n in
          (* the write lands through the current composed map, then may
             re-key and rotate *)
          Start_gap.write sg (Wolfram.physical wf la);
          Wolfram.write wf la)
        writes;
      let seen = Array.make (Start_gap.num_physical sg) false in
      let ok = ref true in
      for la = 0 to n - 1 do
        let pa = Start_gap.physical sg (Wolfram.physical wf la) in
        if pa < 0 || pa > n || seen.(pa) then ok := false else seen.(pa) <- true
      done;
      !ok && not seen.(Start_gap.gap_line sg))

(* property: adding the spare-line Remap on top keeps the full chain
   injective and never routes a logical line into a retired physical
   line — the composition the horizon model runs *)
let wolfram_start_gap_remap_injective =
  QCheck.Test.make ~count:100
    ~name:"wolfram∘start-gap∘remap avoids retired lines, stays injective"
    QCheck.(quad (int_range 2 9) small_int (list (int_range 0 10_000))
              (int_range 0 3))
    (fun (n, seed, writes, retire_k) ->
      let wf = Wolfram.create ~period:11 ~seed n in
      let sg = Start_gap.create ~psi:3 n in
      let rm = Remap.create ~spares:4 ~lines:(Start_gap.num_physical sg) () in
      List.iter
        (fun w ->
          let la = w mod n in
          Start_gap.write sg (Wolfram.physical wf la);
          Wolfram.write wf la)
        writes;
      let retired = List.init retire_k (fun i -> i) in
      List.iter (fun l -> ignore (Remap.retire rm l)) retired;
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      for la = 0 to n - 1 do
        let pa = Remap.physical rm (Start_gap.physical sg (Wolfram.physical wf la)) in
        if Hashtbl.mem seen pa || List.mem pa retired then ok := false;
        Hashtbl.replace seen pa ()
      done;
      !ok)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "rram"
    [ ( "crossbar",
        [ Alcotest.test_case "create/read" `Quick test_create_read;
          Alcotest.test_case "write counts" `Quick test_write_counts;
          Alcotest.test_case "rm3 semantics (exhaustive)" `Quick test_rm3_semantics;
          Alcotest.test_case "load uncounted" `Quick test_load_uncounted;
          Alcotest.test_case "endurance failure" `Quick test_endurance_failure;
          Alcotest.test_case "reset counters" `Quick test_reset_counters;
          Alcotest.test_case "bounds" `Quick test_bounds;
          qc write_accounting ] );
      ( "start-gap",
        [ Alcotest.test_case "mapping is a bijection" `Quick test_start_gap_mapping;
          Alcotest.test_case "gap movement cadence" `Quick test_start_gap_moves;
          Alcotest.test_case "gap wraparound rotates the space" `Quick
            test_start_gap_wraparound;
          Alcotest.test_case "rotation levels a hot line" `Quick
            test_start_gap_rotation_levels_hot_line;
          Alcotest.test_case "write conservation" `Quick test_start_gap_write_conservation;
          Alcotest.test_case "validation" `Quick test_start_gap_validation;
          qc start_gap_bijective ] );
      ( "wolfram",
        [ Alcotest.test_case "seeded permutation" `Quick test_wolfram_permutation;
          Alcotest.test_case "re-key cadence" `Quick test_wolfram_rekey_cadence;
          Alcotest.test_case "write accounting" `Quick test_wolfram_write_accounting;
          Alcotest.test_case "re-keying levels a hot line" `Quick
            test_wolfram_replay_levels_hot_line;
          qc wolfram_start_gap_bijective;
          qc wolfram_start_gap_remap_injective ] ) ]
