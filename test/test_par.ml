(* Plim_par: determinism contract of the domain pool.

   Everything here must hold at every jobs level, so most tests run the
   same assertion against a jobs=1 pool (the pure sequential path), a
   jobs=2 pool and a jobs=4 pool. *)

module Par = Plim_par
module Splitmix = Plim_util.Splitmix

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let at_each_level f =
  List.iter (fun jobs -> Par.with_pool ~jobs (fun p -> f p)) [ 1; 2; 4 ]

(* --- ordering --------------------------------------------------------- *)

let test_map_matches_list_map () =
  at_each_level (fun p ->
      let xs = List.init 100 Fun.id in
      let f x = (x * x) + 1 in
      Alcotest.(check (list int))
        (Printf.sprintf "map = List.map at jobs=%d" (Par.jobs p))
        (List.map f xs) (Par.map p ~f xs))

let test_map_submission_order_under_skew () =
  (* early tasks are the slowest, so with >1 domain later tasks complete
     first; the merge must still be in submission order *)
  at_each_level (fun p ->
      let xs = List.init 32 Fun.id in
      let f x =
        if x < 4 then Unix.sleepf 0.005;
        x
      in
      Alcotest.(check (list int)) "submission order survives skew" xs
        (Par.map p ~f xs))

let test_mapi_passes_index () =
  at_each_level (fun p ->
      let xs = [ "a"; "b"; "c"; "d" ] in
      Alcotest.(check (list string))
        "mapi index" [ "0a"; "1b"; "2c"; "3d" ]
        (Par.mapi p ~f:(fun i s -> string_of_int i ^ s) xs))

let test_map_empty_and_singleton () =
  at_each_level (fun p ->
      Alcotest.(check (list int)) "empty" [] (Par.map p ~f:(fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Par.map p ~f:(( * ) 3) [ 3 ]))

(* --- exceptions ------------------------------------------------------- *)

exception Boom of int

let test_lowest_index_exception_wins () =
  (* several tasks fail; the re-raised exception must be the lowest
     submission index — what a sequential run would have hit first — no
     matter which failing task finishes first *)
  at_each_level (fun p ->
      let xs = List.init 24 Fun.id in
      let f x =
        if x = 20 then raise (Boom 20);
        if x = 7 then (
          Unix.sleepf 0.002;
          raise (Boom 7));
        x
      in
      match Par.map p ~f xs with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        check_int (Printf.sprintf "lowest index at jobs=%d" (Par.jobs p)) 7 i)

let test_all_tasks_ran_despite_exception () =
  (* jobs = 1 is the sequential program, so it short-circuits exactly like
     List.map; a wider pool has already enqueued the whole batch, so every
     task still runs and the join is not short-circuited *)
  at_each_level (fun p ->
      let ran = Atomic.make 0 in
      let f x =
        Atomic.incr ran;
        if x = 0 then failwith "first";
        x
      in
      (try ignore (Par.map p ~f (List.init 16 Fun.id)) with Failure _ -> ());
      let expected = if Par.jobs p = 1 then 1 else 16 in
      check_int
        (Printf.sprintf "tasks run at jobs=%d" (Par.jobs p))
        expected (Atomic.get ran))

(* --- seeding ---------------------------------------------------------- *)

let test_map_seeded_independent_of_jobs () =
  (* each task draws from its own derived stream; the per-task results
     must not depend on pool width or scheduling *)
  let campaign p =
    Par.map_seeded p ~seed:0xC0FFEE
      ~f:(fun ~seed _ ->
        let rng = Splitmix.create seed in
        List.init 5 (fun _ -> Splitmix.int rng 1000))
      (List.init 20 Fun.id)
  in
  let sequential = Par.with_pool ~jobs:1 campaign in
  List.iter
    (fun jobs ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "seeded draws identical at jobs=%d" jobs)
        sequential
        (Par.with_pool ~jobs campaign))
    [ 2; 4 ]

let test_map_seeded_streams_distinct () =
  Par.with_pool ~jobs:2 (fun p ->
      let draws =
        Par.map_seeded p ~seed:1
          ~f:(fun ~seed _ -> Splitmix.int (Splitmix.create seed) max_int)
          (List.init 16 Fun.id)
      in
      let uniq = List.sort_uniq compare draws in
      check_int "16 tasks, 16 distinct first draws" 16 (List.length uniq))

(* --- nesting and reduction -------------------------------------------- *)

let test_nested_map () =
  (* a task that submits its own batch on the same pool: the helping join
     must keep making progress (this deadlocks on a naive pool whose
     submitter blocks) *)
  at_each_level (fun p ->
      let outer = List.init 6 Fun.id in
      let result =
        Par.map p
          ~f:(fun i -> Par.map p ~f:(fun j -> (10 * i) + j) (List.init 4 Fun.id))
          outer
      in
      let expected =
        List.map (fun i -> List.init 4 (fun j -> (10 * i) + j)) outer
      in
      Alcotest.(check (list (list int)))
        (Printf.sprintf "nested map at jobs=%d" (Par.jobs p))
        expected result)

let test_map_reduce_order () =
  (* combine is deliberately non-commutative: submission-order folding is
     observable *)
  at_each_level (fun p ->
      let s =
        Par.map_reduce p ~f:string_of_int ~init:""
          ~combine:(fun acc x -> acc ^ "," ^ x)
          (List.init 10 Fun.id)
      in
      Alcotest.(check string)
        (Printf.sprintf "fold order at jobs=%d" (Par.jobs p))
        ",0,1,2,3,4,5,6,7,8,9" s)

(* --- lifecycle -------------------------------------------------------- *)

let test_shutdown_idempotent_and_fatal () =
  let p = Par.create ~jobs:2 () in
  check_int "jobs" 2 (Par.jobs p);
  Par.shutdown p;
  Par.shutdown p;
  check_bool "map after shutdown raises" true
    (match Par.map p ~f:Fun.id [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_default_jobs_positive () =
  check_bool "default >= 1" true (Par.default_jobs () >= 1)

(* --- end-to-end determinism of the wired fan-outs ---------------------- *)

let test_fuzz_report_independent_of_jobs () =
  (* synthetic check so the campaign is fast and has known failures: a
     description "fails" iff it has >= 2 outputs.  The report — cases,
     counterexample order, shrunk witnesses, shrink steps — must be
     byte-identical at every pool width. *)
  let module Fuzz = Plim_check.Fuzz in
  let check g =
    if Plim_check.Fuzz.Mig.num_outputs g >= 2 then
      [ { Plim_check.Check.config = "synthetic";
          invariant = "multi-output";
          message = "synthetic failure" } ]
    else []
  in
  let options =
    { Fuzz.default_options with runs = 30; seed = 7; corpus_dir = None }
  in
  let strip (r : Fuzz.report) =
    ( r.cases,
      List.map
        (fun (c : Fuzz.counterexample) ->
          (c.run_index, c.case_seed, Plim_check.Gen.print c.desc, c.shrink_steps))
        r.counterexamples )
  in
  let seq = strip (Fuzz.run ~check options) in
  check_bool "synthetic campaign found counterexamples" true (snd seq <> []);
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          let par = strip (Fuzz.run ~pool ~check options) in
          check_bool
            (Printf.sprintf "fuzz report identical at jobs=%d" jobs)
            true (par = seq)))
    [ 2; 4 ]

let test_sweep_degraded_independent_of_jobs () =
  let module Campaign = Plim_machine.Campaign in
  let module Pipeline = Plim_core.Pipeline in
  let module Suite = Plim_benchgen.Suite in
  let g = Suite.build_cached (Suite.find "dec4") in
  let p = (Pipeline.compile Pipeline.endurance_full g).Pipeline.program in
  let sweep pool =
    Campaign.sweep_degraded ?pool ~seed:0xBE57 ~max_executions:10 ~verify:true
      ~oracle:(Plim_mig.Mig.eval g)
      ~fault_spec_of:(fun rate ->
        Plim_fault.Fault_model.make ~sa0:rate ~seed:0xFA017 ())
      ~rates:[ 0.0; 0.02 ] ~spare_budgets:[ 0; 8 ] p
  in
  let strip =
    List.map (fun (c : Campaign.sweep_cell) ->
        ( c.rate,
          c.spares,
          c.outcome.Campaign.executions,
          c.outcome.Campaign.correct,
          c.outcome.Campaign.injected,
          c.outcome.Campaign.remaps,
          c.outcome.Campaign.final_capacity ))
  in
  let seq = strip (sweep None) in
  check_int "grid size" 4 (List.length seq);
  Par.with_pool ~jobs:4 (fun pool ->
      check_bool "sweep grid identical at jobs=4" true
        (strip (sweep (Some pool)) = seq))

let () =
  Alcotest.run "par"
    [ ( "ordering",
        [ Alcotest.test_case "map = List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "submission order under skew" `Quick
            test_map_submission_order_under_skew;
          Alcotest.test_case "mapi index" `Quick test_mapi_passes_index;
          Alcotest.test_case "empty/singleton" `Quick test_map_empty_and_singleton ] );
      ( "exceptions",
        [ Alcotest.test_case "lowest index wins" `Quick
            test_lowest_index_exception_wins;
          Alcotest.test_case "join not short-circuited" `Quick
            test_all_tasks_ran_despite_exception ] );
      ( "seeding",
        [ Alcotest.test_case "independent of jobs" `Quick
            test_map_seeded_independent_of_jobs;
          Alcotest.test_case "streams distinct" `Quick
            test_map_seeded_streams_distinct ] );
      ( "composition",
        [ Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_order ] );
      ( "lifecycle",
        [ Alcotest.test_case "shutdown" `Quick test_shutdown_idempotent_and_fatal;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive ] );
      ( "end-to-end",
        [ Alcotest.test_case "fuzz report vs -j" `Quick
            test_fuzz_report_independent_of_jobs;
          Alcotest.test_case "campaign sweep vs -j" `Quick
            test_sweep_degraded_independent_of_jobs ] ) ]
