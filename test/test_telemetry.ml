(* Telemetry layer: histogram laws (merge algebra, quantile brackets,
   -j determinism), bounded time series, wear snapshots, the JSON reader
   and the trajectory-engine regression gate. *)

module Hgram = Plim_telemetry.Histogram
module Series = Plim_telemetry.Series
module Wear = Plim_telemetry.Wear
module Json = Plim_telemetry.Json
module Report = Plim_telemetry.Report
module Stats = Plim_stats.Stats
module Splitmix = Plim_util.Splitmix
module Metrics = Plim_obs.Metrics
module Campaign = Plim_machine.Campaign
module Pipeline = Plim_core.Pipeline
module Suite = Plim_benchgen.Suite
module Fault_model = Plim_fault.Fault_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let random_array rng len bound = Array.init len (fun _ -> Splitmix.int rng bound)

(* --- histogram basics ------------------------------------------------- *)

let test_hist_basic () =
  let h = Hgram.create () in
  check_int "empty count" 0 (Hgram.count h);
  check_int "empty quantile" 0 (Hgram.quantile h 0.5);
  check_int "empty min" 0 (Hgram.min_value h);
  check_int "empty max" 0 (Hgram.max_value h);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Hgram.mean h);
  List.iter (Hgram.observe h) [ 3; 1; 4; 1; 5 ];
  check_int "count" 5 (Hgram.count h);
  check_int "sum" 14 (Hgram.sum h);
  check_int "min" 1 (Hgram.min_value h);
  check_int "max" 5 (Hgram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 2.8 (Hgram.mean h);
  (* small values live in exact buckets: quantiles are exact *)
  check_int "p50 exact below 32" 3 (Hgram.p50 h);
  check_int "q1.0 = max" 5 (Hgram.quantile h 1.0);
  Hgram.observe ~n:3 h 7;
  check_int "weighted count" 8 (Hgram.count h);
  check_int "weighted sum" 35 (Hgram.sum h);
  Alcotest.check_raises "negative value" (Invalid_argument "Histogram.observe: negative value")
    (fun () -> Hgram.observe h (-1));
  Hgram.clear h;
  check_int "cleared" 0 (Hgram.count h);
  check_bool "cleared equals fresh" true (Hgram.equal h (Hgram.create ()))

let test_hist_of_array () =
  let rng = Splitmix.create 0x7E1E in
  let xs = random_array rng 500 10_000 in
  let h = Hgram.of_array xs in
  let h' = Hgram.create () in
  Array.iter (fun v -> Hgram.observe h' v) xs;
  check_bool "of_array = fold observe" true (Hgram.equal h h');
  check_int "count" 500 (Hgram.count h);
  check_int "sum" (Array.fold_left ( + ) 0 xs) (Hgram.sum h);
  check_int "min exact" (Array.fold_left min max_int xs) (Hgram.min_value h);
  check_int "max exact" (Array.fold_left max 0 xs) (Hgram.max_value h)

(* --- merge algebra ---------------------------------------------------- *)

let test_hist_merge_laws () =
  let rng = Splitmix.create 0xABCD in
  for trial = 0 to 19 do
    (* wide value ranges so sub-32 exact buckets, log buckets and
       different bucket-array lengths all participate *)
    let bound = 1 lsl (4 + (trial mod 12)) in
    let a = Hgram.of_array (random_array rng (1 + Splitmix.int rng 200) bound) in
    let b = Hgram.of_array (random_array rng (1 + Splitmix.int rng 200) (2 * bound)) in
    let c = Hgram.of_array (random_array rng (1 + Splitmix.int rng 200) 16) in
    check_bool "commutative" true (Hgram.equal (Hgram.merge a b) (Hgram.merge b a));
    check_bool "associative" true
      (Hgram.equal
         (Hgram.merge (Hgram.merge a b) c)
         (Hgram.merge a (Hgram.merge b c)));
    check_bool "empty is identity" true
      (Hgram.equal (Hgram.merge a (Hgram.create ())) a);
    (* merge = histogram of the concatenation *)
    let m = Hgram.merge a b in
    check_int "merged count" (Hgram.count a + Hgram.count b) (Hgram.count m);
    check_int "merged sum" (Hgram.sum a + Hgram.sum b) (Hgram.sum m)
  done

(* --- quantile brackets vs exact sorted-array quantiles ---------------- *)

let test_hist_quantile_bounds () =
  let rng = Splitmix.create 0x9A17 in
  let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
  for trial = 0 to 29 do
    let len = 1 + Splitmix.int rng 400 in
    let bound = 1 + (1 lsl (trial mod 20)) in
    let xs = random_array rng len bound in
    let h = Hgram.of_array xs in
    List.iter
      (fun q ->
        let exact = Stats.quantile q xs in
        let est = Hgram.quantile h q in
        let _, high = Hgram.value_bounds exact in
        check_bool
          (Printf.sprintf "q%.2f: exact %d <= est %d (len %d bound %d)" q exact est
             len bound)
          true (exact <= est);
        check_bool
          (Printf.sprintf "q%.2f: est %d <= bucket-high %d" q est high)
          true (est <= high);
        check_bool "est within recorded range" true
          (est >= Hgram.min_value h && est <= Hgram.max_value h))
      qs;
    check_int "q1.0 is exact max" (Array.fold_left max 0 xs) (Hgram.quantile h 1.0)
  done

(* --- determinism under Plim_par.map_reduce ---------------------------- *)

let test_hist_par_determinism () =
  let chunks =
    List.init 16 (fun i ->
        let rng = Splitmix.create (Splitmix.derive 0xDE7E i) in
        random_array rng 200 (1 lsl (3 + (i mod 10))))
  in
  let fold_with jobs =
    Plim_par.with_pool ~jobs (fun pool ->
        Plim_par.map_reduce pool ~f:Hgram.of_array ~init:(Hgram.create ())
          ~combine:Hgram.merge chunks)
  in
  let seq =
    List.fold_left (fun acc xs -> Hgram.merge acc (Hgram.of_array xs))
      (Hgram.create ()) chunks
  in
  let j1 = fold_with 1 and j4 = fold_with 4 in
  check_bool "-j1 = sequential" true (Hgram.equal seq j1);
  check_bool "-j4 = -j1" true (Hgram.equal j1 j4);
  Alcotest.(check string) "identical JSON" (Hgram.to_json j1) (Hgram.to_json j4)

(* --- series ------------------------------------------------------------ *)

let test_series_ring () =
  let s = Series.create ~capacity:4 () in
  for i = 0 to 9 do
    Series.offer s i
  done;
  Alcotest.(check (list int)) "last capacity samples" [ 6; 7; 8; 9 ] (Series.to_list s);
  check_int "length" 4 (Series.length s);
  check_int "offered" 10 (Series.offered s);
  Alcotest.(check (option int)) "last" (Some 9) (Series.last s);
  Series.clear s;
  check_int "cleared" 0 (Series.length s);
  Alcotest.check_raises "capacity < 2" (Invalid_argument "Series.create: capacity must be >= 2")
    (fun () -> ignore (Series.create ~capacity:1 () : int Series.t))

let test_series_decimate () =
  (* offering the sample index makes the retention contract checkable:
     the store must hold exactly 0, stride, 2*stride, ... *)
  List.iter
    (fun n ->
      let s = Series.create ~policy:Series.Decimate ~capacity:8 () in
      for i = 0 to n - 1 do
        Series.offer s i
      done;
      let kept = Series.to_list s in
      check_bool (Printf.sprintf "bounded (%d offers)" n) true
        (Series.length s <= Series.capacity s);
      let stride = Series.stride s in
      check_bool "stride is a power of two" true (stride land (stride - 1) = 0);
      if n > 0 then begin
        check_int "first sample always retained" 0 (List.hd kept);
        List.iteri (fun i v -> check_int "stride grid" (i * stride) v) kept
      end)
    [ 0; 1; 7; 8; 9; 64; 1000; 4097 ]

(* --- wear snapshots ---------------------------------------------------- *)

let test_wear_skew () =
  let s = Wear.skew_of [| 5; 5; 5; 5 |] in
  Alcotest.(check (float 1e-9)) "level gini" 0.0 s.Wear.gini;
  Alcotest.(check (float 1e-9)) "level max/mean" 1.0 s.Wear.max_mean;
  Alcotest.(check (float 1e-9)) "level stdev" 0.0 s.Wear.stdev;
  check_int "total" 20 s.Wear.total;
  let s = Wear.skew_of [| 0; 0; 0; 4 |] in
  Alcotest.(check (float 1e-9)) "concentrated gini" 0.75 s.Wear.gini;
  Alcotest.(check (float 1e-9)) "concentrated max/mean" 4.0 s.Wear.max_mean;
  check_int "p99 tail" 4 s.Wear.p99;
  let empty = Wear.skew_of [||] in
  check_int "empty cells" 0 empty.Wear.cells;
  Alcotest.(check (float 1e-9)) "empty max/mean" 1.0 empty.Wear.max_mean

let test_wear_heatmap () =
  let counts = Array.init 40 (fun i -> i) in
  let text = Wear.heatmap ~width:8 counts in
  check_bool "has scale legend" true (contains ~affix:"scale:" text);
  check_bool "max in legend" true (contains ~affix:"max=39" text);
  (* 40 cells at width 8 = 5 rows + legend *)
  check_int "row count" 6
    (List.length (String.split_on_char '\n' (String.trim text)));
  let j = Wear.heatmap_json ~width:8 ~label:"t" counts in
  match Json.parse j with
  | Error e -> Alcotest.failf "heatmap_json unparsable: %s" e
  | Ok doc ->
    Alcotest.(check (option string)) "label" (Some "t")
      (Option.bind (Json.member "label" doc) Json.to_string);
    (match Option.bind (Json.member "counts" doc) Json.to_list with
    | Some l -> check_int "counts roundtrip" 40 (List.length l)
    | None -> Alcotest.fail "no counts array");
    (match Option.bind (Json.member "skew" doc) (Json.member "gini") with
    | Some _ -> ()
    | None -> Alcotest.fail "no skew.gini")

(* --- JSON reader -------------------------------------------------------- *)

let test_json_parse () =
  let doc = {|{"a": [1, 2.5, -3e2], "s": "x\ny", "t": true, "n": null}|} in
  (match Json.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
    (match Option.bind (Json.member "a" j) Json.to_list with
    | Some [ x; y; z ] ->
      Alcotest.(check (float 1e-9)) "int" 1.0 (Option.get (Json.to_float x));
      Alcotest.(check (float 1e-9)) "frac" 2.5 (Option.get (Json.to_float y));
      Alcotest.(check (float 1e-9)) "exp" (-300.0) (Option.get (Json.to_float z))
    | _ -> Alcotest.fail "array shape");
    Alcotest.(check (option string)) "escapes" (Some "x\ny")
      (Option.bind (Json.member "s" j) Json.to_string);
    check_bool "missing member" true (Json.member "zz" j = None));
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "12 34"; "\"unterminated"; "nulll" ]

let test_json_depth_limit () =
  (* the recursive-descent reader is depth-bounded: adversarially nested
     input gets a clean Parse_error, never a stack overflow *)
  let deep n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match Json.parse (deep 200) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected 200-deep nesting: %s" e);
  (match Json.parse (deep 300) with
  | Ok _ -> Alcotest.fail "accepted 300-deep nesting"
  | Error e ->
    check_bool "error names the depth bound" true (contains ~affix:"deep" e));
  (try
     ignore (Json.parse_exn (deep 100_000));
     Alcotest.fail "accepted pathologically deep nesting"
   with Json.Parse_error _ -> ());
  (* a complete value followed by anything is an error, not a prefix parse *)
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted trailing garbage %S" bad
      | Error _ -> ())
    [ {|{"a":1} x|}; "[1] [2]"; "1 2"; "null null"; {|"s" "t"|} ]

(* --- trajectory engine / regression gate -------------------------------- *)

let bench_doc ~schema ~max_writes ~extra =
  Printf.sprintf
    {|{"schema":"%s","generated_at":0,"benchmarks":[
       {"name":"b1","configs":[
         {"config":"naive","instructions":100,"rram_cells":20,
          "writes":{"min":1,"max":%d,"total":500,"mean":25,"stdev":9.5}%s}]}],
      "phases":[{"name":"translate","calls":1,"total_s":1.0}]}|}
    schema max_writes extra

let v2_extra = {|,"skew":{"gini":0.31,"max_mean":2.4}|}

let parse_exn s = Json.parse_exn s

let test_report_identical () =
  let doc = bench_doc ~schema:"plim-bench/v2" ~max_writes:40 ~extra:v2_extra in
  match
    Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn doc)
      (parse_exn doc)
  with
  | Error e -> Alcotest.failf "compare failed: %s" e
  | Ok c ->
    check_bool "no regressions on identical docs" false (Report.has_regressions c);
    check_int "no improvements either" 0 (List.length c.Report.improvements);
    check_bool "metrics were compared" true (List.length c.Report.deltas >= 5);
    check_bool "summary line" true
      (contains ~affix:"0 regressions" (Report.render c))

let test_report_regression () =
  let base = bench_doc ~schema:"plim-bench/v2" ~max_writes:40 ~extra:v2_extra in
  let cur = bench_doc ~schema:"plim-bench/v2" ~max_writes:55 ~extra:v2_extra in
  match
    Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn base)
      (parse_exn cur)
  with
  | Error e -> Alcotest.failf "compare failed: %s" e
  | Ok c ->
    check_bool "regression detected" true (Report.has_regressions c);
    (match c.Report.regressions with
    | [ d ] ->
      Alcotest.(check string) "metric" "writes.max" d.Report.metric;
      Alcotest.(check string) "benchmark" "b1" d.Report.benchmark;
      Alcotest.(check (float 1e-6)) "change pct" 37.5 d.Report.change_pct
    | l -> Alcotest.failf "expected exactly 1 regression, got %d" (List.length l));
    (* the other direction is an improvement, not a regression *)
    (match
       Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn cur)
         (parse_exn base)
     with
    | Ok c' ->
      check_bool "improvement direction never gates" false (Report.has_regressions c');
      check_int "one improvement" 1 (List.length c'.Report.improvements)
    | Error e -> Alcotest.failf "compare failed: %s" e)

let test_report_v1_migration () =
  (* a v1 baseline has no skew/quantile columns: only the shared metrics
     are compared, and their absence is not a regression *)
  let v1 = bench_doc ~schema:"plim-bench/v1" ~max_writes:40 ~extra:"" in
  let v2 = bench_doc ~schema:"plim-bench/v2" ~max_writes:40 ~extra:v2_extra in
  match
    Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn v1)
      (parse_exn v2)
  with
  | Error e -> Alcotest.failf "compare failed: %s" e
  | Ok c ->
    check_bool "no regressions across schemas" false (Report.has_regressions c);
    check_bool "skew not compared against v1" true
      (List.for_all (fun d -> not (contains ~affix:"skew" d.Report.metric))
         c.Report.deltas);
    Alcotest.(check string) "baseline schema" "plim-bench/v1" c.Report.baseline_schema;
    Alcotest.(check string) "current schema" "plim-bench/v2" c.Report.current_schema

let test_report_threshold () =
  let base = bench_doc ~schema:"plim-bench/v2" ~max_writes:100 ~extra:v2_extra in
  let cur = bench_doc ~schema:"plim-bench/v2" ~max_writes:101 ~extra:v2_extra in
  let compare_at threshold =
    match
      Report.compare_json ~threshold_pct:threshold ~baseline_path:"a"
        ~current_path:"b" (parse_exn base) (parse_exn cur)
    with
    | Ok c -> Report.has_regressions c
    | Error e -> Alcotest.failf "compare failed: %s" e
  in
  check_bool "+1% under default 2% threshold" false (compare_at 2.0);
  check_bool "+1% over 0.5% threshold" true (compare_at 0.5)

let test_report_missing_rows () =
  let base = bench_doc ~schema:"plim-bench/v2" ~max_writes:40 ~extra:v2_extra in
  let empty =
    {|{"schema":"plim-bench/v2","generated_at":0,"benchmarks":[],"phases":[]}|}
  in
  (match
     Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn base)
       (parse_exn empty)
   with
  | Ok c ->
    Alcotest.(check (list string)) "vanished rows" [ "b1/naive" ] c.Report.baseline_only;
    check_bool "vanished rows do not gate" false (Report.has_regressions c)
  | Error e -> Alcotest.failf "compare failed: %s" e);
  match
    Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn "{}")
      (parse_exn base)
  with
  | Ok _ -> Alcotest.fail "accepted a non-bench document"
  | Error _ -> ()

let test_report_new_metrics () =
  (* a metric present only in the current file within a matched row is
     reported as new — never gated, never silently dropped *)
  let base = bench_doc ~schema:"plim-bench/v2" ~max_writes:40 ~extra:"" in
  let cur = bench_doc ~schema:"plim-bench/v2" ~max_writes:40 ~extra:v2_extra in
  match
    Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn base)
      (parse_exn cur)
  with
  | Error e -> Alcotest.failf "compare failed: %s" e
  | Ok c ->
    check_bool "new metrics never gate" false (Report.has_regressions c);
    check_bool "skew/gini listed as new" true
      (List.mem "b1/naive/skew.gini" c.Report.new_metrics);
    check_bool "skew/max_mean listed as new" true
      (List.mem "b1/naive/skew.max_mean" c.Report.new_metrics);
    check_bool "render mentions new metrics" true
      (contains ~affix:"new metric" (Report.render c));
    check_bool "to_json carries new_metrics" true
      (contains ~affix:"new_metrics" (Report.to_json c));
    (* identical docs: nothing is new *)
    (match
       Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn cur)
         (parse_exn cur)
     with
    | Ok c' -> check_int "identical -> no new metrics" 0 (List.length c'.Report.new_metrics)
    | Error e -> Alcotest.failf "compare failed: %s" e)

let serve_doc ~p99 ~misses =
  Printf.sprintf
    {|{"schema":"plim-bench/v2","generated_at":0,"benchmarks":[],"phases":[],
      "serve":[{"schema":"plim-serve/v1","label":"steady","requests":240,
        "cache_misses":%d,"total_cycles":9000,"incorrect":0,"rejected":0,
        "latency":{"p50":24.0,"p90":40.0,"p99":%f,"max":80.0},
        "fleet":{"active":4,"retired":0,"spare":1,"gini":0.05,
                 "max_mean":1.2,"stdev":3.0,"total_writes":5000},
        "wall_s":0.0,"requests_per_sec":0.0}]}|}
    misses p99

let test_report_serve_rows () =
  (* plim-serve/v1 rows fold into the comparison as serve:<label>
     pseudo-benchmarks; their wall-clock fields are never compared *)
  let base = serve_doc ~p99:60.0 ~misses:4 in
  let cur = serve_doc ~p99:90.0 ~misses:4 in
  (match
     Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn base)
       (parse_exn base)
   with
  | Error e -> Alcotest.failf "compare failed: %s" e
  | Ok c ->
    check_bool "serve metrics compared" true (List.length c.Report.deltas >= 6);
    check_bool "all rows keyed serve:steady/serve" true
      (List.for_all
         (fun d ->
           d.Report.benchmark = "serve:steady" && d.Report.config = "serve")
         c.Report.deltas);
    check_bool "wall-clock excluded" true
      (List.for_all
         (fun d ->
           d.Report.metric <> "wall_s" && d.Report.metric <> "requests_per_sec")
         c.Report.deltas);
    check_bool "identical serve rows -> zero" false (Report.has_regressions c));
  match
    Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn base)
      (parse_exn cur)
  with
  | Error e -> Alcotest.failf "compare failed: %s" e
  | Ok c ->
    check_bool "latency tail growth gates" true (Report.has_regressions c);
    (match c.Report.regressions with
    | [ d ] ->
      Alcotest.(check string) "metric" "latency.p99" d.Report.metric;
      Alcotest.(check string) "benchmark" "serve:steady" d.Report.benchmark
    | l -> Alcotest.failf "expected exactly 1 regression, got %d" (List.length l))

let zero_doc ~instructions ~dead_writes =
  Printf.sprintf
    {|{"schema":"plim-bench/v2","generated_at":0,"benchmarks":[
       {"name":"b1","configs":[
         {"config":"naive","instructions":%d,"rram_cells":20,"dead_writes":%d}]}],
      "phases":[]}|}
    instructions dead_writes

let test_report_from_zero () =
  (* growth from a zero baseline has no meaningful percentage: it must
     still gate, but ranked after every finite-percentage regression and
     rendered/serialized without a percentage sentinel *)
  let base = zero_doc ~instructions:100 ~dead_writes:0 in
  let cur = zero_doc ~instructions:150 ~dead_writes:5 in
  match
    Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn base)
      (parse_exn cur)
  with
  | Error e -> Alcotest.failf "compare failed: %s" e
  | Ok c ->
    check_bool "both growths gate" true (Report.has_regressions c);
    (match c.Report.regressions with
    | [ a; b ] ->
      Alcotest.(check string) "finite percentage ranks first" "instructions"
        a.Report.metric;
      Alcotest.(check (float 1e-6)) "finite pct" 50.0 a.Report.change_pct;
      check_bool "finite row not from_zero" false a.Report.from_zero;
      Alcotest.(check string) "zero-baseline growth ranks last" "dead_writes"
        b.Report.metric;
      check_bool "flagged from_zero" true b.Report.from_zero;
      check_bool "no 100% sentinel" true (Float.is_nan b.Report.change_pct)
    | l -> Alcotest.failf "expected 2 regressions, got %d" (List.length l));
    let txt = Report.render c in
    check_bool "render marks zero-baseline growth" true
      (contains ~affix:"from 0" txt);
    let j = Report.to_json c in
    check_bool "JSON uses null, not a sentinel pct" true
      (contains ~affix:{|"change_pct":null|} j);
    check_bool "JSON carries from_zero" true
      (contains ~affix:{|"from_zero":true|} j);
    (match Json.parse j with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "report JSON unparsable: %s" e)

let geometry_doc ~groups =
  Printf.sprintf
    {|{"schema":"plim-bench/v2","generated_at":0,"benchmarks":[],"phases":[],
      "geometry":[{"benchmark":"dec4","config":"endurance-full","grid":"2x16",
        "rows":2,"cols":16,"area":32,"instructions":50,"groups":%d,
        "cross_row":1,"max_group":12}]}|}
    groups

let test_report_geometry_rows () =
  (* geometry trade-off rows fold in as geometry:<benchmark>@<grid>
     pseudo-benchmarks and gate on group latency like any cost *)
  let base = geometry_doc ~groups:18 in
  (match
     Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn base)
       (parse_exn base)
   with
  | Error e -> Alcotest.failf "compare failed: %s" e
  | Ok c ->
    check_bool "geometry metrics compared" true (List.length c.Report.deltas >= 4);
    check_bool "rows keyed geometry:dec4@2x16" true
      (List.for_all
         (fun d ->
           d.Report.benchmark = "geometry:dec4@2x16"
           && d.Report.config = "endurance-full")
         c.Report.deltas);
    check_bool "identical -> zero" false (Report.has_regressions c));
  match
    Report.compare_json ~baseline_path:"a" ~current_path:"b" (parse_exn base)
      (parse_exn (geometry_doc ~groups:25))
  with
  | Error e -> Alcotest.failf "compare failed: %s" e
  | Ok c ->
    check_bool "group-latency growth gates" true (Report.has_regressions c);
    (match c.Report.regressions with
    | [ d ] -> Alcotest.(check string) "metric" "groups" d.Report.metric
    | l -> Alcotest.failf "expected exactly 1 regression, got %d" (List.length l))

(* the emit side (Plim_util.Jsonx) and the read side (Json) agree on the
   escape language: quoting any byte string roundtrips exactly *)
let prop_jsonx_roundtrip =
  QCheck.Test.make ~count:1000
    ~name:"Json.parse inverts Jsonx.quote on arbitrary byte strings"
    QCheck.string
    (fun s ->
      match Json.parse (Plim_util.Jsonx.quote s) with
      | Ok (Json.Str s') -> s' = s
      | _ -> false)

let prop_jsonx_roundtrip_in_object =
  QCheck.Test.make ~count:500
    ~name:"quoted strings roundtrip as object keys and members"
    QCheck.(pair string string)
    (fun (k, v) ->
      let doc =
        Printf.sprintf "{%s:%s}" (Plim_util.Jsonx.quote k)
          (Plim_util.Jsonx.quote v)
      in
      match Json.parse doc with
      | Ok j -> Option.bind (Json.member k j) Json.to_string = Some v
      | Error _ -> false)

(* --- metrics registry exposition ---------------------------------------- *)

let test_metrics_histogram () =
  Metrics.reset ();
  let h = Metrics.histogram "test.latency" in
  Metrics.observe h 10;
  Metrics.observe_array h [| 20; 30 |];
  check_int "observations recorded" 3 (Hgram.count (Metrics.histogram_value h));
  let entries = Metrics.snapshot () in
  (match List.assoc_opt "test.latency" entries with
  | Some (Metrics.Hist hv) -> check_int "snapshot copy" 3 (Hgram.count hv)
  | _ -> Alcotest.fail "histogram missing from snapshot");
  let json = Metrics.to_json () in
  check_bool "single exposition schema" true (contains ~affix:"plim-metrics/v1" json);
  check_bool "histogram in JSON dump" true (contains ~affix:"\"test.latency\":{" json);
  (match Json.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics JSON unparsable: %s" e);
  Metrics.reset ();
  check_int "reset clears" 0 (Hgram.count (Metrics.histogram_value h))

(* --- campaign wear trajectory ------------------------------------------- *)

let compiled_dec4 () =
  let g = Suite.build_cached (Suite.find "dec4") in
  ((Pipeline.compile Pipeline.endurance_full g).Pipeline.program, g)

let test_campaign_trajectory () =
  let p, _ = compiled_dec4 () in
  let run () =
    Campaign.run_degraded ~seed:0x7EAC ~max_executions:60 ~sample_every:10
      ~endurance:500 ~spares:4 ~verify:true
      ~fault_spec:(Fault_model.make ~transient:1e-3 ~seed:0x11 ())
      p
  in
  let d = run () in
  let traj = d.Campaign.trajectory in
  check_bool "trajectory non-empty" true (List.length traj >= 2);
  let first = List.hd traj in
  check_int "starts at execution 0" 0 first.Campaign.at_execution;
  check_int "starts at write 0" 0 first.Campaign.at_write;
  let final = List.nth traj (List.length traj - 1) in
  check_int "ends at campaign end" d.Campaign.executions final.Campaign.at_execution;
  let rec monotone : Campaign.wear_sample list -> unit = function
    | a :: (b :: _ as tl) ->
      check_bool "execution clock monotone" true
        (a.Campaign.at_execution < b.Campaign.at_execution);
      check_bool "write clock monotone" true (a.Campaign.at_write <= b.Campaign.at_write);
      check_bool "total wear monotone" true
        (a.Campaign.skew.Wear.total <= b.Campaign.skew.Wear.total);
      monotone tl
    | _ -> ()
  in
  monotone traj;
  check_int "final_wear covers the physical array (incl. spares)"
    (Plim_isa.Program.num_cells p + 4)
    (Array.length d.Campaign.final_wear);
  (* the trajectory is a pure function of the campaign: replays are
     byte-identical, which is what keeps -j 1 == -j N *)
  let d' = run () in
  Alcotest.(check string) "replay identical"
    (Campaign.trajectory_json traj)
    (Campaign.trajectory_json d'.Campaign.trajectory);
  match Json.parse (Campaign.trajectory_json traj) with
  | Ok (Json.Arr l) -> check_int "JSON points" (List.length traj) (List.length l)
  | Ok _ -> Alcotest.fail "trajectory JSON is not an array"
  | Error e -> Alcotest.failf "trajectory JSON unparsable: %s" e

let test_campaign_sampler_validation () =
  let p, _ = compiled_dec4 () in
  Alcotest.check_raises "sample_every must be >= 1"
    (Invalid_argument "Campaign: sample_every must be >= 1") (fun () ->
      ignore (Campaign.run_until_failure ~sample_every:0 ~endurance:1000 p))

let () =
  Alcotest.run "telemetry"
    [ ( "histogram",
        [ Alcotest.test_case "basics" `Quick test_hist_basic;
          Alcotest.test_case "of_array" `Quick test_hist_of_array;
          Alcotest.test_case "merge laws" `Quick test_hist_merge_laws;
          Alcotest.test_case "quantile brackets" `Quick test_hist_quantile_bounds;
          Alcotest.test_case "map_reduce determinism" `Quick test_hist_par_determinism
        ] );
      ( "series",
        [ Alcotest.test_case "ring window" `Quick test_series_ring;
          Alcotest.test_case "decimate sketch" `Quick test_series_decimate ] );
      ( "wear",
        [ Alcotest.test_case "skew metrics" `Quick test_wear_skew;
          Alcotest.test_case "heatmap" `Quick test_wear_heatmap ] );
      ( "json",
        [ Alcotest.test_case "reader" `Quick test_json_parse;
          Alcotest.test_case "depth bound and trailing garbage" `Quick
            test_json_depth_limit;
          QCheck_alcotest.to_alcotest prop_jsonx_roundtrip;
          QCheck_alcotest.to_alcotest prop_jsonx_roundtrip_in_object ] );
      ( "report",
        [ Alcotest.test_case "identical -> zero" `Quick test_report_identical;
          Alcotest.test_case "regression detected" `Quick test_report_regression;
          Alcotest.test_case "v1 -> v2 migration" `Quick test_report_v1_migration;
          Alcotest.test_case "threshold knob" `Quick test_report_threshold;
          Alcotest.test_case "missing rows" `Quick test_report_missing_rows;
          Alcotest.test_case "new metrics reported, not dropped" `Quick
            test_report_new_metrics;
          Alcotest.test_case "serve rows fold into the gate" `Quick
            test_report_serve_rows;
          Alcotest.test_case "zero-baseline growth" `Quick test_report_from_zero;
          Alcotest.test_case "geometry rows fold into the gate" `Quick
            test_report_geometry_rows ] );
      ( "metrics",
        [ Alcotest.test_case "histogram exposition" `Quick test_metrics_histogram ] );
      ( "campaign",
        [ Alcotest.test_case "wear trajectory" `Quick test_campaign_trajectory;
          Alcotest.test_case "sampler validation" `Quick test_campaign_sampler_validation
        ] ) ]
