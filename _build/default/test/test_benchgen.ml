module Mig = Plim_mig.Mig
module Word = Plim_benchgen.Word
module Arith = Plim_benchgen.Arith
module Frontend = Plim_benchgen.Frontend
module Suite = Plim_benchgen.Suite
module Tt = Plim_logic.Truth_table
module Splitmix = Plim_util.Splitmix

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let to_int bits =
  Array.to_list bits |> List.rev
  |> List.fold_left (fun acc b -> (acc lsl 1) lor if b then 1 else 0) 0

let of_int v w = Array.init w (fun i -> (v lsr i) land 1 = 1)

(* evaluate a one-output-word circuit built by [f] on integer inputs *)
let eval_circuit g inputs = to_int (Mig.eval g inputs)

(* --- word-level builders vs integer arithmetic ---------------------------- *)

let word_binop_test name builder reference =
  QCheck.Test.make ~count:150 ~name
    QCheck.(triple (int_range 1 9) (int_range 0 511) (int_range 0 511))
    (fun (w, a0, b0) ->
      let mask = (1 lsl w) - 1 in
      let a0 = a0 land mask and b0 = b0 land mask in
      let g = Mig.create () in
      let a = Word.input g "a" w in
      let b = Word.input g "b" w in
      Word.output g "y" (builder g a b);
      let out = eval_circuit g (Array.append (of_int a0 w) (of_int b0 w)) in
      out = reference w a0 b0)

let add_test =
  word_binop_test "add = integer addition"
    (fun g a b -> let s, c = Word.add g a b in Array.append s [| c |])
    (fun _w a b -> a + b)

let sub_test =
  word_binop_test "sub = modular subtraction with borrow flag"
    (fun g a b ->
      let d, no_borrow = Word.sub g a b in
      Array.append d [| no_borrow |])
    (fun w a b ->
      let mask = (1 lsl w) - 1 in
      ((a - b) land mask) lor (if a >= b then 1 lsl w else 0))

let mul_test =
  word_binop_test "mul = integer product" (fun g a b -> Word.mul g a b) (fun _ a b -> a * b)

let lt_test =
  word_binop_test "less_than = unsigned <"
    (fun g a b -> [| Word.less_than g a b |])
    (fun _ a b -> if a < b then 1 else 0)

let eq_test =
  word_binop_test "equal_word = ="
    (fun g a b -> [| Word.equal_word g a b |])
    (fun _ a b -> if a = b then 1 else 0)

let and_or_xor_test =
  word_binop_test "bitwise and/or/xor"
    (fun g a b -> Array.concat [ Word.and_word g a b; Word.or_word g a b; Word.xor_word g a b ])
    (fun w a b -> (a land b) lor ((a lor b) lsl w) lor ((a lxor b) lsl (2 * w)))

let divmod_test =
  QCheck.Test.make ~count:150 ~name:"divmod = integer division"
    QCheck.(triple (int_range 1 8) (int_range 0 255) (int_range 1 255))
    (fun (w, a0, b0) ->
      let mask = (1 lsl w) - 1 in
      let a0 = a0 land mask and b0 = max 1 (b0 land mask) in
      let g = Mig.create () in
      let a = Word.input g "a" w in
      let b = Word.input g "b" w in
      let q, r = Word.divmod g a b in
      Word.output g "y" (Array.append q r);
      let out = eval_circuit g (Array.append (of_int a0 w) (of_int b0 w)) in
      out = (a0 / b0) lor ((a0 mod b0) lsl w))

let isqrt_test =
  QCheck.Test.make ~count:150 ~name:"isqrt = floor square root"
    QCheck.(pair (int_range 1 5) (int_range 0 1023))
    (fun (w, n0) ->
      let n0 = n0 land ((1 lsl (2 * w)) - 1) in
      let g = Mig.create () in
      let n = Word.input g "n" (2 * w) in
      Word.output g "y" (Word.isqrt g n);
      let out = eval_circuit g (of_int n0 (2 * w)) in
      out = int_of_float (Float.sqrt (float_of_int n0)))

let popcount_test =
  QCheck.Test.make ~count:150 ~name:"popcount"
    QCheck.(pair (int_range 1 10) (int_range 0 1023))
    (fun (w, v0) ->
      let v0 = v0 land ((1 lsl w) - 1) in
      let g = Mig.create () in
      let v = Word.input g "v" w in
      Word.output g "y" (Word.popcount g v);
      let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
      eval_circuit g (of_int v0 w) = pop v0)

let barrel_test =
  QCheck.Test.make ~count:150 ~name:"barrel shifts = lsr/lsl"
    QCheck.(triple (int_range 1 16) (int_range 0 65535) (int_range 0 15))
    (fun (w, v0, sh) ->
      let mask = (1 lsl w) - 1 in
      let v0 = v0 land mask in
      let sw = max 1 (int_of_float (ceil (Float.log2 (float_of_int (max 2 w))))) in
      let sh = sh land ((1 lsl sw) - 1) in
      let g = Mig.create () in
      let v = Word.input g "v" w in
      let amount = Word.input g "sh" sw in
      Word.output g "r" (Word.barrel_shift_right g v ~amount);
      Word.output g "l" (Word.barrel_shift_left g v ~amount);
      let out = Mig.eval g (Array.append (of_int v0 w) (of_int sh sw)) in
      let r = to_int (Array.sub out 0 w) and l = to_int (Array.sub out w w) in
      r = (v0 lsr sh) land mask && l = (v0 lsl sh) land mask)

let priority_test =
  QCheck.Test.make ~count:200 ~name:"priority encoder finds highest set bit"
    QCheck.(pair (int_range 1 12) (int_range 0 4095))
    (fun (w, v0) ->
      let v0 = v0 land ((1 lsl w) - 1) in
      let g = Mig.create () in
      let v = Word.input g "v" w in
      let idx, valid = Word.priority_encode g v in
      Word.output g "i" idx;
      Mig.add_output g "v" valid;
      let out = Mig.eval g (of_int v0 w) in
      let idx_got = to_int (Array.sub out 0 (Array.length out - 1)) in
      let valid_got = out.(Array.length out - 1) in
      if v0 = 0 then (not valid_got) && idx_got = 0
      else begin
        let rec high i = if v0 lsr i <> 0 then i else high (i - 1) in
        valid_got && idx_got = high (w - 1)
      end)

let decode_test =
  QCheck.Test.make ~count:100 ~name:"decoder is one-hot"
    QCheck.(pair (int_range 1 6) (int_range 0 63))
    (fun (w, s0) ->
      let s0 = s0 land ((1 lsl w) - 1) in
      let g = Mig.create () in
      let s = Word.input g "s" w in
      Word.output g "d" (Word.decode g s);
      eval_circuit g (of_int s0 w) = 1 lsl s0)

let test_word_errors () =
  let g = Mig.create () in
  let a = Word.input g "a" 4 in
  let b = Word.input g "b" 3 in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Word.add: width mismatch (4 vs 3)") (fun () ->
      ignore (Word.add g a b));
  Alcotest.check_raises "slice oob" (Invalid_argument "Word.slice") (fun () ->
      ignore (Word.slice a ~lo:2 ~len:3));
  Alcotest.check_raises "shrink" (Invalid_argument "Word.zero_extend: shrinking") (fun () ->
      ignore (Word.zero_extend a 2))

let test_word_const_slice_concat () =
  let g = Mig.create () in
  let c = Word.constant g ~width:8 0xA5 in
  check_int "constant value" 0xA5 (to_int (Array.map (fun s -> Mig.is_complemented s) c));
  let lo = Word.slice c ~lo:0 ~len:4 and hi = Word.slice c ~lo:4 ~len:4 in
  check_int "concat restores" 0xA5
    (to_int (Array.map Mig.is_complemented (Word.concat lo hi)))

(* --- full circuits vs reference models ------------------------------------- *)

let test_dec_exhaustive () =
  let g = Arith.dec ~bits:4 in
  for s = 0 to 15 do
    check_int (Printf.sprintf "dec %d" s) (1 lsl s) (eval_circuit g (of_int s 4))
  done

let test_voter () =
  let g = Arith.voter ~inputs:15 in
  let rng = Splitmix.create 11 in
  for _ = 1 to 100 do
    let v = Splitmix.bits rng ~width:15 in
    let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v in
    let out = Mig.eval g v in
    check_bool "majority vote" (ones >= 8) out.(0)
  done

let test_max () =
  let g = Arith.max ~width:6 ~operands:4 in
  let rng = Splitmix.create 12 in
  for _ = 1 to 100 do
    let xs = Array.init 4 (fun _ -> Splitmix.int rng 64) in
    let inputs = Array.concat (Array.to_list (Array.map (fun v -> of_int v 6) xs)) in
    let out = Mig.eval g inputs in
    let got_max = to_int (Array.sub out 0 6) in
    let got_idx = to_int (Array.sub out 6 2) in
    let want = Array.fold_left max 0 xs in
    check_int "max value" want got_max;
    check_int "argmax value" want xs.(got_idx)
  done

let test_bar_circuit () =
  let g = Arith.bar ~width:16 in
  let rng = Splitmix.create 13 in
  for _ = 1 to 100 do
    let v = Splitmix.int rng 65536 and sh = Splitmix.int rng 16 in
    let out = eval_circuit g (Array.append (of_int v 16) (of_int sh 4)) in
    check_int "barrel" (v lsr sh) out
  done

let test_log2_reference () =
  let g = Arith.log2 () in
  let rng = Splitmix.create 14 in
  for _ = 1 to 25 do
    let x = 1 + Splitmix.int rng 0x7FFFFFFF in
    Alcotest.(check (array bool))
      "log2 circuit = reference model"
      (Arith.log2_reference (of_int x 32))
      (Mig.eval g (of_int x 32))
  done;
  (* integer part is exact *)
  List.iter
    (fun x ->
      let out = to_int (Mig.eval g (of_int x 32)) in
      let int_part = out lsr 27 in
      let rec floor_log2 i = if x lsr i <> 0 then i else floor_log2 (i - 1) in
      check_int (Printf.sprintf "integer part of log2 %d" x) (floor_log2 31) int_part)
    [ 1; 2; 3; 7; 8; 255; 256; 65535; 1 lsl 30 ]

let test_sin_reference () =
  let g = Arith.sin () in
  let rng = Splitmix.create 15 in
  for _ = 1 to 25 do
    let x = Splitmix.int rng (1 lsl 24) in
    Alcotest.(check (array bool))
      "sin circuit = reference model"
      (Arith.sin_reference (of_int x 24))
      (Mig.eval g (of_int x 24))
  done;
  (* numeric accuracy of the polynomial: ~2e-3 *)
  List.iter
    (fun frac ->
      let x = int_of_float (frac *. 16777216.0) in
      let out = to_int (Mig.eval g (of_int x 24)) in
      let got = float_of_int out /. 16777216.0 in
      let want = Float.sin (Float.pi /. 2.0 *. frac) in
      if Float.abs (got -. want) > 0.004 then
        Alcotest.failf "sin(%f): circuit %f vs math %f" frac got want)
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.99 ]

let test_width_one_words () =
  let g = Mig.create () in
  let a = Word.input g "a" 1 in
  let b = Word.input g "b" 1 in
  let sum, carry = Word.add g a b in
  let q, r = Word.divmod g a b in
  Word.output g "s" sum;
  Mig.add_output g "c" carry;
  Word.output g "q" q;
  Word.output g "r" r;
  Word.output g "sq" (Word.isqrt g (Word.concat a b));
  for m = 0 to 3 do
    let va = m land 1 and vb = (m lsr 1) land 1 in
    let out = Mig.eval g [| va = 1; vb = 1 |] in
    Alcotest.(check bool) "sum" ((va + vb) land 1 = 1) out.(0);
    Alcotest.(check bool) "carry" (va + vb >= 2) out.(1);
    if vb = 1 then begin
      Alcotest.(check bool) "q" (va / vb = 1) out.(2);
      Alcotest.(check bool) "r" (va mod vb = 1) out.(3)
    end;
    let n = va + (2 * vb) in
    Alcotest.(check bool) "sqrt" (int_of_float (sqrt (float_of_int n)) = 1) out.(4)
  done

let test_divmod_by_zero_convention () =
  (* restoring-array behaviour: q = all ones, r = dividend *)
  let g = Mig.create () in
  let a = Word.input g "a" 4 in
  let b = Word.input g "b" 4 in
  let q, r = Word.divmod g a b in
  Word.output g "q" q;
  Word.output g "r" r;
  for a0 = 0 to 15 do
    let out = Mig.eval g (Array.append (of_int a0 4) (of_int 0 4)) in
    check_int "q all ones" 15 (to_int (Array.sub out 0 4));
    check_int "r = dividend" a0 (to_int (Array.sub out 4 4))
  done

let test_isqrt_perfect_squares () =
  let g = Mig.create () in
  let n = Word.input g "n" 12 in
  Word.output g "r" (Word.isqrt g n);
  for root = 0 to 63 do
    let out = to_int (Mig.eval g (of_int (root * root) 12)) in
    check_int (Printf.sprintf "sqrt(%d^2)" root) root out;
    if root >= 1 && (root * root) + 1 < 4096 then begin
      let out = to_int (Mig.eval g (of_int ((root * root) + 1) 12)) in
      check_int "floor behaviour" root out
    end
  done

let test_log2_powers_of_two () =
  let g = Arith.log2 () in
  for k = 0 to 31 do
    let out = to_int (Mig.eval g (of_int (1 lsl k) 32)) in
    check_int (Printf.sprintf "log2(2^%d)" k) k (out lsr 27);
    check_int "zero fraction" 0 (out land 0x7FFFFFF)
  done

(* --- AIG frontend ----------------------------------------------------------- *)

let frontend_preserves =
  QCheck.Test.make ~count:50 ~name:"frontend expansion preserves function"
    QCheck.small_int
    (fun seed ->
      let g =
        Plim_mig.Mig_gen.random ~seed ~num_inputs:6 ~num_nodes:40 ~num_outputs:4 ()
      in
      let g' = Frontend.expand g in
      Frontend.is_aig g'
      && Array.for_all2 Tt.equal (Mig.output_tables g) (Mig.output_tables g'))

let test_frontend_shape () =
  let fa = Arith.adder ~width:2 in
  check_bool "true majorities before" false (Frontend.is_aig fa);
  let aig = Frontend.expand fa in
  check_bool "aig after" true (Frontend.is_aig aig);
  check_bool "expansion grows" true (Mig.size aig > Mig.size fa)

(* --- suite ------------------------------------------------------------------- *)

let test_suite_pi_po () =
  List.iter
    (fun spec ->
      let g = Suite.build_cached spec in
      check_int (spec.Suite.name ^ " PI") spec.Suite.pi (Mig.num_inputs g);
      check_int (spec.Suite.name ^ " PO") spec.Suite.po (Mig.num_outputs g))
    (* mem_ctrl and the big arithmetic circuits are exercised by the bench
       harness; keep unit tests fast *)
    (List.filter
       (fun s -> List.mem s.Suite.name [ "sin"; "cavlc"; "ctrl"; "dec"; "int2float"; "router" ])
       Suite.all)

let test_small_suite_pi_po () =
  List.iter
    (fun spec ->
      let g = spec.Suite.build () in
      check_int (spec.Suite.name ^ " PI") spec.Suite.pi (Mig.num_inputs g);
      check_int (spec.Suite.name ^ " PO") spec.Suite.po (Mig.num_outputs g))
    Suite.small_suite

let test_suite_lookup () =
  check_int "18 benchmarks" 18 (List.length Suite.all);
  check_bool "find works" true ((Suite.find "adder").Suite.pi = 256);
  check_bool "names" true (List.mem "mem_ctrl" Suite.names);
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Suite.find "nope"))

let test_build_cached () =
  let spec = Suite.find "dec" in
  check_bool "memoised" true (Suite.build_cached spec == Suite.build_cached spec)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "benchgen"
    [ ( "word",
        [ qc add_test; qc sub_test; qc mul_test; qc lt_test; qc eq_test;
          qc and_or_xor_test; qc divmod_test; qc isqrt_test; qc popcount_test;
          qc barrel_test; qc priority_test; qc decode_test;
          Alcotest.test_case "errors" `Quick test_word_errors;
          Alcotest.test_case "const/slice/concat" `Quick test_word_const_slice_concat ] );
      ( "edge-cases",
        [ Alcotest.test_case "width-1 words" `Quick test_width_one_words;
          Alcotest.test_case "division by zero convention" `Quick
            test_divmod_by_zero_convention;
          Alcotest.test_case "isqrt perfect squares" `Quick test_isqrt_perfect_squares;
          Alcotest.test_case "log2 powers of two" `Quick test_log2_powers_of_two ] );
      ( "circuits",
        [ Alcotest.test_case "decoder (exhaustive)" `Quick test_dec_exhaustive;
          Alcotest.test_case "voter" `Quick test_voter;
          Alcotest.test_case "max" `Quick test_max;
          Alcotest.test_case "barrel shifter" `Quick test_bar_circuit;
          Alcotest.test_case "log2 vs reference" `Quick test_log2_reference;
          Alcotest.test_case "sin vs reference" `Quick test_sin_reference ] );
      ( "frontend",
        [ qc frontend_preserves;
          Alcotest.test_case "aig shape" `Quick test_frontend_shape ] );
      ( "suite",
        [ Alcotest.test_case "paper PI/PO counts" `Quick test_suite_pi_po;
          Alcotest.test_case "small suite PI/PO" `Quick test_small_suite_pi_po;
          Alcotest.test_case "lookup" `Quick test_suite_lookup;
          Alcotest.test_case "caching" `Quick test_build_cached ] ) ]
