module Crossbar = Plim_rram.Crossbar

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_create_read () =
  let x = Crossbar.create 8 in
  check_int "size" 8 (Crossbar.size x);
  for i = 0 to 7 do
    check_bool "fresh HRS" false (Crossbar.read x i)
  done

let test_write_counts () =
  let x = Crossbar.create 4 in
  Crossbar.write x 0 true;
  Crossbar.write x 0 true;
  Crossbar.write x 0 false;
  check_int "three write ops" 3 (Crossbar.writes x 0);
  check_int "two actual transitions" 2 (Crossbar.transitions x 0);
  check_int "untouched" 0 (Crossbar.writes x 1);
  Alcotest.(check (array int)) "snapshot" [| 3; 0; 0; 0 |] (Crossbar.write_counts x)

(* exhaustive check of the intrinsic RM3 against the ISA semantics *)
let test_rm3_semantics () =
  for m = 0 to 7 do
    let p = m land 1 = 1 and q = m land 2 = 2 and z = m land 4 = 4 in
    let x = Crossbar.create 1 in
    Crossbar.load x 0 z;
    Crossbar.rm3 x ~p ~q 0;
    let expected = Plim_isa.Instruction.semantics ~a:p ~b:q ~z in
    check_bool (Printf.sprintf "rm3 p=%b q=%b z=%b" p q z) expected (Crossbar.read x 0)
  done

let test_load_uncounted () =
  let x = Crossbar.create 2 in
  Crossbar.load x 0 true;
  check_int "load does not count" 0 (Crossbar.writes x 0);
  check_bool "but changes state" true (Crossbar.read x 0)

let test_endurance_failure () =
  let x = Crossbar.create ~endurance:3 2 in
  Crossbar.write x 0 true;
  Crossbar.write x 0 false;
  check_bool "not yet failed" false (Crossbar.failed x 0);
  Crossbar.write x 0 true;
  check_bool "failed at budget" true (Crossbar.failed x 0);
  check_int "one failed cell" 1 (Crossbar.num_failed x);
  Alcotest.check_raises "write to failed cell" (Failure "Crossbar: write to failed cell 0")
    (fun () -> Crossbar.write x 0 true)

let test_reset_counters () =
  let x = Crossbar.create 2 in
  Crossbar.write x 1 true;
  Crossbar.reset_counters x;
  check_int "writes reset" 0 (Crossbar.writes x 1);
  check_bool "state kept" true (Crossbar.read x 1)

let test_bounds () =
  let x = Crossbar.create 2 in
  Alcotest.check_raises "oob" (Invalid_argument "Crossbar: cell 2 out of range (size 2)")
    (fun () -> ignore (Crossbar.read x 2))

(* property: a random op sequence keeps writes = loads-excluded op count *)
let write_accounting =
  QCheck.Test.make ~count:100 ~name:"write counter equals write-op count"
    QCheck.(list (pair (int_range 0 3) bool))
    (fun ops ->
      let x = Crossbar.create 4 in
      let expected = Array.make 4 0 in
      List.iter
        (fun (cell, v) ->
          if v then begin
            Crossbar.write x cell v;
            expected.(cell) <- expected.(cell) + 1
          end
          else Crossbar.load x cell v)
        ops;
      Crossbar.write_counts x = expected)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "rram"
    [ ( "crossbar",
        [ Alcotest.test_case "create/read" `Quick test_create_read;
          Alcotest.test_case "write counts" `Quick test_write_counts;
          Alcotest.test_case "rm3 semantics (exhaustive)" `Quick test_rm3_semantics;
          Alcotest.test_case "load uncounted" `Quick test_load_uncounted;
          Alcotest.test_case "endurance failure" `Quick test_endurance_failure;
          Alcotest.test_case "reset counters" `Quick test_reset_counters;
          Alcotest.test_case "bounds" `Quick test_bounds;
          qc write_accounting ] ) ]
