module Mig = Plim_mig.Mig
module Mig_gen = Plim_mig.Mig_gen
module Tt = Plim_logic.Truth_table
module Axioms = Plim_rewrite.Axioms
module Recipe = Plim_rewrite.Recipe

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let functionally_equal g g' =
  Mig.num_inputs g = Mig.num_inputs g'
  && Mig.num_outputs g = Mig.num_outputs g'
  && Array.for_all2 Tt.equal (Mig.output_tables g) (Mig.output_tables g')

let random_mig ?(inputs = 6) ?(nodes = 50) seed =
  Mig_gen.random ~seed ~num_inputs:inputs ~num_nodes:nodes ~num_outputs:4 ()

(* every pass must preserve the Boolean functions of all outputs *)
let pass_preserves name rules =
  QCheck.Test.make ~count:80 ~name:(Printf.sprintf "pass [%s] preserves function" name)
    QCheck.small_int (fun seed ->
      let g = random_mig seed in
      functionally_equal g (Recipe.run_pass g rules))

let distributivity_preserves = pass_preserves "distributivity" [ Axioms.distributivity_rl ]
let associativity_preserves = pass_preserves "associativity" [ Axioms.associativity ]

let psi_c_preserves =
  pass_preserves "complementary associativity" [ Axioms.complementary_associativity ]

let inverter_preserves = pass_preserves "inverter propagation" [ Axioms.inverter_propagation ]

let all_rules_preserve =
  pass_preserves "all rules"
    [ Axioms.distributivity_rl;
      Axioms.associativity;
      Axioms.complementary_associativity;
      Axioms.inverter_propagation ]

let recipe_preserves name recipe =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "%s preserves function" name)
    QCheck.small_int (fun seed ->
      let g = random_mig seed in
      functionally_equal g (Recipe.run recipe ~effort:3 g))

let algorithm1_preserves = recipe_preserves "algorithm 1 (DAC'16)" Recipe.Algorithm1
let algorithm2_preserves = recipe_preserves "algorithm 2 (endurance-aware)" Recipe.Algorithm2

(* after an inverter-propagation pass no node keeps >= 2 complemented
   non-constant children *)
let inverter_invariant =
  QCheck.Test.make ~count:60 ~name:"inverter pass leaves <= 1 complemented child"
    QCheck.small_int (fun seed ->
      let g = random_mig seed in
      let g' = Recipe.run_pass g [ Axioms.inverter_propagation ] in
      let ok = ref true in
      Mig.iter_reachable_maj g' (fun id ->
          match Mig.kind g' id with
          | Mig.Maj (a, b, c) ->
            let count s =
              if Mig.is_complemented s && not (Mig.is_const s) then 1 else 0
            in
            if count a + count b + count c >= 2 then ok := false
          | Mig.Const | Mig.Input _ -> ());
      !ok)

(* rewriting never grows the graph on AIG-shaped inputs *)
let never_grows =
  QCheck.Test.make ~count:30 ~name:"algorithm 2 does not grow AIG inputs"
    QCheck.small_int (fun seed ->
      let g = Plim_benchgen.Frontend.expand (random_mig seed) in
      Mig.size (Recipe.run Recipe.Algorithm2 ~effort:2 g) <= Mig.size g)

(* --- directed cases ----------------------------------------------------- *)

(* <<xyu><xyv>z> collapses to <xy<uvz>> when the inner nodes die *)
let test_distributivity_collapse () =
  let g = Mig.create () in
  let x = Mig.add_input g "x" in
  let y = Mig.add_input g "y" in
  let u = Mig.add_input g "u" in
  let v = Mig.add_input g "v" in
  let z = Mig.add_input g "z" in
  let a = Mig.maj g x y u in
  let b = Mig.maj g x y v in
  let top = Mig.maj g a b z in
  Mig.add_output g "f" top;
  check_int "three nodes before" 3 (Mig.size g);
  let g' = Recipe.run_pass g [ Axioms.distributivity_rl ] in
  check_int "two nodes after" 2 (Mig.size g');
  check_bool "equivalent" true (functionally_equal g g')

(* the inverter rule flips a node with two complemented children *)
let test_inverter_flip () =
  let g = Mig.create () in
  let x = Mig.add_input g "x" in
  let y = Mig.add_input g "y" in
  let z = Mig.add_input g "z" in
  let n = Mig.maj g (Mig.not_ x) (Mig.not_ y) z in
  Mig.add_output g "f" n;
  check_int "two complemented edges" 2 (Mig.num_complemented_edges g);
  let g' = Recipe.run_pass g [ Axioms.inverter_propagation ] in
  check_int "one complemented edge left" 1 (Mig.num_complemented_edges g');
  check_bool "equivalent" true (functionally_equal g g')

(* psi.c removes a complemented edge: <x u <y !x z>> = <x u <y u z>> *)
let test_psi_c_removes_complement () =
  let g = Mig.create () in
  let x = Mig.add_input g "x" in
  let u = Mig.add_input g "u" in
  let y = Mig.add_input g "y" in
  let z = Mig.add_input g "z" in
  let inner = Mig.maj g y (Mig.not_ x) z in
  let top = Mig.maj g x u inner in
  Mig.add_output g "f" top;
  check_int "one complemented edge" 1 (Mig.num_complemented_edges g);
  let g' = Recipe.run_pass g [ Axioms.complementary_associativity ] in
  check_int "edge removed" 0 (Mig.num_complemented_edges g');
  check_bool "equivalent" true (functionally_equal g g')

(* associativity commits only on free inner nodes and keeps the function *)
let test_associativity_directed () =
  let g = Mig.create () in
  let x = Mig.add_input g "x" in
  let u = Mig.add_input g "u" in
  let y = Mig.add_input g "y" in
  let inner = Mig.maj g y u x in
  let top = Mig.maj g x u inner in
  Mig.add_output g "f" top;
  let g' = Recipe.run_pass g [ Axioms.associativity ] in
  check_bool "equivalent" true (functionally_equal g g')

let test_effort_zero_is_cleanup () =
  let g = random_mig 5 in
  let g' = Recipe.run Recipe.Algorithm1 ~effort:0 g in
  check_int "same size as cleanup" (Mig.size (Mig.cleanup g)) (Mig.size g')

let test_no_rewriting () =
  let g = random_mig 6 in
  let g' = Recipe.run Recipe.No_rewriting ~effort:5 g in
  check_int "untouched size" (Mig.size (Mig.cleanup g)) (Mig.size g');
  check_bool "equivalent" true (functionally_equal g g')

let test_recipe_names () =
  Alcotest.(check string) "none" "none" (Recipe.recipe_name Recipe.No_rewriting);
  Alcotest.(check string) "dac16" "dac16" (Recipe.recipe_name Recipe.Algorithm1);
  Alcotest.(check string) "endurance" "endurance" (Recipe.recipe_name Recipe.Algorithm2)

(* algorithms reduce AIG-expanded arithmetic circuits substantially *)
let test_formal_equivalence_wide () =
  (* complete BDD-based equivalence of the rewriting algorithms on a
     32-bit adder (64 inputs, beyond truth tables) *)
  let g = Plim_benchgen.Frontend.expand (Plim_benchgen.Arith.adder ~width:32) in
  let order = Plim_logic.Bdd.interleave 2 32 in
  let g1 = Recipe.run Recipe.Algorithm1 ~effort:3 g in
  let g2 = Recipe.run Recipe.Algorithm2 ~effort:3 g in
  check_bool "algorithm 1 formally equivalent" true
    (Plim_mig.Mig_bdd.equivalent ~order g g1);
  check_bool "algorithm 2 formally equivalent" true
    (Plim_mig.Mig_bdd.equivalent ~order g g2)

let test_reduction_on_adder () =
  let g = Plim_benchgen.Frontend.expand (Plim_benchgen.Arith.adder ~width:8) in
  let before = Mig.size g in
  let g1 = Recipe.run Recipe.Algorithm1 ~effort:5 g in
  let g2 = Recipe.run Recipe.Algorithm2 ~effort:5 g in
  check_bool "alg1 reduces" true (Mig.size g1 < before);
  check_bool "alg2 reduces" true (Mig.size g2 < before);
  check_bool "alg1 equivalent" true (functionally_equal g g1);
  check_bool "alg2 equivalent" true (functionally_equal g g2)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "rewrite"
    [ ( "soundness",
        [ qc distributivity_preserves;
          qc associativity_preserves;
          qc psi_c_preserves;
          qc inverter_preserves;
          qc all_rules_preserve;
          qc algorithm1_preserves;
          qc algorithm2_preserves ] );
      ( "invariants",
        [ qc inverter_invariant; qc never_grows ] );
      ( "directed",
        [ Alcotest.test_case "distributivity collapse" `Quick test_distributivity_collapse;
          Alcotest.test_case "inverter flip" `Quick test_inverter_flip;
          Alcotest.test_case "psi.c removes complement" `Quick test_psi_c_removes_complement;
          Alcotest.test_case "associativity" `Quick test_associativity_directed;
          Alcotest.test_case "effort 0" `Quick test_effort_zero_is_cleanup;
          Alcotest.test_case "no rewriting" `Quick test_no_rewriting;
          Alcotest.test_case "recipe names" `Quick test_recipe_names;
          Alcotest.test_case "formal equivalence, 32-bit adder" `Quick
            test_formal_equivalence_wide;
          Alcotest.test_case "reduces adder (AIG form)" `Quick test_reduction_on_adder ] ) ]
