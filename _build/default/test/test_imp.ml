module Mig = Plim_mig.Mig
module Mig_gen = Plim_mig.Mig_gen
module Imp = Plim_imp.Imp
module Start_gap = Plim_rram.Start_gap
module Alloc = Plim_core.Alloc
module Stats = Plim_stats.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- IMPLY compiler -------------------------------------------------- *)

let test_imp_gates () =
  (* AND / OR / NOT / MAJ through the IMP flow, exhaustively *)
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  let b = Mig.add_input g "b" in
  let c = Mig.add_input g "c" in
  Mig.add_output g "and" (Mig.and_ g a b);
  Mig.add_output g "or" (Mig.or_ g a b);
  Mig.add_output g "not" (Mig.not_ a);
  Mig.add_output g "maj" (Mig.maj g a b c);
  let p = Imp.compile g in
  for m = 0 to 7 do
    let va = m land 1 = 1 and vb = m land 2 = 2 and vc = m land 4 = 4 in
    let outputs, _ = Imp.run p ~inputs:[ ("a", va); ("b", vb); ("c", vc) ] in
    check_bool "and" (va && vb) (List.assoc "and" outputs);
    check_bool "or" (va || vb) (List.assoc "or" outputs);
    check_bool "not" (not va) (List.assoc "not" outputs);
    check_bool "maj" ((va && vb) || (va && vc) || (vb && vc)) (List.assoc "maj" outputs)
  done

let test_imp_nand_cost () =
  (* the canonical NAND: two devices beyond the inputs, three steps
     (Section II: "implemented with two resistive switches and ... three
     computational steps") — our AND = NAND + phase bookkeeping, so a
     single AND output costs 3 instructions + 2 for the final inversion *)
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  let b = Mig.add_input g "b" in
  Mig.add_output g "nand" (Mig.not_ (Mig.and_ g a b));
  let p = Imp.compile g in
  check_int "three steps" 3 (Imp.length p);
  check_int "two inputs + one work device" 3 (Imp.num_cells p)

let test_imp_const_outputs () =
  let g = Mig.create () in
  let _ = Mig.add_input g "a" in
  Mig.add_output g "zero" Mig.false_;
  Mig.add_output g "one" Mig.true_;
  let p = Imp.compile g in
  let outputs, _ = Imp.run p ~inputs:[ ("a", true) ] in
  check_bool "const 0" false (List.assoc "zero" outputs);
  check_bool "const 1" true (List.assoc "one" outputs)

let imp_correct =
  QCheck.Test.make ~count:40 ~name:"IMP compilation is functionally correct"
    QCheck.small_int
    (fun seed ->
      let g = Mig_gen.random ~seed ~num_inputs:6 ~num_nodes:50 ~num_outputs:4 () in
      match Imp.check_random ~trials:6 ~seed g (Imp.compile g) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

let imp_min_write_correct =
  QCheck.Test.make ~count:25 ~name:"IMP + min-write allocation stays correct"
    QCheck.small_int
    (fun seed ->
      let g = Mig_gen.random ~seed ~num_inputs:5 ~num_nodes:40 ~num_outputs:3 () in
      match
        Imp.check_random ~trials:6 ~seed g (Imp.compile ~strategy:Alloc.Min_write g)
      with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

(* Section II's argument, quantitatively: on the same function, RM3
   compilation uses fewer instructions and balances writes better *)
let test_imp_vs_rm3 () =
  let g = Plim_benchgen.Arith.adder ~width:8 in
  let imp = Imp.compile g in
  let rm3 = (Plim_core.Pipeline.compile Plim_core.Pipeline.min_write g).Plim_core.Pipeline.program in
  let imp_stats = Stats.summarize (Imp.static_write_counts imp) in
  let rm3_stats = Stats.summarize (Plim_isa.Program.static_write_counts rm3) in
  check_bool "RM3 needs fewer instructions" true
    (Plim_isa.Program.length rm3 < Imp.length imp);
  check_bool "RM3 balances writes better" true
    (rm3_stats.Stats.stdev < imp_stats.Stats.stdev);
  check_bool "IMP concentrates on work devices" true
    (imp_stats.Stats.max > rm3_stats.Stats.max)

let test_imp_write_accounting () =
  let g = Plim_benchgen.Arith.adder ~width:4 in
  let p = Imp.compile g in
  let inputs =
    Array.to_list (Array.map (fun (n, _) -> (n, true)) p.Imp.pi_cells)
  in
  let _, xbar = Imp.run p ~inputs in
  Alcotest.(check (array int)) "dynamic = static" (Imp.static_write_counts p)
    (Plim_rram.Crossbar.write_counts xbar)

(* --- start-gap wear levelling ------------------------------------------ *)

let test_start_gap_mapping () =
  let t = Start_gap.create ~psi:10 4 in
  check_int "physical lines" 5 (Start_gap.num_physical t);
  (* initially the identity (gap at the end) *)
  for la = 0 to 3 do
    check_int "identity map" la (Start_gap.physical t la)
  done;
  (* the mapping is always a bijection *)
  for _ = 1 to 97 do
    Start_gap.write t 1
  done;
  let seen = Array.make 5 false in
  for la = 0 to 3 do
    let pa = Start_gap.physical t la in
    check_bool "in range" true (pa >= 0 && pa < 5);
    check_bool "no collision" false seen.(pa);
    seen.(pa) <- true
  done

let test_start_gap_moves () =
  let t = Start_gap.create ~psi:5 4 in
  for _ = 1 to 25 do
    Start_gap.write t 0
  done;
  check_int "one move per psi writes" 5 (Start_gap.total_moves t)

let test_start_gap_rotation_levels_hot_line () =
  (* one scorching logical line; rotation spreads it over all physical
     lines given enough executions *)
  let per_exec = [| 100; 1; 1; 1 |] in
  let counts = Start_gap.replay ~psi:10 ~executions:50 per_exec in
  let s = Stats.summarize counts in
  let unlevelled = Stats.summarize (Array.map (( * ) 50) per_exec) in
  check_bool
    (Printf.sprintf "rotated stdev %.1f < static stdev %.1f" s.Stats.stdev
       unlevelled.Stats.stdev)
    true
    (s.Stats.stdev < unlevelled.Stats.stdev)

let test_start_gap_write_conservation () =
  let per_exec = [| 3; 0; 7; 2 |] in
  let executions = 9 in
  let counts = Start_gap.replay ~psi:4 ~executions per_exec in
  let logical_total = executions * Array.fold_left ( + ) 0 per_exec in
  let physical_total = Array.fold_left ( + ) 0 counts in
  (* extra writes are exactly the gap-copy moves *)
  check_bool "rotation overhead bounded by 1/psi + wraps" true
    (physical_total >= logical_total
    && physical_total <= logical_total + (logical_total / 4) + 1)

let test_start_gap_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Start_gap.create: need at least one line")
    (fun () -> ignore (Start_gap.create 0));
  Alcotest.check_raises "bad psi" (Invalid_argument "Start_gap.create: psi must be positive")
    (fun () -> ignore (Start_gap.create ~psi:0 4));
  let t = Start_gap.create 4 in
  Alcotest.check_raises "address range"
    (Invalid_argument "Start_gap.physical: address out of range") (fun () ->
      ignore (Start_gap.physical t 4))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "imp"
    [ ( "imply-compiler",
        [ Alcotest.test_case "gates (exhaustive)" `Quick test_imp_gates;
          Alcotest.test_case "NAND cost model" `Quick test_imp_nand_cost;
          Alcotest.test_case "constant outputs" `Quick test_imp_const_outputs;
          Alcotest.test_case "IMP vs RM3 (Section II)" `Quick test_imp_vs_rm3;
          Alcotest.test_case "write accounting" `Quick test_imp_write_accounting;
          qc imp_correct;
          qc imp_min_write_correct ] );
      ( "start-gap",
        [ Alcotest.test_case "mapping is a bijection" `Quick test_start_gap_mapping;
          Alcotest.test_case "gap movement cadence" `Quick test_start_gap_moves;
          Alcotest.test_case "rotation levels a hot line" `Quick
            test_start_gap_rotation_levels_hot_line;
          Alcotest.test_case "write conservation" `Quick test_start_gap_write_conservation;
          Alcotest.test_case "validation" `Quick test_start_gap_validation ] ) ]
