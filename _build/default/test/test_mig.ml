module Mig = Plim_mig.Mig
module Mig_io = Plim_mig.Mig_io
module Mig_gen = Plim_mig.Mig_gen
module Tt = Plim_logic.Truth_table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh3 () =
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  let b = Mig.add_input g "b" in
  let c = Mig.add_input g "c" in
  (g, a, b, c)

(* --- construction ------------------------------------------------------ *)

let test_signals () =
  let s = Mig.signal 5 true in
  check_int "node" 5 (Mig.node_of s);
  check_bool "compl" true (Mig.is_complemented s);
  check_bool "double negation" true (Mig.signal_equal s (Mig.not_ (Mig.not_ s)));
  check_bool "const" true (Mig.is_const Mig.true_);
  check_bool "true = !false" true (Mig.signal_equal Mig.true_ (Mig.not_ Mig.false_))

let test_omega_m_on_create () =
  let g, a, b, _ = fresh3 () in
  check_bool "<aab>=a" true (Mig.signal_equal a (Mig.maj g a a b));
  check_bool "<a!ab>=b" true (Mig.signal_equal b (Mig.maj g a (Mig.not_ a) b));
  check_bool "<a a a>=a" true (Mig.signal_equal a (Mig.maj g a a a));
  check_bool "<a 0 1>=a" true (Mig.signal_equal a (Mig.maj g a Mig.false_ Mig.true_));
  check_int "no node created" 0 (Mig.size g)

let test_strash () =
  let g, a, b, c = fresh3 () in
  let n1 = Mig.maj g a b c in
  let n2 = Mig.maj g c a b in
  let n3 = Mig.maj g b c a in
  check_bool "commutative dedup" true (Mig.signal_equal n1 n2);
  check_bool "commutative dedup" true (Mig.signal_equal n1 n3);
  let n4 = Mig.maj g (Mig.not_ a) b c in
  check_bool "different polarity distinct" false (Mig.signal_equal n1 n4)

let test_lookup () =
  let g, a, b, c = fresh3 () in
  Alcotest.(check bool) "lookup miss" true (Mig.lookup g a b c = None);
  let n = Mig.maj g a b c in
  Alcotest.(check bool) "lookup hit" true (Mig.lookup g b c a = Some n);
  Alcotest.(check bool) "lookup reduce" true (Mig.lookup g a a b = Some a);
  (* lookup never creates *)
  let before = Mig.num_nodes g in
  ignore (Mig.lookup g (Mig.not_ a) (Mig.not_ b) c);
  check_int "lookup is pure" before (Mig.num_nodes g)

let test_gate_semantics () =
  let g, a, b, c = fresh3 () in
  Mig.add_output g "and" (Mig.and_ g a b);
  Mig.add_output g "or" (Mig.or_ g a b);
  Mig.add_output g "xor" (Mig.xor g a b);
  Mig.add_output g "mux" (Mig.mux g a b c);
  for m = 0 to 7 do
    let va = m land 1 = 1 and vb = m land 2 = 2 and vc = m land 4 = 4 in
    let out = Mig.eval g [| va; vb; vc |] in
    check_bool "and" (va && vb) out.(0);
    check_bool "or" (va || vb) out.(1);
    check_bool "xor" (va <> vb) out.(2);
    check_bool "mux" (if va then vb else vc) out.(3)
  done

let test_duplicate_input () =
  let g = Mig.create () in
  ignore (Mig.add_input g "a");
  Alcotest.check_raises "dup" (Invalid_argument "Mig.add_input: duplicate input \"a\"")
    (fun () -> ignore (Mig.add_input g "a"))

(* --- inspection -------------------------------------------------------- *)

let test_levels_depth () =
  let g, a, b, c = fresh3 () in
  let n1 = Mig.maj g a b c in
  let n2 = Mig.maj g n1 a b in
  Mig.add_output g "y" n2;
  let lv = Mig.levels g in
  check_int "input level" 0 lv.(Mig.node_of a);
  check_int "level 1" 1 lv.(Mig.node_of n1);
  check_int "level 2" 2 lv.(Mig.node_of n2);
  check_int "depth" 2 (Mig.depth g)

let test_fanouts_reachability () =
  let g, a, b, c = fresh3 () in
  let n1 = Mig.maj g a b c in
  let n2 = Mig.maj g n1 a b in
  let dead = Mig.maj g n1 (Mig.not_ b) c in
  Mig.add_output g "y" n2;
  let mark = Mig.reachable g in
  check_bool "n2 reachable" true mark.(Mig.node_of n2);
  check_bool "dead not reachable" false mark.(Mig.node_of dead);
  check_int "size counts reachable only" 2 (Mig.size g);
  let fc = Mig.fanout_counts g in
  check_int "n1 fanout (reachable only)" 1 fc.(Mig.node_of n1);
  check_int "a fanout" 2 fc.(Mig.node_of a);
  let orefs = Mig.output_refs g in
  check_int "n2 po refs" 1 orefs.(Mig.node_of n2);
  let fl = Mig.fanouts g in
  Alcotest.(check (array int)) "n1 parents" [| Mig.node_of n2 |] fl.(Mig.node_of n1)

let test_cleanup () =
  let g, a, b, c = fresh3 () in
  let n1 = Mig.maj g a b c in
  ignore (Mig.maj g n1 (Mig.not_ b) c);
  Mig.add_output g "y" n1;
  let g' = Mig.cleanup g in
  check_int "dead removed" 1 (Mig.size g');
  check_int "inputs preserved" 3 (Mig.num_inputs g');
  check_int "outputs preserved" 1 (Mig.num_outputs g')

let test_complemented_edges () =
  let g, a, b, c = fresh3 () in
  let n = Mig.maj g (Mig.not_ a) (Mig.not_ b) c in
  Mig.add_output g "y" (Mig.not_ n);
  check_int "2 complemented child edges, PO polarity uncounted" 2
    (Mig.num_complemented_edges g)

(* --- evaluation vs truth tables ---------------------------------------- *)

let random_mig seed =
  Mig_gen.random ~seed ~num_inputs:5 ~num_nodes:30 ~num_outputs:4 ()

let eval_matches_tables =
  QCheck.Test.make ~count:60 ~name:"eval agrees with output_tables"
    QCheck.small_int (fun seed ->
      let g = random_mig seed in
      let tables = Mig.output_tables g in
      let ok = ref true in
      for m = 0 to 31 do
        let v = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
        let out = Mig.eval g v in
        Array.iteri (fun o tt -> if Tt.eval tt v <> out.(o) then ok := false) tables
      done;
      !ok)

let map_rebuild_preserves =
  QCheck.Test.make ~count:60 ~name:"cleanup preserves functionality"
    QCheck.small_int (fun seed ->
      let g = random_mig seed in
      let g' = Mig.cleanup g in
      let t = Mig.output_tables g and t' = Mig.output_tables g' in
      Array.for_all2 Tt.equal t t')

(* --- io ----------------------------------------------------------------- *)

let test_io_roundtrip_manual () =
  let g, a, b, c = fresh3 () in
  let n1 = Mig.maj g a (Mig.not_ b) c in
  Mig.add_output g "y" (Mig.not_ n1);
  Mig.add_output g "z" a;
  let g' = Mig_io.of_string (Mig_io.to_string g) in
  check_int "inputs" 3 (Mig.num_inputs g');
  check_int "outputs" 2 (Mig.num_outputs g');
  check_int "size" 1 (Mig.size g');
  let t = Mig.output_tables g and t' = Mig.output_tables g' in
  check_bool "functionally equal" true (Array.for_all2 Tt.equal t t')

let io_roundtrip =
  QCheck.Test.make ~count:40 ~name:"mig text format roundtrip"
    QCheck.small_int (fun seed ->
      let g = random_mig seed in
      let g' = Mig_io.of_string (Mig_io.to_string g) in
      Mig.num_inputs g' = Mig.num_inputs g
      && Mig.num_outputs g' = Mig.num_outputs g
      && Array.for_all2 Tt.equal (Mig.output_tables g) (Mig.output_tables g'))

let test_io_errors () =
  Alcotest.check_raises "missing header"
    (Failure "Mig_io.of_string: line 1: expected 'mig' header") (fun () ->
      ignore (Mig_io.of_string ".node 1 2 3 4"));
  Alcotest.check_raises "unknown operand"
    (Failure "Mig_io.of_string: line 2: operand references unknown node 9") (fun () ->
      ignore (Mig_io.of_string "mig\n.node 4 9 9 9"))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_dot () =
  let g, a, b, c = fresh3 () in
  Mig.add_output g "y" (Mig.maj g a (Mig.not_ b) c);
  let dot = Mig_io.to_dot g in
  check_bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  check_bool "has dashed edge" true (contains dot "dashed")

(* --- blif ------------------------------------------------------------------ *)

module Blif = Plim_mig.Blif

let test_blif_parse () =
  let text =
    "# a 2:1 mux with a don't-care cube\n\
     .model mux\n\
     .inputs s a b\n\
     .outputs y\n\
     .names s a b y\n\
     11- 1\n\
     0-1 1\n\
     .end\n"
  in
  let g = Blif.of_string text in
  check_int "inputs" 3 (Mig.num_inputs g);
  check_int "outputs" 1 (Mig.num_outputs g);
  for m = 0 to 7 do
    let s = m land 1 = 1 and a = m land 2 = 2 and b = m land 4 = 4 in
    let out = Mig.eval g [| s; a; b |] in
    check_bool "mux semantics" (if s then a else b) out.(0)
  done

let test_blif_offset_cover () =
  (* cover given by its off-set (output column 0) *)
  let text = ".model f\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n" in
  let g = Blif.of_string text in
  for m = 0 to 3 do
    let a = m land 1 = 1 and b = m land 2 = 2 in
    check_bool "nand" (not (a && b)) (Mig.eval g [| a; b |]).(0)
  done

let test_blif_constants_and_continuation () =
  let text =
    ".model k\n.inputs a\n.outputs one zero pass\n.names one\n1\n.names zero\n\
     .names a \\\npass\n1 1\n.end\n"
  in
  let g = Blif.of_string text in
  let out = Mig.eval g [| true |] in
  Alcotest.(check (array bool)) "consts + buffer" [| true; false; true |] out

let test_blif_errors () =
  check_bool "latch rejected" true
    (try ignore (Blif.of_string ".model x\n.latch a b\n.end\n"); false
     with Failure _ -> true);
  check_bool "arity mismatch rejected" true
    (try ignore (Blif.of_string ".model x\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n"); false
     with Failure _ -> true);
  check_bool "undriven output rejected" true
    (try ignore (Blif.of_string ".model x\n.inputs a\n.outputs y\n.end\n"); false
     with Failure _ -> true)

let blif_roundtrip =
  QCheck.Test.make ~count:40 ~name:"blif write/read roundtrip preserves function"
    QCheck.small_int (fun seed ->
      let g = random_mig seed in
      let g' = Blif.of_string (Blif.to_string g) in
      Mig.num_inputs g' = Mig.num_inputs g
      && Mig.num_outputs g' = Mig.num_outputs g
      && Array.for_all2 Tt.equal (Mig.output_tables g) (Mig.output_tables g'))

let test_blif_roundtrip_adder () =
  let g = Plim_benchgen.Arith.adder ~width:4 in
  let g' = Blif.of_string (Blif.to_string ~model:"adder4" g) in
  check_bool "adder roundtrip" true
    (Array.for_all2 Tt.equal (Mig.output_tables g) (Mig.output_tables g'))

(* --- generator ----------------------------------------------------------- *)

let test_gen_counts () =
  let g = Mig_gen.random ~seed:1 ~num_inputs:7 ~num_nodes:50 ~num_outputs:5 () in
  check_int "inputs" 7 (Mig.num_inputs g);
  check_int "outputs" 5 (Mig.num_outputs g);
  check_bool "about the right size" true (Mig.size g > 30 && Mig.size g <= 50)

let test_gen_deterministic () =
  let build () =
    Mig_io.to_string (Mig_gen.random ~seed:123 ~num_inputs:6 ~num_nodes:40 ~num_outputs:3 ())
  in
  Alcotest.(check string) "same seed, same graph" (build ()) (build ())

let test_gen_distinct_seeds () =
  let build seed =
    Mig_io.to_string (Mig_gen.random ~seed ~num_inputs:6 ~num_nodes:40 ~num_outputs:3 ())
  in
  check_bool "different seeds differ" true (build 1 <> build 2)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "mig"
    [ ( "construction",
        [ Alcotest.test_case "signals" `Quick test_signals;
          Alcotest.test_case "omega.M on create" `Quick test_omega_m_on_create;
          Alcotest.test_case "structural hashing" `Quick test_strash;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "derived gates" `Quick test_gate_semantics;
          Alcotest.test_case "duplicate input" `Quick test_duplicate_input ] );
      ( "inspection",
        [ Alcotest.test_case "levels/depth" `Quick test_levels_depth;
          Alcotest.test_case "fanouts/reachability" `Quick test_fanouts_reachability;
          Alcotest.test_case "cleanup" `Quick test_cleanup;
          Alcotest.test_case "complemented edges" `Quick test_complemented_edges ] );
      ( "evaluation",
        [ qc eval_matches_tables; qc map_rebuild_preserves ] );
      ( "io",
        [ Alcotest.test_case "roundtrip (manual)" `Quick test_io_roundtrip_manual;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "dot export" `Quick test_dot;
          qc io_roundtrip ] );
      ( "blif",
        [ Alcotest.test_case "parse mux" `Quick test_blif_parse;
          Alcotest.test_case "off-set cover" `Quick test_blif_offset_cover;
          Alcotest.test_case "constants/continuation" `Quick
            test_blif_constants_and_continuation;
          Alcotest.test_case "errors" `Quick test_blif_errors;
          Alcotest.test_case "adder roundtrip" `Quick test_blif_roundtrip_adder;
          qc blif_roundtrip ] );
      ( "generator",
        [ Alcotest.test_case "counts" `Quick test_gen_counts;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "seed-sensitive" `Quick test_gen_distinct_seeds ] ) ]
