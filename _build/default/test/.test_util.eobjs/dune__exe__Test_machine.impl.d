test/test_machine.ml: Alcotest Array List Plim_benchgen Plim_core Plim_isa Plim_machine Plim_rram Plim_util Printf
