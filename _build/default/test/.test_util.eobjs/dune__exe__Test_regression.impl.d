test/test_regression.ml: Alcotest Hashtbl List Plim_benchgen Plim_core Plim_isa Plim_stats Printf
