test/test_integration.ml: Alcotest Array List Plim_benchgen Plim_core Plim_isa Plim_machine Plim_mig Plim_rewrite Plim_rram Plim_stats Printf
