test/test_rewrite.ml: Alcotest Array Plim_benchgen Plim_logic Plim_mig Plim_rewrite Printf QCheck QCheck_alcotest
