test/test_core.ml: Alcotest Array List Plim_benchgen Plim_core Plim_isa Plim_logic Plim_mig Plim_stats Printf QCheck QCheck_alcotest
