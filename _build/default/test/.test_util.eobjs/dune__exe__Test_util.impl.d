test/test_util.ml: Alcotest Array Gen Hashtbl List Plim_stats Plim_util QCheck QCheck_alcotest
