test/test_rram.ml: Alcotest Array List Plim_isa Plim_rram Printf QCheck QCheck_alcotest
