test/test_logic.ml: Alcotest Array List Plim_logic Plim_mig Printf QCheck QCheck_alcotest
