test/test_isa.ml: Alcotest Array List Plim_isa Printf QCheck QCheck_alcotest
