test/test_mig.ml: Alcotest Array Plim_benchgen Plim_logic Plim_mig QCheck QCheck_alcotest String
