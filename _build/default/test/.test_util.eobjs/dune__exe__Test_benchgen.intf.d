test/test_benchgen.mli:
