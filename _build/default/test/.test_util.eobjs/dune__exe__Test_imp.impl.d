test/test_imp.ml: Alcotest Array List Plim_benchgen Plim_core Plim_imp Plim_isa Plim_mig Plim_rram Plim_stats Printf QCheck QCheck_alcotest
