test/test_benchgen.ml: Alcotest Array Float List Plim_benchgen Plim_logic Plim_mig Plim_util Printf QCheck QCheck_alcotest
