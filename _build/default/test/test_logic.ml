module Tt = Plim_logic.Truth_table

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tt_equal = Alcotest.testable Tt.pp Tt.equal

(* --- basic operations ------------------------------------------------- *)

let test_consts () =
  check_int "ones of const true (3 vars)" 8 (Tt.count_ones (Tt.const_ 3 true));
  check_int "ones of const false" 0 (Tt.count_ones (Tt.const_ 3 false));
  check_bool "get" true (Tt.get (Tt.const_ 2 true) 3)

let test_var_patterns () =
  let x0 = Tt.var 3 0 in
  for m = 0 to 7 do
    check_bool "x0 pattern" (m land 1 = 1) (Tt.get x0 m)
  done;
  let x2 = Tt.var 3 2 in
  for m = 0 to 7 do
    check_bool "x2 pattern" (m land 4 = 4) (Tt.get x2 m)
  done

let test_var_large () =
  (* variable index >= 6 exercises the whole-word pattern path *)
  let x7 = Tt.var 9 7 in
  for _ = 0 to 0 do
    check_bool "bit 128" false (Tt.get x7 0);
    check_bool "bit with x7 set" true (Tt.get x7 128);
    check_bool "next period" false (Tt.get x7 256)
  done;
  check_int "balanced" 256 (Tt.count_ones x7)

let test_ops_vs_bool () =
  let n = 3 in
  let a = Tt.var n 0 and b = Tt.var n 1 and c = Tt.var n 2 in
  let expect name f tt =
    for m = 0 to 7 do
      let va = m land 1 = 1 and vb = m land 2 = 2 and vc = m land 4 = 4 in
      check_bool (Printf.sprintf "%s @%d" name m) (f va vb vc) (Tt.get tt m)
    done
  in
  expect "and" (fun x y _ -> x && y) (Tt.and_ a b);
  expect "or" (fun x y _ -> x || y) (Tt.or_ a b);
  expect "xor" (fun x y _ -> x <> y) (Tt.xor a b);
  expect "not" (fun x _ _ -> not x) (Tt.not_ a);
  expect "maj" (fun x y z -> (x && y) || (x && z) || (y && z)) (Tt.maj a b c);
  expect "mux" (fun s t e -> if s then t else e) (Tt.mux a b c)

let test_eval () =
  let f = Tt.of_fun 4 (fun v -> v.(0) && not v.(3)) in
  check_bool "eval" true (Tt.eval f [| true; false; true; false |]);
  check_bool "eval" false (Tt.eval f [| true; false; true; true |])

let test_arity_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Truth_table: arity mismatch")
    (fun () -> ignore (Tt.and_ (Tt.var 2 0) (Tt.var 3 0)))

let test_bounds () =
  Alcotest.check_raises "var oob" (Invalid_argument "Truth_table.var: index out of range")
    (fun () -> ignore (Tt.var 3 3));
  Alcotest.check_raises "too many vars"
    (Invalid_argument "Truth_table: 17 variables unsupported") (fun () ->
      ignore (Tt.const_ 17 false))

let test_to_hex () =
  Alcotest.(check string) "xor hex" "0000000000000006" (Tt.to_hex (Tt.xor (Tt.var 2 0) (Tt.var 2 1)))

(* --- the MIG algebra as truth-table identities ------------------------ *)
(* These validate the algebra the rewriting engine relies on (Section
   III-A1 of the paper). *)

let v n i = Tt.var n i

let test_commutativity () =
  let n = 3 in
  let x = v n 0 and y = v n 1 and z = v n 2 in
  Alcotest.check tt_equal "<xyz>=<yxz>" (Tt.maj x y z) (Tt.maj y x z);
  Alcotest.check tt_equal "<xyz>=<zyx>" (Tt.maj x y z) (Tt.maj z y x)

let test_majority_axiom () =
  let n = 2 in
  let x = v n 0 and z = v n 1 in
  Alcotest.check tt_equal "<xxz>=x" x (Tt.maj x x z);
  Alcotest.check tt_equal "<x!xz>=z" z (Tt.maj x (Tt.not_ x) z)

let test_associativity_axiom () =
  let n = 4 in
  let x = v n 0 and u = v n 1 and y = v n 2 and z = v n 3 in
  Alcotest.check tt_equal "<xu<yuz>>=<zu<yux>>"
    (Tt.maj x u (Tt.maj y u z))
    (Tt.maj z u (Tt.maj y u x))

let test_distributivity_axiom () =
  let n = 5 in
  let x = v n 0 and y = v n 1 and u = v n 2 and w = v n 3 and z = v n 4 in
  Alcotest.check tt_equal "<xy<uwz>>=<<xyu><xyw>z>"
    (Tt.maj x y (Tt.maj u w z))
    (Tt.maj (Tt.maj x y u) (Tt.maj x y w) z)

let test_inverter_propagation_axiom () =
  let n = 3 in
  let x = v n 0 and y = v n 1 and z = v n 2 in
  Alcotest.check tt_equal "!<xyz>=<!x!y!z>"
    (Tt.not_ (Tt.maj x y z))
    (Tt.maj (Tt.not_ x) (Tt.not_ y) (Tt.not_ z))

let test_complementary_associativity_axiom () =
  let n = 4 in
  let x = v n 0 and u = v n 1 and y = v n 2 and z = v n 3 in
  (* <xu<y!uz>> = <xu<yxz>> *)
  Alcotest.check tt_equal "psi.c (inner !u -> x)"
    (Tt.maj x u (Tt.maj y (Tt.not_ u) z))
    (Tt.maj x u (Tt.maj y x z));
  (* <xu<y!xz>> = <xu<yuz>> *)
  Alcotest.check tt_equal "psi.c (inner !x -> u)"
    (Tt.maj x u (Tt.maj y (Tt.not_ x) z))
    (Tt.maj x u (Tt.maj y u z))

let test_relevance_axiom () =
  (* <xyz> = <xy z[x <- !y]> is not implemented, but the two-operand
     inverter forms used by Omega.I(R->L)(1-3) are: *)
  let n = 3 in
  let x = v n 0 and y = v n 1 and z = v n 2 in
  Alcotest.check tt_equal "<!x!yz> = !<xy!z>"
    (Tt.maj (Tt.not_ x) (Tt.not_ y) z)
    (Tt.not_ (Tt.maj x y (Tt.not_ z)))

let of_fun_matches_ops =
  QCheck.Test.make ~count:100 ~name:"of_fun/eval roundtrip"
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (n, salt) ->
      let f v =
        let h = Array.fold_left (fun acc b -> (acc * 2) + if b then 1 else 0) salt v in
        h mod 3 = 0
      in
      let tt = Tt.of_fun n f in
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let v = Array.init n (fun i -> (m lsr i) land 1 = 1) in
        if Tt.eval tt v <> f v then ok := false
      done;
      !ok)

let demorgan =
  QCheck.Test.make ~count:100 ~name:"De Morgan on random variable pairs"
    QCheck.(triple (int_range 2 10) (int_range 0 9) (int_range 0 9))
    (fun (n, i, j) ->
      QCheck.assume (i < n && j < n);
      let a = Tt.var n i and b = Tt.var n j in
      Tt.equal (Tt.not_ (Tt.and_ a b)) (Tt.or_ (Tt.not_ a) (Tt.not_ b)))

(* --- BDDs -------------------------------------------------------------- *)

module Bdd = Plim_logic.Bdd

let test_bdd_ops_vs_truth_table () =
  let n = 4 in
  let man = Bdd.manager ~num_vars:n () in
  let bv = Array.init n (Bdd.var man) in
  let tv = Array.init n (Tt.var n) in
  let pairs =
    [ (Bdd.and_ man bv.(0) bv.(1), Tt.and_ tv.(0) tv.(1));
      (Bdd.or_ man bv.(0) bv.(2), Tt.or_ tv.(0) tv.(2));
      (Bdd.xor man bv.(1) bv.(3), Tt.xor tv.(1) tv.(3));
      (Bdd.not_ man bv.(2), Tt.not_ tv.(2));
      (Bdd.maj man bv.(0) bv.(1) bv.(2), Tt.maj tv.(0) tv.(1) tv.(2));
      (Bdd.ite man bv.(3) bv.(0) bv.(1), Tt.mux tv.(3) tv.(0) tv.(1)) ]
  in
  List.iteri
    (fun k (b, t) ->
      for m = 0 to 15 do
        let v = Array.init n (fun i -> (m lsr i) land 1 = 1) in
        check_bool (Printf.sprintf "op %d @%d" k m) (Tt.eval t v) (Bdd.eval man b v)
      done)
    pairs

let test_bdd_canonicity () =
  let man = Bdd.manager ~num_vars:3 () in
  let a = Bdd.var man 0 and b = Bdd.var man 1 and c = Bdd.var man 2 in
  (* two syntactically different constructions of the same function *)
  let f1 = Bdd.or_ man (Bdd.and_ man a b) (Bdd.and_ man (Bdd.not_ man a) c) in
  let f2 = Bdd.ite man a b c in
  check_bool "canonical" true (Bdd.equal f1 f2);
  check_bool "tautology is true" true
    (Bdd.equal (Bdd.or_ man a (Bdd.not_ man a)) (Bdd.true_ man));
  check_bool "contradiction is false" true
    (Bdd.equal (Bdd.and_ man a (Bdd.not_ man a)) (Bdd.false_ man));
  check_bool "const" true (Bdd.is_const (Bdd.true_ man))

let test_bdd_order () =
  (* adder-style function: interleaved order keeps it small, the naive
     order blows up *)
  let width = 10 in
  let carry_bdd order =
    let man = Bdd.manager ?order ~num_vars:(2 * width) () in
    let carry = ref (Bdd.false_ man) in
    for i = 0 to width - 1 do
      let a = Bdd.var man i and b = Bdd.var man (width + i) in
      carry := Bdd.maj man a b !carry
    done;
    Bdd.size man !carry
  in
  let natural = carry_bdd None in
  let interleaved = carry_bdd (Some (Bdd.interleave 2 width)) in
  check_bool
    (Printf.sprintf "interleaving helps (%d < %d)" interleaved natural)
    true
    (interleaved < natural);
  check_bool "interleaved carry is linear" true (interleaved <= 3 * width)

let test_bdd_validation () =
  Alcotest.check_raises "bad order" (Invalid_argument "Bdd.manager: order is not a permutation")
    (fun () -> ignore (Bdd.manager ~order:[| 0; 0 |] ~num_vars:2 ()));
  let man = Bdd.manager ~num_vars:2 () in
  Alcotest.check_raises "var range" (Invalid_argument "Bdd.var: out of range") (fun () ->
      ignore (Bdd.var man 2))

let bdd_matches_tt =
  QCheck.Test.make ~count:60 ~name:"random MIG: BDD agrees with truth table"
    QCheck.small_int
    (fun seed ->
      let g =
        Plim_mig.Mig_gen.random ~seed ~num_inputs:6 ~num_nodes:40 ~num_outputs:3 ()
      in
      let man, bdds = Plim_mig.Mig_bdd.output_bdds g in
      let tts = Plim_mig.Mig.output_tables g in
      let ok = ref true in
      for m = 0 to 63 do
        let v = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
        Array.iteri
          (fun o b -> if Bdd.eval man b v <> Tt.eval tts.(o) v then ok := false)
          bdds
      done;
      !ok)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "logic"
    [ ( "truth-table",
        [ Alcotest.test_case "constants" `Quick test_consts;
          Alcotest.test_case "var patterns" `Quick test_var_patterns;
          Alcotest.test_case "var >= 6" `Quick test_var_large;
          Alcotest.test_case "ops vs bool" `Quick test_ops_vs_bool;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "to_hex" `Quick test_to_hex;
          qc of_fun_matches_ops;
          qc demorgan ] );
      ( "mig-algebra",
        [ Alcotest.test_case "commutativity" `Quick test_commutativity;
          Alcotest.test_case "majority" `Quick test_majority_axiom;
          Alcotest.test_case "associativity" `Quick test_associativity_axiom;
          Alcotest.test_case "distributivity" `Quick test_distributivity_axiom;
          Alcotest.test_case "inverter propagation" `Quick test_inverter_propagation_axiom;
          Alcotest.test_case "complementary associativity" `Quick
            test_complementary_associativity_axiom;
          Alcotest.test_case "two-complement inverter form" `Quick test_relevance_axiom ] );
      ( "bdd",
        [ Alcotest.test_case "ops vs truth table" `Quick test_bdd_ops_vs_truth_table;
          Alcotest.test_case "canonicity" `Quick test_bdd_canonicity;
          Alcotest.test_case "variable order matters" `Quick test_bdd_order;
          Alcotest.test_case "validation" `Quick test_bdd_validation;
          qc bdd_matches_tt ] ) ]
