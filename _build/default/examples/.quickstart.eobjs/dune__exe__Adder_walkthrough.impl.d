examples/adder_walkthrough.ml: List Plim_benchgen Plim_core Plim_isa Plim_mig Plim_stats Printf
