examples/quickstart.ml: Array Format List Plim_core Plim_isa Plim_machine Plim_mig Plim_rram Plim_stats Printf String
