examples/quickstart.mli:
