examples/fig2_blocked.ml: Plim_core Plim_isa Plim_mig Plim_stats Printf
