examples/adder_walkthrough.mli:
