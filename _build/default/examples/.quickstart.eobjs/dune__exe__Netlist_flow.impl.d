examples/netlist_flow.ml: Array Format Plim_core Plim_isa Plim_machine Plim_mig Plim_stats Printf
