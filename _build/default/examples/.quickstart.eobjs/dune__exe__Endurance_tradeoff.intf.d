examples/endurance_tradeoff.mli:
