examples/fig1_unbalanced.mli:
