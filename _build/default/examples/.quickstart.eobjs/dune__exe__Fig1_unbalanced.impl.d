examples/fig1_unbalanced.ml: Array Plim_core Plim_isa Plim_mig Plim_stats Printf
