examples/endurance_tradeoff.ml: Array List Plim_benchgen Plim_core Plim_isa Plim_rewrite Plim_stats Printf Sys
