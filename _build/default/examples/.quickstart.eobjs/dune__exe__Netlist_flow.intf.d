examples/netlist_flow.mli:
