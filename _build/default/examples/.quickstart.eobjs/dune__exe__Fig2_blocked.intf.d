examples/fig2_blocked.mli:
