(* A downstream-user flow: start from a BLIF netlist (the format the EPFL
   benchmarks ship in), compile it for PLiM, and size the deployment —
   memory footprint with the program stored in the array, energy per run,
   and expected lifetime on a real endurance budget.

     dune exec examples/netlist_flow.exe *)

module Mig = Plim_mig.Mig
module Blif = Plim_mig.Blif
module Pipeline = Plim_core.Pipeline
module Verify = Plim_core.Verify
module Program = Plim_isa.Program
module Encoding = Plim_isa.Encoding
module Energy = Plim_machine.Energy
module Campaign = Plim_machine.Campaign
module Controller = Plim_machine.Plim_controller
module Lifetime = Plim_stats.Lifetime

(* a 4-bit combinational ALU slice in plain BLIF: op selects between
   add-like (majority carry) and nand behaviour *)
let netlist =
  {blif|
.model alu_slice
.inputs op a0 a1 b0 b1
.outputs y0 y1 carry
# half adder on bit 0
.names a0 b0 s0
10 1
01 1
.names a0 b0 c0
11 1
# full adder on bit 1
.names a1 b1 c0 s1
100 1
010 1
001 1
111 1
.names a1 b1 c0 carry
11- 1
1-1 1
-11 1
# nand alternative
.names a0 b0 n0
11 0
.names a1 b1 n1
11 0
# op mux
.names op s0 n0 y0
11- 1
0-1 1
.names op s1 n1 y1
11- 1
0-1 1
.end
|blif}

let () =
  let g = Blif.of_string netlist in
  Printf.printf "parsed BLIF: %d inputs, %d outputs, %d majority nodes\n\n"
    (Mig.num_inputs g) (Mig.num_outputs g) (Mig.size g);
  let r = Pipeline.compile (Pipeline.with_cap 10 Pipeline.endurance_full) g in
  let p = r.Pipeline.program in
  (match Verify.check_exhaustive g p with
  | Ok () -> print_endline "exhaustive verification against the netlist: OK"
  | Error e -> failwith e);
  Printf.printf "\nprogram        : %d RM3 instructions, %d devices\n" (Program.length p)
    (Program.num_cells p);
  Printf.printf "footprint      : %s\n"
    (Format.asprintf "%a" Encoding.pp_footprint (Encoding.footprint p));
  let inputs = Array.to_list (Array.map (fun (n, _) -> (n, true)) p.Program.pi_cells) in
  let _, xbar, stats = Controller.run p ~inputs in
  Printf.printf "energy / run   : %s\n"
    (Format.asprintf "%a" Energy.pp_report (Energy.of_run xbar stats));
  let lt = Lifetime.estimate ~endurance:1e10 (Program.static_write_counts p) in
  Printf.printf "lifetime bound : %s\n" (Format.asprintf "%a" Lifetime.pp lt);
  let campaign = Campaign.run_until_failure ~endurance:5_000 ~max_executions:10_000 p in
  Printf.printf
    "wear-out check : %d executions on a 5000-write crossbar (%s)\n"
    campaign.Campaign.executions_completed
    (if campaign.Campaign.failed then "first device failed" else "budget never reached")
