(* Quickstart: build a majority-inverter graph, compile it for the PLiM
   computer with full endurance management, inspect the program, run it on
   the RRAM crossbar machine, and verify it against the MIG semantics.

     dune exec examples/quickstart.exe *)

module Mig = Plim_mig.Mig
module Pipeline = Plim_core.Pipeline
module Verify = Plim_core.Verify
module Program = Plim_isa.Program
module Asm = Plim_isa.Asm
module Controller = Plim_machine.Plim_controller
module Stats = Plim_stats.Stats

let () =
  (* 1. describe a Boolean function as a MIG: a full adder *)
  let g = Mig.create () in
  let a = Mig.add_input g "a" in
  let b = Mig.add_input g "b" in
  let cin = Mig.add_input g "cin" in
  let cout = Mig.maj g a b cin in
  let sum = Mig.xor g (Mig.xor g a b) cin in
  Mig.add_output g "sum" sum;
  Mig.add_output g "cout" cout;
  Printf.printf "MIG: %d inputs, %d outputs, %d majority nodes, depth %d\n\n"
    (Mig.num_inputs g) (Mig.num_outputs g) (Mig.size g) (Mig.depth g);

  (* 2. compile with the paper's full endurance management *)
  let result = Pipeline.compile Pipeline.endurance_full g in
  let program = result.Pipeline.program in
  Printf.printf "compiled with %s: %d RM3 instructions, %d RRAM devices\n"
    (Pipeline.config_name Pipeline.endurance_full)
    (Program.length program) (Program.num_cells program);
  Printf.printf "write traffic: %s\n\n"
    (Format.asprintf "%a" Stats.pp_summary result.Pipeline.write_summary);

  (* 3. look at the generated PLiM assembly *)
  print_string (Asm.to_string program);

  (* 4. execute on the behavioural RRAM crossbar *)
  let outputs, xbar, stats =
    Controller.run program ~inputs:[ ("a", true); ("b", false); ("cin", true) ]
  in
  Printf.printf "\nmachine run (a=1 b=0 cin=1): %s  [%d instructions, %d cycles]\n"
    (String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) outputs))
    stats.Controller.instructions stats.Controller.cycles;
  Printf.printf "per-cell write counts: %s\n"
    (String.concat " "
       (Array.to_list (Array.map string_of_int (Plim_rram.Crossbar.write_counts xbar))));

  (* 5. verify the program against the MIG on all 8 input vectors *)
  match Verify.check_exhaustive g program with
  | Ok () -> print_endline "exhaustive verification: OK"
  | Error e -> Printf.printf "verification FAILED: %s\n" e
