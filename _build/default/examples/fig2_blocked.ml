(* Figure 2 of the paper: blocked RRAMs.

   Node A feeds targets several levels up, so the device holding its value
   stays blocked while the devices of B and C are released and rewritten
   again — unbalanced wear caused purely by scheduling.  The paper's
   endurance-aware node selection (Algorithm 3) computes nodes with the
   smallest fanout level index first, postponing long-storage nodes like A.

     dune exec examples/fig2_blocked.exe *)

module Mig = Plim_mig.Mig
module Pipeline = Plim_core.Pipeline
module Select = Plim_core.Select
module Program = Plim_isa.Program
module Stats = Plim_stats.Stats

(* The paper's example, tiled [copies] times so the statistics are visible:
   in each tile, node A is computed from the tile's own input and then
   waits until the root G consumes it, while B..F release their devices
   quickly.  A per-tile input keeps the tiles structurally distinct. *)
let fig2_mig copies =
  let g = Mig.create () in
  let x0 = Mig.add_input g "x0" in
  let x1 = Mig.add_input g "x1" in
  let x2 = Mig.add_input g "x2" in
  for k = 0 to copies - 1 do
    let t = Mig.add_input g (Printf.sprintf "t%d" k) in
    let a = Mig.maj g x0 (Mig.not_ x1) t in             (* long-waiting node A *)
    let b = Mig.maj g x0 x2 (Mig.not_ t) in
    let c = Mig.maj g x1 (Mig.not_ x2) t in
    let d = Mig.maj g b c (Mig.not_ x0) in
    let e = Mig.maj g b (Mig.not_ c) x1 in
    let f = Mig.maj g d e (Mig.not_ x2) in
    let root = Mig.maj g a f t in                       (* A consumed last *)
    Mig.add_output g (Printf.sprintf "g%d" k) root
  done;
  g

let () =
  let g = fig2_mig 40 in
  Printf.printf "Fig. 2 MIG (40 tiles): %d nodes, depth %d\n\n" (Mig.size g) (Mig.depth g);
  let show name selection =
    let config = { Pipeline.min_write with Pipeline.selection } in
    let r = Pipeline.compile config g in
    Printf.printf "%-34s #I=%-4d #R=%-3d writes min/max %d/%d stdev %.2f\n" name
      (Program.length r.Pipeline.program)
      (Program.num_cells r.Pipeline.program)
      r.Pipeline.write_summary.Stats.min r.Pipeline.write_summary.Stats.max
      r.Pipeline.write_summary.Stats.stdev
  in
  show "in-order (naive scheduling)" Select.In_order;
  show "release-first (DAC'16 [21])" Select.Release_first;
  show "level-first (Algorithm 3)" Select.Level_first;
  print_newline ();
  print_endline
    "Level-first scheduling computes the short-storage nodes (B, C, D, E, F)\n\
     before the long-waiting node A, so devices are released and reused at a\n\
     similar rhythm and the write distribution tightens.  As the paper notes,\n\
     blocked devices cannot be eliminated entirely: the sequential PLiM always\n\
     keeps a waiting list of devices blocked until the root is computed."
