(* Figure 1 of the paper: a MIG whose fanout structure forces the compiler
   to rewrite the same RRAM device over and over.

   Node B's two other children have multiple fanouts, so the device
   holding node A (the only single-fanout child) is chosen as the RM3
   destination "regardless of its current number of writes"; the same
   happens again when C consumes B's device — an in-place overwrite chain.

     dune exec examples/fig1_unbalanced.exe *)

module Mig = Plim_mig.Mig
module Pipeline = Plim_core.Pipeline
module Program = Plim_isa.Program
module I = Plim_isa.Instruction

(* A chain where each node's only single-fanout child is the previous
   chain node: the classic Fig. 1 situation, extended to [depth] so the
   effect is measurable.  Adjacent levels use disjoint input pairs so no
   algebraic absorption can legally shorten the chain. *)
let chain_mig depth =
  let g = Mig.create () in
  let inputs = Array.init 7 (fun i -> Mig.add_input g (Printf.sprintf "x%d" i)) in
  let rec grow node level =
    if level = depth then node
    else begin
      let a = inputs.((level * 2) mod 7) in
      let b = inputs.(((level * 2) + 3) mod 7) in
      grow (Mig.maj g a (Mig.not_ b) node) (level + 1)
    end
  in
  let root = grow (Mig.maj g inputs.(0) inputs.(1) inputs.(2)) 1 in
  Mig.add_output g "f" root;
  g

let () =
  let g = chain_mig 24 in
  Printf.printf "Fig. 1 chain MIG: %d nodes, depth %d\n\n" (Mig.size g) (Mig.depth g);
  let show name config =
    let r = Pipeline.compile config g in
    let writes = Program.static_write_counts r.Pipeline.program in
    let sorted = Array.copy writes in
    Array.sort (fun a b -> compare b a) sorted;
    Printf.printf "%-28s #I=%-3d #R=%-2d stdev=%5.2f  hottest devices:" name
      (Program.length r.Pipeline.program)
      (Program.num_cells r.Pipeline.program)
      r.Pipeline.write_summary.Plim_stats.Stats.stdev;
    Array.iteri (fun i w -> if i < 5 then Printf.printf " %d" w) sorted;
    print_newline ()
  in
  show "naive" Pipeline.naive;
  show "endurance (uncapped)" Pipeline.endurance_full;
  show "endurance + cap 8" (Pipeline.with_cap 8 Pipeline.endurance_full);
  show "endurance + cap 4" (Pipeline.with_cap 4 Pipeline.endurance_full);
  print_newline ();
  print_endline
    "The in-place overwrite chain concentrates one write per level on a single\n\
     device (hottest-device column ~ chain depth).  As the paper observes, this\n\
     'cannot be controlled without extra costs': only the maximum write count\n\
     strategy bounds it, paying instructions and devices (#I/#R grow as the cap\n\
     tightens while the write distribution flattens)."
