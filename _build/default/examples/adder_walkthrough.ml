(* End-to-end walkthrough on the 128-bit adder benchmark: all five Table-I
   configurations side by side, with functional verification on the
   crossbar machine and a lifetime interpretation.

     dune exec examples/adder_walkthrough.exe *)

module Mig = Plim_mig.Mig
module Suite = Plim_benchgen.Suite
module Pipeline = Plim_core.Pipeline
module Verify = Plim_core.Verify
module Program = Plim_isa.Program
module Stats = Plim_stats.Stats
module Lifetime = Plim_stats.Lifetime

let () =
  let spec = Suite.find "adder" in
  let g = Suite.build_cached spec in
  Printf.printf "benchmark %s: %d PIs, %d POs, %d AIG nodes\n\n" spec.Suite.name
    (Mig.num_inputs g) (Mig.num_outputs g) (Mig.size g);
  Printf.printf "%-24s %8s %6s %6s %6s %8s %14s  %s\n" "configuration" "#I" "#R" "min"
    "max" "stdev" "lifetime" "verified";
  let naive_stdev = ref 0.0 in
  List.iter
    (fun config ->
      let r = Pipeline.compile config g in
      let p = r.Pipeline.program in
      let s = r.Pipeline.write_summary in
      if config = Pipeline.naive then naive_stdev := s.Stats.stdev;
      let life =
        (Lifetime.estimate ~endurance:1e10 (Program.static_write_counts p))
          .Lifetime.executions_to_first_failure
      in
      let verified =
        match Verify.check_random ~trials:3 ~seed:7 g p with
        | Ok () -> "ok"
        | Error e -> "FAIL " ^ e
      in
      Printf.printf "%-24s %8d %6d %6d %6d %8.2f %11.2e  %s\n"
        (Pipeline.config_name config) (Program.length p) (Program.num_cells p) s.Stats.min
        s.Stats.max s.Stats.stdev life verified)
    [ Pipeline.naive; Pipeline.dac16; Pipeline.min_write; Pipeline.endurance_rewrite;
      Pipeline.endurance_full; Pipeline.with_cap 10 Pipeline.endurance_full ];
  Printf.printf
    "\nlifetime = executions until the most-written device exhausts a 1e10-write\n\
     endurance budget; balancing the traffic multiplies it by orders of magnitude.\n"
