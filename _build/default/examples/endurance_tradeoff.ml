(* The Table-III trade-off on one benchmark: sweep the maximum write count
   strategy's cap and watch write balance trade against instructions and
   devices (latency and area).

     dune exec examples/endurance_tradeoff.exe [benchmark] *)

module Suite = Plim_benchgen.Suite
module Recipe = Plim_rewrite.Recipe
module Pipeline = Plim_core.Pipeline
module Program = Plim_isa.Program
module Stats = Plim_stats.Stats

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "sin" in
  let spec = Suite.find name in
  let g = Recipe.run Recipe.Algorithm2 ~effort:5 (Suite.build_cached spec) in
  let uncapped = Pipeline.compile_rewritten Pipeline.endurance_full g in
  Printf.printf "benchmark %s — full endurance management, sweeping the write cap\n\n"
    name;
  Printf.printf "%-10s %9s %8s %9s %9s %9s\n" "cap" "#I" "#R" "min" "max" "stdev";
  let row label (r : Pipeline.result) =
    let s = r.Pipeline.write_summary in
    Printf.printf "%-10s %9d %8d %9d %9d %9.2f\n" label
      (Program.length r.Pipeline.program)
      (Program.num_cells r.Pipeline.program)
      s.Stats.min s.Stats.max s.Stats.stdev
  in
  List.iter
    (fun cap ->
      row (string_of_int cap)
        (Pipeline.compile_rewritten (Pipeline.with_cap cap Pipeline.endurance_full) g))
    [ 5; 10; 20; 50; 100; 200 ];
  row "none" uncapped;
  print_newline ();
  print_endline
    "Tightening the cap retires devices early: instructions and devices grow\n\
     (latency/area penalty) while the maximum and deviation of the write counts\n\
     shrink — 'almost any desired write traffic is accessible' (Section III-B)."
