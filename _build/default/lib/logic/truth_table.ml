type t = {
  n : int;
  bits : int64 array; (* 2^n bits, 64 per word; unused high bits are zero *)
}

let max_vars = 16

let words_for n = max 1 ((1 lsl n) + 63) / 64 |> max 1

let num_minterms n = 1 lsl n

(* Mask for the valid bits of the last word (when 2^n < 64). *)
let tail_mask n =
  let m = num_minterms n in
  if m >= 64 then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L m) 1L

let check_vars n =
  if n < 0 || n > max_vars then
    invalid_arg (Printf.sprintf "Truth_table: %d variables unsupported" n)

let num_vars t = t.n

let const_ n b =
  check_vars n;
  let w = words_for n in
  let fill = if b then tail_mask n else 0L in
  let bits = Array.make w 0L in
  if b then begin
    Array.fill bits 0 w Int64.minus_one;
    bits.(w - 1) <- fill
  end;
  { n; bits }

(* Periodic pattern of variable [i]: blocks of 2^i zeros then 2^i ones. *)
let var n i =
  check_vars n;
  if i < 0 || i >= n then invalid_arg "Truth_table.var: index out of range";
  let w = words_for n in
  let bits = Array.make w 0L in
  if i >= 6 then begin
    (* whole words alternate in runs of 2^(i-6) *)
    let run = 1 lsl (i - 6) in
    for word = 0 to w - 1 do
      if (word / run) land 1 = 1 then bits.(word) <- Int64.minus_one
    done
  end
  else begin
    (* within-word periodic pattern *)
    let period = 1 lsl (i + 1) in
    let half = 1 lsl i in
    let pattern = ref 0L in
    for b = 0 to 63 do
      if b mod period >= half then pattern := Int64.logor !pattern (Int64.shift_left 1L b)
    done;
    Array.fill bits 0 w !pattern
  end;
  bits.(w - 1) <- Int64.logand bits.(w - 1) (tail_mask n);
  { n; bits }

let same_arity a b =
  if a.n <> b.n then invalid_arg "Truth_table: arity mismatch"

let map2 f a b =
  same_arity a b;
  { n = a.n; bits = Array.init (Array.length a.bits) (fun i -> f a.bits.(i) b.bits.(i)) }

let not_ a =
  let t = { n = a.n; bits = Array.map Int64.lognot a.bits } in
  let w = Array.length t.bits in
  t.bits.(w - 1) <- Int64.logand t.bits.(w - 1) (tail_mask a.n);
  t

let and_ = map2 Int64.logand
let or_ = map2 Int64.logor
let xor = map2 Int64.logxor

let maj a b c =
  same_arity a b;
  same_arity b c;
  let f x y z =
    Int64.logor
      (Int64.logor (Int64.logand x y) (Int64.logand x z))
      (Int64.logand y z)
  in
  { n = a.n;
    bits = Array.init (Array.length a.bits) (fun i -> f a.bits.(i) b.bits.(i) c.bits.(i)) }

let mux s a b = or_ (and_ s a) (and_ (not_ s) b)

let equal a b = a.n = b.n && Array.for_all2 ( = ) a.bits b.bits

let get t minterm =
  if minterm < 0 || minterm >= num_minterms t.n then
    invalid_arg "Truth_table.get: minterm out of range";
  let word = minterm / 64 and bit = minterm mod 64 in
  Int64.logand (Int64.shift_right_logical t.bits.(word) bit) 1L = 1L

let eval t assignment =
  if Array.length assignment <> t.n then
    invalid_arg "Truth_table.eval: assignment arity mismatch";
  let minterm = ref 0 in
  for i = t.n - 1 downto 0 do
    minterm := (!minterm lsl 1) lor (if assignment.(i) then 1 else 0)
  done;
  get t !minterm

let count_ones t =
  let pop x =
    let c = ref 0 in
    let x = ref x in
    while !x <> 0L do
      c := !c + Int64.to_int (Int64.logand !x 1L);
      x := Int64.shift_right_logical !x 1
    done;
    !c
  in
  Array.fold_left (fun acc w -> acc + pop w) 0 t.bits

let of_fun n f =
  check_vars n;
  let bits = Array.make (words_for n) 0L in
  for m = 0 to num_minterms n - 1 do
    let assignment = Array.init n (fun i -> (m lsr i) land 1 = 1) in
    if f assignment then begin
      let word = m / 64 and bit = m mod 64 in
      bits.(word) <- Int64.logor bits.(word) (Int64.shift_left 1L bit)
    end
  done;
  { n; bits }

let to_hex t =
  let buf = Buffer.create (Array.length t.bits * 16) in
  for i = Array.length t.bits - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "%016Lx" t.bits.(i))
  done;
  Buffer.contents buf

let pp ppf t = Format.fprintf ppf "tt<%d>:%s" t.n (to_hex t)
