(** Packed truth tables for Boolean functions of up to [max_vars] variables.

    A table over [n] variables stores [2^n] output bits in an [int64] array.
    Variable 0 is the fastest-toggling input (bit 0 of the minterm index).
    Used to equivalence-check MIG rewriting and to validate the MIG algebra
    axioms themselves. *)

type t

val max_vars : int
(** 16: tables up to 64 Ki-minterms, ample for exhaustive checks. *)

val num_vars : t -> int

val const_ : int -> bool -> t
(** [const_ n b] is the constant-[b] function of [n] variables. *)

val var : int -> int -> t
(** [var n i] is the projection on variable [i] (0-based) over [n]
    variables.  @raise Invalid_argument if [i >= n] or [n > max_vars]. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val maj : t -> t -> t -> t
(** 3-input majority, the MIG node function. *)

val mux : t -> t -> t -> t
(** [mux s a b] is [if s then a else b]. *)

val equal : t -> t -> bool

val get : t -> int -> bool
(** [get t minterm] is the output for the given input assignment encoded as
    an integer. *)

val eval : t -> bool array -> bool
(** [eval t assignment] with [assignment.(i)] the value of variable [i]. *)

val count_ones : t -> int

val of_fun : int -> (bool array -> bool) -> t
(** [of_fun n f] tabulates [f] exhaustively. *)

val to_hex : t -> string

val pp : Format.formatter -> t -> unit
