(* Classic ROBDD with a unique table and an ITE computed table.
   Terminals: node 0 = false, node 1 = true.  Internal node = (level, lo,
   hi) where [lo] is the cofactor for the decision variable = 0. *)

type t = int

type node = {
  level : int;   (* decision level; terminals use max_int *)
  lo : int;
  hi : int;
}

type man = {
  nvars : int;
  level_of_var : int array;
  var_of_level : int array;
  mutable nodes : node array;
  mutable len : int;
  unique : (int * int * int, int) Hashtbl.t;   (* (level, lo, hi) -> id *)
  ite_cache : (int * int * int, int) Hashtbl.t;
}

let terminal_level = max_int

let manager ?order ~num_vars () =
  if num_vars < 0 then invalid_arg "Bdd.manager: negative variable count";
  let level_of_var =
    match order with
    | None -> Array.init num_vars (fun v -> v)
    | Some order ->
      if Array.length order <> num_vars then
        invalid_arg "Bdd.manager: order length mismatch";
      let seen = Array.make num_vars false in
      Array.iter
        (fun l ->
          if l < 0 || l >= num_vars || seen.(l) then
            invalid_arg "Bdd.manager: order is not a permutation";
          seen.(l) <- true)
        order;
      Array.copy order
  in
  let var_of_level = Array.make (max num_vars 1) 0 in
  Array.iteri (fun v l -> var_of_level.(l) <- v) level_of_var;
  let nodes = Array.make 1024 { level = terminal_level; lo = 0; hi = 0 } in
  nodes.(0) <- { level = terminal_level; lo = 0; hi = 0 };
  nodes.(1) <- { level = terminal_level; lo = 1; hi = 1 };
  { nvars = num_vars;
    level_of_var;
    var_of_level;
    nodes;
    len = 2;
    unique = Hashtbl.create 4096;
    ite_cache = Hashtbl.create 4096 }

let num_vars m = m.nvars

let false_ _ = 0
let true_ _ = 1

let node m id = m.nodes.(id)

let mk m level lo hi =
  if lo = hi then lo
  else begin
    let key = (level, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      if m.len = Array.length m.nodes then begin
        let nodes = Array.make (2 * m.len) m.nodes.(0) in
        Array.blit m.nodes 0 nodes 0 m.len;
        m.nodes <- nodes
      end;
      let id = m.len in
      m.nodes.(id) <- { level; lo; hi };
      m.len <- m.len + 1;
      Hashtbl.add m.unique key id;
      id
  end

let var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Bdd.var: out of range";
  mk m m.level_of_var.(v) 0 1

(* the workhorse: if-then-else with memoisation *)
let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let top =
        min (node m f).level (min (node m g).level (node m h).level)
      in
      let cofactor x branch =
        let n = node m x in
        if n.level = top then (if branch then n.hi else n.lo) else x
      in
      let hi = ite m (cofactor f true) (cofactor g true) (cofactor h true) in
      let lo = ite m (cofactor f false) (cofactor g false) (cofactor h false) in
      let r = mk m top lo hi in
      Hashtbl.replace m.ite_cache key r;
      r
  end

let not_ m f = ite m f 0 1
let and_ m f g = ite m f g 0
let or_ m f g = ite m f 1 g
let xor m f g = ite m f (not_ m g) g
let maj m f g h = ite m f (or_ m g h) (and_ m g h)

let equal (a : t) b = a = b

let is_const t = t < 2

let eval m t assignment =
  if Array.length assignment <> m.nvars then
    invalid_arg "Bdd.eval: assignment arity mismatch";
  let rec go id =
    if id < 2 then id = 1
    else begin
      let n = node m id in
      go (if assignment.(m.var_of_level.(n.level)) then n.hi else n.lo)
    end
  in
  go t

let size m t =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if id >= 2 && not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      let n = node m id in
      go n.lo;
      go n.hi
    end
  in
  go t;
  Hashtbl.length seen

let live_nodes m = m.len

let interleave groups width =
  Array.init (groups * width) (fun v ->
      let g = v / width and i = v mod width in
      (i * groups) + g)
