(** Reduced ordered binary decision diagrams (ROBDDs).

    Complements {!Truth_table} for formal equivalence checking beyond 16
    inputs: MIG rewriting and compiled PLiM programs are verified
    symbolically (see [Plim_core.Verify.check_symbolic]) for circuits
    whose BDDs stay tractable — e.g. 128-bit adders and shifters with an
    interleaved variable order.

    Nodes are hash-consed in a manager, so semantic equality is physical
    equality of node indices. *)

type man
(** A manager fixes the number of variables and their order. *)

type t
(** A node handle, canonical within its manager. *)

val manager : ?order:int array -> num_vars:int -> unit -> man
(** [manager ~num_vars ()] with the identity order.  [order.(v)] is the
    decision level of variable [v] (a permutation of [0..num_vars-1]);
    lower levels decide first.
    @raise Invalid_argument if [order] is not a permutation. *)

val num_vars : man -> int

val false_ : man -> t
val true_ : man -> t
val var : man -> int -> t

val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor : man -> t -> t -> t
val ite : man -> t -> t -> t -> t
val maj : man -> t -> t -> t -> t

val equal : t -> t -> bool
(** Semantic equivalence (canonical representation). *)

val is_const : t -> bool

val eval : man -> t -> bool array -> bool

val size : man -> t -> int
(** Number of decision nodes reachable from [t]. *)

val live_nodes : man -> int
(** Total nodes allocated in the manager (monitoring / table sizing). *)

val interleave : int -> int -> int array
(** [interleave groups width] is the order that interleaves [groups]
    words of [width] bits declared one after the other — the classic
    order that keeps adder/comparator BDDs linear: variable [g*width + i]
    gets level [i*groups + g]. *)
