lib/logic/truth_table.ml: Array Buffer Format Int64 Printf
