lib/logic/bdd.ml: Array Hashtbl
