lib/logic/bdd.mli:
