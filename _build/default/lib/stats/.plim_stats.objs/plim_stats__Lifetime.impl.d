lib/stats/lifetime.ml: Format Stats
