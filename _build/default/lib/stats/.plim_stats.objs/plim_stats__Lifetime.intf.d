lib/stats/lifetime.mli: Format
