lib/stats/csv.mli:
