lib/stats/stats.ml: Array Format Hashtbl List
