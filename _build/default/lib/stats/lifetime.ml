type t = {
  executions_to_first_failure : float;
  ideal_executions : float;
  balance_efficiency : float;
}

let estimate ~endurance writes =
  if endurance <= 0.0 then invalid_arg "Lifetime.estimate: endurance must be positive";
  let s = Stats.summarize writes in
  if s.Stats.max = 0 then
    { executions_to_first_failure = infinity;
      ideal_executions = infinity;
      balance_efficiency = 1.0 }
  else begin
    let first_failure = endurance /. float_of_int s.Stats.max in
    let ideal =
      endurance *. float_of_int s.Stats.count /. float_of_int s.Stats.total
    in
    { executions_to_first_failure = first_failure;
      ideal_executions = ideal;
      balance_efficiency = first_failure /. ideal }
  end

let pp ppf t =
  Format.fprintf ppf "first-failure=%.3e ideal=%.3e efficiency=%.3f"
    t.executions_to_first_failure t.ideal_executions t.balance_efficiency
