(** Lifetime estimation for an RRAM array under repeated execution of one
    compiled PLiM program.

    RRAM endurance is 1e10..1e11 writes per cell (paper, Section I).  A
    program that writes cell [i] [w_i] times per execution can run at most
    [endurance / max_i w_i] times before the most-stressed cell wears out.
    Balancing writes raises that bound toward the ideal
    [endurance * count / total_writes]. *)

type t = {
  executions_to_first_failure : float;
      (** [endurance / max_writes]; infinite when no cell is ever written. *)
  ideal_executions : float;
      (** perfectly-balanced bound: [endurance * cells / total_writes]. *)
  balance_efficiency : float;
      (** ratio of the two above, in (0, 1]; 1 = perfectly level wear. *)
}

val estimate : endurance:float -> int array -> t
(** [estimate ~endurance writes] from per-cell write counts of one
    execution. *)

val pp : Format.formatter -> t -> unit
