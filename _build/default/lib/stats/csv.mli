(** Minimal RFC-4180-style CSV writer used by the bench harness to export
    the reproduced tables for external plotting. *)

val escape : string -> string
(** Quotes fields containing commas, quotes or newlines. *)

val row : string list -> string
(** One line, no trailing newline. *)

val table : header:string list -> string list list -> string

val write_file : string -> header:string list -> string list list -> unit
