module Mig = Plim_mig.Mig
module Crossbar = Plim_rram.Crossbar
module Alloc = Plim_core.Alloc
module Vec = Plim_util.Vec
module Splitmix = Plim_util.Splitmix

type instr =
  | False of int
  | Imply of int * int

type program = {
  instrs : instr array;
  num_cells : int;
  pi_cells : (string * int) array;
  po_cells : (string * int) array;
}

let pp_instr ppf = function
  | False z -> Format.fprintf ppf "FALSE %%%d" z
  | Imply (p, q) -> Format.fprintf ppf "IMP %%%d, %%%d" p q

let length p = Array.length p.instrs
let num_cells p = p.num_cells

let static_write_counts p =
  let counts = Array.make p.num_cells 0 in
  Array.iter
    (function
      | False z -> counts.(z) <- counts.(z) + 1
      | Imply (_, q) -> counts.(q) <- counts.(q) + 1)
    p.instrs;
  counts

(* ------------------------------------------------------------------ *)
(* Compilation state: each computed node can be held in positive and/or
   negative phase; conversions are materialised on demand and memoised. *)

type ctx = {
  g : Mig.t;
  alloc : Alloc.t;
  instrs : instr Vec.t;
  pos : int array;      (* node -> cell holding the value, or -1 *)
  neg : int array;      (* node -> cell holding the complement, or -1 *)
  pending : int array;
  const_cell : int array; (* [| cell of 0; cell of 1 |], -1 until used *)
}

let emit ctx i =
  ignore (Vec.push ctx.instrs i);
  match i with
  | False z -> Alloc.note_write ctx.alloc z
  | Imply (_, q) -> Alloc.note_write ctx.alloc q

(* t <- !(value of cell p): FALSE t; IMP p t *)
let not_into ctx p =
  let t = Alloc.request ctx.alloc in
  emit ctx (False t);
  emit ctx (Imply (p, t));
  t

(* the cell holding constant [v], materialised once *)
let rec const_cell ctx v =
  let idx = if v then 1 else 0 in
  if ctx.const_cell.(idx) >= 0 then ctx.const_cell.(idx)
  else begin
    let cell =
      if not v then begin
        let z = Alloc.request ctx.alloc in
        emit ctx (False z);
        z
      end
      else not_into ctx (const_cell ctx false) (* 1 = !0 *)
    in
    ctx.const_cell.(idx) <- cell;
    cell
  end

(* cell holding the given phase of node [n] (which must be computed) *)
let phase_cell ctx n ~complemented =
  if n = 0 then const_cell ctx complemented
  else begin
    let have, missing = if complemented then (ctx.neg, ctx.pos) else (ctx.pos, ctx.neg) in
    if have.(n) >= 0 then have.(n)
    else begin
      assert (missing.(n) >= 0);
      let cell = not_into ctx missing.(n) in
      have.(n) <- cell;
      cell
    end
  end

let literal ctx s = phase_cell ctx (Mig.node_of s) ~complemented:(Mig.is_complemented s)

let neg_literal ctx s =
  phase_cell ctx (Mig.node_of s) ~complemented:(not (Mig.is_complemented s))

(* s <- !(a & b) from positive-literal cells: FALSE s; IMP a s; IMP b s *)
let nand_into ctx a b =
  let s = Alloc.request ctx.alloc in
  emit ctx (False s);
  emit ctx (Imply (a, s));
  emit ctx (Imply (b, s));
  s

let compute_node ctx id =
  match Mig.kind ctx.g id with
  | Mig.Const | Mig.Input _ -> invalid_arg "Imp.compute_node"
  | Mig.Maj (a, b, c) ->
    (* constant children collapse the majority into AND / OR *)
    let consts, vars = List.partition Mig.is_const [ a; b; c ] in
    (match (consts, vars) with
    | [], [ _; _; _ ] ->
      (* true majority: <abc> = (ab) \/ (ac) \/ (bc), via three NANDs
         drained into an implication chain *)
      let la = literal ctx a and lb = literal ctx b and lc = literal ctx c in
      let nab = nand_into ctx la lb in
      let nac = nand_into ctx la lc in
      let nbc = nand_into ctx lb lc in
      let s = Alloc.request ctx.alloc in
      emit ctx (False s);
      emit ctx (Imply (nab, s));
      emit ctx (Imply (nac, s));
      emit ctx (Imply (nbc, s));
      List.iter (Alloc.release ctx.alloc) [ nab; nac; nbc ];
      ctx.pos.(id) <- s
    | [ k ], [ x; y ] ->
      if Mig.is_complemented k then begin
        (* OR: x \/ y = !(!x & !y) = NAND(!x, !y), positive phase *)
        let nx = neg_literal ctx x and ny = neg_literal ctx y in
        ctx.pos.(id) <- nand_into ctx nx ny
      end
      else begin
        (* AND: store the NAND, i.e. the negative phase *)
        let lx = literal ctx x and ly = literal ctx y in
        ctx.neg.(id) <- nand_into ctx lx ly
      end
    | _ ->
      (* two or three constant children cannot survive O.M construction *)
      assert false)

let release_node ctx n =
  if ctx.pos.(n) >= 0 then begin
    Alloc.release ctx.alloc ctx.pos.(n);
    ctx.pos.(n) <- -1
  end;
  if ctx.neg.(n) >= 0 then begin
    Alloc.release ctx.alloc ctx.neg.(n);
    ctx.neg.(n) <- -1
  end

let compile ?(strategy = Alloc.Lifo) g =
  let n = Mig.num_nodes g in
  let fanout = Mig.fanout_counts g in
  let out_refs = Mig.output_refs g in
  let ctx =
    { g;
      alloc = Alloc.create ~strategy ();
      instrs = Vec.create ~dummy:(False 0) ();
      pos = Array.make n (-1);
      neg = Array.make n (-1);
      pending = Array.init n (fun i -> fanout.(i) + out_refs.(i));
      const_cell = [| -1; -1 |] }
  in
  (* inputs occupy read-only cells *)
  let pi_cells =
    Array.init (Mig.num_inputs g) (fun pi ->
        let id = Mig.node_of (Mig.input_signal g pi) in
        let cell = Alloc.request ctx.alloc in
        ctx.pos.(id) <- cell;
        (Mig.input_name g pi, cell))
  in
  Mig.iter_reachable_maj g (fun id ->
      compute_node ctx id;
      match Mig.kind g id with
      | Mig.Maj (a, b, c) ->
        List.iter
          (fun s ->
            let child = Mig.node_of s in
            if child <> 0 then begin
              ctx.pending.(child) <- ctx.pending.(child) - 1;
              if ctx.pending.(child) = 0 then release_node ctx child
            end)
          [ a; b; c ]
      | Mig.Const | Mig.Input _ -> ());
  let po_cells =
    Array.map
      (fun (name, s) -> (name, literal ctx s))
      (Mig.outputs g)
  in
  { instrs = Vec.to_array ctx.instrs;
    num_cells = Alloc.total_allocated ctx.alloc;
    pi_cells;
    po_cells }

(* ------------------------------------------------------------------ *)

let run p ~inputs =
  let xbar = Crossbar.create p.num_cells in
  Array.iter
    (fun (name, cell) ->
      match List.assoc_opt name inputs with
      | Some v -> Crossbar.load xbar cell v
      | None -> invalid_arg (Printf.sprintf "Imp.run: missing input %S" name))
    p.pi_cells;
  Array.iter
    (function
      | False z -> Crossbar.write xbar z false
      | Imply (pc, q) ->
        (* q <- !p \/ q is RM3(1, p, q) *)
        let pv = Crossbar.read xbar pc in
        Crossbar.rm3 xbar ~p:true ~q:pv q)
    p.instrs;
  let outputs =
    Array.to_list (Array.map (fun (name, cell) -> (name, Crossbar.read xbar cell)) p.po_cells)
  in
  (outputs, xbar)

let check_random ?(trials = 16) ?(seed = 0x1103) mig p =
  let rng = Splitmix.create seed in
  let n = Mig.num_inputs mig in
  let rec go t =
    if t = 0 then Ok ()
    else begin
      let vector = Splitmix.bits rng ~width:n in
      let expected = Mig.eval mig vector in
      let inputs =
        Array.to_list (Array.mapi (fun i (name, _) -> (name, vector.(i))) p.pi_cells)
      in
      let outputs, _ = run p ~inputs in
      let actual = Array.of_list (List.map snd outputs) in
      if actual = expected then go (t - 1)
      else
        Error
          (Printf.sprintf "trial %d: outputs differ (expected %s, got %s)" (trials - t)
             (String.concat ""
                (Array.to_list (Array.map (fun b -> if b then "1" else "0") expected)))
             (String.concat ""
                (Array.to_list (Array.map (fun b -> if b then "1" else "0") actual))))
    end
  in
  go trials
