(** Material-implication (IMPLY) logic-in-memory — the baseline style the
    paper argues against in Section II.

    Stateful IMP logic (Borghetti et al., Nature 2010; Lehtonen & Laiho)
    computes with two operations on resistive switches:

    - [False z]: unconditionally reset cell [z] to 0;
    - [Imply (p, q)]: [q <- p -> q = !p \/ q] — [p] is read, [q] is
      conditionally written (the {e work device}).

    A NAND takes two switches and three steps: [False s; Imply (a, s);
    Imply (b, s)] leaves [s = !(a & b)].  Because only the work device is
    ever rewritten, IMP concentrates the write traffic: "this unbalanced
    distribution of writes happens due to the lack of commutativity"
    (Section II).  The compiler here lowers a MIG to a NAND network and
    schedules IMP sequences, reusing the same device allocator as the RM3
    compiler so the two styles can be compared head-to-head (see the
    [section2] bench). *)

module Mig = Plim_mig.Mig
module Crossbar = Plim_rram.Crossbar
module Alloc = Plim_core.Alloc

type instr =
  | False of int            (** z <- 0 *)
  | Imply of int * int      (** (p, q): q <- !p \/ q *)

type program = {
  instrs : instr array;
  num_cells : int;
  pi_cells : (string * int) array;
  po_cells : (string * int) array;   (** outputs, true phase *)
}

val pp_instr : Format.formatter -> instr -> unit

val length : program -> int
val num_cells : program -> int

val static_write_counts : program -> int array
(** Every [False] and every [Imply] writes its destination once. *)

val compile : ?strategy:Alloc.strategy -> Mig.t -> program
(** Lower the MIG to AND-inverter form and synthesise IMP sequences.
    [strategy] controls work-device reuse (default [Lifo], the
    conventional two-work-device-style flow; [Min_write] applies the
    paper's minimum write count strategy to IMP for comparison). *)

val run : program -> inputs:(string * bool) list -> (string * bool) list * Crossbar.t
(** Execute on the behavioural crossbar ([Imply] maps to the intrinsic
    [RM3(1, p, z)], of which it is the special case). *)

val check_random :
  ?trials:int -> ?seed:int -> Mig.t -> program -> (unit, string) result
