lib/imp/imp.ml: Array Format List Plim_core Plim_mig Plim_rram Plim_util Printf String
