lib/imp/imp.mli: Format Plim_core Plim_mig Plim_rram
