(** Word-level circuit construction over MIGs.

    A word is an array of signals, least-significant bit first.  These
    builders generate the arithmetic benchmark circuits of the evaluation
    (Section IV) structurally — ripple-carry/array arithmetic, exactly the
    circuit families behind the EPFL arithmetic benchmarks. *)

module Mig = Plim_mig.Mig

type word = Mig.signal array

val width : word -> int

val constant : Mig.t -> width:int -> int -> word
(** [constant g ~width v] encodes the low [width] bits of [v]. *)

val input : Mig.t -> string -> int -> word
(** [input g name w] declares inputs [name_0 .. name_{w-1}] (LSB first). *)

val output : Mig.t -> string -> word -> unit
(** Declares outputs [name_0 .. name_{w-1}]. *)

val zero_extend : word -> int -> word
val slice : word -> lo:int -> len:int -> word
val concat : word -> word -> word
(** [concat lo hi] — [lo] supplies the low bits. *)

val not_word : word -> word
val and_word : Mig.t -> word -> word -> word
val or_word : Mig.t -> word -> word -> word
val xor_word : Mig.t -> word -> word -> word
val and_bit : Mig.t -> Mig.signal -> word -> word
val mux_word : Mig.t -> Mig.signal -> word -> word -> word
(** [mux_word g s a b] is [a] when [s] else [b] (widths must match). *)

val full_adder :
  Mig.t -> Mig.signal -> Mig.signal -> Mig.signal -> Mig.signal * Mig.signal
(** [(sum, carry)] — 3 majority nodes (carry is a single node). *)

val add : Mig.t -> ?cin:Mig.signal -> word -> word -> word * Mig.signal
(** Ripple-carry sum of equal-width words; returns (sum, carry-out). *)

val sub : Mig.t -> word -> word -> word * Mig.signal
(** [a - b] two's-complement; the flag is [1] iff no borrow (a >= b). *)

val less_than : Mig.t -> word -> word -> Mig.signal
(** Unsigned [a < b]. *)

val equal_word : Mig.t -> word -> word -> Mig.signal

val shift_left_const : Mig.t -> word -> int -> word
(** In-width logical shift (bits fall off the top). *)

val shift_right_const : Mig.t -> word -> int -> word

val barrel_shift_right : Mig.t -> word -> amount:word -> word
(** Logical right shift by a variable amount (one mux stage per amount
    bit). *)

val barrel_shift_left : Mig.t -> word -> amount:word -> word

val mul : Mig.t -> word -> word -> word
(** Schoolbook array multiplier; result has width [wa + wb]. *)

val square : Mig.t -> word -> word

val divmod : Mig.t -> word -> word -> word * word
(** Restoring array divider: [(quotient, remainder)], both of the
    dividend's width.  With a zero divisor the quotient is all-ones and
    the remainder is the dividend (the conventional restoring-array
    outcome). *)

val isqrt : Mig.t -> word -> word
(** Digit-recurrence square root: input of width [2k] gives a [k]-bit
    root (floor of the exact square root). *)

val popcount : Mig.t -> word -> word
(** Adder-tree population count; result width [ceil(log2 (w+1))]. *)

val priority_encode : Mig.t -> word -> word * Mig.signal
(** [(index, valid)]: index of the highest set bit (LSB-first word), and
    whether any bit is set.  Index width is [ceil(log2 w)]. *)

val decode : Mig.t -> word -> word
(** [decode g sel] is the one-hot word of width [2^(width sel)]. *)

val reduce_or : Mig.t -> word -> Mig.signal
val reduce_and : Mig.t -> word -> Mig.signal
