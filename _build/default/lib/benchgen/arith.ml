module Mig = Plim_mig.Mig

let adder ~width =
  let g = Mig.create () in
  let a = Word.input g "a" width in
  let b = Word.input g "b" width in
  let sum, carry = Word.add g a b in
  Word.output g "s" sum;
  Mig.add_output g "cout" carry;
  g

let log2_width_of n =
  let rec go acc v = if v <= 1 then max acc 1 else go (acc + 1) ((v + 1) / 2) in
  go 0 n

let bar ~width =
  let g = Mig.create () in
  let data = Word.input g "d" width in
  let amount = Word.input g "sh" (log2_width_of width) in
  Word.output g "q" (Word.barrel_shift_right g data ~amount);
  g

let div ~width =
  let g = Mig.create () in
  let dividend = Word.input g "n" width in
  let divisor = Word.input g "d" width in
  let q, r = Word.divmod g dividend divisor in
  Word.output g "q" q;
  Word.output g "r" r;
  g

let multiplier ~width =
  let g = Mig.create () in
  let a = Word.input g "a" width in
  let b = Word.input g "b" width in
  Word.output g "p" (Word.mul g a b);
  g

let square ~width =
  let g = Mig.create () in
  let a = Word.input g "a" width in
  Word.output g "p" (Word.square g a);
  g

let sqrt ~width =
  let g = Mig.create () in
  let n = Word.input g "n" (2 * width) in
  Word.output g "r" (Word.isqrt g n);
  g

let dec ~bits =
  let g = Mig.create () in
  let sel = Word.input g "s" bits in
  Word.output g "d" (Word.decode g sel);
  g

let priority ~width =
  let g = Mig.create () in
  let req = Word.input g "r" width in
  let index, valid = Word.priority_encode g req in
  Word.output g "idx" index;
  Mig.add_output g "valid" valid;
  g

let voter ~inputs =
  if inputs mod 2 = 0 then invalid_arg "Arith.voter: even input count";
  let g = Mig.create () in
  let votes = Word.input g "v" inputs in
  let count = Word.popcount g votes in
  let threshold = Word.constant g ~width:(Word.width count) ((inputs + 1) / 2) in
  Mig.add_output g "maj" (Mig.not_ (Word.less_than g count threshold));
  g

let max ~width ~operands =
  if operands < 2 then invalid_arg "Arith.max: need at least two operands";
  let g = Mig.create () in
  let iw = log2_width_of operands in
  let entries =
    List.init operands (fun i ->
        (Word.input g (Printf.sprintf "x%d" i) width, Word.constant g ~width:iw i))
  in
  let combine (wa, ia) (wb, ib) =
    let lt = Word.less_than g wa wb in
    (Word.mux_word g lt wb wa, Word.mux_word g lt ib ia)
  in
  let rec tournament = function
    | [] -> invalid_arg "Arith.max: empty"
    | [ e ] -> e
    | entries ->
      let rec pair = function
        | a :: b :: rest -> combine a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      tournament (pair entries)
  in
  let best, idx = tournament entries in
  Word.output g "max" best;
  Word.output g "idx" idx;
  g

(* --- log2: 5 integer bits via priority encoding, 27 fraction bits via
   iterated squaring of a 16-bit normalised mantissa (1.15 fixed point) --- *)

let log2_frac_bits = 27
let log2_mant_bits = 16

let log2 () =
  let g = Mig.create () in
  let x = Word.input g "x" 32 in
  let idx, _valid = Word.priority_encode g x in
  (* shift = 31 - idx, so the leading one lands on bit 31 *)
  let thirty_one = Word.constant g ~width:(Word.width idx) 31 in
  let shift, _ = Word.sub g thirty_one idx in
  let normalised = Word.barrel_shift_left g x ~amount:shift in
  let m = ref (Word.slice normalised ~lo:16 ~len:log2_mant_bits) in
  let frac = Array.make log2_frac_bits Mig.false_ in
  for k = 0 to log2_frac_bits - 1 do
    (* p = m*m is 2.30 fixed point in [1,4); p >= 2 iff bit 31 *)
    let p = Word.mul g !m !m in
    let ge2 = p.(31) in
    frac.(k) <- ge2;
    let halved = Word.slice p ~lo:16 ~len:log2_mant_bits in
    let kept = Word.slice p ~lo:15 ~len:log2_mant_bits in
    m := Word.mux_word g ge2 halved kept
  done;
  (* output: idx in bits 31..27, fraction f1..f27 in bits 26..0 *)
  let out = Array.make 32 Mig.false_ in
  for k = 0 to log2_frac_bits - 1 do
    out.(26 - k) <- frac.(k)
  done;
  Array.iteri (fun i s -> out.(27 + i) <- s) idx;
  Word.output g "y" out;
  g

let log2_reference input =
  if Array.length input <> 32 then invalid_arg "log2_reference: want 32 bits";
  let x = ref 0 in
  Array.iteri (fun i b -> if b then x := !x lor (1 lsl i)) input;
  let x = !x in
  let out =
    if x = 0 then 0
    else begin
      let idx =
        let rec go i = if x lsr i <> 0 then i else go (i - 1) in
        go 31
      in
      let y = (x lsl (31 - idx)) land 0xFFFFFFFF in
      let m = ref ((y lsr 16) land 0xFFFF) in
      let frac = ref 0 in
      for k = 0 to log2_frac_bits - 1 do
        let p = !m * !m in
        let ge2 = (p lsr 31) land 1 = 1 in
        if ge2 then frac := !frac lor (1 lsl (26 - k));
        m := (if ge2 then p lsr 16 else p lsr 15) land 0xFFFF
      done;
      !frac lor (idx lsl 27)
    end
  in
  Array.init 32 (fun i -> (out lsr i) land 1 = 1)

(* --- sin: degree-5 odd polynomial for sin(x * pi/2), x in [0,1) as 0.24
   fixed point; output 1.24 fixed point (25 bits). --- *)

let fix24 c = int_of_float (Float.round (c *. 16777216.0))

let sin_a1 = fix24 1.57079632679 (* pi/2 *)
let sin_a3 = fix24 0.64596409750 (* (pi/2)^3 / 6 *)
let sin_a5 = fix24 0.07969262624 (* (pi/2)^5 / 120 *)
let sin_a7 = fix24 0.00468175413 (* (pi/2)^7 / 5040 *)

let sin () =
  let g = Mig.create () in
  let x = Word.input g "x" 24 in
  let scale24 w = Word.slice w ~lo:24 ~len:(Word.width w - 24) in
  let x2 = Word.slice (scale24 (Word.mul g x x)) ~lo:0 ~len:24 in
  let x3 = Word.slice (scale24 (Word.mul g x x2)) ~lo:0 ~len:24 in
  let x5 = Word.slice (scale24 (Word.mul g x3 x2)) ~lo:0 ~len:24 in
  let x7 = Word.slice (scale24 (Word.mul g x5 x2)) ~lo:0 ~len:24 in
  let term w coeff coeff_width =
    let c = Word.constant g ~width:coeff_width coeff in
    Word.zero_extend (scale24 (Word.mul g w c)) 25
  in
  let t1 = term x sin_a1 25 in
  let t3 = term x3 sin_a3 24 in
  let t5 = term x5 sin_a5 24 in
  let t7 = term x7 sin_a7 24 in
  let pos, _ = Word.add g t1 t5 in
  let neg, _ = Word.add g t3 t7 in
  let result, _ = Word.sub g pos neg in
  Word.output g "y" result;
  g

let sin_reference input =
  if Array.length input <> 24 then invalid_arg "sin_reference: want 24 bits";
  let x = ref 0 in
  Array.iteri (fun i b -> if b then x := !x lor (1 lsl i)) input;
  let x = !x in
  let mask25 = (1 lsl 25) - 1 in
  let x2 = (x * x) lsr 24 in
  let x3 = (x * x2) lsr 24 in
  let x5 = (x3 * x2) lsr 24 in
  let x7 = (x5 * x2) lsr 24 in
  let t1 = (x * sin_a1) lsr 24 land mask25 in
  let t3 = (x3 * sin_a3) lsr 24 land mask25 in
  let t5 = (x5 * sin_a5) lsr 24 land mask25 in
  let t7 = (x7 * sin_a7) lsr 24 land mask25 in
  let pos = (t1 + t5) land mask25 in
  let neg = (t3 + t7) land mask25 in
  let result = (pos - neg + (1 lsl 25)) land mask25 in
  Array.init 25 (fun i -> (result lsr i) land 1 = 1)
