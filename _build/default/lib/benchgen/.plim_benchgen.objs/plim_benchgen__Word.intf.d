lib/benchgen/word.mli: Plim_mig
