lib/benchgen/frontend.ml: Plim_mig
