lib/benchgen/frontend.mli: Plim_mig
