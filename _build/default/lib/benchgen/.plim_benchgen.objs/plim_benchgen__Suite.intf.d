lib/benchgen/suite.mli: Plim_mig
