lib/benchgen/arith.ml: Array Float List Plim_mig Printf Word
