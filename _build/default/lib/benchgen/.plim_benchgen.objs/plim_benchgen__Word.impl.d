lib/benchgen/word.ml: Array Plim_mig Printf
