lib/benchgen/suite.ml: Arith Frontend Hashtbl List Plim_mig String
