lib/benchgen/arith.mli: Plim_mig
