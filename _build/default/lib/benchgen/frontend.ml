module Mig = Plim_mig.Mig

(* <a b c> = (a & b) | (a & c) | (b & c), all in AND/inverter form.
   Conjunctions keep the [<x y 0>] majority shape; disjunctions are De
   Morgan inversions, so the complement structure matches what an AIG
   reader would produce. *)
let expand g =
  Mig.map_rebuild g ~rule:(fun g' ~old_id:_ a b c ->
      let and2 x y = Mig.maj g' x y Mig.false_ in
      let or2 x y = Mig.not_ (and2 (Mig.not_ x) (Mig.not_ y)) in
      if Mig.is_const a then (if Mig.is_complemented a then or2 b c else and2 b c)
      else if Mig.is_const b then (if Mig.is_complemented b then or2 a c else and2 a c)
      else if Mig.is_const c then (if Mig.is_complemented c then or2 a b else and2 a b)
      else or2 (and2 a b) (or2 (and2 a c) (and2 b c)))

let is_aig g =
  let ok = ref true in
  Mig.iter_reachable_maj g (fun id ->
      match Mig.kind g id with
      | Mig.Maj (a, b, c) ->
        if not (Mig.is_const a || Mig.is_const b || Mig.is_const c) then ok := false
      | Mig.Const | Mig.Input _ -> ());
  !ok
