module Mig = Plim_mig.Mig

type word = Mig.signal array

let width = Array.length

let constant g ~width v =
  ignore g;
  if width < 0 then invalid_arg "Word.constant: negative width";
  Array.init width (fun i ->
      if (v lsr i) land 1 = 1 then Mig.true_ else Mig.false_)

let input g name w =
  Array.init w (fun i -> Mig.add_input g (Printf.sprintf "%s_%d" name i))

let output g name w =
  Array.iteri (fun i s -> Mig.add_output g (Printf.sprintf "%s_%d" name i) s) w

let zero_extend w n =
  if n < width w then invalid_arg "Word.zero_extend: shrinking";
  Array.init n (fun i -> if i < width w then w.(i) else Mig.false_)

let slice w ~lo ~len =
  if lo < 0 || len < 0 || lo + len > width w then invalid_arg "Word.slice";
  Array.sub w lo len

let concat lo hi = Array.append lo hi

let not_word w = Array.map Mig.not_ w

let check_same_width name a b =
  if width a <> width b then
    invalid_arg (Printf.sprintf "Word.%s: width mismatch (%d vs %d)" name (width a) (width b))

let map2 g f a b = Array.init (width a) (fun i -> f g a.(i) b.(i))

let and_word g a b = check_same_width "and_word" a b; map2 g Mig.and_ a b
let or_word g a b = check_same_width "or_word" a b; map2 g Mig.or_ a b
let xor_word g a b = check_same_width "xor_word" a b; map2 g Mig.xor a b

let and_bit g s w = Array.map (fun x -> Mig.and_ g s x) w

let mux_word g s a b =
  check_same_width "mux_word" a b;
  Array.init (width a) (fun i -> Mig.mux g s a.(i) b.(i))

(* MIG full adder (3 nodes): carry = <a b c>; m = <a b !c>;
   sum = <m !carry c>. *)
let full_adder g a b c =
  let carry = Mig.maj g a b c in
  let m = Mig.maj g a b (Mig.not_ c) in
  let sum = Mig.maj g m (Mig.not_ carry) c in
  (sum, carry)

let add g ?(cin = Mig.false_) a b =
  check_same_width "add" a b;
  let carry = ref cin in
  let sum =
    Array.init (width a) (fun i ->
        let s, c = full_adder g a.(i) b.(i) !carry in
        carry := c;
        s)
  in
  (sum, !carry)

(* a - b = a + !b + 1; carry-out = 1 iff no borrow (a >= b) *)
let sub g a b =
  let diff, carry = add g ~cin:Mig.true_ a (not_word b) in
  (diff, carry)

let less_than g a b =
  let _, no_borrow = sub g a b in
  Mig.not_ no_borrow

let equal_word g a b =
  check_same_width "equal_word" a b;
  let diffs = xor_word g a b in
  Mig.not_ (Array.fold_left (fun acc d -> Mig.or_ g acc d) Mig.false_ diffs)

let shift_left_const g w n =
  ignore g;
  if n < 0 then invalid_arg "Word.shift_left_const";
  Array.init (width w) (fun i -> if i < n then Mig.false_ else w.(i - n))

let shift_right_const g w n =
  ignore g;
  if n < 0 then invalid_arg "Word.shift_right_const";
  Array.init (width w) (fun i -> if i + n < width w then w.(i + n) else Mig.false_)

let barrel_shift_right g w ~amount =
  let result = ref w in
  Array.iteri
    (fun stage bit ->
      let shifted = shift_right_const g !result (1 lsl stage) in
      result := mux_word g bit shifted !result)
    amount;
  !result

let barrel_shift_left g w ~amount =
  let result = ref w in
  Array.iteri
    (fun stage bit ->
      let shifted = shift_left_const g !result (1 lsl stage) in
      result := mux_word g bit shifted !result)
    amount;
  !result

(* Schoolbook array multiplier: accumulate shifted partial products. *)
let mul g a b =
  let wa = width a and wb = width b in
  if wa = 0 || wb = 0 then [||]
  else begin
    let total = wa + wb in
    let acc = ref (constant g ~width:total 0) in
    for i = 0 to wb - 1 do
      (* partial product a * b_i, aligned at bit i *)
      let pp =
        Array.init total (fun j ->
            if j >= i && j - i < wa then Mig.and_ g b.(i) a.(j - i) else Mig.false_)
      in
      let sum, _ = add g !acc pp in
      acc := sum
    done;
    !acc
  end

let square g x = mul g x x

let divmod g dividend divisor =
  let w = width dividend in
  if width divisor = 0 || w = 0 then invalid_arg "Word.divmod: empty operand";
  let wd = width divisor in
  (* remainder register one bit wider than the divisor to absorb the shift *)
  let rw = wd + 1 in
  let divisor_ext = zero_extend divisor rw in
  let rem = ref (constant g ~width:rw 0) in
  let quotient = Array.make w Mig.false_ in
  for i = w - 1 downto 0 do
    (* rem = (rem << 1) | dividend_i *)
    let shifted = shift_left_const g !rem 1 in
    shifted.(0) <- dividend.(i);
    let diff, no_borrow = sub g shifted divisor_ext in
    quotient.(i) <- no_borrow;
    rem := mux_word g no_borrow diff shifted
  done;
  (quotient, slice !rem ~lo:0 ~len:(min w wd))

let isqrt g n =
  let wn = width n in
  if wn mod 2 <> 0 then invalid_arg "Word.isqrt: width must be even";
  let w = wn / 2 in
  let rw = w + 2 in
  let rem = ref (constant g ~width:rw 0) in
  let root = ref (constant g ~width:rw 0) in
  for i = w - 1 downto 0 do
    (* rem = (rem << 2) | n[2i+1 : 2i] *)
    let shifted = shift_left_const g !rem 2 in
    shifted.(0) <- n.(2 * i);
    shifted.(1) <- n.((2 * i) + 1);
    (* root <<= 1; trial = (root << 1) | 1 = 2*root + 1 *)
    let root_shifted = shift_left_const g !root 1 in
    let trial = shift_left_const g root_shifted 1 in
    trial.(0) <- Mig.true_;
    let diff, ge = sub g shifted trial in
    rem := mux_word g ge diff shifted;
    root_shifted.(0) <- ge;
    root := root_shifted
  done;
  slice !root ~lo:0 ~len:w

let rec popcount g w =
  match width w with
  | 0 -> [||]
  | 1 -> [| w.(0) |]
  | 2 ->
    let s, c = full_adder g w.(0) w.(1) Mig.false_ in
    [| s; c |]
  | 3 ->
    let s, c = full_adder g w.(0) w.(1) w.(2) in
    [| s; c |]
  | n ->
    let half = n / 2 in
    let lo = popcount g (Array.sub w 0 half) in
    let hi = popcount g (Array.sub w half (n - half)) in
    let wmax = 1 + max (width lo) (width hi) in
    let sum, carry = add g (zero_extend lo wmax) (zero_extend hi wmax) in
    ignore carry; (* cannot overflow: wmax has headroom *)
    sum

let bits_needed n =
  let rec go acc v = if v <= 1 then max acc 1 else go (acc + 1) ((v + 1) / 2) in
  go 0 n

let priority_encode g w =
  let n = width w in
  if n = 0 then invalid_arg "Word.priority_encode: empty word";
  let iw = bits_needed n in
  let index = ref (constant g ~width:iw 0) in
  let valid = ref Mig.false_ in
  (* ascending scan: the highest set bit decides last *)
  Array.iteri
    (fun i bit ->
      index := mux_word g bit (constant g ~width:iw i) !index;
      valid := Mig.or_ g !valid bit)
    w;
  (!index, !valid)

let rec decode g sel =
  match width sel with
  | 0 -> [| Mig.true_ |]
  | _ ->
    let low = decode g (slice sel ~lo:0 ~len:(width sel - 1)) in
    let top = sel.(width sel - 1) in
    let without = Array.map (fun s -> Mig.and_ g (Mig.not_ top) s) low in
    let with_ = Array.map (fun s -> Mig.and_ g top s) low in
    Array.append without with_

let reduce_or g w = Array.fold_left (fun acc s -> Mig.or_ g acc s) Mig.false_ w
let reduce_and g w = Array.fold_left (fun acc s -> Mig.and_ g acc s) Mig.true_ w
