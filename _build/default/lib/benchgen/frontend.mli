(** Structural AND-inverter frontend.

    The EPFL benchmarks are distributed as AIGs (AND-inverter graphs); the
    PLiM toolflow reads them into MIGs whose every node is a degenerate
    majority [<a b 0>], and only then does MIG rewriting restructure them
    (DAC'16 / this paper).  [expand] reproduces that input shape: it
    rewrites an arbitrary MIG so that every majority node becomes an
    AND/inverter network (5 conjunctions per true majority), which is what
    the naive compiler sees and what gives Algorithms 1 and 2 their
    optimisation headroom. *)

module Mig = Plim_mig.Mig

val expand : Mig.t -> Mig.t
(** Functionally equivalent graph in AND-inverter form: the only majority
    nodes are [<x y 0>]-shaped (possibly with complemented edges). *)

val is_aig : Mig.t -> bool
(** True when every reachable majority node has a constant child. *)
