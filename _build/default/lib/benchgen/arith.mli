(** Structural generators for the arithmetic benchmark family (and the
    regular control blocks) with the PI/PO counts of the paper's Table I.

    Every generator takes explicit widths so tests can exercise small
    instances; [Suite] instantiates the paper-sized versions.  See
    DESIGN.md for the log2/sin fixed-point conventions. *)

module Mig = Plim_mig.Mig

val adder : width:int -> Mig.t
(** [width]-bit ripple-carry adder: PI 2w, PO w+1. *)

val bar : width:int -> Mig.t
(** Barrel shifter (logical right): PI w + log2 w, PO w. *)

val div : width:int -> Mig.t
(** Restoring divider: PI 2w, PO 2w (quotient, remainder). *)

val log2 : unit -> Mig.t
(** 32-bit fixed-point base-2 logarithm: 5 integer bits from a priority
    encoder, 27 fraction bits by iterated squaring of a 16-bit normalised
    mantissa.  PI 32, PO 32. *)

val log2_reference : bool array -> bool array
(** Bit-accurate software model of {!log2} (same fixed-point algorithm). *)

val max : width:int -> operands:int -> Mig.t
(** Tournament maximum of [operands] unsigned words: PO w + index bits. *)

val multiplier : width:int -> Mig.t
(** Array multiplier: PI 2w, PO 2w. *)

val sin : unit -> Mig.t
(** 24-bit fixed-point sine of [x * pi/2] for [x] in [0,1), degree-5 odd
    polynomial, 0.24-input / 1.24-output format.  PI 24, PO 25. *)

val sin_reference : bool array -> bool array

val sqrt : width:int -> Mig.t
(** Digit-recurrence square root: PI 2w, PO w. *)

val square : width:int -> Mig.t
(** Squarer: PI w, PO 2w. *)

val dec : bits:int -> Mig.t
(** [bits]-to-[2^bits] decoder: PI n, PO 2^n. *)

val priority : width:int -> Mig.t
(** Priority encoder: PI w, PO ceil(log2 w) + valid. *)

val voter : inputs:int -> Mig.t
(** Majority voter over an odd number of inputs: PO 1. *)
