(** The 18-benchmark suite of the paper's evaluation (Section IV).

    Arithmetic circuits and the regular control blocks (dec, priority,
    voter) are generated structurally with the paper's PI/PO counts; the
    irregular random-control blocks (cavlc, ctrl, i2c, int2float,
    mem_ctrl, router) are seeded pseudo-random control-style MIGs with the
    paper's PI/PO counts (see DESIGN.md Section 2 for the substitution
    rationale). *)

module Mig = Plim_mig.Mig

type family = Arithmetic | Random_control

type spec = {
  name : string;
  family : family;
  pi : int;            (** paper's primary input count *)
  po : int;            (** paper's primary output count *)
  build : unit -> Mig.t;
}

val all : spec list
(** The 18 benchmarks in the paper's table order (arithmetic first). *)

val find : string -> spec
(** @raise Not_found for unknown names. *)

val names : string list

val build_cached : spec -> Mig.t
(** Memoised [spec.build] (generation can cost seconds for mem_ctrl). *)

val small_suite : spec list
(** Reduced-width instances of every circuit family (arithmetic at 8 bits,
    control at a few hundred nodes) for tests and quick experiments. *)
