(** The MIG Boolean algebra used by the PLiM compilers.

    Each axiom is packaged as a local rewriting [rule] applied while a
    graph is rebuilt bottom-up: the rule sees the (already remapped)
    children of the majority node under reconstruction, plus each child's
    fanout count in the old graph (a death prediction used to avoid
    size-increasing applications), and either produces a replacement signal
    or declines.

    The trivial-majority axiom Ω.M is not a rule here: it is applied
    unconditionally by {!Mig.maj}. *)

module Mig = Plim_mig.Mig

type operand = {
  s : Mig.signal;       (** remapped child in the new graph *)
  old_fanout : int;     (** fanout (incl. PO refs) of the child in the old graph *)
}

type rule = Mig.t -> operand -> operand -> operand -> Mig.signal option

val distributivity_rl : rule
(** Ω.D right-to-left: [<<xyu><xyv>z> = <xy<uvz>>].  Applies when the two
    inner nodes will die (old fanout 1) or when the replacement inner node
    is free (Ω.M reduction or already strashed), so it never grows the
    graph. *)

val associativity : rule
(** Ω.A: [<xu<yuz>> = <zu<yux>>], committed only when the swapped inner
    node is free — Ω.A by itself does not reduce size, it reshapes the
    graph to expose sharing and further Ω.M reductions. *)

val complementary_associativity : rule
(** Ψ.C: if the inner node contains the complement of one outer child,
    replace that occurrence by the other outer child
    ([<xu<y!uz>> = <xu<yxz>>] and [<xu<y!xz>> = <xu<yuz>>]).  Removes a
    complemented edge; committed when free or when the inner node dies. *)

val inverter_propagation : rule
(** Ω.I right-to-left, transformations (1)-(3) of DATE'16:
    a node with two or three complemented non-constant children is
    replaced by its all-flipped dual with a complemented output, leaving
    at most one complemented child. *)

val apply_first : rule list -> Mig.t -> operand -> operand -> operand -> Mig.signal
(** Try rules in order; fall back to [Mig.maj]. *)

val complemented_children : Mig.t -> Mig.signal -> Mig.signal -> Mig.signal -> int
(** Number of complemented non-constant children — the RM3 cost driver. *)
