module Mig = Plim_mig.Mig

type operand = {
  s : Mig.signal;
  old_fanout : int;
}

type rule = Mig.t -> operand -> operand -> operand -> Mig.signal option

(* The three children of a majority node, adjusted for the polarity of the
   edge pointing at it (Ω.I view): [!<xyz> = <!x!y!z>]. *)
let maj_view g s =
  match Mig.kind g (Mig.node_of s) with
  | Mig.Maj (x, y, z) ->
    if Mig.is_complemented s then Some (Mig.not_ x, Mig.not_ y, Mig.not_ z)
    else Some (x, y, z)
  | Mig.Const | Mig.Input _ -> None

let pairs = [ (0, 1, 2); (0, 2, 1); (1, 2, 0) ]

let seq = Mig.signal_equal

(* Ω.D R->L: <<xyu><xyv>z> = <xy<uvz>> *)
let distributivity_rl g oa ob oc =
  let ops = [| oa; ob; oc |] in
  let try_pair (i, j, k) =
    let pa = ops.(i) and pb = ops.(j) and z = ops.(k).s in
    match (maj_view g pa.s, maj_view g pb.s) with
    | Some (a1, a2, a3), Some (b1, b2, b3)
      when Mig.node_of pa.s <> Mig.node_of pb.s ->
      let la = [ a1; a2; a3 ] and lb = [ b1; b2; b3 ] in
      let common = List.filter (fun x -> List.exists (seq x) lb) la in
      (match common with
      | [ x; y ] ->
        let rest l = List.filter (fun s -> not (List.exists (seq s) common)) l in
        (match (rest la, rest lb) with
        | [ u ], [ v ] ->
          let free =
            match Mig.lookup g u v z with Some _ -> true | None -> false
          in
          if free || (pa.old_fanout <= 1 && pb.old_fanout <= 1) then
            Some (Mig.maj g x y (Mig.maj g u v z))
          else None
        | _, _ -> None)
      | _ -> None)
    | _, _ -> None
  in
  List.find_map try_pair pairs

(* Ω.A: <xu<yuz>> = <zu<yux>>, committed only when the new inner is free. *)
let associativity g oa ob oc =
  let ops = [| oa; ob; oc |] in
  let try_inner (i, j, k) =
    (* ops.(k) plays the inner node M; ops.(i), ops.(j) are outer. *)
    let m = ops.(k).s and w1 = ops.(i).s and w2 = ops.(j).s in
    match maj_view g m with
    | None -> None
    | Some (m1, m2, m3) ->
      let inner = [ m1; m2; m3 ] in
      let try_shared u x =
        (* u shared between outer and inner; x = other outer child *)
        if not (List.exists (seq u) inner) then None
        else begin
          let others = List.filter (fun s -> not (seq s u)) inner in
          match others with
          | [ t1; t2 ] ->
            let attempt t keep =
              (* swap outer x with inner t: inner' = <keep u x> *)
              match Mig.lookup g keep u x with
              | Some inner' -> Some (Mig.maj g t u inner')
              | None -> None
            in
            (match attempt t1 t2 with
            | Some r -> Some r
            | None -> attempt t2 t1)
          | _ -> None (* u occurred twice in the view; cannot happen post Ω.M *)
        end
      in
      (match try_shared w1 w2 with Some r -> Some r | None -> try_shared w2 w1)
  in
  List.find_map
    (fun (i, j, k) ->
      (* only consider non-const inner with some chance of profit *)
      try_inner (i, j, k))
    [ (0, 1, 2); (0, 2, 1); (1, 2, 0) ]

(* Ψ.C: inner contains the complement of an outer child p; replace that
   occurrence by the other outer child q. *)
let complementary_associativity g oa ob oc =
  let ops = [| oa; ob; oc |] in
  let try_inner (i, j, k) =
    let m = ops.(k) and p = ops.(i).s and q = ops.(j).s in
    match maj_view g m.s with
    | None -> None
    | Some (m1, m2, m3) ->
      let inner = [ m1; m2; m3 ] in
      let try_outer p q =
        let np = Mig.not_ p in
        if not (List.exists (seq np) inner) then None
        else begin
          let keep = List.filter (fun s -> not (seq s np)) inner in
          match keep with
          | [ k1; k2 ] ->
            let build () = Mig.maj g p q (Mig.maj g k1 k2 q) in
            (match Mig.lookup g k1 k2 q with
            | Some _ -> Some (build ())
            | None -> if m.old_fanout <= 1 then Some (build ()) else None)
          | _ -> None
        end
      in
      (match try_outer p q with Some r -> Some r | None -> try_outer q p)
  in
  List.find_map try_inner pairs

let complemented_children _g a b c =
  let count s = if Mig.is_complemented s && not (Mig.is_const s) then 1 else 0 in
  count a + count b + count c

(* Ω.I R->L (1)-(3): >=2 complemented non-constant children -> flip all,
   complement the output. *)
let inverter_propagation g oa ob oc =
  let a = oa.s and b = ob.s and c = oc.s in
  if complemented_children g a b c >= 2 then
    Some (Mig.not_ (Mig.maj g (Mig.not_ a) (Mig.not_ b) (Mig.not_ c)))
  else None

let apply_first rules g oa ob oc =
  let rec go = function
    | [] -> Mig.maj g oa.s ob.s oc.s
    | rule :: rest ->
      (match rule g oa ob oc with Some s -> s | None -> go rest)
  in
  go rules
