lib/rewrite/recipe.mli: Axioms Format Plim_mig
