lib/rewrite/axioms.mli: Plim_mig
