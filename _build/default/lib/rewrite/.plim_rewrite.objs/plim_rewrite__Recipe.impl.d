lib/rewrite/recipe.ml: Array Axioms Format Plim_mig
