lib/rewrite/axioms.ml: Array List Plim_mig
