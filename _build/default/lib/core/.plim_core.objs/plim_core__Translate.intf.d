lib/core/translate.mli: Alloc Plim_isa Plim_mig Plim_util
