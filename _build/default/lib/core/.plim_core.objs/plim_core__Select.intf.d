lib/core/select.mli: Plim_mig
