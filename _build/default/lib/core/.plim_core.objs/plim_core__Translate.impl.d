lib/core/translate.ml: Alloc Array Hashtbl List Plim_isa Plim_mig Plim_util
