lib/core/select.ml: Array Plim_mig Plim_util
