lib/core/alloc.ml: Array List Plim_util Printf
