lib/core/pipeline.ml: Alloc Array Format Plim_isa Plim_mig Plim_rewrite Plim_stats Plim_util Printf Select Translate
