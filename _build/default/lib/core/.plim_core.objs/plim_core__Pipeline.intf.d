lib/core/pipeline.mli: Alloc Format Plim_isa Plim_mig Plim_rewrite Plim_stats Select
