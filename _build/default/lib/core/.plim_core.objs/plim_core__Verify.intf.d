lib/core/verify.mli: Plim_isa Plim_mig
