lib/core/verify.ml: Array List Plim_isa Plim_logic Plim_machine Plim_mig Plim_rram Plim_util Printf
