lib/core/alloc.mli:
