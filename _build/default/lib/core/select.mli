(** Node-selection (scheduling) policies of the PLiM compiler.

    At every step the compiler picks the next majority node to compute
    among the {e candidates} (nodes whose children are all available):

    - [In_order]: original topological order — the naive compiler;
    - [Release_first] (DAC'16 [21]): most releasing RRAMs first, ties by
      smaller fanout level index — minimises live devices;
    - [Level_first] (the paper's Algorithm 3): smallest fanout level index
      first (shortest storage duration), ties by most releasing RRAMs —
      keeps devices from staying blocked, balancing the write traffic.

    A node's {e releasing count} is the number of its children whose value
    dies when the node is computed (pending use count 1); its {e fanout
    level index} is the level of its farthest fanout target (nodes feeding
    primary outputs count as level [depth + 1] — they stay blocked until
    the end of the program). *)

module Mig = Plim_mig.Mig

type policy = In_order | Release_first | Level_first

val policy_name : policy -> string

type t

val create : policy:policy -> Mig.t -> pending:int array -> t
(** [pending] is shared with the caller (the translator decrements it);
    it must initially hold fanout count + output refs per node. *)

val pop : t -> int option
(** Highest-priority candidate, or [None] when all nodes are computed. *)

val computed : t -> int -> unit
(** Notify that a node was computed (after the translator updated
    [pending]); unlocks its parents as candidates. *)

val child_pending_dropped_to_one : t -> int -> unit
(** Notify that [pending] of a node reached 1: its single remaining
    consumer (if a candidate) gains a releasing RRAM and is re-keyed. *)
