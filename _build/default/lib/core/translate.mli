(** Node translation: lowering one majority node to RM3 instructions.

    For node [n = <s_a, s_b, s_c>] the translator assigns the three
    children to the RM3 roles:

    - [P] (first operand, read as-is),
    - [Q] (second operand, inverted by the hardware),
    - [Z] (the destination cell, overwritten in place).

    The ideal case costs a single instruction: a node with exactly one
    complemented child (feeding [Q]) and a single-fanout plain child whose
    device can be rewritten in place ([Z]).  Every obstruction — a missing
    complement, a multi-fanout or write-capped destination — is repaired
    with two extra instructions and one extra device (a constant load plus
    an RM3 copy/complement), matching the cost model of the paper and of
    the DAC'16 compiler. *)

module Mig = Plim_mig.Mig

type ctx = {
  g : Mig.t;
  alloc : Alloc.t;
  cell_of : int array;     (** node id -> device holding its value; -1 = none *)
  pending : int array;     (** node id -> remaining uses (parents + PO refs) *)
  pi_cell : int array;     (** PI index -> device the input is loaded into *)
  instrs : Plim_isa.Instruction.t Plim_util.Vec.t;
  dest_min_write : bool;
      (** ablation: among equally-cheap destination choices prefer the
          device with the smallest write count (not part of the paper) *)
  mutable on_pending_one : int -> unit;
      (** scheduling callback, invoked when a node's pending count drops
          to exactly 1 *)
}

val make_ctx :
  ?dest_min_write:bool -> Mig.t -> Alloc.t -> ctx

val place_inputs : ctx -> unit
(** Allocates devices for all primary inputs (releasing those of unused
    inputs immediately). *)

val compute_node : ctx -> int -> unit
(** Translate one majority node (children must be available).
    Updates pending counts, releases dead devices, invokes
    [on_pending_one]. *)

val materialize_outputs : ctx -> (string * int) array
(** After all nodes are computed: ensure every primary output value sits
    true-phase in a device (complemented or constant outputs cost extra
    instructions) and return the name->cell map. *)
