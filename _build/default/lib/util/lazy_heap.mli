(** Binary min-heap with lazy deletion, specialised for scheduling problems
    where an element's key changes over time.

    Elements are integers (node or cell identifiers).  Each element carries a
    version stamp; re-inserting an element bumps its stamp and logically
    invalidates every older heap entry for it.  Stale entries are discarded
    when they surface at the top, giving O(log n) amortised updates without
    a decrease-key operation. *)

type key = int * int * int
(** Lexicographic priority (smaller = higher priority). *)

type t

val create : capacity:int -> t
(** [capacity] is the largest element id that will ever be inserted, plus
    one.  Used to size the stamp table. *)

val insert : t -> key -> int -> unit
(** [insert t key x] (re-)inserts element [x] with priority [key],
    invalidating any previous entry for [x]. *)

val remove : t -> int -> unit
(** Logically removes [x] (its entries become stale). *)

val pop_min : t -> (key * int) option
(** Removes and returns the live minimum, skipping stale entries. *)

val peek_min : t -> (key * int) option

val is_empty : t -> bool
(** True when no live element remains. *)

val live_count : t -> int
