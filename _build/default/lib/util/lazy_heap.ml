type key = int * int * int

type entry = { key : key; elt : int; stamp : int }

type t = {
  mutable heap : entry array;
  mutable len : int;
  stamps : int array;      (* current stamp per element; -1 = not live *)
  mutable live : int;
}

let dummy_entry = { key = (0, 0, 0); elt = -1; stamp = -1 }

let create ~capacity =
  { heap = Array.make 64 dummy_entry;
    len = 0;
    stamps = Array.make (max capacity 1) (-1);
    live = 0 }

let key_lt (a : key) (b : key) = compare a b < 0

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if key_lt t.heap.(i).key t.heap.(parent).key then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && key_lt t.heap.(l).key t.heap.(!smallest).key then smallest := l;
  if r < t.len && key_lt t.heap.(r).key t.heap.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy_entry in
  Array.blit t.heap 0 heap 0 t.len;
  t.heap <- heap

let insert t key elt =
  if elt < 0 || elt >= Array.length t.stamps then
    invalid_arg "Lazy_heap.insert: element out of range";
  let was_live = t.stamps.(elt) >= 0 in
  let stamp = abs t.stamps.(elt) + 1 in
  t.stamps.(elt) <- stamp;
  if not was_live then t.live <- t.live + 1;
  if t.len = Array.length t.heap then grow t;
  t.heap.(t.len) <- { key; elt; stamp };
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let remove t elt =
  if elt >= 0 && elt < Array.length t.stamps && t.stamps.(elt) >= 0 then begin
    t.stamps.(elt) <- - t.stamps.(elt);
    t.live <- t.live - 1
  end

let stale t entry = t.stamps.(entry.elt) <> entry.stamp

let rec drop_stale t =
  if t.len > 0 && stale t t.heap.(0) then begin
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- dummy_entry;
    sift_down t 0;
    drop_stale t
  end

let peek_min t =
  drop_stale t;
  if t.len = 0 then None else Some (t.heap.(0).key, t.heap.(0).elt)

let pop_min t =
  drop_stale t;
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- dummy_entry;
    if t.len > 0 then sift_down t 0;
    t.stamps.(top.elt) <- - top.stamp;
    t.live <- t.live - 1;
    Some (top.key, top.elt)
  end

let is_empty t = t.live = 0

let live_count t = t.live
