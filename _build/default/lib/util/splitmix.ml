type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 from Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators", OOPSLA'14. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* keep 62 bits so the conversion to OCaml's 63-bit int stays non-negative *)
  let x = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  x mod bound

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let bits t ~width = Array.init width (fun _ -> bool t)
