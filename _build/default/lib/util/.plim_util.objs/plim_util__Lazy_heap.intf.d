lib/util/lazy_heap.mli:
