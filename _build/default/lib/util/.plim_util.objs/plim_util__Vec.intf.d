lib/util/vec.mli:
