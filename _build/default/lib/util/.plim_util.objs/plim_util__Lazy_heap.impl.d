lib/util/lazy_heap.ml: Array
