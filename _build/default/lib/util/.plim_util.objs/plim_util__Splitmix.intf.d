lib/util/splitmix.mli:
