(** Growable arrays with amortised O(1) push, used throughout the MIG and
    compiler data structures where node counts are not known in advance. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector.  [dummy] fills unused capacity
    and is never observable through the public API. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument if the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** [push t x] appends [x] and returns its index. *)

val pop : 'a t -> 'a option
(** Removes and returns the last element, or [None] if empty. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array

val of_array : dummy:'a -> 'a array -> 'a t

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list
