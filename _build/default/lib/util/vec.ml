type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (length %d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let grow t =
  let capacity = Array.length t.data in
  let data = Array.make (2 * capacity) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  let i = t.len in
  t.data.(i) <- x;
  t.len <- i + 1;
  i

let pop t =
  if t.len = 0 then None
  else begin
    let i = t.len - 1 in
    let x = t.data.(i) in
    t.data.(i) <- t.dummy;
    t.len <- i;
    Some x
  end

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let of_array ~dummy arr =
  let n = Array.length arr in
  let t = create ~capacity:(max n 1) ~dummy () in
  Array.iter (fun x -> ignore (push t x)) arr;
  t

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t = Array.to_list (to_array t)
