(** Deterministic splitmix64 pseudo-random number generator.

    All randomness in the project (random control benchmarks, verification
    vectors, property-test corpora) flows through this generator so that
    every experiment is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bits : t -> width:int -> bool array
(** [bits t ~width] is a uniform bit vector, LSB first. *)
