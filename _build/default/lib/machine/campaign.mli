(** Empirical endurance campaigns: execute a compiled program repeatedly
    on an endurance-limited crossbar until the first device wears out.

    This closes the loop on the paper's motivation — the static
    {!Plim_stats.Lifetime} estimate (endurance / max writes per
    execution) is validated against an actual simulated wear-out, and
    architectural wear levelling (Start-Gap) can be layered between
    executions for comparison. *)

module Program = Plim_isa.Program

type outcome = {
  executions_completed : int;
  failed : bool;              (** false if [max_executions] was reached *)
  write_total : int;          (** physical writes performed overall *)
}

val run_until_failure :
  ?seed:int ->
  ?max_executions:int ->
  endurance:int ->
  Program.t ->
  outcome
(** Repeated executions with fresh random inputs per run on one shared
    crossbar whose cells hard-fail after [endurance] writes.  Stops at the
    first failure or after [max_executions] (default 100_000). *)

val run_with_start_gap :
  ?seed:int ->
  ?max_executions:int ->
  ?psi:int ->
  endurance:int ->
  Program.t ->
  outcome
(** Same campaign with a Start-Gap remapping layer rotating the
    program's device addresses between executions: logical cell [l] of
    execution [k] lands on a rotating physical line, so hot logical cells
    spread across the array over time. *)
