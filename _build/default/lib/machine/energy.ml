module Crossbar = Plim_rram.Crossbar

type model = {
  read_pj : float;
  switch_write_pj : float;
  hold_write_pj : float;
}

let default_model = { read_pj = 1.0; switch_write_pj = 10.0; hold_write_pj = 2.0 }

type report = {
  reads : int;
  writes : int;
  transitions : int;
  total_pj : float;
  per_instruction_pj : float;
}

let of_run ?(model = default_model) xbar (stats : Plim_controller.run_stats) =
  let writes = Array.fold_left ( + ) 0 (Crossbar.write_counts xbar) in
  let transitions = Array.fold_left ( + ) 0 (Crossbar.transition_counts xbar) in
  (* every memory-access cycle that is not a write is an operand read *)
  let reads = stats.Plim_controller.cycles - stats.Plim_controller.instructions in
  let total_pj =
    (float_of_int reads *. model.read_pj)
    +. (float_of_int transitions *. model.switch_write_pj)
    +. (float_of_int (writes - transitions) *. model.hold_write_pj)
  in
  { reads;
    writes;
    transitions;
    total_pj;
    per_instruction_pj =
      (if stats.Plim_controller.instructions = 0 then 0.0
       else total_pj /. float_of_int stats.Plim_controller.instructions) }

let pp_report ppf r =
  Format.fprintf ppf "reads=%d writes=%d (switching %d) energy=%.1f pJ (%.2f pJ/instr)"
    r.reads r.writes r.transitions r.total_pj r.per_instruction_pj
