(** First-order energy model for a PLiM execution.

    RRAM writes dominate energy: a SET/RESET pulse costs orders of
    magnitude more than a read.  The model distinguishes write operations
    that actually toggle the resistance state (full switching energy)
    from redundant writes (the cell is biased but does not switch), and
    charges each operand read.  Defaults follow HfOx RRAM ballpark
    figures from the literature ([5] and the DATE'16 PLiM paper): reads
    ~1 pJ, switching writes ~10 pJ, non-switching write pulses ~2 pJ. *)

type model = {
  read_pj : float;
  switch_write_pj : float;
  hold_write_pj : float;  (** write pulse that does not toggle the state *)
}

val default_model : model

type report = {
  reads : int;
  writes : int;
  transitions : int;
  total_pj : float;
  per_instruction_pj : float;
}

val of_run :
  ?model:model ->
  Plim_rram.Crossbar.t ->
  Plim_controller.run_stats ->
  report
(** [of_run xbar stats] accounts the energy of one completed execution
    from the crossbar's write/transition counters and the controller's
    cycle statistics. *)

val pp_report : Format.formatter -> report -> unit
