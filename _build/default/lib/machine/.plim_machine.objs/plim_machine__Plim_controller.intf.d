lib/machine/plim_controller.mli: Plim_isa Plim_rram
