lib/machine/energy.mli: Format Plim_controller Plim_rram
