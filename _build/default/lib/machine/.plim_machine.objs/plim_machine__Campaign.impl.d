lib/machine/campaign.ml: Array Plim_isa Plim_rram Plim_util
