lib/machine/plim_controller.ml: Array Hashtbl List Plim_isa Plim_rram Printf String
