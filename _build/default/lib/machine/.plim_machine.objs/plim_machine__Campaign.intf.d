lib/machine/campaign.mli: Plim_isa
