lib/machine/energy.ml: Array Format Plim_controller Plim_rram
