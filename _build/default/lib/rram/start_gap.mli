(** Start-Gap wear levelling (Qureshi et al., MICRO'09) — the
    architecture-level write-balancing alternative cited by the paper
    ([8]) for PCM/RRAM main memories.

    [n] logical lines are spread over [n + 1] physical lines through two
    registers: [start] and the position of the spare {e gap} line.  Every
    [psi] logical writes the gap moves down by one (one extra physical
    copy write); once it wraps, [start] advances, slowly rotating the
    whole address space.

    Used in the benches to contrast architectural rotation against the
    paper's compiler-level endurance management: rotation balances wear
    {e across many executions} at the cost of [1/psi] write overhead,
    whereas the endurance-aware compiler balances a {e single} program. *)

type t

val create : ?psi:int -> int -> t
(** [create ?psi n] for [n] logical lines; gap moves every [psi] (default
    100) writes. *)

val num_physical : t -> int
(** [n + 1]. *)

val physical : t -> int -> int
(** Current physical line of a logical address. *)

val write : t -> int -> unit
(** Record one write to a logical address (moves the gap when due). *)

val physical_write_counts : t -> int array
(** Per-physical-line write counts, including gap-movement copies. *)

val total_moves : t -> int
(** Number of gap movements performed so far. *)

val gap_line : t -> int
(** Current physical position of the spare line. *)

val replay : ?psi:int -> executions:int -> int array -> int array
(** [replay ~executions per_exec_writes] simulates [executions] runs of a
    program whose per-logical-cell write counts are [per_exec_writes]
    (writes within one execution are interleaved round-robin, which is the
    favourable case for rotation) and returns per-physical-line counts. *)
