type t = {
  n : int;
  psi : int;
  mutable start : int;
  mutable gap : int;             (* physical index of the spare line *)
  mutable since_move : int;
  mutable moves : int;
  counts : int array;            (* per physical line *)
}

let create ?(psi = 100) n =
  if n <= 0 then invalid_arg "Start_gap.create: need at least one line";
  if psi <= 0 then invalid_arg "Start_gap.create: psi must be positive";
  { n; psi; start = 0; gap = n; since_move = 0; moves = 0; counts = Array.make (n + 1) 0 }

let num_physical t = t.n + 1

let physical t la =
  if la < 0 || la >= t.n then invalid_arg "Start_gap.physical: address out of range";
  let pa = (la + t.start) mod t.n in
  if pa >= t.gap then pa + 1 else pa

let move_gap t =
  t.moves <- t.moves + 1;
  if t.gap = 0 then begin
    (* the gap wraps to the top and the rotation advances *)
    t.gap <- t.n;
    t.start <- (t.start + 1) mod t.n
  end
  else begin
    (* the line just above the gap is copied into the gap: one write *)
    t.counts.(t.gap) <- t.counts.(t.gap) + 1;
    t.gap <- t.gap - 1
  end

let write t la =
  let pa = physical t la in
  t.counts.(pa) <- t.counts.(pa) + 1;
  t.since_move <- t.since_move + 1;
  if t.since_move >= t.psi then begin
    t.since_move <- 0;
    move_gap t
  end

let physical_write_counts t = Array.copy t.counts

let total_moves t = t.moves

let gap_line t = t.gap

let replay ?psi ~executions per_exec_writes =
  let n = Array.length per_exec_writes in
  let t = create ?psi n in
  (* round-robin interleaving of each execution's writes *)
  let remaining = Array.make n 0 in
  for _ = 1 to executions do
    Array.blit per_exec_writes 0 remaining 0 n;
    let live = ref true in
    while !live do
      live := false;
      for la = 0 to n - 1 do
        if remaining.(la) > 0 then begin
          remaining.(la) <- remaining.(la) - 1;
          write t la;
          live := true
        end
      done
    done
  done;
  physical_write_counts t
