lib/rram/crossbar.mli:
