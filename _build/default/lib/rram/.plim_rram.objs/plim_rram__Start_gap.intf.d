lib/rram/start_gap.mli:
