lib/rram/start_gap.ml: Array
