lib/rram/crossbar.ml: Array Bytes Printf
