(** BLIF (Berkeley Logic Interchange Format) frontend and backend.

    The EPFL benchmark suite — the paper's workload — is distributed in
    BLIF/AIGER form; this module lets real netlists flow into the PLiM
    compiler.  Reading covers the combinational subset: [.model],
    [.inputs], [.outputs], [.names] with SOP cubes ([0], [1], [-]
    don't-cares), single-output-cover semantics, and line continuations
    with [\\].  Each cube becomes an AND of literals and the cover an OR
    of cubes — exactly the AND-inverter shape the rewriting engine
    expects from a frontend.

    Writing emits one [.names] per majority node (8-row cover), plus
    buffers/inverters for outputs. *)

val of_string : string -> Mig.t
(** @raise Failure on malformed input (reports the line number). *)

val to_string : ?model:string -> Mig.t -> string

val read_file : string -> Mig.t

val write_file : ?model:string -> string -> Mig.t -> unit
