module Vec = Plim_util.Vec
module Truth_table = Plim_logic.Truth_table

type signal = int
(* packed: node id * 2 + (1 if complemented) *)

type node_kind =
  | Const
  | Input of int
  | Maj of signal * signal * signal

(* tag values in the [tag] vector *)
let tag_const = 0
let tag_input = 1
let tag_maj = 2

type t = {
  tag : int Vec.t;
  c0 : int Vec.t; (* maj: child signal / input: PI index *)
  c1 : int Vec.t;
  c2 : int Vec.t;
  strash : (int * int * int, int) Hashtbl.t;
  input_names : string Vec.t;
  input_nodes : int Vec.t;       (* PI index -> node id *)
  outs : (string * signal) Vec.t;
}

(* {1 Signals} *)

let signal node complemented = (node lsl 1) lor (if complemented then 1 else 0)
let node_of s = s lsr 1
let is_complemented s = s land 1 = 1
let not_ s = s lxor 1
let ( ~: ) = not_
let signal_equal (a : signal) b = a = b
let false_ = signal 0 false
let true_ = signal 0 true
let is_const s = node_of s = 0
let compare_signal (a : signal) b = compare a b

let pp_signal ppf s =
  Format.fprintf ppf "%s%d" (if is_complemented s then "!" else "") (node_of s)

(* {1 Construction} *)

let create () =
  let g =
    { tag = Vec.create ~dummy:tag_const ();
      c0 = Vec.create ~dummy:0 ();
      c1 = Vec.create ~dummy:0 ();
      c2 = Vec.create ~dummy:0 ();
      strash = Hashtbl.create 1024;
      input_names = Vec.create ~dummy:"" ();
      input_nodes = Vec.create ~dummy:0 ();
      outs = Vec.create ~dummy:("", 0) () }
  in
  (* node 0: the constant *)
  ignore (Vec.push g.tag tag_const);
  ignore (Vec.push g.c0 0);
  ignore (Vec.push g.c1 0);
  ignore (Vec.push g.c2 0);
  g

let new_node g tag c0 c1 c2 =
  let id = Vec.push g.tag tag in
  ignore (Vec.push g.c0 c0);
  ignore (Vec.push g.c1 c1);
  ignore (Vec.push g.c2 c2);
  id

let add_input g name =
  if Vec.exists (String.equal name) g.input_names then
    invalid_arg (Printf.sprintf "Mig.add_input: duplicate input %S" name);
  let pi = Vec.push g.input_names name in
  let id = new_node g tag_input pi 0 0 in
  ignore (Vec.push g.input_nodes id);
  signal id false

let sort3 a b c =
  let a, b = if a <= b then (a, b) else (b, a) in
  let b, c = if b <= c then (b, c) else (c, b) in
  let a, b = if a <= b then (a, b) else (b, a) in
  (a, b, c)

(* Ω.M on a sorted triple; [None] when no reduction applies. *)
let reduce a b c =
  if a = b then Some a
  else if b = c then Some b
  else if node_of a = node_of b then Some c (* x and !x *)
  else if node_of b = node_of c then Some a
  else None

let maj g a b c =
  let a, b, c = sort3 a b c in
  match reduce a b c with
  | Some s -> s
  | None ->
    (match Hashtbl.find_opt g.strash (a, b, c) with
    | Some id -> signal id false
    | None ->
      let id = new_node g tag_maj a b c in
      Hashtbl.add g.strash (a, b, c) id;
      signal id false)

let lookup g a b c =
  let a, b, c = sort3 a b c in
  match reduce a b c with
  | Some s -> Some s
  | None ->
    (match Hashtbl.find_opt g.strash (a, b, c) with
    | Some id -> Some (signal id false)
    | None -> None)

let and_ g a b = maj g a b false_
let or_ g a b = maj g a b true_
let xor g a b = or_ g (and_ g a (not_ b)) (and_ g (not_ a) b)
let mux g s a b = or_ g (and_ g s a) (and_ g (not_ s) b)

let add_output g name s = ignore (Vec.push g.outs (name, s))

(* {1 Inspection} *)

let num_nodes g = Vec.length g.tag
let num_inputs g = Vec.length g.input_names
let num_outputs g = Vec.length g.outs

let kind g id =
  let tag = Vec.get g.tag id in
  if tag = tag_const then Const
  else if tag = tag_input then Input (Vec.get g.c0 id)
  else Maj (Vec.get g.c0 id, Vec.get g.c1 id, Vec.get g.c2 id)

let input_name g pi = Vec.get g.input_names pi
let input_signal g pi = signal (Vec.get g.input_nodes pi) false
let outputs g = Vec.to_array g.outs
let input_names g = Vec.to_array g.input_names

let reachable g =
  let n = num_nodes g in
  let mark = Array.make n false in
  Vec.iter (fun (_, s) -> mark.(node_of s) <- true) g.outs;
  for id = n - 1 downto 0 do
    if mark.(id) && Vec.get g.tag id = tag_maj then begin
      mark.(node_of (Vec.get g.c0 id)) <- true;
      mark.(node_of (Vec.get g.c1 id)) <- true;
      mark.(node_of (Vec.get g.c2 id)) <- true
    end
  done;
  mark

let iter_reachable_maj g f =
  let mark = reachable g in
  for id = 0 to num_nodes g - 1 do
    if mark.(id) && Vec.get g.tag id = tag_maj then f id
  done

let size g =
  let n = ref 0 in
  iter_reachable_maj g (fun _ -> incr n);
  !n

let num_complemented_edges g =
  let n = ref 0 in
  iter_reachable_maj g (fun id ->
      let count s = if is_complemented s && not (is_const s) then incr n in
      count (Vec.get g.c0 id);
      count (Vec.get g.c1 id);
      count (Vec.get g.c2 id));
  !n

let levels g =
  let n = num_nodes g in
  let lv = Array.make n 0 in
  for id = 0 to n - 1 do
    if Vec.get g.tag id = tag_maj then begin
      let l s = lv.(node_of s) in
      lv.(id) <-
        1 + max (l (Vec.get g.c0 id)) (max (l (Vec.get g.c1 id)) (l (Vec.get g.c2 id)))
    end
  done;
  lv

let depth g =
  let lv = levels g in
  Vec.fold_left (fun acc (_, s) -> max acc lv.(node_of s)) 0 g.outs

let fanout_counts g =
  let counts = Array.make (num_nodes g) 0 in
  iter_reachable_maj g (fun id ->
      let bump s = counts.(node_of s) <- counts.(node_of s) + 1 in
      bump (Vec.get g.c0 id);
      bump (Vec.get g.c1 id);
      bump (Vec.get g.c2 id));
  counts

let output_refs g =
  let refs = Array.make (num_nodes g) 0 in
  Vec.iter (fun (_, s) -> refs.(node_of s) <- refs.(node_of s) + 1) g.outs;
  refs

let fanouts g =
  let lists = Array.make (num_nodes g) [] in
  iter_reachable_maj g (fun id ->
      let add s =
        let c = node_of s in
        match lists.(c) with
        | parent :: _ when parent = id -> () (* children are distinct after Ω.M *)
        | l -> lists.(c) <- id :: l
      in
      add (Vec.get g.c0 id);
      add (Vec.get g.c1 id);
      add (Vec.get g.c2 id));
  Array.map (fun l -> Array.of_list (List.rev l)) lists

(* {1 Evaluation} *)

let node_values g pi_values =
  if Array.length pi_values <> num_inputs g then
    invalid_arg "Mig.node_values: input arity mismatch";
  let n = num_nodes g in
  let values = Array.make n false in
  let value_of s = values.(node_of s) <> is_complemented s in
  for id = 0 to n - 1 do
    let tag = Vec.get g.tag id in
    if tag = tag_input then values.(id) <- pi_values.(Vec.get g.c0 id)
    else if tag = tag_maj then begin
      let a = value_of (Vec.get g.c0 id)
      and b = value_of (Vec.get g.c1 id)
      and c = value_of (Vec.get g.c2 id) in
      values.(id) <- (a && b) || (a && c) || (b && c)
    end
  done;
  values

let eval g pi_values =
  let values = node_values g pi_values in
  Array.map
    (fun (_, s) -> values.(node_of s) <> is_complemented s)
    (Vec.to_array g.outs)

let output_tables g =
  let ni = num_inputs g in
  if ni > Truth_table.max_vars then
    invalid_arg "Mig.output_tables: too many inputs for exhaustive tables";
  let n = num_nodes g in
  let tables = Array.make n (Truth_table.const_ ni false) in
  let mark = reachable g in
  Vec.iteri (fun pi id -> tables.(id) <- Truth_table.var ni pi) g.input_nodes;
  for id = 0 to n - 1 do
    if mark.(id) && Vec.get g.tag id = tag_maj then begin
      let table_of s =
        let tt = tables.(node_of s) in
        if is_complemented s then Truth_table.not_ tt else tt
      in
      tables.(id) <-
        Truth_table.maj
          (table_of (Vec.get g.c0 id))
          (table_of (Vec.get g.c1 id))
          (table_of (Vec.get g.c2 id))
    end
  done;
  Array.map
    (fun (_, s) ->
      let tt = tables.(node_of s) in
      if is_complemented s then Truth_table.not_ tt else tt)
    (Vec.to_array g.outs)

(* {1 Copying} *)

let map_rebuild g ~rule =
  let g' = create () in
  let map = Array.make (num_nodes g) false_ in
  Vec.iteri
    (fun pi id -> map.(id) <- add_input g' (Vec.get g.input_names pi))
    g.input_nodes;
  let remap s =
    let m = map.(node_of s) in
    if is_complemented s then not_ m else m
  in
  iter_reachable_maj g (fun id ->
      let a = remap (Vec.get g.c0 id)
      and b = remap (Vec.get g.c1 id)
      and c = remap (Vec.get g.c2 id) in
      map.(id) <- rule g' ~old_id:id a b c);
  Vec.iter (fun (name, s) -> add_output g' name (remap s)) g.outs;
  g'

let cleanup g = map_rebuild g ~rule:(fun g' ~old_id:_ a b c -> maj g' a b c)

let copy g = cleanup g
