module Bdd = Plim_logic.Bdd

let node_bdds g man =
  let n = Mig.num_nodes g in
  let bdds = Array.make n (Bdd.false_ man) in
  for pi = 0 to Mig.num_inputs g - 1 do
    bdds.(Mig.node_of (Mig.input_signal g pi)) <- Bdd.var man pi
  done;
  let value s =
    let b = bdds.(Mig.node_of s) in
    if Mig.is_complemented s then Bdd.not_ man b else b
  in
  Mig.iter_reachable_maj g (fun id ->
      match Mig.kind g id with
      | Mig.Maj (a, b, c) -> bdds.(id) <- Bdd.maj man (value a) (value b) (value c)
      | Mig.Const | Mig.Input _ -> assert false);
  (bdds, value)

let output_bdds ?order g =
  let man = Bdd.manager ?order ~num_vars:(Mig.num_inputs g) () in
  let _, value = node_bdds g man in
  (man, Array.map (fun (_, s) -> value s) (Mig.outputs g))

let equivalent ?order g1 g2 =
  if Mig.num_inputs g1 <> Mig.num_inputs g2 then
    invalid_arg "Mig_bdd.equivalent: input arity mismatch";
  if Mig.num_outputs g1 <> Mig.num_outputs g2 then
    invalid_arg "Mig_bdd.equivalent: output arity mismatch";
  let man = Bdd.manager ?order ~num_vars:(Mig.num_inputs g1) () in
  let _, v1 = node_bdds g1 man in
  let _, v2 = node_bdds g2 man in
  let o1 = Mig.outputs g1 and o2 = Mig.outputs g2 in
  let ok = ref true in
  Array.iteri
    (fun i (_, s1) ->
      let _, s2 = o2.(i) in
      if not (Bdd.equal (v1 s1) (v2 s2)) then ok := false)
    o1;
  !ok
