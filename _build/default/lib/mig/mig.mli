(** Majority-Inverter Graphs (MIG, Amarù et al., DAC'14).

    A MIG is a DAG of 3-input majority nodes with optionally complemented
    edges.  It is the input representation of the PLiM compiler: every
    majority node maps to (at least) one RM3 instruction.

    Nodes are identified by dense integer ids; node 0 is the Boolean
    constant and ids are topologically ordered (children always precede
    parents).  The graph is hash-consed: structurally identical majority
    nodes are shared, and the trivial majority axiom Ω.M is applied on
    construction ([maj] never builds <x,x,y> or <x,!x,y>). *)

type t

type signal
(** A node reference with a polarity (complemented-edge) flag. *)

type node_kind =
  | Const                              (** node 0; plain signal = false *)
  | Input of int                       (** primary input, by PI index *)
  | Maj of signal * signal * signal    (** majority over three children *)

(** {1 Signals} *)

val signal : int -> bool -> signal
(** [signal node complemented]. *)

val node_of : signal -> int
val is_complemented : signal -> bool
val not_ : signal -> signal
val ( ~: ) : signal -> signal
(** Alias for [not_]. *)

val signal_equal : signal -> signal -> bool
val false_ : signal
val true_ : signal
val is_const : signal -> bool
val compare_signal : signal -> signal -> int
val pp_signal : Format.formatter -> signal -> unit

(** {1 Construction} *)

val create : unit -> t

val add_input : t -> string -> signal
(** Declares a fresh primary input.  Names must be unique. *)

val maj : t -> signal -> signal -> signal -> signal
(** Hash-consed majority with Ω.M simplification. *)

val lookup : t -> signal -> signal -> signal -> signal option
(** Like [maj] but never inserts: returns the signal [maj] would return if
    it requires no fresh node (an Ω.M reduction or an existing strashed
    node), else [None].  Used by rewriting heuristics to test whether a
    transformation is free. *)

val and_ : t -> signal -> signal -> signal
val or_ : t -> signal -> signal -> signal
val xor : t -> signal -> signal -> signal
val mux : t -> signal -> signal -> signal -> signal
(** [mux t s a b] is [if s then a else b] (3 majority nodes). *)

val add_output : t -> string -> signal -> unit

(** {1 Inspection} *)

val num_nodes : t -> int
(** All allocated nodes including the constant, inputs and dead nodes. *)

val num_inputs : t -> int
val num_outputs : t -> int
val kind : t -> int -> node_kind
val input_name : t -> int -> string
val input_signal : t -> int -> signal
val outputs : t -> (string * signal) array
val input_names : t -> string array

val size : t -> int
(** Number of majority nodes reachable from the outputs (the paper's node
    count metric). *)

val num_complemented_edges : t -> int
(** Complemented child edges of reachable majority nodes (PO polarities are
    not counted). *)

val depth : t -> int
(** Maximum level over outputs. *)

val levels : t -> int array
(** [levels t].(id) = 0 for constants/inputs, 1 + max child level for
    majority nodes (over all allocated nodes). *)

val fanout_counts : t -> int array
(** Per node: number of majority-node parent edges referencing it (over
    reachable nodes), not counting output references. *)

val output_refs : t -> int array
(** Per node: number of primary outputs referencing it. *)

val fanouts : t -> int array array
(** Per node: ids of reachable majority parents (with duplicates collapsed). *)

val reachable : t -> bool array
(** Per node: reachable from some output. *)

val iter_reachable_maj : t -> (int -> unit) -> unit
(** Topological (children-first) iteration over reachable majority nodes. *)

(** {1 Evaluation} *)

val eval : t -> bool array -> bool array
(** [eval t pi_values] returns output values, in output declaration order. *)

val node_values : t -> bool array -> bool array
(** Per-node values under the given input assignment. *)

val output_tables : t -> Plim_logic.Truth_table.t array
(** Exhaustive truth tables of all outputs;
    @raise Invalid_argument when [num_inputs] exceeds
    {!Plim_logic.Truth_table.max_vars}. *)

(** {1 Copying} *)

val cleanup : t -> t
(** Rebuilds the graph keeping only nodes reachable from outputs. *)

val copy : t -> t

val map_rebuild :
  t -> rule:(t -> old_id:int -> signal -> signal -> signal -> signal) -> t
(** [map_rebuild t ~rule] rebuilds [t] bottom-up into a fresh graph.  For
    every reachable majority node its (already remapped) children are
    passed to [rule] together with the node's id in the old graph (so that
    rewriting heuristics can consult old-graph fanout information); [rule]
    must return the replacement signal in the new graph (typically via
    [maj] plus algebraic rewriting).  Inputs and output names/polarities
    are preserved. *)
