(** MIG-to-BDD conversion for formal equivalence checking.

    Where truth tables stop at 16 inputs, BDDs handle the wide but
    well-ordered circuits of the suite (adders, shifters, comparators)
    exactly. *)

module Bdd = Plim_logic.Bdd

val output_bdds : ?order:int array -> Mig.t -> Bdd.man * Bdd.t array
(** One BDD per primary output, under the given variable order
    (PI index -> decision level; identity by default). *)

val equivalent : ?order:int array -> Mig.t -> Mig.t -> bool
(** Formal equivalence of two MIGs over the same inputs/outputs (by
    position).  @raise Invalid_argument on interface mismatch. *)
