let pp_operand buf s =
  if Mig.is_complemented s then Buffer.add_char buf '~';
  Buffer.add_string buf (string_of_int (Mig.node_of s))

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "mig\n";
  Array.iteri
    (fun pi name ->
      Buffer.add_string buf
        (Printf.sprintf ".input %d %s\n" (Mig.node_of (Mig.input_signal g pi)) name))
    (Mig.input_names g);
  Mig.iter_reachable_maj g (fun id ->
      match Mig.kind g id with
      | Mig.Maj (a, b, c) ->
        Buffer.add_string buf (Printf.sprintf ".node %d " id);
        pp_operand buf a;
        Buffer.add_char buf ' ';
        pp_operand buf b;
        Buffer.add_char buf ' ';
        pp_operand buf c;
        Buffer.add_char buf '\n'
      | Mig.Const | Mig.Input _ -> assert false);
  Array.iter
    (fun (name, s) ->
      Buffer.add_string buf (Printf.sprintf ".output %s " name);
      pp_operand buf s;
      Buffer.add_char buf '\n')
    (Mig.outputs g);
  Buffer.contents buf

let fail line msg = failwith (Printf.sprintf "Mig_io.of_string: line %d: %s" line msg)

let of_string text =
  let g = Mig.create () in
  (* old node id -> signal in the new graph *)
  let map = Hashtbl.create 256 in
  Hashtbl.add map 0 Mig.false_;
  let parse_operand line tok =
    let compl_, tok =
      if String.length tok > 0 && tok.[0] = '~' then
        (true, String.sub tok 1 (String.length tok - 1))
      else (false, tok)
    in
    let id = try int_of_string tok with Failure _ -> fail line "bad operand" in
    match Hashtbl.find_opt map id with
    | Some s -> if compl_ then Mig.not_ s else s
    | None -> fail line (Printf.sprintf "operand references unknown node %d" id)
  in
  let lines = String.split_on_char '\n' text in
  let lineno = ref 0 in
  let header_seen = ref false in
  List.iter
    (fun raw ->
      incr lineno;
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else if not !header_seen then
        if line = "mig" then header_seen := true
        else fail !lineno "expected 'mig' header"
      else
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ ".input"; id; name ] ->
          let id = try int_of_string id with Failure _ -> fail !lineno "bad input id" in
          Hashtbl.replace map id (Mig.add_input g name)
        | [ ".node"; id; a; b; c ] ->
          let id = try int_of_string id with Failure _ -> fail !lineno "bad node id" in
          let a = parse_operand !lineno a
          and b = parse_operand !lineno b
          and c = parse_operand !lineno c in
          Hashtbl.replace map id (Mig.maj g a b c)
        | [ ".output"; name; s ] ->
          Mig.add_output g name (parse_operand !lineno s)
        | _ -> fail !lineno "unrecognised line")
    lines;
  if not !header_seen then failwith "Mig_io.of_string: empty input";
  g

let to_dot ?(name = "mig") g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=BT;\n" name);
  Buffer.add_string buf "  n0 [label=\"0\", shape=box];\n";
  Array.iteri
    (fun pi input_name ->
      let id = Mig.node_of (Mig.input_signal g pi) in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=invtriangle];\n" id input_name))
    (Mig.input_names g);
  let edge src dst s =
    Buffer.add_string buf
      (Printf.sprintf "  n%d -> n%d%s;\n" src dst
         (if Mig.is_complemented s then " [style=dashed]" else ""))
  in
  Mig.iter_reachable_maj g (fun id ->
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"MAJ %d\"];\n" id id);
      match Mig.kind g id with
      | Mig.Maj (a, b, c) ->
        edge (Mig.node_of a) id a;
        edge (Mig.node_of b) id b;
        edge (Mig.node_of c) id c
      | Mig.Const | Mig.Input _ -> assert false);
  Array.iteri
    (fun i (oname, s) ->
      Buffer.add_string buf
        (Printf.sprintf "  o%d [label=\"%s\", shape=triangle];\n" i oname);
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> o%d%s;\n" (Mig.node_of s) i
           (if Mig.is_complemented s then " [style=dashed]" else "")))
    (Mig.outputs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
