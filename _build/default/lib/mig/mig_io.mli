(** Textual interchange for MIGs.

    Two formats:
    - a line-oriented [.mig] format with a printer and parser
      (round-trippable), and
    - Graphviz DOT export for visual inspection (complemented edges are
      drawn dashed). *)

val to_string : Mig.t -> string
(** Serialise in the [.mig] format:
    {v
    mig
    .input 1 a
    .input 2 b
    .node 4 1 ~2 0
    .output sum ~4
    v}
    Node operands are node ids, [~] marks a complemented edge, and id 0 is
    the constant false. *)

val of_string : string -> Mig.t
(** Parse the [.mig] format.
    @raise Failure on malformed input (with a line number). *)

val to_dot : ?name:string -> Mig.t -> string

val write_file : string -> Mig.t -> unit

val read_file : string -> Mig.t
