lib/mig/mig_gen.ml: Array Mig Plim_util Printf
