lib/mig/mig.ml: Array Format Hashtbl List Plim_logic Plim_util Printf String
