lib/mig/mig_bdd.mli: Mig Plim_logic
