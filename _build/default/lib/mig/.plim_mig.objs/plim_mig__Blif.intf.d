lib/mig/blif.mli: Mig
