lib/mig/mig_bdd.ml: Array Mig Plim_logic
