lib/mig/blif.ml: Array Buffer Fun Hashtbl List Mig Printf String
