lib/mig/mig_gen.mli: Mig
