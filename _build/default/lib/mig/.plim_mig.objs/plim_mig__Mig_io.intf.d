lib/mig/mig_io.mli: Mig
