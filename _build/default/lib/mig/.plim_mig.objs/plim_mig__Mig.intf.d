lib/mig/mig.mli: Format Plim_logic
