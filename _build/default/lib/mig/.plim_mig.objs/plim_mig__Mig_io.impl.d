lib/mig/mig_io.ml: Array Buffer Fun Hashtbl List Mig Printf String
