let fail line msg = failwith (Printf.sprintf "Blif: line %d: %s" line msg)

(* logical lines: strip comments, join '\'-continued lines *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec join acc lineno = function
    | [] -> List.rev acc
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if String.length line > 0 && line.[String.length line - 1] = '\\' then begin
        match rest with
        | next :: rest' ->
          let merged = String.sub line 0 (String.length line - 1) ^ " " ^ next in
          join acc (lineno + 1) (merged :: rest')
        | [] -> fail lineno "dangling line continuation"
      end
      else join ((lineno, line) :: acc) (lineno + 1) rest
  in
  join [] 1 raw

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

type cover = {
  gate_inputs : string list;
  gate_output : string;
  mutable cubes : (string * char) list; (* input pattern, output value *)
  declared_at : int;
}

let of_string text =
  let inputs = ref [] and outputs = ref [] in
  let covers = ref [] in
  let current = ref None in
  let finish () =
    match !current with
    | Some c ->
      covers := c :: !covers;
      current := None
    | None -> ()
  in
  List.iter
    (fun (lineno, line) ->
      if line = "" then ()
      else
        match tokens line with
        | ".model" :: _ -> ()
        | ".inputs" :: names -> inputs := !inputs @ names
        | ".outputs" :: names -> outputs := !outputs @ names
        | ".names" :: signals ->
          finish ();
          (match List.rev signals with
          | gate_output :: rev_inputs ->
            current :=
              Some
                { gate_inputs = List.rev rev_inputs;
                  gate_output;
                  cubes = [];
                  declared_at = lineno }
          | [] -> fail lineno ".names without signals")
        | [ ".end" ] -> finish ()
        | (".latch" | ".subckt" | ".gate") :: _ ->
          fail lineno "only combinational single-model BLIF is supported"
        | [ pattern; value ] when !current <> None ->
          (match !current with
          | Some c ->
            if String.length pattern <> List.length c.gate_inputs then
              fail lineno "cube arity does not match .names inputs";
            if value <> "0" && value <> "1" then fail lineno "cube output must be 0 or 1";
            c.cubes <- (pattern, value.[0]) :: c.cubes
          | None -> assert false)
        | [ value ] when !current <> None ->
          (* constant cover: ".names x" followed by "1" (or nothing = 0) *)
          (match !current with
          | Some c ->
            if c.gate_inputs <> [] then fail lineno "missing cube input pattern";
            if value <> "0" && value <> "1" then fail lineno "cube output must be 0 or 1";
            c.cubes <- ("", value.[0]) :: c.cubes
          | None -> assert false)
        | _ -> fail lineno (Printf.sprintf "unrecognised line %S" line))
    (logical_lines text);
  finish ();
  let covers = List.rev !covers in
  (* build the MIG: inputs first, then covers in topological order *)
  let g = Mig.create () in
  let env : (string, Mig.signal) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun name -> Hashtbl.replace env name (Mig.add_input g name)) !inputs;
  let by_output = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace by_output c.gate_output c) covers;
  let visiting = Hashtbl.create 16 in
  let rec signal_of name =
    match Hashtbl.find_opt env name with
    | Some s -> s
    | None ->
      (match Hashtbl.find_opt by_output name with
      | None -> failwith (Printf.sprintf "Blif: undriven signal %S" name)
      | Some c ->
        if Hashtbl.mem visiting name then
          fail c.declared_at (Printf.sprintf "combinational cycle through %S" name);
        Hashtbl.replace visiting name ();
        let s = build_cover c in
        Hashtbl.remove visiting name;
        Hashtbl.replace env name s;
        s)
  and build_cover c =
    let input_signals = List.map signal_of c.gate_inputs in
    (* single-output cover: OR over cubes of AND over literals; the
       on-set is given by cubes with output '1', otherwise the cover
       describes the off-set and is complemented *)
    let on_cubes = List.filter (fun (_, v) -> v = '1') c.cubes in
    let off_form = on_cubes = [] && c.cubes <> [] in
    let cubes = if off_form then c.cubes else on_cubes in
    let cube_signal (pattern, _) =
      let acc = ref Mig.true_ in
      List.iteri
        (fun i s ->
          match pattern.[i] with
          | '1' -> acc := Mig.and_ g !acc s
          | '0' -> acc := Mig.and_ g !acc (Mig.not_ s)
          | '-' -> ()
          | ch -> failwith (Printf.sprintf "Blif: bad cube character %C" ch))
        input_signals;
      !acc
    in
    match (c.cubes, c.gate_inputs) with
    | [], _ -> Mig.false_ (* empty cover = constant 0 *)
    | _, [] ->
      (* constant cover *)
      if List.exists (fun (_, v) -> v = '1') c.cubes then Mig.true_ else Mig.false_
    | _, _ ->
      let sum =
        List.fold_left (fun acc cube -> Mig.or_ g acc (cube_signal cube)) Mig.false_ cubes
      in
      if off_form then Mig.not_ sum else sum
  in
  List.iter (fun name -> Mig.add_output g name (signal_of name)) !outputs;
  g

(* ------------------------------------------------------------------ *)

let node_name id = Printf.sprintf "n%d" id

(* constant children are always referenced through the 0-valued net
   "$false"; their polarity is folded into the cube pattern like any
   other complemented edge *)
let signal_name g s =
  let id = Mig.node_of s in
  match Mig.kind g id with
  | Mig.Const -> "$false"
  | Mig.Input pi -> Mig.input_name g pi
  | Mig.Maj _ -> node_name id

let to_string ?(model = "mig") g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n.inputs" model);
  Array.iter (fun n -> Buffer.add_string buf (" " ^ n)) (Mig.input_names g);
  Buffer.add_string buf "\n.outputs";
  Array.iter (fun (n, _) -> Buffer.add_string buf (" " ^ n)) (Mig.outputs g);
  Buffer.add_char buf '\n';
  (* constants, if referenced *)
  let uses_const = ref false in
  Mig.iter_reachable_maj g (fun id ->
      match Mig.kind g id with
      | Mig.Maj (a, b, c) ->
        if Mig.is_const a || Mig.is_const b || Mig.is_const c then uses_const := true
      | Mig.Const | Mig.Input _ -> ());
  if !uses_const then Buffer.add_string buf ".names $false\n";
  (* one .names per majority node: the 8-minterm cover of <a b c> with
     polarities folded into the cube patterns *)
  Mig.iter_reachable_maj g (fun id ->
      match Mig.kind g id with
      | Mig.Maj (a, b, c) ->
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s %s %s\n" (signal_name g a) (signal_name g b)
             (signal_name g c) (node_name id));
        let lit s bit = if Mig.is_complemented s then 1 - bit else bit in
        for m = 0 to 7 do
          let va = m land 1 and vb = (m lsr 1) land 1 and vc = (m lsr 2) land 1 in
          if va + vb + vc >= 2 then
            Buffer.add_string buf
              (Printf.sprintf "%d%d%d 1\n" (lit a va) (lit b vb) (lit c vc))
        done
      | Mig.Const | Mig.Input _ -> ());
  (* output buffers / inverters *)
  Array.iter
    (fun (name, s) ->
      let src = signal_name g s in
      if Mig.is_const s then begin
        Buffer.add_string buf (Printf.sprintf ".names %s\n" name);
        if Mig.is_complemented s then Buffer.add_string buf "1\n"
      end
      else if Mig.is_complemented s then
        Buffer.add_string buf (Printf.sprintf ".names %s %s\n0 1\n" src name)
      else Buffer.add_string buf (Printf.sprintf ".names %s %s\n1 1\n" src name))
    (Mig.outputs g);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let write_file ?model path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?model g))
