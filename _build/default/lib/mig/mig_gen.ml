module Splitmix = Plim_util.Splitmix

type profile = {
  compl_prob : float;
  locality : int;
  const_prob : float;
  input_prob : float;
}

let default_profile =
  { compl_prob = 0.3; locality = 1 lsl 30; const_prob = 0.02; input_prob = 0.0 }

let control_profile =
  { compl_prob = 0.25; locality = 64; const_prob = 0.08; input_prob = 0.3 }

let random ?(profile = default_profile) ~seed ~num_inputs ~num_nodes ~num_outputs () =
  if num_inputs <= 0 then invalid_arg "Mig_gen.random: need at least one input";
  let rng = Splitmix.create seed in
  let g = Mig.create () in
  let inputs =
    Array.init num_inputs (fun i -> Mig.add_input g (Printf.sprintf "x%d" i))
  in
  (* pool of candidate child signals: inputs first, then created nodes *)
  let pool = Plim_util.Vec.create ~dummy:Mig.false_ () in
  let pool_len = ref 0 in
  let push s =
    ignore (Plim_util.Vec.push pool s);
    incr pool_len
  in
  Array.iter push inputs;
  (* [pool_nth k] is the k-th most recent entry *)
  let pool_nth k = Plim_util.Vec.get pool (!pool_len - 1 - k) in
  let pick () =
    if Splitmix.float rng < profile.const_prob then
      if Splitmix.bool rng then Mig.true_ else Mig.false_
    else begin
      let s =
        if Splitmix.float rng < profile.input_prob then
          inputs.(Splitmix.int rng num_inputs)
        else begin
          let window = min profile.locality !pool_len in
          pool_nth (Splitmix.int rng window)
        end
      in
      if Splitmix.float rng < profile.compl_prob then Mig.not_ s else s
    end
  in
  let created = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 20 * (num_nodes + 16) in
  while !created < num_nodes && !attempts < max_attempts do
    incr attempts;
    let before = Mig.num_nodes g in
    let s = Mig.maj g (pick ()) (pick ()) (pick ()) in
    if Mig.num_nodes g > before then begin
      push s;
      incr created
    end
  done;
  let num_outputs = max 1 num_outputs in
  for o = 0 to num_outputs - 1 do
    (* outputs sample the most recent (deepest) region of the pool *)
    let window = min !pool_len (max 1 (2 * num_outputs)) in
    let s = pool_nth (o mod window) in
    let s = if Splitmix.float rng < profile.compl_prob then Mig.not_ s else s in
    Mig.add_output g (Printf.sprintf "y%d" o) s
  done;
  g
