(** Seeded random MIG generation.

    Used by property-based tests (random functional workloads for the
    compiler) and as the substitution substrate for the EPFL random-control
    benchmarks whose structural netlists are not publicly specified
    (see DESIGN.md, Section 2). *)

type profile = {
  compl_prob : float;    (** probability that a child edge is complemented *)
  locality : int;
      (** children are drawn from the last [locality] created signals
          (plus inputs), producing deep, control-like structure; use a
          large value for flat random logic *)
  const_prob : float;    (** probability of a constant child (AND/OR-like nodes) *)
  input_prob : float;    (** probability that a child is a uniform primary input,
                             keeping all PIs in use despite locality *)
}

val default_profile : profile

val control_profile : profile
(** Mux/and-or flavoured: moderate complement density, strong locality,
    occasional constant children — mimics decoded control logic. *)

val random :
  ?profile:profile ->
  seed:int ->
  num_inputs:int ->
  num_nodes:int ->
  num_outputs:int ->
  unit ->
  Mig.t
(** Generates a connected random MIG.  Node count is approximate: Ω.M
    reductions and hash-consing may merge some candidates, in which case
    generation retries with fresh children (the result has exactly
    [num_nodes] majority nodes unless the space is exhausted).  Outputs are
    chosen from the most recently created nodes so (almost) the whole graph
    is reachable. *)
