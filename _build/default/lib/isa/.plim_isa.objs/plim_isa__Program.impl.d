lib/isa/program.ml: Array Instruction Printf
