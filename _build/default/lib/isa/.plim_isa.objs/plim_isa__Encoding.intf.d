lib/isa/encoding.mli: Format Instruction Program
