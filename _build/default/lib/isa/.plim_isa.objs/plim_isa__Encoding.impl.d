lib/isa/encoding.ml: Array Format Instruction Printf Program
