lib/isa/instruction.mli: Format
