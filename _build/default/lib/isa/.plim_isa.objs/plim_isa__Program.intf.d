lib/isa/program.mli: Instruction
