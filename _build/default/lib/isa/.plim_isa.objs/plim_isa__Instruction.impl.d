lib/isa/instruction.ml: Format
