lib/isa/asm.ml: Array Buffer Fun Instruction List Printf Program String
