(** The PLiM instruction set.

    PLiM executes a single instruction, RM3(A, B, Z): operands A and B are
    read from constants or from the memory array, and during the write
    cycle the destination cell is updated to [Z <- <A, !B, Z>].  (DATE'16;
    reproduced in Section III-A2 of the paper.) *)

type operand =
  | Const of bool   (** an applied constant signal *)
  | Cell of int     (** read from a memory cell *)

type t = {
  a : operand;   (** first operand, P *)
  b : operand;   (** second operand, Q (intrinsically inverted) *)
  z : int;       (** destination cell: read-modify-write *)
}

val rm3 : a:operand -> b:operand -> z:int -> t

val set_const : bool -> int -> t
(** [set_const v z] initialises cell [z] to [v] in one instruction:
    [RM3(1,0,z)] forces 1, [RM3(0,1,z)] forces 0. *)

val semantics : a:bool -> b:bool -> z:bool -> bool
(** Pure meaning of one instruction: [<a, !b, z>]. *)

val equal : t -> t -> bool
val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
