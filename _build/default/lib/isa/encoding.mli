(** Binary encoding of RM3 instructions.

    The PLiM controller "reads the instructions from the memory array"
    (Section III-A2): the program itself occupies RRAM, one bit per cell.
    This module fixes a concrete layout so the real memory footprint of a
    compiled program can be reported:

    - an operand is a tag bit (0 = constant, 1 = cell) followed by
      [address_bits] payload bits (a constant's value sits in payload
      bit 0);
    - an instruction is [A operand][B operand][Z address];
    - addresses are LSB-first, [address_bits] = bits needed for
      [num_cells] distinct cells. *)

val address_bits : num_cells:int -> int
(** At least 1. *)

val operand_bits : num_cells:int -> int

val instruction_bits : num_cells:int -> int

val encode : num_cells:int -> Instruction.t -> bool array
(** @raise Invalid_argument if a referenced cell is out of range. *)

val decode : num_cells:int -> bool array -> Instruction.t
(** Inverse of {!encode}.
    @raise Invalid_argument on wrong length or an out-of-range address. *)

val encode_program : Program.t -> bool array
(** All instructions concatenated. *)

type footprint = {
  data_cells : int;          (** the paper's #R: working devices *)
  instruction_cells : int;   (** cells storing the encoded program *)
  total_cells : int;
  instruction_overhead : float;  (** instruction / data ratio *)
}

val footprint : Program.t -> footprint

val pp_footprint : Format.formatter -> footprint -> unit
