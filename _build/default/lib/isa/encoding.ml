let address_bits ~num_cells =
  let rec go bits capacity =
    if capacity >= num_cells then bits else go (bits + 1) (capacity * 2)
  in
  go 1 2

let operand_bits ~num_cells = 1 + address_bits ~num_cells

let instruction_bits ~num_cells = (2 * operand_bits ~num_cells) + address_bits ~num_cells

let check_cell ~num_cells i =
  if i < 0 || i >= num_cells then
    invalid_arg (Printf.sprintf "Encoding: cell %d out of range (num_cells %d)" i num_cells)

let write_address ~num_cells bits offset value =
  check_cell ~num_cells value;
  let w = address_bits ~num_cells in
  for k = 0 to w - 1 do
    bits.(offset + k) <- (value lsr k) land 1 = 1
  done

let read_address ~num_cells bits offset =
  let w = address_bits ~num_cells in
  let v = ref 0 in
  for k = w - 1 downto 0 do
    v := (!v lsl 1) lor (if bits.(offset + k) then 1 else 0)
  done;
  check_cell ~num_cells !v;
  !v

let write_operand ~num_cells bits offset (operand : Instruction.operand) =
  match operand with
  | Instruction.Const v ->
    bits.(offset) <- false;
    bits.(offset + 1) <- v
  | Instruction.Cell i ->
    bits.(offset) <- true;
    write_address ~num_cells bits (offset + 1) i

let read_operand ~num_cells bits offset =
  if bits.(offset) then Instruction.Cell (read_address ~num_cells bits (offset + 1))
  else Instruction.Const bits.(offset + 1)

let encode ~num_cells (i : Instruction.t) =
  let ob = operand_bits ~num_cells in
  let bits = Array.make (instruction_bits ~num_cells) false in
  write_operand ~num_cells bits 0 i.Instruction.a;
  write_operand ~num_cells bits ob i.Instruction.b;
  write_address ~num_cells bits (2 * ob) i.Instruction.z;
  bits

let decode ~num_cells bits =
  if Array.length bits <> instruction_bits ~num_cells then
    invalid_arg "Encoding.decode: wrong bit count";
  let ob = operand_bits ~num_cells in
  let a = read_operand ~num_cells bits 0 in
  let b = read_operand ~num_cells bits ob in
  let z = read_address ~num_cells bits (2 * ob) in
  Instruction.rm3 ~a ~b ~z

let encode_program (p : Program.t) =
  let num_cells = p.Program.num_cells in
  let per = instruction_bits ~num_cells in
  let bits = Array.make (per * Array.length p.Program.instrs) false in
  Array.iteri
    (fun idx instr -> Array.blit (encode ~num_cells instr) 0 bits (idx * per) per)
    p.Program.instrs;
  bits

type footprint = {
  data_cells : int;
  instruction_cells : int;
  total_cells : int;
  instruction_overhead : float;
}

let footprint (p : Program.t) =
  let data_cells = p.Program.num_cells in
  let instruction_cells =
    Array.length p.Program.instrs * instruction_bits ~num_cells:data_cells
  in
  { data_cells;
    instruction_cells;
    total_cells = data_cells + instruction_cells;
    instruction_overhead =
      (if data_cells = 0 then 0.0
       else float_of_int instruction_cells /. float_of_int data_cells) }

let pp_footprint ppf f =
  Format.fprintf ppf "data %d + instructions %d = %d cells (%.1fx overhead)" f.data_cells
    f.instruction_cells f.total_cells f.instruction_overhead
