(** Textual PLiM assembly, round-trippable:

    {v
    ; plim assembly
    .cells 12
    .in a %0
    .in b %1
    .out sum %7
    RM3 %0, 1, %3
    RM3 0, %2, %5
    v} *)

val to_string : Program.t -> string

val of_string : string -> Program.t
(** @raise Failure on malformed input (reports the line number). *)

val write_file : string -> Program.t -> unit

val read_file : string -> Program.t
