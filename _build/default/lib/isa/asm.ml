let to_string (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "; plim assembly\n";
  Buffer.add_string buf (Printf.sprintf ".cells %d\n" p.Program.num_cells);
  Array.iter
    (fun (name, cell) -> Buffer.add_string buf (Printf.sprintf ".in %s %%%d\n" name cell))
    p.Program.pi_cells;
  Array.iter
    (fun (name, cell) -> Buffer.add_string buf (Printf.sprintf ".out %s %%%d\n" name cell))
    p.Program.po_cells;
  Array.iter
    (fun instr ->
      Buffer.add_string buf (Instruction.to_string instr);
      Buffer.add_char buf '\n')
    p.Program.instrs;
  Buffer.contents buf

let fail line msg = failwith (Printf.sprintf "Asm.of_string: line %d: %s" line msg)

let parse_operand line tok =
  if tok = "0" then Instruction.Const false
  else if tok = "1" then Instruction.Const true
  else if String.length tok > 1 && tok.[0] = '%' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some i -> Instruction.Cell i
    | None -> fail line (Printf.sprintf "bad operand %S" tok)
  else fail line (Printf.sprintf "bad operand %S" tok)

let parse_cell line tok =
  match parse_operand line tok with
  | Instruction.Cell i -> i
  | Instruction.Const _ -> fail line "expected a cell reference"

let of_string text =
  let num_cells = ref None in
  let pis = ref [] and pos = ref [] and instrs = ref [] in
  let lineno = ref 0 in
  let strip_comment line =
    match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  List.iter
    (fun raw ->
      incr lineno;
      let line = String.trim (strip_comment raw) in
      if line = "" then ()
      else begin
        let tokens =
          String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) line)
          |> List.filter (fun s -> s <> "")
        in
        match tokens with
        | [ ".cells"; n ] ->
          (match int_of_string_opt n with
          | Some n -> num_cells := Some n
          | None -> fail !lineno "bad cell count")
        | [ ".in"; name; cell ] -> pis := (name, parse_cell !lineno cell) :: !pis
        | [ ".out"; name; cell ] -> pos := (name, parse_cell !lineno cell) :: !pos
        | [ "RM3"; a; b; z ] ->
          let a = parse_operand !lineno a
          and b = parse_operand !lineno b
          and z = parse_cell !lineno z in
          instrs := Instruction.rm3 ~a ~b ~z :: !instrs
        | _ -> fail !lineno "unrecognised line"
      end)
    (String.split_on_char '\n' text);
  match !num_cells with
  | None -> failwith "Asm.of_string: missing .cells directive"
  | Some num_cells ->
    Program.make
      ~instrs:(Array.of_list (List.rev !instrs))
      ~num_cells
      ~pi_cells:(Array.of_list (List.rev !pis))
      ~po_cells:(Array.of_list (List.rev !pos))

let write_file path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
