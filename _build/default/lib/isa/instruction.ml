type operand =
  | Const of bool
  | Cell of int

type t = {
  a : operand;
  b : operand;
  z : int;
}

let rm3 ~a ~b ~z =
  if z < 0 then invalid_arg "Instruction.rm3: negative destination";
  (match (a, b) with
  | Cell i, _ when i < 0 -> invalid_arg "Instruction.rm3: negative operand cell"
  | _, Cell i when i < 0 -> invalid_arg "Instruction.rm3: negative operand cell"
  | (Const _ | Cell _), (Const _ | Cell _) -> ());
  { a; b; z }

(* RM3(1,0,z) = <1,1,z> = 1 and RM3(0,1,z) = <0,0,z> = 0, both independent
   of the previous cell state. *)
let set_const v z =
  if v then rm3 ~a:(Const true) ~b:(Const false) ~z
  else rm3 ~a:(Const false) ~b:(Const true) ~z

let semantics ~a ~b ~z =
  let nb = not b in
  (a && nb) || (a && z) || (nb && z)

let equal x y = x = y

let pp_operand ppf = function
  | Const false -> Format.pp_print_string ppf "0"
  | Const true -> Format.pp_print_string ppf "1"
  | Cell i -> Format.fprintf ppf "%%%d" i

let pp ppf t =
  Format.fprintf ppf "RM3 %a, %a, %%%d" pp_operand t.a pp_operand t.b t.z

let to_string t = Format.asprintf "%a" pp t
